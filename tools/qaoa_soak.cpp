// qaoa_soak — multi-tenant soak harness for the qaoa_serve front end.
//
// Forks a real daemon (run_daemon, same code path as qaoa_serve), then
// hammers it with a mixed population of clients for a fixed window:
//
//   * two "filler" tenants (weight 3 vs 1) keep the queue saturated with
//     identical async jobs so weighted fair share is measurable,
//   * a pool of request/response clients spread across three more tenants,
//     one of them rate-limited so over_quota rejections (and retry_after_ms
//     driven retries) actually happen,
//   * abrupt-disconnect clients that send a request and slam the
//     connection without reading the response,
//   * slow clients that pipeline large batch_evaluate jobs and then never
//     read — the daemon must evict them within its write timeout.
//
// At the end the harness asserts, against the daemon's own stats/metrics:
//
//   1. every response for the same spec was bit-identical (worker-count
//      and schedule invariance held under concurrency),
//   2. completed jobs split between the filler tenants within 20% of
//      their 3:1 weights,
//   3. over_quota and evicted_slow both fired and are visible in stats,
//   4. the Prometheus exposition still validates,
//   5. SIGTERM drains the daemon to exit code 0.
//
// Any violation (or a hang: the whole run is under an alarm) exits
// non-zero. CI runs this as the `service-soak` job.
//
// Usage:
//   qaoa_soak [--clients=300] [--slow=8] [--duration=10] [--workers=4]
//             [--dir=DIR] [--verbose]

#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/prometheus.hpp"
#include "service/client.hpp"
#include "service/json.hpp"
#include "service/net.hpp"
#include "service/server.hpp"

namespace {

using namespace fastqaoa;
using service::Client;
using service::Json;
using Clock = std::chrono::steady_clock;

std::string string_option(int argc, char** argv, const char* key,
                          const std::string& fallback) {
  const std::size_t len = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, len) == 0 && argv[i][len] == '=') {
      return std::string(argv[i] + len + 1);
    }
  }
  return fallback;
}

long long int_option(int argc, char** argv, const char* key,
                     long long fallback) {
  const std::string v = string_option(argc, argv, key, "");
  return v.empty() ? fallback : std::strtoll(v.c_str(), nullptr, 10);
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

struct Failures {
  std::atomic<int> count{0};
  std::mutex mu;

  void fail(const std::string& what) {
    count.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu);
    std::fprintf(stderr, "qaoa_soak: FAIL: %s\n", what.c_str());
  }
};

/// The bit-identity ledger: first response value per spec wins; every
/// later response must match it exactly.
class ResultLedger {
 public:
  void check(int spec, double value, Failures& failures) {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = first_.emplace(spec, value);
    if (!inserted && it->second != value) {
      failures.fail("bit-identity violated for spec " + std::to_string(spec) +
                    ": " + std::to_string(it->second) + " vs " +
                    std::to_string(value));
    }
  }

 private:
  std::mutex mu_;
  std::map<int, double> first_;
};

Json evaluate_request(int spec_index, const std::string& key) {
  Json req = Json::object();
  req.set("op", Json("evaluate"));
  req.set("problem", Json("maxcut"));
  req.set("mixer", Json("tf"));
  req.set("n", Json(12));
  req.set("p", Json(1));
  req.set("seed", Json(static_cast<std::uint64_t>(100 + spec_index)));
  Json betas = Json::array();
  betas.push_back(Json(0.35 + 0.01 * spec_index));
  Json gammas = Json::array();
  gammas.push_back(Json(0.55 + 0.01 * spec_index));
  req.set("betas", std::move(betas));
  req.set("gammas", std::move(gammas));
  req.set("key", Json(key));
  return req;
}

/// One filler tenant: post a deep backlog of identical (deliberately
/// heavy) async jobs, so this tenant's sub-queue stays non-empty for the
/// whole window and stride scheduling has something to arbitrate. Fair
/// share is only defined while both filler queues are backlogged — the
/// main thread snapshots completions just before the deadline, while
/// that still holds.
void filler_thread(const std::string& socket, const std::string& key,
                   int jobs, Clock::time_point deadline,
                   Failures& failures) {
  Json req = Json::object();
  req.set("op", Json("evaluate"));
  req.set("problem", Json("maxcut"));
  req.set("mixer", Json("tf"));
  req.set("n", Json(16));
  req.set("p", Json(2));
  req.set("seed", Json(std::uint64_t{7}));
  Json betas = Json::array();
  betas.push_back(Json(0.3));
  betas.push_back(Json(0.2));
  Json gammas = Json::array();
  gammas.push_back(Json(0.6));
  gammas.push_back(Json(0.4));
  req.set("betas", std::move(betas));
  req.set("gammas", std::move(gammas));
  req.set("key", Json(key));
  req.set("async", Json(true));
  try {
    Client client = Client::connect_unix(socket);
    int submitted = 0;
    while (submitted < jobs && Clock::now() < deadline) {
      const Json response = client.request(req);
      const Json* ok = response.find("ok");
      if (ok != nullptr && ok->is_bool() && ok->as_bool()) {
        ++submitted;
        continue;
      }
      // overloaded: ease off just enough to let a worker drain one.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  } catch (const std::exception& e) {
    failures.fail(std::string("filler(") + key + "): " + e.what());
  }
}

/// One mixed request/response client: sync evaluates with bit-identity
/// checking, quota-aware retry, and a periodic abrupt disconnect (send a
/// request, close without reading — the daemon must shrug it off).
void mixed_thread(int index, const std::string& socket,
                  const std::string& key, Clock::time_point deadline,
                  ResultLedger& ledger, Failures& failures,
                  std::atomic<std::uint64_t>& completed,
                  std::atomic<std::uint64_t>& quota_rejections) {
  int iteration = 0;
  while (Clock::now() < deadline) {
    try {
      Client client = Client::connect_unix(socket);
      for (int burst = 0; burst < 8 && Clock::now() < deadline; ++burst) {
        ++iteration;
        const int spec = (index + burst) % 4;
        const Json req = evaluate_request(spec, key);
        if (iteration % 13 == 0) {
          // Abrupt disconnect: fire and slam the door mid-response.
          client.send(req);
          client.close();
          break;
        }
        const Json response = client.request(req);
        const Json* ok = response.find("ok");
        if (ok != nullptr && ok->is_bool() && ok->as_bool()) {
          const Json* result = response.find("result");
          if (result != nullptr) {
            ledger.check(spec, result->at("expectation").as_double(),
                         failures);
            completed.fetch_add(1, std::memory_order_relaxed);
          }
          continue;
        }
        const Json* err = response.find("error");
        const std::string code =
            err != nullptr && err->find("code") != nullptr
                ? err->at("code").as_string()
                : "?";
        if (code == "over_quota" || code == "overloaded") {
          if (code == "over_quota") {
            quota_rejections.fetch_add(1, std::memory_order_relaxed);
          }
          long long wait_ms = 20;
          if (err->find("retry_after_ms") != nullptr) {
            wait_ms = std::min<long long>(
                250, err->at("retry_after_ms").as_int64());
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
          continue;
        }
        failures.fail("unexpected rejection '" + code +
                      "': " + response.dump());
        return;
      }
    } catch (const std::exception&) {
      // Transport hiccup (e.g. our own abrupt close raced a response, or
      // the daemon shed this connection): reconnect and carry on.
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
}

/// One slow client: pipeline big batch_evaluate responses and never read.
/// The daemon must evict this connection within its write timeout instead
/// of buffering without bound or stalling anyone else.
void slow_thread(const std::string& socket, const std::string& key,
                 Clock::time_point deadline, Failures& failures,
                 std::atomic<std::uint64_t>& evictions_seen) {
  try {
    const int fd = service::connect_unix(socket);
    // A large batch_evaluate: the ~80 KB response cannot fit the daemon's
    // shrunken SO_SNDBUF, so unread responses pile up in its write buffer.
    constexpr int kLanes = 4000;
    std::string betas = "[";
    std::string gammas = "[";
    for (int lane = 0; lane < kLanes; ++lane) {
      if (lane > 0) {
        betas += ',';
        gammas += ',';
      }
      betas += "[0.3]";
      gammas += "[0.6]";
    }
    betas += ']';
    gammas += ']';
    const std::string line =
        "{\"op\":\"batch_evaluate\",\"problem\":\"maxcut\",\"mixer\":\"tf\","
        "\"n\":8,\"p\":1,\"seed\":9,\"key\":\"" + key + "\",\"betas\":" +
        betas + ",\"gammas\":" + gammas + "}\n";
    for (int i = 0; i < 4; ++i) service::write_all(fd, line);

    // Stall well past the daemon's write timeout (2s) without reading a
    // byte — this is what gets us evicted — then drain whatever the kernel
    // buffered. Because the daemon already closed its end, the drain ends
    // in EOF (or a reset) quickly; a connection that were still open would
    // instead park in the receive timeout until the extended deadline.
    std::this_thread::sleep_for(std::chrono::seconds(4));
    timeval tv{};
    tv.tv_sec = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    char sink[65536];
    bool evicted = false;
    const auto give_up = deadline + std::chrono::seconds(15);
    while (Clock::now() < give_up) {
      const ssize_t n = ::recv(fd, sink, sizeof(sink), 0);
      if (n == 0) {
        evicted = true;  // daemon hung up on us: the eviction
        break;
      }
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          continue;  // still open, nothing pending: keep probing
        }
        evicted = true;  // ECONNRESET and friends also mean eviction
        break;
      }
    }
    service::close_fd(fd);
    if (evicted) {
      evictions_seen.fetch_add(1, std::memory_order_relaxed);
    } else {
      failures.fail("slow client was not evicted before the deadline");
    }
  } catch (const std::exception& e) {
    failures.fail(std::string("slow client: ") + e.what());
  }
}

Client connect_with_retry(const std::string& socket) {
  for (int attempt = 0; attempt < 400; ++attempt) {
    try {
      return Client::connect_unix(socket);
    } catch (const std::exception&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
  }
  throw Error("daemon did not come up at " + socket);
}

std::uint64_t u64_field(const Json& obj, const char* key) {
  const Json* v = obj.find(key);
  return (v != nullptr && v->is_number()) ? v->as_uint64() : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const long long clients = int_option(argc, argv, "--clients", 300);
  const long long slow_clients = int_option(argc, argv, "--slow", 8);
  const long long duration_s = int_option(argc, argv, "--duration", 10);
  const long long workers = int_option(argc, argv, "--workers", 4);
  const bool verbose = has_flag(argc, argv, "--verbose");
  std::string dir = string_option(argc, argv, "--dir", "");
  if (dir.empty()) {
    char tmpl[] = "/tmp/qaoa_soak.XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    if (made == nullptr) {
      std::fprintf(stderr, "qaoa_soak: mkdtemp: %s\n", std::strerror(errno));
      return 2;
    }
    dir = made;
  }
  const std::string socket = dir + "/qaoa.sock";

  // Hang detection: if anything deadlocks, the alarm kills the whole run
  // (non-zero exit) instead of wedging CI.
  ::alarm(static_cast<unsigned>(duration_s * 4 + 120));
  ::signal(SIGPIPE, SIG_IGN);

  service::DaemonOptions options;
  options.socket_path = socket;
  options.verbose = verbose;
  options.service.workers = static_cast<int>(workers);
  // Deep queue: the fillers park a couple thousand jobs so their tenants
  // stay backlogged for the whole window (fair share is only defined while
  // everyone has work queued); the mixed clients never see "overloaded".
  options.service.queue_high_water = 8192;
  options.service.cache_bytes = 64u << 20;
  options.max_connections = static_cast<std::size_t>(clients) + 64;
  options.write_timeout_seconds = 2.0;
  options.idle_timeout_seconds = 120.0;
  options.sndbuf_bytes = 16 * 1024;  // make slow-client eviction testable
  {
    using service::TenantConfig;
    TenantConfig heavy;  // fair-share measurement pair: 3x vs 1x
    heavy.name = "heavy";
    heavy.key = "k-heavy";
    heavy.weight = 3.0;
    TenantConfig light;
    light.name = "light";
    light.key = "k-light";
    light.weight = 1.0;
    TenantConfig acme;
    acme.name = "acme";
    acme.key = "k-acme";
    acme.weight = 2.0;
    TenantConfig widgets;
    widgets.name = "widgets";
    widgets.key = "k-widgets";
    widgets.weight = 1.0;
    TenantConfig free_tier;  // rate-limited: over_quota must fire
    free_tier.name = "free";
    free_tier.key = "k-free";
    free_tier.weight = 1.0;
    free_tier.rate_per_sec = 25.0;
    free_tier.burst = 25.0;
    // The concurrency quota trips deterministically under load: with
    // ~clients/3 concurrent sync submitters on this key, inflight > 2
    // rejects with over_quota regardless of queue depth or token timing.
    free_tier.max_inflight = 2;
    TenantConfig slow;
    slow.name = "slow";
    slow.key = "k-slow";
    slow.weight = 1.0;
    options.service.tenants = {heavy, light, acme, widgets, free_tier, slow};
  }

  const pid_t daemon_pid = ::fork();
  if (daemon_pid < 0) {
    std::fprintf(stderr, "qaoa_soak: fork: %s\n", std::strerror(errno));
    return 2;
  }
  if (daemon_pid == 0) {
    std::_Exit(service::run_daemon(options));
  }

  Failures failures;
  ResultLedger ledger;
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> quota_rejections{0};
  std::atomic<std::uint64_t> evictions_seen{0};
  int exit_code = 0;

  try {
    {
      Client probe = connect_with_retry(socket);
      Json ping = Json::object();
      ping.set("op", Json("ping"));
      if (!probe.request(ping).at("ok").as_bool()) {
        throw Error("daemon ping failed");
      }
    }
    const auto deadline = Clock::now() + std::chrono::seconds(duration_s);

    // Sized so the workers cannot drain either filler backlog before the
    // fairness snapshot: generous multiple of worst-case throughput.
    const int fill_jobs =
        static_cast<int>(duration_s * workers * 40);

    std::vector<std::thread> threads;
    threads.emplace_back(filler_thread, socket, "k-heavy", fill_jobs,
                         deadline, std::ref(failures));
    threads.emplace_back(filler_thread, socket, "k-light", fill_jobs,
                         deadline, std::ref(failures));
    static const char* kMixedKeys[] = {"k-acme", "k-widgets", "k-free"};
    for (long long i = 0; i < clients; ++i) {
      threads.emplace_back(mixed_thread, static_cast<int>(i), socket,
                           kMixedKeys[i % 3], deadline, std::ref(ledger),
                           std::ref(failures), std::ref(completed),
                           std::ref(quota_rejections));
    }
    for (long long i = 0; i < slow_clients; ++i) {
      threads.emplace_back(slow_thread, socket, "k-slow", deadline,
                           std::ref(failures), std::ref(evictions_seen));
    }

    // Fairness snapshot just before the deadline, while both filler
    // backlogs are still queued (afterwards the queues drain and the
    // completed ratio washes out toward the submitted ratio).
    std::this_thread::sleep_until(deadline - std::chrono::seconds(1));
    std::uint64_t heavy_done = 0;
    std::uint64_t light_done = 0;
    std::uint64_t heavy_queued = 0;
    std::uint64_t light_queued = 0;
    {
      Client fair = Client::connect_unix(socket);
      Json stats_req = Json::object();
      stats_req.set("op", Json("stats"));
      stats_req.set("key", Json("k-acme"));
      const Json stats = fair.request(stats_req).at("stats");
      if (const Json* tenants = stats.find("tenants"); tenants != nullptr) {
        for (const Json& t : tenants->as_array()) {
          if (t.at("name").as_string() == "heavy") {
            heavy_done = u64_field(t, "completed");
            heavy_queued = u64_field(t, "queued");
          } else if (t.at("name").as_string() == "light") {
            light_done = u64_field(t, "completed");
            light_queued = u64_field(t, "queued");
          }
        }
      }
    }
    if (heavy_queued == 0 || light_queued == 0) {
      failures.fail("a filler backlog ran dry before the snapshot "
                    "(heavy_queued=" + std::to_string(heavy_queued) +
                    ", light_queued=" + std::to_string(light_queued) +
                    "): fairness not measurable, raise --duration");
    } else if (heavy_done < 50 || light_done < 15) {
      failures.fail("fillers completed too few jobs to judge fairness "
                    "(heavy=" + std::to_string(heavy_done) +
                    ", light=" + std::to_string(light_done) + ")");
    } else {
      const double ratio = static_cast<double>(heavy_done) /
                           static_cast<double>(light_done);
      if (ratio < 3.0 * 0.8 || ratio > 3.0 * 1.2) {
        failures.fail("fair-share ratio " + std::to_string(ratio) +
                      " outside 3.0 +/- 20%");
      } else if (verbose) {
        std::fprintf(stderr, "qaoa_soak: fair-share ratio %.2f (target 3)\n",
                     ratio);
      }
    }

    for (std::thread& t : threads) t.join();

    // Post-window verification against the daemon's own accounting.
    Client verifier = Client::connect_unix(socket);
    Json stats_req = Json::object();
    stats_req.set("op", Json("stats"));
    stats_req.set("key", Json("k-acme"));
    const Json stats = verifier.request(stats_req).at("stats");

    if (u64_field(stats, "over_quota") == 0 || quota_rejections.load() == 0) {
      failures.fail("rate-limited tenant never saw over_quota");
    }
    const Json& frontend = stats.at("frontend");
    if (u64_field(frontend, "evicted_slow") == 0) {
      failures.fail("no slow-client evictions recorded by the daemon");
    }
    if (evictions_seen.load() == 0) {
      failures.fail("no slow client observed its own eviction");
    }
    if (completed.load() == 0) {
      failures.fail("mixed clients completed zero jobs");
    }

    Json metrics_req = Json::object();
    metrics_req.set("op", Json("metrics"));
    metrics_req.set("key", Json("k-acme"));
    const Json metrics = verifier.request(metrics_req);
    const std::string text = metrics.at("text").as_string();
    std::string error;
    if (!obs::validate_prometheus_text(text, &error)) {
      failures.fail("prometheus exposition invalid: " + error);
    }
    for (const char* family :
         {"fastqaoa_frontend_evicted_slow_total",
          "fastqaoa_tenant_jobs_completed_total",
          "fastqaoa_tenant_over_quota_total",
          "fastqaoa_service_queue_depth_at_admission_bucket"}) {
      if (text.find(family) == std::string::npos) {
        failures.fail(std::string("metrics family missing: ") + family);
      }
    }

    std::fprintf(stderr,
                 "qaoa_soak: %llu sync jobs ok, %llu quota rejections, "
                 "%llu slow evictions, heavy/light=%llu/%llu\n",
                 static_cast<unsigned long long>(completed.load()),
                 static_cast<unsigned long long>(quota_rejections.load()),
                 static_cast<unsigned long long>(evictions_seen.load()),
                 static_cast<unsigned long long>(heavy_done),
                 static_cast<unsigned long long>(light_done));
  } catch (const std::exception& e) {
    failures.fail(std::string("harness: ") + e.what());
  }

  // Graceful drain must be exit code 0 even right after the storm.
  if (::kill(daemon_pid, SIGTERM) != 0) {
    failures.fail("kill(SIGTERM) failed");
  }
  int status = 0;
  ::waitpid(daemon_pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    failures.fail("daemon did not drain to exit 0 (status " +
                  std::to_string(status) + ")");
  }

  ::unlink(socket.c_str());
  ::rmdir(dir.c_str());
  if (failures.count.load() != 0) exit_code = 1;
  std::fprintf(stderr, "qaoa_soak: %s\n",
               exit_code == 0 ? "PASS" : "FAIL");
  return exit_code;
}
