// qaoa_client — command-line client for the qaoa_serve daemon.
//
// Usage:
//   qaoa_client --socket=PATH|--tcp=PORT VERB [options]
//
// Verbs:
//   evaluate | gradient | sample   --problem --mixer --n [--k] [--p]
//                                  --betas=a,b,.. --gammas=a,b,..
//                                  [--seed] [--density] [--minimize]
//                                  [--shots] [--opt-seed]
//   batch_evaluate                 like evaluate, but --betas/--gammas take
//                                  ';'-separated lanes of ','-separated
//                                  angles (--betas=0.1;0.2;0.3 sweeps three
//                                  p=1 angle sets in ONE job / one
//                                  admission decision); result carries one
//                                  expectation per lane
//   find_angles                    --problem --mixer --n [--k] [--p]
//                                  [--hops] [--starts] [--opt-seed]
//                                  [--checkpoint] [--deadline] [--max-evals]
//   status | cancel                --id=N
//   stats | ping
//   stats --watch[=SECS]           poll stats on a cadence and print a
//                                  delta line per tick (jobs/s, cache hit
//                                  rate, queue depth); --count=N stops
//                                  after N ticks (default: run forever)
//   metrics [--validate]           print the daemon's Prometheus text
//                                  exposition; --validate also runs the
//                                  format checker (exit 1 on violations)
//   watch --id=N [--throttle=MS]   stream per-round progress events for a
//                                  running find_angles job as NDJSON until
//                                  the terminal "done" event; --throttle
//                                  simulates a slow consumer (testing aid)
//   raw                            --json='{"op":...}'  (send verbatim)
//
// Job verbs block until the result arrives unless --async is given (then
// the response carries the job id for later `status` polling).
//
// Multi-tenant daemons require an API key: --key=K authenticates every
// request (it rides along as the protocol's "key" field).
//
// Backoff: --retries=N re-sends a request rejected with "overloaded" or
// "over_quota" up to N times, sleeping a jittered exponential backoff
// between attempts — and at least the server's retry_after_ms hint when
// the rejection carries one. --retry-max-ms caps one sleep (default
// 30000). `watch --id=N` with --retries also reconnects transparently
// when the daemon drops the stream mid-watch (a finished job's terminal
// event is latched server-side, so a reconnect never hangs).
//
// Exit codes: 0 = ok response; 4 = rejected "overloaded"/"over_quota"
// (back off and retry); 1 = any other protocol error ("draining",
// "bad_request", failed job, ...); 2 = usage or transport failure (daemon
// unreachable/gone).
//
// The response object is printed to stdout as one JSON line either way —
// scripts parse stdout and branch on the exit code.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "obs/prometheus.hpp"
#include "service/client.hpp"
#include "service/json.hpp"

namespace {

using namespace fastqaoa;
using service::Json;

std::string string_option(int argc, char** argv, const char* key,
                          const std::string& fallback) {
  const std::size_t len = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, len) == 0 && argv[i][len] == '=') {
      return std::string(argv[i] + len + 1);
    }
  }
  return fallback;
}

bool has_option(int argc, char** argv, const char* key) {
  const std::size_t len = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, len) == 0 && argv[i][len] == '=') {
      return true;
    }
  }
  return false;
}

long long int_option(int argc, char** argv, const char* key,
                     long long fallback) {
  const std::string v = string_option(argc, argv, key, "");
  return v.empty() ? fallback : std::strtoll(v.c_str(), nullptr, 10);
}

double double_option(int argc, char** argv, const char* key,
                     double fallback) {
  const std::string v = string_option(argc, argv, key, "");
  return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "qaoa_client: %s\n", message.c_str());
  std::fprintf(stderr,
               "usage: qaoa_client --socket=PATH|--tcp=PORT "
               "evaluate|batch_evaluate|gradient|find_angles|sample|status|"
               "cancel|stats|metrics|watch|ping|raw "
               "[--problem=..] [--mixer=..] [--n=..] [--k=..] "
               "[--p=..] [--betas=a,b,..] [--gammas=a,b,..] [--seed=..] "
               "[--density=..] [--degree=..] [--engine=exact|mps] "
               "[--max-bond=..] [--fidelity-budget=..] [--trunc-tol=..] "
               "[--minimize] [--shots=..] [--hops=..] "
               "[--starts=..] [--opt-seed=..] [--checkpoint=..] "
               "[--deadline=..] [--max-evals=..] [--id=..] [--async] "
               "[--watch[=SECS]] [--count=N] [--validate] [--throttle=MS] "
               "[--key=K] [--retries=N] [--retry-max-ms=MS] "
               "[--json='{...}']\n");
  std::exit(2);
}

Json csv_doubles(const std::string& csv) {
  Json arr = Json::array();
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    const std::string field = csv.substr(start, comma - start);
    if (!field.empty()) {
      arr.push_back(Json(std::strtod(field.c_str(), nullptr)));
    }
    start = comma + 1;
  }
  return arr;
}

/// batch_evaluate angle lists: ';' separates lanes, ',' separates the
/// angles within one lane — "0.1,0.2;0.3,0.4" -> [[0.1,0.2],[0.3,0.4]].
Json csv_lanes(const std::string& csv) {
  Json outer = Json::array();
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t semi = csv.find(';', start);
    if (semi == std::string::npos) semi = csv.size();
    const std::string lane = csv.substr(start, semi - start);
    if (!lane.empty()) outer.push_back(csv_doubles(lane));
    start = semi + 1;
  }
  return outer;
}

const char* find_verb(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') return argv[i];
  }
  return nullptr;
}

std::uint64_t stat_u64(const Json& stats, const char* key) {
  const Json* v = stats.find(key);
  return (v != nullptr && v->is_number()) ? v->as_uint64() : 0;
}

/// Retry policy for "overloaded"/"over_quota" rejections: jittered
/// exponential backoff, floored at the server's retry_after_ms hint.
struct Backoff {
  long long retries = 0;       ///< additional attempts after the first
  long long max_sleep_ms = 30'000;
  long long base_ms = 50;
  std::mt19937 rng{static_cast<std::uint32_t>(
      std::chrono::steady_clock::now().time_since_epoch().count() ^
      (static_cast<long long>(::getpid()) << 16))};

  /// Sleep before attempt `attempt` (1-based retry count). `hint_ms` is the
  /// server's retry_after_ms (0 = none).
  void sleep(long long attempt, long long hint_ms) {
    const long long shift = std::min<long long>(attempt - 1, 20);
    long long ms = std::min(max_sleep_ms, base_ms << shift);
    // Full jitter: uniform in [ms/2, ms] so a burst of rejected clients
    // does not come back in lockstep.
    std::uniform_real_distribution<double> dist(0.5, 1.0);
    ms = static_cast<long long>(static_cast<double>(ms) * dist(rng));
    ms = std::min(max_sleep_ms, std::max(ms, hint_ms));
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
};

/// When `response` is a retryable rejection, returns true and surfaces the
/// server's retry_after_ms hint.
bool retryable_rejection(const Json& response, long long* hint_ms) {
  const Json* err = response.find("error");
  if (err == nullptr) return false;
  const Json* code = err->find("code");
  if (code == nullptr || !code->is_string()) return false;
  const std::string c = code->as_string();
  if (c != "overloaded" && c != "over_quota") return false;
  *hint_ms = 0;
  if (const Json* hint = err->find("retry_after_ms");
      hint != nullptr && hint->is_number()) {
    *hint_ms = hint->as_int64();
  }
  return true;
}

/// `metrics [--validate]`: print the Prometheus exposition verbatim so the
/// output can be piped straight into promtool or a file scrape target.
int run_metrics(service::Client& client, bool validate,
                const std::string& key) {
  const Json response = client.request([&key] {
    Json req = Json::object();
    req.set("op", Json("metrics"));
    if (!key.empty()) req.set("key", Json(key));
    return req;
  }());
  const Json* ok = response.find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
    std::printf("%s\n", response.dump().c_str());
    return 1;
  }
  const std::string text = response.at("text").as_string();
  std::fputs(text.c_str(), stdout);
  if (validate) {
    std::string error;
    if (!obs::validate_prometheus_text(text, &error)) {
      std::fprintf(stderr, "qaoa_client: invalid prometheus text: %s\n",
                   error.c_str());
      return 1;
    }
    std::fprintf(stderr, "qaoa_client: prometheus text valid\n");
  }
  return 0;
}

/// `watch --id=N`: stream progress events, one JSON line each, until the
/// terminal "done" event (exit 0) or the daemon closes the stream (exit 1).
/// With retries, a stream dropped before "done" reconnects transparently:
/// the replacement subscription picks up live events (or the latched
/// terminal event when the job already finished), and the duplicate ack is
/// not re-printed.
int run_watch(service::Client client,
              const std::function<service::Client()>& reconnect,
              const Json& req, Backoff backoff) {
  bool ack_printed = false;
  for (long long attempt = 0;; ++attempt) {
    std::string line;
    bool stream_open = true;
    try {
      client.send(req);
      if (!client.read_line(line)) {
        stream_open = false;
      } else {
        if (!ack_printed) {
          std::printf("%s\n", line.c_str());
          std::fflush(stdout);
          ack_printed = true;
        }
        const Json ack = Json::parse(line);
        const Json* ok = ack.find("ok");
        if (ok != nullptr && ok->is_bool() && !ok->as_bool()) return 1;
        while (client.read_line(line)) {
          std::printf("%s\n", line.c_str());
          std::fflush(stdout);
          try {
            const Json event = Json::parse(line);
            const Json* kind = event.find("event");
            if (kind != nullptr && kind->is_string() &&
                kind->as_string() == "done") {
              return 0;
            }
          } catch (const std::exception&) {
            // Not JSON? Keep relaying; the daemon ends the stream.
          }
        }
        stream_open = false;
      }
    } catch (const std::exception&) {
      stream_open = false;  // transport error: same recovery as a clean EOF
    }
    if (stream_open) continue;
    if (attempt >= backoff.retries) break;
    backoff.sleep(attempt + 1, 0);
    try {
      client = reconnect();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "qaoa_client: reconnect failed: %s\n", e.what());
      return 2;
    }
  }
  std::fprintf(stderr, "qaoa_client: stream ended without a terminal event\n");
  return 1;
}

/// `stats --watch[=SECS]`: poll the stats verb and print one delta line per
/// tick — the 30-second "is it healthy" view without a metrics stack.
int run_stats_watch(service::Client& client, double interval_seconds,
                    long long max_ticks, const std::string& key) {
  Json req = Json::object();
  req.set("op", Json("stats"));
  if (!key.empty()) req.set("key", Json(key));

  Json first = client.request(req);
  const Json* stats = first.find("stats");
  if (stats == nullptr) {
    std::printf("%s\n", first.dump().c_str());
    return 1;
  }
  std::uint64_t prev_done = stat_u64(*stats, "completed") +
                            stat_u64(*stats, "failed") +
                            stat_u64(*stats, "cancelled");
  const Json* cache = stats->find("plan_cache");
  std::uint64_t prev_hits = cache != nullptr ? stat_u64(*cache, "hits") : 0;
  std::uint64_t prev_misses =
      cache != nullptr ? stat_u64(*cache, "misses") : 0;
  auto prev_time = std::chrono::steady_clock::now();

  for (long long tick = 0; max_ticks <= 0 || tick < max_ticks; ++tick) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(interval_seconds));
    const Json response = client.request(req);
    stats = response.find("stats");
    if (stats == nullptr) {
      std::printf("%s\n", response.dump().c_str());
      return 1;
    }
    const auto now = std::chrono::steady_clock::now();
    const double dt = std::chrono::duration<double>(now - prev_time).count();
    const std::uint64_t done = stat_u64(*stats, "completed") +
                               stat_u64(*stats, "failed") +
                               stat_u64(*stats, "cancelled");
    cache = stats->find("plan_cache");
    const std::uint64_t hits = cache != nullptr ? stat_u64(*cache, "hits") : 0;
    const std::uint64_t misses =
        cache != nullptr ? stat_u64(*cache, "misses") : 0;
    const double jobs_per_s =
        dt > 0.0 ? static_cast<double>(done - prev_done) / dt : 0.0;
    const std::uint64_t lookups = (hits - prev_hits) + (misses - prev_misses);
    const double hit_rate =
        lookups > 0
            ? 100.0 * static_cast<double>(hits - prev_hits) /
                  static_cast<double>(lookups)
            : 0.0;
    std::printf("jobs/s=%.2f queue=%llu running=%llu cache_hit%%=%.1f "
                "dropped_events=%llu total_done=%llu\n",
                jobs_per_s,
                static_cast<unsigned long long>(
                    stat_u64(*stats, "queue_depth")),
                static_cast<unsigned long long>(stat_u64(*stats, "running")),
                hit_rate,
                static_cast<unsigned long long>(
                    stat_u64(*stats, "subscribe_dropped")),
                static_cast<unsigned long long>(done));
    std::fflush(stdout);
    prev_done = done;
    prev_hits = hits;
    prev_misses = misses;
    prev_time = now;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (has_flag(argc, argv, "--help") || has_flag(argc, argv, "-h")) {
    usage_error("help requested");
  }
  const char* verb_cstr = find_verb(argc, argv);
  if (verb_cstr == nullptr) usage_error("missing verb");
  const std::string verb = verb_cstr;

  Json req = Json::object();
  if (verb == "raw") {
    const std::string raw = string_option(argc, argv, "--json", "");
    if (raw.empty()) usage_error("raw needs --json='{...}'");
    try {
      req = Json::parse(raw);
    } catch (const std::exception& e) {
      usage_error(std::string("bad --json: ") + e.what());
    }
  } else if (verb == "status" || verb == "cancel") {
    if (!has_option(argc, argv, "--id")) usage_error(verb + " needs --id=N");
    req.set("op", Json(verb));
    req.set("id", Json(static_cast<std::uint64_t>(
                      int_option(argc, argv, "--id", 0))));
  } else if (verb == "stats" || verb == "ping" || verb == "metrics") {
    req.set("op", Json(verb));
  } else if (verb == "watch") {
    if (!has_option(argc, argv, "--id")) usage_error("watch needs --id=N");
    req.set("op", Json("subscribe"));
    req.set("id", Json(static_cast<std::uint64_t>(
                      int_option(argc, argv, "--id", 0))));
    if (has_option(argc, argv, "--throttle")) {
      req.set("throttle_ms",
              Json(int_option(argc, argv, "--throttle", 0)));
    }
  } else if (verb == "evaluate" || verb == "batch_evaluate" ||
             verb == "gradient" || verb == "find_angles" ||
             verb == "sample") {
    req.set("op", Json(verb));
    req.set("problem", Json(string_option(argc, argv, "--problem", "maxcut")));
    req.set("mixer", Json(string_option(argc, argv, "--mixer", "tf")));
    req.set("n", Json(int_option(argc, argv, "--n", 8)));
    if (has_option(argc, argv, "--k")) {
      req.set("k", Json(int_option(argc, argv, "--k", -1)));
    }
    if (has_option(argc, argv, "--density")) {
      req.set("density", Json(double_option(argc, argv, "--density", 6.0)));
    }
    if (has_option(argc, argv, "--seed")) {
      req.set("seed", Json(static_cast<std::uint64_t>(
                          int_option(argc, argv, "--seed", 42))));
    }
    if (has_option(argc, argv, "--degree")) {
      req.set("degree", Json(int_option(argc, argv, "--degree", 0)));
    }
    if (has_option(argc, argv, "--engine")) {
      req.set("engine", Json(string_option(argc, argv, "--engine", "exact")));
    }
    if (has_option(argc, argv, "--max-bond")) {
      req.set("max_bond", Json(int_option(argc, argv, "--max-bond", 64)));
    }
    if (has_option(argc, argv, "--fidelity-budget")) {
      req.set("fidelity_budget",
              Json(double_option(argc, argv, "--fidelity-budget", 1e-3)));
    }
    if (has_option(argc, argv, "--trunc-tol")) {
      req.set("trunc_tol",
              Json(double_option(argc, argv, "--trunc-tol", 1e-12)));
    }
    req.set("p", Json(int_option(argc, argv, "--p", 1)));
    if (has_flag(argc, argv, "--minimize")) req.set("minimize", Json(true));
    const bool lanes = verb == "batch_evaluate";
    if (has_option(argc, argv, "--betas")) {
      const std::string csv = string_option(argc, argv, "--betas", "");
      req.set("betas", lanes ? csv_lanes(csv) : csv_doubles(csv));
    }
    if (has_option(argc, argv, "--gammas")) {
      const std::string csv = string_option(argc, argv, "--gammas", "");
      req.set("gammas", lanes ? csv_lanes(csv) : csv_doubles(csv));
    }
    if (has_option(argc, argv, "--shots")) {
      req.set("shots", Json(static_cast<std::uint64_t>(
                           int_option(argc, argv, "--shots", 1024))));
    }
    if (has_option(argc, argv, "--hops")) {
      req.set("hops", Json(int_option(argc, argv, "--hops", 8)));
    }
    if (has_option(argc, argv, "--starts")) {
      req.set("starts", Json(int_option(argc, argv, "--starts", 1)));
    }
    if (has_option(argc, argv, "--opt-seed")) {
      req.set("opt_seed", Json(static_cast<std::uint64_t>(
                              int_option(argc, argv, "--opt-seed", 0))));
    }
    if (has_option(argc, argv, "--checkpoint")) {
      req.set("checkpoint",
              Json(string_option(argc, argv, "--checkpoint", "")));
    }
    if (has_option(argc, argv, "--deadline")) {
      req.set("deadline", Json(double_option(argc, argv, "--deadline", 0.0)));
    }
    if (has_option(argc, argv, "--max-evals")) {
      req.set("max_evals", Json(static_cast<std::uint64_t>(
                               int_option(argc, argv, "--max-evals", 0))));
    }
    if (has_flag(argc, argv, "--async")) req.set("async", Json(true));
  } else {
    usage_error("unknown verb '" + verb + "'");
  }

  // Multi-tenant daemons: --key authenticates every request.
  const std::string key = string_option(argc, argv, "--key", "");
  if (!key.empty() && req.find("key") == nullptr) req.set("key", Json(key));

  Backoff backoff;
  backoff.retries = int_option(argc, argv, "--retries", 0);
  if (backoff.retries < 0) usage_error("--retries must be >= 0");
  backoff.max_sleep_ms = int_option(argc, argv, "--retry-max-ms", 30'000);
  if (backoff.max_sleep_ms < 1) usage_error("--retry-max-ms must be >= 1");

  const std::string socket_path = string_option(argc, argv, "--socket", "");
  const long long tcp_port = int_option(argc, argv, "--tcp", -1);
  if (socket_path.empty() && tcp_port < 0) {
    usage_error("need --socket=PATH or --tcp=PORT");
  }
  const auto connect = [&socket_path, tcp_port] {
    return socket_path.empty()
               ? service::Client::connect_tcp(static_cast<int>(tcp_port))
               : service::Client::connect_unix(socket_path);
  };

  try {
    service::Client client = connect();
    if (verb == "metrics") {
      return run_metrics(client, has_flag(argc, argv, "--validate"), key);
    }
    if (verb == "watch") {
      return run_watch(std::move(client), connect, req, backoff);
    }
    if (verb == "stats" &&
        (has_flag(argc, argv, "--watch") ||
         has_option(argc, argv, "--watch"))) {
      double secs = double_option(argc, argv, "--watch", 2.0);
      if (secs <= 0.0) secs = 2.0;
      return run_stats_watch(client, secs,
                             int_option(argc, argv, "--count", 0), key);
    }

    Json response = client.request(req);
    for (long long attempt = 1; attempt <= backoff.retries; ++attempt) {
      long long hint_ms = 0;
      if (!retryable_rejection(response, &hint_ms)) break;
      backoff.sleep(attempt, hint_ms);
      response = client.request(req);
    }
    std::printf("%s\n", response.dump().c_str());

    const Json* ok = response.find("ok");
    if (ok != nullptr && ok->is_bool() && ok->as_bool()) {
      // "ok" covers the request, not the job: a sync job that ran and
      // failed comes back ok:true with state "failed" — surface as exit 1.
      const Json* state = response.find("state");
      if (state != nullptr && state->as_string() == "failed") return 1;
      return 0;
    }
    const Json* err = response.find("error");
    if (err != nullptr) {
      const Json* code = err->find("code");
      if (code != nullptr && (code->as_string() == "overloaded" ||
                              code->as_string() == "over_quota")) {
        return 4;
      }
    }
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qaoa_client: %s\n", e.what());
    return 2;
  }
}
