// qaoa_client — command-line client for the qaoa_serve daemon.
//
// Usage:
//   qaoa_client --socket=PATH|--tcp=PORT VERB [options]
//
// Verbs:
//   evaluate | gradient | sample   --problem --mixer --n [--k] [--p]
//                                  --betas=a,b,.. --gammas=a,b,..
//                                  [--seed] [--density] [--minimize]
//                                  [--shots] [--opt-seed]
//   batch_evaluate                 like evaluate, but --betas/--gammas take
//                                  ';'-separated lanes of ','-separated
//                                  angles (--betas=0.1;0.2;0.3 sweeps three
//                                  p=1 angle sets in ONE job / one
//                                  admission decision); result carries one
//                                  expectation per lane
//   find_angles                    --problem --mixer --n [--k] [--p]
//                                  [--hops] [--starts] [--opt-seed]
//                                  [--checkpoint] [--deadline] [--max-evals]
//   status | cancel                --id=N
//   stats | ping
//   raw                            --json='{"op":...}'  (send verbatim)
//
// Job verbs block until the result arrives unless --async is given (then
// the response carries the job id for later `status` polling).
//
// Exit codes: 0 = ok response; 4 = rejected "overloaded" (back off and
// retry); 1 = any other protocol error ("draining", "bad_request", failed
// job, ...); 2 = usage or transport failure (daemon unreachable/gone).
//
// The response object is printed to stdout as one JSON line either way —
// scripts parse stdout and branch on the exit code.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "service/client.hpp"
#include "service/json.hpp"

namespace {

using namespace fastqaoa;
using service::Json;

std::string string_option(int argc, char** argv, const char* key,
                          const std::string& fallback) {
  const std::size_t len = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, len) == 0 && argv[i][len] == '=') {
      return std::string(argv[i] + len + 1);
    }
  }
  return fallback;
}

bool has_option(int argc, char** argv, const char* key) {
  const std::size_t len = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, len) == 0 && argv[i][len] == '=') {
      return true;
    }
  }
  return false;
}

long long int_option(int argc, char** argv, const char* key,
                     long long fallback) {
  const std::string v = string_option(argc, argv, key, "");
  return v.empty() ? fallback : std::strtoll(v.c_str(), nullptr, 10);
}

double double_option(int argc, char** argv, const char* key,
                     double fallback) {
  const std::string v = string_option(argc, argv, key, "");
  return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "qaoa_client: %s\n", message.c_str());
  std::fprintf(stderr,
               "usage: qaoa_client --socket=PATH|--tcp=PORT "
               "evaluate|batch_evaluate|gradient|find_angles|sample|status|"
               "cancel|stats|ping|raw [--problem=..] [--mixer=..] [--n=..] [--k=..] "
               "[--p=..] [--betas=a,b,..] [--gammas=a,b,..] [--seed=..] "
               "[--density=..] [--minimize] [--shots=..] [--hops=..] "
               "[--starts=..] [--opt-seed=..] [--checkpoint=..] "
               "[--deadline=..] [--max-evals=..] [--id=..] [--async] "
               "[--json='{...}']\n");
  std::exit(2);
}

Json csv_doubles(const std::string& csv) {
  Json arr = Json::array();
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    const std::string field = csv.substr(start, comma - start);
    if (!field.empty()) {
      arr.push_back(Json(std::strtod(field.c_str(), nullptr)));
    }
    start = comma + 1;
  }
  return arr;
}

/// batch_evaluate angle lists: ';' separates lanes, ',' separates the
/// angles within one lane — "0.1,0.2;0.3,0.4" -> [[0.1,0.2],[0.3,0.4]].
Json csv_lanes(const std::string& csv) {
  Json outer = Json::array();
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t semi = csv.find(';', start);
    if (semi == std::string::npos) semi = csv.size();
    const std::string lane = csv.substr(start, semi - start);
    if (!lane.empty()) outer.push_back(csv_doubles(lane));
    start = semi + 1;
  }
  return outer;
}

const char* find_verb(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') return argv[i];
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  if (has_flag(argc, argv, "--help") || has_flag(argc, argv, "-h")) {
    usage_error("help requested");
  }
  const char* verb_cstr = find_verb(argc, argv);
  if (verb_cstr == nullptr) usage_error("missing verb");
  const std::string verb = verb_cstr;

  Json req = Json::object();
  if (verb == "raw") {
    const std::string raw = string_option(argc, argv, "--json", "");
    if (raw.empty()) usage_error("raw needs --json='{...}'");
    try {
      req = Json::parse(raw);
    } catch (const std::exception& e) {
      usage_error(std::string("bad --json: ") + e.what());
    }
  } else if (verb == "status" || verb == "cancel") {
    if (!has_option(argc, argv, "--id")) usage_error(verb + " needs --id=N");
    req.set("op", Json(verb));
    req.set("id", Json(static_cast<std::uint64_t>(
                      int_option(argc, argv, "--id", 0))));
  } else if (verb == "stats" || verb == "ping") {
    req.set("op", Json(verb));
  } else if (verb == "evaluate" || verb == "batch_evaluate" ||
             verb == "gradient" || verb == "find_angles" ||
             verb == "sample") {
    req.set("op", Json(verb));
    req.set("problem", Json(string_option(argc, argv, "--problem", "maxcut")));
    req.set("mixer", Json(string_option(argc, argv, "--mixer", "tf")));
    req.set("n", Json(int_option(argc, argv, "--n", 8)));
    if (has_option(argc, argv, "--k")) {
      req.set("k", Json(int_option(argc, argv, "--k", -1)));
    }
    if (has_option(argc, argv, "--density")) {
      req.set("density", Json(double_option(argc, argv, "--density", 6.0)));
    }
    if (has_option(argc, argv, "--seed")) {
      req.set("seed", Json(static_cast<std::uint64_t>(
                          int_option(argc, argv, "--seed", 42))));
    }
    req.set("p", Json(int_option(argc, argv, "--p", 1)));
    if (has_flag(argc, argv, "--minimize")) req.set("minimize", Json(true));
    const bool lanes = verb == "batch_evaluate";
    if (has_option(argc, argv, "--betas")) {
      const std::string csv = string_option(argc, argv, "--betas", "");
      req.set("betas", lanes ? csv_lanes(csv) : csv_doubles(csv));
    }
    if (has_option(argc, argv, "--gammas")) {
      const std::string csv = string_option(argc, argv, "--gammas", "");
      req.set("gammas", lanes ? csv_lanes(csv) : csv_doubles(csv));
    }
    if (has_option(argc, argv, "--shots")) {
      req.set("shots", Json(static_cast<std::uint64_t>(
                           int_option(argc, argv, "--shots", 1024))));
    }
    if (has_option(argc, argv, "--hops")) {
      req.set("hops", Json(int_option(argc, argv, "--hops", 8)));
    }
    if (has_option(argc, argv, "--starts")) {
      req.set("starts", Json(int_option(argc, argv, "--starts", 1)));
    }
    if (has_option(argc, argv, "--opt-seed")) {
      req.set("opt_seed", Json(static_cast<std::uint64_t>(
                              int_option(argc, argv, "--opt-seed", 0))));
    }
    if (has_option(argc, argv, "--checkpoint")) {
      req.set("checkpoint",
              Json(string_option(argc, argv, "--checkpoint", "")));
    }
    if (has_option(argc, argv, "--deadline")) {
      req.set("deadline", Json(double_option(argc, argv, "--deadline", 0.0)));
    }
    if (has_option(argc, argv, "--max-evals")) {
      req.set("max_evals", Json(static_cast<std::uint64_t>(
                               int_option(argc, argv, "--max-evals", 0))));
    }
    if (has_flag(argc, argv, "--async")) req.set("async", Json(true));
  } else {
    usage_error("unknown verb '" + verb + "'");
  }

  const std::string socket_path = string_option(argc, argv, "--socket", "");
  const long long tcp_port = int_option(argc, argv, "--tcp", -1);
  if (socket_path.empty() && tcp_port < 0) {
    usage_error("need --socket=PATH or --tcp=PORT");
  }

  try {
    service::Client client =
        socket_path.empty()
            ? service::Client::connect_tcp(static_cast<int>(tcp_port))
            : service::Client::connect_unix(socket_path);
    const Json response = client.request(req);
    std::printf("%s\n", response.dump().c_str());

    const Json* ok = response.find("ok");
    if (ok != nullptr && ok->is_bool() && ok->as_bool()) {
      // "ok" covers the request, not the job: a sync job that ran and
      // failed comes back ok:true with state "failed" — surface as exit 1.
      const Json* state = response.find("state");
      if (state != nullptr && state->as_string() == "failed") return 1;
      return 0;
    }
    const Json* err = response.find("error");
    if (err != nullptr) {
      const Json* code = err->find("code");
      if (code != nullptr && code->as_string() == "overloaded") return 4;
    }
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qaoa_client: %s\n", e.what());
    return 2;
  }
}
