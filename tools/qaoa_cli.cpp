// qaoa_cli — run QAOA experiments from the command line without writing C++.
//
// Wires a problem generator, a mixer, and an angle-finding strategy into one
// driver that prints a CSV series (one row per round). Exactly the workflow
// the paper's Fig. 2 automates, exposed as a tool.
//
// Usage:
//   qaoa_cli --problem=maxcut|wmaxcut|ksat|densest|vertexcover|partition
//            --mixer=tf|grover|clique|ring
//            [--engine=exact|mps] [--max-bond=64] [--fidelity-budget=1e-3]
//            [--trunc-tol=1e-12] [--degree=D]
//            [--n=10] [--k=n/2] [--p=4] [--seed=42] [--density=6]
//            [--strategy=iterative|random|grid] [--restarts=50] [--hops=8]
//            [--minimize] [--shots=0] [--checkpoint=path] [--mixer-cache=path]
//            [--table-cache=path] [--threads=N] [--shards=K] [--starts=M]
//            [--batch=B]
//            [--backend=auto|scalar|avx2|avx512]
//            [--deadline=seconds] [--max-evals=N]
//            [--metrics=out.json] [--trace=out.trace.json] [--progress]
//
// Engines: --engine=exact (default) runs the dense statevector engine,
// limited to n <= 24. --engine=mps runs the approximate matrix-product-state
// engine (maxcut/wmaxcut with the tf mixer only) whose cost is polynomial in
// n — the n=40-100 regime — with --max-bond capping the bond dimension and
// --fidelity-budget bounding the cumulative discarded weight (the CSV gains
// discarded_weight / max_bond_reached fidelity-proxy columns). Flags that
// have no meaning for the selected engine are rejected, not ignored.
//
// Batching: --batch=B routes grid-search points and finite-difference
// gradient stencils through evaluate_batch, B statevector lanes per fused
// kernel pass — bit-identical results, higher throughput (the CSV gains an
// evals_per_sec column so the speedup is visible directly). For the
// basinhopping strategies it additionally scores B perturbation proposals
// per hop (BasinHoppingOptions::proposals), which changes the search — more
// exploration per hop — but stays deterministic for a fixed B.
//
// Robustness: --deadline / --max-evals bound the whole angle search (it
// stops within one optimizer iteration of the limit and reports best-so-far
// rows). SIGINT/SIGTERM trigger the same cooperative stop, so Ctrl-C still
// flushes checkpoints, partial CSV rows, and the observability artifacts;
// cancelled runs exit 130. FASTQAOA_FAULTS arms deterministic fault points
// in builds configured with -DFASTQAOA_FAULT_INJECTION=ON.
//
// Observability: --metrics writes the merged engine counters/timers as JSON
// after the run; --trace records scoped spans and writes Chrome trace-event
// JSON (open in chrome://tracing or ui.perfetto.dev); --progress prints one
// stderr line per completed angle-finding round. With the library built at
// FASTQAOA_PROFILING=OFF the files are still written but contain no samples.
//
// Examples:
//   qaoa_cli --problem=maxcut --mixer=tf --n=10 --p=5
//   qaoa_cli --problem=densest --mixer=clique --n=10 --k=5 --p=3
//   qaoa_cli --problem=ksat --mixer=grover --n=10 --density=6 --p=4

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "anglefind/strategies.hpp"
#include "common/error.hpp"
#include "common/threading.hpp"
#include "common/timer.hpp"
#include "core/engine.hpp"
#include "core/qaoa.hpp"
#include "io/serialize.hpp"
#include "linalg/kernels/kernels.hpp"
#include "mixers/eigen_mixer.hpp"
#include "mixers/grover_mixer.hpp"
#include "mixers/x_mixer.hpp"
#include "mps/mps_plan.hpp"
#include "mps/mps_strategies.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "problems/cost_functions.hpp"
#include "problems/weighted_maxcut.hpp"
#include "runtime/budget.hpp"
#include "runtime/fault.hpp"
#include "sampling/sampler.hpp"

namespace {

using namespace fastqaoa;

// SIGINT/SIGTERM request a *cooperative* stop: the handler only flips the
// (async-signal-safe) CancelToken, the optimizer notices at its next
// iteration, and the normal shutdown path still runs — partial CSV rows,
// the last round's checkpoint, and the metrics/trace artifacts all land on
// disk. A second Ctrl-C falls back to the default handler (hard kill).
runtime::CancelToken g_cancel;

extern "C" void handle_stop_signal(int sig) {
  g_cancel.request_stop();
  std::signal(sig, SIG_DFL);
}

std::string string_option(int argc, char** argv, const char* key,
                          const std::string& fallback) {
  const std::size_t len = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, len) == 0 && argv[i][len] == '=') {
      return std::string(argv[i] + len + 1);
    }
  }
  return fallback;
}

long long int_option(int argc, char** argv, const char* key,
                     long long fallback) {
  const std::string v = string_option(argc, argv, key, "");
  return v.empty() ? fallback : std::strtoll(v.c_str(), nullptr, 10);
}

double double_option(int argc, char** argv, const char* key,
                     double fallback) {
  const std::string v = string_option(argc, argv, key, "");
  return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "qaoa_cli: %s\n", message.c_str());
  std::fprintf(stderr,
               "usage: qaoa_cli --problem=maxcut|wmaxcut|ksat|densest|"
               "vertexcover|partition --mixer=tf|grover|clique|ring "
               "[--engine=exact|mps] [--max-bond=64] [--fidelity-budget=1e-3] "
               "[--trunc-tol=1e-12] [--degree=D] [--n=10] [--k=n/2] "
               "[--p=4] [--seed=42] [--density=6] "
               "[--strategy=iterative|random|grid] [--restarts=50] "
               "[--hops=8] [--minimize] [--shots=0] [--checkpoint=path] "
               "[--mixer-cache=path] [--table-cache=path] "
               "[--threads=N] [--shards=K] [--starts=M] [--batch=B] "
               "[--backend=auto|scalar|avx2|"
               "avx512] [--deadline=seconds] [--max-evals=N] "
               "[--metrics=out.json] [--trace=out.trace.json] "
               "[--progress]\n");
  std::exit(2);
}

std::string join_names(const std::vector<std::string>& names) {
  std::string s;
  for (const auto& name : names) {
    if (!s.empty()) s += ", ";
    s += name;
  }
  return s;
}

/// Shared instance generation for maxcut/wmaxcut: --degree picks a random
/// d-regular topology (the sparse large-n workload), otherwise G(n, 0.5);
/// wmaxcut layers seeded Uniform[0.1, 1.0) edge weights on top. Identical
/// for both engines, so exact-vs-MPS comparisons see the same instance.
Graph build_maxcut_graph(const std::string& problem, int n, int degree,
                         Rng& rng) {
  Graph g = degree > 0 ? random_regular(n, degree, rng)
                       : erdos_renyi(n, 0.5, rng);
  if (problem == "wmaxcut") g = with_random_weights(g, rng);
  return g;
}

/// The --engine=mps driver: same strategies, options, checkpointing, budget
/// and observability surface as the exact path, but evaluation runs through
/// the approximate MPS engine and the CSV reports the fidelity proxies
/// (discarded_weight, max_bond_reached, truncations) instead of the
/// table-derived ratio / ground-state-probability columns, which would need
/// the 2^n enumeration this engine exists to avoid.
int run_mps(int argc, char** argv) {
  const std::string problem = string_option(argc, argv, "--problem", "maxcut");
  const std::string strategy =
      string_option(argc, argv, "--strategy", "iterative");
  const int n = static_cast<int>(int_option(argc, argv, "--n", 10));
  const int p = static_cast<int>(int_option(argc, argv, "--p", 4));
  const auto seed =
      static_cast<std::uint64_t>(int_option(argc, argv, "--seed", 42));
  const int degree = static_cast<int>(int_option(argc, argv, "--degree", 0));
  const bool minimize = has_flag(argc, argv, "--minimize");
  const bool progress = has_flag(argc, argv, "--progress");
  const std::string metrics_path = string_option(argc, argv, "--metrics", "");
  const std::string trace_path = string_option(argc, argv, "--trace", "");
  if (!trace_path.empty()) obs::trace_begin();

  const int threads = static_cast<int>(int_option(argc, argv, "--threads", 0));
  if (threads > 0) set_num_threads(threads);

  mps::MpsOptions mps_options;
  mps_options.max_bond = static_cast<index_t>(
      int_option(argc, argv, "--max-bond", 64));
  mps_options.fidelity_budget =
      double_option(argc, argv, "--fidelity-budget", 1e-3);
  mps_options.trunc_tol = double_option(argc, argv, "--trunc-tol", 1e-12);
  if (mps_options.max_bond < 1) usage_error("--max-bond must be >= 1");
  if (mps_options.fidelity_budget < 0.0) {
    usage_error("--fidelity-budget must be >= 0");
  }
  if (mps_options.trunc_tol < 0.0) usage_error("--trunc-tol must be >= 0");

  Rng rng(seed);
  const Graph g = build_maxcut_graph(problem, n, degree, rng);
  const mps::MpsPlan plan(mps::maxcut_hamiltonian(g), mps_options);

  FindAnglesOptions opt;
  opt.seed = seed;
  opt.direction = minimize ? Direction::Minimize : Direction::Maximize;
  opt.hopping.hops = static_cast<int>(int_option(argc, argv, "--hops", 8));
  opt.checkpoint_file = string_option(argc, argv, "--checkpoint", "");
  opt.parallel_starts =
      static_cast<int>(int_option(argc, argv, "--starts", 1));
  if (opt.parallel_starts < 1) usage_error("--starts must be >= 1");
  opt.budget.wall_seconds = double_option(argc, argv, "--deadline", 0.0);
  opt.budget.max_evaluations =
      static_cast<std::size_t>(int_option(argc, argv, "--max-evals", 0));
  opt.budget.cancel = &g_cancel;
  if (progress) {
    opt.on_round = [](const AngleSchedule& s, double seconds) {
      std::fprintf(stderr,
                   "# round p=%d done in %.2f s: <C>=%.6f "
                   "(%zu optimizer calls, %zu evaluations)\n",
                   s.p, seconds, s.expectation, s.optimizer_calls,
                   s.evaluations);
    };
  }

  std::fprintf(stderr,
               "# engine=mps problem=%s n=%d edges=%d total_weight=%.4f "
               "p=%d seed=%llu chi=%zu fidelity_budget=%g trunc_tol=%g "
               "swaps_per_round=%zu\n",
               problem.c_str(), n, g.num_edges(), g.total_weight(), p,
               static_cast<unsigned long long>(seed),
               static_cast<std::size_t>(plan.options().max_bond),
               plan.options().fidelity_budget, plan.options().trunc_tol,
               plan.swaps_per_round());

  WallTimer timer;
  std::vector<AngleSchedule> schedules;
  if (strategy == "iterative") {
    schedules = mps::find_angles_mps(plan, p, opt);
  } else if (strategy == "grid") {
    const int points =
        static_cast<int>(int_option(argc, argv, "--grid-points", 16));
    schedules.push_back(mps::find_angles_grid_mps(plan, p, points, opt));
  } else {
    usage_error("unknown --strategy '" + strategy + "'");
  }
  const double elapsed = timer.seconds();

  std::size_t total_evals = 0;
  for (const AngleSchedule& s : schedules) total_evals += s.evaluations;
  const double evals_per_sec =
      elapsed > 0.0 ? static_cast<double>(total_evals) / elapsed : 0.0;
  std::printf("p,expectation,optimizer_calls,evaluations,evals_per_sec,"
              "discarded_weight,max_bond_reached,truncations\n");
  for (const AngleSchedule& s : schedules) {
    // One extra evaluation at the winning angles harvests the truncation
    // stats (the fidelity proxy) for this row.
    mps::MpsWorkspace ws;
    mps::evaluate_packed(plan, ws, s.packed());
    std::printf("%d,%.8f,%zu,%zu,%.1f,%.3e,%zu,%llu\n", s.p, s.expectation,
                s.optimizer_calls, s.evaluations, evals_per_sec,
                ws.stats.discarded_weight,
                static_cast<std::size_t>(ws.stats.max_bond_reached),
                static_cast<unsigned long long>(ws.stats.truncations));
  }
  std::fprintf(stderr,
               "# angle finding took %.2f s (%zu evaluations, %.1f evals/s, "
               "engine=mps)\n",
               elapsed, total_evals, evals_per_sec);

  runtime::StopReason stop = runtime::StopReason::None;
  for (const AngleSchedule& s : schedules) {
    if (s.stopped_early()) stop = s.stop_reason;
  }
  if (g_cancel.stop_requested()) stop = runtime::StopReason::Cancelled;
  if (stop != runtime::StopReason::None) {
    std::fprintf(stderr,
                 "# run stopped early (%s): results above are best-so-far"
                 "%s\n",
                 runtime::to_string(stop),
                 opt.checkpoint_file.empty()
                     ? ""
                     : "; re-run with the same --checkpoint to resume");
  }

  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out.good()) {
      std::fprintf(stderr, "qaoa_cli: cannot open --metrics file %s\n",
                   metrics_path.c_str());
      return 1;
    }
    out << obs::global_snapshot().to_json() << "\n";
    std::fprintf(stderr, "# metrics written to %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    if (!obs::write_trace(trace_path)) {
      std::fprintf(stderr, "qaoa_cli: cannot open --trace file %s\n",
                   trace_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "# trace written to %s\n", trace_path.c_str());
  }
  return stop == runtime::StopReason::Cancelled ? 130 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (has_flag(argc, argv, "--help") || has_flag(argc, argv, "-h")) {
    usage_error("help requested");
  }
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  // Deterministic fault-injection arming (FASTQAOA_FAULTS env var); no-op
  // unless the build has FASTQAOA_FAULT_INJECTION=ON.
  fault::arm_from_env();
  const std::string problem = string_option(argc, argv, "--problem", "maxcut");
  const std::string mixer_name = string_option(argc, argv, "--mixer", "tf");
  const std::string strategy =
      string_option(argc, argv, "--strategy", "iterative");
  const int n = static_cast<int>(int_option(argc, argv, "--n", 10));
  const int k = static_cast<int>(int_option(argc, argv, "--k", n / 2));
  const int p = static_cast<int>(int_option(argc, argv, "--p", 4));
  const auto seed = static_cast<std::uint64_t>(
      int_option(argc, argv, "--seed", 42));
  const double density = double_option(argc, argv, "--density", 6.0);
  const auto shots =
      static_cast<std::uint64_t>(int_option(argc, argv, "--shots", 0));
  const bool minimize = has_flag(argc, argv, "--minimize");
  const int degree = static_cast<int>(int_option(argc, argv, "--degree", 0));

  // --- engine selection -------------------------------------------------
  const std::string engine_name =
      string_option(argc, argv, "--engine", "exact");
  const std::optional<EngineKind> engine = parse_engine(engine_name);
  if (!engine) {
    usage_error("unknown --engine '" + engine_name +
                "' (available: " + join_names(engine_names()) + ")");
  }
  const bool use_mps = *engine == EngineKind::Mps;

  if (use_mps) {
    if (n < 2 || n > 256) {
      usage_error("--n out of supported range [2, 256] for --engine=mps");
    }
  } else if (n < 2 || n > 24) {
    usage_error("--n out of supported range [2, 24] for --engine=exact "
                "(use --engine=mps for larger n)");
  }
  if (p < 1 || p > 50) usage_error("--p out of supported range [1, 50]");

  // Engine-incompatible flag combinations fail fast with an explanation
  // instead of silently ignoring flags.
  if (use_mps) {
    if (problem != "maxcut" && problem != "wmaxcut") {
      usage_error("--engine=mps supports --problem=maxcut|wmaxcut only "
                  "(sparse diagonal cost Hamiltonians)");
    }
    if (mixer_name != "tf") {
      usage_error("--engine=mps supports the transverse-field mixer only; "
                  "--mixer=" + mixer_name + " requires --engine=exact");
    }
    if (strategy == "random") {
      usage_error("--strategy=random is not available for --engine=mps "
                  "(use iterative or grid)");
    }
    if (int_option(argc, argv, "--batch", 1) > 1) {
      usage_error("--engine=mps has no batched kernels; --batch requires "
                  "--engine=exact");
    }
    if (shots > 0) {
      usage_error("--shots samples the dense statevector; it requires "
                  "--engine=exact");
    }
    if (!string_option(argc, argv, "--table-cache", "").empty()) {
      usage_error("--table-cache tabulates all 2^n objective values; it "
                  "requires --engine=exact");
    }
    if (!string_option(argc, argv, "--backend", "").empty()) {
      usage_error("--backend selects statevector kernel tables; it "
                  "requires --engine=exact");
    }
    if (!string_option(argc, argv, "--mixer-cache", "").empty()) {
      usage_error("--mixer-cache caches eigendecomposed mixers; it "
                  "requires --engine=exact");
    }
  } else {
    if (!string_option(argc, argv, "--max-bond", "").empty() ||
        !string_option(argc, argv, "--fidelity-budget", "").empty() ||
        !string_option(argc, argv, "--trunc-tol", "").empty()) {
      usage_error("--max-bond/--fidelity-budget/--trunc-tol tune MPS "
                  "truncation; they require --engine=mps");
    }
  }
  if (degree != 0) {
    if (problem != "maxcut" && problem != "wmaxcut") {
      usage_error("--degree applies to maxcut/wmaxcut graph generation only");
    }
    if (degree < 1 || degree >= n || (n * degree) % 2 != 0) {
      usage_error("--degree needs 1 <= degree < n with n*degree even");
    }
  }

  // The MPS engine takes its own driver: no state space, no objective
  // table, no mixer object — those are all statevector concepts.
  if (use_mps) return run_mps(argc, argv);

  // --threads caps both the restart/grid outer loops and the per-state
  // inner kernels (they share the OpenMP default team size).
  const int threads = static_cast<int>(int_option(argc, argv, "--threads", 0));
  if (threads > 0) set_num_threads(threads);

  // --shards requests K NUMA shards per statevector. Plumbed through the
  // FASTQAOA_SHARDS hook so every workspace the angle-finding loops create
  // internally inherits it; placement-only, results are bit-identical.
  const int shards = static_cast<int>(int_option(argc, argv, "--shards", 0));
  if (shards < 0) usage_error("--shards must be >= 0");
  if (shards > 0) setenv("FASTQAOA_SHARDS", std::to_string(shards).c_str(), 1);

  // Kernel backend override (beats the FASTQAOA_KERNEL env var).
  const std::string backend = string_option(argc, argv, "--backend", "");
  if (!backend.empty() && !linalg::kernels::select(backend)) {
    usage_error("unknown or unsupported --backend '" + backend +
                "' (available: " + [] {
                  std::string s;
                  for (const auto& b : linalg::kernels::available()) {
                    if (!s.empty()) s += ", ";
                    s += b;
                  }
                  return s;
                }() + ")");
  }

  const std::string metrics_path =
      string_option(argc, argv, "--metrics", "");
  const std::string trace_path = string_option(argc, argv, "--trace", "");
  const bool progress = has_flag(argc, argv, "--progress");
  if (!trace_path.empty()) obs::trace_begin();

  Rng rng(seed);

  // --- feasible space ---------------------------------------------------
  const bool constrained = mixer_name == "clique" || mixer_name == "ring";
  if (constrained && (k < 1 || k >= n)) {
    usage_error("--k must satisfy 1 <= k < n for constrained mixers");
  }
  StateSpace space =
      constrained ? StateSpace::dicke(n, k) : StateSpace::full(n);

  // --- problem ----------------------------------------------------------
  // --table-cache applies the Listing-2 load-or-build pattern to the
  // tabulated objective: the first run saves the table (crash-safely, via
  // the atomic writer), later runs skip generation entirely.
  auto tabulate_problem = [&]() -> dvec {
    if (problem == "maxcut" || problem == "wmaxcut") {
      Graph g = build_maxcut_graph(problem, n, degree, rng);
      return tabulate(space, [&g](state_t x) { return maxcut(g, x); });
    }
    if (problem == "ksat") {
      CnfFormula f = random_ksat_density(n, 3, density, rng);
      return tabulate(space, [&f](state_t x) { return ksat(f, x); });
    }
    if (problem == "densest") {
      Graph g = erdos_renyi(n, 0.5, rng);
      return tabulate(space,
                      [&g](state_t x) { return densest_subgraph(g, x); });
    }
    if (problem == "vertexcover") {
      Graph g = erdos_renyi(n, 0.5, rng);
      return tabulate(space, [&g](state_t x) { return vertex_cover(g, x); });
    }
    if (problem == "partition") {
      std::vector<double> weights(static_cast<std::size_t>(n));
      for (auto& w : weights) w = std::floor(rng.uniform(1.0, 30.0));
      return tabulate(space, [&weights](state_t x) {
        return number_partition(weights, x);
      });
    }
    usage_error("unknown --problem '" + problem + "'");
  };
  const std::string table_cache =
      string_option(argc, argv, "--table-cache", "");
  dvec obj_vals = table_cache.empty()
                      ? tabulate_problem()
                      : io::load_or_build_table(table_cache, tabulate_problem);
  if (!table_cache.empty()) {
    FASTQAOA_CHECK(obj_vals.size() == space.dim(),
                   "--table-cache file does not match this problem's "
                   "state-space dimension: " + table_cache);
  }

  // --- mixer ------------------------------------------------------------
  std::unique_ptr<Mixer> owned_mixer;
  if (mixer_name == "tf") {
    owned_mixer = std::make_unique<XMixer>(XMixer::transverse_field(n));
  } else if (mixer_name == "grover") {
    owned_mixer = std::make_unique<GroverMixer>(space.dim());
  } else if (mixer_name == "clique" || mixer_name == "ring") {
    const std::string cache = string_option(argc, argv, "--mixer-cache", "");
    auto build = [&] {
      return mixer_name == "clique" ? EigenMixer::clique(space)
                                    : EigenMixer::ring(space);
    };
    WallTimer timer;
    owned_mixer = std::make_unique<EigenMixer>(
        cache.empty() ? build() : io::load_or_build_mixer(cache, build));
    std::fprintf(stderr, "# %s mixer ready in %.3f s (dim %zu)\n",
                 mixer_name.c_str(), timer.seconds(), space.dim());
  } else {
    usage_error("unknown --mixer '" + mixer_name + "'");
  }
  const Mixer& mixer = *owned_mixer;

  // --- options ----------------------------------------------------------
  FindAnglesOptions opt;
  opt.seed = seed;
  opt.direction = minimize ? Direction::Minimize : Direction::Maximize;
  opt.hopping.hops = static_cast<int>(int_option(argc, argv, "--hops", 8));
  opt.checkpoint_file = string_option(argc, argv, "--checkpoint", "");
  opt.parallel_starts =
      static_cast<int>(int_option(argc, argv, "--starts", 1));
  if (opt.parallel_starts < 1) usage_error("--starts must be >= 1");
  const int batch = static_cast<int>(int_option(argc, argv, "--batch", 1));
  if (batch < 1) usage_error("--batch must be >= 1");
  opt.eval_batch = batch;
  // Basinhopping consumes the batch width as proposals-per-hop (see header
  // comment); grid search and FD gradients batch transparently.
  if (batch > 1 && strategy == "iterative") opt.hopping.proposals = batch;
  opt.budget.wall_seconds = double_option(argc, argv, "--deadline", 0.0);
  opt.budget.max_evaluations =
      static_cast<std::size_t>(int_option(argc, argv, "--max-evals", 0));
  opt.budget.cancel = &g_cancel;
  if (progress) {
    opt.on_round = [](const AngleSchedule& s, double seconds) {
      std::fprintf(stderr,
                   "# round p=%d done in %.2f s: <C>=%.6f "
                   "(%zu optimizer calls, %zu evaluations)\n",
                   s.p, seconds, s.expectation, s.optimizer_calls,
                   s.evaluations);
    };
  }
  const int restarts =
      static_cast<int>(int_option(argc, argv, "--restarts", 50));

  const ObjectiveStats stats = objective_stats(obj_vals);
  std::fprintf(stderr,
               "# problem=%s mixer=%s n=%d k=%d dim=%zu p=%d seed=%llu "
               "best=%.4f worst=%.4f mean=%.4f\n",
               problem.c_str(), mixer_name.c_str(), n,
               constrained ? k : -1, space.dim(), p,
               static_cast<unsigned long long>(seed), stats.max_value,
               stats.min_value, stats.mean);

  // --- run --------------------------------------------------------------
  WallTimer timer;
  std::vector<AngleSchedule> schedules;
  if (strategy == "iterative") {
    schedules = find_angles(mixer, obj_vals, p, opt);
  } else if (strategy == "random") {
    schedules.push_back(find_angles_random(mixer, obj_vals, p, restarts, opt));
  } else if (strategy == "grid") {
    const int points =
        static_cast<int>(int_option(argc, argv, "--grid-points", 16));
    schedules.push_back(find_angles_grid(mixer, obj_vals, p, points, opt));
  } else {
    usage_error("unknown --strategy '" + strategy + "'");
  }
  const double elapsed = timer.seconds();

  // --- report -----------------------------------------------------------
  // evals_per_sec is the whole run's expectation-evaluation throughput
  // (total evaluations / total search seconds) — the number --batch=B is
  // meant to move. It repeats on every row so single-row strategies and
  // per-round readers both see it.
  std::size_t total_evals = 0;
  for (const AngleSchedule& s : schedules) total_evals += s.evaluations;
  const double evals_per_sec =
      elapsed > 0.0 ? static_cast<double>(total_evals) / elapsed : 0.0;
  std::printf("p,expectation,ratio,ground_state_prob,optimizer_calls,"
              "evaluations,evals_per_sec%s\n",
              shots > 0 ? ",shot_estimate,shot_stderr" : "");
  for (const AngleSchedule& s : schedules) {
    Qaoa engine(mixer, obj_vals, s.p);
    engine.run_packed(s.packed());
    const double ratio =
        approximation_ratio(s.expectation, obj_vals, opt.direction);
    const double gs = engine.ground_state_probability(opt.direction);
    if (shots > 0) {
      MeasurementSampler sampler(engine.state());
      Rng shot_rng(seed ^ 0xABCDEF);
      std::printf("%d,%.8f,%.6f,%.6f,%zu,%zu,%.1f,%.8f,%.8f\n", s.p,
                  s.expectation, ratio, gs, s.optimizer_calls, s.evaluations,
                  evals_per_sec,
                  sampler.estimate_expectation(obj_vals, shots, shot_rng),
                  sampler.standard_error(obj_vals, shots));
    } else {
      std::printf("%d,%.8f,%.6f,%.6f,%zu,%zu,%.1f\n", s.p, s.expectation,
                  ratio, gs, s.optimizer_calls, s.evaluations,
                  evals_per_sec);
    }
  }
  std::fprintf(stderr,
               "# angle finding took %.2f s (%zu evaluations, %.1f evals/s, "
               "batch=%d)\n",
               elapsed, total_evals, evals_per_sec, batch);

  // Structured stop reporting: a tripped budget / Ctrl-C is not an error —
  // the partial rows above are valid best-so-far results — but the caller
  // should know the run was cut short (and scripts can branch on exit 130
  // for an interactive interrupt, mirroring the shell convention).
  runtime::StopReason stop = runtime::StopReason::None;
  for (const AngleSchedule& s : schedules) {
    if (s.stopped_early()) stop = s.stop_reason;
  }
  if (g_cancel.stop_requested()) stop = runtime::StopReason::Cancelled;
  if (stop != runtime::StopReason::None) {
    std::fprintf(stderr,
                 "# run stopped early (%s): results above are best-so-far"
                 "%s\n",
                 runtime::to_string(stop),
                 opt.checkpoint_file.empty()
                     ? ""
                     : "; re-run with the same --checkpoint to resume");
  }

  // --- observability artifacts -------------------------------------------
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out.good()) {
      std::fprintf(stderr, "qaoa_cli: cannot open --metrics file %s\n",
                   metrics_path.c_str());
      return 1;
    }
    out << obs::global_snapshot().to_json() << "\n";
    std::fprintf(stderr, "# metrics written to %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    if (!obs::write_trace(trace_path)) {
      std::fprintf(stderr, "qaoa_cli: cannot open --trace file %s\n",
                   trace_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "# trace written to %s\n", trace_path.c_str());
  }
  return stop == runtime::StopReason::Cancelled ? 130 : 0;
}
