// qaoa_topo — dump the detected machine topology and the shard plan the
// sharded statevector layer would pick for a given problem size.
//
// Usage:
//   qaoa_topo [--n=QUBITS] [--shards=K] [--json]
//
// With no arguments, prints the NUMA nodes (CPUs and memory per node) and
// the shard plan for a handful of representative sizes. --n pins the plan
// to one statevector size (2^n amplitudes); --shards previews an explicit
// request (same precedence as the library: request > FASTQAOA_SHARDS >
// topology). --json emits the same information as a single JSON object for
// scripting.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/topology.hpp"
#include "common/types.hpp"

namespace {

using namespace fastqaoa;

std::string string_option(int argc, char** argv, const char* key,
                          const std::string& fallback) {
  const std::size_t len = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, len) == 0 && argv[i][len] == '=') {
      return std::string(argv[i] + len + 1);
    }
  }
  return fallback;
}

long long int_option(int argc, char** argv, const char* key,
                     long long fallback) {
  const std::string v = string_option(argc, argv, key, "");
  return v.empty() ? fallback : std::strtoll(v.c_str(), nullptr, 10);
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "qaoa_topo: %s\n", message.c_str());
  std::fprintf(stderr, "usage: qaoa_topo [--n=QUBITS] [--shards=K] [--json]\n");
  std::exit(2);
}

std::string cpulist_string(const std::vector<int>& cpus) {
  // Re-compress into the kernel's range syntax for readability.
  std::string out;
  std::size_t i = 0;
  while (i < cpus.size()) {
    std::size_t j = i;
    while (j + 1 < cpus.size() && cpus[j + 1] == cpus[j] + 1) ++j;
    if (!out.empty()) out += ',';
    out += std::to_string(cpus[i]);
    if (j > i) out += '-' + std::to_string(cpus[j]);
    i = j + 1;
  }
  return out;
}

void print_plan_text(int n, const ShardPlan& plan) {
  std::printf("  n=%-3d dim=%-12lld shards=%-3d threads/shard=%-3d "
              "elems/shard=%-12lld source=%s\n",
              n, static_cast<long long>(index_t{1} << n), plan.shards,
              plan.threads_per_shard,
              static_cast<long long>(plan.shard_elems), plan.source.c_str());
}

void print_plan_json(int n, const ShardPlan& plan, bool last) {
  std::printf("    {\"n\": %d, \"dim\": %lld, \"shards\": %d, "
              "\"threads_per_shard\": %d, \"shard_elems\": %lld, "
              "\"source\": \"%s\"}%s\n",
              n, static_cast<long long>(index_t{1} << n), plan.shards,
              plan.threads_per_shard,
              static_cast<long long>(plan.shard_elems), plan.source.c_str(),
              last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  if (has_flag(argc, argv, "--help") || has_flag(argc, argv, "-h")) {
    usage_error("help requested");
  }
  const int n_opt = static_cast<int>(int_option(argc, argv, "--n", 0));
  if (n_opt < 0 || n_opt > 62) usage_error("--n must be in [1, 62]");
  const int shards = static_cast<int>(int_option(argc, argv, "--shards", 0));
  if (shards < 0) usage_error("--shards must be >= 0");
  const bool json = has_flag(argc, argv, "--json");

  const Topology topo = detect_topology();
  std::vector<int> sizes;
  if (n_opt > 0) {
    sizes.push_back(n_opt);
  } else {
    sizes = {16, 20, 24, 26, 28};
  }

  if (json) {
    std::printf("{\n");
    std::printf("  \"from_sysfs\": %s,\n", topo.from_sysfs ? "true" : "false");
    std::printf("  \"total_cpus\": %d,\n", topo.total_cpus);
    std::printf("  \"nodes\": [\n");
    for (std::size_t i = 0; i < topo.nodes.size(); ++i) {
      const NumaNode& node = topo.nodes[i];
      std::printf("    {\"id\": %d, \"cpus\": \"%s\", \"cpu_count\": %zu, "
                  "\"mem_bytes\": %zu}%s\n",
                  node.id, cpulist_string(node.cpus).c_str(), node.cpus.size(),
                  node.mem_bytes, i + 1 == topo.nodes.size() ? "" : ",");
    }
    std::printf("  ],\n");
    std::printf("  \"shard_request\": %d,\n", shard_request(shards));
    std::printf("  \"plans\": [\n");
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const ShardPlan plan = plan_shards(index_t{1} << sizes[i], shards);
      print_plan_json(sizes[i], plan, i + 1 == sizes.size());
    }
    std::printf("  ]\n}\n");
    return 0;
  }

  std::printf("topology: %d node(s), %d cpu(s)%s\n", topo.node_count(),
              topo.total_cpus,
              topo.from_sysfs ? "" : " (no /sys NUMA info; fallback)");
  for (const NumaNode& node : topo.nodes) {
    if (node.mem_bytes > 0) {
      std::printf("  node %d: cpus %s (%zu), mem %.1f GiB\n", node.id,
                  cpulist_string(node.cpus).c_str(), node.cpus.size(),
                  static_cast<double>(node.mem_bytes) / (1024.0 * 1024.0 * 1024.0));
    } else {
      std::printf("  node %d: cpus %s (%zu), mem unknown\n", node.id,
                  cpulist_string(node.cpus).c_str(), node.cpus.size());
    }
  }
  std::printf("shard request: %d (0 = auto)\n", shard_request(shards));
  std::printf("shard plans:\n");
  for (int n : sizes) {
    print_plan_text(n, plan_shards(index_t{1} << n, shards));
  }
  return 0;
}
