// bench_check — regression gate for the benchmark baselines.
//
// Compares a freshly-produced benchmark JSON (ablation_kernels --json,
// batch_eval --json, ...) against the checked-in snapshot under
// bench/baselines/ and fails when a headline speedup regressed past the
// allowed threshold.
//
// Usage:
//   bench_check --fresh=run.json --baseline=bench/baselines/x.json
//               [--threshold=0.30] [--out=report.json]
//
// What is compared: every TOP-LEVEL numeric field whose key contains
// "speedup". Those are the headline figures each bench tool publishes
// exactly so this gate stays insensitive to per-row noise (row timings
// shuffle between machines; the headline ratios are the contract).
//
// A field regresses when fresh < baseline * (1 - threshold). The default
// threshold of 0.30 is deliberately loose: CI runners are noisy, and this
// gate exists to catch "the blocked WHT stopped being faster", not 5%
// jitter. A baseline key missing from the fresh run is also a failure —
// silently dropping a headline metric is how regressions hide.
//
// Output: one JSON report line on stdout (also written to --out when
// given) with a per-field verdict. Exit codes: 0 = all fields within
// threshold, 1 = regression or missing field, 2 = usage/IO error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "service/json.hpp"

namespace {

using fastqaoa::service::Json;

std::string string_option(int argc, char** argv, const char* key,
                          const std::string& fallback) {
  const std::size_t len = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, len) == 0 && argv[i][len] == '=') {
      return std::string(argv[i] + len + 1);
    }
  }
  return fallback;
}

double double_option(int argc, char** argv, const char* key,
                     double fallback) {
  const std::string v = string_option(argc, argv, key, "");
  return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
}

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "bench_check: %s\n", message.c_str());
  std::fprintf(stderr,
               "usage: bench_check --fresh=run.json --baseline=base.json "
               "[--threshold=0.30] [--out=report.json]\n");
  std::exit(2);
}

Json load_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) usage_error("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return Json::parse(buf.str());
  } catch (const std::exception& e) {
    usage_error("cannot parse '" + path + "': " + e.what());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string fresh_path = string_option(argc, argv, "--fresh", "");
  const std::string base_path = string_option(argc, argv, "--baseline", "");
  if (fresh_path.empty() || base_path.empty()) {
    usage_error("--fresh and --baseline are both required");
  }
  const double threshold = double_option(argc, argv, "--threshold", 0.30);
  if (threshold < 0.0 || threshold >= 1.0) {
    usage_error("--threshold must be in [0, 1)");
  }

  const Json fresh = load_json(fresh_path);
  const Json baseline = load_json(base_path);
  if (!fresh.is_object() || !baseline.is_object()) {
    usage_error("both inputs must be JSON objects");
  }

  Json checks = Json::array();
  int compared = 0;
  int failures = 0;
  for (const auto& [key, value] : baseline.as_object()) {
    if (!value.is_number()) continue;
    if (key.find("speedup") == std::string::npos) continue;
    ++compared;
    Json row = Json::object();
    row.set("field", Json(key));
    row.set("baseline", Json(value.as_double()));
    const Json* got = fresh.find(key);
    if (got == nullptr || !got->is_number()) {
      row.set("status", Json("missing"));
      ++failures;
      checks.push_back(std::move(row));
      continue;
    }
    const double base_v = value.as_double();
    const double fresh_v = got->as_double();
    row.set("fresh", Json(fresh_v));
    row.set("ratio", Json(base_v != 0.0 ? fresh_v / base_v : 0.0));
    const bool regressed = fresh_v < base_v * (1.0 - threshold);
    row.set("status", Json(regressed ? "regressed" : "ok"));
    if (regressed) ++failures;
    checks.push_back(std::move(row));
  }

  Json report = Json::object();
  report.set("fresh", Json(fresh_path));
  report.set("baseline", Json(base_path));
  report.set("threshold", Json(threshold));
  report.set("compared", Json(compared));
  report.set("failures", Json(failures));
  report.set("ok", Json(failures == 0 && compared > 0));
  report.set("checks", std::move(checks));

  const std::string text = report.dump();
  std::printf("%s\n", text.c_str());
  const std::string out_path = string_option(argc, argv, "--out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) usage_error("cannot write '" + out_path + "'");
    out << text << "\n";
  }

  if (compared == 0) {
    std::fprintf(stderr,
                 "bench_check: baseline has no top-level *speedup* fields\n");
    return 2;
  }
  return failures == 0 ? 0 : 1;
}
