// qaoa_serve — the shared-plan evaluation daemon.
//
// Hosts a service::Service (bounded job queue + worker pool + content-
// addressed plan cache) behind a Unix-domain socket speaking newline-
// delimited JSON; see src/service/protocol.hpp for the wire format and
// docs/TUTORIAL.md for a walkthrough.
//
// Usage:
//   qaoa_serve --socket=/tmp/qaoa.sock
//              [--tcp=PORT] [--workers=2] [--shards=0] [--queue=64]
//              [--cache-bytes=N] [--cache-dir=DIR]
//              [--tenants=FILE] [--idle-timeout=SECS] [--write-timeout=SECS]
//              [--max-conns=N] [--max-line=BYTES] [--write-buf=BYTES]
//              [--max-pipeline=N] [--sndbuf=BYTES]
//              [--metrics=out.json] [--metrics-file=out.prom]
//              [--metrics-interval=SECS] [--sub-queue=N] [--quiet]
//
// --tcp adds a loopback TCP listener (port 0 = kernel-assigned, printed on
// startup). --shards requests K NUMA shards per worker statevector
// (0 = auto: FASTQAOA_SHARDS, then the detected topology; results are
// bit-identical at every shard count). --cache-bytes bounds the plan cache (0 = unlimited);
// --cache-dir adds a disk tier for expensive constrained-mixer
// eigendecompositions. --queue is the admission high-water mark: submits
// past it are rejected with the structured "overloaded" error.
//
// Multi-tenancy: --tenants names a JSON file of {name, key, weight,
// max_inflight, rate_per_sec, burst, cache_bytes} entries (see
// src/service/tenant.hpp). Clients then authenticate with a key; worker
// time is shared by weight, quotas trip structured "over_quota" rejections
// with a retry_after_ms hint, and the plan cache is partitioned per tenant.
//
// Robustness knobs (all per connection): --idle-timeout / --write-timeout
// evict idle and stalled-reader clients, --max-line bounds one request
// line, --write-buf bounds buffered output, --max-pipeline bounds parsed-
// but-unserved requests, --max-conns caps concurrent connections, and
// --sndbuf overrides SO_SNDBUF (testing aid for eviction timing).
//
// Telemetry: the `metrics` verb serves Prometheus text on demand;
// --metrics-file additionally rewrites the same text atomically every
// --metrics-interval seconds (and once at drain) for file-based scrapers.
// --sub-queue bounds each `subscribe` watcher's event queue; a slow
// watcher drops its oldest events (counted in stats) instead of ever
// blocking a worker.
//
// SIGTERM/SIGINT drain: the daemon stops accepting, cancels queued jobs,
// lets running ones deliver (and checkpoint) best-so-far results, flushes
// --metrics, and exits 0. SIGTERM is "please finish", not a failure.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "linalg/kernels/kernels.hpp"
#include "service/server.hpp"

namespace {

using namespace fastqaoa;

std::string string_option(int argc, char** argv, const char* key,
                          const std::string& fallback) {
  const std::size_t len = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, len) == 0 && argv[i][len] == '=') {
      return std::string(argv[i] + len + 1);
    }
  }
  return fallback;
}

long long int_option(int argc, char** argv, const char* key,
                     long long fallback) {
  const std::string v = string_option(argc, argv, key, "");
  return v.empty() ? fallback : std::strtoll(v.c_str(), nullptr, 10);
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

double double_option(int argc, char** argv, const char* key,
                     double fallback) {
  const std::string v = string_option(argc, argv, key, "");
  return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
}

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "qaoa_serve: %s\n", message.c_str());
  std::fprintf(stderr,
               "usage: qaoa_serve --socket=PATH [--tcp=PORT] [--workers=2] "
               "[--shards=0] "
               "[--queue=64] [--cache-bytes=N] [--cache-dir=DIR] "
               "[--tenants=FILE] [--idle-timeout=SECS] "
               "[--write-timeout=SECS] [--max-conns=N] [--max-line=BYTES] "
               "[--write-buf=BYTES] [--max-pipeline=N] [--sndbuf=BYTES] "
               "[--backend=auto|scalar|avx2|avx512] "
               "[--metrics=out.json] [--metrics-file=out.prom] "
               "[--metrics-interval=SECS] [--sub-queue=N] [--quiet]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  if (has_flag(argc, argv, "--help") || has_flag(argc, argv, "-h")) {
    usage_error("help requested");
  }

  service::DaemonOptions options;
  options.socket_path = string_option(argc, argv, "--socket", "");
  if (options.socket_path.empty()) usage_error("--socket=PATH is required");
  options.tcp_port =
      static_cast<int>(int_option(argc, argv, "--tcp", -1));
  options.metrics_path = string_option(argc, argv, "--metrics", "");
  options.prometheus_path = string_option(argc, argv, "--metrics-file", "");
  options.metrics_interval_seconds =
      double_option(argc, argv, "--metrics-interval", 5.0);
  if (options.metrics_interval_seconds <= 0.0) {
    usage_error("--metrics-interval must be > 0");
  }
  // Kernel backend override (beats the FASTQAOA_KERNEL env var).
  const std::string backend = string_option(argc, argv, "--backend", "");
  if (!backend.empty() && !linalg::kernels::select(backend)) {
    usage_error("unknown or unsupported --backend '" + backend + "'");
  }
  options.verbose = !has_flag(argc, argv, "--quiet");

  options.service.workers =
      static_cast<int>(int_option(argc, argv, "--workers", 2));
  if (options.service.workers < 1) usage_error("--workers must be >= 1");
  options.service.shards =
      static_cast<int>(int_option(argc, argv, "--shards", 0));
  if (options.service.shards < 0) usage_error("--shards must be >= 0");
  const long long queue = int_option(argc, argv, "--queue", 64);
  if (queue < 1) usage_error("--queue must be >= 1");
  options.service.queue_high_water = static_cast<std::size_t>(queue);
  options.service.cache_bytes =
      static_cast<std::size_t>(int_option(argc, argv, "--cache-bytes", 0));
  options.service.cache_dir = string_option(argc, argv, "--cache-dir", "");
  const long long sub_queue = int_option(argc, argv, "--sub-queue", 256);
  if (sub_queue < 1) usage_error("--sub-queue must be >= 1");
  options.service.subscriber_queue_cap = static_cast<std::size_t>(sub_queue);

  options.tenants_path = string_option(argc, argv, "--tenants", "");
  options.idle_timeout_seconds =
      double_option(argc, argv, "--idle-timeout",
                    options.idle_timeout_seconds);
  if (options.idle_timeout_seconds < 0.0) {
    usage_error("--idle-timeout must be >= 0 (0 disables)");
  }
  options.write_timeout_seconds =
      double_option(argc, argv, "--write-timeout",
                    options.write_timeout_seconds);
  if (options.write_timeout_seconds < 0.0) {
    usage_error("--write-timeout must be >= 0 (0 disables)");
  }
  const long long max_conns =
      int_option(argc, argv, "--max-conns",
                 static_cast<long long>(options.max_connections));
  if (max_conns < 1) usage_error("--max-conns must be >= 1");
  options.max_connections = static_cast<std::size_t>(max_conns);
  const long long max_line =
      int_option(argc, argv, "--max-line",
                 static_cast<long long>(options.max_line_bytes));
  if (max_line < 1024) usage_error("--max-line must be >= 1024");
  options.max_line_bytes = static_cast<std::size_t>(max_line);
  const long long write_buf =
      int_option(argc, argv, "--write-buf",
                 static_cast<long long>(options.write_buffer_cap));
  if (write_buf < 4096) usage_error("--write-buf must be >= 4096");
  options.write_buffer_cap = static_cast<std::size_t>(write_buf);
  const long long max_pipeline =
      int_option(argc, argv, "--max-pipeline",
                 static_cast<long long>(options.max_pipeline));
  if (max_pipeline < 1) usage_error("--max-pipeline must be >= 1");
  options.max_pipeline = static_cast<std::size_t>(max_pipeline);
  options.sndbuf_bytes =
      static_cast<int>(int_option(argc, argv, "--sndbuf", 0));
  if (options.sndbuf_bytes < 0) usage_error("--sndbuf must be >= 0");

  return service::run_daemon(options);
}
