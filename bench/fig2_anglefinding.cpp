// Figure 2 reproduction: iterative angle finding across four problem types,
// each with a different mixer, on a random instance.
//
//   MaxCut             + Transverse-Field mixer   (full space)
//   3-SAT (density 6)  + Grover mixer             (full space)
//   Densest k-Subgraph + Clique mixer             (Dicke subspace)
//   Max k-Vertex Cover + Ring mixer               (Dicke subspace)
//
// Paper setting: n=12, k=6, G(n, 0.5), p = 1..10, one random instance per
// problem, generated on an Apple M2 Max in under an hour. Reduced default
// here: n=10, p <= 4 (same shape, minutes on one core). Output: one
// approximation-ratio series per panel, ratios increasing with p.

#include <cstdio>
#include <vector>

#include "anglefind/strategies.hpp"
#include "bench_util.hpp"
#include "mixers/eigen_mixer.hpp"
#include "mixers/grover_mixer.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"

namespace {

using namespace fastqaoa;

void print_series(const char* panel, const char* mixer_name,
                  const std::vector<AngleSchedule>& schedules,
                  const dvec& table, benchutil::JsonReport& report) {
  std::printf("\n[%s + %s]\n", panel, mixer_name);
  std::printf("%4s %14s %10s\n", "p", "<C>", "ratio");
  for (const AngleSchedule& s : schedules) {
    const double ratio = approximation_ratio(s.expectation, table);
    std::printf("%4d %14.6f %10.4f\n", s.p, s.expectation, ratio);
    report.row();
    report.field("panel", std::string(panel));
    report.field("mixer", std::string(mixer_name));
    report.field("p", static_cast<long long>(s.p));
    report.field("expectation", s.expectation);
    report.field("ratio", ratio);
    report.field("optimizer_calls", static_cast<long long>(s.optimizer_calls));
    report.field("evaluations", static_cast<long long>(s.evaluations));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fastqaoa;
  namespace bu = benchutil;

  const bool full = bu::has_flag(argc, argv, "--full");
  const int n = static_cast<int>(bu::int_option(argc, argv, "--n",
                                                full ? 12 : 10));
  const int k = static_cast<int>(bu::int_option(argc, argv, "--k", n / 2));
  const int max_p = static_cast<int>(bu::int_option(argc, argv, "--p",
                                                    full ? 10 : 4));
  bu::banner("Figure 2", "angle finding across problem types and mixers",
             full);
  std::printf("n=%d, k=%d, p=1..%d, G(n,0.5), 3-SAT clause density 6\n", n,
              k, max_p);

  bu::JsonReport report(argc, argv, "fig2_anglefinding");
  report.meta("n", static_cast<long long>(n));
  report.meta("k", static_cast<long long>(k));
  report.meta("max_p", static_cast<long long>(max_p));
  report.meta("full", static_cast<long long>(full ? 1 : 0));

  FindAnglesOptions opt;
  opt.hopping.hops = full ? 15 : 6;
  opt.seed = 2023;
  WallTimer total;

  // Panel 1: MaxCut + Transverse Field.
  {
    Rng rng(1);
    Graph g = erdos_renyi(n, 0.5, rng);
    dvec table = tabulate(StateSpace::full(n),
                          [&g](state_t x) { return maxcut(g, x); });
    XMixer mixer = XMixer::transverse_field(n);
    print_series("MaxCut", "Transverse Field",
                 find_angles(mixer, table, max_p, opt), table, report);
  }

  // Panel 2: 3-SAT at clause density 6 + Grover mixer.
  {
    Rng rng(2);
    CnfFormula f = random_ksat_density(n, 3, 6.0, rng);
    dvec table = tabulate(StateSpace::full(n),
                          [&f](state_t x) { return ksat(f, x); });
    GroverMixer mixer(index_t{1} << n);
    print_series("3-SAT (density 6)", "Grover",
                 find_angles(mixer, table, max_p, opt), table, report);
  }

  // Panel 3: Densest k-Subgraph + Clique mixer (feasible subspace only).
  {
    Rng rng(3);
    Graph g = erdos_renyi(n, 0.5, rng);
    StateSpace space = StateSpace::dicke(n, k);
    dvec table =
        tabulate(space, [&g](state_t x) { return densest_subgraph(g, x); });
    WallTimer eig;
    EigenMixer mixer = EigenMixer::clique(space);
    std::printf("\n(clique mixer eigendecomposition, dim %zu: %.2f s)\n",
                space.dim(), eig.seconds());
    print_series("Densest k-Subgraph", "Clique",
                 find_angles(mixer, table, max_p, opt), table, report);
  }

  // Panel 4: Max k-Vertex Cover + Ring mixer.
  {
    Rng rng(4);
    Graph g = erdos_renyi(n, 0.5, rng);
    StateSpace space = StateSpace::dicke(n, k);
    dvec table =
        tabulate(space, [&g](state_t x) { return vertex_cover(g, x); });
    EigenMixer mixer = EigenMixer::ring(space);
    print_series("Max k-Vertex Cover", "Ring",
                 find_angles(mixer, table, max_p, opt), table, report);
  }

  std::printf("\ntotal wall time: %.1f s\n", total.seconds());
  report.meta("wall_seconds", total.seconds());
  report.attach_metrics();
  report.write();
  std::printf("paper reference: all four ratio series increase with p; "
              "constrained problems (Clique/Ring) start higher because the "
              "search is restricted to the feasible subspace.\n");
  return 0;
}
