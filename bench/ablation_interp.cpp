// Ablation: the value of INTERP extrapolation in the iterative angle
// finder (DESIGN.md §5). find_angles() seeds round p with the
// piecewise-linear resampling of the round-(p-1) optimum; this harness
// compares that seeding against (a) cold random seeds per p with the same
// basinhopping budget, and (b) the raw INTERP seed *without* any
// refinement — quantifying both the head start and the refinement gain.

#include <cstdio>
#include <vector>

#include "anglefind/strategies.hpp"
#include "bench_util.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"
#include "study/ensemble.hpp"

int main(int argc, char** argv) {
  using namespace fastqaoa;
  namespace bu = benchutil;

  const bool full = bu::has_flag(argc, argv, "--full");
  const int n = static_cast<int>(bu::int_option(argc, argv, "--n",
                                                full ? 12 : 10));
  const int max_p = static_cast<int>(bu::int_option(argc, argv, "--p",
                                                    full ? 8 : 5));
  const int instances = static_cast<int>(
      bu::int_option(argc, argv, "--instances", full ? 20 : 6));
  bu::banner("Ablation", "INTERP extrapolation seeding vs cold restarts",
             full);
  std::printf("%d MaxCut instances, n=%d, p=1..%d\n\n", instances, n, max_p);

  XMixer mixer = XMixer::transverse_field(n);
  Rng master(31337);

  std::vector<double> mean_interp(static_cast<std::size_t>(max_p), 0.0);
  std::vector<double> mean_cold(static_cast<std::size_t>(max_p), 0.0);
  std::vector<double> mean_seed_only(static_cast<std::size_t>(max_p), 0.0);

  for (int inst = 0; inst < instances; ++inst) {
    Rng rng = master.fork();
    Graph g = erdos_renyi(n, 0.5, rng);
    dvec table = tabulate(StateSpace::full(n),
                          [&g](state_t x) { return maxcut(g, x); });

    // (1) INTERP-seeded iterative search (the production path).
    FindAnglesOptions opt;
    opt.seed = rng();
    opt.hopping.hops = 5;
    auto schedules = find_angles(mixer, table, max_p, opt);
    for (int p = 1; p <= max_p; ++p) {
      mean_interp[static_cast<std::size_t>(p - 1)] += approximation_ratio(
          schedules[static_cast<std::size_t>(p - 1)].expectation, table);
    }

    // (2) Cold start per p: same total basinhopping budget, random seed.
    for (int p = 1; p <= max_p; ++p) {
      std::vector<double> x0(static_cast<std::size_t>(2 * p));
      for (auto& a : x0) a = rng.uniform(0.0, 2.0 * kPi);
      FindAnglesOptions cold = opt;
      cold.seed = rng();
      AngleSchedule s = find_angles_at(mixer, table, p, x0, cold);
      mean_cold[static_cast<std::size_t>(p - 1)] +=
          approximation_ratio(s.expectation, table);
    }

    // (3) The raw INTERP seed evaluated without refinement.
    for (int p = 2; p <= max_p; ++p) {
      const AngleSchedule& prev = schedules[static_cast<std::size_t>(p - 2)];
      std::vector<double> seed;
      const auto betas = interp_extrapolate(prev.betas);
      const auto gammas = interp_extrapolate(prev.gammas);
      seed.insert(seed.end(), betas.begin(), betas.end());
      seed.insert(seed.end(), gammas.begin(), gammas.end());
      mean_seed_only[static_cast<std::size_t>(p - 1)] += approximation_ratio(
          evaluate_angles(mixer, table, seed), table);
    }
    mean_seed_only[0] += approximation_ratio(
        schedules[0].expectation, table);  // p=1 has no extrapolation
  }

  std::printf("%4s %18s %18s %20s\n", "p", "INTERP+basinhop",
              "cold basinhop", "raw INTERP seed");
  for (int p = 1; p <= max_p; ++p) {
    const auto i = static_cast<std::size_t>(p - 1);
    std::printf("%4d %18.4f %18.4f %20.4f\n", p, mean_interp[i] / instances,
                mean_cold[i] / instances, mean_seed_only[i] / instances);
  }
  std::printf("\nexpected shape: the raw INTERP seed alone already tracks "
              "the previous round's quality (smooth angle profiles), and "
              "seeded refinement matches or beats cold restarts of equal "
              "budget, with the gap growing at larger p.\n");
  return 0;
}
