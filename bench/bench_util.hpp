#pragma once
/// Shared helpers for the figure-reproduction harnesses: tiny argument
/// parsing (every binary accepts --full for the paper-size sweep and
/// defaults to a reduced sweep sized for CI), repetition-based timing,
/// table printing, and a structured --json=path results sink shared by all
/// harnesses (the human-readable tables stay on stdout either way).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/timer.hpp"
#include "obs/metrics.hpp"

namespace fastqaoa::benchutil {

/// True when the given flag (e.g. "--full") appears in argv.
inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Value of "--key=value" style string options, or fallback.
inline std::string string_option(int argc, char** argv, const char* key,
                                 const std::string& fallback) {
  const std::size_t len = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, len) == 0 && argv[i][len] == '=') {
      return std::string(argv[i] + len + 1);
    }
  }
  return fallback;
}

/// Value of "--key=value" style integer options, or fallback.
inline long long int_option(int argc, char** argv, const char* key,
                            long long fallback) {
  const std::string v = string_option(argc, argv, key, "");
  return v.empty() ? fallback : std::strtoll(v.c_str(), nullptr, 10);
}

/// Value of "--key=value" style floating-point options, or fallback.
inline double double_option(int argc, char** argv, const char* key,
                            double fallback) {
  const std::string v = string_option(argc, argv, key, "");
  return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
}

/// Median wall-clock seconds of `reps` calls to fn (after one warmup call).
template <typename Fn>
double time_median(Fn&& fn, int reps = 5) {
  fn();  // warmup
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    times.push_back(timer.seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Print a banner for a figure harness.
inline void banner(const char* figure, const char* description, bool full) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("mode: %s (pass --full for the paper-size sweep)\n",
              full ? "FULL" : "reduced");
  std::printf("==========================================================\n");
}

/// Append `s` to `out` as a JSON string literal.
inline void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

inline std::string json_number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

/// Structured results behind the shared --json=path flag: top-level
/// metadata, a flat list of measurement rows, and (optionally) the merged
/// engine metrics snapshot. Does nothing unless --json was passed, so every
/// harness can call it unconditionally.
class JsonReport {
 public:
  JsonReport(int argc, char** argv, std::string tool)
      : tool_(std::move(tool)),
        path_(string_option(argc, argv, "--json", "")) {}

  /// Explicit-path report, for harnesses that emit more than one artifact
  /// (e.g. ablation_kernels' --batch-json sweep next to the main --json).
  /// An empty path disables it, same as omitting the flag.
  JsonReport(std::string tool, std::string path)
      : tool_(std::move(tool)), path_(std::move(path)) {}

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  void meta(const std::string& key, const std::string& value) {
    std::string v;
    append_json_string(v, value);
    meta_.emplace_back(key, std::move(v));
  }
  void meta(const std::string& key, double value) {
    meta_.emplace_back(key, json_number(value));
  }
  void meta(const std::string& key, long long value) {
    meta_.emplace_back(key, std::to_string(value));
  }

  /// Start a new measurement row; field() calls land in the latest row.
  void row() { rows_.emplace_back(); }
  void field(const std::string& key, double value) {
    rows_.back().emplace_back(key, json_number(value));
  }
  void field(const std::string& key, long long value) {
    rows_.back().emplace_back(key, std::to_string(value));
  }
  void field(const std::string& key, const std::string& value) {
    std::string v;
    append_json_string(v, value);
    rows_.back().emplace_back(key, std::move(v));
  }

  /// Embed the current global metrics snapshot (call after the sweep).
  void attach_metrics() { metrics_ = obs::global_snapshot().to_json(); }

  /// Write the report to the --json path. Returns false (silently) when the
  /// flag was not passed; aborts with a message when the file cannot be
  /// written so CI never mistakes a missing artifact for success.
  bool write() const {
    if (path_.empty()) return false;
    std::string out = "{\"tool\":";
    append_json_string(out, tool_);
    for (const auto& [key, value] : meta_) {
      out += ',';
      append_json_string(out, key);
      out += ':';
      out += value;
    }
    out += ",\"rows\":[";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (r) out += ',';
      out += '{';
      for (std::size_t f = 0; f < rows_[r].size(); ++f) {
        if (f) out += ',';
        append_json_string(out, rows_[r][f].first);
        out += ':';
        out += rows_[r][f].second;
      }
      out += '}';
    }
    out += ']';
    if (!metrics_.empty()) {
      out += ",\"metrics\":";
      out += metrics_;
    }
    out += "}\n";
    std::ofstream file(path_);
    if (!file.good()) {
      std::fprintf(stderr, "error: cannot open --json file %s\n",
                   path_.c_str());
      std::exit(1);
    }
    file << out;
    return true;
  }

 private:
  std::string tool_;
  std::string path_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
  std::string metrics_;
};

}  // namespace fastqaoa::benchutil
