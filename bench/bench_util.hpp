#pragma once
/// Shared helpers for the figure-reproduction harnesses: tiny argument
/// parsing (every binary accepts --full for the paper-size sweep and
/// defaults to a reduced sweep sized for CI), repetition-based timing, and
/// table printing.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/timer.hpp"

namespace fastqaoa::benchutil {

/// True when the given flag (e.g. "--full") appears in argv.
inline bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Value of "--key=value" style integer options, or fallback.
inline long long int_option(int argc, char** argv, const char* key,
                            long long fallback) {
  const std::size_t len = std::strlen(key);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], key, len) == 0 && argv[i][len] == '=') {
      return std::strtoll(argv[i] + len + 1, nullptr, 10);
    }
  }
  return fallback;
}

/// Median wall-clock seconds of `reps` calls to fn (after one warmup call).
template <typename Fn>
double time_median(Fn&& fn, int reps = 5) {
  fn();  // warmup
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    times.push_back(timer.seconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// Print a banner for a figure harness.
inline void banner(const char* figure, const char* description, bool full) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("mode: %s (pass --full for the paper-size sweep)\n",
              full ? "FULL" : "reduced");
  std::printf("==========================================================\n");
}

}  // namespace fastqaoa::benchutil
