// Kernel ablations (google-benchmark): quantify each specialization the
// library's design leans on (DESIGN.md §5).
//
//   * WHT diagonal frame vs dense eigendecomposition for X mixers
//     (O(n 2^n) vs O(4^n) per application),
//   * rank-1 Grover update vs dense eigenmixer application,
//   * real-V GEMV fast path vs complex GEMV for constrained mixers,
//   * fused phase+scale pass vs separate passes.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "linalg/dense.hpp"
#include "linalg/vector_ops.hpp"
#include "linalg/wht.hpp"
#include "mixers/eigen_mixer.hpp"
#include "mixers/grover_mixer.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/state_space.hpp"

namespace {

using namespace fastqaoa;

cvec random_state(index_t dim, std::uint64_t seed) {
  Rng rng(seed);
  cvec psi(dim);
  double norm_sq = 0.0;
  for (auto& a : psi) {
    a = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    norm_sq += std::norm(a);
  }
  for (auto& a : psi) a /= std::sqrt(norm_sq);
  return psi;
}

/// X-mixer exponential through the WHT diagonal frame (the production path).
void BM_XMixer_WHT(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  XMixer mixer = XMixer::transverse_field(n);
  cvec psi = random_state(index_t{1} << n, 1);
  cvec scratch;
  for (auto _ : state) {
    mixer.apply_exp(psi, 0.37, scratch);
    benchmark::DoNotOptimize(psi.data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_XMixer_WHT)->DenseRange(6, 14, 2);

/// Same mixer, applied as a dense eigendecomposition (what a generic
/// "store V, D" implementation pays when it ignores the H^{⊗n} structure).
void BM_XMixer_DenseEigen(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const index_t dim = index_t{1} << n;
  // The transverse-field Hamiltonian is dense-diagonalizable as a real
  // symmetric matrix <y|H|x> = [popcount(x^y)==1].
  linalg::dmat h(dim, dim);
  for (index_t x = 0; x < dim; ++x) {
    for (int q = 0; q < n; ++q) h(x ^ (index_t{1} << q), x) += 1.0;
  }
  EigenMixer mixer = EigenMixer::from_hamiltonian(std::move(h), "dense-tf");
  cvec psi = random_state(dim, 2);
  cvec scratch;
  for (auto _ : state) {
    mixer.apply_exp(psi, 0.37, scratch);
    benchmark::DoNotOptimize(psi.data());
  }
}
BENCHMARK(BM_XMixer_DenseEigen)->DenseRange(6, 8, 2);

/// Rank-1 Grover update (production path).
void BM_Grover_Rank1(benchmark::State& state) {
  const index_t dim = static_cast<index_t>(state.range(0));
  GroverMixer mixer(dim);
  cvec psi = random_state(dim, 3);
  cvec scratch;
  for (auto _ : state) {
    mixer.apply_exp(psi, 0.8, scratch);
    benchmark::DoNotOptimize(psi.data());
  }
}
BENCHMARK(BM_Grover_Rank1)->RangeMultiplier(4)->Range(256, 16384);

/// Grover mixer as a dense eigenmixer (ignoring the projector structure).
void BM_Grover_DenseEigen(benchmark::State& state) {
  const index_t dim = static_cast<index_t>(state.range(0));
  linalg::dmat h(dim, dim);
  const double inv = 1.0 / static_cast<double>(dim);
  for (index_t r = 0; r < dim; ++r)
    for (index_t c = 0; c < dim; ++c) h(r, c) = inv;
  EigenMixer mixer = EigenMixer::from_hamiltonian(std::move(h), "dense-g");
  cvec psi = random_state(dim, 4);
  cvec scratch;
  for (auto _ : state) {
    mixer.apply_exp(psi, 0.8, scratch);
    benchmark::DoNotOptimize(psi.data());
  }
}
BENCHMARK(BM_Grover_DenseEigen)->RangeMultiplier(4)->Range(256, 1024);

/// Real-V GEMV (two real kernels) — the Clique/Ring production path.
void BM_Gemv_RealV(benchmark::State& state) {
  const index_t dim = static_cast<index_t>(state.range(0));
  Rng rng(5);
  const linalg::dmat v = linalg::random_matrix(dim, dim, rng);
  cvec x = random_state(dim, 6);
  cvec y(dim);
  for (auto _ : state) {
    linalg::gemv(v, x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Gemv_RealV)->RangeMultiplier(2)->Range(256, 2048);

/// Complex-V GEMV — what a complex-storage implementation pays.
void BM_Gemv_ComplexV(benchmark::State& state) {
  const index_t dim = static_cast<index_t>(state.range(0));
  Rng rng(7);
  const linalg::cmat v = linalg::random_cmatrix(dim, dim, rng);
  cvec x = random_state(dim, 8);
  cvec y(dim);
  for (auto _ : state) {
    linalg::gemv(v, x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Gemv_ComplexV)->RangeMultiplier(2)->Range(256, 2048);

/// Fused phase application (cos/sin computed inline, single pass).
void BM_DiagPhase(benchmark::State& state) {
  const index_t dim = static_cast<index_t>(state.range(0));
  cvec psi = random_state(dim, 9);
  Rng rng(10);
  dvec d(dim, 0.0);
  for (auto& v : d) v = rng.uniform(-4.0, 4.0);
  for (auto _ : state) {
    linalg::apply_diag_phase(psi, d, 0.21);
    benchmark::DoNotOptimize(psi.data());
  }
}
BENCHMARK(BM_DiagPhase)->RangeMultiplier(4)->Range(1024, 65536);

/// Raw unnormalized WHT throughput.
void BM_Wht(benchmark::State& state) {
  const index_t dim = static_cast<index_t>(state.range(0));
  cvec psi = random_state(dim, 11);
  for (auto _ : state) {
    linalg::wht_unnormalized(psi);
    benchmark::DoNotOptimize(psi.data());
  }
}
BENCHMARK(BM_Wht)->RangeMultiplier(4)->Range(1024, 65536);

}  // namespace

BENCHMARK_MAIN();
