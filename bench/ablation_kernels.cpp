// Kernel-backend ablations: quantify the two structural bets of
// src/linalg/kernels/ against the code they replaced.
//
//   1. blocked WHT — one parallel region, cache-resident multi-stage
//      blocks — vs the seed's per-stage-parallel radix-2 butterflies,
//   2. fused phase -> WHT -> expectation round vs the same work issued as
//      separate kernel calls,
//   3. the headline: the fused round on the best available backend vs the
//      full seed-era evaluate round (libm sincos phase sweep, per-stage
//      WHT, separate scale and reduction passes).
//
// Sweeps run per backend via kernels::select(); the seed references are
// compiled locally in this TU with the build's default flags so they stay
// an honest baseline. Results land in bench/baselines/kernel_backends.json
// through the shared --json flag.
//
// Usage: ablation_kernels [--full] [--reps=N] [--json=path]

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/threading.hpp"
#include "common/types.hpp"
#include "linalg/kernels/kernels.hpp"

namespace {

using namespace fastqaoa;
namespace kn = linalg::kernels;

// Defeats dead-code elimination of the timed loops; printed at the end.
double g_sink = 0.0;

// ---- seed-code references (default build flags, this TU) -------------------

/// Per-stage-parallel radix-2 WHT: one omp parallel region per stage,
/// exactly the shape src/linalg/wht.cpp shipped before the blocked kernel.
void wht_per_stage(cplx* a, index_t n) {
  for (index_t h = 1; h < n; h <<= 1) {
    const std::ptrdiff_t blocks = static_cast<std::ptrdiff_t>(n / (2 * h));
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t b = 0; b < blocks; ++b) {
      const index_t base = static_cast<index_t>(b) * 2 * h;
      for (index_t j = base; j < base + h; ++j) {
        const cplx x = a[j];
        const cplx y = a[j + h];
        a[j] = x + y;
        a[j + h] = x - y;
      }
    }
  }
}

/// Seed-era evaluate round: separate libm-sincos phase sweep, per-stage
/// WHT, a scale pass, and an OpenMP-reduction expectation — four trips
/// through memory where the fused kernel makes roughly one and a half.
double round_seed(cplx* a, const double* d, double angle, double scale,
                  const double* obj, index_t n) {
  const std::ptrdiff_t m = static_cast<std::ptrdiff_t>(n);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < m; ++i) {
    const double phase = -angle * d[i];
    a[i] *= cplx{std::cos(phase), std::sin(phase)};
  }
  wht_per_stage(a, n);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < m; ++i) a[i] *= scale;
  double acc = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : acc)
  for (std::ptrdiff_t i = 0; i < m; ++i) acc += obj[i] * std::norm(a[i]);
  return acc;
}

// ---- state setup -----------------------------------------------------------

cvec random_state(index_t dim, std::uint64_t seed) {
  Rng rng(seed);
  cvec psi(dim);
  double norm_sq = 0.0;
  for (auto& v : psi) {
    v = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    norm_sq += std::norm(v);
  }
  const double inv = 1.0 / std::sqrt(norm_sq);
  for (auto& v : psi) v *= inv;
  return psi;
}

dvec random_diag(index_t dim, std::uint64_t seed) {
  Rng rng(seed);
  dvec d(dim);
  for (auto& v : d) v = rng.uniform(-4.0, 4.0);
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = benchutil::has_flag(argc, argv, "--full");
  const int reps =
      static_cast<int>(benchutil::int_option(argc, argv, "--reps", 5));

  benchutil::banner("ablation_kernels",
                    "blocked WHT and fused-round kernels vs seed code", full);

  std::vector<int> qubits = full ? std::vector<int>{18, 20, 22}
                                 : std::vector<int>{18, 20};

  benchutil::JsonReport report(argc, argv, "ablation_kernels");
  report.meta("mode", full ? std::string("full") : std::string("reduced"));
  report.meta("threads", static_cast<long long>(num_threads()));
  report.meta("reps", static_cast<long long>(reps));

  const std::vector<std::string> backends = kn::available();
  const double kAngle = 0.37;
  const double kGamma = 0.21;

  // -- 1. blocked vs per-stage WHT, per backend ------------------------------
  std::printf("\n[wht] blocked (kernel) vs per-stage-parallel (seed)\n");
  std::printf("%-8s %4s %14s %14s %9s\n", "backend", "n", "blocked_s",
              "per_stage_s", "speedup");
  double scalar_blocked_speedup_n20 = 0.0;
  for (const auto& name : backends) {
    if (!kn::select(name)) continue;
    const kn::KernelBackend& k = kn::active();
    for (const int n : qubits) {
      const index_t dim = index_t{1} << n;
      cvec psi = random_state(dim, 11);
      const double t_blocked =
          benchutil::time_median([&] { k.wht(psi.data(), dim); }, reps);
      psi = random_state(dim, 11);
      const double t_stage = benchutil::time_median(
          [&] { wht_per_stage(psi.data(), dim); }, reps);
      g_sink += psi[0].real();
      const double speedup = t_stage / t_blocked;
      if (name == "scalar" && n == 20) scalar_blocked_speedup_n20 = speedup;
      std::printf("%-8s %4d %14.6f %14.6f %8.2fx\n", name.c_str(), n,
                  t_blocked, t_stage, speedup);
      report.row();
      report.field("section", std::string("wht_blocked_vs_per_stage"));
      report.field("backend", name);
      report.field("n", static_cast<long long>(n));
      report.field("blocked_s", t_blocked);
      report.field("per_stage_s", t_stage);
      report.field("speedup", speedup);
    }
  }

  // -- 2. fused vs unfused round, per backend --------------------------------
  // Round = diag phase + normalize-scale -> WHT -> diagonal expectation;
  // unfused issues the identical kernels of the same backend as separate
  // passes, so the delta is purely the fusion (memory traffic), not ISA.
  std::printf("\n[round] fused phase_wht_expect vs separate kernel calls\n");
  std::printf("%-8s %4s %14s %14s %9s\n", "backend", "n", "fused_s",
              "unfused_s", "speedup");
  for (const auto& name : backends) {
    if (!kn::select(name)) continue;
    const kn::KernelBackend& k = kn::active();
    for (const int n : qubits) {
      const index_t dim = index_t{1} << n;
      const dvec d = random_diag(dim, 7);
      const dvec obj = random_diag(dim, 13);
      const double scale = 1.0 / std::sqrt(static_cast<double>(dim));
      cvec psi = random_state(dim, 17);
      const double t_fused = benchutil::time_median(
          [&] {
            g_sink += k.phase_wht_expect(psi.data(), d.data(), kGamma, scale,
                                         obj.data(), dim);
          },
          reps);
      psi = random_state(dim, 17);
      const double t_unfused = benchutil::time_median(
          [&] {
            k.diag_phase(psi.data(), d.data(), kGamma, dim);
            k.scale_real(psi.data(), scale, dim);
            k.wht(psi.data(), dim);
            g_sink += k.diag_expectation(obj.data(), psi.data(), dim);
          },
          reps);
      const double speedup = t_unfused / t_fused;
      std::printf("%-8s %4d %14.6f %14.6f %8.2fx\n", name.c_str(), n, t_fused,
                  t_unfused, speedup);
      report.row();
      report.field("section", std::string("round_fused_vs_unfused"));
      report.field("backend", name);
      report.field("n", static_cast<long long>(n));
      report.field("fused_s", t_fused);
      report.field("unfused_s", t_unfused);
      report.field("speedup", speedup);
    }
  }

  // -- 3. headline: best backend fused round vs the seed-era round -----------
  kn::select("auto");
  const std::string best = kn::active_name();
  const kn::KernelBackend& k = kn::active();
  std::printf("\n[evaluate] %s fused round vs seed-era round\n", best.c_str());
  std::printf("%-8s %4s %14s %14s %9s\n", "backend", "n", "fused_s", "seed_s",
              "speedup");
  double best_vs_seed_n20 = 0.0;
  for (const int n : qubits) {
    const index_t dim = index_t{1} << n;
    const dvec d = random_diag(dim, 7);
    const dvec obj = random_diag(dim, 13);
    const double scale = 1.0 / std::sqrt(static_cast<double>(dim));
    cvec psi = random_state(dim, 19);
    const double t_fused = benchutil::time_median(
        [&] {
          g_sink += k.phase_wht_expect(psi.data(), d.data(), kAngle, scale,
                                       obj.data(), dim);
        },
        reps);
    psi = random_state(dim, 19);
    const double t_seed = benchutil::time_median(
        [&] {
          g_sink += round_seed(psi.data(), d.data(), kAngle, scale, obj.data(),
                               dim);
        },
        reps);
    const double speedup = t_seed / t_fused;
    if (n == 20) best_vs_seed_n20 = speedup;
    std::printf("%-8s %4d %14.6f %14.6f %8.2fx\n", best.c_str(), n, t_fused,
                t_seed, speedup);
    report.row();
    report.field("section", std::string("evaluate_vs_seed"));
    report.field("backend", best);
    report.field("n", static_cast<long long>(n));
    report.field("fused_s", t_fused);
    report.field("seed_s", t_seed);
    report.field("speedup", speedup);
  }

  std::printf("\nacceptance: blocked vs per-stage WHT (scalar, n=20): %.2fx\n",
              scalar_blocked_speedup_n20);
  std::printf("acceptance: %s fused round vs seed round (n=20): %.2fx\n",
              best.c_str(), best_vs_seed_n20);
  report.meta("best_backend", best);
  report.meta("scalar_blocked_speedup_n20", scalar_blocked_speedup_n20);
  report.meta("best_vs_seed_speedup_n20", best_vs_seed_n20);
  report.attach_metrics();
  report.write();

  std::printf("(sink %.3g)\n", g_sink);
  return 0;
}
