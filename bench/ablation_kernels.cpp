// Kernel-backend ablations: quantify the two structural bets of
// src/linalg/kernels/ against the code they replaced.
//
//   1. blocked WHT — one parallel region, cache-resident multi-stage
//      blocks — vs the seed's per-stage-parallel radix-2 butterflies,
//   2. fused phase -> WHT -> expectation round vs the same work issued as
//      separate kernel calls,
//   3. the headline: the fused round on the best available backend vs the
//      full seed-era evaluate round (libm sincos phase sweep, per-stage
//      WHT, separate scale and reduction passes),
//   4. batched multi-angle evaluation: evaluate_batch() carrying B
//      statevectors through the fused rounds together vs B sequential
//      evaluate() calls on the same plan, B in {1, 2, 4, 8, 16, 32}.
//
// Sweeps run per backend via kernels::select(); the seed references are
// compiled locally in this TU with the build's default flags so they stay
// an honest baseline. Results land in bench/baselines/kernel_backends.json
// through the shared --json flag; the batch sweep additionally lands in
// its own artifact (bench/baselines/batch_eval.json) via --batch-json.
//
// The batch sweep times each rep as an interleaved sequential/batched pair
// and reports the median of the per-rep ratios — back-to-back A/B pairs
// under one machine state are the only timing comparison that survives the
// clock drift of shared runners.
//
// Usage: ablation_kernels [--full] [--reps=N] [--json=path]
//                         [--batch-json=path]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/threading.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "core/plan.hpp"
#include "graphs/graph.hpp"
#include "linalg/kernels/kernels.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"

namespace {

using namespace fastqaoa;
namespace kn = linalg::kernels;

// Defeats dead-code elimination of the timed loops; printed at the end.
double g_sink = 0.0;

// ---- seed-code references (default build flags, this TU) -------------------

/// Per-stage-parallel radix-2 WHT: one omp parallel region per stage,
/// exactly the shape src/linalg/wht.cpp shipped before the blocked kernel.
void wht_per_stage(cplx* a, index_t n) {
  for (index_t h = 1; h < n; h <<= 1) {
    const std::ptrdiff_t blocks = static_cast<std::ptrdiff_t>(n / (2 * h));
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t b = 0; b < blocks; ++b) {
      const index_t base = static_cast<index_t>(b) * 2 * h;
      for (index_t j = base; j < base + h; ++j) {
        const cplx x = a[j];
        const cplx y = a[j + h];
        a[j] = x + y;
        a[j + h] = x - y;
      }
    }
  }
}

/// Seed-era evaluate round: separate libm-sincos phase sweep, per-stage
/// WHT, a scale pass, and an OpenMP-reduction expectation — four trips
/// through memory where the fused kernel makes roughly one and a half.
double round_seed(cplx* a, const double* d, double angle, double scale,
                  const double* obj, index_t n) {
  const std::ptrdiff_t m = static_cast<std::ptrdiff_t>(n);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < m; ++i) {
    const double phase = -angle * d[i];
    a[i] *= cplx{std::cos(phase), std::sin(phase)};
  }
  wht_per_stage(a, n);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < m; ++i) a[i] *= scale;
  double acc = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : acc)
  for (std::ptrdiff_t i = 0; i < m; ++i) acc += obj[i] * std::norm(a[i]);
  return acc;
}

// ---- state setup -----------------------------------------------------------

cvec random_state(index_t dim, std::uint64_t seed) {
  Rng rng(seed);
  cvec psi(dim);
  double norm_sq = 0.0;
  for (auto& v : psi) {
    v = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    norm_sq += std::norm(v);
  }
  const double inv = 1.0 / std::sqrt(norm_sq);
  for (auto& v : psi) v *= inv;
  return psi;
}

dvec random_diag(index_t dim, std::uint64_t seed) {
  Rng rng(seed);
  dvec d(dim);
  for (auto& v : d) v = rng.uniform(-4.0, 4.0);
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = benchutil::has_flag(argc, argv, "--full");
  const int reps =
      static_cast<int>(benchutil::int_option(argc, argv, "--reps", 5));

  benchutil::banner("ablation_kernels",
                    "blocked WHT and fused-round kernels vs seed code", full);

  std::vector<int> qubits = full ? std::vector<int>{18, 20, 22}
                                 : std::vector<int>{18, 20};

  benchutil::JsonReport report(argc, argv, "ablation_kernels");
  report.meta("mode", full ? std::string("full") : std::string("reduced"));
  report.meta("threads", static_cast<long long>(num_threads()));
  report.meta("reps", static_cast<long long>(reps));

  const std::vector<std::string> backends = kn::available();
  const double kAngle = 0.37;
  const double kGamma = 0.21;

  // -- 1. blocked vs per-stage WHT, per backend ------------------------------
  std::printf("\n[wht] blocked (kernel) vs per-stage-parallel (seed)\n");
  std::printf("%-8s %4s %14s %14s %9s\n", "backend", "n", "blocked_s",
              "per_stage_s", "speedup");
  double scalar_blocked_speedup_n20 = 0.0;
  for (const auto& name : backends) {
    if (!kn::select(name)) continue;
    const kn::KernelBackend& k = kn::active();
    for (const int n : qubits) {
      const index_t dim = index_t{1} << n;
      cvec psi = random_state(dim, 11);
      const double t_blocked =
          benchutil::time_median([&] { k.wht(psi.data(), dim); }, reps);
      psi = random_state(dim, 11);
      const double t_stage = benchutil::time_median(
          [&] { wht_per_stage(psi.data(), dim); }, reps);
      g_sink += psi[0].real();
      const double speedup = t_stage / t_blocked;
      if (name == "scalar" && n == 20) scalar_blocked_speedup_n20 = speedup;
      std::printf("%-8s %4d %14.6f %14.6f %8.2fx\n", name.c_str(), n,
                  t_blocked, t_stage, speedup);
      report.row();
      report.field("section", std::string("wht_blocked_vs_per_stage"));
      report.field("backend", name);
      report.field("n", static_cast<long long>(n));
      report.field("blocked_s", t_blocked);
      report.field("per_stage_s", t_stage);
      report.field("speedup", speedup);
    }
  }

  // -- 2. fused vs unfused round, per backend --------------------------------
  // Round = diag phase + normalize-scale -> WHT -> diagonal expectation;
  // unfused issues the identical kernels of the same backend as separate
  // passes, so the delta is purely the fusion (memory traffic), not ISA.
  std::printf("\n[round] fused phase_wht_expect vs separate kernel calls\n");
  std::printf("%-8s %4s %14s %14s %9s\n", "backend", "n", "fused_s",
              "unfused_s", "speedup");
  for (const auto& name : backends) {
    if (!kn::select(name)) continue;
    const kn::KernelBackend& k = kn::active();
    for (const int n : qubits) {
      const index_t dim = index_t{1} << n;
      const dvec d = random_diag(dim, 7);
      const dvec obj = random_diag(dim, 13);
      const double scale = 1.0 / std::sqrt(static_cast<double>(dim));
      cvec psi = random_state(dim, 17);
      const double t_fused = benchutil::time_median(
          [&] {
            g_sink += k.phase_wht_expect(psi.data(), d.data(), kGamma, scale,
                                         obj.data(), dim);
          },
          reps);
      psi = random_state(dim, 17);
      const double t_unfused = benchutil::time_median(
          [&] {
            k.diag_phase(psi.data(), d.data(), kGamma, dim);
            k.scale_real(psi.data(), scale, dim);
            k.wht(psi.data(), dim);
            g_sink += k.diag_expectation(obj.data(), psi.data(), dim);
          },
          reps);
      const double speedup = t_unfused / t_fused;
      std::printf("%-8s %4d %14.6f %14.6f %8.2fx\n", name.c_str(), n, t_fused,
                  t_unfused, speedup);
      report.row();
      report.field("section", std::string("round_fused_vs_unfused"));
      report.field("backend", name);
      report.field("n", static_cast<long long>(n));
      report.field("fused_s", t_fused);
      report.field("unfused_s", t_unfused);
      report.field("speedup", speedup);
    }
  }

  // -- 3. headline: best backend fused round vs the seed-era round -----------
  kn::select("auto");
  const std::string best = kn::active_name();
  const kn::KernelBackend& k = kn::active();
  std::printf("\n[evaluate] %s fused round vs seed-era round\n", best.c_str());
  std::printf("%-8s %4s %14s %14s %9s\n", "backend", "n", "fused_s", "seed_s",
              "speedup");
  double best_vs_seed_n20 = 0.0;
  for (const int n : qubits) {
    const index_t dim = index_t{1} << n;
    const dvec d = random_diag(dim, 7);
    const dvec obj = random_diag(dim, 13);
    const double scale = 1.0 / std::sqrt(static_cast<double>(dim));
    cvec psi = random_state(dim, 19);
    const double t_fused = benchutil::time_median(
        [&] {
          g_sink += k.phase_wht_expect(psi.data(), d.data(), kAngle, scale,
                                       obj.data(), dim);
        },
        reps);
    psi = random_state(dim, 19);
    const double t_seed = benchutil::time_median(
        [&] {
          g_sink += round_seed(psi.data(), d.data(), kAngle, scale, obj.data(),
                               dim);
        },
        reps);
    const double speedup = t_seed / t_fused;
    if (n == 20) best_vs_seed_n20 = speedup;
    std::printf("%-8s %4d %14.6f %14.6f %8.2fx\n", best.c_str(), n, t_fused,
                t_seed, speedup);
    report.row();
    report.field("section", std::string("evaluate_vs_seed"));
    report.field("backend", best);
    report.field("n", static_cast<long long>(n));
    report.field("fused_s", t_fused);
    report.field("seed_s", t_seed);
    report.field("speedup", speedup);
  }

  // -- 4. batched evaluate_batch vs sequential evaluate, per backend ---------
  // Whole-plan measurement (phase round + mixer round + fused expectation)
  // on a MaxCut plan whose integer-valued diagonals engage the quantized
  // phase route, i.e. the shape anglefind and the service actually run.
  // Each rep interleaves B sequential evaluate() calls with one
  // evaluate_batch() of the same B angle sets; the reported speedup is the
  // median of the per-rep ratios. Lane expectations are compared bitwise
  // every rep — a row with bit_identical=0 is a bug, not a measurement.
  {
    const int nb = 20;
    const std::vector<int> widths = {1, 2, 4, 8, 16, 32};
    benchutil::JsonReport batch_report(
        "batch_eval",
        benchutil::string_option(argc, argv, "--batch-json", ""));
    batch_report.meta("n", static_cast<long long>(nb));
    batch_report.meta("p", 1LL);
    batch_report.meta("threads", static_cast<long long>(num_threads()));
    batch_report.meta("reps", static_cast<long long>(reps));

    Rng graph_rng(23);
    const Graph graph = erdos_renyi(nb, 0.3, graph_rng);
    const dvec cost = tabulate(StateSpace::full(nb), [&graph](state_t x) {
      return maxcut(graph, x);
    });
    const XMixer mixer = XMixer::transverse_field(nb);
    const QaoaPlan plan(mixer, cost, 1);

    std::printf("\n[batch] evaluate_batch vs B sequential evaluate "
                "(maxcut n=%d, p=1)\n", nb);
    std::printf("%-8s %4s %14s %14s %12s %9s\n", "backend", "B",
                "seq_s_per_ev", "bat_s_per_ev", "evals_per_s", "speedup");
    double best_speedup_b16 = 0.0;
    std::string best_backend_b16;
    for (const auto& name : backends) {
      if (!kn::select(name)) continue;
      for (const int lanes : widths) {
        std::vector<double> betas(static_cast<std::size_t>(lanes));
        std::vector<double> gammas(static_cast<std::size_t>(lanes));
        for (int l = 0; l < lanes; ++l) {
          betas[static_cast<std::size_t>(l)] = 0.7 - 0.01 * l;
          gammas[static_cast<std::size_t>(l)] = 0.3 + 0.01 * l;
        }
        EvalWorkspace ws_seq;
        EvalWorkspace ws_bat;
        std::vector<double> e_seq(static_cast<std::size_t>(lanes));
        std::vector<double> e_bat(static_cast<std::size_t>(lanes));
        std::vector<double> t_seq;
        std::vector<double> t_bat;
        std::vector<double> ratio;
        bool bit_identical = true;
        for (int rep = 0; rep <= reps; ++rep) {  // rep 0 = warmup
          WallTimer seq_timer;
          for (int l = 0; l < lanes; ++l) {
            e_seq[static_cast<std::size_t>(l)] = evaluate(
                plan, ws_seq,
                std::span<const double>(&betas[static_cast<std::size_t>(l)], 1),
                std::span<const double>(&gammas[static_cast<std::size_t>(l)],
                                        1));
          }
          const double seq_s = seq_timer.seconds();
          WallTimer bat_timer;
          evaluate_batch(plan, ws_bat, betas, gammas, e_bat);
          const double bat_s = bat_timer.seconds();
          if (std::memcmp(e_seq.data(), e_bat.data(),
                          e_seq.size() * sizeof(double)) != 0) {
            bit_identical = false;
          }
          g_sink += e_bat[0];
          if (rep == 0) continue;
          t_seq.push_back(seq_s);
          t_bat.push_back(bat_s);
          ratio.push_back(seq_s / bat_s);
        }
        std::sort(t_seq.begin(), t_seq.end());
        std::sort(t_bat.begin(), t_bat.end());
        std::sort(ratio.begin(), ratio.end());
        const double seq_per_ev = t_seq[t_seq.size() / 2] / lanes;
        const double bat_per_ev = t_bat[t_bat.size() / 2] / lanes;
        const double speedup = ratio[ratio.size() / 2];
        if (lanes == 16 && speedup > best_speedup_b16) {
          best_speedup_b16 = speedup;
          best_backend_b16 = name;
        }
        std::printf("%-8s %4d %14.6f %14.6f %12.1f %8.2fx%s\n", name.c_str(),
                    lanes, seq_per_ev, bat_per_ev, 1.0 / bat_per_ev, speedup,
                    bit_identical ? "" : "  BITDIFF");
        batch_report.row();
        batch_report.field("backend", name);
        batch_report.field("lanes", static_cast<long long>(lanes));
        batch_report.field("seq_s_per_eval", seq_per_ev);
        batch_report.field("batch_s_per_eval", bat_per_ev);
        batch_report.field("evals_per_sec", 1.0 / bat_per_ev);
        batch_report.field("speedup", speedup);
        batch_report.field("bit_identical",
                           static_cast<long long>(bit_identical ? 1 : 0));
      }
    }
    std::printf("acceptance: evaluate_batch vs sequential (n=%d, B=16): "
                "%.2fx on %s\n", nb, best_speedup_b16,
                best_backend_b16.c_str());
    batch_report.meta("best_vs_seq_speedup_n20_b16", best_speedup_b16);
    batch_report.meta("best_backend_b16", best_backend_b16);
    batch_report.write();
    report.meta("batch_best_vs_seq_speedup_n20_b16", best_speedup_b16);
  }

  std::printf("\nacceptance: blocked vs per-stage WHT (scalar, n=20): %.2fx\n",
              scalar_blocked_speedup_n20);
  std::printf("acceptance: %s fused round vs seed round (n=20): %.2fx\n",
              best.c_str(), best_vs_seed_n20);
  report.meta("best_backend", best);
  report.meta("scalar_blocked_speedup_n20", scalar_blocked_speedup_n20);
  report.meta("best_vs_seed_speedup_n20", best_vs_seed_n20);
  report.attach_metrics();
  report.write();

  std::printf("(sink %.3g)\n", g_sink);
  return 0;
}
