// Figure 3 reproduction: extrapolated basinhopping vs the random
// local-minima exploration and median-angles strategies of Lotshaw et al.
// [22], as mean approximation ratio over random MaxCut instances.
//
// Paper setting: 50 random MaxCut instances at n=12 on G(n,0.5), p=1..10.
// Reduced default: 8 instances at n=10, p<=4. Expected shape: extrapolated
// basinhopping dominates at every p and the gap widens with p; median
// angles trail the per-instance random search.

#include <cstdio>
#include <vector>

#include "anglefind/strategies.hpp"
#include "bench_util.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"

int main(int argc, char** argv) {
  using namespace fastqaoa;
  namespace bu = benchutil;

  const bool full = bu::has_flag(argc, argv, "--full");
  const int n = static_cast<int>(bu::int_option(argc, argv, "--n",
                                                full ? 12 : 10));
  const int max_p = static_cast<int>(bu::int_option(argc, argv, "--p",
                                                    full ? 10 : 4));
  const int instances = static_cast<int>(
      bu::int_option(argc, argv, "--instances", full ? 50 : 8));
  const int restarts = static_cast<int>(
      bu::int_option(argc, argv, "--restarts", full ? 100 : 25));
  bu::banner("Figure 3",
             "extrapolated basinhopping vs random restarts vs median angles",
             full);
  std::printf("%d MaxCut instances, n=%d, G(n,0.5), p=1..%d, %d restarts\n",
              instances, n, max_p, restarts);

  bu::JsonReport report(argc, argv, "fig3_strategies");
  report.meta("n", static_cast<long long>(n));
  report.meta("max_p", static_cast<long long>(max_p));
  report.meta("instances", static_cast<long long>(instances));
  report.meta("restarts", static_cast<long long>(restarts));
  report.meta("full", static_cast<long long>(full ? 1 : 0));

  XMixer mixer = XMixer::transverse_field(n);
  WallTimer total;

  // Pre-generate instances and tables.
  std::vector<dvec> tables;
  Rng rng(777);
  for (int inst = 0; inst < instances; ++inst) {
    Graph g = erdos_renyi(n, 0.5, rng);
    tables.push_back(tabulate(StateSpace::full(n), [&g](state_t x) {
      return maxcut(g, x);
    }));
  }

  std::vector<double> mean_bh(static_cast<std::size_t>(max_p), 0.0);
  std::vector<double> mean_rand(static_cast<std::size_t>(max_p), 0.0);
  std::vector<double> mean_median(static_cast<std::size_t>(max_p), 0.0);

  // Per-p random-search angle sets per instance (for the median strategy).
  for (int p = 1; p <= max_p; ++p) {
    std::vector<std::vector<double>> angle_sets;
    angle_sets.reserve(static_cast<std::size_t>(instances));
    for (int inst = 0; inst < instances; ++inst) {
      FindAnglesOptions opt;
      opt.seed = 1000 + static_cast<std::uint64_t>(inst) * 37 +
                 static_cast<std::uint64_t>(p);
      opt.hopping.local.max_iterations = 120;
      AngleSchedule s =
          find_angles_random(mixer, tables[static_cast<std::size_t>(inst)],
                             p, restarts, opt);
      angle_sets.push_back(s.packed());
      mean_rand[static_cast<std::size_t>(p - 1)] += approximation_ratio(
          s.expectation, tables[static_cast<std::size_t>(inst)]);
    }
    // Median angles across instances, evaluated on every instance.
    std::vector<double> med = median_angles(angle_sets);
    for (int inst = 0; inst < instances; ++inst) {
      const double e =
          evaluate_angles(mixer, tables[static_cast<std::size_t>(inst)], med);
      mean_median[static_cast<std::size_t>(p - 1)] += approximation_ratio(
          e, tables[static_cast<std::size_t>(inst)]);
    }
  }

  // Extrapolated basinhopping per instance (iterative across p).
  for (int inst = 0; inst < instances; ++inst) {
    FindAnglesOptions opt;
    opt.seed = 9000 + static_cast<std::uint64_t>(inst);
    opt.hopping.hops = full ? 15 : 6;
    auto schedules = find_angles(
        mixer, tables[static_cast<std::size_t>(inst)], max_p, opt);
    for (int p = 1; p <= max_p; ++p) {
      mean_bh[static_cast<std::size_t>(p - 1)] += approximation_ratio(
          schedules[static_cast<std::size_t>(p - 1)].expectation,
          tables[static_cast<std::size_t>(inst)]);
    }
  }

  std::printf("\nmean approximation ratio across %d instances:\n", instances);
  std::printf("%4s %26s %22s %14s\n", "p", "extrapolated basinhopping",
              "random local minima", "median angles");
  for (int p = 1; p <= max_p; ++p) {
    const auto i = static_cast<std::size_t>(p - 1);
    std::printf("%4d %26.4f %22.4f %14.4f\n", p, mean_bh[i] / instances,
                mean_rand[i] / instances, mean_median[i] / instances);
    report.row();
    report.field("p", static_cast<long long>(p));
    report.field("basinhopping_ratio", mean_bh[i] / instances);
    report.field("random_ratio", mean_rand[i] / instances);
    report.field("median_ratio", mean_median[i] / instances);
  }
  std::printf("\ntotal wall time: %.1f s\n", total.seconds());
  report.meta("wall_seconds", total.seconds());
  report.attach_metrics();
  report.write();
  std::printf("paper reference: basinhopping >= random >= median at every "
              "p, with the basinhopping advantage growing with p.\n");
  return 0;
}
