// bench_mps_scaling — the approximate-engine headline: MPS evaluation far
// past the exact engine's n <= 24 wall.
//
// Three phases:
//   1. single-evaluation scaling: n = 40..100 weighted 3-regular MaxCut at
//      chi in {8, 16}, p = 4 — wall time per evaluate() plus the fidelity
//      proxies (cumulative discarded weight, largest bond reached,
//      truncation count). The proxies are the honesty columns: a fast row
//      with large discarded weight is an approximation, not a speedup.
//   2. the acceptance run: a full find_angles_mps() at n = 60, p = 4 on
//      one node, bounded by --max-evals so CI finishes in seconds.
//   3. crossover sweep: n = 16..24 with both engines on the same instance
//      and angles, at every bond cap — per-eval medians each way plus the
//      MPS discarded weight. "mps_vs_exact_speedup_n20" (the n=20 point at
//      the first chi) is what bench_check gates; in this exact-still-fits
//      range the dense kernel usually wins (2^n amplitudes are cheap), so
//      the baseline captures the crossover ratio rather than a guaranteed
//      win — regressions in either engine move it.
//
// Prints tables plus a JSON blob (compare against
// bench/baselines/mps_scaling.json via bench_check).
//
// Usage: bench_mps_scaling [--full] [--quick] [--chi=8,16] [--p=4]
//                          [--max-evals=150] [--json=path]
//
// --quick is the CI bench-check mode: one n=40 scaling row, no
// find_angles, headline crossover only — seconds instead of minutes,
// while still emitting every field bench_check gates. The reduced default
// (no flag) is the baseline-producing sweep and takes ~15-20 single-core
// minutes, most of it the bounded n=60 find_angles; --full adds n=128
// and a deeper evaluation budget.

#include <cstdio>
#include <string>
#include <vector>

#include "anglefind/strategies.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/threading.hpp"
#include "common/timer.hpp"
#include "core/plan.hpp"
#include "mixers/x_mixer.hpp"
#include "mps/hamiltonian.hpp"
#include "mps/mps_plan.hpp"
#include "mps/mps_strategies.hpp"
#include "problems/cost_functions.hpp"
#include "problems/weighted_maxcut.hpp"

using namespace fastqaoa;

namespace {

/// Deterministic instance: weighted 3-regular graph seeded by n alone, so
/// every run (and the checked-in baseline) benchmarks the same instances.
Graph instance(int n) {
  Rng rng(1000 + static_cast<std::uint64_t>(n));
  return weighted_regular(n, 3, rng);
}

std::vector<double> fixed_angles(int p) {
  // TQA-style smooth profile: representative of the angles an optimizer
  // visits (random angles truncate harder and would overstate discards).
  return tqa_initial_angles(p);
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = benchutil::has_flag(argc, argv, "--full");
  const bool quick = benchutil::has_flag(argc, argv, "--quick");
  const int p =
      static_cast<int>(benchutil::int_option(argc, argv, "--p", 4));
  const long long max_evals =
      benchutil::int_option(argc, argv, "--max-evals", full ? 600 : 150);
  set_num_threads(1);  // single node, single thread: pure engine cost

  std::vector<index_t> chis;
  {
    const std::string spec =
        benchutil::string_option(argc, argv, "--chi", "8,16");
    std::size_t pos = 0;
    while (pos < spec.size()) {
      chis.push_back(static_cast<index_t>(std::strtol(
          spec.c_str() + pos, nullptr, 10)));
      pos = spec.find(',', pos);
      if (pos == std::string::npos) break;
      ++pos;
    }
  }

  benchutil::banner("mps scaling",
                    "approximate large-n engine: weighted 3-regular MaxCut",
                    full);

  // --- phase 1: single-evaluation scaling, n = 40..100 -------------------
  const std::vector<int> sizes =
      quick ? std::vector<int>{40}
      : full ? std::vector<int>{40, 60, 80, 100, 128}
             : std::vector<int>{40, 60, 80, 100};
  const std::vector<double> angles = fixed_angles(p);

  std::printf("evaluate() scaling at p=%d (1 thread)\n", p);
  std::printf("%6s %6s %10s %12s %16s %10s %8s\n", "n", "chi", "seconds",
              "<C>", "discarded_wt", "trunc", "max_chi");
  struct Row {
    int n;
    index_t chi;
    double seconds, expectation, discarded;
    std::uint64_t truncations, max_bond;
  };
  std::vector<Row> rows;
  for (const int n : sizes) {
    const Graph g = instance(n);
    for (const index_t chi : chis) {
      mps::MpsPlan plan(mps::maxcut_hamiltonian(g),
                        {.max_bond = chi, .fidelity_budget = 1.0,
                         .trunc_tol = 1e-12});
      mps::MpsWorkspace ws;
      WallTimer timer;
      const double value = mps::evaluate_packed(plan, ws, angles);
      const double secs = timer.seconds();
      rows.push_back({n, chi, secs, value, ws.stats.discarded_weight,
                      ws.stats.truncations,
                      static_cast<std::uint64_t>(ws.stats.max_bond_reached)});
      std::printf("%6d %6d %10.3f %12.5f %16.3e %10llu %8llu\n", n,
                  static_cast<int>(chi), secs, value,
                  ws.stats.discarded_weight,
                  static_cast<unsigned long long>(ws.stats.truncations),
                  static_cast<unsigned long long>(ws.stats.max_bond_reached));
    }
  }

  // --- phase 2: n = 60 find_angles on one node ---------------------------
  const int fa_n = 60;
  double fa_secs = 0.0;
  double fa_best = 0.0;
  if (!quick) {
    const index_t fa_chi = chis.front();
    std::printf("\nfind_angles_mps() n=%d chi=%d p=%d (<= %lld evaluations)\n",
                fa_n, static_cast<int>(fa_chi), p, max_evals);
    mps::MpsPlan fa_plan(mps::maxcut_hamiltonian(instance(fa_n)),
                         {.max_bond = fa_chi, .fidelity_budget = 1.0,
                          .trunc_tol = 1e-12});
    FindAnglesOptions fa_opt;
    fa_opt.seed = 7;
    fa_opt.hopping.hops = 2;
    fa_opt.budget.max_evaluations =
        static_cast<std::uint64_t>(max_evals);
    WallTimer fa_timer;
    const std::vector<AngleSchedule> schedules =
        mps::find_angles_mps(fa_plan, p, fa_opt);
    fa_secs = fa_timer.seconds();
    fa_best = schedules.back().expectation;
    std::printf("%8s %10s %12s %10s\n", "rounds", "seconds", "best <C>",
                "evals/s");
    std::printf("%8zu %10.3f %12.6f %10.1f\n", schedules.size(), fa_secs,
                fa_best, static_cast<double>(max_evals) / fa_secs);
  }

  // --- phase 3: exact-vs-MPS crossover sweep, n = 16..24 -----------------
  // Both engines, same instance, same angles, per-eval medians. The
  // headline ratio bench_check gates is the n=20 point at the first chi.
  const std::vector<int> xsizes =
      quick ? std::vector<int>{20} : std::vector<int>{16, 20, 24};
  const int reps = full ? 9 : 5;
  struct XRow {
    int n;
    index_t chi;
    double exact_secs, mps_secs, speedup, discarded;
  };
  std::vector<XRow> xrows;
  double speedup = 0.0;
  std::printf("\nexact-vs-MPS crossover sweep (%d reps)\n", reps);
  std::printf("%6s %6s %14s %14s %10s %16s\n", "n", "chi", "exact s/eval",
              "mps s/eval", "ratio", "discarded_wt");
  for (const int xn : xsizes) {
    const Graph xg = instance(xn);
    dvec table = tabulate(StateSpace::full(xn),
                          [&xg](state_t x) { return maxcut(xg, x); });
    XMixer mixer = XMixer::transverse_field(xn);
    QaoaPlan exact_plan(mixer, table, p);
    EvalWorkspace exact_ws;
    exact_ws.reserve(exact_plan);
    const double exact_secs = benchutil::time_median(
        [&] { evaluate_packed(exact_plan, exact_ws, angles); }, reps);
    for (const index_t chi : chis) {
      mps::MpsPlan mps_plan(mps::maxcut_hamiltonian(xg),
                            {.max_bond = chi, .fidelity_budget = 1.0,
                             .trunc_tol = 1e-12});
      mps::MpsWorkspace mps_ws;
      const double mps_secs = benchutil::time_median(
          [&] { mps::evaluate_packed(mps_plan, mps_ws, angles); }, reps);
      const double ratio = exact_secs / mps_secs;
      xrows.push_back({xn, chi, exact_secs, mps_secs, ratio,
                       mps_ws.stats.discarded_weight});
      if (xn == 20 && chi == chis.front()) speedup = ratio;
      std::printf("%6d %6d %13.3es %13.3es %9.3fx %16.3e\n", xn,
                  static_cast<int>(chi), exact_secs, mps_secs, ratio,
                  mps_ws.stats.discarded_weight);
      if (quick) break;  // headline point only
    }
  }

  // --- JSON summary ------------------------------------------------------
  std::printf("\n{\"bench\":\"mps_scaling\",\"p\":%d,"
              "\"mps_vs_exact_speedup_n20\":%.6f,"
              "\"find_angles_n\":%d,\"find_angles_best\":%.8f,"
              "\"find_angles_seconds\":%.3f,\"rows\":[",
              p, speedup, fa_n, fa_best, fa_secs);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::printf("%s{\"n\":%d,\"chi\":%d,\"seconds\":%.4f,"
                "\"expectation\":%.6f,\"discarded_weight\":%.6e,"
                "\"truncations\":%llu,\"max_bond_reached\":%llu}",
                i ? "," : "", r.n, static_cast<int>(r.chi), r.seconds,
                r.expectation, r.discarded,
                static_cast<unsigned long long>(r.truncations),
                static_cast<unsigned long long>(r.max_bond));
  }
  std::printf("],\"crossover\":[");
  for (std::size_t i = 0; i < xrows.size(); ++i) {
    const XRow& x = xrows[i];
    std::printf("%s{\"n\":%d,\"chi\":%d,\"exact_s\":%.6e,\"mps_s\":%.6e,"
                "\"ratio\":%.4f,\"discarded_weight\":%.6e}",
                i ? "," : "", x.n, static_cast<int>(x.chi), x.exact_secs,
                x.mps_secs, x.speedup, x.discarded);
  }
  std::printf("]}\n");

  benchutil::JsonReport report(argc, argv, "bench_mps_scaling");
  report.meta("p", static_cast<long long>(p));
  report.meta("full", static_cast<long long>(full ? 1 : 0));
  report.meta("mps_vs_exact_speedup_n20", speedup);
  report.meta("find_angles_n", static_cast<long long>(fa_n));
  report.meta("find_angles_best", fa_best);
  report.meta("find_angles_seconds", fa_secs);
  for (const Row& r : rows) {
    report.row();
    report.field("kind", "scaling");
    report.field("n", static_cast<long long>(r.n));
    report.field("chi", static_cast<long long>(static_cast<int>(r.chi)));
    report.field("seconds", r.seconds);
    report.field("expectation", r.expectation);
    report.field("discarded_weight", r.discarded);
    report.field("truncations", static_cast<long long>(r.truncations));
    report.field("max_bond_reached", static_cast<long long>(r.max_bond));
  }
  for (const XRow& x : xrows) {
    report.row();
    report.field("kind", "crossover");
    report.field("n", static_cast<long long>(x.n));
    report.field("chi", static_cast<long long>(static_cast<int>(x.chi)));
    report.field("exact_s_per_eval", x.exact_secs);
    report.field("mps_s_per_eval", x.mps_secs);
    report.field("ratio", x.speedup);
    report.field("discarded_weight", x.discarded);
  }
  report.attach_metrics();
  report.write();
  return 0;
}
