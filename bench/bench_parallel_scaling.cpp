// bench_parallel_scaling — thread-scaling of the shared-plan evaluation
// core and the parallel random-restart outer loop.
//
// Sweeps 1..max threads twice, then measures instrumentation overhead:
//   1. raw evaluate() throughput: T std::threads hammer one shared QaoaPlan
//      with private workspaces (inner OpenMP pinned to 1 thread so only the
//      outer concurrency is measured);
//   2. find_angles_random() wall time at each OpenMP team size, verifying
//      the best objective is identical at every thread count;
//   3. single-thread evaluate() median with metrics recording on vs off
//      (the runtime toggle — both in one binary), the acceptance check for
//      the observability layer (compare bench/baselines/obs_overhead.json).
//
// Prints a table plus a JSON blob (compare against
// bench/baselines/parallel_scaling.json). --json=path writes the structured
// report shared by all harnesses.
//
// Usage: bench_parallel_scaling [--full] [--n=12] [--restarts=24]
//                               [--max-threads=N] [--json=path]

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "anglefind/strategies.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/threading.hpp"
#include "common/timer.hpp"
#include "core/plan.hpp"
#include "mixers/x_mixer.hpp"
#include "obs/metrics.hpp"
#include "problems/cost_functions.hpp"

using namespace fastqaoa;

namespace {

std::vector<int> thread_sweep(int max_threads) {
  std::vector<int> sweep;
  for (int t = 1; t < max_threads; t *= 2) sweep.push_back(t);
  sweep.push_back(max_threads);
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = benchutil::has_flag(argc, argv, "--full");
  const int n =
      static_cast<int>(benchutil::int_option(argc, argv, "--n", full ? 16 : 12));
  const int p = 4;
  const int restarts = static_cast<int>(
      benchutil::int_option(argc, argv, "--restarts", full ? 64 : 24));
  const unsigned hw = std::thread::hardware_concurrency();
  const int max_threads = static_cast<int>(benchutil::int_option(
      argc, argv, "--max-threads", hw ? static_cast<long long>(hw) : 1));

  benchutil::banner("parallel scaling",
                    "shared-plan evaluation + random-restart outer loop",
                    full);
  std::printf("n=%d p=%d restarts=%d max_threads=%d\n\n", n, p, restarts,
              max_threads);

  Rng rng(42);
  Graph g = erdos_renyi(n, 0.5, rng);
  dvec table = tabulate(StateSpace::full(n),
                        [&g](state_t x) { return maxcut(g, x); });
  XMixer mixer = XMixer::transverse_field(n);
  QaoaPlan plan(mixer, table, p);

  std::vector<double> angles(static_cast<std::size_t>(2 * p));
  for (auto& a : angles) a = rng.uniform(0.0, 2.0 * kPi);

  // --- phase 1: raw shared-plan evaluate() throughput -------------------
  const int evals_per_thread = full ? 400 : 100;
  const std::vector<int> sweep = thread_sweep(max_threads);

  std::printf("shared-plan evaluate() throughput (%d evals/thread)\n",
              evals_per_thread);
  std::printf("%8s %14s %10s\n", "threads", "evals/sec", "speedup");
  std::vector<double> eval_rates;
  for (int t : sweep) {
    WallTimer timer;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(t));
    for (int w = 0; w < t; ++w) {
      workers.emplace_back([&] {
        set_num_threads(1);
        EvalWorkspace ws;
        ws.reserve(plan);
        for (int e = 0; e < evals_per_thread; ++e) {
          evaluate_packed(plan, ws, angles);
        }
      });
    }
    for (auto& w : workers) w.join();
    const double rate =
        static_cast<double>(t) * evals_per_thread / timer.seconds();
    eval_rates.push_back(rate);
    std::printf("%8d %14.1f %9.2fx\n", t, rate, rate / eval_rates.front());
  }

  // --- phase 2: parallel random restarts --------------------------------
  std::printf("\nfind_angles_random() wall time (%d restarts)\n", restarts);
  std::printf("%8s %10s %14s %10s %14s\n", "threads", "seconds",
              "restarts/sec", "speedup", "best <C>");
  FindAnglesOptions opt;
  opt.seed = 7;
  std::vector<double> restart_rates;
  std::vector<double> best_values;
  for (int t : sweep) {
    set_num_threads(t);
    WallTimer timer;
    const AngleSchedule s = find_angles_random(mixer, table, p, restarts, opt);
    const double secs = timer.seconds();
    const double rate = restarts / secs;
    restart_rates.push_back(rate);
    best_values.push_back(s.expectation);
    std::printf("%8d %10.3f %14.2f %9.2fx %14.8f\n", t, secs, rate,
                rate / restart_rates.front(), s.expectation);
  }
  set_num_threads(max_threads);
  for (double v : best_values) {
    if (v != best_values.front()) {
      std::printf("WARNING: best objective varies with thread count!\n");
      return 1;
    }
  }

  // --- phase 3: instrumentation overhead ---------------------------------
  // Median single-thread evaluate() with metrics recording enabled vs
  // disabled at runtime, in this same binary. With FASTQAOA_PROFILING=OFF
  // both runs are uninstrumented and the ratio sits at ~1.0 by construction.
  set_num_threads(1);
  const int overhead_reps = full ? 200 : 60;
  EvalWorkspace overhead_ws;
  overhead_ws.reserve(plan);
  auto eval_once = [&] { evaluate_packed(plan, overhead_ws, angles); };
  obs::set_metrics_enabled(false);
  const double t_off = benchutil::time_median(eval_once, overhead_reps);
  obs::set_metrics_enabled(true);
  const double t_on = benchutil::time_median(eval_once, overhead_reps);
  set_num_threads(max_threads);
  const double overhead_ratio = t_on / t_off;
  std::printf("\nevaluate() instrumentation overhead (1 thread, %d reps)\n",
              overhead_reps);
  std::printf("%14s %14s %10s\n", "metrics off", "metrics on", "on/off");
  std::printf("%13.3es %13.3es %9.4fx\n", t_off, t_on, overhead_ratio);

  // --- JSON summary ------------------------------------------------------
  std::printf("\n{\"bench\":\"parallel_scaling\",\"n\":%d,\"p\":%d,"
              "\"restarts\":%d,\"threads\":[",
              n, p, restarts);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    std::printf("%s%d", i ? "," : "", sweep[i]);
  }
  std::printf("],\"eval_rate\":[");
  for (std::size_t i = 0; i < eval_rates.size(); ++i) {
    std::printf("%s%.1f", i ? "," : "", eval_rates[i]);
  }
  std::printf("],\"restart_rate\":[");
  for (std::size_t i = 0; i < restart_rates.size(); ++i) {
    std::printf("%s%.2f", i ? "," : "", restart_rates[i]);
  }
  std::printf("],\"best\":%.10f,\"overhead\":{\"median_off_s\":%.6e,"
              "\"median_on_s\":%.6e,\"ratio\":%.4f}}\n",
              best_values.front(), t_off, t_on, overhead_ratio);

  benchutil::JsonReport report(argc, argv, "bench_parallel_scaling");
  report.meta("n", static_cast<long long>(n));
  report.meta("p", static_cast<long long>(p));
  report.meta("restarts", static_cast<long long>(restarts));
  report.meta("full", static_cast<long long>(full ? 1 : 0));
  report.meta("overhead_median_off_s", t_off);
  report.meta("overhead_median_on_s", t_on);
  report.meta("overhead_ratio", overhead_ratio);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    report.row();
    report.field("threads", static_cast<long long>(sweep[i]));
    report.field("eval_rate", eval_rates[i]);
    report.field("restart_rate", restart_rates[i]);
    report.field("best", best_values[i]);
  }
  report.attach_metrics();
  report.write();
  return 0;
}
