// bench_parallel_scaling — thread-scaling of the shared-plan evaluation
// core and the parallel random-restart outer loop.
//
// Sweeps 1..max threads twice:
//   1. raw evaluate() throughput: T std::threads hammer one shared QaoaPlan
//      with private workspaces (inner OpenMP pinned to 1 thread so only the
//      outer concurrency is measured);
//   2. find_angles_random() wall time at each OpenMP team size, verifying
//      the best objective is identical at every thread count.
//
// Prints a table plus a JSON blob (compare against
// bench/baselines/parallel_scaling.json).
//
// Usage: bench_parallel_scaling [--full] [--n=12] [--restarts=24]
//                               [--max-threads=N]

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "anglefind/strategies.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/threading.hpp"
#include "common/timer.hpp"
#include "core/plan.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"

using namespace fastqaoa;

namespace {

std::vector<int> thread_sweep(int max_threads) {
  std::vector<int> sweep;
  for (int t = 1; t < max_threads; t *= 2) sweep.push_back(t);
  sweep.push_back(max_threads);
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = benchutil::has_flag(argc, argv, "--full");
  const int n =
      static_cast<int>(benchutil::int_option(argc, argv, "--n", full ? 16 : 12));
  const int p = 4;
  const int restarts = static_cast<int>(
      benchutil::int_option(argc, argv, "--restarts", full ? 64 : 24));
  const unsigned hw = std::thread::hardware_concurrency();
  const int max_threads = static_cast<int>(benchutil::int_option(
      argc, argv, "--max-threads", hw ? static_cast<long long>(hw) : 1));

  benchutil::banner("parallel scaling",
                    "shared-plan evaluation + random-restart outer loop",
                    full);
  std::printf("n=%d p=%d restarts=%d max_threads=%d\n\n", n, p, restarts,
              max_threads);

  Rng rng(42);
  Graph g = erdos_renyi(n, 0.5, rng);
  dvec table = tabulate(StateSpace::full(n),
                        [&g](state_t x) { return maxcut(g, x); });
  XMixer mixer = XMixer::transverse_field(n);
  QaoaPlan plan(mixer, table, p);

  std::vector<double> angles(static_cast<std::size_t>(2 * p));
  for (auto& a : angles) a = rng.uniform(0.0, 2.0 * kPi);

  // --- phase 1: raw shared-plan evaluate() throughput -------------------
  const int evals_per_thread = full ? 400 : 100;
  const std::vector<int> sweep = thread_sweep(max_threads);

  std::printf("shared-plan evaluate() throughput (%d evals/thread)\n",
              evals_per_thread);
  std::printf("%8s %14s %10s\n", "threads", "evals/sec", "speedup");
  std::vector<double> eval_rates;
  for (int t : sweep) {
    WallTimer timer;
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(t));
    for (int w = 0; w < t; ++w) {
      workers.emplace_back([&] {
        set_num_threads(1);
        EvalWorkspace ws;
        ws.reserve(plan);
        for (int e = 0; e < evals_per_thread; ++e) {
          evaluate_packed(plan, ws, angles);
        }
      });
    }
    for (auto& w : workers) w.join();
    const double rate =
        static_cast<double>(t) * evals_per_thread / timer.seconds();
    eval_rates.push_back(rate);
    std::printf("%8d %14.1f %9.2fx\n", t, rate, rate / eval_rates.front());
  }

  // --- phase 2: parallel random restarts --------------------------------
  std::printf("\nfind_angles_random() wall time (%d restarts)\n", restarts);
  std::printf("%8s %10s %14s %10s %14s\n", "threads", "seconds",
              "restarts/sec", "speedup", "best <C>");
  FindAnglesOptions opt;
  opt.seed = 7;
  std::vector<double> restart_rates;
  std::vector<double> best_values;
  for (int t : sweep) {
    set_num_threads(t);
    WallTimer timer;
    const AngleSchedule s = find_angles_random(mixer, table, p, restarts, opt);
    const double secs = timer.seconds();
    const double rate = restarts / secs;
    restart_rates.push_back(rate);
    best_values.push_back(s.expectation);
    std::printf("%8d %10.3f %14.2f %9.2fx %14.8f\n", t, secs, rate,
                rate / restart_rates.front(), s.expectation);
  }
  set_num_threads(max_threads);
  for (double v : best_values) {
    if (v != best_values.front()) {
      std::printf("WARNING: best objective varies with thread count!\n");
      return 1;
    }
  }

  // --- JSON summary ------------------------------------------------------
  std::printf("\n{\"bench\":\"parallel_scaling\",\"n\":%d,\"p\":%d,"
              "\"restarts\":%d,\"threads\":[",
              n, p, restarts);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    std::printf("%s%d", i ? "," : "", sweep[i]);
  }
  std::printf("],\"eval_rate\":[");
  for (std::size_t i = 0; i < eval_rates.size(); ++i) {
    std::printf("%s%.1f", i ? "," : "", eval_rates[i]);
  }
  std::printf("],\"restart_rate\":[");
  for (std::size_t i = 0; i < restart_rates.size(); ++i) {
    std::printf("%s%.2f", i ? "," : "", restart_rates[i]);
  }
  std::printf("],\"best\":%.10f}\n", best_values.front());
  return 0;
}
