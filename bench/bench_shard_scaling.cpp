// bench_shard_scaling — throughput of the sharded statevector layer.
//
// Times evaluate_packed() per (backend, n, shard count) and reports the
// shards=K vs shards=1 speedup. On a multi-socket machine the sharded
// path wins by keeping each shard's WHT sweeps node-local; on a
// single-node machine the two paths are the same arithmetic, so the
// ratios gate *overhead*: the sharded drivers must not regress the
// monolithic path (headline `shards4_vs_1_speedup_n*` fields, checked by
// the non-blocking bench_check CI job against
// bench/baselines/shard_scaling.json).
//
// Bit-identity is asserted as a side effect: every (backend, n, K) cell's
// expectation must equal the shards=1 cell exactly, or the bench fails.
//
// Usage: bench_shard_scaling [--full] [--reps=N] [--json=path]
//   reduced sweep: n = 20, 22        (CI-sized)
//   --full sweep:  n = 20, 22, 24, 26 (needs ~3 GiB free at n=26)

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/plan.hpp"
#include "linalg/kernels/kernels.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"

using namespace fastqaoa;

namespace kn = linalg::kernels;

int main(int argc, char** argv) {
  const bool full = benchutil::has_flag(argc, argv, "--full");
  const int reps =
      static_cast<int>(benchutil::int_option(argc, argv, "--reps", full ? 5 : 3));
  const int p = 2;
  std::vector<int> sizes = {20, 22};
  if (full) {
    sizes.push_back(24);
    sizes.push_back(26);
  }
  const std::vector<int> shard_counts = {1, 2, 4};

  benchutil::banner("shard scaling",
                    "sharded vs monolithic statevector evaluation", full);

  kn::select("auto");
  const std::string auto_backend = kn::active_name();
  std::printf("p=%d reps=%d auto_backend=%s\n\n", p, reps,
              auto_backend.c_str());
  std::printf("%8s %4s %7s %12s %10s\n", "backend", "n", "shards", "median_s",
              "speedup");

  benchutil::JsonReport report(argc, argv, "bench_shard_scaling");
  report.meta("p", static_cast<long long>(p));
  report.meta("reps", static_cast<long long>(reps));
  report.meta("full", static_cast<long long>(full ? 1 : 0));
  report.meta("auto_backend", auto_backend);

  bool identical = true;
  for (const std::string& backend : kn::available()) {
    if (!kn::select(backend)) continue;
    for (const int n : sizes) {
      Rng rng(42);
      Graph g = erdos_renyi(n, full ? 0.1 : 0.3, rng);
      dvec table = tabulate(StateSpace::full(n),
                            [&g](state_t x) { return maxcut(g, x); });
      XMixer mixer = XMixer::transverse_field(n);
      QaoaPlan plan(mixer, table, p);
      std::vector<double> angles(static_cast<std::size_t>(2 * p));
      for (auto& a : angles) a = rng.uniform(0.0, 2.0 * kPi);

      double base_s = 0.0;
      double base_e = 0.0;
      for (const int shards : shard_counts) {
        EvalWorkspace ws;
        ws.shards = shards;
        ws.reserve(plan);
        double expectation = 0.0;
        const double median_s = benchutil::time_median(
            [&] { expectation = evaluate_packed(plan, ws, angles); }, reps);
        if (shards == 1) {
          base_s = median_s;
          base_e = expectation;
        } else if (expectation != base_e) {
          std::printf("ERROR: %s n=%d shards=%d expectation %.17g != "
                      "shards=1 value %.17g\n",
                      backend.c_str(), n, shards, expectation, base_e);
          identical = false;
        }
        const double speedup = base_s / median_s;
        std::printf("%8s %4d %7d %12.6f %9.3fx\n", backend.c_str(), n, shards,
                    median_s, speedup);
        report.row();
        report.field("backend", backend);
        report.field("n", static_cast<long long>(n));
        report.field("shards", static_cast<long long>(shards));
        report.field("median_s", median_s);
        report.field("speedup", speedup);
        if (backend == auto_backend && shards == 4) {
          report.meta("shards4_vs_1_speedup_n" + std::to_string(n), speedup);
        }
      }
    }
  }
  kn::select("auto");

  if (!identical) {
    std::printf("\nFAILED: shard counts disagreed — see errors above\n");
    return 1;
  }
  report.attach_metrics();
  report.write();
  return 0;
}
