// Figure 4b reproduction: CPU time vs rounds p for an n=14 MaxCut QAOA
// evaluation across the three packages. All packages scale linearly in p;
// the separation between them is the per-round constant (precomputed
// diagonal frame vs rebuilt gate lists). Memory is flat in p for all
// packages (the paper omits it for that reason); we assert that by printing
// the tracked high-water mark per package once.

#include <cstdio>
#include <vector>

#include "baselines/packages.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace fastqaoa;
  namespace bu = benchutil;

  const bool full = bu::has_flag(argc, argv, "--full");
  const int n = static_cast<int>(bu::int_option(argc, argv, "--n",
                                                full ? 14 : 12));
  const int p_max = static_cast<int>(bu::int_option(argc, argv, "--pmax",
                                                    full ? 20 : 8));
  bu::banner("Figure 4b", "time vs rounds, MaxCut", full);
  std::printf("n=%d, p=1..%d\n\n", n, p_max);

  bu::JsonReport report(argc, argv, "fig4b_round_scaling");
  report.meta("n", static_cast<long long>(n));
  report.meta("p_max", static_cast<long long>(p_max));
  report.meta("full", static_cast<long long>(full ? 1 : 0));

  Rng rng(14);
  Graph g = erdos_renyi(n, 0.5, rng);

  std::printf("%4s | %14s %14s %14s | %9s %9s\n", "p", "fastqaoa [s]",
              "light [s]", "heavy [s]", "heavy/fq", "light/fq");
  for (int p = 1; p <= p_max; p += (p < 4 ? 1 : 2)) {
    std::vector<double> betas(static_cast<std::size_t>(p), 0.4);
    std::vector<double> gammas(static_cast<std::size_t>(p), 0.9);

    auto fast = baselines::make_fastqaoa_package(g, p);
    auto light = baselines::make_circuit_light_package(g);
    auto heavy = baselines::make_circuit_heavy_package(g);

    const int reps = 5;
    const double t_fast =
        bu::time_median([&] { fast->evaluate(betas, gammas); }, reps);
    const double t_light =
        bu::time_median([&] { light->evaluate(betas, gammas); }, reps);
    const double t_heavy =
        bu::time_median([&] { heavy->evaluate(betas, gammas); }, reps);
    std::printf("%4d | %14.3e %14.3e %14.3e | %9.1f %9.1f\n", p, t_fast,
                t_light, t_heavy, t_heavy / t_fast, t_light / t_fast);
    report.row();
    report.field("p", static_cast<long long>(p));
    report.field("fastqaoa_seconds", t_fast);
    report.field("light_seconds", t_light);
    report.field("heavy_seconds", t_heavy);
  }
  report.attach_metrics();
  report.write();

  std::printf("\npaper reference: all three scale linearly in p; the "
              "package ordering (fastqaoa < QAOA.jl-like < QAOAKit-like) is "
              "constant across rounds, and memory is flat in p for all "
              "packages.\n");
  return 0;
}
