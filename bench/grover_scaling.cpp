// §2.4 reproduction: large-n Grover-mixer QAOA through the degeneracy
// fast path.
//
// 1. Cross-check: at small n the compressed evolution matches the full
//    statevector simulation to machine precision.
// 2. Pre-computation scaling: streaming degeneracy histograms (the paper's
//    Gosper-partitioned tabulation) vs n for MaxCut.
// 3. Simulation scaling: p=20 Grover-QAOA on Hamming-weight objectives up
//    to n=100 — the statevector would have 2^100 amplitudes; the
//    compressed state has n+1 classes.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/grover_fast.hpp"
#include "core/qaoa.hpp"
#include "mixers/grover_mixer.hpp"
#include "problems/cost_functions.hpp"

int main(int argc, char** argv) {
  using namespace fastqaoa;
  namespace bu = benchutil;

  const bool full = bu::has_flag(argc, argv, "--full");
  bu::banner("§2.4", "Grover-mixer degeneracy fast path up to n=100", full);

  bu::JsonReport report(argc, argv, "grover_scaling");
  report.meta("full", static_cast<long long>(full ? 1 : 0));

  // 1. Cross-check against the full statevector at n=12.
  {
    Rng rng(1);
    const int n = 12;
    Graph g = erdos_renyi(n, 0.5, rng);
    dvec table = tabulate(StateSpace::full(n),
                          [&g](state_t x) { return maxcut(g, x); });
    GroverMixer mixer(index_t{1} << n);
    Qaoa full_sim(mixer, table, 4);
    std::vector<double> angles(8);
    for (auto& a : angles) a = rng.uniform(0.0, 2.0 * kPi);
    const double e_full = full_sim.run_packed(angles);
    GroverQaoa fast(degeneracy_table(table));
    const double e_fast = fast.run_packed(angles);
    std::printf("cross-check n=%d p=4: full=%.12f compressed=%.12f "
                "(|diff| = %.2e)\n\n",
                n, e_full, e_fast, std::abs(e_full - e_fast));
    report.meta("crosscheck_diff", std::abs(e_full - e_fast));
  }

  // 2. Streaming degeneracy tabulation vs n (the pre-computation the paper
  //    spreads across workers).
  std::printf("%4s %16s %14s %14s\n", "n", "#distinct values",
              "tabulate [s]", "space size");
  const int tab_max = full ? 24 : 20;
  for (int n = 12; n <= tab_max; n += 4) {
    Rng rng(static_cast<std::uint64_t>(n));
    Graph g = erdos_renyi(n, 0.5, rng);
    WallTimer timer;
    DegeneracyTable t =
        degeneracy_table_streaming(n, [&g](state_t x) { return maxcut(g, x); });
    std::printf("%4d %16zu %14.3f %14.3e\n", n, t.num_distinct(),
                timer.seconds(), static_cast<double>(t.total));
  }

  // 3. Simulation scaling with analytic Hamming-weight degeneracies.
  std::printf("\np=20 Grover-QAOA on a Hamming-weight objective:\n");
  std::printf("%4s %12s %16s %14s\n", "n", "#classes", "2^n states",
              "simulate [s]");
  for (const int n : {20, 40, 60, 80, 100}) {
    std::vector<double> cost(static_cast<std::size_t>(n) + 1);
    for (int m = 0; m <= n; ++m) {
      // A rugged synthetic objective over Hamming weight classes.
      cost[static_cast<std::size_t>(m)] =
          std::abs(m - n / 3.0) + 2.0 * std::sin(0.7 * m);
    }
    GroverQaoa qaoa = grover_hamming_weight_qaoa(n, cost);
    std::vector<double> angles(40);
    Rng rng(static_cast<std::uint64_t>(n));
    for (auto& a : angles) a = rng.uniform(0.0, 2.0 * kPi);
    const double seconds =
        bu::time_median([&] { qaoa.run_packed(angles); }, 5);
    std::printf("%4d %12zu %16.3e %14.3e\n", n, qaoa.num_classes(),
                std::pow(2.0, n), seconds);
    report.row();
    report.field("n", static_cast<long long>(n));
    report.field("classes", static_cast<long long>(qaoa.num_classes()));
    report.field("simulate_seconds", seconds);
  }
  report.attach_metrics();
  report.write();

  std::printf("\npaper reference: simulation cost tracks the number of "
              "distinct objective values, not 2^n — n=100 Grover-QAOA runs "
              "in microseconds per evaluation.\n");
  return 0;
}
