// Ablation (paper §4, QOKit discussion): exact eigendecomposition-based
// constrained mixing vs first-order Trotterized mixing.
//
// QOKit implements Clique/Ring mixers as one Trotter step per application —
// cheap per call and no O(dim^3) precomputation, but only approximately the
// intended unitary. This harness quantifies both sides of the trade on
// Densest k-Subgraph:
//   * unitary error of the Trotterized exponential vs steps,
//   * per-application cost (exact GEMV-pair vs steps * |E| Givens sweeps),
//   * the end-to-end effect on a p=3 QAOA expectation value.

#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/trotter_mixer.hpp"
#include "bench_util.hpp"
#include "core/qaoa.hpp"
#include "linalg/vector_ops.hpp"
#include "mixers/eigen_mixer.hpp"
#include "problems/cost_functions.hpp"

int main(int argc, char** argv) {
  using namespace fastqaoa;
  namespace bu = benchutil;

  const bool full = bu::has_flag(argc, argv, "--full");
  const int n = static_cast<int>(bu::int_option(argc, argv, "--n",
                                                full ? 12 : 10));
  const int k = n / 2;
  bu::banner("Ablation", "exact vs first-order-Trotter Clique mixing", full);

  Rng rng(3);
  Graph g = erdos_renyi(n, 0.5, rng);
  StateSpace space = StateSpace::dicke(n, k);
  dvec table =
      tabulate(space, [&g](state_t x) { return densest_subgraph(g, x); });
  std::printf("Densest %d-Subgraph, n=%d, feasible dim %zu\n\n", k, n,
              space.dim());

  WallTimer eig_timer;
  EigenMixer exact = EigenMixer::clique(space);
  const double eig_seconds = eig_timer.seconds();
  std::printf("one-off eigendecomposition: %.3f s (amortized across every "
              "subsequent evaluation)\n\n",
              eig_seconds);

  // Reference: exact mixer application on a random state.
  cvec reference(space.dim());
  {
    Rng state_rng(9);
    double norm_sq = 0.0;
    for (auto& a : reference) {
      a = cplx{state_rng.uniform(-1.0, 1.0), state_rng.uniform(-1.0, 1.0)};
      norm_sq += std::norm(a);
    }
    for (auto& a : reference) a /= std::sqrt(norm_sq);
  }
  const double beta = 0.5;
  cvec exact_state = reference;
  cvec scratch;
  exact.apply_exp(exact_state, beta, scratch);
  const double t_exact =
      bu::time_median([&] {
        cvec psi = reference;
        exact.apply_exp(psi, beta, scratch);
      }, 5);

  std::printf("%8s %16s %16s %12s\n", "steps", "unitary error",
              "apply [s]", "vs exact");
  for (const int steps : {1, 2, 4, 8, 16, 32}) {
    baselines::TrotterXYMixer trotter(space, complete_graph(n), steps);
    cvec psi = reference;
    trotter.apply_exp(psi, beta, scratch);
    const double err = linalg::max_abs_diff(psi, exact_state);
    const double t_trotter =
        bu::time_median([&] {
          cvec state = reference;
          trotter.apply_exp(state, beta, scratch);
        }, 5);
    std::printf("%8d %16.3e %16.3e %11.2fx\n", steps, err, t_trotter,
                t_trotter / t_exact);
  }
  std::printf("%8s %16s %16.3e %11s  <- exact (V e^{-i beta D} V^T)\n",
              "exact", "0", t_exact, "1.00x");

  // End-to-end: p=3 QAOA expectation with each mixer at fixed angles.
  std::printf("\np=3 QAOA expectation at fixed angles:\n");
  std::vector<double> angles = {0.3, 0.7, 0.45, 0.8, 0.35, 0.95};
  Qaoa engine_exact(exact, table, 3);
  const double e_exact = engine_exact.run_packed(angles);
  std::printf("%8s  <C> = %.8f\n", "exact", e_exact);
  for (const int steps : {1, 4, 16}) {
    baselines::TrotterXYMixer trotter(space, complete_graph(n), steps);
    Qaoa engine(trotter, table, 3);
    const double e = engine.run_packed(angles);
    std::printf("%7dT  <C> = %.8f  (|diff| = %.2e)\n", steps, e,
                std::abs(e - e_exact));
  }

  std::printf("\npaper reference: QOKit's Trotterized Clique/Ring mixers "
              "avoid the eigendecomposition but are 'equivalent to a "
              "first-order Trotter approximation' — error shrinks ~1/steps "
              "while cost grows ~steps.\n");
  return 0;
}
