// Figure 5 reproduction: time to find the closest local minimum with BFGS,
// using either finite differences or the exact adjoint (AD-equivalent)
// gradient, averaged over random MaxCut instances and random starting
// angles, as a function of p.
//
// Paper setting: 100 random n=14 MaxCut instances on an Apple M2 Max.
// Reduced default: 20 instances at n=10. Expected shape: the FD curve grows
// ~p times faster than the AD curve because every FD gradient costs
// O(p) expectation evaluations while the adjoint costs O(1).

#include <cstdio>
#include <vector>

#include "anglefind/bfgs.hpp"
#include "anglefind/qaoa_objective.hpp"
#include "bench_util.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"

int main(int argc, char** argv) {
  using namespace fastqaoa;
  namespace bu = benchutil;

  const bool full = bu::has_flag(argc, argv, "--full");
  const int n = static_cast<int>(bu::int_option(argc, argv, "--n",
                                                full ? 14 : 10));
  const int instances = static_cast<int>(
      bu::int_option(argc, argv, "--instances", full ? 100 : 20));
  const int p_max = static_cast<int>(bu::int_option(argc, argv, "--pmax",
                                                    full ? 10 : 6));
  bu::banner("Figure 5", "BFGS local-minimum search: AD vs finite-difference "
                         "gradients", full);
  std::printf("%d MaxCut instances, n=%d, p=1..%d\n\n", instances, n, p_max);

  XMixer mixer = XMixer::transverse_field(n);

  bu::JsonReport report(argc, argv, "fig5_ad_vs_fd");
  report.meta("n", static_cast<long long>(n));
  report.meta("instances", static_cast<long long>(instances));
  report.meta("p_max", static_cast<long long>(p_max));
  report.meta("full", static_cast<long long>(full ? 1 : 0));

  std::printf("%4s | %12s %12s %8s | %12s %12s\n", "p", "AD [s]", "FD [s]",
              "FD/AD", "AD evals", "FD evals");
  for (int p = 1; p <= p_max; ++p) {
    double t_ad = 0.0;
    double t_fd = 0.0;
    std::size_t evals_ad = 0;
    std::size_t evals_fd = 0;
    Rng rng(static_cast<std::uint64_t>(500 + p));

    for (int inst = 0; inst < instances; ++inst) {
      Graph g = erdos_renyi(n, 0.5, rng);
      dvec table = tabulate(StateSpace::full(n),
                            [&g](state_t x) { return maxcut(g, x); });
      std::vector<double> x0(static_cast<std::size_t>(2 * p));
      for (auto& a : x0) a = rng.uniform(0.0, 2.0 * kPi);

      {
        Qaoa engine(mixer, table, p);
        QaoaObjective obj(engine, Direction::Maximize,
                          GradientProvider::Adjoint);
        WallTimer timer;
        bfgs_minimize(obj.as_grad_objective(), x0);
        t_ad += timer.seconds();
        evals_ad += obj.evaluations();
      }
      {
        Qaoa engine(mixer, table, p);
        QaoaObjective obj(engine, Direction::Maximize,
                          GradientProvider::CentralDiff);
        WallTimer timer;
        bfgs_minimize(obj.as_grad_objective(), x0);
        t_fd += timer.seconds();
        evals_fd += obj.evaluations();
      }
    }
    std::printf("%4d | %12.4f %12.4f %8.2f | %12zu %12zu\n", p,
                t_ad / instances, t_fd / instances, t_fd / t_ad,
                evals_ad / static_cast<std::size_t>(instances),
                evals_fd / static_cast<std::size_t>(instances));
    report.row();
    report.field("p", static_cast<long long>(p));
    report.field("ad_seconds", t_ad / instances);
    report.field("fd_seconds", t_fd / instances);
    report.field("ad_evals", static_cast<long long>(evals_ad));
    report.field("fd_evals", static_cast<long long>(evals_fd));
  }
  report.attach_metrics();
  report.write();

  std::printf("\npaper reference: the FD/AD time ratio grows roughly "
              "linearly in p (AD computes the whole 2p-angle gradient at "
              "O(1) extra evaluations after a caching pass; FD needs O(p) "
              "evaluations per gradient).\n");
  return 0;
}
