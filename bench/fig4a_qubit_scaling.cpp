// Figure 4a reproduction: CPU time and memory vs qubit count for a p=1
// MaxCut QAOA evaluation, comparing three packages on identical hardware:
//
//   fastqaoa       — this library (JuliQAOA's role): precomputed objective
//                    table + diagonal-frame mixer, reusable buffers.
//   circuit-light  — QAOA.jl/Yao stand-in: gate list rebuilt per call,
//                    specialized RX/RZZ kernels, per-term measurement.
//   circuit-heavy  — QAOAKit/Qiskit stand-in: dense generic gate matrices
//                    rebuilt per call, fresh statevector allocation,
//                    generic dispatch.
//
// Also prints the paper's §4 headline row: the n=6 speedup factors
// ("faster than QAOAKit by a factor of over 2000, faster than QAOA.jl by a
// factor of over 70" on the authors' M2 Max; our stand-ins reproduce the
// ordering and the growth of the gap, not the exact constants).

#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/packages.hpp"
#include "bench_util.hpp"
#include "common/alloc.hpp"

int main(int argc, char** argv) {
  using namespace fastqaoa;
  namespace bu = benchutil;

  const bool full = bu::has_flag(argc, argv, "--full");
  const int n_min = 4;
  const int n_max = static_cast<int>(bu::int_option(argc, argv, "--nmax",
                                                    full ? 18 : 14));
  bu::banner("Figure 4a", "time & memory vs qubits, p=1 MaxCut", full);

  bu::JsonReport report(argc, argv, "fig4a_qubit_scaling");
  report.meta("n_min", static_cast<long long>(n_min));
  report.meta("n_max", static_cast<long long>(n_max));
  report.meta("full", static_cast<long long>(full ? 1 : 0));

  std::vector<double> betas = {0.4};
  std::vector<double> gammas = {0.9};

  std::printf("%4s | %14s %14s %14s | %12s %12s %12s | %9s %9s\n", "n",
              "fastqaoa [s]", "light [s]", "heavy [s]", "fast [B]",
              "light [B]", "heavy [B]", "heavy/fq", "light/fq");
  double n6_heavy_ratio = 0.0;
  double n6_light_ratio = 0.0;

  for (int n = n_min; n <= n_max; n += 2) {
    Rng rng(static_cast<std::uint64_t>(n));
    Graph g = erdos_renyi(n, 0.5, rng);

    auto fast = baselines::make_fastqaoa_package(g, 1);
    auto light = baselines::make_circuit_light_package(g);
    auto heavy = baselines::make_circuit_heavy_package(g);

    const int reps = n <= 10 ? 50 : (n <= 14 ? 9 : 3);
    const double t_fast =
        bu::time_median([&] { fast->evaluate(betas, gammas); }, reps);
    const double t_light =
        bu::time_median([&] { light->evaluate(betas, gammas); }, reps);
    const double t_heavy =
        bu::time_median([&] { heavy->evaluate(betas, gammas); }, reps);

    std::printf("%4d | %14.3e %14.3e %14.3e | %12zu %12zu %12zu | %9.1f "
                "%9.1f\n",
                n, t_fast, t_light, t_heavy, fast->resident_bytes(),
                light->resident_bytes(), heavy->resident_bytes(),
                t_heavy / t_fast, t_light / t_fast);
    report.row();
    report.field("n", static_cast<long long>(n));
    report.field("fastqaoa_seconds", t_fast);
    report.field("light_seconds", t_light);
    report.field("heavy_seconds", t_heavy);
    report.field("fastqaoa_bytes",
                 static_cast<long long>(fast->resident_bytes()));
    report.field("light_bytes",
                 static_cast<long long>(light->resident_bytes()));
    report.field("heavy_bytes",
                 static_cast<long long>(heavy->resident_bytes()));
    if (n == 6) {
      n6_heavy_ratio = t_heavy / t_fast;
      n6_light_ratio = t_light / t_fast;
    }
  }

  std::printf("\n§4 headline (n=6, p=1 MaxCut): circuit-heavy/fastqaoa = "
              "%.0fx, circuit-light/fastqaoa = %.0fx\n",
              n6_heavy_ratio, n6_light_ratio);
  report.meta("n6_heavy_ratio", n6_heavy_ratio);
  report.meta("n6_light_ratio", n6_light_ratio);
  report.attach_metrics();
  report.write();
  std::printf("paper reference: JuliQAOA 2000x faster than QAOAKit and 70x "
              "faster than QAOA.jl at n=6 (different comparator "
              "implementations; ordering and growth with n are the "
              "reproducible shape).\n");
  return 0;
}
