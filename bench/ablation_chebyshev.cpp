// Ablation: dense eigendecomposition vs matrix-free Chebyshev mixing for
// constrained (Clique-mixer) problems — the extension that removes the
// paper's stated limiting factor ("memory requirements in finding the
// eigendecomposition of the Clique mixer matrix", §2.2).
//
// For each Dicke space we report: setup time, per-application time at a
// representative beta, long-lived memory, and the agreement between the
// two propagators. Dense storage grows O(dim^2); the Chebyshev path keeps
// only per-edge index tables, O(|E| * dim).

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/alloc.hpp"
#include "linalg/vector_ops.hpp"
#include "mixers/chebyshev_mixer.hpp"
#include "mixers/eigen_mixer.hpp"
#include "problems/state_space.hpp"


int main(int argc, char** argv) {
  using namespace fastqaoa;
  namespace bu = benchutil;

  const bool full = bu::has_flag(argc, argv, "--full");
  bu::banner("Ablation",
             "dense eigendecomposition vs matrix-free Chebyshev mixing",
             full);
  const double beta = 0.5;
  std::printf("Clique mixer on Dicke(n, n/2), beta = %.2f\n\n", beta);
  std::printf("%10s %6s | %12s %12s | %12s %12s | %12s %12s | %10s %6s\n",
              "space", "dim", "eig setup", "cheb setup", "eig apply",
              "cheb apply", "eig bytes", "cheb bytes", "|diff|", "K");

  // The dense eigendecomposition is the object under study and is O(dim^3):
  // Dicke(14,7) already takes ~9 minutes of setup on one core, so the
  // reduced sweep stops at n=12 and the paper-scale pain is left to --full.
  const int n_max = full ? 14 : 12;
  for (int n = 8; n <= n_max; n += 2) {
    const int k = n / 2;
    StateSpace space = StateSpace::dicke(n, k);

    MemoryTracker::reset_peak();
    const std::size_t base = MemoryTracker::current_bytes();
    WallTimer setup_eig;
    EigenMixer exact = EigenMixer::clique(space);
    const double t_setup_eig = setup_eig.seconds();
    const std::size_t eig_bytes = MemoryTracker::current_bytes() - base;

    const std::size_t base2 = MemoryTracker::current_bytes();
    WallTimer setup_cheb;
    ChebyshevMixer cheb = ChebyshevMixer::clique(space, 1e-10);
    const double t_setup_cheb = setup_cheb.seconds();
    // Index tables live outside the tracked allocator (std::vector<index_t>
    // with the default allocator); account analytically.
    const std::size_t cheb_bytes =
        (MemoryTracker::current_bytes() - base2) +
        static_cast<std::size_t>(n * (n - 1) / 2) * space.dim() *
            sizeof(index_t);

    Rng rng(static_cast<std::uint64_t>(n));
    cvec reference(space.dim());
    double norm_sq = 0.0;
    for (auto& a : reference) {
      a = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
      norm_sq += std::norm(a);
    }
    for (auto& a : reference) a /= std::sqrt(norm_sq);

    cvec scratch;
    const double t_eig = bu::time_median([&] {
      cvec psi = reference;
      exact.apply_exp(psi, beta, scratch);
    }, 3);
    const double t_cheb = bu::time_median([&] {
      cvec psi = reference;
      cheb.apply_exp(psi, beta, scratch);
    }, 3);

    cvec a = reference;
    cvec b = reference;
    exact.apply_exp(a, beta, scratch);
    cheb.apply_exp(b, beta, scratch);

    std::printf("Dicke(%2d,%d) %6zu | %10.3fs %10.3fs | %10.2e %10.2e | "
                "%12zu %12zu | %10.1e %6d\n",
                n, k, space.dim(), t_setup_eig, t_setup_cheb, t_eig, t_cheb,
                eig_bytes, cheb_bytes, linalg::max_abs_diff(a, b),
                cheb.last_degree());
  }

  std::printf("\nshape: dense setup grows ~dim^3 and storage ~dim^2; the "
              "Chebyshev path has trivial setup, O(|E| dim) storage, and a "
              "per-application cost ~K sparse sweeps with K ~ beta * "
              "spectral-radius — it extends constrained mixing past the "
              "memory wall the paper reports at n=18.\n");
  return 0;
}
