// Constrained portfolio optimization: choose exactly k of n assets
// maximizing expected return minus risk (mean-variance objective). The
// fixed budget makes the feasible set the Dicke subspace — no penalty
// terms, the Clique mixer simply never leaves it (paper §4's constrained-
// optimization strength, on a finance-flavored workload).
//
// Run: ./portfolio [n] [k] [risk_aversion]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "anglefind/strategies.hpp"
#include "mixers/eigen_mixer.hpp"
#include "problems/cost_functions.hpp"
#include "sampling/sampler.hpp"

int main(int argc, char** argv) {
  using namespace fastqaoa;

  const int n = argc > 1 ? std::atoi(argv[1]) : 10;
  const int k = argc > 2 ? std::atoi(argv[2]) : 4;
  const double risk_aversion = argc > 3 ? std::atof(argv[3]) : 0.5;

  // Synthetic market: a two-factor covariance model plus idiosyncratic
  // noise, expected returns loosely tied to factor exposure.
  Rng rng(2026);
  std::vector<double> mu(static_cast<std::size_t>(n));
  linalg::dmat loadings(static_cast<index_t>(n), 2);
  for (int i = 0; i < n; ++i) {
    loadings(static_cast<index_t>(i), 0) = rng.uniform(-1.0, 1.0);
    loadings(static_cast<index_t>(i), 1) = rng.uniform(-0.5, 0.5);
    mu[static_cast<std::size_t>(i)] =
        0.3 + 0.4 * loadings(static_cast<index_t>(i), 0) +
        rng.uniform(-0.1, 0.1);
  }
  linalg::dmat sigma = linalg::matmul(loadings, linalg::transpose(loadings));
  for (int i = 0; i < n; ++i) {
    sigma(static_cast<index_t>(i), static_cast<index_t>(i)) +=
        rng.uniform(0.05, 0.25);  // idiosyncratic variance
  }

  StateSpace space = StateSpace::dicke(n, k);
  dvec obj_vals = tabulate(space, [&](state_t x) {
    return portfolio_value(mu, sigma, risk_aversion, x);
  });
  const ObjectiveStats stats = objective_stats(obj_vals);
  std::printf("portfolio: choose %d of %d assets, lambda = %.2f\n", k, n,
              risk_aversion);
  std::printf("feasible portfolios: %zu; best value %.4f, worst %.4f\n\n",
              space.dim(), stats.max_value, stats.min_value);

  EigenMixer mixer = EigenMixer::clique(space);
  FindAnglesOptions opt;
  opt.hopping.hops = 8;
  opt.seed = 17;
  auto schedules = find_angles(mixer, obj_vals, 4, opt);
  std::printf("%4s %12s %8s\n", "p", "<C>", "ratio");
  for (const AngleSchedule& s : schedules) {
    std::printf("%4d %12.5f %8.4f\n", s.p, s.expectation,
                approximation_ratio(s.expectation, obj_vals));
  }

  // Measure the final state: the most likely portfolios.
  Qaoa engine(mixer, obj_vals, schedules.back().p);
  engine.run_packed(schedules.back().packed());
  MeasurementSampler sampler(engine.state());
  Rng shots(99);
  auto counts = sampler.sample_counts(20000, shots);
  std::printf("\ntop sampled portfolios (20000 shots):\n");
  for (int rank = 0; rank < 3; ++rank) {
    index_t best_idx = 0;
    for (index_t i = 1; i < counts.size(); ++i) {
      if (counts[i] > counts[best_idx]) best_idx = i;
    }
    const state_t portfolio = space.state(best_idx);
    std::printf("  assets {");
    bool first = true;
    for (int i = 0; i < n; ++i) {
      if ((portfolio >> i) & 1) {
        std::printf("%s%d", first ? "" : ",", i);
        first = false;
      }
    }
    std::printf("}  value %.4f  freq %.3f\n", obj_vals[best_idx],
                counts[best_idx] / 20000.0);
    counts[best_idx] = 0;
  }
  return 0;
}
