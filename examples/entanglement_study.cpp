// State analysis during QAOA: track half-chain entanglement entropy and
// participation ratio along the optimized angle schedules — the kind of
// dynamics study an exact-statevector simulator makes cheap.
//
// Run: ./entanglement_study [n] [max_p]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "analysis/entanglement.hpp"
#include "anglefind/strategies.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"

int main(int argc, char** argv) {
  using namespace fastqaoa;

  const int n = argc > 1 ? std::atoi(argv[1]) : 10;
  const int max_p = argc > 2 ? std::atoi(argv[2]) : 5;

  Rng rng(77);
  Graph graph = erdos_renyi(n, 0.5, rng);
  dvec obj_vals = tabulate(StateSpace::full(n), [&graph](state_t x) {
    return maxcut(graph, x);
  });
  XMixer mixer = XMixer::transverse_field(n);

  FindAnglesOptions opt;
  opt.hopping.hops = 6;
  opt.seed = 3;
  auto schedules = find_angles(mixer, obj_vals, max_p, opt);

  std::vector<int> half;
  for (int q = 0; q < n / 2; ++q) half.push_back(q);

  std::printf("MaxCut on G(%d, 0.5): entanglement along optimized QAOA\n\n",
              n);
  std::printf("%4s %10s %16s %18s %14s\n", "p", "ratio", "S(half) [nats]",
              "S / S_max", "particip.");
  const double s_max = (n / 2) * std::log(2.0);
  for (const AngleSchedule& s : schedules) {
    Qaoa engine(mixer, obj_vals, s.p);
    engine.run_packed(s.packed());
    const double entropy = entanglement_entropy(engine.state(), n, half);
    std::printf("%4d %10.4f %16.4f %18.4f %14.1f\n", s.p,
                approximation_ratio(s.expectation, obj_vals), entropy,
                entropy / s_max, participation_ratio(engine.state()));
  }
  std::printf("\n(the uniform start has S = 0; optimized schedules build "
              "entanglement as they concentrate on good cuts, then the "
              "participation ratio drops as mass localizes)\n");
  return 0;
}
