// Non-traditional QAOA variants (paper §3): per-round mixer schedules,
// multi-angle layers, warm starts and threshold phase separators — all on
// one small MaxCut instance, each compared against the vanilla ansatz.
//
// Run: ./multi_angle [n]

#include <cstdio>
#include <cstdlib>

#include "core/qaoa.hpp"
#include "mixers/grover_mixer.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"

int main(int argc, char** argv) {
  using namespace fastqaoa;

  const int n = argc > 1 ? std::atoi(argv[1]) : 8;
  Rng rng(21);
  Graph graph = erdos_renyi(n, 0.5, rng);
  dvec obj_vals = tabulate(StateSpace::full(n), [&graph](state_t x) {
    return maxcut(graph, x);
  });
  const ObjectiveStats stats = objective_stats(obj_vals);
  std::printf("MaxCut on G(%d, 0.5), best cut %.0f\n\n", n, stats.max_value);

  XMixer tf = XMixer::transverse_field(n);
  GroverMixer grover(index_t{1} << n);

  const double beta1 = 0.35;
  const double beta2 = 0.85;
  const double gamma1 = 0.55;
  const double gamma2 = 1.15;

  // 1. Vanilla two-round transverse-field QAOA.
  {
    Qaoa engine(tf, obj_vals, 2);
    std::vector<double> betas = {beta1, beta2};
    std::vector<double> gammas = {gamma1, gamma2};
    std::printf("vanilla TF x2        : <C> = %.5f\n",
                engine.run(betas, gammas));
  }

  // 2. Per-round mixer schedule: transverse field, then Grover.
  {
    Qaoa engine({&tf, &grover}, obj_vals);
    std::vector<double> betas = {beta1, beta2};
    std::vector<double> gammas = {gamma1, gamma2};
    std::printf("TF then Grover       : <C> = %.5f\n",
                engine.run(betas, gammas));
  }

  // 3. Multi-angle layer: two half-register X mixers, each with its own
  //    beta, inside every round.
  {
    std::vector<PauliXTerm> low;
    std::vector<PauliXTerm> high;
    for (int q = 0; q < n; ++q) {
      (q < n / 2 ? low : high).push_back({state_t{1} << q, 1.0});
    }
    XMixer x_low(n, low);
    XMixer x_high(n, high);
    std::vector<MixerLayer> layers = {MixerLayer{{&x_low, &x_high}},
                                      MixerLayer{{&x_low, &x_high}}};
    Qaoa engine(layers, obj_vals);
    std::vector<double> betas = {beta1, beta2, beta2, beta1};
    std::vector<double> gammas = {gamma1, gamma2};
    std::printf("multi-angle split X  : <C> = %.5f  (%d betas, %d gammas)\n",
                engine.run(betas, gammas), engine.num_betas(),
                engine.num_gammas());
  }

  // 4. Warm start: bias the initial state toward one optimal solution.
  {
    Qaoa engine(tf, obj_vals, 2);
    cvec warm(obj_vals.size(), cplx{0.0, 0.0});
    // 80% mass on the best state, the rest spread uniformly.
    const double rest = std::sqrt(0.2 / static_cast<double>(warm.size() - 1));
    for (auto& a : warm) a = cplx{rest, 0.0};
    warm[stats.argmax] = cplx{std::sqrt(0.8), 0.0};
    engine.set_initial_state(warm);
    std::vector<double> betas = {beta1, beta2};
    std::vector<double> gammas = {gamma1, gamma2};
    std::printf("warm start (80%% best): <C> = %.5f\n",
                engine.run(betas, gammas));
  }

  // 5. Threshold phase separator: phase only states above the median cut.
  {
    Qaoa engine(tf, obj_vals, 2);
    engine.set_phase_values(threshold_indicator(obj_vals, stats.mean));
    std::vector<double> betas = {beta1, beta2};
    std::vector<double> gammas = {kPi, kPi};
    std::printf("threshold separator  : <C> = %.5f\n",
                engine.run(betas, gammas));
  }
  return 0;
}
