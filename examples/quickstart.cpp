// Quickstart — the paper's Listing 1 translated to the C++ API.
//
// Evaluate a three-round MaxCut QAOA on a random n=6 Erdős–Rényi graph with
// the transverse-field mixer:
//   1. generate the problem instance,
//   2. pre-compute the objective values across all basis states,
//   3. build the mixer (its diagonal frame is precomputed internally),
//   4. simulate at random angles and read out the results.
//
// Run: ./quickstart [seed]

#include <cstdio>
#include <cstdlib>

#include "core/qaoa.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"

int main(int argc, char** argv) {
  using namespace fastqaoa;

  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  Rng rng(seed);

  // Define the graph.
  const int n = 6;
  Graph graph = erdos_renyi(n, 0.5, rng);
  std::printf("MaxCut on G(%d, 0.5): %d edges\n", n, graph.num_edges());

  // Calculate objective values across basis states.
  StateSpace space = StateSpace::full(n);
  dvec obj_vals =
      tabulate(space, [&graph](state_t x) { return maxcut(graph, x); });

  // Generate the transverse-field mixer sum_i X_i (mixer_X([1], n) in the
  // paper's notation).
  XMixer mixer = XMixer::from_orders(n, {1});

  // Three rounds at random angles; angles[0..p) = betas, angles[p..2p) =
  // gammas.
  const int p = 3;
  std::vector<double> angles(2 * p);
  for (double& a : angles) a = rng.uniform(0.0, 2.0 * kPi);

  SimResult res = simulate(angles, mixer, obj_vals);

  const ObjectiveStats stats = objective_stats(obj_vals);
  std::printf("best cut            : %.0f\n", stats.max_value);
  std::printf("<C> at random angles: %.6f\n", res.exp_value);
  std::printf("approximation ratio : %.4f\n",
              approximation_ratio(res.exp_value, obj_vals));
  std::printf("P(optimal state)    : %.6f\n", res.ground_state_prob);

  // Amplitudes are available per feasible state.
  std::printf("first four amplitudes:");
  for (int i = 0; i < 4; ++i) {
    std::printf("  (%.4f%+.4fi)", res.statevector[static_cast<index_t>(i)].real(),
                res.statevector[static_cast<index_t>(i)].imag());
  }
  std::printf("\n");
  return 0;
}
