// Angle finding — the paper's Listing 3 workflows.
//
// Demonstrates both outer loops on one MaxCut instance:
//  * find_angles(): iterative extrapolation + basinhopping with a
//    checkpoint file (interrupt the program and re-run it — completed
//    rounds are loaded and the search resumes where it left off);
//  * find_angles_random(): the user-defined random-restart local-minima
//    search from the paper's Listing 3 (the [22] baseline).
//
// Run: ./angle_finding [n] [max_p] [checkpoint-path]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "anglefind/strategies.hpp"
#include "common/timer.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"

int main(int argc, char** argv) {
  using namespace fastqaoa;

  const int n = argc > 1 ? std::atoi(argv[1]) : 10;
  const int max_p = argc > 2 ? std::atoi(argv[2]) : 5;
  const std::string checkpoint = argc > 3 ? argv[3] : "";

  Rng rng(13);
  Graph graph = erdos_renyi(n, 0.5, rng);
  dvec obj_vals = tabulate(StateSpace::full(n), [&graph](state_t x) {
    return maxcut(graph, x);
  });
  XMixer mixer = XMixer::transverse_field(n);

  FindAnglesOptions opt;
  opt.hopping.hops = 8;
  opt.checkpoint_file = checkpoint;
  opt.seed = 101;

  std::printf("== iterative extrapolation + basinhopping ==\n");
  WallTimer timer;
  auto schedules = find_angles(mixer, obj_vals, max_p, opt);
  std::printf("finished in %.2f s%s\n", timer.seconds(),
              checkpoint.empty() ? ""
                                 : (" (checkpoint: " + checkpoint + ")").c_str());
  std::printf("%4s %12s %8s\n", "p", "<C>", "ratio");
  for (const AngleSchedule& s : schedules) {
    std::printf("%4d %12.6f %8.4f\n", s.p, s.expectation,
                approximation_ratio(s.expectation, obj_vals));
  }

  std::printf("\n== random local-minima search (100 restarts, p=%d) ==\n",
              max_p);
  timer.reset();
  AngleSchedule random_best =
      find_angles_random(mixer, obj_vals, max_p, 100, opt);
  std::printf("finished in %.2f s\n", timer.seconds());
  std::printf("%4d %12.6f %8.4f\n", random_best.p, random_best.expectation,
              approximation_ratio(random_best.expectation, obj_vals));

  std::printf("\nbest iterative angles at p=%d:\n  betas :", max_p);
  for (const double b : schedules.back().betas) std::printf(" %8.4f", b);
  std::printf("\n  gammas:");
  for (const double g : schedules.back().gammas) std::printf(" %8.4f", g);
  std::printf("\n");
  return 0;
}
