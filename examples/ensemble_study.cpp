// Ensemble studies with the study module: mean/σ approximation ratios per
// round over a reproducible set of random instances, plus the median-angle
// transferability experiment — the Fig. 2/3 workflow as a ten-line program.
//
// Run: ./ensemble_study [n] [instances] [max_p]

#include <cstdio>
#include <cstdlib>

#include "common/timer.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"
#include "study/ensemble.hpp"

int main(int argc, char** argv) {
  using namespace fastqaoa;

  const int n = argc > 1 ? std::atoi(argv[1]) : 8;
  const int instances = argc > 2 ? std::atoi(argv[2]) : 6;
  const int max_p = argc > 3 ? std::atoi(argv[3]) : 4;

  XMixer mixer = XMixer::transverse_field(n);
  InstanceFactory factory = [n](Rng& rng) {
    Graph g = erdos_renyi(n, 0.5, rng);
    return tabulate(StateSpace::full(n),
                    [&g](state_t x) { return maxcut(g, x); });
  };

  EnsembleConfig config;
  config.instances = instances;
  config.max_rounds = max_p;
  config.seed = 2024;
  config.angle_options.hopping.hops = 6;

  std::printf("MaxCut ensemble: %d instances of G(%d, 0.5), p=1..%d\n\n",
              instances, n, max_p);
  WallTimer timer;
  EnsembleResult result = run_ensemble(mixer, factory, config);
  std::printf("%4s %10s %10s %10s %10s\n", "p", "mean", "stddev", "min",
              "max");
  for (int p = 1; p <= max_p; ++p) {
    const SampleStats& s = result.per_round[static_cast<std::size_t>(p - 1)];
    std::printf("%4d %10.4f %10.4f %10.4f %10.4f\n", p, s.mean, s.stddev,
                s.min, s.max);
  }
  std::printf("(%.1f s)\n\n", timer.seconds());

  std::printf("median-angle transfer at p=2 (train on %d instances):\n",
              instances);
  MedianTransferResult transfer =
      median_angle_transfer(mixer, factory, 2, 20, config);
  std::printf("  per-instance optimized ratio : %.4f ± %.4f\n",
              transfer.donor_ratios.mean, transfer.donor_ratios.stddev);
  std::printf("  transferred median angles    : %.4f ± %.4f\n",
              transfer.transfer_ratios.mean, transfer.transfer_ratios.stddev);
  return 0;
}
