// User-defined cost functions (paper §4: "only requiring a list of C(x)
// evaluated across all feasible states allows total freedom in the choice
// of cost function").
//
// Here: number partitioning — split a multiset of integers into two groups
// minimizing the difference of their sums. No Hamiltonian encoding, no
// penalty terms; just a plain C++ lambda tabulated over basis states, then
// minimized (note Direction::Minimize — the paper's "overall minus sign"
// is handled by the options).
//
// Run: ./custom_problem

#include <cmath>
#include <cstdio>
#include <vector>

#include "anglefind/strategies.hpp"
#include "bits/bitops.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"

int main() {
  using namespace fastqaoa;

  // The multiset to partition.
  const std::vector<double> numbers = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3};
  const int n = static_cast<int>(numbers.size());
  double total = 0.0;
  for (const double v : numbers) total += v;

  // C(x) = |sum(selected) - sum(rest)| — any callable (state -> scalar)
  // works; nothing quantum about it.
  auto partition_cost = [&numbers, total](state_t x) {
    double selected = 0.0;
    for (int i = 0; i < static_cast<int>(numbers.size()); ++i) {
      if (bit(x, i)) selected += numbers[static_cast<std::size_t>(i)];
    }
    return std::abs(2.0 * selected - total);
  };

  StateSpace space = StateSpace::full(n);
  dvec obj_vals = tabulate(space, partition_cost);
  const ObjectiveStats stats = objective_stats(obj_vals);
  std::printf("number partitioning over %d items (sum %.0f)\n", n, total);
  std::printf("best achievable imbalance: %.0f (x%zu states)\n",
              stats.min_value, stats.count_min);

  XMixer mixer = XMixer::transverse_field(n);
  FindAnglesOptions opt;
  opt.direction = Direction::Minimize;
  opt.hopping.hops = 6;
  opt.seed = 5;

  auto schedules = find_angles(mixer, obj_vals, 4, opt);
  std::printf("%4s %14s %10s\n", "p", "<C> (minimize)", "ratio");
  for (const AngleSchedule& s : schedules) {
    std::printf("%4d %14.5f %10.4f\n", s.p, s.expectation,
                approximation_ratio(s.expectation, obj_vals,
                                    Direction::Minimize));
  }

  // Probability of landing on a perfect partition after the deepest run.
  Qaoa engine(mixer, obj_vals, schedules.back().p);
  engine.run_packed(schedules.back().packed());
  std::printf("P(optimal partition) at p=%d: %.4f (uniform baseline %.4f)\n",
              schedules.back().p,
              engine.ground_state_probability(Direction::Minimize),
              static_cast<double>(stats.count_min) /
                  static_cast<double>(space.dim()));
  return 0;
}
