// Grover search as a QAOA (paper §2.4) at scales far beyond statevector
// simulation.
//
// The Grover mixer with a threshold phase separator at angles (pi, pi)
// reproduces one Grover iteration. Because the mixer gives fair sampling,
// the whole evolution lives on (distinct value, degeneracy) classes — two
// classes here — so n = 100 qubits (2^100 states) runs comfortably: each
// round costs O(#classes) = O(1). The printed success probabilities follow
// sin^2((2p+1) asin(sqrt(M/N))) exactly.
//
// Run: ./grover_search [n] [marked]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/timer.hpp"
#include "core/grover_fast.hpp"

int main(int argc, char** argv) {
  using namespace fastqaoa;

  const int n = argc > 1 ? std::atoi(argv[1]) : 100;
  const double marked = argc > 2 ? std::atof(argv[2]) : 1.0;
  const double num_states = std::pow(2.0, n);
  const double theta = std::asin(std::sqrt(marked / num_states));
  const double optimal_p = std::floor(kPi / (4.0 * theta) - 0.5);

  std::printf("Grover-as-QAOA: n=%d qubits, N=2^%d states, M=%.0f marked\n",
              n, n, marked);
  std::printf("optimal round count p* = %.3e (~(pi/4) sqrt(N/M))\n\n",
              optimal_p);
  std::printf("%12s %20s %20s %10s\n", "p", "P(success) simulated",
              "sin^2((2p+1)theta)", "time");

  // Logarithmic sweep of simulated round counts (each round is O(1) on the
  // two-class compressed state; we cap the simulated depth at 2^20 rounds
  // and report the analytic optimum beyond that).
  const long long cap = 1LL << 20;
  for (long long p = 1; p <= cap && p <= static_cast<long long>(optimal_p);
       p *= 4) {
    GroverQaoa qaoa = grover_search_qaoa(num_states, marked);
    std::vector<double> betas(static_cast<std::size_t>(p), kPi);
    std::vector<double> gammas(static_cast<std::size_t>(p), kPi);
    WallTimer timer;
    qaoa.run(betas, gammas);
    const double seconds = timer.seconds();
    const double analytic = std::pow(std::sin((2.0 * p + 1.0) * theta), 2);
    std::printf("%12lld %20.6e %20.6e %9.4fs\n", p,
                qaoa.ground_state_probability(), analytic, seconds);
  }

  if (optimal_p > static_cast<double>(cap)) {
    std::printf("%12.3e %20s %20.6e   (analytic; beyond simulated depth "
                "cap)\n",
                optimal_p, "-",
                std::pow(std::sin((2.0 * optimal_p + 1.0) * theta), 2));
  }
  return 0;
}
