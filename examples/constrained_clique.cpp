// Constrained optimization — the paper's Listing 2 workflow.
//
// Densest k-Subgraph with the Clique mixer on the Hamming-weight-k Dicke
// subspace. The expensive Clique-mixer eigendecomposition is cached to disk:
// if the file exists it is loaded, otherwise it is computed and stored for
// future re-use. The simulation itself never touches infeasible states.
//
// Run: ./constrained_clique [n] [k] [mixer-cache-path]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "anglefind/strategies.hpp"
#include "common/timer.hpp"
#include "core/qaoa.hpp"
#include "io/serialize.hpp"
#include "mixers/eigen_mixer.hpp"
#include "problems/cost_functions.hpp"

int main(int argc, char** argv) {
  using namespace fastqaoa;

  const int n = argc > 1 ? std::atoi(argv[1]) : 10;
  const int k = argc > 2 ? std::atoi(argv[2]) : n / 2;
  const std::string cache =
      argc > 3 ? argv[3] : "clique_mixer_n" + std::to_string(n) + "_k" +
                               std::to_string(k) + ".mix";

  Rng rng(7);
  Graph graph = erdos_renyi(n, 0.5, rng);

  // Feasible set: all C(n, k) states of Hamming weight k.
  StateSpace space = StateSpace::dicke(n, k);
  std::printf("Densest %d-Subgraph on G(%d, 0.5): feasible subspace dim %zu "
              "(vs 2^%d = %zu full)\n",
              k, n, space.dim(), n, std::size_t{1} << n);

  // Cost evaluated only on the feasible subspace.
  dvec obj_vals = tabulate(
      space, [&graph](state_t x) { return densest_subgraph(graph, x); });

  // Clique mixer: load the cached eigendecomposition if present, else
  // compute (O(dim^3)) and store it.
  WallTimer timer;
  EigenMixer mixer = io::load_or_build_mixer(
      cache, [&space] { return EigenMixer::clique(space); });
  std::printf("mixer ready in %.3f s (cache file: %s)\n", timer.seconds(),
              cache.c_str());

  // A short iterative angle-finding run.
  FindAnglesOptions opt;
  opt.hopping.hops = 6;
  opt.seed = 11;
  auto schedules = find_angles(mixer, obj_vals, 3, opt);
  const ObjectiveStats stats = objective_stats(obj_vals);
  std::printf("densest %d-subgraph optimum: %.0f edges\n", k,
              stats.max_value);
  for (const AngleSchedule& s : schedules) {
    std::printf("p=%d  <C> = %.4f  ratio = %.4f\n", s.p, s.expectation,
                approximation_ratio(s.expectation, obj_vals));
  }
  return 0;
}
