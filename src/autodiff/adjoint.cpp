#include "autodiff/adjoint.hpp"

#include "common/error.hpp"
#include "linalg/vector_ops.hpp"

namespace fastqaoa {

AdjointDifferentiator::AdjointDifferentiator(Qaoa& qaoa) : qaoa_(&qaoa) {}

double AdjointDifferentiator::value_and_gradient(
    std::span<const double> betas, std::span<const double> gammas,
    std::span<double> grad_betas, std::span<double> grad_gammas) {
  FASTQAOA_CHECK(grad_betas.size() == betas.size(),
                 "value_and_gradient: grad_betas size mismatch");
  FASTQAOA_CHECK(grad_gammas.size() == gammas.size(),
                 "value_and_gradient: grad_gammas size mismatch");

  // Forward pass (the engine keeps the final state).
  const double value = qaoa_->run(betas, gammas);
  psi_ = qaoa_->state();

  // lambda = C |psi>, with C the *measured* objective.
  const dvec& obj = qaoa_->objective();
  lambda_.resize(psi_.size());
  for (index_t i = 0; i < psi_.size(); ++i) lambda_[i] = obj[i] * psi_[i];

  const dvec& phase = qaoa_->phase_values();
  const auto& layers = qaoa_->layers();

  // Reverse sweep: unapply each layer from both psi and lambda, harvesting
  // angle gradients along the way.
  std::size_t beta_index = betas.size();
  for (std::size_t k = layers.size(); k-- > 0;) {
    const MixerLayer& layer = layers[k];
    for (std::size_t j = layer.mixers.size(); j-- > 0;) {
      const Mixer& m = *layer.mixers[j];
      --beta_index;
      // dE/dbeta = 2 Im <lambda| H_M |psi> at the post-mixer-j state.
      m.apply_ham(psi_, hpsi_, scratch_);
      grad_betas[beta_index] = 2.0 * linalg::dot(lambda_, hpsi_).imag();
      // Unapply this mixer from both trajectories.
      m.apply_exp(psi_, -betas[beta_index], scratch_);
      m.apply_exp(lambda_, -betas[beta_index], scratch_);
    }
    // dE/dgamma = 2 Im <lambda| H_C |phi> at the post-phase state.
    grad_gammas[k] = 2.0 * linalg::diag_bracket_imag(lambda_, phase, psi_);
    linalg::apply_diag_phase(psi_, phase, -gammas[k]);
    linalg::apply_diag_phase(lambda_, phase, -gammas[k]);
  }
  FASTQAOA_ASSERT(beta_index == 0, "adjoint: beta bookkeeping error");
  return value;
}

double AdjointDifferentiator::value_and_gradient_packed(
    std::span<const double> angles, std::span<double> grad) {
  const int p = qaoa_->rounds();
  FASTQAOA_CHECK(qaoa_->num_betas() == p,
                 "value_and_gradient_packed: only for single-mixer rounds");
  FASTQAOA_CHECK(static_cast<int>(angles.size()) == 2 * p &&
                     grad.size() == angles.size(),
                 "value_and_gradient_packed: need 2p angles and gradients");
  const std::size_t sp = static_cast<std::size_t>(p);
  return value_and_gradient(angles.subspan(0, sp), angles.subspan(sp, sp),
                            grad.subspan(0, sp), grad.subspan(sp, sp));
}

}  // namespace fastqaoa
