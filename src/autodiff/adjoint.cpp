#include "autodiff/adjoint.hpp"

#include "common/error.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/trace.hpp"

namespace fastqaoa {

double adjoint_value_and_gradient(const QaoaPlan& plan, EvalWorkspace& ws,
                                  std::span<const double> betas,
                                  std::span<const double> gammas,
                                  std::span<double> grad_betas,
                                  std::span<double> grad_gammas) {
  FASTQAOA_CHECK(grad_betas.size() == betas.size(),
                 "value_and_gradient: grad_betas size mismatch");
  FASTQAOA_CHECK(grad_gammas.size() == gammas.size(),
                 "value_and_gradient: grad_gammas size mismatch");
  FASTQAOA_OBS_SCOPE(ws.metrics);
  FASTQAOA_OBS_COUNT("autodiff.adjoint.gradients", 1);
  FASTQAOA_OBS_TIMED("autodiff.adjoint");
  FASTQAOA_TRACE_SPAN("adjoint_gradient");

  // Forward pass (ws.psi keeps the final state; the reverse sweep unwinds a
  // copy so callers can still read the optimized state afterwards).
  const double value = evaluate(plan, ws, betas, gammas);
  ws.adjoint_psi = ws.psi;
  linalg::ShardedState& psi = ws.adjoint_psi;

  // lambda = C |psi>, with C the *measured* objective.
  const dvec& obj = plan.objective();
  ws.lambda = psi;
  linalg::diag_mul(ws.lambda, obj, 1.0);

  const dvec& phase = plan.phase_values();
  const auto& layers = plan.layers();
  ws.hpsi.set_shard_request(ws.shards);
  ws.hpsi.resize(plan.dim());  // apply_ham outputs must be presized

  // Reverse sweep: unapply each layer from both psi and lambda, harvesting
  // angle gradients along the way.
  FASTQAOA_OBS_TIMED("autodiff.adjoint.reverse");
  std::size_t beta_index = betas.size();
  for (std::size_t k = layers.size(); k-- > 0;) {
    const MixerLayer& layer = layers[k];
    for (std::size_t j = layer.mixers.size(); j-- > 0;) {
      const Mixer& m = *layer.mixers[j];
      --beta_index;
      // dE/dbeta = 2 Im <lambda| H_M |psi> at the post-mixer-j state.
      m.apply_ham(psi, ws.hpsi, ws.scratch);
      grad_betas[beta_index] = 2.0 * linalg::dot(ws.lambda, ws.hpsi).imag();
      // Unapply this mixer from both trajectories.
      m.apply_exp(psi, -betas[beta_index], ws.scratch);
      m.apply_exp(ws.lambda, -betas[beta_index], ws.scratch);
    }
    // dE/dgamma = 2 Im <lambda| H_C |phi> at the post-phase state.
    grad_gammas[k] = 2.0 * linalg::diag_bracket_imag(ws.lambda, phase, psi);
    linalg::apply_diag_phase(psi, phase, -gammas[k]);
    linalg::apply_diag_phase(ws.lambda, phase, -gammas[k]);
  }
  FASTQAOA_ASSERT(beta_index == 0, "adjoint: beta bookkeeping error");
  return value;
}

double adjoint_value_and_gradient_packed(const QaoaPlan& plan,
                                         EvalWorkspace& ws,
                                         std::span<const double> angles,
                                         std::span<double> grad) {
  const int p = plan.rounds();
  FASTQAOA_CHECK(plan.num_betas() == p,
                 "value_and_gradient_packed: only for single-mixer rounds");
  FASTQAOA_CHECK(static_cast<int>(angles.size()) == 2 * p &&
                     grad.size() == angles.size(),
                 "value_and_gradient_packed: need 2p angles and gradients");
  const std::size_t sp = static_cast<std::size_t>(p);
  return adjoint_value_and_gradient(plan, ws, angles.subspan(0, sp),
                                    angles.subspan(sp, sp),
                                    grad.subspan(0, sp), grad.subspan(sp, sp));
}

AdjointDifferentiator::AdjointDifferentiator(Qaoa& qaoa)
    : plan_(&qaoa.plan()), ws_(&qaoa.workspace()) {}

AdjointDifferentiator::AdjointDifferentiator(const QaoaPlan& plan,
                                             EvalWorkspace& ws)
    : plan_(&plan), ws_(&ws) {}

double AdjointDifferentiator::value_and_gradient(
    std::span<const double> betas, std::span<const double> gammas,
    std::span<double> grad_betas, std::span<double> grad_gammas) {
  return adjoint_value_and_gradient(*plan_, *ws_, betas, gammas, grad_betas,
                                    grad_gammas);
}

double AdjointDifferentiator::value_and_gradient_packed(
    std::span<const double> angles, std::span<double> grad) {
  return adjoint_value_and_gradient_packed(*plan_, *ws_, angles, grad);
}

}  // namespace fastqaoa
