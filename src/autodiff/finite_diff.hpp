#pragma once
/// \file finite_diff.hpp
/// Finite-difference gradients of the QAOA expectation — the baseline the
/// paper's Fig. 5 compares AD against. Central differences need 2p
/// evaluations per gradient (plus one for the value); forward differences
/// need p+1. Both scale linearly in p, which is exactly the gap the
/// adjoint path closes.

#include <span>
#include <vector>

#include "core/plan.hpp"
#include "core/qaoa.hpp"

namespace fastqaoa {

/// Finite-difference scheme selector.
enum class FdScheme {
  Central,  ///< (E(x+h) - E(x-h)) / 2h — O(h^2) accurate, 2 evals per angle
  Forward,  ///< (E(x+h) - E(x)) / h   — O(h) accurate, 1 eval per angle
};

/// Finite-difference differentiator bound to a plan + workspace (or a Qaoa
/// engine's pair); mirrors AdjointDifferentiator's interface so optimizers
/// can swap gradient providers (Fig. 5 harness does exactly that). The
/// angle work vectors are per-instance, so use one differentiator per
/// thread (sharing the plan is fine).
class FiniteDiffDifferentiator {
 public:
  explicit FiniteDiffDifferentiator(Qaoa& qaoa,
                                    FdScheme scheme = FdScheme::Central,
                                    double step = 1e-6);
  FiniteDiffDifferentiator(const QaoaPlan& plan, EvalWorkspace& ws,
                           FdScheme scheme = FdScheme::Central,
                           double step = 1e-6);

  /// Evaluate E and the full 2p gradient by repeated expectation calls.
  double value_and_gradient(std::span<const double> betas,
                            std::span<const double> gammas,
                            std::span<double> grad_betas,
                            std::span<double> grad_gammas);

  /// Packed variant (angles = [betas..., gammas...]).
  double value_and_gradient_packed(std::span<const double> angles,
                                   std::span<double> grad);

  /// Number of expectation-value evaluations performed so far (the Fig. 5
  /// bookkeeping quantity).
  [[nodiscard]] std::size_t evaluations() const noexcept { return evals_; }
  void reset_evaluations() noexcept { evals_ = 0; }

  /// Route the stencil evaluations through evaluate_batch, `lanes` points
  /// per kernel call (1 = classic sequential). The stencil values — and
  /// therefore the gradient, combined by the exact same expressions — are
  /// bit-identical either way; only throughput changes.
  void set_eval_batch(int lanes);
  [[nodiscard]] int eval_batch() const noexcept { return eval_batch_; }

 private:
  double do_evaluate(std::span<const double> betas,
                     std::span<const double> gammas);
  double batched_value_and_gradient(std::span<const double> betas,
                                    std::span<const double> gammas,
                                    std::span<double> grad_betas,
                                    std::span<double> grad_gammas);

  const QaoaPlan* plan_;
  EvalWorkspace* ws_;
  FdScheme scheme_;
  double step_;
  int eval_batch_ = 1;
  std::size_t evals_ = 0;
  std::vector<double> work_betas_;
  std::vector<double> work_gammas_;
};

}  // namespace fastqaoa
