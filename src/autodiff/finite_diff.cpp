#include "autodiff/finite_diff.hpp"

#include "common/error.hpp"

namespace fastqaoa {

FiniteDiffDifferentiator::FiniteDiffDifferentiator(Qaoa& qaoa, FdScheme scheme,
                                                   double step)
    : FiniteDiffDifferentiator(qaoa.plan(), qaoa.workspace(), scheme, step) {}

FiniteDiffDifferentiator::FiniteDiffDifferentiator(const QaoaPlan& plan,
                                                   EvalWorkspace& ws,
                                                   FdScheme scheme,
                                                   double step)
    : plan_(&plan), ws_(&ws), scheme_(scheme), step_(step) {
  FASTQAOA_CHECK(step > 0.0, "FiniteDiffDifferentiator: step must be > 0");
}

double FiniteDiffDifferentiator::do_evaluate(std::span<const double> betas,
                                             std::span<const double> gammas) {
  ++evals_;
  return evaluate(*plan_, *ws_, betas, gammas);
}

double FiniteDiffDifferentiator::value_and_gradient(
    std::span<const double> betas, std::span<const double> gammas,
    std::span<double> grad_betas, std::span<double> grad_gammas) {
  FASTQAOA_CHECK(grad_betas.size() == betas.size(),
                 "value_and_gradient: grad_betas size mismatch");
  FASTQAOA_CHECK(grad_gammas.size() == gammas.size(),
                 "value_and_gradient: grad_gammas size mismatch");
  work_betas_.assign(betas.begin(), betas.end());
  work_gammas_.assign(gammas.begin(), gammas.end());

  const double value = do_evaluate(work_betas_, work_gammas_);

  auto differentiate = [&](std::vector<double>& angles, std::size_t i) {
    const double saved = angles[i];
    double derivative = 0.0;
    if (scheme_ == FdScheme::Central) {
      angles[i] = saved + step_;
      const double plus = do_evaluate(work_betas_, work_gammas_);
      angles[i] = saved - step_;
      const double minus = do_evaluate(work_betas_, work_gammas_);
      derivative = (plus - minus) / (2.0 * step_);
    } else {
      angles[i] = saved + step_;
      const double plus = do_evaluate(work_betas_, work_gammas_);
      derivative = (plus - value) / step_;
    }
    angles[i] = saved;
    return derivative;
  };

  for (std::size_t i = 0; i < work_betas_.size(); ++i) {
    grad_betas[i] = differentiate(work_betas_, i);
  }
  for (std::size_t i = 0; i < work_gammas_.size(); ++i) {
    grad_gammas[i] = differentiate(work_gammas_, i);
  }
  return value;
}

double FiniteDiffDifferentiator::value_and_gradient_packed(
    std::span<const double> angles, std::span<double> grad) {
  const int p = plan_->rounds();
  FASTQAOA_CHECK(plan_->num_betas() == p,
                 "value_and_gradient_packed: only for single-mixer rounds");
  FASTQAOA_CHECK(static_cast<int>(angles.size()) == 2 * p &&
                     grad.size() == angles.size(),
                 "value_and_gradient_packed: need 2p angles and gradients");
  const std::size_t sp = static_cast<std::size_t>(p);
  return value_and_gradient(angles.subspan(0, sp), angles.subspan(sp, sp),
                            grad.subspan(0, sp), grad.subspan(sp, sp));
}

}  // namespace fastqaoa
