#include "autodiff/finite_diff.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace fastqaoa {

FiniteDiffDifferentiator::FiniteDiffDifferentiator(Qaoa& qaoa, FdScheme scheme,
                                                   double step)
    : FiniteDiffDifferentiator(qaoa.plan(), qaoa.workspace(), scheme, step) {}

FiniteDiffDifferentiator::FiniteDiffDifferentiator(const QaoaPlan& plan,
                                                   EvalWorkspace& ws,
                                                   FdScheme scheme,
                                                   double step)
    : plan_(&plan), ws_(&ws), scheme_(scheme), step_(step) {
  FASTQAOA_CHECK(step > 0.0, "FiniteDiffDifferentiator: step must be > 0");
}

double FiniteDiffDifferentiator::do_evaluate(std::span<const double> betas,
                                             std::span<const double> gammas) {
  ++evals_;
  return evaluate(*plan_, *ws_, betas, gammas);
}

void FiniteDiffDifferentiator::set_eval_batch(int lanes) {
  FASTQAOA_CHECK(lanes >= 1, "set_eval_batch: need lanes >= 1");
  eval_batch_ = lanes;
}

/// Whole-stencil batching: materialize every shifted point (base first,
/// then per-angle +h / -h in the same order the sequential loop visits
/// them), evaluate them eval_batch_ lanes at a time, and combine with the
/// exact expressions of the sequential path. Each stencil value is a pure
/// function of its angles and evaluate_batch is bit-identical to
/// sequential evaluate(), so value and gradient match the sequential path
/// bit for bit.
double FiniteDiffDifferentiator::batched_value_and_gradient(
    std::span<const double> betas, std::span<const double> gammas,
    std::span<double> grad_betas, std::span<double> grad_gammas) {
  const std::size_t pb = betas.size();
  const std::size_t pg = gammas.size();
  const std::size_t m = pb + pg;
  const std::size_t per_angle = scheme_ == FdScheme::Central ? 2 : 1;
  const std::size_t lanes = 1 + per_angle * m;

  std::vector<double> lane_betas(lanes * pb);
  std::vector<double> lane_gammas(lanes * pg);
  for (std::size_t l = 0; l < lanes; ++l) {
    std::copy(betas.begin(), betas.end(), lane_betas.begin() + l * pb);
    std::copy(gammas.begin(), gammas.end(), lane_gammas.begin() + l * pg);
  }
  auto nudge = [&](std::size_t lane, std::size_t angle, double delta) {
    if (angle < pb) {
      lane_betas[lane * pb + angle] += delta;
    } else {
      lane_gammas[lane * pg + (angle - pb)] += delta;
    }
  };
  for (std::size_t i = 0; i < m; ++i) {
    nudge(1 + per_angle * i, i, step_);
    if (scheme_ == FdScheme::Central) nudge(2 + per_angle * i, i, -step_);
  }

  std::vector<double> values(lanes);
  for (std::size_t l0 = 0; l0 < lanes;
       l0 += static_cast<std::size_t>(eval_batch_)) {
    const std::size_t chunk =
        std::min(static_cast<std::size_t>(eval_batch_), lanes - l0);
    evaluate_batch(
        *plan_, *ws_,
        std::span<const double>(lane_betas.data() + l0 * pb, chunk * pb),
        std::span<const double>(lane_gammas.data() + l0 * pg, chunk * pg),
        std::span<double>(values.data() + l0, chunk));
  }
  evals_ += lanes;

  const double value = values[0];
  for (std::size_t i = 0; i < m; ++i) {
    const double plus = values[1 + per_angle * i];
    const double derivative =
        scheme_ == FdScheme::Central
            ? (plus - values[2 + per_angle * i]) / (2.0 * step_)
            : (plus - value) / step_;
    if (i < pb) {
      grad_betas[i] = derivative;
    } else {
      grad_gammas[i - pb] = derivative;
    }
  }
  return value;
}

double FiniteDiffDifferentiator::value_and_gradient(
    std::span<const double> betas, std::span<const double> gammas,
    std::span<double> grad_betas, std::span<double> grad_gammas) {
  FASTQAOA_CHECK(grad_betas.size() == betas.size(),
                 "value_and_gradient: grad_betas size mismatch");
  FASTQAOA_CHECK(grad_gammas.size() == gammas.size(),
                 "value_and_gradient: grad_gammas size mismatch");
  if (eval_batch_ > 1) {
    return batched_value_and_gradient(betas, gammas, grad_betas, grad_gammas);
  }
  work_betas_.assign(betas.begin(), betas.end());
  work_gammas_.assign(gammas.begin(), gammas.end());

  const double value = do_evaluate(work_betas_, work_gammas_);

  auto differentiate = [&](std::vector<double>& angles, std::size_t i) {
    const double saved = angles[i];
    double derivative = 0.0;
    if (scheme_ == FdScheme::Central) {
      angles[i] = saved + step_;
      const double plus = do_evaluate(work_betas_, work_gammas_);
      angles[i] = saved - step_;
      const double minus = do_evaluate(work_betas_, work_gammas_);
      derivative = (plus - minus) / (2.0 * step_);
    } else {
      angles[i] = saved + step_;
      const double plus = do_evaluate(work_betas_, work_gammas_);
      derivative = (plus - value) / step_;
    }
    angles[i] = saved;
    return derivative;
  };

  for (std::size_t i = 0; i < work_betas_.size(); ++i) {
    grad_betas[i] = differentiate(work_betas_, i);
  }
  for (std::size_t i = 0; i < work_gammas_.size(); ++i) {
    grad_gammas[i] = differentiate(work_gammas_, i);
  }
  return value;
}

double FiniteDiffDifferentiator::value_and_gradient_packed(
    std::span<const double> angles, std::span<double> grad) {
  const int p = plan_->rounds();
  FASTQAOA_CHECK(plan_->num_betas() == p,
                 "value_and_gradient_packed: only for single-mixer rounds");
  FASTQAOA_CHECK(static_cast<int>(angles.size()) == 2 * p &&
                     grad.size() == angles.size(),
                 "value_and_gradient_packed: need 2p angles and gradients");
  const std::size_t sp = static_cast<std::size_t>(p);
  return value_and_gradient(angles.subspan(0, sp), angles.subspan(sp, sp),
                            grad.subspan(0, sp), grad.subspan(sp, sp));
}

}  // namespace fastqaoa
