#pragma once
/// \file adjoint.hpp
/// Exact reverse-mode gradient of the QAOA expectation value.
///
/// The paper uses Enzyme.jl (LLVM-level AD) to get the full 2p-angle
/// gradient at O(1) extra expectation-value evaluations. We realize the
/// same cost profile analytically with the adjoint-state method: QAOA
/// layers are unitary, so the forward trajectory can be *unwound* instead
/// of stored. With lambda = C|psi_final> and layers unapplied in reverse,
///
///   dE/dbeta_k  = 2 Im <lambda_k| H_M |psi_k>
///   dE/dgamma_k = 2 Im <lambda_k| H_C |phi_k>
///
/// which costs a small constant multiple of one forward evaluation,
/// independent of p — versus the 2p+1 evaluations of central finite
/// differences (Fig. 5 of the paper).
///
/// The core entry points are free functions over (const QaoaPlan&,
/// EvalWorkspace&) — all mutable state lives in the caller's workspace, so
/// gradients of one shared plan can be computed from many threads
/// concurrently. AdjointDifferentiator is a thin binder kept for callers
/// that hold a Qaoa engine.

#include <span>

#include "core/plan.hpp"
#include "core/qaoa.hpp"

namespace fastqaoa {

/// Evaluate E(betas, gammas) on (plan, ws) and write dE/dbeta into
/// grad_betas and dE/dgamma into grad_gammas. Span sizes must match
/// plan.num_betas() / plan.num_gammas(). Returns E. Leaves ws.psi holding
/// the final statevector (the reverse sweep unwinds a copy). Allocation-free
/// after the workspace buffers have warmed up.
double adjoint_value_and_gradient(const QaoaPlan& plan, EvalWorkspace& ws,
                                  std::span<const double> betas,
                                  std::span<const double> gammas,
                                  std::span<double> grad_betas,
                                  std::span<double> grad_gammas);

/// Packed variant: angles = [betas..., gammas...], grad laid out the same
/// way (only valid for single-mixer rounds, like evaluate_packed).
double adjoint_value_and_gradient_packed(const QaoaPlan& plan,
                                         EvalWorkspace& ws,
                                         std::span<const double> angles,
                                         std::span<double> grad);

/// Reverse-mode differentiator bound to a plan + workspace (or to a Qaoa
/// engine's pair). Work buffers live in the workspace, so the binder itself
/// is stateless and safe to recreate freely.
class AdjointDifferentiator {
 public:
  explicit AdjointDifferentiator(Qaoa& qaoa);
  AdjointDifferentiator(const QaoaPlan& plan, EvalWorkspace& ws);

  /// Evaluate E(betas, gammas) and write dE/dbeta into grad_betas and
  /// dE/dgamma into grad_gammas. Returns E.
  double value_and_gradient(std::span<const double> betas,
                            std::span<const double> gammas,
                            std::span<double> grad_betas,
                            std::span<double> grad_gammas);

  /// Packed variant: angles = [betas..., gammas...], grad laid out the same
  /// way (only valid for single-mixer rounds, like Qaoa::run_packed).
  double value_and_gradient_packed(std::span<const double> angles,
                                   std::span<double> grad);

 private:
  const QaoaPlan* plan_;
  EvalWorkspace* ws_;
};

}  // namespace fastqaoa
