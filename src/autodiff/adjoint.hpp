#pragma once
/// \file adjoint.hpp
/// Exact reverse-mode gradient of the QAOA expectation value.
///
/// The paper uses Enzyme.jl (LLVM-level AD) to get the full 2p-angle
/// gradient at O(1) extra expectation-value evaluations. We realize the
/// same cost profile analytically with the adjoint-state method: QAOA
/// layers are unitary, so the forward trajectory can be *unwound* instead
/// of stored. With lambda = C|psi_final> and layers unapplied in reverse,
///
///   dE/dbeta_k  = 2 Im <lambda_k| H_M |psi_k>
///   dE/dgamma_k = 2 Im <lambda_k| H_C |phi_k>
///
/// which costs a small constant multiple of one forward evaluation,
/// independent of p — versus the 2p+1 evaluations of central finite
/// differences (Fig. 5 of the paper).

#include <span>

#include "core/qaoa.hpp"

namespace fastqaoa {

/// Reverse-mode differentiator bound to a Qaoa engine. Owns its work
/// buffers; safe to reuse across many gradient evaluations (the BFGS inner
/// loop) without allocation.
class AdjointDifferentiator {
 public:
  explicit AdjointDifferentiator(Qaoa& qaoa);

  /// Evaluate E(betas, gammas) and write dE/dbeta into grad_betas and
  /// dE/dgamma into grad_gammas. Span sizes must match
  /// qaoa.num_betas() / qaoa.num_gammas(). Returns E.
  double value_and_gradient(std::span<const double> betas,
                            std::span<const double> gammas,
                            std::span<double> grad_betas,
                            std::span<double> grad_gammas);

  /// Packed variant: angles = [betas..., gammas...], grad laid out the same
  /// way (only valid for single-mixer rounds, like Qaoa::run_packed).
  double value_and_gradient_packed(std::span<const double> angles,
                                   std::span<double> grad);

 private:
  Qaoa* qaoa_;
  cvec psi_;
  cvec lambda_;
  cvec hpsi_;
  cvec scratch_;
};

}  // namespace fastqaoa
