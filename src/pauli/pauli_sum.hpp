#pragma once
/// \file pauli_sum.hpp
/// Weighted sums of Pauli strings — the general Hamiltonian representation.
///
/// A PauliSum lowers to whichever execution path fits (paper §2.1's
/// hierarchy): X-only sums become XMixer diagonals (fast Walsh–Hadamard
/// path), diagonal sums become cost tables, and everything else builds a
/// dense Hermitian matrix for EigenMixer ("any mixer that is not of the
/// above formats ... can be implemented as a unitary matrix, and the
/// eigendecomposition is computed and stored").

#include <vector>

#include "linalg/dense.hpp"
#include "mixers/eigen_mixer.hpp"
#include "mixers/x_mixer.hpp"
#include "pauli/pauli_string.hpp"

namespace fastqaoa {

/// One weighted term of a Pauli sum.
struct PauliTerm {
  cplx coefficient{1.0, 0.0};
  PauliString string;
};

/// H = sum_t c_t P_t on n qubits.
class PauliSum {
 public:
  explicit PauliSum(int n);
  PauliSum(int n, std::vector<PauliTerm> terms);

  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_terms() const noexcept {
    return terms_.size();
  }
  [[nodiscard]] const std::vector<PauliTerm>& terms() const noexcept {
    return terms_;
  }

  /// Append coefficient * string (string must fit in n qubits).
  void add(cplx coefficient, const PauliString& string);
  /// Append a term parsed from a label, e.g. add(0.5, "XXI").
  void add(cplx coefficient, const std::string& label);

  /// Combine like terms (same masks; phases folded into coefficients) and
  /// drop terms with |c| <= tol.
  void simplify(double tol = 1e-14);

  /// Sum of two Pauli sums over the same qubit count.
  [[nodiscard]] PauliSum operator+(const PauliSum& rhs) const;
  /// Product (term-by-term Pauli algebra); call simplify() after chains.
  [[nodiscard]] PauliSum operator*(const PauliSum& rhs) const;
  /// Scalar multiple.
  [[nodiscard]] PauliSum operator*(cplx scale) const;

  /// True when every term's effective coefficient is real and every string
  /// Hermitian-compatible, i.e. the sum is a Hermitian operator.
  [[nodiscard]] bool is_hermitian(double tol = 1e-12) const;

  /// True when all strings are diagonal (I/Z only).
  [[nodiscard]] bool is_diagonal() const noexcept;

  /// True when all strings are X-products with no phase (XMixer-eligible).
  [[nodiscard]] bool is_x_only() const noexcept;

  /// out += H * in on the full 2^n basis (sparse term-by-term action;
  /// O(terms * 2^n), no matrix materialization).
  void apply(const cvec& in, cvec& out) const;

  /// Dense matrix on the full 2^n basis.
  [[nodiscard]] linalg::cmat to_matrix() const;

  /// Diagonal of a diagonal sum as a real table (throws otherwise).
  [[nodiscard]] dvec to_diagonal() const;

  /// Lower an X-only sum to the fast Walsh–Hadamard mixer (throws if any
  /// term has Z or phase content).
  [[nodiscard]] XMixer to_x_mixer() const;

  /// Lower an arbitrary Hermitian sum to an eigendecomposition mixer on
  /// the full basis (throws if not Hermitian). O(8^n) setup — intended for
  /// small-n studies of exotic mixers.
  [[nodiscard]] EigenMixer to_eigen_mixer(const std::string& name) const;

  /// The Ising form of a cost table: sum_i h_i Z_i + sum_{ij} J_ij Z_i Z_j
  /// + offset, from fields/couplings on a graph. (Inverse of tabulating
  /// ising_energy over the full basis.)
  static PauliSum ising(const Graph& couplings,
                        const std::vector<double>& fields);

  /// The transverse-field mixer sum_i X_i as a PauliSum.
  static PauliSum transverse_field(int n);

 private:
  int n_;
  std::vector<PauliTerm> terms_;
};

}  // namespace fastqaoa
