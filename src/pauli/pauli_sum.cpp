#include "pauli/pauli_sum.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "bits/bitops.hpp"
#include "common/error.hpp"

namespace fastqaoa {

PauliSum::PauliSum(int n) : n_(n) {
  FASTQAOA_CHECK(n >= 1 && n <= 62, "PauliSum: need 1 <= n <= 62");
}

PauliSum::PauliSum(int n, std::vector<PauliTerm> terms) : PauliSum(n) {
  for (auto& t : terms) add(t.coefficient, t.string);
}

void PauliSum::add(cplx coefficient, const PauliString& string) {
  FASTQAOA_CHECK(((string.x_mask() | string.z_mask()) >> n_) == 0,
                 "PauliSum::add: string acts beyond n qubits");
  terms_.push_back({coefficient, string});
}

void PauliSum::add(cplx coefficient, const std::string& label) {
  FASTQAOA_CHECK(static_cast<int>(label.size()) == n_,
                 "PauliSum::add: label length must equal n");
  add(coefficient, PauliString::from_label(label));
}

void PauliSum::simplify(double tol) {
  // Fold i^k phases into coefficients and combine by (x, z) masks.
  std::map<std::pair<state_t, state_t>, cplx> combined;
  for (const PauliTerm& t : terms_) {
    combined[{t.string.x_mask(), t.string.z_mask()}] +=
        t.coefficient * t.string.phase();
  }
  terms_.clear();
  for (const auto& [masks, coeff] : combined) {
    if (std::abs(coeff) > tol) {
      terms_.push_back({coeff, PauliString(masks.first, masks.second, 0)});
    }
  }
}

PauliSum PauliSum::operator+(const PauliSum& rhs) const {
  FASTQAOA_CHECK(n_ == rhs.n_, "PauliSum: qubit count mismatch");
  PauliSum out(n_);
  out.terms_ = terms_;
  out.terms_.insert(out.terms_.end(), rhs.terms_.begin(), rhs.terms_.end());
  return out;
}

PauliSum PauliSum::operator*(const PauliSum& rhs) const {
  FASTQAOA_CHECK(n_ == rhs.n_, "PauliSum: qubit count mismatch");
  PauliSum out(n_);
  out.terms_.reserve(terms_.size() * rhs.terms_.size());
  for (const PauliTerm& a : terms_) {
    for (const PauliTerm& b : rhs.terms_) {
      out.terms_.push_back(
          {a.coefficient * b.coefficient, a.string * b.string});
    }
  }
  return out;
}

PauliSum PauliSum::operator*(cplx scale) const {
  PauliSum out(n_);
  out.terms_ = terms_;
  for (PauliTerm& t : out.terms_) t.coefficient *= scale;
  return out;
}

bool PauliSum::is_hermitian(double tol) const {
  // Work on a simplified copy so cancellations are honored, then require
  // each surviving effective coefficient to be real (all canonical X^a Z^b
  // strings with |a&b| even are Hermitian; odd ones are anti-Hermitian, so
  // their coefficient must be imaginary — equivalently c * i^{|a&b|} real).
  PauliSum copy = *this;
  copy.simplify(tol);
  for (const PauliTerm& t : copy.terms_) {
    const int y_overlap = popcount(t.string.x_mask() & t.string.z_mask());
    const cplx effective =
        (y_overlap & 1) ? t.coefficient * cplx{0.0, 1.0} : t.coefficient;
    if (std::abs(effective.imag()) > tol) return false;
  }
  return true;
}

bool PauliSum::is_diagonal() const noexcept {
  return std::all_of(terms_.begin(), terms_.end(), [](const PauliTerm& t) {
    return t.string.is_diagonal();
  });
}

bool PauliSum::is_x_only() const noexcept {
  return std::all_of(terms_.begin(), terms_.end(), [](const PauliTerm& t) {
    return t.string.is_x_only();
  });
}

void PauliSum::apply(const cvec& in, cvec& out) const {
  const index_t dim = index_t{1} << n_;
  FASTQAOA_CHECK(in.size() == dim, "PauliSum::apply: state size mismatch");
  out.assign(dim, cplx{0.0, 0.0});
  for (const PauliTerm& t : terms_) {
    const std::ptrdiff_t sz = static_cast<std::ptrdiff_t>(dim);
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t x = 0; x < sz; ++x) {
      const auto action = t.string.apply(static_cast<state_t>(x));
      // P|x> = amp |y>  =>  out[y] += c * amp * in[x]; iterate over targets
      // instead to keep writes race-free: out[x] += <x|P|y> in[y] with
      // y = x ^ x_mask (apply from y lands on x with the same amplitude
      // formula evaluated at y).
      const state_t y = action.result;  // = x ^ x_mask
      const auto from = t.string.apply(y);
      FASTQAOA_ASSERT(from.result == static_cast<state_t>(x),
                      "PauliSum::apply: involution mismatch");
      out[static_cast<index_t>(x)] +=
          t.coefficient * from.amplitude * in[y];
    }
  }
}

linalg::cmat PauliSum::to_matrix() const {
  FASTQAOA_CHECK(n_ <= 14, "PauliSum::to_matrix: dense build limited to "
                           "n <= 14 (2^28 entries)");
  const index_t dim = index_t{1} << n_;
  linalg::cmat m(dim, dim);
  for (const PauliTerm& t : terms_) {
    for (index_t x = 0; x < dim; ++x) {
      const auto action = t.string.apply(static_cast<state_t>(x));
      m(static_cast<index_t>(action.result), x) +=
          t.coefficient * action.amplitude;
    }
  }
  return m;
}

dvec PauliSum::to_diagonal() const {
  FASTQAOA_CHECK(is_diagonal(), "PauliSum::to_diagonal: sum has X/Y terms");
  const index_t dim = index_t{1} << n_;
  dvec diag(dim, 0.0);
  for (const PauliTerm& t : terms_) {
    const cplx c = t.coefficient * t.string.phase();
    FASTQAOA_CHECK(std::abs(c.imag()) < 1e-12,
                   "PauliSum::to_diagonal: non-real diagonal coefficient");
    for (index_t x = 0; x < dim; ++x) {
      diag[x] += c.real() * z_sign(static_cast<state_t>(x),
                                   t.string.z_mask());
    }
  }
  return diag;
}

XMixer PauliSum::to_x_mixer() const {
  FASTQAOA_CHECK(is_x_only(),
                 "PauliSum::to_x_mixer: sum has Z/Y/phase content — use "
                 "to_eigen_mixer instead");
  std::vector<PauliXTerm> terms;
  terms.reserve(terms_.size());
  for (const PauliTerm& t : terms_) {
    FASTQAOA_CHECK(std::abs(t.coefficient.imag()) < 1e-12,
                   "PauliSum::to_x_mixer: coefficients must be real");
    terms.push_back({t.string.x_mask(), t.coefficient.real()});
  }
  return XMixer(n_, std::move(terms));
}

EigenMixer PauliSum::to_eigen_mixer(const std::string& name) const {
  FASTQAOA_CHECK(is_hermitian(),
                 "PauliSum::to_eigen_mixer: sum is not Hermitian");
  return EigenMixer::from_hamiltonian(linalg::hermitize(to_matrix()), name);
}

PauliSum PauliSum::ising(const Graph& couplings,
                         const std::vector<double>& fields) {
  const int n = couplings.num_vertices();
  FASTQAOA_CHECK(static_cast<int>(fields.size()) == n,
                 "PauliSum::ising: one field per vertex required");
  PauliSum h(n);
  for (int v = 0; v < n; ++v) {
    if (fields[static_cast<std::size_t>(v)] != 0.0) {
      h.add(cplx{fields[static_cast<std::size_t>(v)], 0.0},
            PauliString::Z(v));
    }
  }
  for (const Edge& e : couplings.edges()) {
    h.add(cplx{e.weight, 0.0},
          PauliString::Z(e.u) * PauliString::Z(e.v));
  }
  return h;
}

PauliSum PauliSum::transverse_field(int n) {
  PauliSum h(n);
  for (int q = 0; q < n; ++q) h.add(cplx{1.0, 0.0}, PauliString::X(q));
  return h;
}

}  // namespace fastqaoa
