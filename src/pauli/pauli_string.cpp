#include "pauli/pauli_string.hpp"

#include "bits/bitops.hpp"
#include "common/error.hpp"

namespace fastqaoa {

state_t PauliString::bitmask(int qubit) {
  FASTQAOA_CHECK(qubit >= 0 && qubit < 63, "PauliString: qubit out of range");
  return state_t{1} << qubit;
}

PauliString PauliString::from_label(const std::string& label) {
  state_t x = 0;
  state_t z = 0;
  int phase = 0;
  const int n = static_cast<int>(label.size());
  FASTQAOA_CHECK(n >= 1 && n <= 62, "PauliString: label length out of range");
  for (int i = 0; i < n; ++i) {
    // Leftmost label character is the highest qubit.
    const int qubit = n - 1 - i;
    const state_t bit = state_t{1} << qubit;
    switch (label[static_cast<std::size_t>(i)]) {
      case 'I':
        break;
      case 'X':
        x |= bit;
        break;
      case 'Z':
        z |= bit;
        break;
      case 'Y':
        x |= bit;
        z |= bit;
        phase += 1;  // Y = i X Z
        break;
      default:
        throw Error("PauliString: invalid label character '" +
                    std::string(1, label[static_cast<std::size_t>(i)]) + "'");
    }
  }
  return {x, z, phase};
}

cplx PauliString::phase() const noexcept {
  switch (phase_) {
    case 0:
      return {1.0, 0.0};
    case 1:
      return {0.0, 1.0};
    case 2:
      return {-1.0, 0.0};
    default:
      return {0.0, -1.0};
  }
}

int PauliString::weight() const noexcept { return popcount(x_ | z_); }

PauliString PauliString::operator*(const PauliString& rhs) const {
  // Z^b1 X^a2 = (-1)^{|b1 & a2|} X^a2 Z^b1.
  const int phase =
      phase_ + rhs.phase_ + 2 * parity(z_ & rhs.x_);
  return {x_ ^ rhs.x_, z_ ^ rhs.z_, phase};
}

bool PauliString::commutes_with(const PauliString& rhs) const {
  return ((parity(z_ & rhs.x_) + parity(x_ & rhs.z_)) & 1) == 0;
}

PauliString::BasisAction PauliString::apply(state_t x) const {
  // X^a Z^b |x> = (-1)^{|b & x|} |x ^ a>, times the stored i^k.
  const double sign = parity(z_ & x) ? -1.0 : 1.0;
  return {x ^ x_, phase() * sign};
}

bool PauliString::is_hermitian() const {
  // P^dag = i^{-k} Z^b X^a = i^{-k} (-1)^{|a&b|} X^a Z^b, which equals
  // i^{k} X^a Z^b iff i^{2k} = (-1)^{|a&b|}, i.e. matching parities.
  return (phase_ & 1) == (popcount(x_ & z_) & 1);
}

std::string PauliString::label(int n) const {
  FASTQAOA_CHECK(n >= 1 && n <= 62, "PauliString::label: bad qubit count");
  FASTQAOA_CHECK(((x_ | z_) >> n) == 0,
                 "PauliString::label: string acts beyond n qubits");
  std::string body;
  body.reserve(static_cast<std::size_t>(n));
  int y_count = 0;
  for (int q = n - 1; q >= 0; --q) {
    const bool has_x = (x_ >> q) & 1;
    const bool has_z = (z_ >> q) & 1;
    if (has_x && has_z) {
      body += 'Y';
      ++y_count;
    } else if (has_x) {
      body += 'X';
    } else if (has_z) {
      body += 'Z';
    } else {
      body += 'I';
    }
  }
  // Displayed phase after absorbing one i into each Y.
  const int shown = ((phase_ - y_count) % 4 + 4) % 4;
  static const char* prefix[] = {"", "i*", "-", "-i*"};
  return std::string(prefix[shown]) + body;
}

}  // namespace fastqaoa
