#pragma once
/// \file pauli_string.hpp
/// Pauli strings in the symplectic (X-mask, Z-mask) representation.
///
/// A Pauli string P = i^k · X^a Z^b (a, b bitmasks) covers every tensor
/// product of I, X, Y, Z with a global phase: Y_j = i X_j Z_j. This is the
/// substrate for building arbitrary cost and mixer Hamiltonians from Pauli
/// sums (paper §4: "arbitrarily complicated or synthetic optimization
/// functions and mixer Hamiltonians"); sums of such strings lower to dense
/// Hermitian matrices consumed by EigenMixer, and X-only sums lower to the
/// fast XMixer path.

#include <string>

#include "common/types.hpp"

namespace fastqaoa {

/// A single n-qubit Pauli string with an i^k phase (k in 0..3), stored as
/// P = i^phase_power * (X^x_mask) * (Z^z_mask). Qubit j carries:
///   I when neither mask has bit j, X for x only, Z for z only, Y for both
///   (with the i absorbed into phase_power at construction).
class PauliString {
 public:
  /// The identity string.
  PauliString() = default;

  /// From explicit masks in the X^a Z^b convention (no implicit Y phase).
  PauliString(state_t x_mask, state_t z_mask, int phase_power = 0)
      : x_(x_mask), z_(z_mask), phase_(((phase_power % 4) + 4) % 4) {}

  /// Parse a label like "XIZY" (leftmost character = highest qubit index,
  /// matching the usual ket convention |q_{n-1} ... q_0>). Throws on other
  /// characters.
  static PauliString from_label(const std::string& label);

  /// Single-qubit constructors.
  static PauliString X(int qubit) { return {bitmask(qubit), 0, 0}; }
  static PauliString Z(int qubit) { return {0, bitmask(qubit), 0}; }
  static PauliString Y(int qubit) {
    return {bitmask(qubit), bitmask(qubit), 1};  // Y = i X Z
  }

  [[nodiscard]] state_t x_mask() const noexcept { return x_; }
  [[nodiscard]] state_t z_mask() const noexcept { return z_; }
  /// k of the i^k phase factor.
  [[nodiscard]] int phase_power() const noexcept { return phase_; }
  /// The i^k phase as a complex number.
  [[nodiscard]] cplx phase() const noexcept;

  /// Number of non-identity tensor factors.
  [[nodiscard]] int weight() const noexcept;

  /// True when the string is I...I (any phase).
  [[nodiscard]] bool is_identity() const noexcept {
    return x_ == 0 && z_ == 0;
  }

  /// True when P is diagonal in the computational basis (no X part).
  [[nodiscard]] bool is_diagonal() const noexcept { return x_ == 0; }

  /// True when P contains only X factors (and no phase) — eligible for the
  /// Walsh–Hadamard fast path.
  [[nodiscard]] bool is_x_only() const noexcept {
    return z_ == 0 && phase_ == 0;
  }

  /// Product of two Pauli strings (phases tracked exactly).
  [[nodiscard]] PauliString operator*(const PauliString& rhs) const;

  /// True when the two strings commute.
  [[nodiscard]] bool commutes_with(const PauliString& rhs) const;

  /// Action on a computational basis state: P|x> = amplitude * |result>.
  struct BasisAction {
    state_t result;
    cplx amplitude;
  };
  [[nodiscard]] BasisAction apply(state_t x) const;

  /// Hermitian iff its phase works out real on the Y count: P^dagger == P.
  [[nodiscard]] bool is_hermitian() const;

  /// Label string over the lowest `n` qubits, e.g. "ZIXY" (includes a
  /// leading phase marker when the phase is not +1).
  [[nodiscard]] std::string label(int n) const;

  bool operator==(const PauliString&) const = default;

 private:
  static state_t bitmask(int qubit);

  state_t x_ = 0;
  state_t z_ = 0;
  int phase_ = 0;  // P = i^phase_ X^x_ Z^z_
};

}  // namespace fastqaoa
