#pragma once
/// \file state_space.hpp
/// The feasible set S a QAOA operates on (paper §2.1): either the full
/// n-qubit computational basis (unconstrained problems) or the
/// Hamming-weight-k Dicke subspace of size C(n,k) (constrained problems).
/// Everything downstream — cost tabulation, mixers, the statevector itself —
/// is indexed against a StateSpace, which is how the simulator "simply
/// ignores all non-feasible states".

#include <memory>

#include "bits/combinatorics.hpp"
#include "common/types.hpp"

namespace fastqaoa {

/// Feasible state set: full basis or Dicke (fixed Hamming weight) subspace.
class StateSpace {
 public:
  /// All 2^n computational basis states.
  static StateSpace full(int n);

  /// All C(n,k) basis states of Hamming weight k.
  static StateSpace dicke(int n, int k);

  [[nodiscard]] int n() const noexcept { return n_; }
  /// Hamming weight for Dicke spaces; -1 for the full space.
  [[nodiscard]] int k() const noexcept { return k_; }
  [[nodiscard]] bool constrained() const noexcept { return k_ >= 0; }
  /// Dimension of the feasible subspace.
  [[nodiscard]] index_t dim() const noexcept { return dim_; }

  /// The i-th feasible state (increasing numeric order).
  [[nodiscard]] state_t state(index_t i) const {
    return constrained() ? dicke_->state(i) : static_cast<state_t>(i);
  }

  /// Index of a feasible state; throws if x is infeasible.
  [[nodiscard]] index_t index_of(state_t x) const;

  /// True iff x belongs to the feasible set.
  [[nodiscard]] bool contains(state_t x) const;

  /// Visit every feasible state in order: fn(index, state).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (constrained()) {
      const auto& states = dicke_->states();
      for (index_t i = 0; i < states.size(); ++i) fn(i, states[i]);
    } else {
      for (index_t i = 0; i < dim_; ++i) fn(i, static_cast<state_t>(i));
    }
  }

  bool operator==(const StateSpace& o) const noexcept {
    return n_ == o.n_ && k_ == o.k_;
  }

 private:
  StateSpace(int n, int k);

  int n_;
  int k_;
  index_t dim_;
  std::shared_ptr<const DickeBasis> dicke_;  // null for the full space
};

}  // namespace fastqaoa
