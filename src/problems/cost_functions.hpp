#pragma once
/// \file cost_functions.hpp
/// The combinatorial cost functions C(x) studied in the paper, each a plain
/// function of (problem structure, basis state) -> scalar — exactly the
/// interface Listing 1/2 of the paper uses. Any user-defined callable with
/// the same shape plugs into tabulate() below.

#include "common/types.hpp"
#include "graphs/graph.hpp"
#include "linalg/dense.hpp"
#include "problems/state_space.hpp"
#include "sat/cnf.hpp"

namespace fastqaoa {

/// MaxCut: total weight of edges whose endpoints get different bits.
double maxcut(const Graph& g, state_t x);

/// k-SAT: number of satisfied clauses (the Fig. 2 objective for 3-SAT).
double ksat(const CnfFormula& f, state_t x);

/// Densest k-Subgraph: number (weight) of edges with both endpoints in the
/// selected set. Meant to be evaluated on Hamming-weight-k states.
double densest_subgraph(const Graph& g, state_t x);

/// Max k-Vertex Cover: number (weight) of edges covered by (incident to)
/// the selected vertex set. Meant for Hamming-weight-k states.
double vertex_cover(const Graph& g, state_t x);

/// Ising energy sum_i h_i s_i + sum_{(i,j)} J_ij s_i s_j with s = 1 - 2x
/// (spin +1 for bit 0). Fields h live on vertices, couplings J on edges.
double ising_energy(const Graph& couplings, const std::vector<double>& fields,
                    state_t x);

/// Number partitioning: |sum of selected weights - sum of the rest|.
/// A minimization objective (0 = perfect partition).
double number_partition(const std::vector<double>& weights, state_t x);

/// Mean-variance portfolio value of the selected asset set:
/// sum_{i in x} mu_i - risk_aversion * sum_{i,j in x} Sigma_ij.
/// A maximization objective; with a fixed asset budget k it lives on the
/// Dicke subspace (select exactly k assets), the natural constrained-QAOA
/// formulation. Sigma must be square with one row per asset.
double portfolio_value(const std::vector<double>& expected_returns,
                       const linalg::dmat& covariance, double risk_aversion,
                       state_t x);

/// Tabulate any cost function across a feasible set: result[i] =
/// cost(space.state(i)). This is the paper's pre-computation step — the
/// only problem-specific input the simulator ever sees. OpenMP-parallel
/// over the feasible set (cost must be safe to call concurrently, which
/// every pure function of (structure, state) is).
template <typename CostFn>
dvec tabulate(const StateSpace& space, CostFn&& cost) {
  dvec values(space.dim(), 0.0);
  const std::ptrdiff_t dim = static_cast<std::ptrdiff_t>(space.dim());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < dim; ++i) {
    values[static_cast<index_t>(i)] = static_cast<double>(
        cost(space.state(static_cast<index_t>(i))));
  }
  return values;
}

}  // namespace fastqaoa
