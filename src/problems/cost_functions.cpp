#include "problems/cost_functions.hpp"

#include <cmath>

#include "bits/bitops.hpp"

namespace fastqaoa {

double maxcut(const Graph& g, state_t x) {
  double cut = 0.0;
  for (const Edge& e : g.edges()) {
    if (bit(x, e.u) != bit(x, e.v)) cut += e.weight;
  }
  return cut;
}

double ksat(const CnfFormula& f, state_t x) {
  return static_cast<double>(f.count_satisfied(x));
}

double densest_subgraph(const Graph& g, state_t x) {
  double inside = 0.0;
  for (const Edge& e : g.edges()) {
    if (bit(x, e.u) == 1 && bit(x, e.v) == 1) inside += e.weight;
  }
  return inside;
}

double vertex_cover(const Graph& g, state_t x) {
  double covered = 0.0;
  for (const Edge& e : g.edges()) {
    if (bit(x, e.u) == 1 || bit(x, e.v) == 1) covered += e.weight;
  }
  return covered;
}

double number_partition(const std::vector<double>& weights, state_t x) {
  FASTQAOA_CHECK(weights.size() <= 62, "number_partition: too many items");
  double selected = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    total += weights[i];
    if (bit(x, static_cast<int>(i))) selected += weights[i];
  }
  return std::abs(2.0 * selected - total);
}

double portfolio_value(const std::vector<double>& expected_returns,
                       const linalg::dmat& covariance, double risk_aversion,
                       state_t x) {
  const std::size_t n = expected_returns.size();
  FASTQAOA_CHECK(covariance.rows() == n && covariance.cols() == n,
                 "portfolio_value: covariance must be n x n");
  FASTQAOA_CHECK(n <= 62, "portfolio_value: too many assets");
  double value = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!bit(x, static_cast<int>(i))) continue;
    value += expected_returns[i];
    for (std::size_t j = 0; j < n; ++j) {
      if (bit(x, static_cast<int>(j))) {
        value -= risk_aversion * covariance(i, j);
      }
    }
  }
  return value;
}

double ising_energy(const Graph& couplings, const std::vector<double>& fields,
                    state_t x) {
  FASTQAOA_CHECK(static_cast<int>(fields.size()) == couplings.num_vertices(),
                 "ising_energy: one field per vertex required");
  double energy = 0.0;
  for (int v = 0; v < couplings.num_vertices(); ++v) {
    const double s = bit(x, v) ? -1.0 : 1.0;
    energy += fields[static_cast<std::size_t>(v)] * s;
  }
  for (const Edge& e : couplings.edges()) {
    const double su = bit(x, e.u) ? -1.0 : 1.0;
    const double sv = bit(x, e.v) ? -1.0 : 1.0;
    energy += e.weight * su * sv;
  }
  return energy;
}

}  // namespace fastqaoa
