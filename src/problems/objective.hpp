#pragma once
/// \file objective.hpp
/// Objective-value tables and the transforms the paper applies to them:
/// sign flips for minimization, offsets, the threshold phase separator of
/// Golden et al. [18], and the (value, degeneracy) histogram that powers
/// the large-n Grover-mixer fast path (paper §2.4).

#include <map>
#include <vector>

#include "common/types.hpp"
#include "problems/state_space.hpp"

namespace fastqaoa {

/// Whether the outer loop should push <C> up or down.
enum class Direction { Maximize, Minimize };

/// Summary statistics of a tabulated objective.
struct ObjectiveStats {
  double min_value = 0.0;
  double max_value = 0.0;
  index_t argmin = 0;   ///< index of (one) minimizing state
  index_t argmax = 0;   ///< index of (one) maximizing state
  index_t count_min = 0;  ///< degeneracy of the minimum
  index_t count_max = 0;  ///< degeneracy of the maximum
  double mean = 0.0;
};

/// Scan a value table for its extrema and mean.
ObjectiveStats objective_stats(const dvec& values);

/// values'[i] = -values[i] (turn a minimization into the maximization the
/// angle finder expects — the paper's "add an overall minus sign").
dvec negated(const dvec& values);

/// values'[i] = values[i] + offset (the paper's "add an offset to make them
/// all the same sign").
dvec shifted(const dvec& values, double offset);

/// Indicator cost of the threshold phase separator: 1 where value > t else
/// 0. With the Grover mixer this reproduces Grover search as a QAOA [17].
dvec threshold_indicator(const dvec& values, double t);

/// Approximation ratio of an expectation value against a table's extrema:
/// (E - worst) / (best - worst) for maximization. 1.0 = optimal.
double approximation_ratio(double expectation, const dvec& values,
                           Direction direction = Direction::Maximize);

/// Distinct objective values with their degeneracies — all the Grover
/// mixer needs (fair sampling: equal-value states keep equal amplitudes).
/// Values are keyed with a tolerance-free exact comparison; cost functions
/// counting edges/clauses produce exactly representable values.
struct DegeneracyTable {
  std::vector<double> values;        ///< distinct values, ascending
  std::vector<std::uint64_t> counts;  ///< multiplicity of each value
  std::uint64_t total = 0;           ///< sum of counts == |S|

  [[nodiscard]] std::size_t num_distinct() const { return values.size(); }
};

/// Histogram a full value table (small spaces).
DegeneracyTable degeneracy_table(const dvec& values);

/// Histogram a cost function over the full n-qubit space *without*
/// materializing the 2^n table — streaming, OpenMP-partitioned over the
/// integer range exactly as the paper partitions work across workers.
template <typename CostFn>
DegeneracyTable degeneracy_table_streaming(int n, CostFn&& cost) {
  std::map<double, std::uint64_t> hist;
  const state_t limit = state_t{1} << n;
#ifdef _OPENMP
#pragma omp parallel
  {
    std::map<double, std::uint64_t> local;
#pragma omp for schedule(static) nowait
    for (std::int64_t x = 0; x < static_cast<std::int64_t>(limit); ++x) {
      ++local[cost(static_cast<state_t>(x))];
    }
#pragma omp critical(fastqaoa_degeneracy_merge)
    for (const auto& [v, c] : local) hist[v] += c;
  }
#else
  for (state_t x = 0; x < limit; ++x) ++hist[cost(x)];
#endif
  DegeneracyTable table;
  table.values.reserve(hist.size());
  table.counts.reserve(hist.size());
  for (const auto& [v, c] : hist) {
    table.values.push_back(v);
    table.counts.push_back(c);
    table.total += c;
  }
  return table;
}

/// Streaming histogram over the Hamming-weight-k subspace via Gosper's
/// hack (paper §2.4: "one can use Gosper's hack to efficiently iterate
/// through all binary strings with k ones").
template <typename CostFn>
DegeneracyTable degeneracy_table_streaming_dicke(int n, int k, CostFn&& cost) {
  std::map<double, std::uint64_t> hist;
  for_each_weight_k(n, k, [&](state_t x) { ++hist[cost(x)]; });
  DegeneracyTable table;
  table.values.reserve(hist.size());
  table.counts.reserve(hist.size());
  for (const auto& [v, c] : hist) {
    table.values.push_back(v);
    table.counts.push_back(c);
    table.total += c;
  }
  return table;
}

}  // namespace fastqaoa
