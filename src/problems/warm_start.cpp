#include "problems/warm_start.hpp"

#include <cmath>

#include "bits/bitops.hpp"
#include "common/error.hpp"

namespace fastqaoa {

cvec warm_start_product_state(int n, state_t solution, double epsilon) {
  FASTQAOA_CHECK(n >= 1 && n <= 30, "warm_start_product_state: bad n");
  FASTQAOA_CHECK((solution >> n) == 0,
                 "warm_start_product_state: solution exceeds n bits");
  FASTQAOA_CHECK(epsilon >= 0.0 && epsilon <= 1.0,
                 "warm_start_product_state: epsilon must be in [0, 1]");
  const double match = std::sqrt(1.0 - epsilon);
  const double differ = std::sqrt(epsilon);
  const index_t dim = index_t{1} << n;
  cvec psi(dim);
  const std::ptrdiff_t sz = static_cast<std::ptrdiff_t>(dim);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t x = 0; x < sz; ++x) {
    const int differing = popcount(static_cast<state_t>(x) ^ solution);
    psi[static_cast<index_t>(x)] =
        cplx{std::pow(differ, differing) * std::pow(match, n - differing),
             0.0};
  }
  return psi;
}

cvec warm_start_biased_state(const StateSpace& space, state_t target,
                             double weight_on_target) {
  FASTQAOA_CHECK(space.contains(target),
                 "warm_start_biased_state: target is not feasible");
  FASTQAOA_CHECK(weight_on_target >= 0.0 && weight_on_target <= 1.0,
                 "warm_start_biased_state: weight must be in [0, 1]");
  const index_t dim = space.dim();
  const index_t target_index = space.index_of(target);
  if (dim == 1) return cvec(1, cplx{1.0, 0.0});

  // psi = a|target> + b * sum_{x != target} |x> with
  // a^2 = weight, b^2 = (1 - weight)/(dim - 1).
  const double a = std::sqrt(weight_on_target);
  const double b =
      std::sqrt((1.0 - weight_on_target) / static_cast<double>(dim - 1));
  cvec psi(dim, cplx{b, 0.0});
  psi[target_index] = cplx{a, 0.0};
  return psi;
}

}  // namespace fastqaoa
