#include "problems/state_space.hpp"

#include "common/error.hpp"

namespace fastqaoa {

StateSpace::StateSpace(int n, int k) : n_(n), k_(k) {
  FASTQAOA_CHECK(n >= 1 && n < 63, "StateSpace: need 1 <= n < 63");
  if (k >= 0) {
    FASTQAOA_CHECK(k <= n, "StateSpace: need k <= n");
    dicke_ = std::make_shared<const DickeBasis>(n, k);
    dim_ = dicke_->size();
  } else {
    FASTQAOA_CHECK(n <= 34, "StateSpace: full space above n=34 will not fit "
                            "in memory for statevector simulation");
    dim_ = index_t{1} << n;
  }
}

StateSpace StateSpace::full(int n) { return StateSpace(n, -1); }

StateSpace StateSpace::dicke(int n, int k) {
  FASTQAOA_CHECK(k >= 0, "StateSpace::dicke: k must be non-negative");
  return StateSpace(n, k);
}

index_t StateSpace::index_of(state_t x) const {
  if (constrained()) return dicke_->index_of(x);
  FASTQAOA_CHECK((x >> n_) == 0, "StateSpace::index_of: state exceeds n bits");
  return static_cast<index_t>(x);
}

bool StateSpace::contains(state_t x) const {
  if ((x >> n_) != 0) return false;
  return !constrained() || popcount(x) == k_;
}

}  // namespace fastqaoa
