#include "problems/objective.hpp"

#include <cmath>

#include "common/error.hpp"

namespace fastqaoa {

ObjectiveStats objective_stats(const dvec& values) {
  FASTQAOA_CHECK(!values.empty(), "objective_stats: empty table");
  ObjectiveStats s;
  s.min_value = values[0];
  s.max_value = values[0];
  double sum = 0.0;
  for (index_t i = 0; i < values.size(); ++i) {
    const double v = values[i];
    sum += v;
    if (v < s.min_value) {
      s.min_value = v;
      s.argmin = i;
    }
    if (v > s.max_value) {
      s.max_value = v;
      s.argmax = i;
    }
  }
  for (const double v : values) {
    if (v == s.min_value) ++s.count_min;
    if (v == s.max_value) ++s.count_max;
  }
  s.mean = sum / static_cast<double>(values.size());
  return s;
}

dvec negated(const dvec& values) {
  dvec out(values.size(), 0.0);
  for (index_t i = 0; i < values.size(); ++i) out[i] = -values[i];
  return out;
}

dvec shifted(const dvec& values, double offset) {
  dvec out(values.size(), 0.0);
  for (index_t i = 0; i < values.size(); ++i) out[i] = values[i] + offset;
  return out;
}

dvec threshold_indicator(const dvec& values, double t) {
  dvec out(values.size(), 0.0);
  for (index_t i = 0; i < values.size(); ++i) out[i] = values[i] > t ? 1.0 : 0.0;
  return out;
}

double approximation_ratio(double expectation, const dvec& values,
                           Direction direction) {
  const ObjectiveStats s = objective_stats(values);
  const double range = s.max_value - s.min_value;
  FASTQAOA_CHECK(range > 0.0,
                 "approximation_ratio: objective is constant over S");
  if (direction == Direction::Maximize) {
    return (expectation - s.min_value) / range;
  }
  return (s.max_value - expectation) / range;
}

DegeneracyTable degeneracy_table(const dvec& values) {
  std::map<double, std::uint64_t> hist;
  for (const double v : values) ++hist[v];
  DegeneracyTable table;
  table.values.reserve(hist.size());
  table.counts.reserve(hist.size());
  for (const auto& [v, c] : hist) {
    table.values.push_back(v);
    table.counts.push_back(c);
    table.total += c;
  }
  return table;
}

}  // namespace fastqaoa
