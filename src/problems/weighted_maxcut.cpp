#include "problems/weighted_maxcut.hpp"

#include "common/error.hpp"

namespace fastqaoa {

Graph with_random_weights(const Graph& g, Rng& rng, double lo, double hi) {
  FASTQAOA_CHECK(lo > 0.0 && lo <= hi,
                 "with_random_weights: need 0 < lo <= hi");
  Graph weighted(g.num_vertices());
  for (const Edge& e : g.edges()) {
    weighted.add_edge(e.u, e.v, rng.uniform(lo, hi));
  }
  return weighted;
}

Graph weighted_erdos_renyi(int n, double p, Rng& rng, double lo, double hi) {
  const Graph g = erdos_renyi(n, p, rng);
  return with_random_weights(g, rng, lo, hi);
}

Graph weighted_regular(int n, int d, Rng& rng, double lo, double hi) {
  const Graph g = random_regular(n, d, rng);
  return with_random_weights(g, rng, lo, hi);
}

}  // namespace fastqaoa
