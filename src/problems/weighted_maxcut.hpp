#pragma once
/// \file weighted_maxcut.hpp
/// Weighted MaxCut instance generators (ROADMAP item 3 down-payment): the
/// standard random topologies with i.i.d. edge weights drawn from a seeded
/// Rng, so instances are reproducible end-to-end. maxcut() in
/// cost_functions.hpp is already weight-aware, and the MPS engine's
/// maxcut_hamiltonian() carries weights into its ZZ coefficients — these
/// generators are the missing piece that makes "weighted MaxCut" a
/// first-class workload in qaoa_cli and the service.

#include "common/rng.hpp"
#include "graphs/graph.hpp"

namespace fastqaoa {

/// Copy `g` with every edge weight replaced by an i.i.d. Uniform[lo, hi)
/// draw (consumed in edge order, so the result is a pure function of the
/// graph and the Rng state). Requires lo <= hi and lo > 0 — zero-weight
/// edges would silently degenerate to the unweighted problem.
Graph with_random_weights(const Graph& g, Rng& rng, double lo = 0.1,
                          double hi = 1.0);

/// Weighted G(n, p): Erdős–Rényi topology, Uniform[lo, hi) weights.
Graph weighted_erdos_renyi(int n, double p, Rng& rng, double lo = 0.1,
                           double hi = 1.0);

/// Weighted random d-regular graph: pairing-model topology, Uniform[lo, hi)
/// weights. The sparse large-n benchmark workload (MPS cost scales with
/// edge span, so bounded degree is the regime it wins in).
Graph weighted_regular(int n, int d, Rng& rng, double lo = 0.1,
                       double hi = 1.0);

}  // namespace fastqaoa
