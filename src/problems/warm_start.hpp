#pragma once
/// \file warm_start.hpp
/// Warm-start initial states (Egger, Mareček & Woerner [11], cited by the
/// paper's "different initial states" flexibility point). Instead of the
/// uniform superposition, bias |psi0> toward a classical candidate
/// solution; QAOA then refines it.

#include "common/types.hpp"
#include "problems/state_space.hpp"

namespace fastqaoa {

/// Product warm start on the full n-qubit space: qubit i is prepared in
/// sqrt(1-eps)|b_i> + sqrt(eps)|1-b_i> where b is the classical solution
/// bitstring. eps = 0.5 recovers the uniform superposition; eps -> 0
/// concentrates on |b>. Returns a unit-norm state of dimension 2^n.
cvec warm_start_product_state(int n, state_t solution, double epsilon);

/// Subspace-safe warm start: mixes the uniform superposition over the
/// feasible set with a delta on one feasible target,
/// sqrt(weight)|target> + sqrt(1-weight)|uniform⊥-ish>. Works for both
/// full and Dicke spaces (where product states would leave the subspace).
cvec warm_start_biased_state(const StateSpace& space, state_t target,
                             double weight_on_target);

}  // namespace fastqaoa
