#pragma once
/// \file sampler.hpp
/// Measurement sampling from simulated statevectors.
///
/// Exact simulation gives amplitudes; real experiments give shots. This
/// module bridges the two: draw computational-basis measurement outcomes
/// from |psi_i|^2 (Walker's alias method — O(dim) setup, O(1) per draw),
/// estimate expectation values from finite shot budgets, and verify
/// fair-sampling properties empirically. Useful for studying how many
/// shots an angle-finding loop would need on hardware.

#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "linalg/sharded_state.hpp"

namespace fastqaoa {

/// O(1)-per-draw discrete sampler over measurement outcomes of a state.
class MeasurementSampler {
 public:
  /// Build from a statevector (probabilities |psi_i|^2, renormalized
  /// against accumulated float error). Throws on a zero vector. Takes a
  /// view, so cvec and ShardedState both work; the probabilities are copied
  /// out, nothing references the state afterwards.
  explicit MeasurementSampler(linalg::ConstStateRef psi);

  /// Build directly from (non-negative, not all zero) weights.
  explicit MeasurementSampler(const dvec& weights);

  /// Number of outcomes.
  [[nodiscard]] index_t dim() const noexcept {
    return probability_.size();
  }

  /// Probability of outcome i.
  [[nodiscard]] double probability(index_t i) const {
    return probability_[i];
  }

  /// Draw one outcome index.
  [[nodiscard]] index_t sample(Rng& rng) const;

  /// Draw `shots` outcomes and return per-outcome counts.
  [[nodiscard]] std::vector<std::uint64_t> sample_counts(std::uint64_t shots,
                                                         Rng& rng) const;

  /// Shot-based estimate of a diagonal observable: mean of values[outcome]
  /// over `shots` draws.
  [[nodiscard]] double estimate_expectation(const dvec& values,
                                            std::uint64_t shots,
                                            Rng& rng) const;

  /// Exact expectation under this distribution (for comparing against the
  /// shot estimate).
  [[nodiscard]] double exact_expectation(const dvec& values) const;

  /// Standard error of the `shots`-shot estimator of `values`:
  /// sqrt(Var[values(X)] / shots).
  [[nodiscard]] double standard_error(const dvec& values,
                                      std::uint64_t shots) const;

 private:
  void build_alias_table();

  dvec probability_;
  // Walker alias table: each column i holds a threshold and an alias.
  std::vector<double> threshold_;
  std::vector<index_t> alias_;
};

}  // namespace fastqaoa
