#include "sampling/sampler.hpp"

#include <cmath>
#include <deque>

#include "common/error.hpp"

namespace fastqaoa {

MeasurementSampler::MeasurementSampler(linalg::ConstStateRef psi) {
  FASTQAOA_CHECK(!psi.empty(), "MeasurementSampler: empty state");
  probability_.resize(psi.size());
  double total = 0.0;
  for (index_t i = 0; i < psi.size(); ++i) {
    probability_[i] = std::norm(psi[i]);
    total += probability_[i];
  }
  FASTQAOA_CHECK(total > 0.0, "MeasurementSampler: zero-norm state");
  for (double& p : probability_) p /= total;
  build_alias_table();
}

MeasurementSampler::MeasurementSampler(const dvec& weights) {
  FASTQAOA_CHECK(!weights.empty(), "MeasurementSampler: empty weights");
  probability_ = weights;
  double total = 0.0;
  for (const double w : probability_) {
    FASTQAOA_CHECK(w >= 0.0, "MeasurementSampler: negative weight");
    total += w;
  }
  FASTQAOA_CHECK(total > 0.0, "MeasurementSampler: all-zero weights");
  for (double& p : probability_) p /= total;
  build_alias_table();
}

void MeasurementSampler::build_alias_table() {
  // Walker/Vose alias construction: split outcomes into under- and
  // over-full bins at the uniform level 1/dim, then pair them off.
  const index_t n = probability_.size();
  threshold_.assign(n, 1.0);
  alias_.assign(n, 0);
  for (index_t i = 0; i < n; ++i) alias_[i] = i;

  std::vector<double> scaled(n);
  std::deque<index_t> small;
  std::deque<index_t> large;
  for (index_t i = 0; i < n; ++i) {
    scaled[i] = probability_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const index_t s = small.front();
    small.pop_front();
    const index_t l = large.front();
    threshold_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= (1.0 - scaled[s]);
    if (scaled[l] < 1.0) {
      large.pop_front();
      small.push_back(l);
    }
  }
  // Leftovers (float drift) saturate at threshold 1 (never alias).
  for (const index_t i : small) threshold_[i] = 1.0;
  for (const index_t i : large) threshold_[i] = 1.0;
}

index_t MeasurementSampler::sample(Rng& rng) const {
  const index_t column = static_cast<index_t>(rng.bounded(dim()));
  return rng.uniform() < threshold_[column] ? column : alias_[column];
}

std::vector<std::uint64_t> MeasurementSampler::sample_counts(
    std::uint64_t shots, Rng& rng) const {
  std::vector<std::uint64_t> counts(dim(), 0);
  for (std::uint64_t s = 0; s < shots; ++s) ++counts[sample(rng)];
  return counts;
}

double MeasurementSampler::estimate_expectation(const dvec& values,
                                                std::uint64_t shots,
                                                Rng& rng) const {
  FASTQAOA_CHECK(values.size() == dim(),
                 "estimate_expectation: value table size mismatch");
  FASTQAOA_CHECK(shots > 0, "estimate_expectation: need at least one shot");
  double sum = 0.0;
  for (std::uint64_t s = 0; s < shots; ++s) sum += values[sample(rng)];
  return sum / static_cast<double>(shots);
}

double MeasurementSampler::exact_expectation(const dvec& values) const {
  FASTQAOA_CHECK(values.size() == dim(),
                 "exact_expectation: value table size mismatch");
  double e = 0.0;
  for (index_t i = 0; i < dim(); ++i) e += probability_[i] * values[i];
  return e;
}

double MeasurementSampler::standard_error(const dvec& values,
                                          std::uint64_t shots) const {
  FASTQAOA_CHECK(shots > 0, "standard_error: need at least one shot");
  const double mean = exact_expectation(values);
  double variance = 0.0;
  for (index_t i = 0; i < dim(); ++i) {
    const double d = values[i] - mean;
    variance += probability_[i] * d * d;
  }
  return std::sqrt(variance / static_cast<double>(shots));
}

}  // namespace fastqaoa
