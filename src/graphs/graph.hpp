#pragma once
/// \file graph.hpp
/// Simple undirected weighted graphs and the random ensembles the paper's
/// evaluation draws instances from (Erdős–Rényi G(n, 0.5), d-regular).

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace fastqaoa {

/// Undirected weighted edge; endpoints are vertex indices with u < v.
struct Edge {
  int u;
  int v;
  double weight = 1.0;

  bool operator==(const Edge&) const = default;
};

/// Undirected graph on vertices 0..n-1 with an edge list and per-vertex
/// adjacency. Parallel edges and self-loops are rejected.
class Graph {
 public:
  /// Empty graph on n vertices.
  explicit Graph(int n);

  /// Graph from an explicit edge list.
  Graph(int n, const std::vector<Edge>& edges);

  [[nodiscard]] int num_vertices() const noexcept { return n_; }
  [[nodiscard]] int num_edges() const noexcept {
    return static_cast<int>(edges_.size());
  }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
    return edges_;
  }
  /// Neighbors of vertex v.
  [[nodiscard]] const std::vector<int>& neighbors(int v) const {
    FASTQAOA_CHECK(v >= 0 && v < n_, "Graph::neighbors: vertex out of range");
    return adjacency_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] int degree(int v) const {
    return static_cast<int>(neighbors(v).size());
  }
  [[nodiscard]] bool has_edge(int u, int v) const;

  /// Add edge {u, v} with the given weight. Throws on self-loop/duplicate.
  void add_edge(int u, int v, double weight = 1.0);

  /// Sum of all edge weights.
  [[nodiscard]] double total_weight() const;

 private:
  int n_;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> adjacency_;
};

/// Erdős–Rényi G(n, p): each of the C(n,2) edges present independently with
/// probability p. The paper's Fig. 2-5 instances are G(n, 0.5).
Graph erdos_renyi(int n, double p, Rng& rng);

/// Random d-regular graph via the pairing model with restarts (rejecting
/// self-loops and parallel edges). Requires n*d even and d < n.
Graph random_regular(int n, int d, Rng& rng);

/// Complete graph K_n.
Graph complete_graph(int n);

/// Cycle 0-1-...-(n-1)-0.
Graph ring_graph(int n);

/// Star graph: vertex 0 connected to all others.
Graph star_graph(int n);

/// Path graph 0-1-...-(n-1).
Graph path_graph(int n);

}  // namespace fastqaoa
