#include "graphs/graph.hpp"

#include <algorithm>
#include <numeric>

namespace fastqaoa {

Graph::Graph(int n) : n_(n), adjacency_(static_cast<std::size_t>(n)) {
  FASTQAOA_CHECK(n >= 1, "Graph: need at least one vertex");
}

Graph::Graph(int n, const std::vector<Edge>& edges) : Graph(n) {
  for (const Edge& e : edges) add_edge(e.u, e.v, e.weight);
}

bool Graph::has_edge(int u, int v) const {
  FASTQAOA_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_,
                 "Graph::has_edge: vertex out of range");
  const auto& adj = adjacency_[static_cast<std::size_t>(u)];
  return std::find(adj.begin(), adj.end(), v) != adj.end();
}

void Graph::add_edge(int u, int v, double weight) {
  FASTQAOA_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_,
                 "Graph::add_edge: vertex out of range");
  FASTQAOA_CHECK(u != v, "Graph::add_edge: self-loops not allowed");
  FASTQAOA_CHECK(!has_edge(u, v), "Graph::add_edge: duplicate edge");
  if (u > v) std::swap(u, v);
  edges_.push_back(Edge{u, v, weight});
  adjacency_[static_cast<std::size_t>(u)].push_back(v);
  adjacency_[static_cast<std::size_t>(v)].push_back(u);
}

double Graph::total_weight() const {
  return std::accumulate(
      edges_.begin(), edges_.end(), 0.0,
      [](double acc, const Edge& e) { return acc + e.weight; });
}

Graph erdos_renyi(int n, double p, Rng& rng) {
  FASTQAOA_CHECK(p >= 0.0 && p <= 1.0, "erdos_renyi: p must be in [0, 1]");
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.uniform() < p) g.add_edge(u, v);
    }
  }
  return g;
}

Graph random_regular(int n, int d, Rng& rng) {
  FASTQAOA_CHECK(d >= 0 && d < n, "random_regular: need 0 <= d < n");
  FASTQAOA_CHECK((static_cast<std::int64_t>(n) * d) % 2 == 0,
                 "random_regular: n*d must be even");
  // Pairing (configuration) model with full restarts on collision. For the
  // small d used in QAOA studies (d=3) acceptance is high.
  for (int attempt = 0; attempt < 10000; ++attempt) {
    std::vector<int> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * d);
    for (int v = 0; v < n; ++v)
      for (int i = 0; i < d; ++i) stubs.push_back(v);
    // Fisher-Yates shuffle.
    for (std::size_t i = stubs.size(); i > 1; --i) {
      std::swap(stubs[i - 1], stubs[rng.bounded(i)]);
    }
    Graph g(n);
    bool ok = true;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      const int u = stubs[i];
      const int v = stubs[i + 1];
      if (u == v || g.has_edge(u, v)) {
        ok = false;
        break;
      }
      g.add_edge(u, v);
    }
    if (ok) return g;
  }
  throw Error("random_regular: failed to generate after 10000 attempts");
}

Graph complete_graph(int n) {
  Graph g(n);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) g.add_edge(u, v);
  return g;
}

Graph ring_graph(int n) {
  FASTQAOA_CHECK(n >= 3, "ring_graph: need n >= 3");
  Graph g(n);
  for (int v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  return g;
}

Graph star_graph(int n) {
  FASTQAOA_CHECK(n >= 2, "star_graph: need n >= 2");
  Graph g(n);
  for (int v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph path_graph(int n) {
  FASTQAOA_CHECK(n >= 2, "path_graph: need n >= 2");
  Graph g(n);
  for (int v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

}  // namespace fastqaoa
