#include "service/server.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "runtime/checkpoint.hpp"
#include "service/json.hpp"
#include "service/net.hpp"
#include "service/protocol.hpp"

namespace fastqaoa::service {

namespace {

// Self-pipe: the write end is the only thing the signal handler touches.
std::atomic<int> g_signal_pipe_wr{-1};

extern "C" void daemon_signal_handler(int /*signo*/) {
  const int fd = g_signal_pipe_wr.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    // write() is async-signal-safe; a full pipe just means a wakeup is
    // already pending.
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

/// Connection threads register their fd so drain can shutdown(SHUT_RD) any
/// reader still blocked in recv(); finished threads queue themselves for
/// joining so a long-lived daemon does not accumulate dead std::threads.
class ConnectionTracker {
 public:
  void add(std::uint64_t id, int fd, std::thread thread) {
    std::lock_guard<std::mutex> lock(mu_);
    threads_.emplace(id, std::move(thread));
    fds_.emplace(id, fd);
  }

  /// Called by a connection thread as it exits.
  void finished(std::uint64_t id) {
    std::lock_guard<std::mutex> lock(mu_);
    fds_.erase(id);
    done_.push_back(id);
  }

  /// Join threads that announced completion (accept-loop housekeeping).
  void reap() {
    std::vector<std::thread> joinable;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const std::uint64_t id : done_) {
        auto it = threads_.find(id);
        if (it != threads_.end()) {
          joinable.push_back(std::move(it->second));
          threads_.erase(it);
        }
      }
      done_.clear();
    }
    for (std::thread& t : joinable) {
      if (t.joinable()) t.join();
    }
  }

  /// Unblock readers: half-close every live connection's read side. The
  /// write side stays open so in-flight responses still reach the client.
  void shutdown_reads() {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [id, fd] : fds_) ::shutdown(fd, SHUT_RD);
  }

  void join_all() {
    std::unordered_map<std::uint64_t, std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(mu_);
      threads.swap(threads_);
      done_.clear();
    }
    for (auto& [id, t] : threads) {
      if (t.joinable()) t.join();
    }
  }

 private:
  std::mutex mu_;
  std::unordered_map<std::uint64_t, std::thread> threads_;
  std::unordered_map<std::uint64_t, int> fds_;
  std::deque<std::uint64_t> done_;
};

void serve_connection(Service& service, int fd) {
  try {
    LineReader reader(fd);
    std::string line;
    while (reader.next(line)) {
      if (line.empty()) continue;
      if (is_subscribe_line(line)) {
        // Streaming path: many response lines for one request line. The
        // emit callback reports a broken peer as false so the stream stops
        // without tearing down the daemon; afterwards the connection keeps
        // serving normal requests.
        handle_subscribe(service, Json::parse(line),
                         [fd](const std::string& event) {
                           try {
                             write_all(fd, event + "\n");
                             return true;
                           } catch (const std::exception&) {
                             return false;
                           }
                         });
        continue;
      }
      write_all(fd, handle_request_line(service, line) + "\n");
    }
  } catch (const std::exception&) {
    // Peer vanished or sent garbage past the line cap — this connection is
    // over; the daemon itself is unaffected.
  }
  close_fd(fd);
}

/// Best-effort atomic rewrite of the Prometheus text file (scrape targets
/// tolerate a stale file better than a torn one).
void write_prometheus_file(Service& service, const std::string& path) {
  try {
    runtime::atomic_write_file(path, metrics_prometheus(service),
                               "daemon_prometheus");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qaoa_serve: prometheus write failed: %s\n",
                 e.what());
  }
}

}  // namespace

std::string metrics_document(const Service& service) {
  Json doc = Json::object();
  doc.set("service", stats_to_json(service.stats()));
  doc.set("engine", Json::parse(obs::global_snapshot().to_json()));
  return doc.dump() + "\n";
}

int run_daemon(const DaemonOptions& options) {
  if (options.socket_path.empty()) {
    std::fprintf(stderr, "qaoa_serve: --socket path is required\n");
    return 2;
  }

  int listen_fds[2] = {-1, -1};
  int n_listeners = 0;
  int tcp_port = -1;
  try {
    listen_fds[n_listeners++] = listen_unix(options.socket_path);
    if (options.tcp_port >= 0) {
      listen_fds[n_listeners++] = listen_tcp(options.tcp_port, &tcp_port);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qaoa_serve: %s\n", e.what());
    for (int i = 0; i < n_listeners; ++i) close_fd(listen_fds[i]);
    return 2;
  }

  int signal_pipe[2] = {-1, -1};
  if (::pipe(signal_pipe) != 0) {
    std::fprintf(stderr, "qaoa_serve: pipe: %s\n", std::strerror(errno));
    for (int i = 0; i < n_listeners; ++i) close_fd(listen_fds[i]);
    return 2;
  }
  g_signal_pipe_wr.store(signal_pipe[1], std::memory_order_relaxed);

  struct sigaction sa{};
  sa.sa_handler = daemon_signal_handler;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  {
    Service service(options.service);
    ConnectionTracker connections;
    std::uint64_t next_conn_id = 1;

    if (options.verbose) {
      std::fprintf(stderr, "qaoa_serve: listening on %s",
                   options.socket_path.c_str());
      if (tcp_port >= 0) std::fprintf(stderr, " and 127.0.0.1:%d", tcp_port);
      std::fprintf(stderr, " (workers=%d, queue=%zu)\n",
                   options.service.workers, options.service.queue_high_water);
    }

    // Periodic Prometheus file writes need the accept loop to wake up on a
    // cadence; without them the poll blocks indefinitely as before.
    const bool periodic = !options.prometheus_path.empty();
    const int poll_timeout_ms =
        periodic ? std::max(100, static_cast<int>(
                                     options.metrics_interval_seconds * 1e3))
                 : -1;
    auto last_write = std::chrono::steady_clock::now();
    if (periodic) write_prometheus_file(service, options.prometheus_path);

    bool drain = false;
    while (!drain) {
      pollfd fds[3];
      fds[0] = {signal_pipe[0], POLLIN, 0};
      for (int i = 0; i < n_listeners; ++i) {
        fds[i + 1] = {listen_fds[i], POLLIN, 0};
      }
      const int rc = ::poll(fds, static_cast<nfds_t>(n_listeners + 1),
                            poll_timeout_ms);
      if (rc < 0) {
        if (errno == EINTR) continue;
        std::fprintf(stderr, "qaoa_serve: poll: %s\n", std::strerror(errno));
        drain = true;
        break;
      }
      if (periodic) {
        const auto now = std::chrono::steady_clock::now();
        if (std::chrono::duration<double>(now - last_write).count() >=
            options.metrics_interval_seconds) {
          write_prometheus_file(service, options.prometheus_path);
          last_write = now;
        }
      }
      if (rc == 0) continue;  // poll timeout: metrics tick only
      if ((fds[0].revents & POLLIN) != 0) {
        drain = true;
        break;
      }
      for (int i = 0; i < n_listeners; ++i) {
        if ((fds[i + 1].revents & POLLIN) == 0) continue;
        const int conn = ::accept(listen_fds[i], nullptr, nullptr);
        if (conn < 0) continue;  // transient (ECONNABORTED, EINTR, ...)
        const std::uint64_t id = next_conn_id++;
        std::thread t([&service, &connections, conn, id] {
          serve_connection(service, conn);
          connections.finished(id);
        });
        connections.add(id, conn, std::move(t));
      }
      connections.reap();
    }

    if (options.verbose) {
      std::fprintf(stderr, "qaoa_serve: draining (queued jobs cancelled, "
                           "running jobs finishing)\n");
    }

    // Drain: stop accepting first, so no client can slip a job in between
    // "listener closed" and "service draining".
    for (int i = 0; i < n_listeners; ++i) close_fd(listen_fds[i]);
    ::unlink(options.socket_path.c_str());
    service.begin_drain();
    service.shutdown();  // every in-flight job delivers its result

    // All jobs are terminal now, so any connection thread blocked in
    // Service::wait() has already been released and is writing its
    // response; half-close the rest so recv() returns EOF.
    connections.shutdown_reads();
    connections.join_all();

    if (!options.metrics_path.empty()) {
      try {
        runtime::atomic_write_file(options.metrics_path,
                                   metrics_document(service),
                                   "daemon_metrics");
      } catch (const std::exception& e) {
        std::fprintf(stderr, "qaoa_serve: metrics flush failed: %s\n",
                     e.what());
      }
    }
    if (!options.prometheus_path.empty()) {
      write_prometheus_file(service, options.prometheus_path);
    }
    if (options.verbose) std::fprintf(stderr, "qaoa_serve: drained, bye\n");
  }

  g_signal_pipe_wr.store(-1, std::memory_order_relaxed);
  close_fd(signal_pipe[0]);
  close_fd(signal_pipe[1]);
  return 0;
}

}  // namespace fastqaoa::service
