#include "service/server.hpp"

#include <signal.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/fault.hpp"
#include "service/json.hpp"
#include "service/net.hpp"
#include "service/protocol.hpp"
#include "service/tenant.hpp"

namespace fastqaoa::service {

namespace {

using SteadyClock = std::chrono::steady_clock;

// Self-pipe: the write end is the only thing the signal handler touches.
std::atomic<int> g_signal_pipe_wr{-1};

extern "C" void daemon_signal_handler(int /*signo*/) {
  const int fd = g_signal_pipe_wr.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    // write() is async-signal-safe; a full pipe just means a wakeup is
    // already pending.
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

/// Connection ids ready for a pump: worker threads post here from progress
/// close hooks (sync job finished) and subscription notifies (stream event
/// landed), then poke the event loop awake through a non-blocking pipe.
/// Stale ids (connection already closed) are simply ignored at drain time.
class ReadyQueue {
 public:
  void set_wake_fd(int fd) noexcept { wake_fd_ = fd; }

  void post(std::uint64_t conn_id) {
    bool wake = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      wake = ids_.empty();
      ids_.push_back(conn_id);
    }
    if (wake && wake_fd_ >= 0) {
      const char byte = 1;
      // Non-blocking pipe: EAGAIN means a wakeup is already pending.
      [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &byte, 1);
    }
  }

  std::vector<std::uint64_t> drain() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::uint64_t> out;
    out.swap(ids_);
    return out;
  }

 private:
  std::mutex mu_;
  std::vector<std::uint64_t> ids_;
  int wake_fd_ = -1;
};

/// One connection's state machine. The loop thread owns everything here;
/// worker threads only ever touch the ReadyQueue.
struct Conn {
  int fd = -1;
  std::uint64_t id = 0;   ///< epoll key (and ReadyQueue token)
  std::uint64_t seq = 0;  ///< accept order, 1-based (fault discriminator)
  RequestContext ctx;

  std::string rbuf;                 ///< bytes not yet split into lines
  std::deque<std::string> lines;    ///< complete request lines awaiting serve
  std::string wbuf;                 ///< pending output
  std::size_t woff = 0;             ///< wbuf bytes already sent
  std::uint32_t interest = 0;       ///< current epoll event mask
  bool peer_eof = false;
  bool simulated_stall = false;     ///< net.stall_reader: pretend EAGAIN

  enum class Mode { Idle, WaitJob, Stream } mode = Mode::Idle;
  std::shared_ptr<Job> wait_job;    ///< WaitJob: sync job being awaited
  std::shared_ptr<Job> stream_job;  ///< Stream: job being watched
  ProgressChannel::Subscription sub;
  int throttle_ms = 0;
  SteadyClock::time_point next_stream_at{};

  SteadyClock::time_point last_activity{};
  SteadyClock::time_point last_write_progress{};

  [[nodiscard]] std::size_t pending_out() const noexcept {
    return wbuf.size() - woff;
  }
};

/// Best-effort atomic rewrite of the Prometheus text file (scrape targets
/// tolerate a stale file better than a torn one).
void write_prometheus_file(Service& service, const std::string& path) {
  try {
    runtime::atomic_write_file(path, metrics_prometheus(service),
                               "daemon_prometheus");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qaoa_serve: prometheus write failed: %s\n",
                 e.what());
  }
}

/// The whole front end: listeners, connections, timers, drain. One instance
/// per run_daemon call; runs on the calling thread.
class EventLoop {
 public:
  EventLoop(Service& service, const DaemonOptions& options, int signal_rfd,
            const int* listen_fds, int n_listeners)
      : service_(service),
        opts_(options),
        signal_rfd_(signal_rfd),
        n_listeners_(n_listeners) {
    for (int i = 0; i < n_listeners; ++i) listen_fds_[i] = listen_fds[i];
  }

  ~EventLoop() {
    for (auto& [id, c] : conns_) close_fd(c->fd);
    conns_.clear();
    if (epoll_fd_ >= 0) close_fd(epoll_fd_);
    if (wake_pipe_[0] >= 0) close_fd(wake_pipe_[0]);
    if (wake_pipe_[1] >= 0) close_fd(wake_pipe_[1]);
  }

  /// Returns 0 after a clean drain, 2 on a setup failure.
  int run() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      std::fprintf(stderr, "qaoa_serve: epoll_create1: %s\n",
                   std::strerror(errno));
      return 2;
    }
    if (::pipe(wake_pipe_) != 0) {
      std::fprintf(stderr, "qaoa_serve: pipe: %s\n", std::strerror(errno));
      return 2;
    }
    set_nonblocking(wake_pipe_[0], true);
    set_nonblocking(wake_pipe_[1], true);
    ready_.set_wake_fd(wake_pipe_[1]);

    add_watch(signal_rfd_, kKeySignal, EPOLLIN);
    add_watch(wake_pipe_[0], kKeyWake, EPOLLIN);
    for (int i = 0; i < n_listeners_; ++i) {
      set_nonblocking(listen_fds_[i], true);
      add_watch(listen_fds_[i], kKeyListener0 + static_cast<std::uint64_t>(i),
                EPOLLIN);
    }

    const bool periodic = !opts_.prometheus_path.empty();
    auto last_metrics = SteadyClock::now();
    if (periodic) write_prometheus_file(service_, opts_.prometheus_path);

    bool drain = false;
    while (!drain) {
      epoll_event events[64];
      const int rc = ::epoll_wait(epoll_fd_, events, 64, kTickMs);
      if (rc < 0) {
        if (errno == EINTR) continue;
        std::fprintf(stderr, "qaoa_serve: epoll_wait: %s\n",
                     std::strerror(errno));
        break;  // fall through to drain: never exit without flushing
      }
      for (int i = 0; i < rc && !drain; ++i) {
        const std::uint64_t key = events[i].data.u64;
        const std::uint32_t ev = events[i].events;
        if (key == kKeySignal) {
          drain = true;
        } else if (key == kKeyWake) {
          drain_pipe(wake_pipe_[0]);
        } else if (key >= kKeyListener0 && key < kKeyListener0 + 2) {
          accept_burst(static_cast<int>(key - kKeyListener0));
        } else {
          auto it = conns_.find(key);
          if (it == conns_.end()) continue;  // already closed this round
          Conn* c = it->second.get();
          if ((ev & (EPOLLHUP | EPOLLERR)) != 0 && (ev & EPOLLIN) == 0 &&
              c->pending_out() == 0) {
            close_conn(c->id);
            continue;
          }
          bool alive = true;
          if ((ev & EPOLLOUT) != 0) alive = on_writable(c);
          if (alive && (ev & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
            on_readable(c);
          }
        }
      }
      if (drain) break;

      // Worker-thread completions (sync jobs, stream events).
      for (const std::uint64_t id : ready_.drain()) {
        auto it = conns_.find(id);
        if (it != conns_.end()) pump(it->second.get());
      }

      housekeeping();

      if (periodic) {
        const auto now = SteadyClock::now();
        if (std::chrono::duration<double>(now - last_metrics).count() >=
            opts_.metrics_interval_seconds) {
          write_prometheus_file(service_, opts_.prometheus_path);
          last_metrics = now;
        }
      }
    }

    drain_and_close();
    return 0;
  }

 private:
  static constexpr std::uint64_t kKeySignal = 0;
  static constexpr std::uint64_t kKeyWake = 1;
  static constexpr std::uint64_t kKeyListener0 = 2;
  static constexpr std::uint64_t kFirstConnId = 16;
  static constexpr int kTickMs = 100;
  static constexpr std::size_t kReadChunk = 64 * 1024;

  // ---- epoll plumbing -----------------------------------------------------

  void add_watch(int fd, std::uint64_t key, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = key;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      throw Error(std::string("epoll_ctl(ADD): ") + std::strerror(errno));
    }
  }

  static void drain_pipe(int fd) {
    char buf[256];
    while (::read(fd, buf, sizeof(buf)) > 0) {
    }
  }

  /// Recompute the connection's epoll interest from its buffer state:
  /// EPOLLIN while we are willing to buffer more input, EPOLLOUT only while
  /// output is pending.
  void update_interest(Conn* c) {
    std::uint32_t want = 0;
    const bool read_more = !c->peer_eof &&
                           c->lines.size() < opts_.max_pipeline &&
                           c->rbuf.size() <= opts_.max_line_bytes;
    if (read_more) want |= EPOLLIN;
    if (c->pending_out() > 0) want |= EPOLLOUT;
    if (want == c->interest) return;
    epoll_event ev{};
    ev.events = want;
    ev.data.u64 = c->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev) == 0) {
      c->interest = want;
    }
  }

  // ---- accept path --------------------------------------------------------

  void accept_burst(int listener) {
    const int lfd = listen_fds_[listener];
    bool shed_tried = false;
    for (;;) {
      const int fd = ::accept4(lfd, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR || errno == ECONNABORTED) continue;
        if (errno == EMFILE || errno == ENFILE) {
          // fd pressure: shed the oldest idle connection to make room, then
          // retry once. If nothing is sheddable, back off until next tick.
          if (!shed_tried && shed_oldest_idle()) {
            shed_tried = true;
            continue;
          }
          return;
        }
        return;  // other transient accept failure
      }
      const std::uint64_t seq = ++accept_seq_;
      if (FASTQAOA_FAULT_FIRE("net.accept_fail",
                              static_cast<long long>(seq))) {
        close_fd(fd);  // simulated transient accept failure
        continue;
      }
      if (conns_.size() >= opts_.max_connections) {
        service_.frontend.rejected_conn_limit.fetch_add(
            1, std::memory_order_relaxed);
        const std::string line =
            error_response("too_many_connections",
                           "connection limit reached, try again later")
                .dump() +
            "\n";
        [[maybe_unused]] const ssize_t n =
            ::send(fd, line.data(), line.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
        close_fd(fd);
        continue;
      }
      if (opts_.sndbuf_bytes > 0) set_send_buffer(fd, opts_.sndbuf_bytes);

      auto conn = std::make_unique<Conn>();
      conn->fd = fd;
      conn->id = next_conn_id_++;
      conn->seq = seq;
      conn->ctx.trusted = false;  // socket clients must present keys
      conn->last_activity = SteadyClock::now();
      conn->last_write_progress = conn->last_activity;
      if (FASTQAOA_FAULT_FIRE("net.stall_reader",
                              static_cast<long long>(seq))) {
        conn->simulated_stall = true;  // peer "never drains": writes stall
      }
      Conn* c = conn.get();
      conns_.emplace(c->id, std::move(conn));
      try {
        add_watch(c->fd, c->id, EPOLLIN);
        c->interest = EPOLLIN;
      } catch (const std::exception&) {
        close_fd(c->fd);
        conns_.erase(c->id);
        continue;
      }
      service_.frontend.accepted.fetch_add(1, std::memory_order_relaxed);
      service_.frontend.active.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Shed the least-recently-active fully idle connection (EMFILE relief).
  bool shed_oldest_idle() {
    Conn* victim = nullptr;
    for (auto& [id, c] : conns_) {
      if (c->mode != Conn::Mode::Idle || !c->lines.empty() ||
          c->pending_out() != 0) {
        continue;
      }
      if (victim == nullptr || c->last_activity < victim->last_activity) {
        victim = c.get();
      }
    }
    if (victim == nullptr) return false;
    service_.frontend.shed_fd_pressure.fetch_add(1,
                                                 std::memory_order_relaxed);
    evict(victim, "shed_fd_pressure",
          "connection shed under file-descriptor pressure");
    return true;
  }

  // ---- read path ----------------------------------------------------------

  void on_readable(Conn* c) {
    char buf[kReadChunk];
    for (;;) {
      if (c->lines.size() >= opts_.max_pipeline) break;  // backpressure
      const ssize_t n = ::recv(c->fd, buf, sizeof(buf), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_conn(c->id);  // peer reset
        return;
      }
      if (n == 0) {
        c->peer_eof = true;
        break;
      }
      c->last_activity = SteadyClock::now();
      if (FASTQAOA_FAULT_FIRE("net.drop_connection",
                              static_cast<long long>(c->seq))) {
        close_conn(c->id);  // simulated mid-frame connection drop
        return;
      }
      c->rbuf.append(buf, static_cast<std::size_t>(n));
      const bool oversized_line = !split_lines(c);
      // Reject past max_line_bytes whether the line is still accumulating
      // (the unbounded-buffering guard) or arrived complete in one read.
      if (oversized_line || c->rbuf.size() > opts_.max_line_bytes) {
        service_.frontend.evicted_oversize.fetch_add(
            1, std::memory_order_relaxed);
        send_best_effort(
            c, error_response("bad_request",
                              "request line exceeds " +
                                  std::to_string(opts_.max_line_bytes) +
                                  " bytes")
                   .dump());
        close_conn(c->id);
        return;
      }
    }
    if (c->peer_eof && !c->rbuf.empty()) {
      // Tolerate a missing trailing newline before EOF (curl-style).
      c->lines.push_back(std::move(c->rbuf));
      c->rbuf.clear();
    }
    pump(c);
  }

  /// Extract complete lines from the read buffer. Returns false when a
  /// completed line exceeds max_line_bytes (the caller evicts).
  bool split_lines(Conn* c) {
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = c->rbuf.find('\n', start);
      if (nl == std::string::npos) break;
      if (nl - start > opts_.max_line_bytes) return false;
      if (nl > start) {
        c->lines.emplace_back(c->rbuf, start, nl - start);
      }
      start = nl + 1;
    }
    if (start > 0) c->rbuf.erase(0, start);
    return true;
  }

  // ---- write path ---------------------------------------------------------

  /// Push as much pending output as the socket accepts. Returns false when
  /// the connection died (and was closed) in the attempt.
  bool try_flush(Conn* c) {
    while (c->woff < c->wbuf.size()) {
      if (c->simulated_stall) break;  // net.stall_reader: kernel "full"
      std::size_t len = c->wbuf.size() - c->woff;
      if (FASTQAOA_FAULT_FIRE("net.short_write",
                              static_cast<long long>(c->seq))) {
        len = 1;  // simulated short write: one byte this pass
      }
      std::size_t n = 0;
      try {
        n = write_some(c->fd, c->wbuf.data() + c->woff, len);
      } catch (const std::exception&) {
        close_conn(c->id);  // peer gone mid-response
        return false;
      }
      if (n == 0) break;  // kernel buffer full
      c->woff += n;
      c->last_write_progress = SteadyClock::now();
    }
    if (c->woff == c->wbuf.size()) {
      c->wbuf.clear();
      c->woff = 0;
    } else if (c->woff > (1u << 20)) {
      c->wbuf.erase(0, c->woff);
      c->woff = 0;
    }
    return true;
  }

  /// Queue one response line. Returns false when the connection died.
  bool send_line(Conn* c, const std::string& line) {
    // The stall clock starts when output first becomes pending, not from
    // whenever the last byte happened to flow.
    if (c->pending_out() == 0) c->last_write_progress = SteadyClock::now();
    c->wbuf += line;
    c->wbuf += '\n';
    return try_flush(c);
  }

  /// One best-effort non-blocking write, used on paths that close the
  /// connection right after (eviction notices, reject-at-accept).
  void send_best_effort(Conn* c, const std::string& line) {
    const std::string framed = line + "\n";
    [[maybe_unused]] const ssize_t n = ::send(
        c->fd, framed.data(), framed.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
  }

  bool on_writable(Conn* c) {
    const std::uint64_t id = c->id;
    if (!try_flush(c)) return false;
    pump(c);  // may close (and free) the connection
    return conns_.count(id) != 0;
  }

  // ---- the FSM pump -------------------------------------------------------

  /// Advance a connection as far as it can go right now: deliver a finished
  /// sync job, stream subscription events, then serve pipelined request
  /// lines — stopping at backpressure (full write buffer), an unfinished
  /// job, or an empty input queue.
  void pump(Conn* c) {
    const std::uint64_t id = c->id;
    for (;;) {
      if (conns_.count(id) == 0) return;  // closed underneath us
      if (c->mode == Conn::Mode::WaitJob) {
        if (!c->wait_job->terminal()) break;
        Json j = job_to_json(*c->wait_job);
        j.set("ok", Json(true));
        c->wait_job.reset();
        c->mode = Conn::Mode::Idle;
        if (!send_line(c, j.dump())) return;
        continue;
      }
      if (c->mode == Conn::Mode::Stream) {
        if (!pump_stream(c)) return;
        if (c->mode == Conn::Mode::Stream) break;  // waiting on events
        continue;
      }
      // Idle: serve the next pipelined request line.
      if (c->lines.empty()) break;
      if (c->pending_out() >= opts_.write_buffer_cap) break;
      const std::string line = std::move(c->lines.front());
      c->lines.pop_front();
      if (!handle_line(c, line)) return;
    }
    if (c->peer_eof && c->mode == Conn::Mode::Idle && c->lines.empty() &&
        c->pending_out() == 0) {
      close_conn(id);
      return;
    }
    update_interest(c);
  }

  /// Move subscription events into the write buffer. Returns false when the
  /// connection died. Leaves mode == Idle once the terminal event is
  /// queued.
  bool pump_stream(Conn* c) {
    for (;;) {
      if (c->pending_out() >= opts_.write_buffer_cap) return true;
      const bool closed = c->stream_job->progress.closed();
      if (c->throttle_ms > 0 && !closed &&
          SteadyClock::now() < c->next_stream_at) {
        return true;  // housekeeping re-pumps when the throttle expires
      }
      std::string line;
      if (!c->sub.try_next(line)) {
        if (c->sub.finished()) {
          end_stream(c);
        }
        return true;
      }
      c->next_stream_at =
          SteadyClock::now() + std::chrono::milliseconds(c->throttle_ms);
      bool terminal = false;
      line = stamp_terminal_event(line, c->sub.dropped(), &terminal);
      if (!send_line(c, line)) return false;
      if (terminal) {
        end_stream(c);
        return true;
      }
    }
  }

  void end_stream(Conn* c) {
    c->sub.detach();
    c->sub = ProgressChannel::Subscription();
    c->stream_job.reset();
    c->throttle_ms = 0;
    c->mode = Conn::Mode::Idle;
  }

  /// Serve one request line: parse, authenticate, route. Job verbs and
  /// subscribe park the connection in WaitJob/Stream instead of blocking;
  /// everything else dispatches inline. Returns false when the connection
  /// died while writing.
  bool handle_line(Conn* c, const std::string& line) {
    Json request;
    try {
      request = Json::parse(line);
    } catch (const std::exception& e) {
      return send_line(
          c, error_response("bad_request",
                            std::string("parse error: ") + e.what())
                 .dump());
    }
    std::string op;
    if (const Json* v = request.find("op"); v != nullptr && v->is_string()) {
      op = v->as_string();
    }
    if (op == "subscribe") {
      const Json denied = check_auth(service_, request, op, c->ctx);
      if (!denied.is_null()) return send_line(c, denied.dump());
      std::shared_ptr<Job> job;
      Json ack = subscribe_attach(service_, request, &job);
      if (!send_line(c, ack.dump())) return false;
      if (job == nullptr) return true;  // unknown job: error already sent
      c->stream_job = std::move(job);
      c->sub = c->stream_job->progress.subscribe();
      c->throttle_ms = 0;
      if (const Json* t = request.find("throttle_ms");
          t != nullptr && t->is_number()) {
        c->throttle_ms = std::max(0, static_cast<int>(t->as_int64()));
      }
      c->next_stream_at =
          SteadyClock::now() + std::chrono::milliseconds(c->throttle_ms);
      c->mode = Conn::Mode::Stream;
      c->sub.set_notify([q = &ready_, id = c->id] { q->post(id); });
      return true;
    }
    if (is_job_op(op)) {
      const Json denied = check_auth(service_, request, op, c->ctx);
      if (!denied.is_null()) return send_line(c, denied.dump());
      std::shared_ptr<Job> job;
      Json response;
      try {
        response = submit_job_request(service_, request, c->ctx.tenant, &job);
      } catch (const std::exception& e) {
        return send_line(c, error_response("bad_request", e.what()).dump());
      }
      if (job == nullptr) return send_line(c, response.dump());
      // Sync-accepted: answer when the job's progress channel closes (every
      // terminal path closes it), without parking a thread in wait().
      c->wait_job = std::move(job);
      c->mode = Conn::Mode::WaitJob;
      c->wait_job->progress.add_close_hook(
          [q = &ready_, id = c->id] { q->post(id); });
      return true;
    }
    return send_line(c, handle_request(service_, request, c->ctx).dump());
  }

  // ---- timeouts, eviction, close ------------------------------------------

  void housekeeping() {
    const auto now = SteadyClock::now();
    std::vector<std::uint64_t> slow;
    std::vector<std::uint64_t> idle;
    std::vector<std::uint64_t> throttled;
    for (auto& [id, c] : conns_) {
      if (c->pending_out() > 0 && opts_.write_timeout_seconds > 0 &&
          std::chrono::duration<double>(now - c->last_write_progress)
                  .count() >= opts_.write_timeout_seconds) {
        slow.push_back(id);
        continue;
      }
      if (c->mode == Conn::Mode::Idle && c->lines.empty() &&
          c->pending_out() == 0 && opts_.idle_timeout_seconds > 0 &&
          std::chrono::duration<double>(now - c->last_activity).count() >=
              opts_.idle_timeout_seconds) {
        idle.push_back(id);
        continue;
      }
      if (c->mode == Conn::Mode::Stream && c->throttle_ms > 0) {
        throttled.push_back(id);  // re-pump: throttle may have expired
      }
    }
    for (const std::uint64_t id : slow) {
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      service_.frontend.evicted_slow.fetch_add(1, std::memory_order_relaxed);
      evict(it->second.get(), "evicted",
            "client too slow: write stalled past the timeout");
    }
    for (const std::uint64_t id : idle) {
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      service_.frontend.evicted_idle.fetch_add(1, std::memory_order_relaxed);
      evict(it->second.get(), "idle_timeout",
            "connection idle past the timeout");
    }
    for (const std::uint64_t id : throttled) {
      auto it = conns_.find(id);
      if (it != conns_.end()) pump(it->second.get());
    }
  }

  /// Drop a connection with a structured (best-effort) error notice,
  /// cancelling any sync job it was the only waiter of.
  void evict(Conn* c, const char* code, const char* message) {
    if (c->wait_job != nullptr) {
      service_.cancel(c->wait_job->id);  // no one is listening anymore
    }
    send_best_effort(c, error_response(code, message).dump());
    close_conn(c->id);
  }

  void close_conn(std::uint64_t id) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    Conn* c = it->second.get();
    if (c->sub.valid()) c->sub.detach();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
    close_fd(c->fd);
    conns_.erase(it);
    service_.frontend.closed.fetch_add(1, std::memory_order_relaxed);
    service_.frontend.active.fetch_sub(1, std::memory_order_relaxed);
  }

  // ---- drain --------------------------------------------------------------

  /// SIGTERM path: stop accepting, drain the service (all jobs reach a
  /// terminal state and every progress channel closes), render every
  /// parked response, then flush what the peers will accept within a
  /// bounded deadline. Connections, unlike jobs, are expendable at this
  /// point — a peer that will not drain its socket is closed.
  void drain_and_close() {
    if (opts_.verbose) {
      std::fprintf(stderr, "qaoa_serve: draining (queued jobs cancelled, "
                           "running jobs finishing)\n");
    }
    for (int i = 0; i < n_listeners_; ++i) close_fd(listen_fds_[i]);
    n_listeners_ = 0;
    ::unlink(opts_.socket_path.c_str());
    service_.begin_drain();
    service_.shutdown();  // every in-flight job delivers its result

    // Every channel is closed now, so each pump reaches quiescence: parked
    // sync responses render, streams drain to their terminal event
    // (throttles are moot once the channel is closed).
    std::vector<std::uint64_t> ids;
    ids.reserve(conns_.size());
    for (auto& [id, c] : conns_) ids.push_back(id);
    for (const std::uint64_t id : ids) {
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      Conn* c = it->second.get();
      c->throttle_ms = 0;
      pump(c);
    }

    // Bounded flush: give peers a few seconds to take their last bytes.
    const auto deadline = SteadyClock::now() + std::chrono::seconds(5);
    for (;;) {
      std::vector<std::uint64_t> pending;
      for (auto& [id, c] : conns_) {
        if (c->pending_out() > 0 && !c->simulated_stall) pending.push_back(id);
      }
      if (pending.empty() || SteadyClock::now() >= deadline) break;
      for (const std::uint64_t id : pending) {
        auto it = conns_.find(id);
        if (it != conns_.end()) try_flush(it->second.get());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    while (!conns_.empty()) close_conn(conns_.begin()->first);
  }

  Service& service_;
  const DaemonOptions& opts_;
  int signal_rfd_;
  int listen_fds_[2] = {-1, -1};
  int n_listeners_ = 0;
  int epoll_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  ReadyQueue ready_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = kFirstConnId;
  std::uint64_t accept_seq_ = 0;
};

}  // namespace

std::string metrics_document(const Service& service) {
  Json doc = Json::object();
  doc.set("service", stats_to_json(service.stats()));
  doc.set("engine", Json::parse(obs::global_snapshot().to_json()));
  return doc.dump() + "\n";
}

int run_daemon(const DaemonOptions& options) {
  if (options.socket_path.empty()) {
    std::fprintf(stderr, "qaoa_serve: --socket path is required\n");
    return 2;
  }

  ServiceConfig service_config = options.service;
  if (!options.tenants_path.empty()) {
    try {
      service_config.tenants = load_tenant_config(options.tenants_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "qaoa_serve: --tenants: %s\n", e.what());
      return 2;
    }
  }

  int listen_fds[2] = {-1, -1};
  int n_listeners = 0;
  int tcp_port = -1;
  try {
    listen_fds[n_listeners++] = listen_unix(options.socket_path);
    if (options.tcp_port >= 0) {
      listen_fds[n_listeners++] = listen_tcp(options.tcp_port, &tcp_port);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qaoa_serve: %s\n", e.what());
    for (int i = 0; i < n_listeners; ++i) close_fd(listen_fds[i]);
    return 2;
  }

  int signal_pipe[2] = {-1, -1};
  if (::pipe(signal_pipe) != 0) {
    std::fprintf(stderr, "qaoa_serve: pipe: %s\n", std::strerror(errno));
    for (int i = 0; i < n_listeners; ++i) close_fd(listen_fds[i]);
    return 2;
  }
  set_nonblocking(signal_pipe[0], true);
  g_signal_pipe_wr.store(signal_pipe[1], std::memory_order_relaxed);

  struct sigaction sa{};
  sa.sa_handler = daemon_signal_handler;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  int rc = 0;
  {
    // The event loop (and its ReadyQueue) must outlive nothing: worker
    // threads post readiness from progress callbacks until the Service's
    // shutdown() inside drain_and_close() joins them, which happens while
    // the loop object is alive. Service is declared first so it is
    // destroyed last.
    Service service(service_config);

    if (options.verbose) {
      std::fprintf(stderr, "qaoa_serve: listening on %s",
                   options.socket_path.c_str());
      if (tcp_port >= 0) std::fprintf(stderr, " and 127.0.0.1:%d", tcp_port);
      std::fprintf(stderr, " (workers=%d, queue=%zu",
                   service_config.workers, service_config.queue_high_water);
      if (!service_config.tenants.empty()) {
        std::fprintf(stderr, ", tenants=%zu", service_config.tenants.size());
      }
      std::fprintf(stderr, ")\n");
    }

    {
      EventLoop loop(service, options, signal_pipe[0], listen_fds,
                     n_listeners);
      rc = loop.run();
      if (rc != 0) {
        // Setup failure inside the loop: still drain the service cleanly.
        for (int i = 0; i < n_listeners; ++i) close_fd(listen_fds[i]);
        ::unlink(options.socket_path.c_str());
        service.begin_drain();
        service.shutdown();
      }
    }

    if (!options.metrics_path.empty()) {
      try {
        runtime::atomic_write_file(options.metrics_path,
                                   metrics_document(service),
                                   "daemon_metrics");
      } catch (const std::exception& e) {
        std::fprintf(stderr, "qaoa_serve: metrics flush failed: %s\n",
                     e.what());
      }
    }
    if (!options.prometheus_path.empty()) {
      write_prometheus_file(service, options.prometheus_path);
    }
    if (options.verbose && rc == 0) {
      std::fprintf(stderr, "qaoa_serve: drained, bye\n");
    }
  }

  g_signal_pipe_wr.store(-1, std::memory_order_relaxed);
  close_fd(signal_pipe[0]);
  close_fd(signal_pipe[1]);
  return rc;
}

}  // namespace fastqaoa::service
