#pragma once
/// \file job.hpp
/// The service's unit of work: a declarative JobSpec (what to compute), the
/// JobResultData it produces, and the state machine between them.
///
/// Jobs are deliberately self-contained — everything a worker needs is in
/// the spec, every random draw is seeded from the spec, and workers never
/// share mutable state beyond the (immutable) cached plan. That is what
/// makes results worker-count invariant: the same batch of jobs produces
/// bit-identical outputs on a 1-worker and an 8-worker pool, because each
/// job's computation is a pure function of its spec.

#include <cstdint>
#include <string>
#include <vector>

#include "anglefind/strategies.hpp"
#include "runtime/budget.hpp"
#include "service/workload.hpp"

namespace fastqaoa::service {

enum class JobKind : std::uint8_t {
  Evaluate,
  BatchEvaluate,
  Gradient,
  FindAngles,
  Sample,
};

enum class JobState : std::uint8_t {
  Queued,
  Running,
  Done,
  Failed,
  Cancelled,
};

[[nodiscard]] const char* to_string(JobKind kind) noexcept;
[[nodiscard]] const char* to_string(JobState state) noexcept;

/// Full description of one job. Fields beyond (kind, problem, p) apply only
/// to the kinds that read them.
struct JobSpec {
  JobKind kind = JobKind::Evaluate;
  ProblemSpec problem;
  int p = 1;
  bool minimize = false;

  /// Submitting tenant ("" = the default/unconfigured tenant). Set by the
  /// daemon from the connection's authenticated identity; drives fair-share
  /// scheduling, quota accounting, and plan-cache partition charging. Not a
  /// wire field — clients authenticate with a key, never by naming a
  /// tenant directly.
  std::string tenant;

  /// evaluate / gradient / sample: fixed angles, one per round.
  /// batch_evaluate: lane-major angle sets — lane l's betas live at
  /// betas[l*p .. (l+1)*p), likewise gammas; `lanes` angle sets total. The
  /// whole sweep is ONE job: a single admission decision, a single worker,
  /// one evaluate_batch pass through the fused kernels.
  std::vector<double> betas;
  std::vector<double> gammas;

  /// batch_evaluate: number of angle sets carried in betas/gammas.
  int lanes = 0;

  /// sample: number of measurement shots.
  std::uint64_t shots = 1024;

  /// find_angles: search configuration (mirrors FindAnglesOptions).
  int hops = 8;
  int starts = 1;
  std::uint64_t opt_seed = 0x5EED5EED5EEDULL;
  std::string checkpoint;  ///< round-by-round checkpoint file ("" = none)

  /// Per-job budget, enforced via the runtime layer (0 = unlimited).
  double deadline_seconds = 0.0;
  std::size_t max_evaluations = 0;
};

/// Validate a spec end to end (problem fields + kind-specific fields);
/// throws fastqaoa::Error naming the offending field.
void validate_job_spec(const JobSpec& spec);

/// What a finished job carries. Only the fields for the job's kind are
/// meaningful.
struct JobResultData {
  double expectation = 0.0;
  std::vector<double> expectations;             ///< batch_evaluate, per lane
  std::vector<double> grad_betas;               ///< gradient
  std::vector<double> grad_gammas;              ///< gradient
  std::vector<AngleSchedule> schedules;         ///< find_angles
  double shot_estimate = 0.0;                   ///< sample
  double shot_stderr = 0.0;                     ///< sample
  runtime::StopReason stop = runtime::StopReason::None;
  bool cache_hit = false;  ///< plan came from the cache
  double seconds = 0.0;    ///< worker wall-clock for this job

  /// MPS-engine jobs only (mps == true): fidelity proxy and truncation
  /// pressure for the reported expectation (for find_angles: harvested by
  /// re-evaluating the winning schedule once).
  bool mps = false;
  double discarded_weight = 0.0;
  std::uint64_t truncations = 0;
  std::uint64_t max_bond_reached = 0;
};

}  // namespace fastqaoa::service
