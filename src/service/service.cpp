#include "service/service.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "autodiff/adjoint.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "mps/mps_strategies.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sampling/sampler.hpp"
#include "service/json.hpp"

namespace fastqaoa::service {

namespace {

/// retry_after_ms hint for concurrency-quota rejections, where (unlike the
/// token bucket) there is no refill schedule to derive a wait from.
constexpr int kQuotaRetryHintMs = 250;

/// The NDJSON line a `subscribe` stream terminates with (also latched for
/// late watchers of an already-finished job).
std::string terminal_event_json(std::uint64_t id, JobState state,
                                runtime::StopReason stop,
                                const std::string& error) {
  Json j = Json::object();
  j.set("event", Json("done"));
  j.set("id", Json(id));
  j.set("state", Json(to_string(state)));
  j.set("stop_reason", Json(runtime::to_string(stop)));
  if (!error.empty()) j.set("error", Json(error));
  return j.dump();
}

/// Job-distribution samples keyed per kind via the `name|key=value` label
/// convention (the Prometheus renderer splits these back into real labels).
/// The names are dynamic, so this goes through histogram_id() directly —
/// once per job, cold path — instead of the static-id macros.
void record_job_distributions(JobKind kind, double queue_wait_s,
                              double latency_s) {
#ifdef FASTQAOA_PROFILING_ENABLED
  if (obs::metrics_enabled()) {
    obs::hist_global(
        obs::histogram_id(std::string("service.job.latency_seconds|kind=") +
                          to_string(kind)),
        latency_s);
    obs::hist_global(obs::histogram_id("service.job.queue_wait_seconds"),
                     queue_wait_s);
  }
#else
  (void)kind;
  (void)queue_wait_s;
  (void)latency_s;
#endif
}

double bucket_capacity(const TenantConfig& cfg) {
  if (cfg.rate_per_sec <= 0.0) return 0.0;
  return cfg.burst > 0.0 ? cfg.burst : std::max(1.0, cfg.rate_per_sec);
}

}  // namespace

Service::Service(ServiceConfig config)
    : config_(std::move(config)),
      registry_(config_.tenants),
      cache_(PlanCache::Config{config_.cache_bytes}) {
  config_.workers = std::max(1, config_.workers);
  config_.queue_high_water = std::max<std::size_t>(1, config_.queue_high_water);
  config_.shards = std::max(0, config_.shards);
  // Advertise the shard configuration on every metrics snapshot, same as the
  // kernel dispatch layer does for kernel_backend.
  obs::set_global_label("shards", config_.shards == 0
                                      ? std::string("auto")
                                      : std::to_string(config_.shards));

  const auto now = std::chrono::steady_clock::now();
  // Slot 0 is the default (unnamed, quota-free) tenant so multi-tenancy-off
  // deployments schedule exactly like the old single FIFO queue.
  auto def = std::make_unique<TenantState>();
  def->last_refill = now;
  tenant_index_.emplace(std::string{}, 0);
  tenant_states_.push_back(std::move(def));

  double total_weight = 0.0;
  for (const TenantConfig& t : config_.tenants) total_weight += t.weight;
  for (const TenantConfig& t : config_.tenants) {
    auto ts = std::make_unique<TenantState>();
    ts->cfg = t;
    ts->stride = 1.0 / t.weight;
    ts->tokens = bucket_capacity(t);
    ts->last_refill = now;
    tenant_index_.emplace(t.name, tenant_states_.size());
    tenant_states_.push_back(std::move(ts));
    // Partition the plan cache's byte budget by fair-share weight (or the
    // tenant's explicit cache_bytes override) so one tenant's plan churn
    // cannot evict another's working set.
    if (config_.cache_bytes > 0) {
      const std::size_t budget =
          t.cache_bytes > 0
              ? t.cache_bytes
              : static_cast<std::size_t>(
                    static_cast<double>(config_.cache_bytes) * t.weight /
                    total_weight);
      cache_.set_partition_budget(t.name, std::max<std::size_t>(1, budget));
    }
  }

  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Service::~Service() { shutdown(); }

Service::TenantState& Service::tenant_state_locked(const std::string& name) {
  auto it = tenant_index_.find(name);
  if (it != tenant_index_.end()) return *tenant_states_[it->second];
  // First sight of an unconfigured tenant name (in-process embedding):
  // default config, fair weight 1, no quotas. Its pass starts at the
  // current virtual time so it cannot claim "credit" for its idle past.
  auto ts = std::make_unique<TenantState>();
  ts->cfg.name = name;
  ts->pass = global_pass_;
  ts->last_refill = std::chrono::steady_clock::now();
  tenant_index_.emplace(name, tenant_states_.size());
  tenant_states_.push_back(std::move(ts));
  return *tenant_states_.back();
}

Service::SubmitOutcome Service::submit(JobSpec spec) {
  validate_job_spec(spec);
  auto job = std::make_shared<Job>();
  job->spec = std::move(spec);

  std::unique_lock<std::mutex> lock(mu_);
  if (draining_) {
    ++rejected_;
    FASTQAOA_OBS_COUNT_GLOBAL("service.jobs.rejected", 1);
    return SubmitOutcome{nullptr, "draining", total_queued_};
  }
  TenantState& ts = tenant_state_locked(job->spec.tenant);
  // Concurrency quota: queued + running jobs this tenant already owns.
  if (ts.cfg.max_inflight > 0 && ts.inflight >= ts.cfg.max_inflight) {
    ++rejected_;
    ++over_quota_;
    ++ts.rejected;
    ++ts.over_quota;
    FASTQAOA_OBS_COUNT_GLOBAL("service.jobs.rejected", 1);
    return SubmitOutcome{nullptr, "over_quota", total_queued_,
                         kQuotaRetryHintMs};
  }
  // Rate quota (token bucket). Checked before the global high-water mark so
  // the retry hint reflects the tenant's own refill schedule; the token is
  // only consumed once the job is actually admitted.
  if (ts.cfg.rate_per_sec > 0.0) {
    const auto now = std::chrono::steady_clock::now();
    const double dt =
        std::chrono::duration<double>(now - ts.last_refill).count();
    ts.tokens = std::min(bucket_capacity(ts.cfg),
                         ts.tokens + dt * ts.cfg.rate_per_sec);
    ts.last_refill = now;
    if (ts.tokens < 1.0) {
      ++rejected_;
      ++over_quota_;
      ++ts.rejected;
      ++ts.over_quota;
      FASTQAOA_OBS_COUNT_GLOBAL("service.jobs.rejected", 1);
      const double wait_s = (1.0 - ts.tokens) / ts.cfg.rate_per_sec;
      const int retry_ms = std::max(
          1, static_cast<int>(std::ceil(wait_s * 1000.0)));
      return SubmitOutcome{nullptr, "over_quota", total_queued_, retry_ms};
    }
  }
  if (total_queued_ >= config_.queue_high_water) {
    ++rejected_;
    ++ts.rejected;
    FASTQAOA_OBS_COUNT_GLOBAL("service.jobs.rejected", 1);
    return SubmitOutcome{nullptr, "overloaded", total_queued_};
  }
  if (ts.cfg.rate_per_sec > 0.0) ts.tokens -= 1.0;

  job->id = next_id_++;
  job->progress.configure(config_.subscriber_queue_cap, &subscribe_dropped_);
  job->enqueued_at = std::chrono::steady_clock::now();
  jobs_.emplace(job->id, job);
  // A tenant going from idle to busy re-enters the stride schedule at the
  // current virtual time: it competes fairly from now on instead of
  // draining an unbounded backlog of "owed" service.
  if (ts.queue.empty()) ts.pass = std::max(ts.pass, global_pass_);
  ts.queue.push_back(job);
  ++total_queued_;
  ++ts.inflight;
  ++ts.submitted;
  ++submitted_;
  queue_depth_hist_.add(static_cast<double>(total_queued_));
  FASTQAOA_OBS_COUNT_GLOBAL("service.jobs.submitted", 1);
  const std::size_t depth = total_queued_;
  lock.unlock();
  work_cv_.notify_one();
  return SubmitOutcome{std::move(job), "", depth};
}

std::shared_ptr<Job> Service::find(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

bool Service::cancel(std::uint64_t id) {
  std::shared_ptr<Job> job = find(id);
  if (job == nullptr) return false;
  bool was_queued = false;
  {
    std::lock_guard<std::mutex> lock(job->mu);
    switch (job->state) {
      case JobState::Queued:
        job->state = JobState::Cancelled;
        job->result.stop = runtime::StopReason::Cancelled;
        was_queued = true;
        break;
      case JobState::Running:
        job->cancel.request_stop();
        break;
      default:
        return false;  // already terminal
    }
  }
  job->cv.notify_all();
  if (was_queued) {
    job->progress.close(terminal_event_json(job->id, JobState::Cancelled,
                                            runtime::StopReason::Cancelled,
                                            /*error=*/""));
    std::lock_guard<std::mutex> lock(mu_);
    ++cancelled_;
    FASTQAOA_OBS_COUNT_GLOBAL("service.jobs.cancelled", 1);
  }
  return true;
}

void Service::wait(Job& job) {
  std::unique_lock<std::mutex> lock(job.mu);
  job.cv.wait(lock, [&job] {
    return job.state == JobState::Done || job.state == JobState::Failed ||
           job.state == JobState::Cancelled;
  });
}

ServiceStats Service::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.queue_depth = total_queued_;
    s.running = running_;
    s.workers = config_.workers;
    s.shards = config_.shards;
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed = failed_;
    s.cancelled = cancelled_;
    s.rejected = rejected_;
    s.over_quota = over_quota_;
    s.batch_jobs = batch_jobs_;
    s.batched_evals = batched_evals_;
    s.subscribe_dropped =
        subscribe_dropped_.load(std::memory_order_relaxed);
    s.draining = draining_;
    s.queue_depth_hist = queue_depth_hist_;
    for (const auto& tsp : tenant_states_) {
      const TenantState& ts = *tsp;
      // The default slot only shows up once it has actually been used, so
      // single-tenant deployments don't render a phantom tenant.
      if (ts.cfg.name.empty() && ts.submitted == 0 && ts.rejected == 0) {
        continue;
      }
      ServiceStats::TenantStats t;
      t.name = ts.cfg.name.empty() ? "default" : ts.cfg.name;
      t.weight = ts.cfg.weight;
      t.queued = ts.queue.size();
      t.running = ts.running;
      t.submitted = ts.submitted;
      t.completed = ts.completed;
      t.rejected = ts.rejected;
      t.over_quota = ts.over_quota;
      s.tenants.push_back(std::move(t));
    }
  }
  s.plan_cache = cache_.stats();
  s.frontend.accepted = frontend.accepted.load(std::memory_order_relaxed);
  s.frontend.closed = frontend.closed.load(std::memory_order_relaxed);
  s.frontend.evicted_slow =
      frontend.evicted_slow.load(std::memory_order_relaxed);
  s.frontend.evicted_idle =
      frontend.evicted_idle.load(std::memory_order_relaxed);
  s.frontend.evicted_oversize =
      frontend.evicted_oversize.load(std::memory_order_relaxed);
  s.frontend.rejected_conn_limit =
      frontend.rejected_conn_limit.load(std::memory_order_relaxed);
  s.frontend.shed_fd_pressure =
      frontend.shed_fd_pressure.load(std::memory_order_relaxed);
  s.frontend.auth_failures =
      frontend.auth_failures.load(std::memory_order_relaxed);
  s.frontend.active = frontend.active.load(std::memory_order_relaxed);
  return s;
}

bool Service::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

void Service::begin_drain() {
  std::vector<std::shared_ptr<Job>> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    all.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) all.push_back(job);
  }
  std::uint64_t newly_cancelled = 0;
  for (const auto& job : all) {
    bool was_queued = false;
    {
      std::lock_guard<std::mutex> lock(job->mu);
      if (job->state == JobState::Queued) {
        job->state = JobState::Cancelled;
        job->result.stop = runtime::StopReason::Cancelled;
        was_queued = true;
      } else if (job->state == JobState::Running) {
        // Fast jobs finish; budget-polled searches stop at the next
        // iteration and deliver (and checkpoint) best-so-far results.
        job->cancel.request_stop();
      }
    }
    if (was_queued) {
      job->cv.notify_all();
      job->progress.close(terminal_event_json(job->id, JobState::Cancelled,
                                              runtime::StopReason::Cancelled,
                                              /*error=*/""));
      ++newly_cancelled;
    }
  }
  if (newly_cancelled > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ += newly_cancelled;
    FASTQAOA_OBS_COUNT_GLOBAL("service.jobs.cancelled", newly_cancelled);
  }
  work_cv_.notify_all();
}

void Service::shutdown() {
  begin_drain();
  bool join_here = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    if (!joined_) {
      joined_ = true;
      join_here = true;
    }
  }
  work_cv_.notify_all();
  if (join_here) {
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
  }
}

std::shared_ptr<Job> Service::pop_next_locked() {
  // Stride scheduling: serve the eligible tenant with the smallest pass,
  // then advance its pass by 1/weight. Ties keep the earliest-created
  // tenant (config order), so the schedule is fully deterministic.
  TenantState* best = nullptr;
  for (const auto& tsp : tenant_states_) {
    if (tsp->queue.empty()) continue;
    if (best == nullptr || tsp->pass < best->pass) best = tsp.get();
  }
  if (best == nullptr) return nullptr;
  std::shared_ptr<Job> job = best->queue.front();
  best->queue.pop_front();
  --total_queued_;
  global_pass_ = best->pass;
  best->pass += best->stride;
  return job;
}

void Service::worker_loop() {
  EvalWorkspace ws;  // reused across jobs; buffers grow to the largest plan
  ws.shards = config_.shards;
  mps::MpsWorkspace mws;  // MPS-engine jobs' per-worker state
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || total_queued_ > 0; });
      if (total_queued_ == 0) {
        if (stop_) return;
        continue;
      }
      job = pop_next_locked();
      if (job == nullptr) continue;
      TenantState& ts = tenant_state_locked(job->spec.tenant);
      ++running_;
      ++ts.running;
    }
    run_job(*job, ws, mws);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      TenantState& ts = tenant_state_locked(job->spec.tenant);
      --ts.running;
      --ts.inflight;
    }
    FASTQAOA_OBS_MERGE_GLOBAL(ws.metrics);
    ws.metrics.clear();
    FASTQAOA_OBS_MERGE_GLOBAL(mws.metrics);
    mws.metrics.clear();
  }
}

void Service::run_job(Job& job, EvalWorkspace& ws, mps::MpsWorkspace& mws) {
  {
    std::lock_guard<std::mutex> lock(job.mu);
    if (job.state != JobState::Queued) return;  // cancelled while queued
    job.state = JobState::Running;
  }
  const double queue_wait_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    job.enqueued_at)
          .count();
  FASTQAOA_TRACE_SPAN_ID("service.job", job.id);

  WallTimer timer;
  JobResultData out;
  JobState final_state = JobState::Done;
  std::string error;
  try {
    execute(job, ws, mws, out);
    if (out.stop == runtime::StopReason::Cancelled) {
      final_state = JobState::Cancelled;
    }
  } catch (const std::exception& e) {
    final_state = JobState::Failed;
    error = e.what();
  }
  out.seconds = timer.seconds();
  FASTQAOA_OBS_TIME_GLOBAL("service.job_seconds", out.seconds);
  record_job_distributions(job.spec.kind, queue_wait_s, out.seconds);

  // Count the outcome *before* publishing the terminal state: a waiter
  // released by the notify below must already see consistent stats().
  {
    std::lock_guard<std::mutex> lock(mu_);
    TenantState& ts = tenant_state_locked(job.spec.tenant);
    switch (final_state) {
      case JobState::Done:
        ++completed_;
        ++ts.completed;
        FASTQAOA_OBS_COUNT_GLOBAL("service.jobs.completed", 1);
        break;
      case JobState::Failed:
        ++failed_;
        FASTQAOA_OBS_COUNT_GLOBAL("service.jobs.failed", 1);
        break;
      case JobState::Cancelled:
        ++cancelled_;
        FASTQAOA_OBS_COUNT_GLOBAL("service.jobs.cancelled", 1);
        break;
      default:
        break;
    }
  }

  const runtime::StopReason final_stop = out.stop;
  const std::string terminal_line =
      terminal_event_json(job.id, final_state, final_stop, error);
  {
    std::lock_guard<std::mutex> lock(job.mu);
    job.result = std::move(out);
    job.error = std::move(error);
    job.state = final_state;
  }
  job.cv.notify_all();
  job.progress.close(terminal_line);
}

void Service::execute(Job& job, EvalWorkspace& ws, mps::MpsWorkspace& mws,
                      JobResultData& out) {
  if (job.spec.problem.uses_mps()) {
    execute_mps(job, mws, out);
    return;
  }
  const JobSpec& spec = job.spec;
  const StateSpace space = problem_space(spec.problem);
  dvec obj_vals = build_objective(spec.problem, space);

  PlanKeyMaterial material;
  material.mixer_kind = spec.problem.mixer;
  material.n = spec.problem.n;
  material.k = spec.problem.effective_k();
  material.rounds = spec.p;
  material.obj_vals = obj_vals;

  bool built_here = false;
  const PlanHandle cached =
      cache_.get_or_build(material, spec.tenant, [&]() -> CachedPlan {
        built_here = true;
        WallTimer build_timer;
        CachedPlan entry;
        entry.mixer = build_mixer(spec.problem, space, config_.cache_dir);
        entry.plan = std::make_shared<const QaoaPlan>(
            *entry.mixer, std::move(obj_vals), spec.p);
        FASTQAOA_OBS_HIST_GLOBAL("service.plan_cache.build_seconds",
                                 build_timer.seconds());
        return entry;
      });
  out.cache_hit = !built_here;
  const QaoaPlan& plan = *cached->plan;
  const Direction direction =
      spec.minimize ? Direction::Minimize : Direction::Maximize;

  switch (spec.kind) {
    case JobKind::Evaluate: {
      out.expectation = evaluate(plan, ws, spec.betas, spec.gammas);
      break;
    }
    case JobKind::BatchEvaluate: {
      // The whole sweep runs on this one worker through evaluate_batch's
      // fused kernels (one admission decision bought the whole thing).
      // Per-lane values are bit-identical to lane-by-lane evaluate().
      out.expectations.resize(static_cast<std::size_t>(spec.lanes));
      evaluate_batch(plan, ws, spec.betas, spec.gammas, out.expectations);
      // Headline expectation = the sweep's best lane under the requested
      // direction (first such lane on ties).
      out.expectation = out.expectations[0];
      for (const double e : out.expectations) {
        if (spec.minimize ? e < out.expectation : e > out.expectation) {
          out.expectation = e;
        }
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++batch_jobs_;
        batched_evals_ += static_cast<std::uint64_t>(spec.lanes);
      }
      FASTQAOA_OBS_COUNT_GLOBAL("service.jobs.batched_evals",
                                static_cast<std::uint64_t>(spec.lanes));
      FASTQAOA_OBS_HIST_GLOBAL("service.batch.width",
                               static_cast<double>(spec.lanes));
      break;
    }
    case JobKind::Gradient: {
      out.grad_betas.resize(spec.betas.size());
      out.grad_gammas.resize(spec.gammas.size());
      out.expectation = adjoint_value_and_gradient(
          plan, ws, spec.betas, spec.gammas, out.grad_betas, out.grad_gammas);
      break;
    }
    case JobKind::Sample: {
      out.expectation = evaluate(plan, ws, spec.betas, spec.gammas);
      MeasurementSampler sampler(ws.psi);
      // Deterministic per-job shot stream: seeded from the spec, never from
      // worker identity, so results are worker-count invariant.
      Rng shot_rng(spec.opt_seed ^ 0xABCDEFULL);
      out.shot_estimate = sampler.estimate_expectation(plan.objective(),
                                                       spec.shots, shot_rng);
      out.shot_stderr = sampler.standard_error(plan.objective(), spec.shots);
      break;
    }
    case JobKind::FindAngles: {
      FindAnglesOptions opt;
      opt.direction = direction;
      opt.seed = spec.opt_seed;
      opt.hopping.hops = spec.hops;
      opt.parallel_starts = spec.starts;
      opt.checkpoint_file = spec.checkpoint;
      opt.budget.wall_seconds = spec.deadline_seconds;
      opt.budget.max_evaluations = spec.max_evaluations;
      opt.budget.cancel = &job.cancel;
      // Per-round progress events for `subscribe`. on_round runs on this
      // worker thread, outside any parallel region; publish() never blocks
      // (slow subscribers drop their oldest events instead).
      WallTimer search_elapsed;
      opt.on_round = [&job, &search_elapsed](const AngleSchedule& s,
                                             double seconds) {
        Json ev = Json::object();
        ev.set("event", Json("round"));
        ev.set("id", Json(job.id));
        ev.set("p", Json(s.p));
        ev.set("best_energy", Json(s.expectation));
        ev.set("evals", Json(static_cast<std::uint64_t>(s.evaluations)));
        ev.set("optimizer_calls",
               Json(static_cast<std::uint64_t>(s.optimizer_calls)));
        ev.set("round_seconds", Json(seconds));
        ev.set("elapsed_seconds", Json(search_elapsed.seconds()));
        if (s.stop_reason != runtime::StopReason::None) {
          ev.set("stop_reason", Json(runtime::to_string(s.stop_reason)));
        }
        job.progress.publish(ev.dump());
      };
      out.schedules =
          find_angles(*cached->mixer, plan.objective(), spec.p, opt);
      if (!out.schedules.empty()) {
        out.expectation = out.schedules.back().expectation;
        out.stop = out.schedules.back().stop_reason;
      }
      if (job.cancel.stop_requested()) {
        out.stop = runtime::StopReason::Cancelled;
      }
      break;
    }
  }
}

void Service::execute_mps(Job& job, mps::MpsWorkspace& mws,
                          JobResultData& out) {
  const JobSpec& spec = job.spec;
  out.mps = true;

  mps::DiagonalHamiltonian h = build_mps_hamiltonian(spec.problem);
  // Flatten the term list as the fingerprint content — the MPS analogue of
  // hashing the exact engine's objective table. Deterministic per spec
  // (the generator's draw order is fixed), and disjoint from exact-engine
  // fingerprints via the engine tag.
  std::vector<double> key;
  key.reserve(1 + 2 * h.z_terms.size() + 3 * h.zz_terms.size());
  key.push_back(h.constant);
  for (const mps::ZTerm& t : h.z_terms) {
    key.push_back(static_cast<double>(t.site));
    key.push_back(t.coeff);
  }
  for (const mps::ZZTerm& t : h.zz_terms) {
    key.push_back(static_cast<double>(t.u));
    key.push_back(static_cast<double>(t.v));
    key.push_back(t.coeff);
  }
  const std::string engine_tag = engine_cache_tag(spec.problem);

  PlanKeyMaterial material;
  material.mixer_kind = spec.problem.mixer;
  material.n = spec.problem.n;
  material.k = -1;
  material.rounds = spec.p;
  material.obj_vals = key;
  material.engine = engine_tag;

  bool built_here = false;
  const PlanHandle cached =
      cache_.get_or_build(material, spec.tenant, [&]() -> CachedPlan {
        built_here = true;
        WallTimer build_timer;
        CachedPlan entry;
        entry.mps_plan = std::make_shared<const mps::MpsPlan>(
            std::move(h), mps_options(spec.problem));
        FASTQAOA_OBS_HIST_GLOBAL("service.plan_cache.build_seconds",
                                 build_timer.seconds());
        return entry;
      });
  out.cache_hit = !built_here;
  const mps::MpsPlan& plan = *cached->mps_plan;

  const auto harvest_stats = [&out, &mws] {
    out.discarded_weight = mws.stats.discarded_weight;
    out.truncations = mws.stats.truncations;
    out.max_bond_reached = static_cast<std::uint64_t>(mws.stats.max_bond_reached);
  };

  switch (spec.kind) {
    case JobKind::Evaluate: {
      runtime::RunBudget budget;
      budget.wall_seconds = spec.deadline_seconds;
      budget.max_evaluations = spec.max_evaluations;
      budget.cancel = &job.cancel;
      const runtime::BudgetTracker tracker(budget);
      mws.tracker = &tracker;
      out.expectation = mps::evaluate(plan, mws, spec.betas, spec.gammas);
      mws.tracker = nullptr;
      harvest_stats();
      if (mws.interrupted) out.stop = tracker.check();
      break;
    }
    case JobKind::FindAngles: {
      FindAnglesOptions opt;
      opt.direction =
          spec.minimize ? Direction::Minimize : Direction::Maximize;
      opt.seed = spec.opt_seed;
      opt.hopping.hops = spec.hops;
      opt.parallel_starts = spec.starts;
      opt.checkpoint_file = spec.checkpoint;
      opt.budget.wall_seconds = spec.deadline_seconds;
      opt.budget.max_evaluations = spec.max_evaluations;
      opt.budget.cancel = &job.cancel;
      WallTimer search_elapsed;
      opt.on_round = [&job, &search_elapsed](const AngleSchedule& s,
                                             double seconds) {
        Json ev = Json::object();
        ev.set("event", Json("round"));
        ev.set("id", Json(job.id));
        ev.set("p", Json(s.p));
        ev.set("best_energy", Json(s.expectation));
        ev.set("evals", Json(static_cast<std::uint64_t>(s.evaluations)));
        ev.set("optimizer_calls",
               Json(static_cast<std::uint64_t>(s.optimizer_calls)));
        ev.set("round_seconds", Json(seconds));
        ev.set("elapsed_seconds", Json(search_elapsed.seconds()));
        if (s.stop_reason != runtime::StopReason::None) {
          ev.set("stop_reason", Json(runtime::to_string(s.stop_reason)));
        }
        job.progress.publish(ev.dump());
      };
      out.schedules = mps::find_angles_mps(plan, spec.p, opt);
      if (!out.schedules.empty()) {
        const AngleSchedule& best = out.schedules.back();
        out.expectation = best.expectation;
        out.stop = best.stop_reason;
        // One extra evaluation of the winning schedule harvests the
        // fidelity proxy for the reported result (skipped when cancelled —
        // a cancelled search should not burn more worker time).
        if (!job.cancel.stop_requested()) {
          mws.tracker = nullptr;
          mps::evaluate(plan, mws, best.betas, best.gammas);
          harvest_stats();
        }
      }
      if (job.cancel.stop_requested()) {
        out.stop = runtime::StopReason::Cancelled;
      }
      break;
    }
    default:
      FASTQAOA_CHECK(false, "engine 'mps' supports evaluate and find_angles only");
  }
}

}  // namespace fastqaoa::service
