#include "service/service.hpp"

#include <algorithm>
#include <utility>

#include "autodiff/adjoint.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sampling/sampler.hpp"
#include "service/json.hpp"

namespace fastqaoa::service {

namespace {

/// The NDJSON line a `subscribe` stream terminates with (also latched for
/// late watchers of an already-finished job).
std::string terminal_event_json(std::uint64_t id, JobState state,
                                runtime::StopReason stop,
                                const std::string& error) {
  Json j = Json::object();
  j.set("event", Json("done"));
  j.set("id", Json(id));
  j.set("state", Json(to_string(state)));
  j.set("stop_reason", Json(runtime::to_string(stop)));
  if (!error.empty()) j.set("error", Json(error));
  return j.dump();
}

/// Job-distribution samples keyed per kind via the `name|key=value` label
/// convention (the Prometheus renderer splits these back into real labels).
/// The names are dynamic, so this goes through histogram_id() directly —
/// once per job, cold path — instead of the static-id macros.
void record_job_distributions(JobKind kind, double queue_wait_s,
                              double latency_s) {
#ifdef FASTQAOA_PROFILING_ENABLED
  if (obs::metrics_enabled()) {
    obs::hist_global(
        obs::histogram_id(std::string("service.job.latency_seconds|kind=") +
                          to_string(kind)),
        latency_s);
    obs::hist_global(obs::histogram_id("service.job.queue_wait_seconds"),
                     queue_wait_s);
  }
#else
  (void)kind;
  (void)queue_wait_s;
  (void)latency_s;
#endif
}

}  // namespace

Service::Service(ServiceConfig config)
    : config_(std::move(config)), cache_(PlanCache::Config{config_.cache_bytes}) {
  config_.workers = std::max(1, config_.workers);
  config_.queue_high_water = std::max<std::size_t>(1, config_.queue_high_water);
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Service::~Service() { shutdown(); }

Service::SubmitOutcome Service::submit(JobSpec spec) {
  validate_job_spec(spec);
  auto job = std::make_shared<Job>();
  job->spec = std::move(spec);

  std::unique_lock<std::mutex> lock(mu_);
  if (draining_) {
    ++rejected_;
    FASTQAOA_OBS_COUNT_GLOBAL("service.jobs.rejected", 1);
    return SubmitOutcome{nullptr, "draining", queue_.size()};
  }
  if (queue_.size() >= config_.queue_high_water) {
    ++rejected_;
    FASTQAOA_OBS_COUNT_GLOBAL("service.jobs.rejected", 1);
    return SubmitOutcome{nullptr, "overloaded", queue_.size()};
  }
  job->id = next_id_++;
  job->progress.configure(config_.subscriber_queue_cap, &subscribe_dropped_);
  job->enqueued_at = std::chrono::steady_clock::now();
  jobs_.emplace(job->id, job);
  queue_.push_back(job);
  ++submitted_;
  FASTQAOA_OBS_COUNT_GLOBAL("service.jobs.submitted", 1);
  const std::size_t depth = queue_.size();
  lock.unlock();
  work_cv_.notify_one();
  return SubmitOutcome{std::move(job), "", depth};
}

std::shared_ptr<Job> Service::find(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

bool Service::cancel(std::uint64_t id) {
  std::shared_ptr<Job> job = find(id);
  if (job == nullptr) return false;
  bool was_queued = false;
  {
    std::lock_guard<std::mutex> lock(job->mu);
    switch (job->state) {
      case JobState::Queued:
        job->state = JobState::Cancelled;
        job->result.stop = runtime::StopReason::Cancelled;
        was_queued = true;
        break;
      case JobState::Running:
        job->cancel.request_stop();
        break;
      default:
        return false;  // already terminal
    }
  }
  job->cv.notify_all();
  if (was_queued) {
    job->progress.close(terminal_event_json(job->id, JobState::Cancelled,
                                            runtime::StopReason::Cancelled,
                                            /*error=*/""));
    std::lock_guard<std::mutex> lock(mu_);
    ++cancelled_;
    FASTQAOA_OBS_COUNT_GLOBAL("service.jobs.cancelled", 1);
  }
  return true;
}

void Service::wait(Job& job) {
  std::unique_lock<std::mutex> lock(job.mu);
  job.cv.wait(lock, [&job] {
    return job.state == JobState::Done || job.state == JobState::Failed ||
           job.state == JobState::Cancelled;
  });
}

ServiceStats Service::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.queue_depth = queue_.size();
    s.running = running_;
    s.workers = config_.workers;
    s.submitted = submitted_;
    s.completed = completed_;
    s.failed = failed_;
    s.cancelled = cancelled_;
    s.rejected = rejected_;
    s.batch_jobs = batch_jobs_;
    s.batched_evals = batched_evals_;
    s.subscribe_dropped =
        subscribe_dropped_.load(std::memory_order_relaxed);
    s.draining = draining_;
  }
  s.plan_cache = cache_.stats();
  return s;
}

bool Service::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

void Service::begin_drain() {
  std::vector<std::shared_ptr<Job>> all;
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    all.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) all.push_back(job);
  }
  std::uint64_t newly_cancelled = 0;
  for (const auto& job : all) {
    bool was_queued = false;
    {
      std::lock_guard<std::mutex> lock(job->mu);
      if (job->state == JobState::Queued) {
        job->state = JobState::Cancelled;
        job->result.stop = runtime::StopReason::Cancelled;
        was_queued = true;
      } else if (job->state == JobState::Running) {
        // Fast jobs finish; budget-polled searches stop at the next
        // iteration and deliver (and checkpoint) best-so-far results.
        job->cancel.request_stop();
      }
    }
    if (was_queued) {
      job->cv.notify_all();
      job->progress.close(terminal_event_json(job->id, JobState::Cancelled,
                                              runtime::StopReason::Cancelled,
                                              /*error=*/""));
      ++newly_cancelled;
    }
  }
  if (newly_cancelled > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_ += newly_cancelled;
    FASTQAOA_OBS_COUNT_GLOBAL("service.jobs.cancelled", newly_cancelled);
  }
  work_cv_.notify_all();
}

void Service::shutdown() {
  begin_drain();
  bool join_here = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    if (!joined_) {
      joined_ = true;
      join_here = true;
    }
  }
  work_cv_.notify_all();
  if (join_here) {
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
  }
}

void Service::worker_loop() {
  EvalWorkspace ws;  // reused across jobs; buffers grow to the largest plan
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      job = queue_.front();
      queue_.pop_front();
      ++running_;
    }
    run_job(*job, ws);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
    }
    FASTQAOA_OBS_MERGE_GLOBAL(ws.metrics);
    ws.metrics.clear();
  }
}

void Service::run_job(Job& job, EvalWorkspace& ws) {
  {
    std::lock_guard<std::mutex> lock(job.mu);
    if (job.state != JobState::Queued) return;  // cancelled while queued
    job.state = JobState::Running;
  }
  const double queue_wait_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    job.enqueued_at)
          .count();
  FASTQAOA_TRACE_SPAN_ID("service.job", job.id);

  WallTimer timer;
  JobResultData out;
  JobState final_state = JobState::Done;
  std::string error;
  try {
    execute(job, ws, out);
    if (out.stop == runtime::StopReason::Cancelled) {
      final_state = JobState::Cancelled;
    }
  } catch (const std::exception& e) {
    final_state = JobState::Failed;
    error = e.what();
  }
  out.seconds = timer.seconds();
  FASTQAOA_OBS_TIME_GLOBAL("service.job_seconds", out.seconds);
  record_job_distributions(job.spec.kind, queue_wait_s, out.seconds);

  // Count the outcome *before* publishing the terminal state: a waiter
  // released by the notify below must already see consistent stats().
  {
    std::lock_guard<std::mutex> lock(mu_);
    switch (final_state) {
      case JobState::Done:
        ++completed_;
        FASTQAOA_OBS_COUNT_GLOBAL("service.jobs.completed", 1);
        break;
      case JobState::Failed:
        ++failed_;
        FASTQAOA_OBS_COUNT_GLOBAL("service.jobs.failed", 1);
        break;
      case JobState::Cancelled:
        ++cancelled_;
        FASTQAOA_OBS_COUNT_GLOBAL("service.jobs.cancelled", 1);
        break;
      default:
        break;
    }
  }

  const runtime::StopReason final_stop = out.stop;
  const std::string terminal_line =
      terminal_event_json(job.id, final_state, final_stop, error);
  {
    std::lock_guard<std::mutex> lock(job.mu);
    job.result = std::move(out);
    job.error = std::move(error);
    job.state = final_state;
  }
  job.cv.notify_all();
  job.progress.close(terminal_line);
}

void Service::execute(Job& job, EvalWorkspace& ws, JobResultData& out) {
  const JobSpec& spec = job.spec;
  const StateSpace space = problem_space(spec.problem);
  dvec obj_vals = build_objective(spec.problem, space);

  PlanKeyMaterial material;
  material.mixer_kind = spec.problem.mixer;
  material.n = spec.problem.n;
  material.k = spec.problem.effective_k();
  material.rounds = spec.p;
  material.obj_vals = obj_vals;

  bool built_here = false;
  const PlanHandle cached =
      cache_.get_or_build(material, [&]() -> CachedPlan {
        built_here = true;
        WallTimer build_timer;
        CachedPlan entry;
        entry.mixer = build_mixer(spec.problem, space, config_.cache_dir);
        entry.plan = std::make_shared<const QaoaPlan>(
            *entry.mixer, std::move(obj_vals), spec.p);
        FASTQAOA_OBS_HIST_GLOBAL("service.plan_cache.build_seconds",
                                 build_timer.seconds());
        return entry;
      });
  out.cache_hit = !built_here;
  const QaoaPlan& plan = *cached->plan;
  const Direction direction =
      spec.minimize ? Direction::Minimize : Direction::Maximize;

  switch (spec.kind) {
    case JobKind::Evaluate: {
      out.expectation = evaluate(plan, ws, spec.betas, spec.gammas);
      break;
    }
    case JobKind::BatchEvaluate: {
      // The whole sweep runs on this one worker through evaluate_batch's
      // fused kernels (one admission decision bought the whole thing).
      // Per-lane values are bit-identical to lane-by-lane evaluate().
      out.expectations.resize(static_cast<std::size_t>(spec.lanes));
      evaluate_batch(plan, ws, spec.betas, spec.gammas, out.expectations);
      // Headline expectation = the sweep's best lane under the requested
      // direction (first such lane on ties).
      out.expectation = out.expectations[0];
      for (const double e : out.expectations) {
        if (spec.minimize ? e < out.expectation : e > out.expectation) {
          out.expectation = e;
        }
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++batch_jobs_;
        batched_evals_ += static_cast<std::uint64_t>(spec.lanes);
      }
      FASTQAOA_OBS_COUNT_GLOBAL("service.jobs.batched_evals",
                                static_cast<std::uint64_t>(spec.lanes));
      FASTQAOA_OBS_HIST_GLOBAL("service.batch.width",
                               static_cast<double>(spec.lanes));
      break;
    }
    case JobKind::Gradient: {
      out.grad_betas.resize(spec.betas.size());
      out.grad_gammas.resize(spec.gammas.size());
      out.expectation = adjoint_value_and_gradient(
          plan, ws, spec.betas, spec.gammas, out.grad_betas, out.grad_gammas);
      break;
    }
    case JobKind::Sample: {
      out.expectation = evaluate(plan, ws, spec.betas, spec.gammas);
      MeasurementSampler sampler(ws.psi);
      // Deterministic per-job shot stream: seeded from the spec, never from
      // worker identity, so results are worker-count invariant.
      Rng shot_rng(spec.opt_seed ^ 0xABCDEFULL);
      out.shot_estimate = sampler.estimate_expectation(plan.objective(),
                                                       spec.shots, shot_rng);
      out.shot_stderr = sampler.standard_error(plan.objective(), spec.shots);
      break;
    }
    case JobKind::FindAngles: {
      FindAnglesOptions opt;
      opt.direction = direction;
      opt.seed = spec.opt_seed;
      opt.hopping.hops = spec.hops;
      opt.parallel_starts = spec.starts;
      opt.checkpoint_file = spec.checkpoint;
      opt.budget.wall_seconds = spec.deadline_seconds;
      opt.budget.max_evaluations = spec.max_evaluations;
      opt.budget.cancel = &job.cancel;
      // Per-round progress events for `subscribe`. on_round runs on this
      // worker thread, outside any parallel region; publish() never blocks
      // (slow subscribers drop their oldest events instead).
      WallTimer search_elapsed;
      opt.on_round = [&job, &search_elapsed](const AngleSchedule& s,
                                             double seconds) {
        Json ev = Json::object();
        ev.set("event", Json("round"));
        ev.set("id", Json(job.id));
        ev.set("p", Json(s.p));
        ev.set("best_energy", Json(s.expectation));
        ev.set("evals", Json(static_cast<std::uint64_t>(s.evaluations)));
        ev.set("optimizer_calls",
               Json(static_cast<std::uint64_t>(s.optimizer_calls)));
        ev.set("round_seconds", Json(seconds));
        ev.set("elapsed_seconds", Json(search_elapsed.seconds()));
        if (s.stop_reason != runtime::StopReason::None) {
          ev.set("stop_reason", Json(runtime::to_string(s.stop_reason)));
        }
        job.progress.publish(ev.dump());
      };
      out.schedules =
          find_angles(*cached->mixer, plan.objective(), spec.p, opt);
      if (!out.schedules.empty()) {
        out.expectation = out.schedules.back().expectation;
        out.stop = out.schedules.back().stop_reason;
      }
      if (job.cancel.stop_requested()) {
        out.stop = runtime::StopReason::Cancelled;
      }
      break;
    }
  }
}

}  // namespace fastqaoa::service
