#pragma once
/// \file workload.hpp
/// Deterministic problem/mixer construction from a declarative spec.
///
/// The service builds workloads server-side: a request names a generator
/// ("maxcut on Erdős–Rényi, n=10, seed=42"), not a table, so requests stay
/// small and every rebuild is bit-identical. This mirrors qaoa_cli's
/// generator wiring exactly — one Rng seeded from instance_seed, consumed
/// in the same order — so a served result can be cross-checked against a
/// direct library call with operator==. Tests rely on that.

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hpp"
#include "mixers/mixer.hpp"
#include "problems/state_space.hpp"

namespace fastqaoa::service {

/// What to simulate: a named generator plus its parameters.
struct ProblemSpec {
  std::string problem = "maxcut";  ///< maxcut|ksat|densest|vertexcover|partition
  std::string mixer = "tf";        ///< tf|grover|clique|ring
  int n = 8;
  int k = -1;  ///< Hamming weight for constrained mixers (< 0 = n/2)
  double density = 6.0;            ///< k-SAT clause density
  std::uint64_t instance_seed = 42;

  /// Hamming weight actually used (k, defaulted to n/2 for constrained
  /// mixers; -1 for unconstrained ones — part of the cache key).
  [[nodiscard]] int effective_k() const noexcept;
};

/// Whether `mixer` restricts the feasible set to a Dicke subspace.
[[nodiscard]] bool constrained_mixer(const std::string& mixer) noexcept;

/// Validate ranges and names; throws fastqaoa::Error with a message naming
/// the offending field.
void validate_problem_spec(const ProblemSpec& spec);

/// The feasible space the spec implies (full or Dicke).
[[nodiscard]] StateSpace problem_space(const ProblemSpec& spec);

/// Tabulate the objective (deterministic in instance_seed).
[[nodiscard]] dvec build_objective(const ProblemSpec& spec,
                                   const StateSpace& space);

/// Construct the mixer. When `disk_cache_dir` is non-empty, eigendecomposed
/// mixers (clique/ring) are persisted there via io::load_or_build_mixer
/// under a name keyed by (kind, n, k) — the service's disk tier, sharing
/// the CLI's cache-file convention.
[[nodiscard]] std::unique_ptr<const Mixer> build_mixer(
    const ProblemSpec& spec, const StateSpace& space,
    const std::string& disk_cache_dir = {});

}  // namespace fastqaoa::service
