#pragma once
/// \file workload.hpp
/// Deterministic problem/mixer construction from a declarative spec.
///
/// The service builds workloads server-side: a request names a generator
/// ("maxcut on Erdős–Rényi, n=10, seed=42"), not a table, so requests stay
/// small and every rebuild is bit-identical. This mirrors qaoa_cli's
/// generator wiring exactly — one Rng seeded from instance_seed, consumed
/// in the same order — so a served result can be cross-checked against a
/// direct library call with operator==. Tests rely on that.

#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hpp"
#include "graphs/graph.hpp"
#include "mixers/mixer.hpp"
#include "mps/hamiltonian.hpp"
#include "mps/mps_plan.hpp"
#include "problems/state_space.hpp"

namespace fastqaoa::service {

/// What to simulate: a named generator plus its parameters.
struct ProblemSpec {
  std::string problem = "maxcut";  ///< maxcut|wmaxcut|ksat|densest|vertexcover|partition
  std::string mixer = "tf";        ///< tf|grover|clique|ring
  int n = 8;
  int k = -1;  ///< Hamming weight for constrained mixers (< 0 = n/2)
  double density = 6.0;            ///< k-SAT clause density
  std::uint64_t instance_seed = 42;

  /// Graph degree for maxcut/wmaxcut: 0 = Erdős–Rényi(0.5), d > 0 = random
  /// d-regular (the sparse topologies the MPS engine scales on).
  int degree = 0;

  /// Evaluation engine: "exact" (statevector, n <= 24) or "mps"
  /// (approximate matrix-product-state backend, maxcut/wmaxcut + tf mixer
  /// only, n up to 256). The engine and its truncation knobs below are part
  /// of the plan-cache key: jobs differing in any of them never share a
  /// cached plan.
  std::string engine = "exact";
  int max_bond = 64;              ///< mps: chi cap per bond
  double fidelity_budget = 1e-3;  ///< mps: cumulative discarded-weight cap
  double trunc_tol = 1e-12;       ///< mps: per-split relative tail threshold

  /// Hamming weight actually used (k, defaulted to n/2 for constrained
  /// mixers; -1 for unconstrained ones — part of the cache key).
  [[nodiscard]] int effective_k() const noexcept;

  [[nodiscard]] bool uses_mps() const noexcept { return engine == "mps"; }
};

/// Whether `mixer` restricts the feasible set to a Dicke subspace.
[[nodiscard]] bool constrained_mixer(const std::string& mixer) noexcept;

/// Validate ranges and names; throws fastqaoa::Error with a message naming
/// the offending field.
void validate_problem_spec(const ProblemSpec& spec);

/// The feasible space the spec implies (full or Dicke).
[[nodiscard]] StateSpace problem_space(const ProblemSpec& spec);

/// The (weighted) graph a maxcut/wmaxcut spec implies — deterministic in
/// instance_seed and RNG-compatible with qaoa_cli's generator wiring
/// (topology draws first, then weight draws in edge order), so served
/// results cross-check against direct CLI runs.
[[nodiscard]] Graph build_graph(const ProblemSpec& spec);

/// Tabulate the objective (deterministic in instance_seed).
[[nodiscard]] dvec build_objective(const ProblemSpec& spec,
                                   const StateSpace& space);

/// The MPS engine's sparse form of the same objective (maxcut/wmaxcut
/// only), already canonicalized — its term list is the content the plan
/// cache fingerprints.
[[nodiscard]] mps::DiagonalHamiltonian build_mps_hamiltonian(
    const ProblemSpec& spec);

/// Truncation knobs as the MPS plan wants them.
[[nodiscard]] mps::MpsOptions mps_options(const ProblemSpec& spec);

/// Cache-key tag naming the engine and, for MPS, every truncation knob
/// ("exact", or "mps;chi=..;tol=..;budget=.."): two specs with different
/// tags never share a plan-cache entry.
[[nodiscard]] std::string engine_cache_tag(const ProblemSpec& spec);

/// Construct the mixer. When `disk_cache_dir` is non-empty, eigendecomposed
/// mixers (clique/ring) are persisted there via io::load_or_build_mixer
/// under a name keyed by (kind, n, k) — the service's disk tier, sharing
/// the CLI's cache-file convention.
[[nodiscard]] std::unique_ptr<const Mixer> build_mixer(
    const ProblemSpec& spec, const StateSpace& space,
    const std::string& disk_cache_dir = {});

}  // namespace fastqaoa::service
