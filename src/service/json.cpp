#include "service/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/error.hpp"

namespace fastqaoa::service {

namespace {

constexpr int kMaxDepth = 64;

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json value = parse_value(0);
    skip_ws();
    FASTQAOA_CHECK(pos_ == text_.size(),
                   "json: trailing characters after document at offset " +
                       std::to_string(pos_));
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      ++pos_;
      if (next == '}') return obj;
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      ++pos_;
      if (next == ']') return arr;
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned int cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned int>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned int>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned int>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // Encode the (BMP) code point as UTF-8; surrogate pairs are
          // passed through as two 3-byte sequences, which is lossy but
          // harmless for a protocol that never emits them.
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          fail("invalid escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool is_int = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        if (c != '-' || (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')) {
          is_int = false;
          ++pos_;
        } else {
          break;
        }
      } else {
        break;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") fail("invalid number");
    if (is_int) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') return Json(v);
      // Out of long-long range: fall through to the double lane.
    }
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("invalid number");
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

Json::Json(std::uint64_t v) : type_(Type::Number) {
  if (v <= static_cast<std::uint64_t>(
               std::numeric_limits<long long>::max())) {
    int_ = static_cast<long long>(v);
    is_int_ = true;
    num_ = static_cast<double>(int_);
  } else {
    num_ = static_cast<double>(v);
  }
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

bool Json::as_bool() const {
  FASTQAOA_CHECK(type_ == Type::Bool, "json: value is not a bool");
  return bool_;
}

double Json::as_double() const {
  FASTQAOA_CHECK(type_ == Type::Number, "json: value is not a number");
  return is_int_ ? static_cast<double>(int_) : num_;
}

long long Json::as_int64() const {
  FASTQAOA_CHECK(type_ == Type::Number && is_int_,
                 "json: value is not an integer");
  return int_;
}

std::uint64_t Json::as_uint64() const {
  const long long v = as_int64();
  FASTQAOA_CHECK(v >= 0, "json: expected a non-negative integer");
  return static_cast<std::uint64_t>(v);
}

const std::string& Json::as_string() const {
  FASTQAOA_CHECK(type_ == Type::String, "json: value is not a string");
  return str_;
}

const Json::Array& Json::as_array() const {
  FASTQAOA_CHECK(type_ == Type::Array, "json: value is not an array");
  return arr_;
}

const Json::Object& Json::as_object() const {
  FASTQAOA_CHECK(type_ == Type::Object, "json: value is not an object");
  return obj_;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* v = find(key);
  FASTQAOA_CHECK(v != nullptr,
                 "json: missing required key '" + std::string(key) + "'");
  return *v;
}

Json& Json::set(std::string_view key, Json value) {
  FASTQAOA_CHECK(type_ == Type::Object, "json: set() on a non-object");
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(std::string(key), std::move(value));
  return *this;
}

Json& Json::push_back(Json value) {
  FASTQAOA_CHECK(type_ == Type::Array, "json: push_back() on a non-array");
  arr_.push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const noexcept {
  if (type_ == Type::Array) return arr_.size();
  if (type_ == Type::Object) return obj_.size();
  return 0;
}

void Json::dump(std::string& out) const {
  switch (type_) {
    case Type::Null:
      out += "null";
      break;
    case Type::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Type::Number:
      if (is_int_) {
        out += std::to_string(int_);
      } else {
        out += json_double(num_);
      }
      break;
    case Type::String:
      append_escaped(out, str_);
      break;
    case Type::Array: {
      out += '[';
      bool first = true;
      for (const Json& v : arr_) {
        if (!first) out += ',';
        first = false;
        v.dump(out);
      }
      out += ']';
      break;
    }
    case Type::Object: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        append_escaped(out, k);
        out += ':';
        v.dump(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump(out);
  return out;
}

}  // namespace fastqaoa::service
