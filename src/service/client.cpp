#include "service/client.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "service/net.hpp"

namespace fastqaoa::service {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), carry_(std::move(other.carry_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    carry_ = std::move(other.carry_);
  }
  return *this;
}

Client Client::connect_unix(const std::string& socket_path) {
  return Client(fastqaoa::service::connect_unix(socket_path));
}

Client Client::connect_tcp(int port) {
  return Client(fastqaoa::service::connect_tcp(port));
}

Json Client::request(const Json& req) {
  send(req);
  std::string line;
  FASTQAOA_CHECK(read_line(line),
                 "connection closed before a response arrived");
  return Json::parse(line);
}

void Client::send(const Json& req) {
  FASTQAOA_CHECK(connected(), "client is not connected");
  write_all(fd_, req.dump() + "\n");
}

bool Client::read_line(std::string& line) {
  FASTQAOA_CHECK(connected(), "client is not connected");
  for (;;) {
    const std::size_t pos = carry_.find('\n');
    if (pos != std::string::npos) {
      line.assign(carry_, 0, pos);
      carry_.erase(0, pos + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) return false;  // clean EOF mid-stream
    carry_.append(chunk, static_cast<std::size_t>(n));
  }
}

void Client::close() noexcept {
  if (fd_ >= 0) {
    close_fd(fd_);
    fd_ = -1;
  }
  carry_.clear();
}

}  // namespace fastqaoa::service
