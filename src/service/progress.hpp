#pragma once
/// \file progress.hpp
/// Per-job progress fan-out with slow-subscriber protection.
///
/// A worker running a job publishes NDJSON event lines into its job's
/// ProgressChannel; any number of subscribers (one per `subscribe`
/// connection) each own a *bounded* event queue. The publisher never
/// blocks and never allocates per subscriber count on the hot path beyond
/// the queue append: when a subscriber's queue is full the channel drops
/// that subscriber's *oldest* event and counts the drop — a stalled client
/// loses intermediate events, never the terminal one, and can never block
/// a worker or job completion.
///
/// close() publishes the terminal line and latches it: subscribers that
/// attach after the job finished still receive exactly the terminal event,
/// so `watch` on a completed job degrades gracefully instead of hanging.
///
/// The channel is always compiled (it is product behavior, not
/// profiling); the optional drop counter hook lets the service surface
/// total drops in stats() regardless of FASTQAOA_PROFILING.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace fastqaoa::service {

struct ProgressInner;     // shared channel state (progress.cpp)
struct ProgressSubState;  // one subscriber's bounded queue (progress.cpp)

class ProgressChannel {
 public:
  ProgressChannel();

  /// Set the per-subscriber queue bound and the (optional) service-wide
  /// drop counter. Call before the job becomes visible to subscribers.
  void configure(std::size_t queue_cap,
                 std::atomic<std::uint64_t>* drop_counter) noexcept;

  /// Publisher side (worker thread). No-op after close().
  void publish(const std::string& line);

  /// Publish the terminal line and close the channel. Idempotent (the
  /// first close wins). Late subscribers still receive the terminal line.
  void close(const std::string& final_line);

  [[nodiscard]] bool closed() const;

  /// Register a callback that fires exactly once when the channel closes
  /// (i.e. when the job reaches a terminal state). If the channel is
  /// already closed the hook runs inline, on the caller's thread; otherwise
  /// it runs on the closing (worker) thread, outside the channel lock.
  /// This is how the event-loop front end learns a sync-waited job
  /// finished without parking a thread in Service::wait().
  void add_close_hook(std::function<void()> hook);

  /// Total events dropped across all subscribers over the channel's life.
  [[nodiscard]] std::uint64_t dropped() const;

  class Subscription {
   public:
    Subscription() = default;

    /// Block until an event is available or the stream ends. Returns true
    /// with the next line (terminal line last), false once exhausted.
    bool next(std::string& line);

    /// Wait up to `ms` or until the channel closes, whichever is first —
    /// the interruptible sleep behind the subscribe `throttle_ms` option
    /// (a deliberately slow subscriber must not delay daemon drain).
    void wait_closed_for(int ms);

    /// Non-blocking variant of next(): returns true with a line when one is
    /// ready (terminal line last), false when nothing is pending right now.
    /// Pair with set_notify() to learn when to poll again.
    bool try_next(std::string& line);

    /// True once the stream is exhausted: channel closed, queue drained,
    /// terminal line delivered. try_next() never yields again.
    [[nodiscard]] bool finished() const;

    /// Install a wakeup callback invoked (outside the channel lock, on the
    /// publisher's thread) whenever a new event lands in this subscriber's
    /// queue or the channel closes. The event-loop front end posts a
    /// readiness token from here instead of blocking in next().
    void set_notify(std::function<void()> fn);

    /// Remove this subscriber from the channel (publishes stop landing in
    /// its queue, the notify callback is cleared). Idempotent; used when a
    /// connection is evicted or closed mid-stream so the channel does not
    /// retain dead queues for the daemon's lifetime.
    void detach();

    /// Events dropped from *this* subscriber's queue so far.
    [[nodiscard]] std::uint64_t dropped() const;

    [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

   private:
    friend class ProgressChannel;
    std::shared_ptr<ProgressInner> inner_;
    std::shared_ptr<ProgressSubState> state_;
  };

  [[nodiscard]] Subscription subscribe();

 private:
  std::shared_ptr<ProgressInner> inner_;
};

}  // namespace fastqaoa::service
