#include "service/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace fastqaoa::service {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

}  // namespace

int listen_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  FASTQAOA_CHECK(path.size() < sizeof(addr.sun_path),
                 "socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  ::unlink(path.c_str());  // stale socket from a crashed daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    close_fd(fd);
    throw_errno("bind(" + path + ")");
  }
  if (::listen(fd, SOMAXCONN) < 0) {
    close_fd(fd);
    throw_errno("listen(" + path + ")");
  }
  return fd;
}

int listen_tcp(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    close_fd(fd);
    throw_errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  if (::listen(fd, SOMAXCONN) < 0) {
    close_fd(fd);
    throw_errno("listen(tcp)");
  }
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) < 0) {
      close_fd(fd);
      throw_errno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  FASTQAOA_CHECK(path.size() < sizeof(addr.sun_path),
                 "socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    close_fd(fd);
    throw_errno("connect(" + path + ")");
  }
  return fd;
}

int connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_INET)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    close_fd(fd);
    throw_errno("connect(127.0.0.1:" + std::to_string(port) + ")");
  }
  return fd;
}

void write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking socket with a full kernel buffer: wait until it is
        // writable again instead of spinning or (the old bug) throwing.
        pollfd pfd{fd, POLLOUT, 0};
        const int rc = ::poll(&pfd, 1, /*timeout_ms=*/1000);
        if (rc < 0 && errno != EINTR) throw_errno("poll(POLLOUT)");
        continue;
      }
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::size_t write_some(int fd, const char* data, std::size_t len) {
  for (;;) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    throw_errno("send");
  }
}

void set_nonblocking(int fd, bool enable) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int want = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) < 0) {
    throw_errno("fcntl(F_SETFL)");
  }
}

void set_send_buffer(int fd, int bytes) noexcept {
  if (bytes <= 0) return;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
}

bool LineReader::next(std::string& line) {
  for (;;) {
    const std::size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      line.assign(buffer_, 0, pos);
      buffer_.erase(0, pos + 1);
      return true;
    }
    if (eof_) {
      if (buffer_.empty()) return false;
      line = std::move(buffer_);
      buffer_.clear();
      return true;
    }
    FASTQAOA_CHECK(buffer_.size() < kMaxLineBytes,
                   "protocol line exceeds 16 MiB");
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void close_fd(int fd) noexcept {
  if (fd >= 0) ::close(fd);
}

}  // namespace fastqaoa::service
