#pragma once
/// \file service.hpp
/// The embeddable job service: fair-share queue + worker pool + plan cache.
///
/// This is the daemon's engine, usable without any socket: submit() either
/// admits a job (returning a shared record the caller can wait on, poll, or
/// cancel) or rejects it with a structured reason — "overloaded" once the
/// queue is at its high-water mark, "draining" once shutdown has begun,
/// "over_quota" (with a retry_after_ms hint) when the submitting tenant is
/// past its rate or concurrency quota. Rejection at admission is the
/// backpressure contract: the queue never grows without bound, and a client
/// that sees "overloaded"/"over_quota" knows to back off rather than time
/// out.
///
/// Scheduling is weighted fair share across tenants (stride scheduling):
/// each tenant owns a sub-queue, and workers always pull from the eligible
/// tenant with the smallest pass value, advancing it by 1/weight per job.
/// Over any busy window tenants therefore receive worker time proportional
/// to their configured weights — one tenant's grid sweep cannot starve the
/// others — while a single (or unconfigured) tenant degrades to plain FIFO,
/// exactly the old behavior. Scheduling order never affects job *results*:
/// every job is a pure function of its spec, so results stay worker-count
/// and schedule invariant.
///
/// Worker threads each own an EvalWorkspace and pull jobs off the queue;
/// plans come from the shared PlanCache (partitioned per tenant under the
/// global byte budget), so N workers evaluating the same problem share one
/// precomputation. Every job carries its own CancelToken and RunBudget,
/// threaded into the runtime layer, so long searches stop cooperatively —
/// cancellation and drain both return best-so-far results (checkpointed to
/// the job's checkpoint file, if it named one) instead of tearing anything
/// down.
///
/// Drain semantics (what SIGTERM maps to in the daemon): begin_drain()
/// rejects new work, cancels queued jobs, and trips the cancel token of
/// running ones; shutdown() additionally waits for workers to finish
/// delivering those results. Nothing in-flight is lost — a drained
/// find_angles job leaves a resumable checkpoint behind.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/budget.hpp"
#include "service/job.hpp"
#include "service/plan_cache.hpp"
#include "service/progress.hpp"
#include "service/tenant.hpp"

namespace fastqaoa::service {

struct ServiceConfig {
  int workers = 2;
  /// Statevector shard request applied to every worker workspace
  /// (0 = auto: FASTQAOA_SHARDS, then one shard per detected NUMA node).
  /// Placement-only — results are bit-identical at every shard count.
  int shards = 0;
  /// Admission high-water mark: jobs *waiting* in the queue (not the ones
  /// already running), summed across all tenant sub-queues. A submit that
  /// would push the depth past this is rejected with "overloaded".
  std::size_t queue_high_water = 64;
  /// PlanCache byte budget (0 = unlimited).
  std::size_t cache_bytes = 0;
  /// Disk tier for expensive mixers ("" = memory only).
  std::string cache_dir;
  /// Per-subscriber progress event queue bound (`subscribe` verb). When a
  /// slow subscriber's queue is full its oldest event is dropped (and
  /// counted) rather than ever blocking the publishing worker.
  std::size_t subscriber_queue_cap = 256;
  /// Configured tenants (empty = multi-tenancy off: every submit maps to
  /// one default tenant with no quotas, and the daemon requires no keys).
  std::vector<TenantConfig> tenants;
};

/// One job's shared record. The service and the submitting client both hold
/// a shared_ptr; `mu`/`cv` guard state/result/error.
class Job {
 public:
  std::uint64_t id = 0;
  JobSpec spec;
  runtime::CancelToken cancel;
  /// Per-round progress fan-out for `subscribe`/`watch`. The worker
  /// publishes round events while the job runs and closes the channel with
  /// the terminal event; every terminal path (including cancelled-while-
  /// queued) closes it, so a watcher never hangs.
  ProgressChannel progress;
  /// When the job entered the queue (queue-wait histogram).
  std::chrono::steady_clock::time_point enqueued_at{};

  mutable std::mutex mu;
  std::condition_variable cv;
  JobState state = JobState::Queued;  // guarded by mu
  JobResultData result;               // stable once state is terminal
  std::string error;                  // set when state == Failed

  [[nodiscard]] JobState snapshot_state() const {
    std::lock_guard<std::mutex> lock(mu);
    return state;
  }
  [[nodiscard]] bool terminal() const {
    const JobState s = snapshot_state();
    return s == JobState::Done || s == JobState::Failed ||
           s == JobState::Cancelled;
  }
};

/// Always-on connection counters for the daemon's event-loop front end.
/// Lives on the Service (one instance per daemon) so the `metrics` and
/// `stats` verbs can render it regardless of FASTQAOA_PROFILING; the server
/// is the only writer, readers snapshot relaxed loads.
struct FrontendStats {
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> closed{0};
  std::atomic<std::uint64_t> evicted_slow{0};      ///< write-stall eviction
  std::atomic<std::uint64_t> evicted_idle{0};      ///< idle-timeout eviction
  std::atomic<std::uint64_t> evicted_oversize{0};  ///< request line too long
  std::atomic<std::uint64_t> rejected_conn_limit{0};
  std::atomic<std::uint64_t> shed_fd_pressure{0};  ///< EMFILE/ENFILE shed
  std::atomic<std::uint64_t> auth_failures{0};
  std::atomic<std::uint64_t> active{0};  ///< open connections right now
};

struct ServiceStats {
  std::size_t queue_depth = 0;
  std::size_t running = 0;
  int workers = 0;
  /// Configured shard request (0 = auto; see ServiceConfig::shards).
  int shards = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t rejected = 0;
  /// over_quota rejections (also included in `rejected`).
  std::uint64_t over_quota = 0;
  /// batch_evaluate accounting: jobs completed and total lanes they swept.
  /// Both are pure functions of the submitted specs (one count per finished
  /// batch job, lanes from its spec), so they are worker-count invariant —
  /// the same job set reports the same totals on any pool size.
  std::uint64_t batch_jobs = 0;
  std::uint64_t batched_evals = 0;
  /// Progress events dropped across all subscribers because a slow
  /// `subscribe` client fell behind its bounded queue. Always counted
  /// (product behavior, independent of FASTQAOA_PROFILING).
  std::uint64_t subscribe_dropped = 0;
  bool draining = false;
  PlanCache::Stats plan_cache;

  /// Queue depth observed at each admission (always-on histogram, so the
  /// Prometheus export carries depth quantiles without profiling builds).
  obs::HistogramStat queue_depth_hist;

  /// Per-tenant accounting. Populated for every tenant that was configured
  /// or has submitted work; the default tenant reports as "default".
  struct TenantStats {
    std::string name;
    double weight = 1.0;
    std::size_t queued = 0;
    std::size_t running = 0;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t over_quota = 0;
  };
  std::vector<TenantStats> tenants;

  /// Snapshot of the daemon front end's connection counters.
  struct FrontendSnapshot {
    std::uint64_t accepted = 0;
    std::uint64_t closed = 0;
    std::uint64_t evicted_slow = 0;
    std::uint64_t evicted_idle = 0;
    std::uint64_t evicted_oversize = 0;
    std::uint64_t rejected_conn_limit = 0;
    std::uint64_t shed_fd_pressure = 0;
    std::uint64_t auth_failures = 0;
    std::uint64_t active = 0;
  };
  FrontendSnapshot frontend;
};

class Service {
 public:
  explicit Service(ServiceConfig config = {});
  ~Service();  // shutdown()
  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  struct SubmitOutcome {
    std::shared_ptr<Job> job;  ///< null when rejected
    std::string error_code;    ///< "", "overloaded", "draining", "over_quota"
    std::size_t queue_depth = 0;
    /// For "over_quota": how long the client should wait before retrying
    /// (token-bucket refill estimate, or a fixed hint for concurrency
    /// quotas). 0 otherwise.
    int retry_after_ms = 0;
    [[nodiscard]] bool accepted() const noexcept { return job != nullptr; }
  };

  /// Validate and enqueue under the fair-share queue of `spec.tenant`.
  /// Throws fastqaoa::Error on an invalid spec; returns a rejection (never
  /// throws) on backpressure, drain, or a tenant quota.
  SubmitOutcome submit(JobSpec spec);

  /// Look up a job by id (nullptr if unknown). Records are kept for the
  /// lifetime of the service so status queries never race completion.
  [[nodiscard]] std::shared_ptr<Job> find(std::uint64_t id) const;

  /// Cancel: a queued job is cancelled immediately; a running job has its
  /// token tripped (it finishes as soon as the runtime layer polls it).
  /// Returns false for unknown or already-terminal jobs.
  bool cancel(std::uint64_t id);

  /// Block until the job reaches a terminal state.
  static void wait(Job& job);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] bool draining() const;

  /// The configured tenant table (empty/disabled when multi-tenancy off).
  [[nodiscard]] const TenantRegistry& tenant_registry() const noexcept {
    return registry_;
  }

  /// Stop admitting work; cancel queued jobs and trip running ones.
  void begin_drain();

  /// begin_drain() + wait for workers to deliver every in-flight result,
  /// then join the pool. Idempotent.
  void shutdown();

  /// Daemon front-end counters (see FrontendStats). Written by the event
  /// loop, rendered by the protocol layer.
  FrontendStats frontend;

 private:
  /// One tenant's scheduling state. Guarded by mu_.
  struct TenantState {
    TenantConfig cfg;
    std::deque<std::shared_ptr<Job>> queue;
    double pass = 0.0;    ///< stride-scheduling virtual time
    double stride = 1.0;  ///< 1 / weight
    std::size_t running = 0;
    std::size_t inflight = 0;  ///< queued + running
    double tokens = 0.0;       ///< rate-limit token bucket
    std::chrono::steady_clock::time_point last_refill{};
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t over_quota = 0;
  };

  TenantState& tenant_state_locked(const std::string& name);
  std::shared_ptr<Job> pop_next_locked();
  void worker_loop();
  void run_job(Job& job, EvalWorkspace& ws, mps::MpsWorkspace& mws);
  void execute(Job& job, EvalWorkspace& ws, mps::MpsWorkspace& mws,
               JobResultData& out);
  void execute_mps(Job& job, mps::MpsWorkspace& mws, JobResultData& out);

  ServiceConfig config_;
  TenantRegistry registry_;
  PlanCache cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  /// Tenant sub-queues, index 0 = the default ("") tenant; order is stable
  /// (config order, then first-seen order) so scheduling ties break
  /// deterministically.
  std::vector<std::unique_ptr<TenantState>> tenant_states_;
  std::unordered_map<std::string, std::size_t> tenant_index_;
  std::size_t total_queued_ = 0;
  double global_pass_ = 0.0;
  obs::HistogramStat queue_depth_hist_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::uint64_t next_id_ = 1;
  std::size_t running_ = 0;
  bool draining_ = false;
  bool stop_ = false;
  bool joined_ = false;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t over_quota_ = 0;
  std::uint64_t batch_jobs_ = 0;
  std::uint64_t batched_evals_ = 0;
  std::atomic<std::uint64_t> subscribe_dropped_{0};

  std::vector<std::thread> workers_;
};

}  // namespace fastqaoa::service
