#include "service/tenant.hpp"

#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "service/json.hpp"

namespace fastqaoa::service {

TenantRegistry::TenantRegistry(std::vector<TenantConfig> tenants)
    : tenants_(std::move(tenants)) {}

std::optional<TenantConfig> TenantRegistry::by_key(
    const std::string& key) const {
  if (key.empty()) return std::nullopt;
  for (const TenantConfig& t : tenants_) {
    if (t.key == key) return t;
  }
  return std::nullopt;
}

std::optional<TenantConfig> TenantRegistry::by_name(
    const std::string& name) const {
  for (const TenantConfig& t : tenants_) {
    if (t.name == name) return t;
  }
  return std::nullopt;
}

std::vector<TenantConfig> parse_tenant_config(const std::string& json_text) {
  const Json doc = Json::parse(json_text);
  const Json* list = doc.find("tenants");
  FASTQAOA_CHECK(list != nullptr && list->is_array(),
                 "tenant config must carry a 'tenants' array");
  std::vector<TenantConfig> out;
  std::set<std::string> names;
  std::set<std::string> keys;
  for (const Json& entry : list->as_array()) {
    FASTQAOA_CHECK(entry.is_object(), "tenant entries must be objects");
    TenantConfig t;
    const Json* name = entry.find("name");
    FASTQAOA_CHECK(name != nullptr && name->is_string() &&
                       !name->as_string().empty(),
                   "tenant entry needs a non-empty 'name'");
    t.name = name->as_string();
    const Json* key = entry.find("key");
    FASTQAOA_CHECK(key != nullptr && key->is_string() &&
                       !key->as_string().empty(),
                   "tenant '" + t.name + "' needs a non-empty 'key'");
    t.key = key->as_string();
    if (const Json* v = entry.find("weight")) t.weight = v->as_double();
    FASTQAOA_CHECK(t.weight > 0.0,
                   "tenant '" + t.name + "': weight must be > 0");
    if (const Json* v = entry.find("max_inflight")) {
      t.max_inflight = static_cast<std::size_t>(v->as_uint64());
    }
    if (const Json* v = entry.find("rate_per_sec")) {
      t.rate_per_sec = v->as_double();
      FASTQAOA_CHECK(t.rate_per_sec >= 0.0,
                     "tenant '" + t.name + "': rate_per_sec must be >= 0");
    }
    if (const Json* v = entry.find("burst")) {
      t.burst = v->as_double();
      FASTQAOA_CHECK(t.burst >= 0.0,
                     "tenant '" + t.name + "': burst must be >= 0");
    }
    if (const Json* v = entry.find("cache_bytes")) {
      t.cache_bytes = static_cast<std::size_t>(v->as_uint64());
    }
    FASTQAOA_CHECK(names.insert(t.name).second,
                   "duplicate tenant name '" + t.name + "'");
    FASTQAOA_CHECK(keys.insert(t.key).second,
                   "duplicate tenant key for '" + t.name + "'");
    out.push_back(std::move(t));
  }
  FASTQAOA_CHECK(!out.empty(), "tenant config lists no tenants");
  return out;
}

std::vector<TenantConfig> load_tenant_config(const std::string& path) {
  std::ifstream in(path);
  FASTQAOA_CHECK(in.good(), "cannot read tenant config: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_tenant_config(buf.str());
}

}  // namespace fastqaoa::service
