#include "service/job.hpp"

#include "common/error.hpp"

namespace fastqaoa::service {

const char* to_string(JobKind kind) noexcept {
  switch (kind) {
    case JobKind::Evaluate:
      return "evaluate";
    case JobKind::BatchEvaluate:
      return "batch_evaluate";
    case JobKind::Gradient:
      return "gradient";
    case JobKind::FindAngles:
      return "find_angles";
    case JobKind::Sample:
      return "sample";
  }
  return "unknown";
}

const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::Queued:
      return "queued";
    case JobState::Running:
      return "running";
    case JobState::Done:
      return "done";
    case JobState::Failed:
      return "failed";
    case JobState::Cancelled:
      return "cancelled";
  }
  return "unknown";
}

void validate_job_spec(const JobSpec& spec) {
  validate_problem_spec(spec.problem);
  if (spec.problem.uses_mps()) {
    // Fail fast at admission: the MPS engine has no batched kernels, no
    // adjoint gradients, and no statevector to sample from.
    FASTQAOA_CHECK(
        spec.kind == JobKind::Evaluate || spec.kind == JobKind::FindAngles,
        "engine 'mps' supports evaluate and find_angles only");
  }
  FASTQAOA_CHECK(spec.p >= 1 && spec.p <= 50,
                 "p out of supported range [1, 50]");
  const auto p = static_cast<std::size_t>(spec.p);
  switch (spec.kind) {
    case JobKind::Evaluate:
    case JobKind::Gradient:
    case JobKind::Sample:
      FASTQAOA_CHECK(spec.betas.size() == p,
                     "betas must have exactly p entries");
      FASTQAOA_CHECK(spec.gammas.size() == p,
                     "gammas must have exactly p entries");
      if (spec.kind == JobKind::Sample) {
        FASTQAOA_CHECK(spec.shots >= 1, "shots must be >= 1");
      }
      break;
    case JobKind::BatchEvaluate:
      FASTQAOA_CHECK(spec.lanes >= 1, "batch_evaluate needs >= 1 angle set");
      FASTQAOA_CHECK(spec.lanes <= 4096,
                     "batch_evaluate caps at 4096 angle sets per job");
      FASTQAOA_CHECK(
          spec.betas.size() == static_cast<std::size_t>(spec.lanes) * p,
          "betas must carry lanes * p entries (lane-major)");
      FASTQAOA_CHECK(
          spec.gammas.size() == static_cast<std::size_t>(spec.lanes) * p,
          "gammas must carry lanes * p entries (lane-major)");
      break;
    case JobKind::FindAngles:
      FASTQAOA_CHECK(spec.hops >= 1, "hops must be >= 1");
      FASTQAOA_CHECK(spec.starts >= 1, "starts must be >= 1");
      break;
  }
  FASTQAOA_CHECK(spec.deadline_seconds >= 0.0,
                 "deadline must be non-negative");
}

}  // namespace fastqaoa::service
