#include "service/progress.hpp"

#include <chrono>
#include <utility>

namespace fastqaoa::service {

struct ProgressSubState {
  std::deque<std::string> queue;
  std::uint64_t dropped = 0;
  bool final_delivered = false;
  /// Wakeup callback for event-loop subscribers; invoked outside the
  /// channel lock so it may take other locks (ReadyQueue, pipes) freely.
  std::function<void()> notify;
};

struct ProgressInner {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::shared_ptr<ProgressSubState>> subs;
  std::vector<std::function<void()>> close_hooks;
  std::size_t cap = 256;
  std::atomic<std::uint64_t>* drop_counter = nullptr;
  std::uint64_t total_dropped = 0;
  bool closed = false;
  bool has_final = false;
  std::string final_line;
};

namespace {

/// Snapshot the notify callbacks under the lock so they can run outside it
/// (a callback may re-enter channel APIs or take unrelated locks).
std::vector<std::function<void()>> collect_notifies(const ProgressInner& in) {
  std::vector<std::function<void()>> fns;
  for (const auto& sub : in.subs) {
    if (sub->notify) fns.push_back(sub->notify);
  }
  return fns;
}

}  // namespace

ProgressChannel::ProgressChannel() : inner_(std::make_shared<ProgressInner>()) {}

void ProgressChannel::configure(
    std::size_t queue_cap, std::atomic<std::uint64_t>* drop_counter) noexcept {
  std::lock_guard<std::mutex> lock(inner_->mu);
  inner_->cap = queue_cap == 0 ? 1 : queue_cap;
  inner_->drop_counter = drop_counter;
}

void ProgressChannel::publish(const std::string& line) {
  ProgressInner& in = *inner_;
  bool notify = false;
  std::vector<std::function<void()>> wakeups;
  {
    std::lock_guard<std::mutex> lock(in.mu);
    if (in.closed) return;
    for (const auto& sub : in.subs) {
      if (sub->queue.size() >= in.cap) {
        sub->queue.pop_front();
        ++sub->dropped;
        ++in.total_dropped;
        if (in.drop_counter != nullptr) {
          in.drop_counter->fetch_add(1, std::memory_order_relaxed);
        }
      }
      sub->queue.push_back(line);
    }
    notify = !in.subs.empty();
    if (notify) wakeups = collect_notifies(in);
  }
  if (notify) in.cv.notify_all();
  for (const auto& fn : wakeups) fn();
}

void ProgressChannel::close(const std::string& final_line) {
  ProgressInner& in = *inner_;
  std::vector<std::function<void()>> wakeups;
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(in.mu);
    if (in.closed) return;
    in.closed = true;
    in.has_final = true;
    in.final_line = final_line;
    wakeups = collect_notifies(in);
    hooks.swap(in.close_hooks);
  }
  in.cv.notify_all();
  for (const auto& fn : wakeups) fn();
  for (const auto& fn : hooks) fn();
}

bool ProgressChannel::closed() const {
  std::lock_guard<std::mutex> lock(inner_->mu);
  return inner_->closed;
}

void ProgressChannel::add_close_hook(std::function<void()> hook) {
  if (!hook) return;
  {
    std::lock_guard<std::mutex> lock(inner_->mu);
    if (!inner_->closed) {
      inner_->close_hooks.push_back(std::move(hook));
      return;
    }
  }
  hook();  // already closed: fire inline, outside the lock
}

std::uint64_t ProgressChannel::dropped() const {
  std::lock_guard<std::mutex> lock(inner_->mu);
  return inner_->total_dropped;
}

ProgressChannel::Subscription ProgressChannel::subscribe() {
  Subscription sub;
  sub.inner_ = inner_;
  sub.state_ = std::make_shared<ProgressSubState>();
  std::lock_guard<std::mutex> lock(inner_->mu);
  // A post-close subscriber gets no backlog, just the latched terminal
  // line (delivered by next()); a live one starts with an empty queue.
  if (!inner_->closed) inner_->subs.push_back(sub.state_);
  return sub;
}

bool ProgressChannel::Subscription::next(std::string& line) {
  if (inner_ == nullptr) return false;
  ProgressInner& in = *inner_;
  std::unique_lock<std::mutex> lock(in.mu);
  in.cv.wait(lock,
             [&] { return !state_->queue.empty() || in.closed; });
  if (!state_->queue.empty()) {
    line = std::move(state_->queue.front());
    state_->queue.pop_front();
    return true;
  }
  if (in.has_final && !state_->final_delivered) {
    state_->final_delivered = true;
    line = in.final_line;
    return true;
  }
  return false;
}

bool ProgressChannel::Subscription::try_next(std::string& line) {
  if (inner_ == nullptr) return false;
  ProgressInner& in = *inner_;
  std::lock_guard<std::mutex> lock(in.mu);
  if (!state_->queue.empty()) {
    line = std::move(state_->queue.front());
    state_->queue.pop_front();
    return true;
  }
  if (in.closed && in.has_final && !state_->final_delivered) {
    state_->final_delivered = true;
    line = in.final_line;
    return true;
  }
  return false;
}

bool ProgressChannel::Subscription::finished() const {
  if (inner_ == nullptr) return true;
  ProgressInner& in = *inner_;
  std::lock_guard<std::mutex> lock(in.mu);
  return in.closed && state_->queue.empty() &&
         (!in.has_final || state_->final_delivered);
}

void ProgressChannel::Subscription::set_notify(std::function<void()> fn) {
  if (inner_ == nullptr || state_ == nullptr) return;
  bool fire_now = false;
  {
    std::lock_guard<std::mutex> lock(inner_->mu);
    state_->notify = std::move(fn);
    // Events (or the close) may have landed before the callback was
    // installed; fire once immediately so nothing is missed.
    fire_now = state_->notify &&
               (!state_->queue.empty() || inner_->closed);
  }
  if (fire_now) state_->notify();
}

void ProgressChannel::Subscription::detach() {
  if (inner_ == nullptr || state_ == nullptr) return;
  std::lock_guard<std::mutex> lock(inner_->mu);
  state_->notify = nullptr;
  auto& subs = inner_->subs;
  for (auto it = subs.begin(); it != subs.end(); ++it) {
    if (*it == state_) {
      subs.erase(it);
      break;
    }
  }
}

void ProgressChannel::Subscription::wait_closed_for(int ms) {
  if (inner_ == nullptr || ms <= 0) return;
  ProgressInner& in = *inner_;
  std::unique_lock<std::mutex> lock(in.mu);
  in.cv.wait_for(lock, std::chrono::milliseconds(ms),
                 [&] { return in.closed; });
}

std::uint64_t ProgressChannel::Subscription::dropped() const {
  if (inner_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(inner_->mu);
  return state_->dropped;
}

}  // namespace fastqaoa::service
