#include "service/progress.hpp"

#include <chrono>

namespace fastqaoa::service {

struct ProgressSubState {
  std::deque<std::string> queue;
  std::uint64_t dropped = 0;
  bool final_delivered = false;
};

struct ProgressInner {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::shared_ptr<ProgressSubState>> subs;
  std::size_t cap = 256;
  std::atomic<std::uint64_t>* drop_counter = nullptr;
  std::uint64_t total_dropped = 0;
  bool closed = false;
  bool has_final = false;
  std::string final_line;
};

ProgressChannel::ProgressChannel() : inner_(std::make_shared<ProgressInner>()) {}

void ProgressChannel::configure(
    std::size_t queue_cap, std::atomic<std::uint64_t>* drop_counter) noexcept {
  std::lock_guard<std::mutex> lock(inner_->mu);
  inner_->cap = queue_cap == 0 ? 1 : queue_cap;
  inner_->drop_counter = drop_counter;
}

void ProgressChannel::publish(const std::string& line) {
  ProgressInner& in = *inner_;
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(in.mu);
    if (in.closed) return;
    for (const auto& sub : in.subs) {
      if (sub->queue.size() >= in.cap) {
        sub->queue.pop_front();
        ++sub->dropped;
        ++in.total_dropped;
        if (in.drop_counter != nullptr) {
          in.drop_counter->fetch_add(1, std::memory_order_relaxed);
        }
      }
      sub->queue.push_back(line);
    }
    notify = !in.subs.empty();
  }
  if (notify) in.cv.notify_all();
}

void ProgressChannel::close(const std::string& final_line) {
  ProgressInner& in = *inner_;
  {
    std::lock_guard<std::mutex> lock(in.mu);
    if (in.closed) return;
    in.closed = true;
    in.has_final = true;
    in.final_line = final_line;
  }
  in.cv.notify_all();
}

bool ProgressChannel::closed() const {
  std::lock_guard<std::mutex> lock(inner_->mu);
  return inner_->closed;
}

std::uint64_t ProgressChannel::dropped() const {
  std::lock_guard<std::mutex> lock(inner_->mu);
  return inner_->total_dropped;
}

ProgressChannel::Subscription ProgressChannel::subscribe() {
  Subscription sub;
  sub.inner_ = inner_;
  sub.state_ = std::make_shared<ProgressSubState>();
  std::lock_guard<std::mutex> lock(inner_->mu);
  // A post-close subscriber gets no backlog, just the latched terminal
  // line (delivered by next()); a live one starts with an empty queue.
  if (!inner_->closed) inner_->subs.push_back(sub.state_);
  return sub;
}

bool ProgressChannel::Subscription::next(std::string& line) {
  if (inner_ == nullptr) return false;
  ProgressInner& in = *inner_;
  std::unique_lock<std::mutex> lock(in.mu);
  in.cv.wait(lock,
             [&] { return !state_->queue.empty() || in.closed; });
  if (!state_->queue.empty()) {
    line = std::move(state_->queue.front());
    state_->queue.pop_front();
    return true;
  }
  if (in.has_final && !state_->final_delivered) {
    state_->final_delivered = true;
    line = in.final_line;
    return true;
  }
  return false;
}

void ProgressChannel::Subscription::wait_closed_for(int ms) {
  if (inner_ == nullptr || ms <= 0) return;
  ProgressInner& in = *inner_;
  std::unique_lock<std::mutex> lock(in.mu);
  in.cv.wait_for(lock, std::chrono::milliseconds(ms),
                 [&] { return in.closed; });
}

std::uint64_t ProgressChannel::Subscription::dropped() const {
  if (inner_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(inner_->mu);
  return state_->dropped;
}

}  // namespace fastqaoa::service
