#pragma once
/// \file client.hpp
/// Minimal synchronous client for the NDJSON protocol: one request line
/// out, one response line back, parsed. Used by `qaoa_client` and the
/// end-to-end tests.

#include <string>

#include "service/json.hpp"

namespace fastqaoa::service {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Throws fastqaoa::Error if the daemon is not reachable.
  static Client connect_unix(const std::string& socket_path);
  static Client connect_tcp(int port);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// Send one request object, block for the matching response line.
  /// Throws fastqaoa::Error on transport failure (daemon went away) or an
  /// unparseable response; protocol-level failures come back as parsed
  /// {"ok":false,...} objects, not exceptions.
  Json request(const Json& req);

  /// Send one request object without reading a response — the first half
  /// of a streaming verb like "subscribe".
  void send(const Json& req);

  /// Block for the next response line of a streaming verb. Returns false
  /// on clean EOF (server closed the stream); throws on transport errors.
  bool read_line(std::string& line);

  void close() noexcept;

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string carry_;  ///< bytes past the last consumed newline
};

}  // namespace fastqaoa::service
