#pragma once
/// \file json.hpp
/// Minimal JSON value, parser, and writer for the service protocol.
///
/// The daemon speaks newline-delimited JSON over a socket; requests and
/// responses are small, so this is a straightforward recursive-descent
/// parser with two properties the protocol actually depends on:
///
///  * Doubles are emitted with %.17g, so every finite double round-trips
///    bit-identically through dump() -> parse(). That is what lets a client
///    compare a served expectation value against a direct library call with
///    operator== instead of a tolerance.
///  * Integers without '.'/'e' are kept in an exact 64-bit signed lane
///    (seeds, job ids, byte counts), separate from the double lane.
///
/// Objects preserve insertion order (stored as a flat pair vector — lookup
/// is linear, which is the right trade for <20-key protocol messages).

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fastqaoa::service {

class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  using Array = std::vector<Json>;
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() = default;
  Json(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : type_(Type::Bool), bool_(b) {}  // NOLINT
  Json(double v) : type_(Type::Number), num_(v) {}  // NOLINT
  Json(int v) : Json(static_cast<long long>(v)) {}  // NOLINT
  Json(long long v)  // NOLINT(google-explicit-constructor)
      : type_(Type::Number), num_(static_cast<double>(v)), int_(v),
        is_int_(true) {}
  Json(std::uint64_t v);  // NOLINT(google-explicit-constructor)
  Json(std::size_t v, int) = delete;
  Json(const char* s) : type_(Type::String), str_(s) {}  // NOLINT
  Json(std::string s) : type_(Type::String), str_(std::move(s)) {}  // NOLINT
  Json(std::string_view s) : type_(Type::String), str_(s) {}  // NOLINT

  static Json array() {
    Json j;
    j.type_ = Type::Array;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::Object;
    return j;
  }

  /// Parse one JSON document (throws fastqaoa::Error on malformed input or
  /// trailing garbage).
  static Json parse(std::string_view text);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::Bool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::Number;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::String;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::Array; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::Object;
  }

  /// Checked accessors — throw fastqaoa::Error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] long long as_int64() const;
  [[nodiscard]] std::uint64_t as_uint64() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object lookup: nullptr when absent (or when this is not an object).
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;
  /// Checked object lookup — throws fastqaoa::Error when the key is absent.
  [[nodiscard]] const Json& at(std::string_view key) const;

  /// Object mutation: replaces the value when the key exists.
  Json& set(std::string_view key, Json value);
  /// Array append.
  Json& push_back(Json value);

  [[nodiscard]] std::size_t size() const noexcept;

  /// Serialize (compact, stable member order = insertion order).
  [[nodiscard]] std::string dump() const;
  void dump(std::string& out) const;

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  long long int_ = 0;
  bool is_int_ = false;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Format one double exactly as Json::dump does (shared with code that
/// builds numeric strings by hand).
std::string json_double(double v);

}  // namespace fastqaoa::service
