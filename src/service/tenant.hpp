#pragma once
/// \file tenant.hpp
/// Multi-tenancy configuration: who may talk to the daemon, with what
/// weight, and under which quotas.
///
/// Tenants are declared in a JSON file passed to `qaoa_serve --tenants`:
///
///   {"tenants": [
///     {"name": "acme", "key": "k-acme-1", "weight": 3,
///      "max_inflight": 8, "rate_per_sec": 50, "burst": 100,
///      "cache_bytes": 0},
///     {"name": "widgets", "key": "k-widgets-1", "weight": 1}
///   ]}
///
/// `key` is the API key a client presents (an "auth" request, or a "key"
/// field on any request). `weight` drives fair-share scheduling: over a
/// busy period tenants receive worker time proportional to their weights.
/// `max_inflight` bounds a tenant's queued+running jobs; `rate_per_sec` /
/// `burst` parameterize a token bucket on admissions. Either quota trips a
/// structured `over_quota` rejection carrying a `retry_after_ms` hint.
/// `cache_bytes` optionally pins this tenant's plan-cache partition budget;
/// 0 derives it from the weights under the global byte budget.
///
/// When no tenant file is configured the registry is disabled and the
/// daemon behaves exactly as before: every connection maps to the default
/// (unnamed) tenant with no quotas — full backward compatibility.

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace fastqaoa::service {

struct TenantConfig {
  std::string name;
  /// API key presented by clients. Must be non-empty for configured
  /// tenants (an empty key would make the tenant unreachable).
  std::string key;
  /// Fair-share weight (> 0). A weight-3 tenant gets 3x the worker time of
  /// a weight-1 tenant when both have work queued.
  double weight = 1.0;
  /// Max queued+running jobs at once (0 = unlimited).
  std::size_t max_inflight = 0;
  /// Sustained admission rate in jobs/second (0 = unlimited) and the token
  /// bucket's burst capacity (0 = derived: max(1, rate_per_sec)).
  double rate_per_sec = 0.0;
  double burst = 0.0;
  /// Plan-cache partition budget in bytes (0 = weight-derived share of the
  /// global budget).
  std::size_t cache_bytes = 0;
};

/// Immutable post-load view of the tenant table.
class TenantRegistry {
 public:
  TenantRegistry() = default;
  explicit TenantRegistry(std::vector<TenantConfig> tenants);

  /// True when tenants were configured: API keys are then required for job
  /// and control verbs.
  [[nodiscard]] bool enabled() const noexcept { return !tenants_.empty(); }

  /// Look up by API key; nullopt on unknown key.
  [[nodiscard]] std::optional<TenantConfig> by_key(
      const std::string& key) const;

  /// Look up by tenant name; nullopt on unknown name.
  [[nodiscard]] std::optional<TenantConfig> by_name(
      const std::string& name) const;

  [[nodiscard]] const std::vector<TenantConfig>& all() const noexcept {
    return tenants_;
  }

 private:
  std::vector<TenantConfig> tenants_;
};

/// Parse a tenant config document (the file format above). Throws
/// fastqaoa::Error naming the offending field on malformed input,
/// duplicate names/keys, or non-positive weights.
[[nodiscard]] std::vector<TenantConfig> parse_tenant_config(
    const std::string& json_text);

/// Load and parse `path`. Throws fastqaoa::Error when unreadable.
[[nodiscard]] std::vector<TenantConfig> load_tenant_config(
    const std::string& path);

}  // namespace fastqaoa::service
