#pragma once
/// \file server.hpp
/// The daemon: a single-threaded epoll event loop in front of an embedded
/// Service worker pool.
///
/// run_daemon() owns the whole lifecycle so `qaoa_serve` is a thin flag
/// parser and tests can fork a real daemon without exec'ing a binary:
///
///   1. bind listeners (Unix socket always; TCP-on-loopback when asked),
///   2. accept connections into non-blocking per-connection state machines
///      (bounded read/write buffers, NDJSON protocol). The event loop never
///      computes: job verbs are admitted into the Service and the response
///      is written when the job's progress channel closes; `subscribe`
///      streams from a bounded subscription pumped by readiness callbacks.
///      Misbehaving clients are evicted rather than ever blocking the loop:
///      an over-long request line, an idle connection, or a client that
///      stops reading while output is pending each get a structured error
///      (best-effort) and a close, with always-on counters in `metrics`.
///   3. on SIGTERM/SIGINT (self-pipe, async-signal-safe): stop accepting,
///      unlink the socket, drain the service — queued jobs are cancelled,
///      running ones trip their cancel tokens and deliver (and checkpoint)
///      best-so-far results — flush every connection's pending output,
///      flush metrics, and return 0.
///
/// A clean drain is exit code 0 by design: SIGTERM is the orchestrator's
/// "please finish", not a failure.
///
/// Multi-tenancy: when `tenants_path` (or service.tenants) is set, clients
/// authenticate with {"op":"auth","key":...} or a per-request "key"; the
/// resolved tenant drives fair-share scheduling, quotas, and plan-cache
/// partitioning inside the Service. Without tenants the daemon behaves
/// exactly as before (no keys, one default tenant).

#include <cstddef>
#include <string>

#include "service/service.hpp"

namespace fastqaoa::service {

struct DaemonOptions {
  ServiceConfig service;
  /// Unix-domain socket path (required).
  std::string socket_path;
  /// TCP listener on 127.0.0.1 when >= 0 (0 = kernel-assigned port,
  /// printed on startup). Disabled when < 0.
  int tcp_port = -1;
  /// Where to flush the final metrics JSON on drain ("" = skip).
  std::string metrics_path;
  /// Prometheus text exposition for file-based scrapers: atomically
  /// rewritten every metrics_interval_seconds while the daemon runs, and
  /// once more at drain ("" = disabled).
  std::string prometheus_path;
  double metrics_interval_seconds = 5.0;
  bool verbose = true;

  /// Tenant config JSON (see tenant.hpp). Loaded into service.tenants at
  /// startup; a parse error is a startup failure (exit 2). "" = skip.
  std::string tenants_path;

  /// Idle-connection timeout: a connection with no pending requests, no
  /// buffered output, and no traffic for this long is closed (counted as
  /// evicted_idle). 0 disables.
  double idle_timeout_seconds = 300.0;
  /// Write-stall timeout: when output is pending and the peer has accepted
  /// no bytes for this long, the client is evicted (counted as
  /// evicted_slow) and any sync job it was waiting on is cancelled.
  /// 0 disables.
  double write_timeout_seconds = 10.0;
  /// Hard cap on concurrent connections; excess accepts are answered with
  /// a structured "too_many_connections" error and closed.
  std::size_t max_connections = 1024;
  /// Longest accepted request line. A connection that exceeds it mid-line
  /// is evicted (bad_request + evicted_oversize) instead of buffering
  /// without bound.
  std::size_t max_line_bytes = 16u << 20;  // 16 MiB
  /// Per-connection outgoing buffer cap: once this much output is pending
  /// the connection stops being served (and a subscribe stream stops being
  /// pumped) until the peer drains it. Bounds daemon memory per client.
  std::size_t write_buffer_cap = 8u << 20;  // 8 MiB
  /// Parsed-but-unserved request lines buffered per connection before the
  /// loop stops reading from it (pipelining backpressure).
  std::size_t max_pipeline = 64;
  /// SO_SNDBUF override for accepted sockets (0 = kernel default). Tests
  /// shrink it so write-stall eviction triggers without megabytes of
  /// kernel-side slack.
  int sndbuf_bytes = 0;
};

/// Run until SIGTERM/SIGINT, then drain. Returns the process exit code:
/// 0 after a clean drain, non-zero only for startup failures (bad socket
/// path, bind errors, unreadable tenant file).
int run_daemon(const DaemonOptions& options);

/// The metrics document run_daemon flushes: {"service": <stats>,
/// "engine": <obs global snapshot>}. Exposed for the daemon's final flush
/// and for anything that wants the same document on demand.
std::string metrics_document(const Service& service);

}  // namespace fastqaoa::service
