#pragma once
/// \file server.hpp
/// The daemon: listeners + connection threads around an embedded Service.
///
/// run_daemon() owns the whole lifecycle so `qaoa_serve` is a thin flag
/// parser and tests can fork a real daemon without exec'ing a binary:
///
///   1. bind listeners (Unix socket always; TCP-on-loopback when asked),
///   2. accept connections, one thread per connection, each speaking the
///      NDJSON protocol via handle_request_line(),
///   3. on SIGTERM/SIGINT (self-pipe, async-signal-safe): stop accepting,
///      unlink the socket, drain the service — queued jobs are cancelled,
///      running ones trip their cancel tokens and deliver (and checkpoint)
///      best-so-far results — flush metrics, and return 0.
///
/// A clean drain is exit code 0 by design: SIGTERM is the orchestrator's
/// "please finish", not a failure.

#include <string>

#include "service/service.hpp"

namespace fastqaoa::service {

struct DaemonOptions {
  ServiceConfig service;
  /// Unix-domain socket path (required).
  std::string socket_path;
  /// TCP listener on 127.0.0.1 when >= 0 (0 = kernel-assigned port,
  /// printed on startup). Disabled when < 0.
  int tcp_port = -1;
  /// Where to flush the final metrics JSON on drain ("" = skip).
  std::string metrics_path;
  /// Prometheus text exposition for file-based scrapers: atomically
  /// rewritten every metrics_interval_seconds while the daemon runs, and
  /// once more at drain ("" = disabled).
  std::string prometheus_path;
  double metrics_interval_seconds = 5.0;
  bool verbose = true;
};

/// Run until SIGTERM/SIGINT, then drain. Returns the process exit code:
/// 0 after a clean drain, non-zero only for startup failures (bad socket
/// path, bind errors).
int run_daemon(const DaemonOptions& options);

/// The metrics document run_daemon flushes: {"service": <stats>,
/// "engine": <obs global snapshot>}. Exposed for the daemon's final flush
/// and for anything that wants the same document on demand.
std::string metrics_document(const Service& service);

}  // namespace fastqaoa::service
