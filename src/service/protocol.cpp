#include "service/protocol.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/error.hpp"
#include "linalg/kernels/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"

namespace fastqaoa::service {

namespace {

std::vector<double> doubles_from_json(const Json& value,
                                      const std::string& field) {
  FASTQAOA_CHECK(value.is_array(), "'" + field + "' must be an array");
  std::vector<double> out;
  out.reserve(value.size());
  for (const Json& v : value.as_array()) out.push_back(v.as_double());
  return out;
}

Json doubles_to_json(const std::vector<double>& values) {
  Json arr = Json::array();
  for (const double v : values) arr.push_back(Json(v));
  return arr;
}

/// batch_evaluate angle sets arrive as an array of per-lane arrays
/// ("betas": [[...], [...], ...]); flatten lane-major and report how many
/// lanes the field carried. Every lane must have the same length.
std::vector<double> lanes_from_json(const Json& value,
                                    const std::string& field, int& lanes) {
  FASTQAOA_CHECK(value.is_array() && value.size() > 0,
                 "'" + field + "' must be a non-empty array of angle arrays");
  std::vector<double> flat;
  std::size_t width = 0;
  for (std::size_t l = 0; l < value.size(); ++l) {
    const Json& lane = value.as_array()[l];
    FASTQAOA_CHECK(lane.is_array(),
                   "'" + field + "' lanes must be arrays of numbers");
    if (l == 0) {
      width = lane.size();
      flat.reserve(value.size() * width);
    }
    FASTQAOA_CHECK(lane.size() == width,
                   "'" + field + "' lanes must all have the same length");
    for (const Json& v : lane.as_array()) flat.push_back(v.as_double());
  }
  lanes = static_cast<int>(value.size());
  return flat;
}

/// Inverse of lanes_from_json: lane-major flat angles -> nested arrays.
Json lanes_to_json(const std::vector<double>& flat, int lanes) {
  Json outer = Json::array();
  const std::size_t width =
      lanes > 0 ? flat.size() / static_cast<std::size_t>(lanes) : 0;
  for (int l = 0; l < lanes; ++l) {
    Json inner = Json::array();
    for (std::size_t i = 0; i < width; ++i) {
      inner.push_back(Json(flat[static_cast<std::size_t>(l) * width + i]));
    }
    outer.push_back(std::move(inner));
  }
  return outer;
}

Json schedule_to_json(const AngleSchedule& s) {
  Json j = Json::object();
  j.set("p", Json(static_cast<long long>(s.p)));
  j.set("expectation", Json(s.expectation));
  j.set("betas", doubles_to_json(s.betas));
  j.set("gammas", doubles_to_json(s.gammas));
  j.set("optimizer_calls", Json(static_cast<std::uint64_t>(s.optimizer_calls)));
  j.set("evaluations", Json(static_cast<std::uint64_t>(s.evaluations)));
  j.set("stop_reason", Json(runtime::to_string(s.stop_reason)));
  return j;
}

Json result_to_json(const JobKind kind, const JobResultData& r) {
  Json j = Json::object();
  j.set("expectation", Json(r.expectation));
  switch (kind) {
    case JobKind::Evaluate:
      break;
    case JobKind::BatchEvaluate:
      j.set("expectations", doubles_to_json(r.expectations));
      j.set("lanes", Json(static_cast<long long>(r.expectations.size())));
      break;
    case JobKind::Gradient:
      j.set("grad_betas", doubles_to_json(r.grad_betas));
      j.set("grad_gammas", doubles_to_json(r.grad_gammas));
      break;
    case JobKind::Sample:
      j.set("shot_estimate", Json(r.shot_estimate));
      j.set("shot_stderr", Json(r.shot_stderr));
      break;
    case JobKind::FindAngles: {
      Json schedules = Json::array();
      for (const AngleSchedule& s : r.schedules) {
        schedules.push_back(schedule_to_json(s));
      }
      j.set("schedules", std::move(schedules));
      break;
    }
  }
  if (r.mps) {
    // The MPS engine's fidelity proxy for the reported expectation: how
    // much weight truncation discarded and how hard the bond cap was hit.
    j.set("engine", Json("mps"));
    j.set("discarded_weight", Json(r.discarded_weight));
    j.set("truncations", Json(r.truncations));
    j.set("max_bond_reached", Json(r.max_bond_reached));
  }
  j.set("stop_reason", Json(runtime::to_string(r.stop)));
  j.set("cache_hit", Json(r.cache_hit));
  j.set("seconds", Json(r.seconds));
  return j;
}

JobKind kind_from_op(const std::string& op) {
  if (op == "evaluate") return JobKind::Evaluate;
  if (op == "batch_evaluate") return JobKind::BatchEvaluate;
  if (op == "gradient") return JobKind::Gradient;
  if (op == "find_angles") return JobKind::FindAngles;
  if (op == "sample") return JobKind::Sample;
  throw Error("unknown job op '" + op + "'");
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Render the always-on queue-depth histogram as a Prometheus histogram
/// family (cumulative le buckets, +Inf terminator, _sum/_count), matching
/// what obs::to_prometheus emits for profiling-build histograms.
void append_depth_histogram(std::string& text, const obs::HistogramStat& h,
                            const std::string& labels) {
  const std::string family = "fastqaoa_service_queue_depth_at_admission";
  if (text.find("# TYPE " + family + ' ') != std::string::npos) return;
  text += "# HELP " + family + " queue depth observed at each admission\n";
  text += "# TYPE " + family + " histogram\n";
  std::size_t first = obs::HistogramStat::kBuckets;
  std::size_t last = 0;
  for (std::size_t i = 0; i < obs::HistogramStat::kBuckets; ++i) {
    if (h.buckets[i] != 0) {
      if (first == obs::HistogramStat::kBuckets) first = i;
      last = i;
    }
  }
  std::uint64_t cum = 0;
  for (std::size_t i = first; i <= last && i < obs::HistogramStat::kBuckets;
       ++i) {
    cum += h.buckets[i];
    const double upper = obs::HistogramStat::bucket_upper(i);
    if (std::isinf(upper)) break;  // the +Inf line below covers it
    text += family + "_bucket{" + labels + ",le=\"" + fmt_double(upper) +
            "\"} " + std::to_string(cum) + '\n';
  }
  text += family + "_bucket{" + labels + ",le=\"+Inf\"} " +
          std::to_string(h.count) + '\n';
  text += family + "_sum{" + labels + "} " + fmt_double(h.sum) + '\n';
  text += family + "_count{" + labels + "} " + std::to_string(h.count) + '\n';
}

}  // namespace

JobSpec job_spec_from_json(const Json& request) {
  JobSpec spec;
  spec.kind = kind_from_op(request.at("op").as_string());
  if (const Json* v = request.find("problem")) spec.problem.problem = v->as_string();
  if (const Json* v = request.find("mixer")) spec.problem.mixer = v->as_string();
  if (const Json* v = request.find("n")) spec.problem.n = static_cast<int>(v->as_int64());
  if (const Json* v = request.find("k")) spec.problem.k = static_cast<int>(v->as_int64());
  if (const Json* v = request.find("density")) spec.problem.density = v->as_double();
  if (const Json* v = request.find("seed")) spec.problem.instance_seed = v->as_uint64();
  if (const Json* v = request.find("degree")) spec.problem.degree = static_cast<int>(v->as_int64());
  if (const Json* v = request.find("engine")) spec.problem.engine = v->as_string();
  if (const Json* v = request.find("max_bond")) spec.problem.max_bond = static_cast<int>(v->as_int64());
  if (const Json* v = request.find("fidelity_budget")) spec.problem.fidelity_budget = v->as_double();
  if (const Json* v = request.find("trunc_tol")) spec.problem.trunc_tol = v->as_double();
  if (const Json* v = request.find("p")) spec.p = static_cast<int>(v->as_int64());
  if (const Json* v = request.find("minimize")) spec.minimize = v->as_bool();
  if (spec.kind == JobKind::BatchEvaluate) {
    int beta_lanes = 0;
    int gamma_lanes = 0;
    if (const Json* v = request.find("betas")) {
      spec.betas = lanes_from_json(*v, "betas", beta_lanes);
    }
    if (const Json* v = request.find("gammas")) {
      spec.gammas = lanes_from_json(*v, "gammas", gamma_lanes);
    }
    FASTQAOA_CHECK(beta_lanes == gamma_lanes,
                   "betas and gammas must carry the same number of lanes");
    spec.lanes = beta_lanes;
  } else {
    if (const Json* v = request.find("betas")) spec.betas = doubles_from_json(*v, "betas");
    if (const Json* v = request.find("gammas")) spec.gammas = doubles_from_json(*v, "gammas");
  }
  if (const Json* v = request.find("shots")) spec.shots = v->as_uint64();
  if (const Json* v = request.find("hops")) spec.hops = static_cast<int>(v->as_int64());
  if (const Json* v = request.find("starts")) spec.starts = static_cast<int>(v->as_int64());
  if (const Json* v = request.find("opt_seed")) spec.opt_seed = v->as_uint64();
  if (const Json* v = request.find("checkpoint")) spec.checkpoint = v->as_string();
  if (const Json* v = request.find("deadline")) spec.deadline_seconds = v->as_double();
  if (const Json* v = request.find("max_evals")) {
    spec.max_evaluations = static_cast<std::size_t>(v->as_uint64());
  }
  validate_job_spec(spec);
  return spec;
}

Json job_spec_to_json(const JobSpec& spec) {
  Json j = Json::object();
  j.set("op", Json(to_string(spec.kind)));
  j.set("problem", Json(spec.problem.problem));
  j.set("mixer", Json(spec.problem.mixer));
  j.set("n", Json(static_cast<long long>(spec.problem.n)));
  if (spec.problem.k >= 0) j.set("k", Json(static_cast<long long>(spec.problem.k)));
  j.set("density", Json(spec.problem.density));
  j.set("seed", Json(spec.problem.instance_seed));
  if (spec.problem.degree != 0) {
    j.set("degree", Json(static_cast<long long>(spec.problem.degree)));
  }
  if (spec.problem.engine != "exact") {
    j.set("engine", Json(spec.problem.engine));
    j.set("max_bond", Json(static_cast<long long>(spec.problem.max_bond)));
    j.set("fidelity_budget", Json(spec.problem.fidelity_budget));
    j.set("trunc_tol", Json(spec.problem.trunc_tol));
  }
  j.set("p", Json(static_cast<long long>(spec.p)));
  if (spec.minimize) j.set("minimize", Json(true));
  switch (spec.kind) {
    case JobKind::Evaluate:
    case JobKind::Gradient:
      j.set("betas", doubles_to_json(spec.betas));
      j.set("gammas", doubles_to_json(spec.gammas));
      break;
    case JobKind::BatchEvaluate:
      j.set("betas", lanes_to_json(spec.betas, spec.lanes));
      j.set("gammas", lanes_to_json(spec.gammas, spec.lanes));
      break;
    case JobKind::Sample:
      j.set("betas", doubles_to_json(spec.betas));
      j.set("gammas", doubles_to_json(spec.gammas));
      j.set("shots", Json(spec.shots));
      j.set("opt_seed", Json(spec.opt_seed));
      break;
    case JobKind::FindAngles:
      j.set("hops", Json(static_cast<long long>(spec.hops)));
      j.set("starts", Json(static_cast<long long>(spec.starts)));
      j.set("opt_seed", Json(spec.opt_seed));
      if (!spec.checkpoint.empty()) j.set("checkpoint", Json(spec.checkpoint));
      if (spec.deadline_seconds > 0.0) j.set("deadline", Json(spec.deadline_seconds));
      if (spec.max_evaluations > 0) {
        j.set("max_evals", Json(static_cast<std::uint64_t>(spec.max_evaluations)));
      }
      break;
  }
  return j;
}

Json job_to_json(const Job& job) {
  Json j = Json::object();
  j.set("id", Json(job.id));
  j.set("op", Json(to_string(job.spec.kind)));
  JobState state;
  JobResultData result;
  std::string error;
  {
    std::lock_guard<std::mutex> lock(job.mu);
    state = job.state;
    if (state == JobState::Done || state == JobState::Cancelled) {
      result = job.result;
    }
    error = job.error;
  }
  j.set("state", Json(to_string(state)));
  if (state == JobState::Done ||
      (state == JobState::Cancelled && !result.schedules.empty())) {
    j.set("result", result_to_json(job.spec.kind, result));
  } else if (state == JobState::Cancelled) {
    j.set("stop_reason", Json(runtime::to_string(runtime::StopReason::Cancelled)));
  }
  if (state == JobState::Failed) {
    Json err = Json::object();
    err.set("code", Json("job_failed"));
    err.set("message", Json(error));
    j.set("error", std::move(err));
  }
  return j;
}

Json stats_to_json(const ServiceStats& stats) {
  Json cache = Json::object();
  cache.set("entries", Json(static_cast<std::uint64_t>(stats.plan_cache.entries)));
  cache.set("bytes", Json(static_cast<std::uint64_t>(stats.plan_cache.bytes)));
  cache.set("hits", Json(stats.plan_cache.hits));
  cache.set("misses", Json(stats.plan_cache.misses));
  cache.set("evictions", Json(stats.plan_cache.evictions));
  if (!stats.plan_cache.partitions.empty()) {
    Json parts = Json::object();
    for (const auto& [name, ps] : stats.plan_cache.partitions) {
      Json p = Json::object();
      p.set("entries", Json(static_cast<std::uint64_t>(ps.entries)));
      p.set("bytes", Json(static_cast<std::uint64_t>(ps.bytes)));
      p.set("evictions", Json(ps.evictions));
      parts.set(name, std::move(p));
    }
    cache.set("partitions", std::move(parts));
  }

  Json j = Json::object();
  j.set("queue_depth", Json(static_cast<std::uint64_t>(stats.queue_depth)));
  j.set("running", Json(static_cast<std::uint64_t>(stats.running)));
  j.set("workers", Json(static_cast<long long>(stats.workers)));
  j.set("shards", Json(static_cast<long long>(stats.shards)));
  j.set("submitted", Json(stats.submitted));
  j.set("completed", Json(stats.completed));
  j.set("failed", Json(stats.failed));
  j.set("cancelled", Json(stats.cancelled));
  j.set("rejected", Json(stats.rejected));
  j.set("batch_jobs", Json(stats.batch_jobs));
  j.set("batched_evals", Json(stats.batched_evals));
  j.set("mean_batch_width",
        Json(stats.batch_jobs > 0
                 ? static_cast<double>(stats.batched_evals) /
                       static_cast<double>(stats.batch_jobs)
                 : 0.0));
  j.set("subscribe_dropped", Json(stats.subscribe_dropped));
  j.set("over_quota", Json(stats.over_quota));
  j.set("draining", Json(stats.draining));
  j.set("kernel_backend", Json(linalg::kernels::active_name()));
  j.set("plan_cache", std::move(cache));
  if (!stats.tenants.empty()) {
    Json tenants = Json::array();
    for (const ServiceStats::TenantStats& t : stats.tenants) {
      Json tj = Json::object();
      tj.set("name", Json(t.name));
      tj.set("weight", Json(t.weight));
      tj.set("queued", Json(static_cast<std::uint64_t>(t.queued)));
      tj.set("running", Json(static_cast<std::uint64_t>(t.running)));
      tj.set("submitted", Json(t.submitted));
      tj.set("completed", Json(t.completed));
      tj.set("rejected", Json(t.rejected));
      tj.set("over_quota", Json(t.over_quota));
      tenants.push_back(std::move(tj));
    }
    j.set("tenants", std::move(tenants));
  }
  {
    Json fe = Json::object();
    const ServiceStats::FrontendSnapshot& f = stats.frontend;
    fe.set("accepted", Json(f.accepted));
    fe.set("active", Json(f.active));
    fe.set("closed", Json(f.closed));
    fe.set("evicted_slow", Json(f.evicted_slow));
    fe.set("evicted_idle", Json(f.evicted_idle));
    fe.set("evicted_oversize", Json(f.evicted_oversize));
    fe.set("rejected_conn_limit", Json(f.rejected_conn_limit));
    fe.set("shed_fd_pressure", Json(f.shed_fd_pressure));
    fe.set("auth_failures", Json(f.auth_failures));
    j.set("frontend", std::move(fe));
  }
  return j;
}

std::string metrics_prometheus(Service& service) {
  // Engine side: every counter/timer/histogram the workers merged into the
  // global aggregate (empty in FASTQAOA_PROFILING=OFF builds).
  std::string text = obs::to_prometheus(obs::global_snapshot());

  // Service side: always-available gauges/counters, carrying the same
  // kernel_backend label the engine snapshot attaches. A few of these
  // families (the service.jobs.* counters) are ALSO tracked by the engine
  // aggregate in profiling builds; emitting both would be a duplicate
  // # TYPE, so the engine series wins when present and the stats-derived
  // sample fills the gap in FASTQAOA_PROFILING=OFF builds (or when metrics
  // recording is disabled at runtime).
  const std::string labels =
      std::string("kernel_backend=\"") +
      obs::escape_prometheus_label_value(linalg::kernels::active_name()) +
      '"';
  const ServiceStats st = service.stats();
  const auto gauge = [&text, &labels](const char* name, const char* help,
                                      double value) {
    if (text.find(std::string("# TYPE ") + name + ' ') != std::string::npos) {
      return;
    }
    obs::append_prometheus_gauge(text, name, help, value, labels);
  };
  const auto counter = [&text, &labels](const char* name, const char* help,
                                        std::uint64_t value) {
    if (text.find(std::string("# TYPE ") + name + ' ') != std::string::npos) {
      return;
    }
    obs::append_prometheus_counter(text, name, help, value, labels);
  };
  gauge("fastqaoa_service_queue_depth",
        "jobs waiting in the admission queue",
        static_cast<double>(st.queue_depth));
  gauge("fastqaoa_service_running", "jobs currently executing",
        static_cast<double>(st.running));
  gauge("fastqaoa_service_workers", "worker pool size",
        static_cast<double>(st.workers));
  gauge("fastqaoa_service_shards",
        "configured statevector shard request (0 = auto)",
        static_cast<double>(st.shards));
  gauge("fastqaoa_service_draining", "1 while the daemon is draining",
        st.draining ? 1.0 : 0.0);
  counter("fastqaoa_service_jobs_submitted_total", "jobs admitted",
          st.submitted);
  counter("fastqaoa_service_jobs_completed_total",
          "jobs finished successfully", st.completed);
  counter("fastqaoa_service_jobs_failed_total", "jobs that raised an error",
          st.failed);
  counter("fastqaoa_service_jobs_cancelled_total", "jobs cancelled",
          st.cancelled);
  counter("fastqaoa_service_jobs_rejected_total",
          "submissions rejected by backpressure", st.rejected);
  counter("fastqaoa_service_batch_jobs_total", "batch_evaluate jobs finished",
          st.batch_jobs);
  counter("fastqaoa_service_batched_evals_total",
          "total lanes swept by batch_evaluate jobs", st.batched_evals);
  counter("fastqaoa_service_subscribe_dropped_events_total",
          "progress events dropped because a subscriber fell behind",
          st.subscribe_dropped);
  gauge("fastqaoa_service_plan_cache_entries", "plans resident in the cache",
        static_cast<double>(st.plan_cache.entries));
  gauge("fastqaoa_service_plan_cache_bytes", "bytes held by cached plans",
        static_cast<double>(st.plan_cache.bytes));
  counter("fastqaoa_service_plan_cache_hits_total", "plan cache hits",
          st.plan_cache.hits);
  counter("fastqaoa_service_plan_cache_misses_total", "plan cache misses",
          st.plan_cache.misses);
  counter("fastqaoa_service_plan_cache_evictions_total",
          "plan cache evictions", st.plan_cache.evictions);

  // Front-end connection counters (always on; the event loop is the only
  // writer). These families never exist in the engine snapshot, so no
  // dedup guard is needed.
  counter("fastqaoa_frontend_connections_accepted_total",
          "connections accepted by the event loop", st.frontend.accepted);
  counter("fastqaoa_frontend_connections_closed_total",
          "connections closed (any reason)", st.frontend.closed);
  counter("fastqaoa_frontend_evicted_slow_total",
          "connections evicted for write-buffer stall", st.frontend.evicted_slow);
  counter("fastqaoa_frontend_evicted_idle_total",
          "connections evicted for idle timeout", st.frontend.evicted_idle);
  counter("fastqaoa_frontend_evicted_oversize_total",
          "connections evicted for an oversized request line",
          st.frontend.evicted_oversize);
  counter("fastqaoa_frontend_rejected_conn_limit_total",
          "connections refused at the hard connection limit",
          st.frontend.rejected_conn_limit);
  counter("fastqaoa_frontend_shed_fd_pressure_total",
          "idle connections shed on EMFILE/ENFILE",
          st.frontend.shed_fd_pressure);
  counter("fastqaoa_frontend_auth_failures_total",
          "requests rejected for a missing or unknown API key",
          st.frontend.auth_failures);
  gauge("fastqaoa_frontend_connections_active", "open connections right now",
        static_cast<double>(st.frontend.active));

  // Queue depth at admission as a real histogram family (always on, so
  // depth quantiles survive FASTQAOA_PROFILING=OFF builds).
  append_depth_histogram(text, st.queue_depth_hist, labels);

  // Per-tenant series: one # TYPE block per family, one tenant-labelled
  // sample per tenant (append_prometheus_counter would re-emit the TYPE
  // header per sample, which the strict validator rejects).
  if (!st.tenants.empty()) {
    const auto tenant_family = [&](const char* name, const char* help,
                                   const auto& project) {
      text += "# HELP " + std::string(name) + ' ' + help + '\n';
      text += "# TYPE " + std::string(name) + " counter\n";
      for (const ServiceStats::TenantStats& t : st.tenants) {
        text += std::string(name) + "{tenant=\"" +
                obs::escape_prometheus_label_value(t.name) + "\"," + labels +
                "} " + std::to_string(project(t)) + '\n';
      }
    };
    tenant_family("fastqaoa_tenant_jobs_submitted_total",
                  "jobs admitted per tenant",
                  [](const ServiceStats::TenantStats& t) { return t.submitted; });
    tenant_family("fastqaoa_tenant_jobs_completed_total",
                  "jobs finished successfully per tenant",
                  [](const ServiceStats::TenantStats& t) { return t.completed; });
    tenant_family("fastqaoa_tenant_jobs_rejected_total",
                  "submissions rejected per tenant (backpressure or quota)",
                  [](const ServiceStats::TenantStats& t) { return t.rejected; });
    tenant_family("fastqaoa_tenant_over_quota_total",
                  "over_quota rejections per tenant",
                  [](const ServiceStats::TenantStats& t) { return t.over_quota; });
    text += "# HELP fastqaoa_tenant_queue_depth jobs waiting per tenant\n";
    text += "# TYPE fastqaoa_tenant_queue_depth gauge\n";
    for (const ServiceStats::TenantStats& t : st.tenants) {
      text += "fastqaoa_tenant_queue_depth{tenant=\"" +
              obs::escape_prometheus_label_value(t.name) + "\"," + labels +
              "} " + std::to_string(t.queued) + '\n';
    }
  }
  return text;
}

bool is_job_op(const std::string& op) {
  return op == "evaluate" || op == "batch_evaluate" || op == "gradient" ||
         op == "find_angles" || op == "sample";
}

Json error_response(std::string_view code, std::string_view message) {
  Json err = Json::object();
  err.set("code", Json(code));
  err.set("message", Json(message));
  Json j = Json::object();
  j.set("ok", Json(false));
  j.set("error", std::move(err));
  return j;
}

Json submit_job_request(Service& service, const Json& request,
                        const std::string& tenant,
                        std::shared_ptr<Job>* out_job) {
  JobSpec spec = job_spec_from_json(request);
  spec.tenant = tenant;
  Service::SubmitOutcome outcome = service.submit(std::move(spec));
  if (!outcome.accepted()) {
    // Structured backpressure: tell the client how deep the queue is, and
    // for quota rejections when to come back.
    Json err = Json::object();
    err.set("code", Json(outcome.error_code));
    std::string message;
    if (outcome.error_code == "overloaded") {
      message = "queue is at its high-water mark; retry later";
    } else if (outcome.error_code == "over_quota") {
      message = "tenant quota exceeded; retry after retry_after_ms";
    } else {
      message = "service is draining; no new jobs accepted";
    }
    err.set("message", Json(message));
    err.set("queue_depth",
            Json(static_cast<std::uint64_t>(outcome.queue_depth)));
    if (outcome.retry_after_ms > 0) {
      err.set("retry_after_ms",
              Json(static_cast<long long>(outcome.retry_after_ms)));
    }
    Json response = Json::object();
    response.set("ok", Json(false));
    response.set("error", std::move(err));
    return response;
  }
  const Json* async = request.find("async");
  if (async != nullptr && async->as_bool()) {
    Json j = Json::object();
    j.set("ok", Json(true));
    j.set("id", Json(outcome.job->id));
    j.set("state", Json(to_string(outcome.job->snapshot_state())));
    return j;
  }
  *out_job = std::move(outcome.job);
  return Json();  // null: the caller waits for *out_job and renders it
}

Json check_auth(Service& service, const Json& request, const std::string& op,
                RequestContext& ctx) {
  const TenantRegistry& registry = service.tenant_registry();
  // A per-request "key" acts as an implicit auth for this connection.
  if (const Json* key = request.find("key");
      key != nullptr && key->is_string() && registry.enabled()) {
    if (auto tenant = registry.by_key(key->as_string())) {
      ctx.tenant = tenant->name;
      ctx.authenticated = true;
    } else {
      service.frontend.auth_failures.fetch_add(1, std::memory_order_relaxed);
      return error_response("unauthorized", "unknown API key");
    }
  }
  if (registry.enabled() && !ctx.trusted && !ctx.authenticated &&
      op != "ping" && op != "auth") {
    service.frontend.auth_failures.fetch_add(1, std::memory_order_relaxed);
    return error_response(
        "unauthorized",
        "tenants are configured; authenticate with {\"op\":\"auth\",\"key\":...}");
  }
  return Json();
}

Json handle_request(Service& service, const Json& request) {
  RequestContext trusted_ctx;
  return handle_request(service, request, trusted_ctx);
}

Json handle_request(Service& service, const Json& request,
                    RequestContext& ctx) {
  try {
    const std::string& op = request.at("op").as_string();
    if (Json denied = check_auth(service, request, op, ctx);
        !denied.is_null()) {
      return denied;
    }
    if (op == "auth") {
      if (!service.tenant_registry().enabled()) {
        // No tenant file: auth is a no-op so clients can send it
        // unconditionally.
        Json j = Json::object();
        j.set("ok", Json(true));
        j.set("tenant", Json("default"));
        return j;
      }
      if (!ctx.authenticated) {
        service.frontend.auth_failures.fetch_add(1,
                                                 std::memory_order_relaxed);
        return error_response("unauthorized", "missing or unknown API key");
      }
      Json j = Json::object();
      j.set("ok", Json(true));
      j.set("tenant", Json(ctx.tenant));
      return j;
    }
    if (is_job_op(op)) {
      std::shared_ptr<Job> job;
      Json response = submit_job_request(service, request, ctx.tenant, &job);
      if (job == nullptr) return response;
      Service::wait(*job);
      Json j = job_to_json(*job);
      j.set("ok", Json(true));
      return j;
    }
    if (op == "status") {
      const std::uint64_t id = request.at("id").as_uint64();
      std::shared_ptr<Job> job = service.find(id);
      if (job == nullptr) {
        return error_response("unknown_job",
                              "no job with id " + std::to_string(id));
      }
      Json j = job_to_json(*job);
      j.set("ok", Json(true));
      return j;
    }
    if (op == "cancel") {
      const std::uint64_t id = request.at("id").as_uint64();
      std::shared_ptr<Job> job = service.find(id);
      if (job == nullptr) {
        return error_response("unknown_job",
                              "no job with id " + std::to_string(id));
      }
      const bool cancelled = service.cancel(id);
      Json j = Json::object();
      j.set("ok", Json(true));
      j.set("id", Json(id));
      j.set("cancelled", Json(cancelled));
      return j;
    }
    if (op == "stats") {
      Json j = Json::object();
      j.set("ok", Json(true));
      j.set("stats", stats_to_json(service.stats()));
      return j;
    }
    if (op == "metrics") {
      Json j = Json::object();
      j.set("ok", Json(true));
      j.set("format", Json("prometheus"));
      j.set("text", Json(metrics_prometheus(service)));
      return j;
    }
    if (op == "subscribe") {
      // Reachable only through a non-streaming dispatcher (in-process
      // request() or a transport that didn't divert); the daemon's
      // connection loop routes subscribe lines to handle_subscribe().
      return error_response("bad_request",
                            "subscribe requires a streaming connection");
    }
    if (op == "ping") {
      Json j = Json::object();
      j.set("ok", Json(true));
      j.set("pong", Json(true));
      return j;
    }
    return error_response("bad_request", "unknown op '" + op + "'");
  } catch (const std::exception& e) {
    return error_response("bad_request", e.what());
  }
}

std::string handle_request_line(Service& service, const std::string& line) {
  Json request;
  try {
    request = Json::parse(line);
  } catch (const std::exception& e) {
    return error_response("bad_request", e.what()).dump();
  }
  return handle_request(service, request).dump();
}

bool is_subscribe_line(const std::string& line) {
  try {
    const Json request = Json::parse(line);
    const Json* op = request.find("op");
    return op != nullptr && op->is_string() && op->as_string() == "subscribe";
  } catch (...) {
    return false;  // the normal path will produce the parse error response
  }
}

Json subscribe_attach(Service& service, const Json& request,
                      std::shared_ptr<Job>* out_job) {
  std::uint64_t id = 0;
  try {
    id = request.at("id").as_uint64();
  } catch (const std::exception& e) {
    return error_response("bad_request", e.what());
  }
  std::shared_ptr<Job> job = service.find(id);
  if (job == nullptr) {
    return error_response("unknown_job",
                          "no job with id " + std::to_string(id));
  }
  Json ack = Json::object();
  ack.set("ok", Json(true));
  ack.set("id", Json(id));
  ack.set("subscribed", Json(true));
  ack.set("state", Json(to_string(job->snapshot_state())));
  *out_job = std::move(job);
  return ack;
}

std::string stamp_terminal_event(const std::string& line,
                                 std::uint64_t dropped_events,
                                 bool* is_terminal) {
  if (is_terminal != nullptr) *is_terminal = false;
  try {
    Json ev = Json::parse(line);
    const Json* kind = ev.find("event");
    if (kind != nullptr && kind->is_string() && kind->as_string() == "done") {
      // Stamp this subscriber's drop count into the terminal event.
      ev.set("dropped_events", Json(dropped_events));
      if (is_terminal != nullptr) *is_terminal = true;
      return ev.dump();
    }
  } catch (...) {
    // Not JSON? Forward verbatim; the publisher only emits JSON today.
  }
  return line;
}

void handle_subscribe(Service& service, const Json& request,
                      const std::function<bool(const std::string&)>& emit) {
  int throttle_ms = 0;
  if (const Json* v = request.find("throttle_ms")) {
    try {
      throttle_ms = std::clamp(static_cast<int>(v->as_int64()), 0, 10'000);
    } catch (const std::exception& e) {
      emit(error_response("bad_request", e.what()).dump());
      return;
    }
  }
  std::shared_ptr<Job> job;
  const Json ack = subscribe_attach(service, request, &job);
  if (job == nullptr) {
    emit(ack.dump());
    return;
  }

  ProgressChannel::Subscription sub = job->progress.subscribe();
  if (!emit(ack.dump())) return;

  std::string line;
  for (;;) {
    // The throttle simulates (or tests) a slow consumer: while the job is
    // live the subscriber sits out `throttle_ms` per event and its bounded
    // queue absorbs/drops the overflow; once the channel closes the wait
    // returns immediately, so the backlog and terminal event drain fast.
    if (throttle_ms > 0) sub.wait_closed_for(throttle_ms);
    if (!sub.next(line)) break;
    bool terminal = false;
    line = stamp_terminal_event(line, sub.dropped(), &terminal);
    if (!emit(line) || terminal) return;
  }
}

}  // namespace fastqaoa::service
