#include "service/protocol.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "linalg/kernels/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"

namespace fastqaoa::service {

namespace {

std::vector<double> doubles_from_json(const Json& value,
                                      const std::string& field) {
  FASTQAOA_CHECK(value.is_array(), "'" + field + "' must be an array");
  std::vector<double> out;
  out.reserve(value.size());
  for (const Json& v : value.as_array()) out.push_back(v.as_double());
  return out;
}

Json doubles_to_json(const std::vector<double>& values) {
  Json arr = Json::array();
  for (const double v : values) arr.push_back(Json(v));
  return arr;
}

/// batch_evaluate angle sets arrive as an array of per-lane arrays
/// ("betas": [[...], [...], ...]); flatten lane-major and report how many
/// lanes the field carried. Every lane must have the same length.
std::vector<double> lanes_from_json(const Json& value,
                                    const std::string& field, int& lanes) {
  FASTQAOA_CHECK(value.is_array() && value.size() > 0,
                 "'" + field + "' must be a non-empty array of angle arrays");
  std::vector<double> flat;
  std::size_t width = 0;
  for (std::size_t l = 0; l < value.size(); ++l) {
    const Json& lane = value.as_array()[l];
    FASTQAOA_CHECK(lane.is_array(),
                   "'" + field + "' lanes must be arrays of numbers");
    if (l == 0) {
      width = lane.size();
      flat.reserve(value.size() * width);
    }
    FASTQAOA_CHECK(lane.size() == width,
                   "'" + field + "' lanes must all have the same length");
    for (const Json& v : lane.as_array()) flat.push_back(v.as_double());
  }
  lanes = static_cast<int>(value.size());
  return flat;
}

/// Inverse of lanes_from_json: lane-major flat angles -> nested arrays.
Json lanes_to_json(const std::vector<double>& flat, int lanes) {
  Json outer = Json::array();
  const std::size_t width =
      lanes > 0 ? flat.size() / static_cast<std::size_t>(lanes) : 0;
  for (int l = 0; l < lanes; ++l) {
    Json inner = Json::array();
    for (std::size_t i = 0; i < width; ++i) {
      inner.push_back(Json(flat[static_cast<std::size_t>(l) * width + i]));
    }
    outer.push_back(std::move(inner));
  }
  return outer;
}

Json schedule_to_json(const AngleSchedule& s) {
  Json j = Json::object();
  j.set("p", Json(static_cast<long long>(s.p)));
  j.set("expectation", Json(s.expectation));
  j.set("betas", doubles_to_json(s.betas));
  j.set("gammas", doubles_to_json(s.gammas));
  j.set("optimizer_calls", Json(static_cast<std::uint64_t>(s.optimizer_calls)));
  j.set("evaluations", Json(static_cast<std::uint64_t>(s.evaluations)));
  j.set("stop_reason", Json(runtime::to_string(s.stop_reason)));
  return j;
}

Json result_to_json(const JobKind kind, const JobResultData& r) {
  Json j = Json::object();
  j.set("expectation", Json(r.expectation));
  switch (kind) {
    case JobKind::Evaluate:
      break;
    case JobKind::BatchEvaluate:
      j.set("expectations", doubles_to_json(r.expectations));
      j.set("lanes", Json(static_cast<long long>(r.expectations.size())));
      break;
    case JobKind::Gradient:
      j.set("grad_betas", doubles_to_json(r.grad_betas));
      j.set("grad_gammas", doubles_to_json(r.grad_gammas));
      break;
    case JobKind::Sample:
      j.set("shot_estimate", Json(r.shot_estimate));
      j.set("shot_stderr", Json(r.shot_stderr));
      break;
    case JobKind::FindAngles: {
      Json schedules = Json::array();
      for (const AngleSchedule& s : r.schedules) {
        schedules.push_back(schedule_to_json(s));
      }
      j.set("schedules", std::move(schedules));
      break;
    }
  }
  j.set("stop_reason", Json(runtime::to_string(r.stop)));
  j.set("cache_hit", Json(r.cache_hit));
  j.set("seconds", Json(r.seconds));
  return j;
}

JobKind kind_from_op(const std::string& op) {
  if (op == "evaluate") return JobKind::Evaluate;
  if (op == "batch_evaluate") return JobKind::BatchEvaluate;
  if (op == "gradient") return JobKind::Gradient;
  if (op == "find_angles") return JobKind::FindAngles;
  if (op == "sample") return JobKind::Sample;
  throw Error("unknown job op '" + op + "'");
}

bool is_job_op(const std::string& op) {
  return op == "evaluate" || op == "batch_evaluate" || op == "gradient" ||
         op == "find_angles" || op == "sample";
}

}  // namespace

JobSpec job_spec_from_json(const Json& request) {
  JobSpec spec;
  spec.kind = kind_from_op(request.at("op").as_string());
  if (const Json* v = request.find("problem")) spec.problem.problem = v->as_string();
  if (const Json* v = request.find("mixer")) spec.problem.mixer = v->as_string();
  if (const Json* v = request.find("n")) spec.problem.n = static_cast<int>(v->as_int64());
  if (const Json* v = request.find("k")) spec.problem.k = static_cast<int>(v->as_int64());
  if (const Json* v = request.find("density")) spec.problem.density = v->as_double();
  if (const Json* v = request.find("seed")) spec.problem.instance_seed = v->as_uint64();
  if (const Json* v = request.find("p")) spec.p = static_cast<int>(v->as_int64());
  if (const Json* v = request.find("minimize")) spec.minimize = v->as_bool();
  if (spec.kind == JobKind::BatchEvaluate) {
    int beta_lanes = 0;
    int gamma_lanes = 0;
    if (const Json* v = request.find("betas")) {
      spec.betas = lanes_from_json(*v, "betas", beta_lanes);
    }
    if (const Json* v = request.find("gammas")) {
      spec.gammas = lanes_from_json(*v, "gammas", gamma_lanes);
    }
    FASTQAOA_CHECK(beta_lanes == gamma_lanes,
                   "betas and gammas must carry the same number of lanes");
    spec.lanes = beta_lanes;
  } else {
    if (const Json* v = request.find("betas")) spec.betas = doubles_from_json(*v, "betas");
    if (const Json* v = request.find("gammas")) spec.gammas = doubles_from_json(*v, "gammas");
  }
  if (const Json* v = request.find("shots")) spec.shots = v->as_uint64();
  if (const Json* v = request.find("hops")) spec.hops = static_cast<int>(v->as_int64());
  if (const Json* v = request.find("starts")) spec.starts = static_cast<int>(v->as_int64());
  if (const Json* v = request.find("opt_seed")) spec.opt_seed = v->as_uint64();
  if (const Json* v = request.find("checkpoint")) spec.checkpoint = v->as_string();
  if (const Json* v = request.find("deadline")) spec.deadline_seconds = v->as_double();
  if (const Json* v = request.find("max_evals")) {
    spec.max_evaluations = static_cast<std::size_t>(v->as_uint64());
  }
  validate_job_spec(spec);
  return spec;
}

Json job_spec_to_json(const JobSpec& spec) {
  Json j = Json::object();
  j.set("op", Json(to_string(spec.kind)));
  j.set("problem", Json(spec.problem.problem));
  j.set("mixer", Json(spec.problem.mixer));
  j.set("n", Json(static_cast<long long>(spec.problem.n)));
  if (spec.problem.k >= 0) j.set("k", Json(static_cast<long long>(spec.problem.k)));
  j.set("density", Json(spec.problem.density));
  j.set("seed", Json(spec.problem.instance_seed));
  j.set("p", Json(static_cast<long long>(spec.p)));
  if (spec.minimize) j.set("minimize", Json(true));
  switch (spec.kind) {
    case JobKind::Evaluate:
    case JobKind::Gradient:
      j.set("betas", doubles_to_json(spec.betas));
      j.set("gammas", doubles_to_json(spec.gammas));
      break;
    case JobKind::BatchEvaluate:
      j.set("betas", lanes_to_json(spec.betas, spec.lanes));
      j.set("gammas", lanes_to_json(spec.gammas, spec.lanes));
      break;
    case JobKind::Sample:
      j.set("betas", doubles_to_json(spec.betas));
      j.set("gammas", doubles_to_json(spec.gammas));
      j.set("shots", Json(spec.shots));
      j.set("opt_seed", Json(spec.opt_seed));
      break;
    case JobKind::FindAngles:
      j.set("hops", Json(static_cast<long long>(spec.hops)));
      j.set("starts", Json(static_cast<long long>(spec.starts)));
      j.set("opt_seed", Json(spec.opt_seed));
      if (!spec.checkpoint.empty()) j.set("checkpoint", Json(spec.checkpoint));
      if (spec.deadline_seconds > 0.0) j.set("deadline", Json(spec.deadline_seconds));
      if (spec.max_evaluations > 0) {
        j.set("max_evals", Json(static_cast<std::uint64_t>(spec.max_evaluations)));
      }
      break;
  }
  return j;
}

Json job_to_json(const Job& job) {
  Json j = Json::object();
  j.set("id", Json(job.id));
  j.set("op", Json(to_string(job.spec.kind)));
  JobState state;
  JobResultData result;
  std::string error;
  {
    std::lock_guard<std::mutex> lock(job.mu);
    state = job.state;
    if (state == JobState::Done || state == JobState::Cancelled) {
      result = job.result;
    }
    error = job.error;
  }
  j.set("state", Json(to_string(state)));
  if (state == JobState::Done ||
      (state == JobState::Cancelled && !result.schedules.empty())) {
    j.set("result", result_to_json(job.spec.kind, result));
  } else if (state == JobState::Cancelled) {
    j.set("stop_reason", Json(runtime::to_string(runtime::StopReason::Cancelled)));
  }
  if (state == JobState::Failed) {
    Json err = Json::object();
    err.set("code", Json("job_failed"));
    err.set("message", Json(error));
    j.set("error", std::move(err));
  }
  return j;
}

Json stats_to_json(const ServiceStats& stats) {
  Json cache = Json::object();
  cache.set("entries", Json(static_cast<std::uint64_t>(stats.plan_cache.entries)));
  cache.set("bytes", Json(static_cast<std::uint64_t>(stats.plan_cache.bytes)));
  cache.set("hits", Json(stats.plan_cache.hits));
  cache.set("misses", Json(stats.plan_cache.misses));
  cache.set("evictions", Json(stats.plan_cache.evictions));

  Json j = Json::object();
  j.set("queue_depth", Json(static_cast<std::uint64_t>(stats.queue_depth)));
  j.set("running", Json(static_cast<std::uint64_t>(stats.running)));
  j.set("workers", Json(static_cast<long long>(stats.workers)));
  j.set("submitted", Json(stats.submitted));
  j.set("completed", Json(stats.completed));
  j.set("failed", Json(stats.failed));
  j.set("cancelled", Json(stats.cancelled));
  j.set("rejected", Json(stats.rejected));
  j.set("batch_jobs", Json(stats.batch_jobs));
  j.set("batched_evals", Json(stats.batched_evals));
  j.set("mean_batch_width",
        Json(stats.batch_jobs > 0
                 ? static_cast<double>(stats.batched_evals) /
                       static_cast<double>(stats.batch_jobs)
                 : 0.0));
  j.set("subscribe_dropped", Json(stats.subscribe_dropped));
  j.set("draining", Json(stats.draining));
  j.set("kernel_backend", Json(linalg::kernels::active_name()));
  j.set("plan_cache", std::move(cache));
  return j;
}

std::string metrics_prometheus(Service& service) {
  // Engine side: every counter/timer/histogram the workers merged into the
  // global aggregate (empty in FASTQAOA_PROFILING=OFF builds).
  std::string text = obs::to_prometheus(obs::global_snapshot());

  // Service side: always-available gauges/counters, carrying the same
  // kernel_backend label the engine snapshot attaches. A few of these
  // families (the service.jobs.* counters) are ALSO tracked by the engine
  // aggregate in profiling builds; emitting both would be a duplicate
  // # TYPE, so the engine series wins when present and the stats-derived
  // sample fills the gap in FASTQAOA_PROFILING=OFF builds (or when metrics
  // recording is disabled at runtime).
  const std::string labels =
      std::string("kernel_backend=\"") +
      obs::escape_prometheus_label_value(linalg::kernels::active_name()) +
      '"';
  const ServiceStats st = service.stats();
  const auto gauge = [&text, &labels](const char* name, const char* help,
                                      double value) {
    if (text.find(std::string("# TYPE ") + name + ' ') != std::string::npos) {
      return;
    }
    obs::append_prometheus_gauge(text, name, help, value, labels);
  };
  const auto counter = [&text, &labels](const char* name, const char* help,
                                        std::uint64_t value) {
    if (text.find(std::string("# TYPE ") + name + ' ') != std::string::npos) {
      return;
    }
    obs::append_prometheus_counter(text, name, help, value, labels);
  };
  gauge("fastqaoa_service_queue_depth",
        "jobs waiting in the admission queue",
        static_cast<double>(st.queue_depth));
  gauge("fastqaoa_service_running", "jobs currently executing",
        static_cast<double>(st.running));
  gauge("fastqaoa_service_workers", "worker pool size",
        static_cast<double>(st.workers));
  gauge("fastqaoa_service_draining", "1 while the daemon is draining",
        st.draining ? 1.0 : 0.0);
  counter("fastqaoa_service_jobs_submitted_total", "jobs admitted",
          st.submitted);
  counter("fastqaoa_service_jobs_completed_total",
          "jobs finished successfully", st.completed);
  counter("fastqaoa_service_jobs_failed_total", "jobs that raised an error",
          st.failed);
  counter("fastqaoa_service_jobs_cancelled_total", "jobs cancelled",
          st.cancelled);
  counter("fastqaoa_service_jobs_rejected_total",
          "submissions rejected by backpressure", st.rejected);
  counter("fastqaoa_service_batch_jobs_total", "batch_evaluate jobs finished",
          st.batch_jobs);
  counter("fastqaoa_service_batched_evals_total",
          "total lanes swept by batch_evaluate jobs", st.batched_evals);
  counter("fastqaoa_service_subscribe_dropped_events_total",
          "progress events dropped because a subscriber fell behind",
          st.subscribe_dropped);
  gauge("fastqaoa_service_plan_cache_entries", "plans resident in the cache",
        static_cast<double>(st.plan_cache.entries));
  gauge("fastqaoa_service_plan_cache_bytes", "bytes held by cached plans",
        static_cast<double>(st.plan_cache.bytes));
  counter("fastqaoa_service_plan_cache_hits_total", "plan cache hits",
          st.plan_cache.hits);
  counter("fastqaoa_service_plan_cache_misses_total", "plan cache misses",
          st.plan_cache.misses);
  counter("fastqaoa_service_plan_cache_evictions_total",
          "plan cache evictions", st.plan_cache.evictions);
  return text;
}

Json error_response(std::string_view code, std::string_view message) {
  Json err = Json::object();
  err.set("code", Json(code));
  err.set("message", Json(message));
  Json j = Json::object();
  j.set("ok", Json(false));
  j.set("error", std::move(err));
  return j;
}

Json handle_request(Service& service, const Json& request) {
  try {
    const std::string& op = request.at("op").as_string();
    if (is_job_op(op)) {
      JobSpec spec = job_spec_from_json(request);
      Service::SubmitOutcome outcome = service.submit(std::move(spec));
      if (!outcome.accepted()) {
        // Structured backpressure: tell the client how deep the queue is.
        Json err = Json::object();
        err.set("code", Json(outcome.error_code));
        err.set("message",
                Json(outcome.error_code == "overloaded"
                         ? "queue is at its high-water mark; retry later"
                         : "service is draining; no new jobs accepted"));
        err.set("queue_depth",
                Json(static_cast<std::uint64_t>(outcome.queue_depth)));
        Json response = Json::object();
        response.set("ok", Json(false));
        response.set("error", std::move(err));
        return response;
      }
      const Json* async = request.find("async");
      if (async != nullptr && async->as_bool()) {
        Json j = Json::object();
        j.set("ok", Json(true));
        j.set("id", Json(outcome.job->id));
        j.set("state", Json(to_string(outcome.job->snapshot_state())));
        return j;
      }
      Service::wait(*outcome.job);
      Json j = job_to_json(*outcome.job);
      j.set("ok", Json(true));
      return j;
    }
    if (op == "status") {
      const std::uint64_t id = request.at("id").as_uint64();
      std::shared_ptr<Job> job = service.find(id);
      if (job == nullptr) {
        return error_response("unknown_job",
                              "no job with id " + std::to_string(id));
      }
      Json j = job_to_json(*job);
      j.set("ok", Json(true));
      return j;
    }
    if (op == "cancel") {
      const std::uint64_t id = request.at("id").as_uint64();
      std::shared_ptr<Job> job = service.find(id);
      if (job == nullptr) {
        return error_response("unknown_job",
                              "no job with id " + std::to_string(id));
      }
      const bool cancelled = service.cancel(id);
      Json j = Json::object();
      j.set("ok", Json(true));
      j.set("id", Json(id));
      j.set("cancelled", Json(cancelled));
      return j;
    }
    if (op == "stats") {
      Json j = Json::object();
      j.set("ok", Json(true));
      j.set("stats", stats_to_json(service.stats()));
      return j;
    }
    if (op == "metrics") {
      Json j = Json::object();
      j.set("ok", Json(true));
      j.set("format", Json("prometheus"));
      j.set("text", Json(metrics_prometheus(service)));
      return j;
    }
    if (op == "subscribe") {
      // Reachable only through a non-streaming dispatcher (in-process
      // request() or a transport that didn't divert); the daemon's
      // connection loop routes subscribe lines to handle_subscribe().
      return error_response("bad_request",
                            "subscribe requires a streaming connection");
    }
    if (op == "ping") {
      Json j = Json::object();
      j.set("ok", Json(true));
      j.set("pong", Json(true));
      return j;
    }
    return error_response("bad_request", "unknown op '" + op + "'");
  } catch (const std::exception& e) {
    return error_response("bad_request", e.what());
  }
}

std::string handle_request_line(Service& service, const std::string& line) {
  Json request;
  try {
    request = Json::parse(line);
  } catch (const std::exception& e) {
    return error_response("bad_request", e.what()).dump();
  }
  return handle_request(service, request).dump();
}

bool is_subscribe_line(const std::string& line) {
  try {
    const Json request = Json::parse(line);
    const Json* op = request.find("op");
    return op != nullptr && op->is_string() && op->as_string() == "subscribe";
  } catch (...) {
    return false;  // the normal path will produce the parse error response
  }
}

void handle_subscribe(Service& service, const Json& request,
                      const std::function<bool(const std::string&)>& emit) {
  std::uint64_t id = 0;
  int throttle_ms = 0;
  try {
    id = request.at("id").as_uint64();
    if (const Json* v = request.find("throttle_ms")) {
      throttle_ms =
          std::clamp(static_cast<int>(v->as_int64()), 0, 10'000);
    }
  } catch (const std::exception& e) {
    emit(error_response("bad_request", e.what()).dump());
    return;
  }
  const std::shared_ptr<Job> job = service.find(id);
  if (job == nullptr) {
    emit(error_response("unknown_job", "no job with id " + std::to_string(id))
             .dump());
    return;
  }

  ProgressChannel::Subscription sub = job->progress.subscribe();
  Json ack = Json::object();
  ack.set("ok", Json(true));
  ack.set("id", Json(id));
  ack.set("subscribed", Json(true));
  ack.set("state", Json(to_string(job->snapshot_state())));
  if (!emit(ack.dump())) return;

  std::string line;
  for (;;) {
    // The throttle simulates (or tests) a slow consumer: while the job is
    // live the subscriber sits out `throttle_ms` per event and its bounded
    // queue absorbs/drops the overflow; once the channel closes the wait
    // returns immediately, so the backlog and terminal event drain fast.
    if (throttle_ms > 0) sub.wait_closed_for(throttle_ms);
    if (!sub.next(line)) break;
    bool terminal = false;
    try {
      Json ev = Json::parse(line);
      const Json* kind = ev.find("event");
      if (kind != nullptr && kind->is_string() &&
          kind->as_string() == "done") {
        // Stamp this subscriber's drop count into the terminal event.
        ev.set("dropped_events", Json(sub.dropped()));
        line = ev.dump();
        terminal = true;
      }
    } catch (...) {
      // Not JSON? Forward verbatim; the publisher only emits JSON today.
    }
    if (!emit(line) || terminal) return;
  }
}

}  // namespace fastqaoa::service
