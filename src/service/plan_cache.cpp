#include "service/plan_cache.hpp"

#include <algorithm>
#include <cstring>

#include "common/alloc.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace fastqaoa::service {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) noexcept {
  fnv_bytes(h, &v, sizeof(v));
}

}  // namespace

std::uint64_t plan_fingerprint(const PlanKeyMaterial& material) noexcept {
  std::uint64_t h = kFnvOffset;
  fnv_u64(h, material.mixer_kind.size());
  fnv_bytes(h, material.mixer_kind.data(), material.mixer_kind.size());
  fnv_u64(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(material.n)));
  fnv_u64(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(material.k)));
  fnv_u64(h, static_cast<std::uint64_t>(
                 static_cast<std::int64_t>(material.rounds)));
  fnv_u64(h, material.obj_vals.size());
  fnv_bytes(h, material.obj_vals.data(), material.obj_vals.size_bytes());
  fnv_u64(h, material.phase_values.size());
  fnv_bytes(h, material.phase_values.data(),
            material.phase_values.size_bytes());
  fnv_u64(h, material.initial_state.size());
  fnv_bytes(h, material.initial_state.data(),
            material.initial_state.size_bytes());
  fnv_u64(h, material.engine.size());
  fnv_bytes(h, material.engine.data(), material.engine.size());
  return h;
}

void PlanCache::set_partition_budget(const std::string& partition,
                                     std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (partition.empty()) return;  // "" is the shared pool by definition
  budgets_[partition] = bytes;
  partition_stats_.emplace(partition, PartitionStats{});
}

PlanHandle PlanCache::get_or_build(const PlanKeyMaterial& material,
                                   const std::function<CachedPlan()>& build) {
  return get_or_build(material, std::string{}, build);
}

PlanHandle PlanCache::get_or_build(const PlanKeyMaterial& material,
                                   const std::string& partition,
                                   const std::function<CachedPlan()>& build) {
  const std::uint64_t fp = plan_fingerprint(material);
  // Floor for the byte estimate, in case the builder received pre-built
  // tables (the MemoryTracker delta then misses them). Each component is
  // rounded to its tracked allocation size — the tracker accounts padded
  // 64-byte-aligned blocks, so summing raw size_bytes() here would
  // undercount and let the cache drift past its byte budget.
  const std::size_t nominal =
      tracked_alloc_bytes(material.obj_vals.size_bytes()) +
      tracked_alloc_bytes(material.phase_values.size_bytes()) +
      tracked_alloc_bytes(material.initial_state.size_bytes());

  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = entries_.find(fp); it != entries_.end()) {
    ++hits_;
    FASTQAOA_OBS_COUNT_GLOBAL("service.plan_cache.hit", 1);
    lru_.splice(lru_.begin(), lru_, it->second.pos);
    return it->second.plan;
  }
  ++misses_;
  FASTQAOA_OBS_COUNT_GLOBAL("service.plan_cache.miss", 1);

  const std::size_t before = MemoryTracker::current_bytes();
  CachedPlan built = build();
  const std::size_t after = MemoryTracker::current_bytes();
  FASTQAOA_CHECK(built.plan != nullptr || built.mps_plan != nullptr,
                 "PlanCache: builder returned a null plan");
  built.fingerprint = fp;
  built.bytes = std::max(after > before ? after - before : std::size_t{0},
                         nominal);

  // Charge a budgeted partition when the builder has one; everything else
  // (unknown partitions, the default "") lands in the shared pool.
  const std::string charged = has_budget(partition) ? partition : std::string{};
  auto handle = std::make_shared<const CachedPlan>(std::move(built));
  lru_.push_front(fp);
  entries_[fp] = Entry{handle, lru_.begin(), charged};
  bytes_ += handle->bytes;
  if (!charged.empty()) {
    budgeted_bytes_ += handle->bytes;
    PartitionStats& ps = partition_stats_[charged];
    ++ps.entries;
    ps.bytes += handle->bytes;
  }
  evict_over_budget_locked(charged);
  return handle;
}

/// Evict LRU-first within one accounting pool. A budgeted partition only
/// ever sheds its own entries; the shared pool only sheds unbudgeted ones —
/// that asymmetry is the isolation guarantee (one tenant's churn cannot
/// evict another budgeted tenant's plans).
void PlanCache::evict_over_budget_locked(const std::string& partition) {
  std::size_t limit = 0;
  if (partition.empty()) {
    limit = config_.max_bytes;
  } else {
    auto it = budgets_.find(partition);
    limit = it == budgets_.end() ? 0 : it->second;
  }
  if (limit == 0) return;

  const auto pool_bytes = [&]() -> std::size_t {
    if (partition.empty()) {
      return bytes_ - std::min(bytes_, budgeted_bytes_);
    }
    auto it = partition_stats_.find(partition);
    return it == partition_stats_.end() ? 0 : it->second.bytes;
  };

  auto it = lru_.end();
  while (pool_bytes() > limit && it != lru_.begin()) {
    --it;
    auto ent = entries_.find(*it);
    if (ent == entries_.end()) {
      it = lru_.erase(it);
      continue;
    }
    if (ent->second.partition != partition) continue;  // other pool
    // use_count > 1 means a job still holds the handle: pinned, skip.
    if (ent->second.plan.use_count() > 1) continue;
    const std::size_t entry_bytes = ent->second.plan->bytes;
    bytes_ -= std::min(bytes_, entry_bytes);
    if (!partition.empty()) {
      budgeted_bytes_ -= std::min(budgeted_bytes_, entry_bytes);
      PartitionStats& ps = partition_stats_[partition];
      ps.entries -= std::min<std::size_t>(ps.entries, 1);
      ps.bytes -= std::min(ps.bytes, entry_bytes);
      ++ps.evictions;
    }
    ++evictions_;
    FASTQAOA_OBS_COUNT_GLOBAL("service.plan_cache.evict", 1);
    entries_.erase(ent);
    it = lru_.erase(it);
  }
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = entries_.size();
  s.bytes = bytes_;
  s.partitions = partition_stats_;
  return s;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  entries_.clear();
  bytes_ = 0;
  budgeted_bytes_ = 0;
  for (auto& [name, ps] : partition_stats_) {
    ps.entries = 0;
    ps.bytes = 0;
  }
}

}  // namespace fastqaoa::service
