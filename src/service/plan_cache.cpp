#include "service/plan_cache.hpp"

#include <algorithm>
#include <cstring>

#include "common/alloc.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace fastqaoa::service {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) noexcept {
  fnv_bytes(h, &v, sizeof(v));
}

}  // namespace

std::uint64_t plan_fingerprint(const PlanKeyMaterial& material) noexcept {
  std::uint64_t h = kFnvOffset;
  fnv_u64(h, material.mixer_kind.size());
  fnv_bytes(h, material.mixer_kind.data(), material.mixer_kind.size());
  fnv_u64(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(material.n)));
  fnv_u64(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(material.k)));
  fnv_u64(h, static_cast<std::uint64_t>(
                 static_cast<std::int64_t>(material.rounds)));
  fnv_u64(h, material.obj_vals.size());
  fnv_bytes(h, material.obj_vals.data(), material.obj_vals.size_bytes());
  fnv_u64(h, material.phase_values.size());
  fnv_bytes(h, material.phase_values.data(),
            material.phase_values.size_bytes());
  fnv_u64(h, material.initial_state.size());
  fnv_bytes(h, material.initial_state.data(),
            material.initial_state.size_bytes());
  return h;
}

PlanHandle PlanCache::get_or_build(const PlanKeyMaterial& material,
                                   const std::function<CachedPlan()>& build) {
  const std::uint64_t fp = plan_fingerprint(material);
  // Floor for the byte estimate, in case the builder received pre-built
  // tables (the MemoryTracker delta then misses them).
  const std::size_t nominal = material.obj_vals.size_bytes() +
                              material.phase_values.size_bytes() +
                              material.initial_state.size_bytes();

  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = entries_.find(fp); it != entries_.end()) {
    ++hits_;
    FASTQAOA_OBS_COUNT_GLOBAL("service.plan_cache.hit", 1);
    lru_.splice(lru_.begin(), lru_, it->second.pos);
    return it->second.plan;
  }
  ++misses_;
  FASTQAOA_OBS_COUNT_GLOBAL("service.plan_cache.miss", 1);

  const std::size_t before = MemoryTracker::current_bytes();
  CachedPlan built = build();
  const std::size_t after = MemoryTracker::current_bytes();
  FASTQAOA_CHECK(built.plan != nullptr,
                 "PlanCache: builder returned a null plan");
  built.fingerprint = fp;
  built.bytes = std::max(after > before ? after - before : std::size_t{0},
                         nominal);

  auto handle = std::make_shared<const CachedPlan>(std::move(built));
  lru_.push_front(fp);
  entries_[fp] = Entry{handle, lru_.begin()};
  bytes_ += handle->bytes;
  evict_over_budget_locked();
  return handle;
}

void PlanCache::evict_over_budget_locked() {
  if (config_.max_bytes == 0) return;
  auto it = lru_.end();
  while (bytes_ > config_.max_bytes && it != lru_.begin()) {
    --it;
    auto ent = entries_.find(*it);
    if (ent == entries_.end()) {
      it = lru_.erase(it);
      continue;
    }
    // use_count > 1 means a job still holds the handle: pinned, skip.
    if (ent->second.plan.use_count() > 1) continue;
    bytes_ -= std::min(bytes_, ent->second.plan->bytes);
    ++evictions_;
    FASTQAOA_OBS_COUNT_GLOBAL("service.plan_cache.evict", 1);
    entries_.erase(ent);
    it = lru_.erase(it);
  }
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = entries_.size();
  s.bytes = bytes_;
  return s;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  entries_.clear();
  bytes_ = 0;
}

}  // namespace fastqaoa::service
