#pragma once
/// \file net.hpp
/// Thin POSIX socket helpers for the NDJSON protocol: listeners (Unix
/// domain by default, TCP-on-loopback optional), blocking connects, and
/// line-oriented I/O that never raises SIGPIPE.
///
/// Everything here throws fastqaoa::Error with the OS error string on
/// failure; callers (daemon accept loop, client) treat a throw as "this
/// connection is over", not as a process-fatal event.

#include <string>

namespace fastqaoa::service {

/// Create, bind, and listen on a Unix-domain stream socket at `path`.
/// An existing socket file at `path` is unlinked first (stale sockets from
/// a crashed daemon must not block restart). Returns the listening fd.
int listen_unix(const std::string& path);

/// Create, bind, and listen on 127.0.0.1:`port` (SO_REUSEADDR). Pass
/// port 0 to let the kernel pick; `bound_port` receives the actual port.
int listen_tcp(int port, int* bound_port = nullptr);

/// Blocking connect to a Unix-domain socket / to 127.0.0.1:`port`.
int connect_unix(const std::string& path);
int connect_tcp(int port);

/// Write all of `data` (handles short writes; MSG_NOSIGNAL so a dead peer
/// yields an Error, not SIGPIPE). On a non-blocking socket EAGAIN is
/// absorbed by a short poll-for-writable wait, so the call keeps its
/// "everything was sent" contract regardless of the fd's blocking mode.
void write_all(int fd, const std::string& data);

/// One non-blocking write attempt: send as much of [data, data+len) as the
/// socket accepts right now. Returns the byte count (possibly 0 when the
/// kernel buffer is full — EAGAIN/EWOULDBLOCK are not errors here), or
/// throws on a real socket error / dead peer. EINTR is retried internally.
/// This is the event loop's write primitive.
std::size_t write_some(int fd, const char* data, std::size_t len);

/// Switch a socket's O_NONBLOCK flag. Throws on fcntl failure.
void set_nonblocking(int fd, bool enable);

/// Best-effort SO_SNDBUF override (0 = leave the kernel default). Used by
/// the daemon to shrink the send buffer so slow-client eviction is testable
/// without megabytes of kernel-side slack.
void set_send_buffer(int fd, int bytes) noexcept;

/// Buffered line reader over one fd. Lines are '\n'-terminated; the
/// terminator is stripped. A final unterminated chunk before EOF is
/// returned as a line (curl-style tolerance for missing trailing newline).
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Read the next line into `line`. Returns false on EOF with no pending
  /// data. Throws on read errors or on a line exceeding the cap (a
  /// defensive limit against a peer streaming garbage without newlines).
  bool next(std::string& line);

  static constexpr std::size_t kMaxLineBytes = 16u << 20;  // 16 MiB

 private:
  int fd_;
  std::string buffer_;
  bool eof_ = false;
};

/// close() ignoring errors (for cleanup paths).
void close_fd(int fd) noexcept;

}  // namespace fastqaoa::service
