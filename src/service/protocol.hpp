#pragma once
/// \file protocol.hpp
/// The wire protocol: newline-delimited JSON request/response messages.
///
/// One request object per line, one response object per line, in order.
/// Job verbs (evaluate, gradient, find_angles, sample) either block until
/// the result is ready (the default) or, with "async": true, return the
/// assigned job id immediately for later "status" polling. Control verbs:
/// "status", "cancel", "stats", "ping", "metrics".
///
/// "subscribe" is the one verb that breaks the one-line-per-request rule:
/// it streams NDJSON progress events (an ack, then one line per
/// angle-finding round, then a terminal "done" event) until the job
/// finishes. The daemon's connection loop diverts it to
/// handle_subscribe(); in-process callers pass their own emit callback.
///
/// Responses always carry "ok". Failures look like
///   {"ok":false,"error":{"code":"overloaded","message":...,"queue_depth":N}}
/// with stable codes: "overloaded" (queue at its high-water mark — back off
/// and retry), "over_quota" (tenant rate/concurrency quota tripped; carries
/// "retry_after_ms"), "draining" (daemon is shutting down), "bad_request",
/// "unknown_job", "unauthorized" (tenants configured and no valid key).
///
/// Multi-tenancy: when the daemon was given a tenant file, clients
/// authenticate once per connection with {"op":"auth","key":"..."} (or put
/// "key" on any request); every subsequent request runs as that tenant.
/// Without a tenant file no key is required and everything maps to the
/// default tenant — the protocol is fully backward compatible.
///
/// handle_request() is the single server-side dispatcher — the daemon's
/// event loop and the in-process tests route through the same function, so
/// the protocol is tested without a socket in the loop.

#include <functional>
#include <string>
#include <string_view>

#include "service/job.hpp"
#include "service/json.hpp"
#include "service/service.hpp"

namespace fastqaoa::service {

/// Parse a job request ("op" + spec fields) into a JobSpec.
/// Throws fastqaoa::Error naming the offending field.
JobSpec job_spec_from_json(const Json& request);

/// Client-side: render a JobSpec as a request object (without "async").
Json job_spec_to_json(const JobSpec& spec);

/// Snapshot a job as the protocol's job object:
/// {"id":..,"op":..,"state":..,"result":{...}} (result present only once
/// terminal; failed jobs carry "error" instead).
Json job_to_json(const Job& job);

Json stats_to_json(const ServiceStats& stats);

Json error_response(std::string_view code, std::string_view message);

/// True when `op` names one of the job verbs (evaluate, batch_evaluate,
/// gradient, find_angles, sample) — the verbs the daemon's event loop
/// routes through submit_job_request() instead of handle_request().
[[nodiscard]] bool is_job_op(const std::string& op);

/// Render the merged engine observability snapshot (counters, timers,
/// histograms) plus the service-level gauges/counters in Prometheus text
/// exposition format. This is what the "metrics" verb and the daemon's
/// --metrics-file writer both serve.
[[nodiscard]] std::string metrics_prometheus(Service& service);

/// Per-connection protocol state: the authenticated tenant identity. The
/// daemon keeps one per connection; in-process callers use the default
/// (trusted, default-tenant) context.
struct RequestContext {
  std::string tenant;         ///< resolved tenant name ("" = default)
  bool authenticated = false; ///< a valid key was presented
  /// In-process dispatchers are trusted and bypass key checks even when
  /// tenants are configured; the daemon sets this false.
  bool trusted = true;
};

/// Dispatch one parsed request against a service and produce the response.
/// Never throws: malformed requests become "bad_request" responses.
Json handle_request(Service& service, const Json& request);

/// Tenant-aware variant: authenticates ("auth" op or a per-request "key"),
/// enforces key checks when the service has tenants configured and the
/// context is untrusted, and tags submitted jobs with ctx.tenant.
Json handle_request(Service& service, const Json& request,
                    RequestContext& ctx);

/// Apply authentication for one request: resolves a per-request "key"
/// field into ctx (counting failures), and — when the service has tenants
/// configured and ctx is untrusted — rejects unauthenticated non-ping
/// requests. Returns a null Json when the request may proceed, or the
/// error response to send. The daemon calls this before its specially
/// routed verbs (job ops, subscribe); handle_request() applies it
/// internally.
Json check_auth(Service& service, const Json& request, const std::string& op,
                RequestContext& ctx);

/// Admission half of a job verb, shared by the blocking dispatcher and the
/// daemon's event loop: parse the spec, tag it with `tenant`, submit.
/// On rejection or an async ack the complete response is returned and
/// *out_job stays null. For an accepted synchronous job, *out_job is set
/// and the returned Json is null — the caller chooses how to wait
/// (Service::wait() for blocking callers; a progress close hook for the
/// event loop, which must then render job_to_json itself).
Json submit_job_request(Service& service, const Json& request,
                        const std::string& tenant,
                        std::shared_ptr<Job>* out_job);

/// Admission half of "subscribe": parse the id, attach *out_job. Returns
/// the ack (or an error response, leaving *out_job null). The caller owns
/// streaming the events.
Json subscribe_attach(Service& service, const Json& request,
                      std::shared_ptr<Job>* out_job);

/// Stamp a subscriber's terminal "done" line with its drop count (the
/// event-loop streaming path shares this with handle_subscribe).
[[nodiscard]] std::string stamp_terminal_event(const std::string& line,
                                               std::uint64_t dropped_events,
                                               bool* is_terminal);

/// Convenience: parse `line`, dispatch, and serialize the response.
std::string handle_request_line(Service& service, const std::string& line);

/// True when `line` parses as a request whose op is "subscribe" — the
/// daemon's connection loop diverts such lines to handle_subscribe().
[[nodiscard]] bool is_subscribe_line(const std::string& line);

/// Streaming dispatcher for the "subscribe" verb. Emits, via `emit`, an
/// ack line, then every progress event of the job (per angle-finding
/// round), then the terminal "done" event stamped with this subscriber's
/// dropped_events count. Returns when the stream is exhausted or `emit`
/// returns false (client gone). The optional "throttle_ms" request field
/// delays consumption between events (deterministic slow-subscriber
/// testing); the wait is cut short when the job finishes, so a throttled
/// watcher never delays daemon drain.
void handle_subscribe(Service& service, const Json& request,
                      const std::function<bool(const std::string&)>& emit);

}  // namespace fastqaoa::service
