#pragma once
/// \file protocol.hpp
/// The wire protocol: newline-delimited JSON request/response messages.
///
/// One request object per line, one response object per line, in order.
/// Job verbs (evaluate, gradient, find_angles, sample) either block until
/// the result is ready (the default) or, with "async": true, return the
/// assigned job id immediately for later "status" polling. Control verbs:
/// "status", "cancel", "stats", "ping", "metrics".
///
/// "subscribe" is the one verb that breaks the one-line-per-request rule:
/// it streams NDJSON progress events (an ack, then one line per
/// angle-finding round, then a terminal "done" event) until the job
/// finishes. The daemon's connection loop diverts it to
/// handle_subscribe(); in-process callers pass their own emit callback.
///
/// Responses always carry "ok". Failures look like
///   {"ok":false,"error":{"code":"overloaded","message":...,"queue_depth":N}}
/// with stable codes: "overloaded" (queue at its high-water mark — back off
/// and retry), "draining" (daemon is shutting down), "bad_request",
/// "unknown_job".
///
/// handle_request() is the single server-side dispatcher — the daemon's
/// connection threads and the in-process tests route through the same
/// function, so the protocol is tested without a socket in the loop.

#include <functional>
#include <string>
#include <string_view>

#include "service/job.hpp"
#include "service/json.hpp"
#include "service/service.hpp"

namespace fastqaoa::service {

/// Parse a job request ("op" + spec fields) into a JobSpec.
/// Throws fastqaoa::Error naming the offending field.
JobSpec job_spec_from_json(const Json& request);

/// Client-side: render a JobSpec as a request object (without "async").
Json job_spec_to_json(const JobSpec& spec);

/// Snapshot a job as the protocol's job object:
/// {"id":..,"op":..,"state":..,"result":{...}} (result present only once
/// terminal; failed jobs carry "error" instead).
Json job_to_json(const Job& job);

Json stats_to_json(const ServiceStats& stats);

Json error_response(std::string_view code, std::string_view message);

/// Render the merged engine observability snapshot (counters, timers,
/// histograms) plus the service-level gauges/counters in Prometheus text
/// exposition format. This is what the "metrics" verb and the daemon's
/// --metrics-file writer both serve.
[[nodiscard]] std::string metrics_prometheus(Service& service);

/// Dispatch one parsed request against a service and produce the response.
/// Never throws: malformed requests become "bad_request" responses.
Json handle_request(Service& service, const Json& request);

/// Convenience: parse `line`, dispatch, and serialize the response.
std::string handle_request_line(Service& service, const std::string& line);

/// True when `line` parses as a request whose op is "subscribe" — the
/// daemon's connection loop diverts such lines to handle_subscribe().
[[nodiscard]] bool is_subscribe_line(const std::string& line);

/// Streaming dispatcher for the "subscribe" verb. Emits, via `emit`, an
/// ack line, then every progress event of the job (per angle-finding
/// round), then the terminal "done" event stamped with this subscriber's
/// dropped_events count. Returns when the stream is exhausted or `emit`
/// returns false (client gone). The optional "throttle_ms" request field
/// delays consumption between events (deterministic slow-subscriber
/// testing); the wait is cut short when the job finishes, so a throttled
/// watcher never delays daemon drain.
void handle_subscribe(Service& service, const Json& request,
                      const std::function<bool(const std::string&)>& emit);

}  // namespace fastqaoa::service
