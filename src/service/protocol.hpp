#pragma once
/// \file protocol.hpp
/// The wire protocol: newline-delimited JSON request/response messages.
///
/// One request object per line, one response object per line, in order.
/// Job verbs (evaluate, gradient, find_angles, sample) either block until
/// the result is ready (the default) or, with "async": true, return the
/// assigned job id immediately for later "status" polling. Control verbs:
/// "status", "cancel", "stats", "ping".
///
/// Responses always carry "ok". Failures look like
///   {"ok":false,"error":{"code":"overloaded","message":...,"queue_depth":N}}
/// with stable codes: "overloaded" (queue at its high-water mark — back off
/// and retry), "draining" (daemon is shutting down), "bad_request",
/// "unknown_job".
///
/// handle_request() is the single server-side dispatcher — the daemon's
/// connection threads and the in-process tests route through the same
/// function, so the protocol is tested without a socket in the loop.

#include <string>
#include <string_view>

#include "service/job.hpp"
#include "service/json.hpp"
#include "service/service.hpp"

namespace fastqaoa::service {

/// Parse a job request ("op" + spec fields) into a JobSpec.
/// Throws fastqaoa::Error naming the offending field.
JobSpec job_spec_from_json(const Json& request);

/// Client-side: render a JobSpec as a request object (without "async").
Json job_spec_to_json(const JobSpec& spec);

/// Snapshot a job as the protocol's job object:
/// {"id":..,"op":..,"state":..,"result":{...}} (result present only once
/// terminal; failed jobs carry "error" instead).
Json job_to_json(const Job& job);

Json stats_to_json(const ServiceStats& stats);

Json error_response(std::string_view code, std::string_view message);

/// Dispatch one parsed request against a service and produce the response.
/// Never throws: malformed requests become "bad_request" responses.
Json handle_request(Service& service, const Json& request);

/// Convenience: parse `line`, dispatch, and serialize the response.
std::string handle_request_line(Service& service, const std::string& line);

}  // namespace fastqaoa::service
