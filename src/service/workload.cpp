#include "service/workload.hpp"

#include <cmath>
#include <filesystem>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graphs/graph.hpp"
#include "io/serialize.hpp"
#include "mixers/eigen_mixer.hpp"
#include "mixers/grover_mixer.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"
#include "sat/cnf.hpp"

namespace fastqaoa::service {

int ProblemSpec::effective_k() const noexcept {
  if (!constrained_mixer(mixer)) return -1;
  return k < 0 ? n / 2 : k;
}

bool constrained_mixer(const std::string& mixer) noexcept {
  return mixer == "clique" || mixer == "ring";
}

void validate_problem_spec(const ProblemSpec& spec) {
  FASTQAOA_CHECK(spec.problem == "maxcut" || spec.problem == "ksat" ||
                     spec.problem == "densest" ||
                     spec.problem == "vertexcover" ||
                     spec.problem == "partition",
                 "unknown problem '" + spec.problem + "'");
  FASTQAOA_CHECK(spec.mixer == "tf" || spec.mixer == "grover" ||
                     spec.mixer == "clique" || spec.mixer == "ring",
                 "unknown mixer '" + spec.mixer + "'");
  FASTQAOA_CHECK(spec.n >= 2 && spec.n <= 24,
                 "n out of supported range [2, 24]");
  if (constrained_mixer(spec.mixer)) {
    const int k = spec.effective_k();
    FASTQAOA_CHECK(k >= 1 && k < spec.n,
                   "k must satisfy 1 <= k < n for constrained mixers");
  }
  FASTQAOA_CHECK(spec.density > 0.0, "density must be positive");
}

StateSpace problem_space(const ProblemSpec& spec) {
  return constrained_mixer(spec.mixer)
             ? StateSpace::dicke(spec.n, spec.effective_k())
             : StateSpace::full(spec.n);
}

dvec build_objective(const ProblemSpec& spec, const StateSpace& space) {
  Rng rng(spec.instance_seed);
  const int n = spec.n;
  if (spec.problem == "maxcut") {
    Graph g = erdos_renyi(n, 0.5, rng);
    return tabulate(space, [&g](state_t x) { return maxcut(g, x); });
  }
  if (spec.problem == "ksat") {
    CnfFormula f = random_ksat_density(n, 3, spec.density, rng);
    return tabulate(space, [&f](state_t x) { return ksat(f, x); });
  }
  if (spec.problem == "densest") {
    Graph g = erdos_renyi(n, 0.5, rng);
    return tabulate(space, [&g](state_t x) { return densest_subgraph(g, x); });
  }
  if (spec.problem == "vertexcover") {
    Graph g = erdos_renyi(n, 0.5, rng);
    return tabulate(space, [&g](state_t x) { return vertex_cover(g, x); });
  }
  FASTQAOA_CHECK(spec.problem == "partition",
                 "unknown problem '" + spec.problem + "'");
  std::vector<double> weights(static_cast<std::size_t>(n));
  for (auto& w : weights) w = std::floor(rng.uniform(1.0, 30.0));
  return tabulate(space,
                  [&weights](state_t x) { return number_partition(weights, x); });
}

std::unique_ptr<const Mixer> build_mixer(const ProblemSpec& spec,
                                         const StateSpace& space,
                                         const std::string& disk_cache_dir) {
  if (spec.mixer == "tf") {
    return std::make_unique<XMixer>(XMixer::transverse_field(spec.n));
  }
  if (spec.mixer == "grover") {
    return std::make_unique<GroverMixer>(space.dim());
  }
  FASTQAOA_CHECK(constrained_mixer(spec.mixer),
                 "unknown mixer '" + spec.mixer + "'");
  auto build = [&] {
    return spec.mixer == "clique" ? EigenMixer::clique(space)
                                  : EigenMixer::ring(space);
  };
  if (disk_cache_dir.empty()) {
    return std::make_unique<EigenMixer>(build());
  }
  // Disk tier: the eigendecomposition is fully determined by (kind, n, k),
  // so the file name is its content address.
  std::filesystem::create_directories(disk_cache_dir);
  const std::string path = disk_cache_dir + "/mixer-" + spec.mixer + "-n" +
                           std::to_string(spec.n) + "-k" +
                           std::to_string(spec.effective_k()) + ".fqm";
  return std::make_unique<EigenMixer>(io::load_or_build_mixer(path, build));
}

}  // namespace fastqaoa::service
