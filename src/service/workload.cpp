#include "service/workload.hpp"

#include <cmath>
#include <filesystem>

#include <cstdio>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/engine.hpp"
#include "graphs/graph.hpp"
#include "io/serialize.hpp"
#include "mixers/eigen_mixer.hpp"
#include "mixers/grover_mixer.hpp"
#include "mixers/x_mixer.hpp"
#include "problems/cost_functions.hpp"
#include "problems/weighted_maxcut.hpp"
#include "sat/cnf.hpp"

namespace fastqaoa::service {

int ProblemSpec::effective_k() const noexcept {
  if (!constrained_mixer(mixer)) return -1;
  return k < 0 ? n / 2 : k;
}

bool constrained_mixer(const std::string& mixer) noexcept {
  return mixer == "clique" || mixer == "ring";
}

void validate_problem_spec(const ProblemSpec& spec) {
  FASTQAOA_CHECK(spec.problem == "maxcut" || spec.problem == "wmaxcut" ||
                     spec.problem == "ksat" || spec.problem == "densest" ||
                     spec.problem == "vertexcover" ||
                     spec.problem == "partition",
                 "unknown problem '" + spec.problem + "'");
  FASTQAOA_CHECK(spec.mixer == "tf" || spec.mixer == "grover" ||
                     spec.mixer == "clique" || spec.mixer == "ring",
                 "unknown mixer '" + spec.mixer + "'");
  FASTQAOA_CHECK(parse_engine(spec.engine).has_value(),
                 "unknown engine '" + spec.engine + "'");
  if (spec.uses_mps()) {
    FASTQAOA_CHECK(spec.problem == "maxcut" || spec.problem == "wmaxcut",
                   "engine 'mps' supports problem maxcut|wmaxcut only");
    FASTQAOA_CHECK(spec.mixer == "tf",
                   "engine 'mps' supports the tf mixer only");
    FASTQAOA_CHECK(spec.n >= 2 && spec.n <= 256,
                   "n out of supported range [2, 256] for engine 'mps'");
    FASTQAOA_CHECK(spec.max_bond >= 1, "max_bond must be >= 1");
    FASTQAOA_CHECK(spec.fidelity_budget >= 0.0,
                   "fidelity_budget must be non-negative");
    FASTQAOA_CHECK(spec.trunc_tol >= 0.0, "trunc_tol must be non-negative");
  } else {
    FASTQAOA_CHECK(spec.n >= 2 && spec.n <= 24,
                   "n out of supported range [2, 24] for engine 'exact' "
                   "(use engine 'mps' for larger maxcut instances)");
  }
  if (spec.degree != 0) {
    FASTQAOA_CHECK(spec.problem == "maxcut" || spec.problem == "wmaxcut",
                   "degree applies to maxcut/wmaxcut only");
    FASTQAOA_CHECK(spec.degree >= 1 && spec.degree < spec.n,
                   "degree must satisfy 1 <= degree < n");
    FASTQAOA_CHECK((static_cast<long long>(spec.n) * spec.degree) % 2 == 0,
                   "n * degree must be even for a regular graph");
  }
  if (constrained_mixer(spec.mixer)) {
    const int k = spec.effective_k();
    FASTQAOA_CHECK(k >= 1 && k < spec.n,
                   "k must satisfy 1 <= k < n for constrained mixers");
  }
  FASTQAOA_CHECK(spec.density > 0.0, "density must be positive");
}

StateSpace problem_space(const ProblemSpec& spec) {
  return constrained_mixer(spec.mixer)
             ? StateSpace::dicke(spec.n, spec.effective_k())
             : StateSpace::full(spec.n);
}

Graph build_graph(const ProblemSpec& spec) {
  FASTQAOA_CHECK(spec.problem == "maxcut" || spec.problem == "wmaxcut",
                 "build_graph: spec is not a maxcut/wmaxcut problem");
  Rng rng(spec.instance_seed);
  // Same draw order as qaoa_cli's build_maxcut_graph: topology first, then
  // (for wmaxcut) weights consumed in edge order from the same stream.
  Graph g = spec.degree > 0 ? random_regular(spec.n, spec.degree, rng)
                            : erdos_renyi(spec.n, 0.5, rng);
  if (spec.problem == "wmaxcut") g = with_random_weights(g, rng);
  return g;
}

dvec build_objective(const ProblemSpec& spec, const StateSpace& space) {
  Rng rng(spec.instance_seed);
  const int n = spec.n;
  if (spec.problem == "maxcut" || spec.problem == "wmaxcut") {
    Graph g = build_graph(spec);
    return tabulate(space, [&g](state_t x) { return maxcut(g, x); });
  }
  if (spec.problem == "ksat") {
    CnfFormula f = random_ksat_density(n, 3, spec.density, rng);
    return tabulate(space, [&f](state_t x) { return ksat(f, x); });
  }
  if (spec.problem == "densest") {
    Graph g = erdos_renyi(n, 0.5, rng);
    return tabulate(space, [&g](state_t x) { return densest_subgraph(g, x); });
  }
  if (spec.problem == "vertexcover") {
    Graph g = erdos_renyi(n, 0.5, rng);
    return tabulate(space, [&g](state_t x) { return vertex_cover(g, x); });
  }
  FASTQAOA_CHECK(spec.problem == "partition",
                 "unknown problem '" + spec.problem + "'");
  std::vector<double> weights(static_cast<std::size_t>(n));
  for (auto& w : weights) w = std::floor(rng.uniform(1.0, 30.0));
  return tabulate(space,
                  [&weights](state_t x) { return number_partition(weights, x); });
}

mps::DiagonalHamiltonian build_mps_hamiltonian(const ProblemSpec& spec) {
  return mps::maxcut_hamiltonian(build_graph(spec));
}

mps::MpsOptions mps_options(const ProblemSpec& spec) {
  mps::MpsOptions opt;
  opt.max_bond = spec.max_bond;
  opt.fidelity_budget = spec.fidelity_budget;
  opt.trunc_tol = spec.trunc_tol;
  return opt;
}

std::string engine_cache_tag(const ProblemSpec& spec) {
  if (!spec.uses_mps()) return "exact";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "mps;chi=%d;tol=%.17g;budget=%.17g",
                spec.max_bond, spec.trunc_tol, spec.fidelity_budget);
  return buf;
}

std::unique_ptr<const Mixer> build_mixer(const ProblemSpec& spec,
                                         const StateSpace& space,
                                         const std::string& disk_cache_dir) {
  if (spec.mixer == "tf") {
    return std::make_unique<XMixer>(XMixer::transverse_field(spec.n));
  }
  if (spec.mixer == "grover") {
    return std::make_unique<GroverMixer>(space.dim());
  }
  FASTQAOA_CHECK(constrained_mixer(spec.mixer),
                 "unknown mixer '" + spec.mixer + "'");
  auto build = [&] {
    return spec.mixer == "clique" ? EigenMixer::clique(space)
                                  : EigenMixer::ring(space);
  };
  if (disk_cache_dir.empty()) {
    return std::make_unique<EigenMixer>(build());
  }
  // Disk tier: the eigendecomposition is fully determined by (kind, n, k),
  // so the file name is its content address.
  std::filesystem::create_directories(disk_cache_dir);
  const std::string path = disk_cache_dir + "/mixer-" + spec.mixer + "-n" +
                           std::to_string(spec.n) + "-k" +
                           std::to_string(spec.effective_k()) + ".fqm";
  return std::make_unique<EigenMixer>(io::load_or_build_mixer(path, build));
}

}  // namespace fastqaoa::service
