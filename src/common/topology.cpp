#include "common/topology.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/threading.hpp"

#ifdef __linux__
#include <dirent.h>
#include <unistd.h>
#endif

namespace fastqaoa {

namespace {

std::string read_first_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in) std::getline(in, line);
  return line;
}

/// Pull "Node N MemTotal: X kB" out of a node's meminfo file.
std::size_t read_node_mem_bytes(const std::string& meminfo_path) {
  std::ifstream in(meminfo_path);
  std::string line;
  while (std::getline(in, line)) {
    const auto pos = line.find("MemTotal:");
    if (pos == std::string::npos) continue;
    std::istringstream rest(line.substr(pos + 9));
    std::size_t kb = 0;
    if (rest >> kb) return kb * 1024;
  }
  return 0;
}

int hardware_cpu_count() {
#ifdef __linux__
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  if (n > 0) return static_cast<int>(n);
#endif
  return 1;
}

bool is_pow2(index_t v) { return v != 0 && (v & (v - 1)) == 0; }

int floor_pow2(int v) {
  int p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}

}  // namespace

std::vector<int> parse_cpulist(const std::string& list) {
  std::vector<int> cpus;
  std::istringstream in(list);
  std::string tok;
  while (std::getline(in, tok, ',')) {
    if (tok.empty()) continue;
    const auto dash = tok.find('-');
    try {
      if (dash == std::string::npos) {
        cpus.push_back(std::stoi(tok));
      } else {
        const int lo = std::stoi(tok.substr(0, dash));
        const int hi = std::stoi(tok.substr(dash + 1));
        for (int c = lo; c <= hi; ++c) cpus.push_back(c);
      }
    } catch (...) {
      // Malformed range (trailing newline garbage, etc.) — skip it.
    }
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

Topology detect_topology() {
  Topology topo;
#ifdef __linux__
  const std::string base = "/sys/devices/system/node";
  if (DIR* dir = opendir(base.c_str())) {
    while (dirent* ent = readdir(dir)) {
      const std::string name = ent->d_name;
      if (name.rfind("node", 0) != 0 || name.size() <= 4) continue;
      bool numeric = true;
      for (std::size_t i = 4; i < name.size(); ++i) {
        if (name[i] < '0' || name[i] > '9') {
          numeric = false;
          break;
        }
      }
      if (!numeric) continue;
      NumaNode node;
      node.id = std::atoi(name.c_str() + 4);
      node.cpus = parse_cpulist(read_first_line(base + "/" + name + "/cpulist"));
      node.mem_bytes = read_node_mem_bytes(base + "/" + name + "/meminfo");
      // Memory-only nodes (CXL expanders) get no compute shard.
      if (!node.cpus.empty()) topo.nodes.push_back(std::move(node));
    }
    closedir(dir);
  }
#endif
  if (!topo.nodes.empty()) {
    std::sort(topo.nodes.begin(), topo.nodes.end(),
              [](const NumaNode& a, const NumaNode& b) { return a.id < b.id; });
    topo.from_sysfs = true;
    for (const NumaNode& node : topo.nodes)
      topo.total_cpus += static_cast<int>(node.cpus.size());
    return topo;
  }

  // Fallback: one synthetic node spanning every online CPU.
  NumaNode node;
  node.id = 0;
  const int ncpu = hardware_cpu_count();
  node.cpus.reserve(static_cast<std::size_t>(ncpu));
  for (int c = 0; c < ncpu; ++c) node.cpus.push_back(c);
  topo.total_cpus = ncpu;
  topo.nodes.push_back(std::move(node));
  topo.from_sysfs = false;
  return topo;
}

const Topology& topology() {
  static const Topology topo = detect_topology();
  return topo;
}

int shard_request(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("FASTQAOA_SHARDS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 0;
}

ShardPlan plan_shards(index_t size, int requested) {
  ShardPlan plan;
  plan.shards = 1;
  plan.shard_elems = size;

  int want = 0;
  if (requested > 0) {
    want = requested;
    plan.source = "request";
  } else if (const char* env = std::getenv("FASTQAOA_SHARDS");
             env != nullptr && std::atoi(env) > 0) {
    want = std::atoi(env);
    plan.source = "env";
  } else {
    const Topology& topo = topology();
    want = std::max(1, topo.node_count());
    plan.source = topo.from_sysfs ? "topology" : "fallback";
  }

  // Power-of-two shard count, and never shard below the kernel block size
  // (the sharded WHT drivers would delegate to the monolithic path anyway).
  int k = floor_pow2(std::max(1, want));
  if (!is_pow2(size) || size < 2 * kMinShardElems) {
    k = 1;
  } else {
    while (k > 1 && size / static_cast<index_t>(k) < kMinShardElems) k /= 2;
  }
  plan.shards = k;
  plan.shard_elems = k > 0 ? size / static_cast<index_t>(k) : size;
  plan.threads_per_shard = std::max(1, num_threads() / std::max(1, k));
  return plan;
}

}  // namespace fastqaoa
