#pragma once
/// \file version.hpp
/// Library version string.

namespace fastqaoa {

/// Semantic version of the fastQAOA library.
const char* version() noexcept;

}  // namespace fastqaoa
