#pragma once
/// \file topology.hpp
/// CPU / NUMA topology detection and the shard-plan policy used by the
/// sharded statevector layer (ShardedState).
///
/// Everything here is parsed straight from /sys — no libnuma dependency —
/// so the library keeps building on machines (and containers) that expose
/// no NUMA information at all; those fall back to a single node spanning
/// every online CPU.

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace fastqaoa {

/// One NUMA node as reported by /sys/devices/system/node/nodeN.
struct NumaNode {
  int id = 0;
  std::vector<int> cpus;      ///< logical CPUs local to this node
  std::size_t mem_bytes = 0;  ///< MemTotal of the node (0 when unreadable)
};

/// Machine topology snapshot.
struct Topology {
  std::vector<NumaNode> nodes;
  int total_cpus = 0;
  bool from_sysfs = false;  ///< true when read from /sys, false on fallback

  int node_count() const noexcept { return static_cast<int>(nodes.size()); }
};

/// Detect the machine topology (uncached). Reads
/// /sys/devices/system/node/node*/{cpulist,meminfo}; when that hierarchy is
/// absent, synthesizes a single node spanning all online CPUs.
Topology detect_topology();

/// Cached topology — detected once on first use, shared afterwards.
const Topology& topology();

/// Parse a kernel cpulist string ("0-3,8,10-11") into CPU ids.
/// Exposed for tests; malformed ranges are skipped.
std::vector<int> parse_cpulist(const std::string& list);

/// Shard plan for one statevector.
struct ShardPlan {
  int shards = 1;               ///< K — always a power of two, >= 1
  int threads_per_shard = 1;    ///< OpenMP threads serving each shard
  index_t shard_elems = 0;      ///< amplitudes per shard (size / K)
  std::string source;           ///< "request", "env", "topology", "fallback"
};

/// Smallest shard the kernels will operate on. Matches the blocked-WHT
/// granularity (kLog2Block = 12): a shard below one kernel block would
/// force the sharded drivers to delegate to the monolithic path anyway.
inline constexpr index_t kMinShardElems = index_t{1} << 12;

/// Resolve the shard count for a state of `size` amplitudes.
///
/// Precedence: explicit `requested` (--shards / ServiceConfig) beats the
/// FASTQAOA_SHARDS environment variable, which beats one-shard-per-NUMA-node
/// from the detected topology. Whatever the source asked for is then
/// rounded down to a power of two and clamped so each shard keeps at least
/// kMinShardElems amplitudes; small states therefore always resolve to a
/// single shard regardless of the request.
ShardPlan plan_shards(index_t size, int requested = 0);

/// The raw shard request currently in effect (0 = auto): explicit value if
/// nonzero, else FASTQAOA_SHARDS, else 0.
int shard_request(int requested = 0);

}  // namespace fastqaoa
