#pragma once
/// \file error.hpp
/// Error reporting. Public API entry points validate their inputs with
/// FASTQAOA_CHECK (always on); internal invariants use FASTQAOA_ASSERT
/// (compiled out in release builds).

#include <sstream>
#include <stdexcept>
#include <string>

namespace fastqaoa {

/// Exception thrown on invalid arguments or violated preconditions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line,
                                             const std::string& message) {
  std::ostringstream os;
  os << "fastqaoa check failed: (" << expr << ") at " << file << ":" << line;
  if (!message.empty()) os << " — " << message;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace fastqaoa

/// Validate a user-facing precondition; throws fastqaoa::Error on failure.
#define FASTQAOA_CHECK(cond, message)                                  \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::fastqaoa::detail::throw_check_failure(#cond, __FILE__,         \
                                              __LINE__, (message));    \
    }                                                                  \
  } while (false)

/// Internal invariant; active only in debug builds.
#ifndef NDEBUG
#define FASTQAOA_ASSERT(cond, message) FASTQAOA_CHECK(cond, message)
#else
#define FASTQAOA_ASSERT(cond, message) \
  do {                                 \
  } while (false)
#endif
