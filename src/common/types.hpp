#pragma once
/// \file types.hpp
/// Core scalar and container aliases shared across all fastQAOA modules.

#include <complex>
#include <cstdint>
#include <vector>

#include "common/alloc.hpp"

namespace fastqaoa {

/// Double-precision complex amplitude. All statevector math uses this type.
using cplx = std::complex<double>;

/// Computational-basis state encoded as a bit string (qubit i = bit i).
using state_t = std::uint64_t;

/// Index into a (possibly restricted) basis.
using index_t = std::size_t;

/// Cache-line aligned dynamic array of complex amplitudes.
/// Allocation is tracked so simulators can report peak memory (Fig. 4a).
using cvec = std::vector<cplx, TrackedAlignedAllocator<cplx>>;

/// Cache-line aligned dynamic array of real values (tabulated cost
/// functions, mixer eigenvalues, ...). Allocation is tracked.
using dvec = std::vector<double, TrackedAlignedAllocator<double>>;

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr cplx kImag{0.0, 1.0};

}  // namespace fastqaoa
