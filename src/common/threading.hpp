#pragma once
/// \file threading.hpp
/// Thin OpenMP shims so the library builds (serially) without OpenMP.

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fastqaoa {

/// Number of OpenMP threads the next parallel region will use (1 if OpenMP
/// is unavailable).
inline int num_threads() noexcept {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Index of the calling thread inside a parallel region (0 otherwise).
inline int thread_id() noexcept {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Set the default OpenMP team size for subsequent parallel regions
/// (no-op without OpenMP). Used by qaoa_cli's --threads flag and the
/// scaling bench.
inline void set_num_threads(int n) noexcept {
#ifdef _OPENMP
  if (n >= 1) omp_set_num_threads(n);
#else
  (void)n;
#endif
}

/// Whether the caller is already inside an active parallel region (nested
/// regions then run serially by default).
inline bool in_parallel() noexcept {
#ifdef _OPENMP
  return omp_in_parallel() != 0;
#else
  return false;
#endif
}

}  // namespace fastqaoa
