#pragma once
/// \file threading.hpp
/// Thin OpenMP shims so the library builds (serially) without OpenMP.

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fastqaoa {

/// Number of OpenMP threads the next parallel region will use (1 if OpenMP
/// is unavailable).
inline int num_threads() noexcept {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Index of the calling thread inside a parallel region (0 otherwise).
inline int thread_id() noexcept {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

}  // namespace fastqaoa
