#include "common/version.hpp"

namespace fastqaoa {

const char* version() noexcept { return "1.0.0"; }

}  // namespace fastqaoa
