#pragma once
/// \file rng.hpp
/// Deterministic, splittable pseudo-random number generation.
///
/// All stochastic components (graph generators, SAT instance generators,
/// basinhopping perturbations, random restarts) draw from Xoshiro256ss so
/// experiments are exactly reproducible from a single 64-bit seed, and
/// independent streams can be forked for parallel workers.

#include <cstdint>
#include <limits>

namespace fastqaoa {

/// SplitMix64 — used to expand a single seed into Xoshiro state and to fork
/// independent streams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
/// Satisfies std::uniform_random_bit_generator, so it plugs into
/// std::uniform_int_distribution and friends.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    // 128-bit multiply-shift rejection sampling.
    __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Fork an independent generator (for per-worker streams).
  Xoshiro256ss fork() noexcept { return Xoshiro256ss((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Default RNG type used throughout the library.
using Rng = Xoshiro256ss;

}  // namespace fastqaoa
