#pragma once
/// \file timer.hpp
/// Wall-clock timing utilities used by the benchmark harnesses.

#include <chrono>

namespace fastqaoa {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction / last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction / last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace fastqaoa
