#pragma once
/// \file alloc.hpp
/// Cache-line aligned allocation with byte-level accounting.
///
/// The paper's Fig. 4a reports memory usage per simulation package. We
/// reproduce that by funnelling every statevector / cost-table / mixer
/// allocation through TrackedAlignedAllocator, which maintains process-wide
/// current and peak byte counters (see MemoryTracker). The counters are
/// cheap relaxed atomics, so tracking costs nothing measurable next to the
/// O(2^n) math they account for.

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace fastqaoa {

/// Alignment of every tracked allocation (one cache line).
inline constexpr std::size_t kTrackedAlignment = 64;

/// The number of bytes actually allocated (and tracked) for a request of
/// `bytes`: aligned_alloc requires a size that is a multiple of the
/// alignment, so every tracked allocation is padded up to 64 bytes. Byte
/// budgets that compare against MemoryTracker totals must use this, not the
/// raw requested size, or they drift low by up to 63 bytes per buffer.
constexpr std::size_t tracked_alloc_bytes(std::size_t bytes) noexcept {
  return (bytes + kTrackedAlignment - 1) / kTrackedAlignment *
         kTrackedAlignment;
}

/// Process-wide allocation statistics for tracked containers.
class MemoryTracker {
 public:
  /// Bytes currently allocated through tracked allocators.
  static std::size_t current_bytes() noexcept {
    return current_.load(std::memory_order_relaxed);
  }
  /// High-water mark since the last reset_peak().
  static std::size_t peak_bytes() noexcept {
    return peak_.load(std::memory_order_relaxed);
  }
  /// Reset the high-water mark to the current allocation level.
  static void reset_peak() noexcept {
    peak_.store(current_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }

  static void add(std::size_t bytes) noexcept {
    const std::size_t now =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::size_t prev = peak_.load(std::memory_order_relaxed);
    while (prev < now &&
           !peak_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
    }
  }
  static void sub(std::size_t bytes) noexcept {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
  }

 private:
  static inline std::atomic<std::size_t> current_{0};
  static inline std::atomic<std::size_t> peak_{0};
};

/// 64-byte aligned allocator that reports every allocation to MemoryTracker.
template <typename T>
class TrackedAlignedAllocator {
 public:
  using value_type = T;
  static constexpr std::size_t kAlignment = kTrackedAlignment;

  TrackedAlignedAllocator() noexcept = default;
  template <typename U>
  explicit constexpr TrackedAlignedAllocator(
      const TrackedAlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    const std::size_t bytes = round_up(n * sizeof(T));
    void* p = std::aligned_alloc(kAlignment, bytes);
    if (p == nullptr) throw std::bad_alloc{};
    MemoryTracker::add(bytes);
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t n) noexcept {
    MemoryTracker::sub(round_up(n * sizeof(T)));
    std::free(p);
  }

  template <typename U>
  bool operator==(const TrackedAlignedAllocator<U>&) const noexcept {
    return true;
  }

 private:
  static constexpr std::size_t round_up(std::size_t bytes) noexcept {
    return tracked_alloc_bytes(bytes);
  }
};

}  // namespace fastqaoa
