#include "mps/mps_objective.hpp"

#include "common/error.hpp"

namespace fastqaoa::mps {

MpsObjective::MpsObjective(const MpsPlan& plan, MpsWorkspace& ws,
                           Direction direction, double fd_step)
    : plan_(&plan), ws_(&ws), direction_(direction), step_(fd_step) {
  FASTQAOA_CHECK(fd_step > 0.0, "MpsObjective: need fd_step > 0");
}

double MpsObjective::value(std::span<const double> packed) {
  ++evals_;
  const double e = evaluate_packed(*plan_, *ws_, packed);
  return direction_ == Direction::Maximize ? -e : e;
}

double MpsObjective::operator()(std::span<const double> packed,
                                std::span<double> grad) {
  const double f = value(packed);
  if (grad.empty()) return f;
  FASTQAOA_CHECK(grad.size() == packed.size(),
                 "MpsObjective: gradient span size mismatch");
  scratch_.assign(packed.begin(), packed.end());
  for (std::size_t d = 0; d < packed.size(); ++d) {
    const double x = scratch_[d];
    scratch_[d] = x + step_;
    const double fp = value(scratch_);
    scratch_[d] = x - step_;
    const double fm = value(scratch_);
    scratch_[d] = x;
    grad[d] = (fp - fm) / (2.0 * step_);
  }
  return f;
}

GradObjective MpsObjective::as_grad_objective() {
  return [this](std::span<const double> x, std::span<double> g) {
    return (*this)(x, g);
  };
}

}  // namespace fastqaoa::mps
