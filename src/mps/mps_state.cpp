#include "mps/mps_state.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "bits/bitops.hpp"
#include "common/error.hpp"
#include "linalg/dense.hpp"
#include "linalg/svd.hpp"

namespace fastqaoa::mps {

namespace {

using linalg::cmat;
using linalg::CSvdResult;

cmat to_matrix(const cvec& flat, index_t rows, index_t cols) {
  cmat m(rows, cols);
  std::copy(flat.begin(), flat.end(), m.data());
  return m;
}

double sq(double x) { return x * x; }

}  // namespace

MpsState MpsState::plus_state(index_t n) {
  FASTQAOA_CHECK(n >= 2, "MpsState: need n >= 2");
  MpsState st;
  st.n_ = n;
  st.center_ = 0;
  st.bonds_.assign(n + 1, 1);
  st.tensors_.resize(n);
  const cplx amp{1.0 / std::sqrt(2.0), 0.0};
  for (index_t i = 0; i < n; ++i) st.tensors_[i] = cvec{amp, amp};
  return st;
}

index_t MpsState::max_bond() const {
  return *std::max_element(bonds_.begin(), bonds_.end());
}

void MpsState::apply_phase(index_t site, double angle) {
  FASTQAOA_CHECK(site < n_, "apply_phase: site out of range");
  const index_t dl = bonds_[site];
  const index_t dr = bonds_[site + 1];
  const cplx ph0 = std::exp(cplx{0.0, -angle});  // z = +1 (bit 0)
  const cplx ph1 = std::conj(ph0);               // z = -1 (bit 1)
  cvec& t = tensors_[site];
  for (index_t l = 0; l < dl; ++l) {
    cplx* row0 = t.data() + (l * 2 + 0) * dr;
    cplx* row1 = t.data() + (l * 2 + 1) * dr;
    for (index_t r = 0; r < dr; ++r) {
      row0[r] *= ph0;
      row1[r] *= ph1;
    }
  }
}

void MpsState::apply_rx(index_t site, double beta) {
  FASTQAOA_CHECK(site < n_, "apply_rx: site out of range");
  const index_t dl = bonds_[site];
  const index_t dr = bonds_[site + 1];
  const double c = std::cos(beta);
  const cplx ms{0.0, -std::sin(beta)};  // -i sin(beta)
  cvec& t = tensors_[site];
  for (index_t l = 0; l < dl; ++l) {
    cplx* row0 = t.data() + (l * 2 + 0) * dr;
    cplx* row1 = t.data() + (l * 2 + 1) * dr;
    for (index_t r = 0; r < dr; ++r) {
      const cplx a0 = row0[r];
      const cplx a1 = row1[r];
      row0[r] = c * a0 + ms * a1;
      row1[r] = ms * a0 + c * a1;
    }
  }
}

void MpsState::move_center(index_t target) {
  FASTQAOA_CHECK(target < n_, "move_center: target out of range");
  while (center_ < target) shift_center_right();
  while (center_ > target) shift_center_left();
}

void MpsState::shift_center_right() {
  const index_t c = center_;
  const index_t dl = bonds_[c];
  const index_t dr = bonds_[c + 1];
  // Group the physical leg with the left bond: (dl*2) x dr, the flat layout.
  const CSvdResult f = linalg::svd(to_matrix(tensors_[c], dl * 2, dr));
  const index_t k = f.singular_values.size();

  cvec& t = tensors_[c];
  t.assign(dl * 2 * k, cplx{});
  for (index_t row = 0; row < dl * 2; ++row) {
    for (index_t b = 0; b < k; ++b) t[row * k + b] = f.u(row, b);
  }

  // Absorb S V^H into the right neighbour (it becomes the new center).
  const index_t dn = bonds_[c + 2];
  const cvec& old = tensors_[c + 1];  // (dr, 2, dn)
  cvec next(k * 2 * dn, cplx{});
  for (index_t b = 0; b < k; ++b) {
    cplx* dst = next.data() + b * 2 * dn;
    for (index_t r = 0; r < dr; ++r) {
      const cplx carry = f.singular_values[b] * std::conj(f.v(r, b));
      if (carry == cplx{}) continue;
      const cplx* src = old.data() + r * 2 * dn;
      for (index_t j = 0; j < 2 * dn; ++j) dst[j] += carry * src[j];
    }
  }
  tensors_[c + 1] = std::move(next);
  bonds_[c + 1] = k;
  center_ = c + 1;
}

void MpsState::shift_center_left() {
  const index_t c = center_;
  const index_t dl = bonds_[c];
  const index_t dr = bonds_[c + 1];
  // Group the physical leg with the right bond: dl x (2*dr), also the flat
  // layout (row l spans the 2*dr entries (s, r)).
  const CSvdResult f = linalg::svd(to_matrix(tensors_[c], dl, 2 * dr));
  const index_t k = f.singular_values.size();

  cvec& t = tensors_[c];
  t.assign(k * 2 * dr, cplx{});
  for (index_t b = 0; b < k; ++b) {
    for (index_t col = 0; col < 2 * dr; ++col) {
      t[b * 2 * dr + col] = std::conj(f.v(col, b));
    }
  }

  // Absorb U S into the left neighbour (it becomes the new center).
  const index_t dp = bonds_[c - 1];
  const cvec& old = tensors_[c - 1];  // (dp, 2, dl)
  cvec prev(dp * 2 * k, cplx{});
  for (index_t row = 0; row < dp * 2; ++row) {
    const cplx* src = old.data() + row * dl;
    cplx* dst = prev.data() + row * k;
    for (index_t l = 0; l < dl; ++l) {
      const cplx coef = src[l];
      if (coef == cplx{}) continue;
      for (index_t b = 0; b < k; ++b) {
        dst[b] += coef * f.u(l, b) * f.singular_values[b];
      }
    }
  }
  tensors_[c - 1] = std::move(prev);
  bonds_[c] = k;
  center_ = c - 1;
}

void MpsState::apply_two_site(index_t bond, const std::array<cplx, 4>& phase,
                              bool swap_sites, index_t leave,
                              const TruncationPolicy& policy,
                              TruncationStats& stats) {
  FASTQAOA_CHECK(bond + 1 < n_, "apply_two_site: bond out of range");
  FASTQAOA_CHECK(center_ == bond || center_ == bond + 1,
                 "apply_two_site: center must sit on the gate");
  FASTQAOA_CHECK(leave == bond || leave == bond + 1,
                 "apply_two_site: bad leave site");
  const index_t dl = bonds_[bond];
  const index_t dm = bonds_[bond + 1];
  const index_t dr = bonds_[bond + 2];
  const cvec& a = tensors_[bond];       // (dl, 2, dm)
  const cvec& bt = tensors_[bond + 1];  // (dm, 2, dr)

  // theta(l, s0, s1, r) = gate * sum_b A(l, sA, b) B(b, sB, r), matricized
  // rows (l*2+s0) x cols (s1*dr+r).
  cmat m(dl * 2, 2 * dr);
  for (index_t l = 0; l < dl; ++l) {
    for (index_t s0 = 0; s0 < 2; ++s0) {
      cplx* out = m.row(l * 2 + s0);
      for (index_t s1 = 0; s1 < 2; ++s1) {
        const index_t sa = swap_sites ? s1 : s0;
        const index_t sb = swap_sites ? s0 : s1;
        const cplx g = phase[s0 * 2 + s1];
        cplx* dst = out + s1 * dr;
        const cplx* arow = a.data() + (l * 2 + sa) * dm;
        for (index_t b = 0; b < dm; ++b) {
          const cplx coef = g * arow[b];
          if (coef == cplx{}) continue;
          const cplx* src = bt.data() + (b * 2 + sb) * dr;
          for (index_t r = 0; r < dr; ++r) dst[r] += coef * src[r];
        }
      }
    }
  }

  const CSvdResult f = linalg::svd(m);
  const index_t k_all = f.singular_values.size();
  double total = 0.0;
  for (index_t j = 0; j < k_all; ++j) total += sq(f.singular_values[j]);

  // Exact-zero tail is structural rank, not truncation — drop it for free.
  index_t k = k_all;
  while (k > 1 && f.singular_values[k - 1] == 0.0) --k;

  // Hard cap: always enforced, even past the fidelity budget.
  double dropped = 0.0;
  while (k > policy.max_bond) {
    --k;
    dropped += sq(f.singular_values[k]);
  }
  const bool forced_over_budget =
      dropped > 0.0 && stats.discarded_weight >= policy.fidelity_budget;

  // Soft truncation: drop further tail values while the split's relative
  // discard stays under trunc_tol AND the cumulative discarded weight stays
  // within the fidelity budget.
  while (k > 1) {
    const double cand = dropped + sq(f.singular_values[k - 1]);
    if (total > 0.0 && cand / total <= policy.trunc_tol &&
        stats.discarded_weight + cand / total <= policy.fidelity_budget) {
      dropped = cand;
      --k;
    } else {
      break;
    }
  }

  const double rel = total > 0.0 ? dropped / total : 0.0;
  if (rel > 0.0) {
    ++stats.truncations;
    stats.discarded_weight += rel;
  }
  if (forced_over_budget) ++stats.budget_exhausted;
  stats.max_bond_reached = std::max(stats.max_bond_reached, k);

  // Renormalize the kept spectrum so the state norm survives truncation.
  const double kept = total - dropped;
  const double scale =
      (dropped > 0.0 && kept > 0.0) ? std::sqrt(total / kept) : 1.0;

  cvec& ta = tensors_[bond];
  cvec& tb = tensors_[bond + 1];
  ta.assign(dl * 2 * k, cplx{});
  tb.assign(k * 2 * dr, cplx{});
  if (leave == bond + 1) {
    // A <- U (left-canonical), B <- scale * S V^H (new center).
    for (index_t row = 0; row < dl * 2; ++row) {
      for (index_t b = 0; b < k; ++b) ta[row * k + b] = f.u(row, b);
    }
    for (index_t b = 0; b < k; ++b) {
      const double sv = scale * f.singular_values[b];
      for (index_t col = 0; col < 2 * dr; ++col) {
        tb[b * 2 * dr + col] = sv * std::conj(f.v(col, b));
      }
    }
  } else {
    // A <- U * scale * S (new center), B <- V^H (right-canonical).
    for (index_t row = 0; row < dl * 2; ++row) {
      for (index_t b = 0; b < k; ++b) {
        ta[row * k + b] = f.u(row, b) * (scale * f.singular_values[b]);
      }
    }
    for (index_t b = 0; b < k; ++b) {
      for (index_t col = 0; col < 2 * dr; ++col) {
        tb[b * 2 * dr + col] = std::conj(f.v(col, b));
      }
    }
  }
  bonds_[bond + 1] = k;
  center_ = leave;
}

cvec MpsState::transfer(index_t site, const cvec& env, bool with_z) const {
  const index_t dl = bonds_[site];
  const index_t dr = bonds_[site + 1];
  const cvec& t = tensors_[site];
  cvec out(dl * dl, cplx{});
  cvec tmp(dl * dr);
  for (index_t s = 0; s < 2; ++s) {
    const double w = with_z ? (s == 0 ? 1.0 : -1.0) : 1.0;
    // tmp = B_s * env, with B_s(l, r) = t[(l*2+s)*dr + r].
    for (index_t l = 0; l < dl; ++l) {
      const cplx* brow = t.data() + (l * 2 + s) * dr;
      cplx* trow = tmp.data() + l * dr;
      std::fill(trow, trow + dr, cplx{});
      for (index_t r = 0; r < dr; ++r) {
        const cplx coef = brow[r];
        if (coef == cplx{}) continue;
        const cplx* erow = env.data() + r * dr;
        for (index_t rp = 0; rp < dr; ++rp) trow[rp] += coef * erow[rp];
      }
    }
    // out(l, lp) += w * sum_rp tmp(l, rp) * conj(B_s(lp, rp)).
    for (index_t l = 0; l < dl; ++l) {
      const cplx* trow = tmp.data() + l * dr;
      cplx* orow = out.data() + l * dl;
      for (index_t lp = 0; lp < dl; ++lp) {
        const cplx* brow = t.data() + (lp * 2 + s) * dr;
        cplx acc{};
        for (index_t rp = 0; rp < dr; ++rp) {
          acc += trow[rp] * std::conj(brow[rp]);
        }
        orow[lp] += w * acc;
      }
    }
  }
  return out;
}

double MpsState::trace_term(index_t site, const cvec& env,
                            bool with_z) const {
  const index_t dl = bonds_[site];
  const index_t dr = bonds_[site + 1];
  const cvec& t = tensors_[site];
  cvec trow(dr);
  cplx acc{};
  for (index_t s = 0; s < 2; ++s) {
    const double w = with_z ? (s == 0 ? 1.0 : -1.0) : 1.0;
    for (index_t l = 0; l < dl; ++l) {
      const cplx* brow = t.data() + (l * 2 + s) * dr;
      std::fill(trow.begin(), trow.end(), cplx{});
      for (index_t r = 0; r < dr; ++r) {
        const cplx coef = brow[r];
        if (coef == cplx{}) continue;
        const cplx* erow = env.data() + r * dr;
        for (index_t rp = 0; rp < dr; ++rp) trow[rp] += coef * erow[rp];
      }
      cplx dot{};
      for (index_t rp = 0; rp < dr; ++rp) dot += trow[rp] * std::conj(brow[rp]);
      acc += w * dot;
    }
  }
  return acc.real();
}

double MpsState::norm2() const {
  cvec env{cplx{1.0, 0.0}};
  for (index_t site = n_; site-- > 1;) env = transfer(site, env, false);
  return trace_term(0, env, false);
}

cplx MpsState::amplitude(state_t x) const {
  cvec v{cplx{1.0, 0.0}};
  for (index_t site = 0; site < n_; ++site) {
    const index_t s =
        static_cast<index_t>(bit(x, static_cast<int>(site)));
    const index_t dl = bonds_[site];
    const index_t dr = bonds_[site + 1];
    const cvec& t = tensors_[site];
    cvec next(dr, cplx{});
    for (index_t l = 0; l < dl; ++l) {
      const cplx coef = v[l];
      if (coef == cplx{}) continue;
      const cplx* row = t.data() + (l * 2 + s) * dr;
      for (index_t r = 0; r < dr; ++r) next[r] += coef * row[r];
    }
    v = std::move(next);
  }
  return v[0];
}

double expectation(MpsState& state, const DiagonalHamiltonian& h) {
  FASTQAOA_CHECK(h.n == state.n(), "expectation: Hamiltonian size mismatch");
  const index_t n = state.n_;
  // Left-canonicalize so every left environment is the identity.
  state.move_center(n - 1);

  // Right environments: renv[i] covers sites i+1..n-1 (bond after site i).
  std::vector<cvec> renv(n);
  renv[n - 1] = cvec{cplx{1.0, 0.0}};
  for (index_t i = n - 1; i >= 1; --i) {
    renv[i - 1] = state.transfer(i, renv[i], false);
  }
  const double nrm = state.trace_term(0, renv[0], false);
  FASTQAOA_CHECK(nrm > 0.0, "expectation: zero-norm state");

  double acc = 0.0;
  for (const ZTerm& t : h.z_terms) {
    acc += t.coeff * state.trace_term(t.site, renv[t.site], true);
  }

  // ZZ terms grouped by right endpoint: one Z-insertion at v, then a single
  // leftward identity propagation serves every partner u < v.
  std::vector<std::vector<const ZZTerm*>> by_v(n);
  for (const ZZTerm& t : h.zz_terms) by_v[t.v].push_back(&t);
  for (index_t v = 0; v < n; ++v) {
    if (by_v[v].empty()) continue;
    std::vector<const ZZTerm*> partners = by_v[v];
    std::sort(partners.begin(), partners.end(),
              [](const ZZTerm* a, const ZZTerm* b) { return a->u > b->u; });
    cvec env = state.transfer(v, renv[v], true);
    index_t cur = v;  // env covers the bond before site `cur`
    for (const ZZTerm* t : partners) {
      while (cur > t->u + 1) {
        --cur;
        env = state.transfer(cur, env, false);
      }
      acc += t->coeff * state.trace_term(t->u, env, true);
    }
  }
  return h.constant + acc / nrm;
}

}  // namespace fastqaoa::mps
