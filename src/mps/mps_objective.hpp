#pragma once
/// \file mps_objective.hpp
/// MPS counterpart of anglefind's QaoaObjective: adapts an MpsPlan +
/// MpsWorkspace into the minimization objective the optimizers consume
/// (f = -<C> for maximization). Gradients are always central finite
/// differences — the adjoint reverse sweep is statevector-specific, and
/// 4p extra evaluations per gradient is acceptable at the evaluation cost
/// profile MPS lives in. One instance per optimization thread.

#include <cstddef>
#include <span>

#include "anglefind/optimizer.hpp"
#include "mps/mps_plan.hpp"
#include "problems/objective.hpp"

namespace fastqaoa::mps {

class MpsObjective {
 public:
  MpsObjective(const MpsPlan& plan, MpsWorkspace& ws,
               Direction direction = Direction::Maximize,
               double fd_step = 1e-6);

  /// f (and central-difference gradient when `grad` is non-empty).
  double operator()(std::span<const double> packed, std::span<double> grad);

  /// Expose as the std::function type the optimizers take. References
  /// *this; keep the MpsObjective alive while in use.
  [[nodiscard]] GradObjective as_grad_objective();

  /// Underlying MPS evaluations so far (a gradient tallies 4p + the value).
  [[nodiscard]] std::size_t evaluations() const noexcept { return evals_; }

  [[nodiscard]] Direction direction() const noexcept { return direction_; }

  [[nodiscard]] double to_expectation(double f) const noexcept {
    return direction_ == Direction::Maximize ? -f : f;
  }

 private:
  double value(std::span<const double> packed);

  const MpsPlan* plan_;
  MpsWorkspace* ws_;
  Direction direction_;
  double step_;
  std::size_t evals_ = 0;
  std::vector<double> scratch_;
};

}  // namespace fastqaoa::mps
