#pragma once
/// \file hamiltonian.hpp
/// Structural diagonal cost Hamiltonians for the MPS engine.
///
/// The exact engine tabulates C(z) over all 2^n basis states; that table is
/// exactly what dies at large n. The MPS engine instead keeps the cost in
/// its sparse Pauli-Z form
///
///     C = constant + sum_i c_i Z_i + sum_{u<v} c_uv Z_u Z_v
///
/// (Z eigenvalue +1 for bit 0, -1 for bit 1), which is all the gate
/// scheduler needs: single-site phases for the linear terms and two-site
/// bond gates (routed by swaps when non-adjacent) for the quadratic ones.
/// Terms are canonicalized — u < v, lexicographic order, duplicates merged —
/// so every consumer walks them in one fixed deterministic order.

#include <vector>

#include "common/types.hpp"
#include "graphs/graph.hpp"

namespace fastqaoa::mps {

/// c * Z_site.
struct ZTerm {
  index_t site = 0;
  double coeff = 0.0;
};

/// c * Z_u Z_v with u < v after canonicalization.
struct ZZTerm {
  index_t u = 0;
  index_t v = 0;
  double coeff = 0.0;
};

/// Sparse diagonal Hamiltonian over n qubits (site i = qubit i).
struct DiagonalHamiltonian {
  index_t n = 0;
  double constant = 0.0;
  std::vector<ZTerm> z_terms;
  std::vector<ZZTerm> zz_terms;
};

/// Canonical form: zz terms with u < v, both term lists sorted by site
/// index (lexicographic for zz), duplicate terms merged by summing
/// coefficients, zero-coefficient terms dropped, Z_u Z_u folded into the
/// constant (Z^2 = I). Throws on out-of-range sites.
DiagonalHamiltonian canonicalize(DiagonalHamiltonian h);

/// MaxCut on a (weighted) graph: cut(x) = sum_{e : cut} w_e equals
/// W/2 - sum_e (w_e/2) Z_u Z_v with W the total edge weight. The returned
/// Hamiltonian's eval_bits matches problems::maxcut exactly, so MPS and
/// exact-engine expectations are directly comparable.
DiagonalHamiltonian maxcut_hamiltonian(const Graph& g);

/// Classical evaluation at a bitstring (tests / cross-validation only).
double eval_bits(const DiagonalHamiltonian& h, state_t x);

}  // namespace fastqaoa::mps
