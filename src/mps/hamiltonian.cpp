#include "mps/hamiltonian.hpp"

#include <algorithm>
#include <utility>

#include "bits/bitops.hpp"
#include "common/error.hpp"

namespace fastqaoa::mps {

DiagonalHamiltonian canonicalize(DiagonalHamiltonian h) {
  FASTQAOA_CHECK(h.n >= 1, "DiagonalHamiltonian: need n >= 1");
  for (ZTerm& t : h.z_terms) {
    FASTQAOA_CHECK(t.site < h.n, "DiagonalHamiltonian: Z site out of range");
  }
  std::vector<ZZTerm> zz;
  zz.reserve(h.zz_terms.size());
  for (ZZTerm t : h.zz_terms) {
    FASTQAOA_CHECK(t.u < h.n && t.v < h.n,
                   "DiagonalHamiltonian: ZZ site out of range");
    if (t.u == t.v) {
      h.constant += t.coeff;  // Z^2 = I
      continue;
    }
    if (t.u > t.v) std::swap(t.u, t.v);
    zz.push_back(t);
  }
  std::sort(zz.begin(), zz.end(), [](const ZZTerm& a, const ZZTerm& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  h.zz_terms.clear();
  for (const ZZTerm& t : zz) {
    if (!h.zz_terms.empty() && h.zz_terms.back().u == t.u &&
        h.zz_terms.back().v == t.v) {
      h.zz_terms.back().coeff += t.coeff;
    } else {
      h.zz_terms.push_back(t);
    }
  }
  h.zz_terms.erase(std::remove_if(h.zz_terms.begin(), h.zz_terms.end(),
                                  [](const ZZTerm& t) {
                                    return t.coeff == 0.0;
                                  }),
                   h.zz_terms.end());

  std::sort(h.z_terms.begin(), h.z_terms.end(),
            [](const ZTerm& a, const ZTerm& b) { return a.site < b.site; });
  std::vector<ZTerm> z;
  for (const ZTerm& t : h.z_terms) {
    if (!z.empty() && z.back().site == t.site) {
      z.back().coeff += t.coeff;
    } else {
      z.push_back(t);
    }
  }
  z.erase(std::remove_if(z.begin(), z.end(),
                         [](const ZTerm& t) { return t.coeff == 0.0; }),
          z.end());
  h.z_terms = std::move(z);
  return h;
}

DiagonalHamiltonian maxcut_hamiltonian(const Graph& g) {
  DiagonalHamiltonian h;
  h.n = static_cast<index_t>(g.num_vertices());
  for (const Edge& e : g.edges()) {
    h.constant += 0.5 * e.weight;
    h.zz_terms.push_back({static_cast<index_t>(e.u),
                          static_cast<index_t>(e.v), -0.5 * e.weight});
  }
  return canonicalize(std::move(h));
}

double eval_bits(const DiagonalHamiltonian& h, state_t x) {
  auto z = [x](index_t site) {
    return bit(x, static_cast<int>(site)) ? -1.0 : 1.0;
  };
  double val = h.constant;
  for (const ZTerm& t : h.z_terms) val += t.coeff * z(t.site);
  for (const ZZTerm& t : h.zz_terms) val += t.coeff * z(t.u) * z(t.v);
  return val;
}

}  // namespace fastqaoa::mps
