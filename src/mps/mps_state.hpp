#pragma once
/// \file mps_state.hpp
/// Matrix-product-state representation with canonical-form management —
/// the approximate large-n state the exact statevector cannot hold.
///
/// Layout: site tensor i has shape (Dl, 2, Dr) with Dl = bond(i) and
/// Dr = bond(i+1), stored flat as tensor[(l*2 + s)*Dr + r]. That single
/// layout doubles as both matricizations the SVD splits need with zero
/// copying: rows (l*2+s) x cols (r) groups the physical leg left, and
/// rows (l) x cols (s*Dr + r) groups it right. Edge bonds are 1.
///
/// Canonical form: one orthogonality center; every tensor left of it is
/// left-canonical, every tensor right of it right-canonical. Gates truncate
/// optimally only at the center, so the evaluator rides the center along
/// its gate schedule. All moves and splits go through linalg::svd (one-sided
/// Jacobi): fixed sweep order, index tie-breaks, strictly serial — the same
/// input bits give the same output bits at any thread count, which is what
/// makes MPS results thread- and worker-count invariant like the exact
/// engine's.
///
/// Truncation contract (apply_two_site): the max_bond cap is always
/// enforced; additionally, trailing singular values whose relative squared
/// weight fits under trunc_tol are dropped while the cumulative discarded
/// weight stays within fidelity_budget. Once the budget is exhausted only
/// the hard cap forces discards (counted separately). Kept singular values
/// are rescaled so the state norm is preserved, and the cumulative
/// discarded weight is monotone non-decreasing — the fidelity proxy
/// reported per evaluation.

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "mps/hamiltonian.hpp"

namespace fastqaoa::mps {

/// Truncation knobs (plan-level; part of the plan-cache fingerprint).
struct TruncationPolicy {
  index_t max_bond = 64;        ///< hard bond-dimension cap (chi)
  double trunc_tol = 1e-12;     ///< per-split relative tail drop threshold
  double fidelity_budget = 1e-3;  ///< cumulative discarded-weight allowance
};

/// Always-on truncation accounting (independent of FASTQAOA_PROFILING).
struct TruncationStats {
  std::uint64_t truncations = 0;   ///< splits that discarded nonzero weight
  double discarded_weight = 0.0;   ///< cumulative relative weight dropped
  index_t max_bond_reached = 1;    ///< largest bond dimension seen
  std::uint64_t budget_exhausted = 0;  ///< forced discards past the budget
  void reset() { *this = TruncationStats{}; }
};

class MpsState {
 public:
  MpsState() = default;

  /// |+>^n — the QAOA initial state (bond dimension 1 everywhere).
  static MpsState plus_state(index_t n);

  [[nodiscard]] index_t n() const noexcept { return n_; }
  /// Bond dimension between sites i-1 and i, for i in [0, n]; edges are 1.
  [[nodiscard]] index_t bond(index_t i) const { return bonds_[i]; }
  [[nodiscard]] index_t center() const noexcept { return center_; }
  [[nodiscard]] index_t max_bond() const;
  [[nodiscard]] const cvec& tensor(index_t site) const {
    return tensors_[site];
  }

  /// Single-site diagonal phase e^{-i angle Z_site} (canonical-form safe).
  void apply_phase(index_t site, double angle);

  /// Single-site rotation e^{-i beta X_site} (unitary: canonical-form safe).
  void apply_rx(index_t site, double beta);

  /// Move the orthogonality center to `target` via exact single-site SVD
  /// splits (no truncation beyond exact rank).
  void move_center(index_t target);

  /// Two-site gate on sites (bond, bond+1): optionally swap the physical
  /// indices, then apply the diagonal phase diag(ph[s0*2+s1]); split back
  /// with a truncated SVD per `policy`, renormalize, and leave the center
  /// at `leave` (must be bond or bond+1). Requires the center to already be
  /// at bond or bond+1.
  void apply_two_site(index_t bond, const std::array<cplx, 4>& phase,
                      bool swap_sites, index_t leave,
                      const TruncationPolicy& policy, TruncationStats& stats);

  /// <psi|psi> by full transfer contraction.
  [[nodiscard]] double norm2() const;

  /// Amplitude of computational basis state x (site i = bit i). O(n D^2);
  /// tests and debugging only.
  [[nodiscard]] cplx amplitude(state_t x) const;

 private:
  void shift_center_right();
  void shift_center_left();
  /// env over the bond after `site` (flattened D_{r} x D_{r}) -> env over
  /// the bond before it; with_z weights physical index s by its Z
  /// eigenvalue (1 - 2s).
  [[nodiscard]] cvec transfer(index_t site, const cvec& env,
                              bool with_z) const;
  /// trace(identity-left-env x transfer(site, env, with_z)) — the terminal
  /// contraction when every site left of `site` is left-canonical.
  [[nodiscard]] double trace_term(index_t site, const cvec& env,
                                  bool with_z) const;

  friend double expectation(MpsState& state, const DiagonalHamiltonian& h);

  index_t n_ = 0;
  index_t center_ = 0;
  std::vector<index_t> bonds_;  ///< n+1 entries, bonds_[0] = bonds_[n] = 1
  std::vector<cvec> tensors_;
};

/// <psi|C|psi> / <psi|psi> + constant for a canonicalized diagonal
/// Hamiltonian. Left-canonicalizes the state (moves the center to n-1),
/// caches right environments once, and evaluates ZZ terms grouped by their
/// right endpoint — O((n + sum_terms span) * D^3) total.
double expectation(MpsState& state, const DiagonalHamiltonian& h);

}  // namespace fastqaoa::mps
