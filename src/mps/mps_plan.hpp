#pragma once
/// \file mps_plan.hpp
/// MPS analogue of core/plan.hpp's QaoaPlan/EvalWorkspace split: an
/// immutable shared plan (canonicalized Hamiltonian + precomputed two-site
/// gate schedule + truncation knobs) and a cheap per-thread workspace, so
/// the basinhopping/grid drivers parallelize over chains exactly like the
/// exact engine — one plan, one MpsWorkspace per thread.
///
/// Gate schedule: each round applies e^{-i gamma H_C} then e^{-i beta H_M}
/// (H_M = sum_i X_i, the transverse-field mixer; the only mixer the MPS
/// engine supports). Linear Z terms are single-site phases; each ZZ term on
/// non-adjacent sites (u, v) is routed by bringing qubit v next to u with
/// adjacent swap gates and swapping it back afterwards (route-and-return,
/// 2(v-u-1)+1 two-site ops). The schedule, including which side keeps the
/// orthogonality center after each op, is fixed at plan construction — the
/// evaluator just replays it, so the gate order (and therefore the
/// truncation sequence) is a pure function of the Hamiltonian.

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "mps/hamiltonian.hpp"
#include "mps/mps_state.hpp"
#include "obs/metrics.hpp"
#include "runtime/budget.hpp"

namespace fastqaoa::mps {

/// Truncation/approximation knobs. Part of the service plan-cache
/// fingerprint: two jobs with different knobs never share a cache entry.
struct MpsOptions {
  index_t max_bond = 64;          ///< chi cap per bond
  double fidelity_budget = 1e-3;  ///< cumulative discarded-weight allowance
  double trunc_tol = 1e-12;       ///< per-split relative tail threshold
};

enum class OpKind : std::uint8_t {
  Swap,     ///< adjacent swap gate (routing)
  PhaseZZ,  ///< e^{-i gamma c Z Z} on adjacent sites
};

/// One two-site op on sites (bond, bond+1). `leave` is the site that keeps
/// the orthogonality center afterwards, chosen so consecutive ops in a
/// route need no extra center moves.
struct MpsOp {
  index_t bond = 0;
  OpKind kind = OpKind::PhaseZZ;
  double coeff = 0.0;  ///< ZZ coefficient (PhaseZZ only)
  index_t leave = 0;
};

class MpsPlan {
 public:
  explicit MpsPlan(DiagonalHamiltonian h, MpsOptions options = {});

  [[nodiscard]] index_t n() const noexcept { return h_.n; }
  [[nodiscard]] const DiagonalHamiltonian& hamiltonian() const noexcept {
    return h_;
  }
  [[nodiscard]] const MpsOptions& options() const noexcept {
    return options_;
  }
  /// The per-round e^{-i gamma H_C} two-site schedule (ZZ + routing swaps).
  [[nodiscard]] const std::vector<MpsOp>& cost_ops() const noexcept {
    return ops_;
  }
  /// Routing swaps per round (schedule cost diagnostic).
  [[nodiscard]] std::size_t swaps_per_round() const noexcept {
    return swaps_;
  }

 private:
  DiagonalHamiltonian h_;
  MpsOptions options_;
  std::vector<MpsOp> ops_;
  std::size_t swaps_ = 0;
};

/// Per-thread evaluation state. Construction is cheap; the MPS tensors are
/// reallocated per evaluation (they are tiny next to a 2^n statevector).
struct MpsWorkspace {
  MpsState state;
  TruncationStats stats;  ///< reset at the start of every evaluation
  /// Optional live budget, polled between rounds inside evaluate(): a
  /// tripped deadline/cancel abandons the remaining (expensive) rounds and
  /// sets `interrupted` — the returned value is then a partial-state
  /// artifact and callers must honour the tracker's StopReason instead of
  /// trusting it. Deterministic runs leave this null.
  const runtime::BudgetTracker* tracker = nullptr;
  bool interrupted = false;
  obs::MetricsSink metrics;
};

/// Evolve |+>^n through p = betas.size() rounds of
/// e^{-i beta_k H_M} e^{-i gamma_k H_C} and return <C>.
double evaluate(const MpsPlan& plan, MpsWorkspace& ws,
                std::span<const double> betas, std::span<const double> gammas);

/// Packed [betas..., gammas...] convenience wrapper.
double evaluate_packed(const MpsPlan& plan, MpsWorkspace& ws,
                       std::span<const double> packed);

}  // namespace fastqaoa::mps
