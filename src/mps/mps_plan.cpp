#include "mps/mps_plan.hpp"

#include <array>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"

namespace fastqaoa::mps {

MpsPlan::MpsPlan(DiagonalHamiltonian h, MpsOptions options)
    : h_(canonicalize(std::move(h))), options_(options) {
  FASTQAOA_CHECK(h_.n >= 2, "MpsPlan: need n >= 2");
  FASTQAOA_CHECK(options_.max_bond >= 1, "MpsPlan: need max_bond >= 1");
  FASTQAOA_CHECK(options_.fidelity_budget >= 0.0,
                 "MpsPlan: need fidelity_budget >= 0");
  FASTQAOA_CHECK(options_.trunc_tol >= 0.0, "MpsPlan: need trunc_tol >= 0");

  // Route-and-return schedule, edges in canonical (lexicographic) order.
  // For (u, v): inbound swaps walk qubit v left to site u+1 (center rides
  // left with them), the phase gate fires at bond u (center moves to u+1),
  // outbound swaps walk it back (center rides right) — every op finds the
  // center already on its bond.
  for (const ZZTerm& t : h_.zz_terms) {
    const index_t u = t.u;
    const index_t v = t.v;
    if (v == u + 1) {
      ops_.push_back({u, OpKind::PhaseZZ, t.coeff, u + 1});
      continue;
    }
    for (index_t b = v - 1; b > u; --b) {
      ops_.push_back({b, OpKind::Swap, 0.0, b});
      ++swaps_;
    }
    ops_.push_back({u, OpKind::PhaseZZ, t.coeff, u + 1});
    for (index_t b = u + 1; b < v; ++b) {
      ops_.push_back({b, OpKind::Swap, 0.0, b + 1});
      ++swaps_;
    }
  }
}

double evaluate(const MpsPlan& plan, MpsWorkspace& ws,
                std::span<const double> betas,
                std::span<const double> gammas) {
  FASTQAOA_CHECK(betas.size() == gammas.size() && !betas.empty(),
                 "mps::evaluate: need matching non-empty beta/gamma arrays");
  const index_t n = plan.n();
  const TruncationPolicy policy{plan.options().max_bond,
                                plan.options().trunc_tol,
                                plan.options().fidelity_budget};
  ws.stats.reset();
  ws.interrupted = false;
  ws.state = MpsState::plus_state(n);

  FASTQAOA_OBS_SCOPE(ws.metrics);
  WallTimer timer;
  for (std::size_t round = 0; round < betas.size(); ++round) {
    // Per-round budget poll: an MPS round at large n is expensive enough
    // that waiting for the optimizer-granularity check would overshoot
    // deadlines by whole evaluations.
    if (ws.tracker != nullptr && ws.tracker->active() &&
        ws.tracker->check() != runtime::StopReason::None) {
      ws.interrupted = true;
      break;
    }
    const double gamma = gammas[round];
    for (const ZTerm& t : plan.hamiltonian().z_terms) {
      ws.state.apply_phase(t.site, gamma * t.coeff);
    }
    for (const MpsOp& op : plan.cost_ops()) {
      // Between routes the center may sit elsewhere; snap it to the gate.
      const index_t c = ws.state.center();
      if (c < op.bond) {
        ws.state.move_center(op.bond);
      } else if (c > op.bond + 1) {
        ws.state.move_center(op.bond + 1);
      }
      if (op.kind == OpKind::Swap) {
        static constexpr std::array<cplx, 4> kIdentity{
            cplx{1.0, 0.0}, cplx{1.0, 0.0}, cplx{1.0, 0.0}, cplx{1.0, 0.0}};
        ws.state.apply_two_site(op.bond, kIdentity, /*swap_sites=*/true,
                                op.leave, policy, ws.stats);
      } else {
        const double angle = gamma * op.coeff;
        const cplx same = std::exp(cplx{0.0, -angle});  // z_u z_v = +1
        const cplx diff = std::conj(same);              // z_u z_v = -1
        ws.state.apply_two_site(op.bond, {same, diff, diff, same},
                                /*swap_sites=*/false, op.leave, policy,
                                ws.stats);
      }
    }
    const double beta = betas[round];
    for (index_t site = 0; site < n; ++site) ws.state.apply_rx(site, beta);
  }
  const double value = expectation(ws.state, plan.hamiltonian());

  FASTQAOA_OBS_COUNT("mps.evals", 1);
  FASTQAOA_OBS_COUNT("mps.truncations", ws.stats.truncations);
  FASTQAOA_OBS_COUNT("mps.budget_exhausted", ws.stats.budget_exhausted);
  FASTQAOA_OBS_HIST("mps.discarded_weight", ws.stats.discarded_weight);
  FASTQAOA_OBS_HIST("mps.max_bond_reached",
                    static_cast<double>(ws.stats.max_bond_reached));
  FASTQAOA_OBS_TIME("mps.evaluate", timer.seconds());
  return value;
}

double evaluate_packed(const MpsPlan& plan, MpsWorkspace& ws,
                       std::span<const double> packed) {
  FASTQAOA_CHECK(packed.size() % 2 == 0 && !packed.empty(),
                 "mps::evaluate_packed: need 2p angles");
  const std::size_t p = packed.size() / 2;
  return evaluate(plan, ws, packed.subspan(0, p), packed.subspan(p, p));
}

}  // namespace fastqaoa::mps
