#pragma once
/// \file mps_strategies.hpp
/// Angle-finding drivers over the MPS engine, mirroring
/// anglefind/strategies.hpp so callers swap engines without changing their
/// driver logic: the same FindAnglesOptions, the same AngleSchedule
/// results, the same INTERP iteration / basinhopping chains / grid sweep,
/// the same checkpoint files (fingerprinted with an engine-tagged mixer
/// string so exact and MPS checkpoints can never resume into each other).
///
/// Differences from the exact drivers, by necessity:
///  * gradients are always central finite differences
///    (options.gradient is ignored — the adjoint sweep is
///    statevector-specific);
///  * options.eval_batch is ignored (no batched MPS kernels);
///  * the ensemble study driver stays exact-only.
/// Chain parallelism (options.parallel_starts) works identically: serially
/// forked RNG streams + per-thread MpsWorkspace => results are bit-identical
/// at any thread count.

#include <string>
#include <vector>

#include "anglefind/strategies.hpp"
#include "mps/mps_plan.hpp"

namespace fastqaoa::mps {

/// Engine-tagged checkpoint mixer string: "mps:tf chi=<max_bond>
/// tol=<trunc_tol> budget=<fidelity_budget>". Encodes every knob that
/// changes results, so resuming with different truncation settings is
/// refused loudly.
std::string fingerprint_tag(const MpsPlan& plan);

/// Iterative INTERP + basinhopping rounds 1..max_rounds (the MPS twin of
/// find_angles). Checkpoints use fingerprint_tag() and dim = n.
std::vector<AngleSchedule> find_angles_mps(
    const MpsPlan& plan, int max_rounds, const FindAnglesOptions& options = {});

/// Basinhopping at fixed p from explicit initial packed angles.
AngleSchedule find_angles_at_mps(const MpsPlan& plan, int p,
                                 const std::vector<double>& initial_packed,
                                 const FindAnglesOptions& options = {});

/// Grid sweep over [0, 2*pi)^{2p} with optional BFGS polish (scalar path
/// only; OpenMP-parallel over grid points with per-thread workspaces,
/// lexicographic (f, index) winner => thread-count invariant).
AngleSchedule find_angles_grid_mps(const MpsPlan& plan, int p,
                                   int points_per_axis,
                                   const FindAnglesOptions& options = {},
                                   bool polish = true);

/// Evaluate fixed packed angles (stats land in the caller-visible
/// workspace-free form: returns <C> only; use evaluate() directly for
/// truncation stats).
double evaluate_angles_mps(const MpsPlan& plan,
                           const std::vector<double>& packed);

}  // namespace fastqaoa::mps
