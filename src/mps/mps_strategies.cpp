#include "mps/mps_strategies.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <filesystem>
#include <limits>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "mps/mps_objective.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fastqaoa::mps {

std::string fingerprint_tag(const MpsPlan& plan) {
  std::ostringstream out;
  out.precision(17);
  out << "mps:tf chi=" << plan.options().max_bond
      << " tol=" << plan.options().trunc_tol
      << " budget=" << plan.options().fidelity_budget;
  return out.str();
}

namespace {

struct ChainResult {
  AngleSchedule schedule;
  double f = std::numeric_limits<double>::infinity();  ///< minimized value
};

/// One basinhopping chain against the shared MpsPlan — the MPS twin of
/// strategies.cpp's run_basinhopping. The workspace's budget pointer is the
/// BFGS-level tracker, so evaluate() polls the same live budget per round.
ChainResult run_basinhopping(const MpsPlan& plan, int p,
                             const std::vector<double>& x0, Rng& rng,
                             const FindAnglesOptions& options) {
  MpsWorkspace ws;
  ws.tracker = options.hopping.local.budget;
  FASTQAOA_OBS_SCOPE(ws.metrics);
  FASTQAOA_OBS_COUNT("mps.chains", 1);
  FASTQAOA_TRACE_SPAN("mps_chain");
  MpsObjective objective(plan, ws, options.direction);
  GradObjective fn = objective.as_grad_objective();
  OptResult res = basinhopping(fn, x0, rng, options.hopping, nullptr);

  ChainResult out;
  out.f = res.f;
  out.schedule.p = p;
  out.schedule.betas.assign(res.x.begin(), res.x.begin() + p);
  out.schedule.gammas.assign(res.x.begin() + p, res.x.end());
  out.schedule.expectation = objective.to_expectation(res.f);
  out.schedule.optimizer_calls = res.evaluations;
  out.schedule.evaluations = objective.evaluations();
  out.schedule.stop_reason = res.stop_reason;
  FASTQAOA_OBS_MERGE_GLOBAL(ws.metrics);
  return out;
}

constexpr int kQuarantineAttempts = 3;

/// Quarantine-and-reseed, mirroring the exact engine: attempt k forks the
/// chain's base stream k times (attempt 0 IS the base stream), so healthy
/// chains match the unguarded implementation bit for bit.
ChainResult run_chain_guarded(const MpsPlan& plan, int p,
                              const std::vector<double>& x0, const Rng& base,
                              const FindAnglesOptions& options) {
  std::size_t calls = 0;
  std::size_t evals = 0;
  for (int attempt = 0; attempt < kQuarantineAttempts; ++attempt) {
    Rng stream = base;
    for (int k = 0; k < attempt; ++k) stream = stream.fork();
    ChainResult res = run_basinhopping(plan, p, x0, stream, options);
    calls += res.schedule.optimizer_calls;
    evals += res.schedule.evaluations;
    if (std::isfinite(res.f)) {
      res.schedule.optimizer_calls = calls;
      res.schedule.evaluations = evals;
      return res;
    }
    FASTQAOA_OBS_COUNT_GLOBAL("runtime.quarantine.chains", 1);
    if (res.schedule.stopped_early() &&
        res.schedule.stop_reason != runtime::StopReason::NonFinite) {
      res.schedule.optimizer_calls = calls;
      res.schedule.evaluations = evals;
      res.f = std::numeric_limits<double>::infinity();
      return res;
    }
  }
  FASTQAOA_OBS_COUNT_GLOBAL("runtime.quarantine.exhausted", 1);
  ChainResult dead;
  dead.schedule.p = p;
  dead.schedule.betas.assign(x0.begin(), x0.begin() + p);
  dead.schedule.gammas.assign(x0.begin() + p, x0.end());
  dead.schedule.expectation = std::numeric_limits<double>::quiet_NaN();
  dead.schedule.optimizer_calls = calls;
  dead.schedule.evaluations = evals;
  dead.schedule.stop_reason = runtime::StopReason::NonFinite;
  dead.f = std::numeric_limits<double>::infinity();
  return dead;
}

/// options.parallel_starts chains, serially forked streams, index
/// tie-break — identical structure (and therefore identical invariance
/// guarantees) to the exact engine's best_of_chains.
AngleSchedule best_of_chains(const MpsPlan& plan, int p,
                             const std::vector<double>& x0, Rng& rng,
                             const FindAnglesOptions& options,
                             const runtime::BudgetTracker& tracker) {
  const int chains = std::max(1, options.parallel_starts);
  AngleSchedule winner;
  if (chains == 1) {
    const Rng base = rng;
    rng.fork();  // advance the caller's stream past this chain's substream
    winner = run_chain_guarded(plan, p, x0, base, options).schedule;
  } else {
    std::vector<Rng> streams;
    streams.reserve(static_cast<std::size_t>(chains));
    for (int c = 0; c < chains; ++c) streams.push_back(rng.fork());

    std::vector<std::vector<double>> starts(static_cast<std::size_t>(chains),
                                            x0);
    for (int c = 1; c < chains; ++c) {
      for (double& a : starts[static_cast<std::size_t>(c)]) {
        a += streams[static_cast<std::size_t>(c)].uniform(
            -options.hopping.step_size, options.hopping.step_size);
      }
    }

    std::vector<ChainResult> results(static_cast<std::size_t>(chains));
    std::exception_ptr error;
#pragma omp parallel for schedule(dynamic) if (chains > 1)
    for (int c = 0; c < chains; ++c) {
      try {
        results[static_cast<std::size_t>(c)] =
            run_chain_guarded(plan, p, starts[static_cast<std::size_t>(c)],
                              streams[static_cast<std::size_t>(c)], options);
      } catch (...) {
#pragma omp critical(fastqaoa_mps_chain_error)
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);

    std::size_t best = 0;
    for (std::size_t c = 1; c < results.size(); ++c) {
      if (results[c].f < results[best].f) best = c;
    }
    std::size_t calls = 0;
    std::size_t evals = 0;
    for (const ChainResult& r : results) {
      calls += r.schedule.optimizer_calls;
      evals += r.schedule.evaluations;
    }
    winner = std::move(results[best].schedule);
    winner.optimizer_calls = calls;
    winner.evaluations = evals;
  }

  const runtime::StopReason now = tracker.check();
  if (now != runtime::StopReason::None) {
    winner.stop_reason = now;
  } else if (winner.stop_reason != runtime::StopReason::NonFinite) {
    winner.stop_reason = runtime::StopReason::None;
  }
  return winner;
}

runtime::BudgetTracker* resolve_tracker(const FindAnglesOptions& options,
                                        runtime::BudgetTracker& own) {
  return options.shared_tracker != nullptr ? options.shared_tracker : &own;
}

FindAnglesOptions with_budget(const FindAnglesOptions& options,
                              runtime::BudgetTracker* tracker) {
  FindAnglesOptions opts = options;
  opts.hopping.local.budget = tracker->active() ? tracker : nullptr;
  return opts;
}

}  // namespace

std::vector<AngleSchedule> find_angles_mps(const MpsPlan& plan,
                                           int max_rounds,
                                           const FindAnglesOptions& options) {
  FASTQAOA_CHECK(max_rounds >= 1, "find_angles_mps: need max_rounds >= 1");

  runtime::BudgetTracker own(options.budget);
  runtime::BudgetTracker* tracker = resolve_tracker(options, own);
  const FindAnglesOptions opts = with_budget(options, tracker);

  const CheckpointFingerprint fingerprint{
      static_cast<std::uint64_t>(plan.n()), options.direction, options.seed,
      fingerprint_tag(plan)};

  Rng master(options.seed);
  std::vector<Rng> round_streams;
  round_streams.reserve(static_cast<std::size_t>(max_rounds));
  for (int p = 0; p < max_rounds; ++p) round_streams.push_back(master.fork());

  std::vector<AngleSchedule> schedules;
  if (!options.checkpoint_file.empty() &&
      std::filesystem::exists(options.checkpoint_file)) {
    schedules = load_checkpoint(options.checkpoint_file, fingerprint);
    while (!schedules.empty() && schedules.back().stopped_early()) {
      schedules.pop_back();
    }
    if (static_cast<int>(schedules.size()) > max_rounds) {
      schedules.resize(static_cast<std::size_t>(max_rounds));
    }
    FASTQAOA_OBS_COUNT_GLOBAL("runtime.checkpoint.resumed_rounds",
                              schedules.size());
  }

  for (int p = static_cast<int>(schedules.size()) + 1; p <= max_rounds; ++p) {
    if (!schedules.empty()) {
      const runtime::StopReason reason = tracker->check();
      if (reason != runtime::StopReason::None) {
        schedules.back().stop_reason = reason;
        break;
      }
    }
    FASTQAOA_TRACE_SPAN("find_angles_mps_round");
    const auto round_start = std::chrono::steady_clock::now();
    Rng& rng = round_streams[static_cast<std::size_t>(p - 1)];
    std::vector<double> x0;
    if (schedules.empty()) {
      x0 = {rng.uniform(0.0, 2.0 * kPi), rng.uniform(0.0, 2.0 * kPi)};
    } else {
      const AngleSchedule& prev = schedules.back();
      const std::vector<double> betas = interp_extrapolate(prev.betas);
      const std::vector<double> gammas = interp_extrapolate(prev.gammas);
      x0.insert(x0.end(), betas.begin(), betas.end());
      x0.insert(x0.end(), gammas.begin(), gammas.end());
    }
    schedules.push_back(best_of_chains(plan, p, x0, rng, opts, *tracker));
    if (!options.checkpoint_file.empty()) {
      save_checkpoint(options.checkpoint_file, schedules, fingerprint);
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      round_start)
            .count();
    FASTQAOA_OBS_COUNT_GLOBAL("anglefind.rounds", 1);
    FASTQAOA_OBS_TIME_GLOBAL("anglefind.round", seconds);
    FASTQAOA_OBS_HIST_GLOBAL("anglefind.round_latency_seconds", seconds);
    if (options.on_round) options.on_round(schedules.back(), seconds);
    if (schedules.back().stopped_early()) break;
  }
  return schedules;
}

AngleSchedule find_angles_at_mps(const MpsPlan& plan, int p,
                                 const std::vector<double>& initial_packed,
                                 const FindAnglesOptions& options) {
  FASTQAOA_CHECK(static_cast<int>(initial_packed.size()) == 2 * p,
                 "find_angles_at_mps: need 2p initial angles");
  runtime::BudgetTracker own(options.budget);
  runtime::BudgetTracker* tracker = resolve_tracker(options, own);
  const FindAnglesOptions opts = with_budget(options, tracker);
  Rng rng(options.seed);
  return best_of_chains(plan, p, initial_packed, rng, opts, *tracker);
}

AngleSchedule find_angles_grid_mps(const MpsPlan& plan, int p,
                                   int points_per_axis,
                                   const FindAnglesOptions& options,
                                   bool polish) {
  FASTQAOA_CHECK(p >= 1, "find_angles_grid_mps: need p >= 1");
  FASTQAOA_CHECK(points_per_axis >= 2,
                 "find_angles_grid_mps: need at least 2 points per axis");
  const int dims = 2 * p;
  FASTQAOA_CHECK(dims * std::log(points_per_axis) < std::log(5e7),
                 "find_angles_grid_mps: grid too large — exponential in p; "
                 "use find_angles_mps() instead");

  runtime::BudgetTracker own(options.budget);
  runtime::BudgetTracker* tracker = resolve_tracker(options, own);
  const FindAnglesOptions opts = with_budget(options, tracker);

  const double step = 2.0 * kPi / points_per_axis;
  long long total = 1;
  for (int d = 0; d < dims; ++d) total *= points_per_axis;

  double best_f = std::numeric_limits<double>::infinity();
  long long best_index = -1;
  std::size_t grid_evals = 0;
  std::exception_ptr error;
#pragma omp parallel if (total > 1)
  {
    MpsWorkspace ws;
    ws.tracker = opts.hopping.local.budget;
    FASTQAOA_OBS_SCOPE(ws.metrics);
    MpsObjective objective(plan, ws, options.direction);
    std::vector<double> point(static_cast<std::size_t>(dims), 0.0);
    double local_f = std::numeric_limits<double>::infinity();
    long long local_index = -1;
    bool tripped = false;
#pragma omp for schedule(static)
    for (long long t = 0; t < total; ++t) {
      if (tripped) continue;
      if (tracker->active() &&
          tracker->check() != runtime::StopReason::None) {
        tripped = true;
        continue;
      }
      long long rest = t;
      for (int d = 0; d < dims; ++d) {
        point[static_cast<std::size_t>(d)] =
            static_cast<double>(rest % points_per_axis) * step;
        rest /= points_per_axis;
      }
      try {
        const double f = objective(point, {});
        if (f < local_f) {
          local_f = f;
          local_index = t;
        }
      } catch (...) {
#pragma omp critical(fastqaoa_mps_grid_error)
        if (!error) error = std::current_exception();
      }
    }
#pragma omp critical(fastqaoa_mps_grid_best)
    if (local_f < best_f || (local_f == best_f && local_index < best_index)) {
      best_f = local_f;
      best_index = local_index;
    }
    const std::size_t mine = objective.evaluations();
#pragma omp atomic
    grid_evals += mine;
    FASTQAOA_OBS_MERGE_GLOBAL(ws.metrics);
  }
  if (error) std::rethrow_exception(error);
  tracker->add_evaluations(grid_evals);

  std::size_t optimizer_calls = static_cast<std::size_t>(total);
  std::size_t evaluations = grid_evals;

  std::vector<double> best_point(static_cast<std::size_t>(dims), 0.0);
  long long rest = best_index;
  for (int d = 0; d < dims; ++d) {
    best_point[static_cast<std::size_t>(d)] =
        static_cast<double>(rest % points_per_axis) * step;
    rest /= points_per_axis;
  }

  if (polish && best_index >= 0) {
    MpsWorkspace ws;
    ws.tracker = opts.hopping.local.budget;
    FASTQAOA_OBS_SCOPE(ws.metrics);
    MpsObjective objective(plan, ws, options.direction);
    GradObjective fn = objective.as_grad_objective();
    OptResult res = bfgs_minimize(fn, best_point, opts.hopping.local);
    optimizer_calls += res.evaluations;
    evaluations += objective.evaluations();
    FASTQAOA_OBS_MERGE_GLOBAL(ws.metrics);
    if (res.f < best_f) {
      best_f = res.f;
      best_point = res.x;
    }
  }

  AngleSchedule schedule;
  schedule.p = p;
  schedule.betas.assign(best_point.begin(), best_point.begin() + p);
  schedule.gammas.assign(best_point.begin() + p, best_point.end());
  schedule.expectation =
      options.direction == Direction::Maximize ? -best_f : best_f;
  schedule.optimizer_calls = optimizer_calls;
  schedule.evaluations = evaluations;
  schedule.stop_reason = tracker->check();
  return schedule;
}

double evaluate_angles_mps(const MpsPlan& plan,
                           const std::vector<double>& packed) {
  FASTQAOA_CHECK(packed.size() % 2 == 0 && !packed.empty(),
                 "evaluate_angles_mps: need 2p angles");
  MpsWorkspace ws;
  const double value = evaluate_packed(plan, ws, packed);
  FASTQAOA_OBS_MERGE_GLOBAL(ws.metrics);
  return value;
}

}  // namespace fastqaoa::mps
