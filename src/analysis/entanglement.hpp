#pragma once
/// \file entanglement.hpp
/// State-analysis observables for QAOA dynamics studies: reduced density
/// matrices, von Neumann entanglement entropy across qubit bipartitions,
/// participation ratios and state overlaps. These are the quantities
/// numerical QAOA papers track beyond <C> (e.g. how much entanglement an
/// ansatz builds at a given depth), computable here because the simulator
/// is exact-statevector.

#include <vector>

#include "common/types.hpp"
#include "linalg/dense.hpp"

namespace fastqaoa {

/// Reduced density matrix of the qubits listed in `subsystem` (distinct,
/// each < n), obtained by tracing out the rest of a full n-qubit pure
/// state. The result is a 2^|subsystem| square Hermitian PSD matrix with
/// unit trace; subsystem qubit `subsystem[j]` maps to bit j of the reduced
/// index.
linalg::cmat reduced_density_matrix(linalg::ConstStateRef psi, int n,
                                    const std::vector<int>& subsystem);

/// Von Neumann entropy  -Tr(rho ln rho)  of a density matrix (natural
/// log). Zero for pure states; ln(dim) for maximally mixed.
double von_neumann_entropy(const linalg::cmat& rho);

/// Entanglement entropy of a qubit bipartition: the entropy of the reduced
/// state on `subsystem` (equals the entropy of its complement for pure
/// states).
double entanglement_entropy(linalg::ConstStateRef psi, int n,
                            const std::vector<int>& subsystem);

/// Inverse participation ratio 1 / sum_i |psi_i|^4: the effective number
/// of basis states the state occupies (1 = basis state, dim = uniform).
double participation_ratio(linalg::ConstStateRef psi);

/// Fidelity |<a|b>|^2 between two normalized states.
double state_fidelity(linalg::ConstStateRef a, linalg::ConstStateRef b);

}  // namespace fastqaoa
