#include "analysis/entanglement.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/eigen_herm.hpp"
#include "linalg/vector_ops.hpp"

namespace fastqaoa {

linalg::cmat reduced_density_matrix(linalg::ConstStateRef psi, int n,
                                    const std::vector<int>& subsystem) {
  FASTQAOA_CHECK(n >= 1 && n <= 24, "reduced_density_matrix: bad n");
  FASTQAOA_CHECK(psi.size() == (index_t{1} << n),
                 "reduced_density_matrix: state is not a full n-qubit "
                 "vector (Dicke-subspace states must be embedded first)");
  FASTQAOA_CHECK(!subsystem.empty() &&
                     subsystem.size() < static_cast<std::size_t>(n) + 1,
                 "reduced_density_matrix: bad subsystem size");
  state_t sub_mask = 0;
  for (const int q : subsystem) {
    FASTQAOA_CHECK(q >= 0 && q < n,
                   "reduced_density_matrix: qubit out of range");
    FASTQAOA_CHECK(((sub_mask >> q) & 1) == 0,
                   "reduced_density_matrix: repeated qubit");
    sub_mask |= state_t{1} << q;
  }
  const int ns = static_cast<int>(subsystem.size());
  const int ne = n - ns;  // environment qubits
  FASTQAOA_CHECK(ns <= 14, "reduced_density_matrix: subsystem too large");

  // Map full index -> (subsystem bits, environment bits).
  std::vector<int> env;
  env.reserve(static_cast<std::size_t>(ne));
  for (int q = 0; q < n; ++q) {
    if (((sub_mask >> q) & 1) == 0) env.push_back(q);
  }
  auto split = [&](state_t x) {
    index_t s = 0;
    for (int j = 0; j < ns; ++j) {
      s |= static_cast<index_t>((x >> subsystem[static_cast<std::size_t>(j)]) & 1)
           << j;
    }
    index_t e = 0;
    for (int j = 0; j < ne; ++j) {
      e |= static_cast<index_t>((x >> env[static_cast<std::size_t>(j)]) & 1)
           << j;
    }
    return std::pair<index_t, index_t>{s, e};
  };

  // Reorganize into a (2^ns) x (2^ne) matrix M, rho = M M^H.
  const index_t ds = index_t{1} << ns;
  const index_t de = index_t{1} << ne;
  linalg::cmat m(ds, de);
  for (index_t x = 0; x < psi.size(); ++x) {
    const auto [s, e] = split(static_cast<state_t>(x));
    m(s, e) = psi[x];
  }
  linalg::cmat rho(ds, ds);
  for (index_t a = 0; a < ds; ++a) {
    for (index_t b = 0; b < ds; ++b) {
      cplx acc{0.0, 0.0};
      for (index_t e = 0; e < de; ++e) acc += m(a, e) * std::conj(m(b, e));
      rho(a, b) = acc;
    }
  }
  return rho;
}

double von_neumann_entropy(const linalg::cmat& rho) {
  FASTQAOA_CHECK(rho.rows() == rho.cols(),
                 "von_neumann_entropy: matrix must be square");
  const linalg::HermEig eig = linalg::eigh(rho);
  double entropy = 0.0;
  for (const double p : eig.eigenvalues) {
    if (p > 1e-14) entropy -= p * std::log(p);
  }
  return entropy;
}

double entanglement_entropy(linalg::ConstStateRef psi, int n,
                            const std::vector<int>& subsystem) {
  return von_neumann_entropy(reduced_density_matrix(psi, n, subsystem));
}

double participation_ratio(linalg::ConstStateRef psi) {
  FASTQAOA_CHECK(!psi.empty(), "participation_ratio: empty state");
  double sum4 = 0.0;
  for (const cplx& a : psi) {
    const double p = std::norm(a);
    sum4 += p * p;
  }
  FASTQAOA_CHECK(sum4 > 0.0, "participation_ratio: zero state");
  return 1.0 / sum4;
}

double state_fidelity(linalg::ConstStateRef a, linalg::ConstStateRef b) {
  return std::norm(linalg::dot(a, b));
}

}  // namespace fastqaoa
