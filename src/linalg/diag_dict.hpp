#pragma once
/// \file diag_dict.hpp
/// Quantized dictionary view of a diagonal table.
///
/// QAOA diagonals are highly degenerate: X-mixer eigenvalues in the Hadamard
/// frame take n+1 distinct values (n - 2*popcount), and integer-weighted cost
/// tables a few dozen to a few hundred. A DiagDict factors a length-2^n
/// table into (idx[i], vals[]) with d[i] == vals[idx[i]], letting the batched
/// kernels compute one sincos per distinct value per lane and apply the
/// factors by table lookup — the dominant win of batched evaluation, since
/// the per-element sincos sweep is what a single-lane pass spends most of its
/// time on. Built once next to the table it mirrors (plan construction,
/// mixer construction) and read-only afterwards.
///
/// Distinctness is bit-pattern equality (so +0.0 and -0.0 are separate
/// entries — their sines differ in sign bit) and vals[] keeps first-
/// occurrence order, both of which make the factor tables — and therefore
/// the batched results — bit-identical to the per-element sweep.

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "linalg/kernels/kernels.hpp"

namespace fastqaoa::linalg {

/// Compressed view d[i] == vals[idx[i]] of a diagonal table. Invalid (empty)
/// when the table has more than kernels::kQuantizedDiagMax distinct values —
/// the batched kernels then fall back to the per-element phase sweep.
struct DiagDict {
  std::vector<std::uint16_t> idx;  ///< per-element dictionary index
  dvec vals;                       ///< distinct values, first-occurrence order

  [[nodiscard]] bool valid() const noexcept { return !idx.empty(); }

  /// Kernel-layer descriptor; all-null when invalid (kernels treat a null
  /// idx as "no quantized view available").
  [[nodiscard]] kernels::QuantizedDiag view() const noexcept {
    if (!valid()) return {};
    return {idx.data(), vals.data(), static_cast<index_t>(vals.size())};
  }
};

/// Build the dictionary for `table`. Returns an invalid (empty) dict when
/// the table exceeds kernels::kQuantizedDiagMax distinct values or is
/// shorter than 64 elements (below the batched kernels' vector-body floor).
[[nodiscard]] DiagDict build_diag_dict(const dvec& table);

}  // namespace fastqaoa::linalg
