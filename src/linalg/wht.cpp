#include "linalg/wht.hpp"

#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace fastqaoa::linalg {

bool is_power_of_two(index_t sz) { return sz != 0 && (sz & (sz - 1)) == 0; }

int log2_exact(index_t sz) {
  FASTQAOA_CHECK(is_power_of_two(sz), "log2_exact: size must be a power of 2");
  return std::countr_zero(sz);
}

void wht_unnormalized(cvec& v) {
  const index_t n = v.size();
  FASTQAOA_CHECK(is_power_of_two(n), "wht: length must be a power of 2");
  FASTQAOA_OBS_COUNT("linalg.wht.applies", 1);
  FASTQAOA_OBS_TIMED("linalg.wht");
  cplx* a = v.data();
  // Radix-2 butterflies. For strides that fit in cache the loop is a simple
  // pair sweep; parallelism is over independent butterfly blocks.
  for (index_t h = 1; h < n; h <<= 1) {
    const std::ptrdiff_t blocks = static_cast<std::ptrdiff_t>(n / (2 * h));
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t b = 0; b < blocks; ++b) {
      const index_t base = static_cast<index_t>(b) * 2 * h;
      for (index_t j = base; j < base + h; ++j) {
        const cplx x = a[j];
        const cplx y = a[j + h];
        a[j] = x + y;
        a[j + h] = x - y;
      }
    }
  }
}

void wht_orthonormal(cvec& v) {
  wht_unnormalized(v);
  const double scale = 1.0 / std::sqrt(static_cast<double>(v.size()));
  cplx* a = v.data();
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(v.size());
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < n; ++i) a[i] *= scale;
}

}  // namespace fastqaoa::linalg
