#include "linalg/wht.hpp"

#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "linalg/diag_dict.hpp"
#include "linalg/kernels/kernels.hpp"
#include "obs/metrics.hpp"

namespace fastqaoa::linalg {

bool is_power_of_two(index_t sz) { return sz != 0 && (sz & (sz - 1)) == 0; }

int log2_exact(index_t sz) {
  FASTQAOA_CHECK(is_power_of_two(sz), "log2_exact: size must be a power of 2");
  return std::countr_zero(sz);
}

void wht_unnormalized(StateRef v) {
  const index_t n = v.size();
  FASTQAOA_CHECK(is_power_of_two(n), "wht: length must be a power of 2");
  FASTQAOA_OBS_COUNT("linalg.wht.applies", 1);
  FASTQAOA_OBS_TIMED("linalg.wht");
  kernels::active().wht_sharded(v.data(), n, v.shards());
}

void wht_orthonormal(StateRef v) {
  const index_t n = v.size();
  FASTQAOA_CHECK(is_power_of_two(n), "wht: length must be a power of 2");
  FASTQAOA_OBS_COUNT("linalg.wht.applies", 1);
  FASTQAOA_OBS_TIMED("linalg.wht");
  const double scale = 1.0 / std::sqrt(static_cast<double>(n));
  // Fold the normalization into the fused pre-pass (null diagonal = pure
  // scale); self-inverse either way since the scale commutes with H.
  kernels::active().phase_wht_sharded(v.data(), nullptr, 0.0, scale, n,
                                      v.shards());
}

void phase_wht(StateRef v, const dvec& d, double angle, double scale) {
  const index_t n = v.size();
  FASTQAOA_CHECK(is_power_of_two(n), "wht: length must be a power of 2");
  FASTQAOA_CHECK(d.size() == n, "phase_wht: diagonal size mismatch");
  FASTQAOA_OBS_COUNT("linalg.wht.applies", 1);
  FASTQAOA_OBS_TIMED("linalg.wht");
  kernels::active().phase_wht_sharded(v.data(), d.data(), angle, scale, n,
                                      v.shards());
}

double wht_expect(StateRef v, const dvec& obj) {
  const index_t n = v.size();
  FASTQAOA_CHECK(is_power_of_two(n), "wht: length must be a power of 2");
  FASTQAOA_CHECK(obj.size() == n, "wht_expect: objective size mismatch");
  FASTQAOA_OBS_COUNT("linalg.wht.applies", 1);
  FASTQAOA_OBS_TIMED("linalg.wht");
  return kernels::active().wht_expect_sharded(v.data(), obj.data(), n,
                                              v.shards());
}

double phase_wht_expect(StateRef v, const dvec& d, double angle, double scale,
                        const dvec& obj) {
  const index_t n = v.size();
  FASTQAOA_CHECK(is_power_of_two(n), "wht: length must be a power of 2");
  FASTQAOA_CHECK(d.size() == n, "phase_wht_expect: diagonal size mismatch");
  FASTQAOA_CHECK(obj.size() == n,
                 "phase_wht_expect: objective size mismatch");
  FASTQAOA_OBS_COUNT("linalg.wht.applies", 1);
  FASTQAOA_OBS_TIMED("linalg.wht");
  return kernels::active().phase_wht_expect_sharded(
      v.data(), d.data(), angle, scale, obj.data(), n, v.shards());
}

namespace {

kernels::QuantizedDiag dict_view(const DiagDict* dict) {
  return dict != nullptr ? dict->view() : kernels::QuantizedDiag{};
}

void check_batch(index_t stride, int lanes, index_t n, const char* who) {
  FASTQAOA_CHECK(is_power_of_two(n), "wht: length must be a power of 2");
  FASTQAOA_CHECK(lanes >= 1, std::string(who) + ": need at least one lane");
  FASTQAOA_CHECK(stride >= n, std::string(who) + ": stride below lane length");
}

}  // namespace

void phase_wht_batch(cplx* states, index_t stride, int lanes, const cplx* init,
                     const dvec& d, const DiagDict* dict, const double* angles,
                     double scale, int shards) {
  const index_t n = d.size();
  check_batch(stride, lanes, n, "phase_wht_batch");
  FASTQAOA_OBS_COUNT("linalg.wht.applies", lanes);
  FASTQAOA_OBS_COUNT("linalg.wht.batched_lanes", lanes);
  FASTQAOA_OBS_TIMED("linalg.wht");
  const kernels::QuantizedDiag dq = dict_view(dict);
  kernels::active().phase_wht_batch_sharded(states, stride, lanes, init,
                                            d.data(), &dq, angles, scale, n,
                                            shards);
}

void wht_batch(cplx* states, index_t stride, int lanes, index_t n,
               int shards) {
  check_batch(stride, lanes, n, "wht_batch");
  FASTQAOA_OBS_COUNT("linalg.wht.applies", lanes);
  FASTQAOA_OBS_COUNT("linalg.wht.batched_lanes", lanes);
  FASTQAOA_OBS_TIMED("linalg.wht");
  kernels::active().phase_wht_batch_sharded(states, stride, lanes, nullptr,
                                            nullptr, nullptr, nullptr, 1.0, n,
                                            shards);
}

void wht_expect_batch(cplx* states, index_t stride, int lanes, const dvec& obj,
                      double* out, int shards) {
  const index_t n = obj.size();
  check_batch(stride, lanes, n, "wht_expect_batch");
  FASTQAOA_OBS_COUNT("linalg.wht.applies", lanes);
  FASTQAOA_OBS_COUNT("linalg.wht.batched_lanes", lanes);
  FASTQAOA_OBS_TIMED("linalg.wht");
  kernels::active().wht_expect_batch_sharded(states, stride, lanes, obj.data(),
                                             out, n, shards);
}

void phase_wht_expect_batch(cplx* states, index_t stride, int lanes,
                            const dvec& d, const DiagDict* dict,
                            const double* angles, double scale, const dvec& obj,
                            double* out, int shards) {
  const index_t n = d.size();
  check_batch(stride, lanes, n, "phase_wht_expect_batch");
  FASTQAOA_CHECK(obj.size() == n,
                 "phase_wht_expect_batch: objective size mismatch");
  FASTQAOA_OBS_COUNT("linalg.wht.applies", lanes);
  FASTQAOA_OBS_COUNT("linalg.wht.batched_lanes", lanes);
  FASTQAOA_OBS_TIMED("linalg.wht");
  const kernels::QuantizedDiag dq = dict_view(dict);
  kernels::active().phase_wht_expect_batch_sharded(
      states, stride, lanes, d.data(), &dq, angles, scale, obj.data(), out, n,
      shards);
}

}  // namespace fastqaoa::linalg
