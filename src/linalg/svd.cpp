#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace fastqaoa::linalg {

namespace {

/// Sweep cap: cyclic Jacobi on well-scaled input converges in O(log n)
/// sweeps; the cap only guards pathological (e.g. heavily graded) inputs.
constexpr int kMaxSweeps = 60;

/// Relative off-diagonal threshold below which a column pair counts as
/// orthogonal. The inner product of two numerically orthogonal unit columns
/// of length m carries rounding noise of order sqrt(m) * eps, so the
/// threshold must sit above that floor — a fixed near-eps constant makes
/// every pair fail forever and every call burn the full sweep cap rotating
/// by noise-level angles.
double orth_tol(index_t m) {
  constexpr double kEps = 2.220446049250313e-16;
  return 8.0 * std::sqrt(static_cast<double>(m)) * kEps;
}

double abs2(double x) { return x * x; }
double abs2(const cplx& x) { return std::norm(x); }
double conj_mul_real(double a, double b) { return a * b; }

/// Phase-aligned Jacobi rotation over a contiguous row pair:
///   x' = c*x - s*(conj(phase)*y),  y' = s*(phase*x) + c*y.
/// The complex overload works on unrolled real/imag pairs so the loop
/// vectorizes (std::complex arithmetic does not).
void rotate_pair(double* x, double* y, index_t m, double c, double s,
                 double phase) {
  const double k = s * phase;
  for (index_t i = 0; i < m; ++i) {
    const double a = x[i];
    const double b = y[i];
    x[i] = c * a - k * b;
    y[i] = k * a + c * b;
  }
}

void rotate_pair(cplx* x, cplx* y, index_t m, double c, double s, cplx phase) {
  const double kr = s * phase.real();
  const double ki = s * phase.imag();
  double* xd = reinterpret_cast<double*>(x);
  double* yd = reinterpret_cast<double*>(y);
  for (index_t i = 0; i < m; ++i) {
    const double ar = xd[2 * i];
    const double ai = xd[2 * i + 1];
    const double br = yd[2 * i];
    const double bi = yd[2 * i + 1];
    xd[2 * i] = c * ar - (kr * br + ki * bi);
    xd[2 * i + 1] = c * ai - (kr * bi - ki * br);
    yd[2 * i] = (kr * ar - ki * ai) + c * br;
    yd[2 * i + 1] = (kr * ai + ki * ar) + c * bi;
  }
}

/// One-sided Jacobi core on transposed storage: row j of `wt` holds column
/// j of the original m x n matrix (so each "column" is a contiguous length-m
/// array), and row j of `vt` holds column j of the accumulated V. Contiguous
/// rows + raw pointers keep the O(n^2 m) inner loops out of the per-element
/// bounds checks Matrix::operator() carries (they are always on in this
/// codebase) and let them vectorize. Fixed cyclic pair order (p, q), p < q —
/// the determinism contract.
template <typename T>
void jacobi_orthogonalize(Matrix<T>& wt, Matrix<T>& vt) {
  const index_t n = wt.rows();
  const index_t m = wt.cols();
  const double tol = orth_tol(m);
  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    bool rotated = false;
    for (index_t p = 0; p + 1 < n; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        T* wp = wt.row(p);
        T* wq = wt.row(q);
        double app = 0.0;
        double aqq = 0.0;
        T apq{};
        if constexpr (std::is_same_v<T, cplx>) {
          // Unrolled real/imag arithmetic: std::complex operations defeat
          // vectorization in this O(n^2 m)-per-sweep loop, and the Jacobi
          // sweeps are the entire cost of an MPS bond split.
          const double* pd = reinterpret_cast<const double*>(wp);
          const double* qd = reinterpret_cast<const double*>(wq);
          double re = 0.0;
          double im = 0.0;
          for (index_t i = 0; i < m; ++i) {
            const double ar = pd[2 * i];
            const double ai = pd[2 * i + 1];
            const double br = qd[2 * i];
            const double bi = qd[2 * i + 1];
            app += ar * ar + ai * ai;
            aqq += br * br + bi * bi;
            re += ar * br + ai * bi;
            im += ar * bi - ai * br;
          }
          apq = cplx{re, im};
        } else {
          for (index_t i = 0; i < m; ++i) {
            app += abs2(wp[i]);
            aqq += abs2(wq[i]);
            apq += conj_mul_real(wp[i], wq[i]);
          }
        }
        const double r = std::abs(apq);
        if (r <= tol * std::sqrt(app * aqq) || app == 0.0 || aqq == 0.0) {
          continue;
        }
        rotated = true;
        // Align the pair's inner product onto the real axis, then apply the
        // classic real Jacobi rotation that zeroes the 2x2 Gram
        // off-diagonal [[app, r], [r, aqq]].
        T phase;
        if constexpr (std::is_same_v<T, cplx>) {
          phase = apq / r;
        } else {
          phase = apq >= 0.0 ? 1.0 : -1.0;
        }
        const double tau = (aqq - app) / (2.0 * r);
        const double t = (tau >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        rotate_pair(wp, wq, m, c, s, phase);
        rotate_pair(vt.row(p), vt.row(q), n, c, s, phase);
      }
    }
    if (!rotated) break;
  }
}

template <typename T>
void check_input(const Matrix<T>& a) {
  FASTQAOA_CHECK(a.rows() > 0 && a.cols() > 0, "svd: empty matrix");
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      if constexpr (std::is_same_v<T, cplx>) {
        FASTQAOA_CHECK(std::isfinite(a(i, j).real()) &&
                           std::isfinite(a(i, j).imag()),
                       "svd: non-finite entry");
      } else {
        FASTQAOA_CHECK(std::isfinite(a(i, j)), "svd: non-finite entry");
      }
    }
  }
}

/// Tall-or-square decomposition (m >= n): Jacobi on a working copy, then
/// sort singular values descending with original-index tie-break (a stable
/// sort on indices — the second leg of the determinism contract).
/// Plain (non-conjugating) transpose; linalg::transpose only exists for
/// dmat and adjoint() would conjugate.
template <typename T>
Matrix<T> plain_transpose(const Matrix<T>& a) {
  Matrix<T> t(a.cols(), a.rows());
  for (index_t i = 0; i < a.rows(); ++i) {
    const T* src = a.row(i);
    for (index_t j = 0; j < a.cols(); ++j) t(j, i) = src[j];
  }
  return t;
}

template <typename T, typename Result>
Result svd_tall(const Matrix<T>& a) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  Matrix<T> wt = plain_transpose(a);      // row j = column j of A
  Matrix<T> vt = Matrix<T>::identity(n);  // row j = column j of V
  jacobi_orthogonalize(wt, vt);

  std::vector<double> norms(n);
  for (index_t j = 0; j < n; ++j) {
    const T* col = wt.row(j);
    double sum = 0.0;
    for (index_t i = 0; i < m; ++i) sum += abs2(col[i]);
    norms[j] = std::sqrt(sum);
  }
  std::vector<index_t> order(n);
  std::iota(order.begin(), order.end(), index_t{0});
  std::stable_sort(order.begin(), order.end(), [&norms](index_t x, index_t y) {
    return norms[x] > norms[y];
  });

  Result out;
  out.singular_values.resize(n);
  out.u = Matrix<T>(m, n);
  out.v = Matrix<T>(n, n);
  for (index_t j = 0; j < n; ++j) {
    const index_t src = order[j];
    const double sv = norms[src];
    out.singular_values[j] = sv;
    const double inv = sv > 0.0 ? 1.0 / sv : 0.0;
    const T* ucol = wt.row(src);
    const T* vcol = vt.row(src);
    for (index_t i = 0; i < m; ++i) out.u(i, j) = ucol[i] * inv;
    for (index_t i = 0; i < n; ++i) out.v(i, j) = vcol[i];
  }
  return out;
}

}  // namespace

SvdResult svd(const dmat& a) {
  check_input(a);
  if (a.rows() >= a.cols()) return svd_tall<double, SvdResult>(a);
  // Wide input: A^T = U' S V'^T  =>  A = V' S U'^T.
  SvdResult t = svd_tall<double, SvdResult>(transpose(a));
  SvdResult out;
  out.singular_values = std::move(t.singular_values);
  out.u = std::move(t.v);
  out.v = std::move(t.u);
  return out;
}

CSvdResult svd(const cmat& a) {
  check_input(a);
  if (a.rows() >= a.cols()) return svd_tall<cplx, CSvdResult>(a);
  // Wide input: A^H = U' S V'^H  =>  A = V' S U'^H.
  CSvdResult t = svd_tall<cplx, CSvdResult>(adjoint(a));
  CSvdResult out;
  out.singular_values = std::move(t.singular_values);
  out.u = std::move(t.v);
  out.v = std::move(t.u);
  return out;
}

namespace {

template <typename T, typename Result>
double residual(const Matrix<T>& a, const Result& r) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  const index_t k = r.singular_values.size();
  double sum = 0.0;
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      T acc{};
      for (index_t l = 0; l < k; ++l) {
        if constexpr (std::is_same_v<T, cplx>) {
          acc += r.u(i, l) * r.singular_values[l] * std::conj(r.v(j, l));
        } else {
          acc += r.u(i, l) * r.singular_values[l] * r.v(j, l);
        }
      }
      sum += abs2(a(i, j) - acc);
    }
  }
  return std::sqrt(sum);
}

}  // namespace

double svd_residual(const dmat& a, const SvdResult& r) {
  return residual(a, r);
}

double svd_residual(const cmat& a, const CSvdResult& r) {
  return residual(a, r);
}

}  // namespace fastqaoa::linalg
