#include "linalg/lanczos.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "linalg/dense.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/vector_ops.hpp"

namespace fastqaoa::linalg {

namespace {

/// Eigenvalue range of the m x m symmetric tridiagonal with diagonal a and
/// off-diagonal b (b[i] couples i and i+1) via the dense solver — m stays
/// small (Krylov dimension), so this is cheap.
std::pair<double, double> tridiag_extremes(const std::vector<double>& a,
                                           const std::vector<double>& b) {
  const index_t m = a.size();
  dmat t(m, m);
  for (index_t i = 0; i < m; ++i) {
    t(i, i) = a[i];
    if (i + 1 < m) {
      t(i, i + 1) = b[i];
      t(i + 1, i) = b[i];
    }
  }
  dvec vals = eigvalsh(t);
  return {vals.front(), vals.back()};
}

}  // namespace

LanczosResult lanczos_extremal(const HermitianApply& apply, index_t dim,
                               Rng& rng, const LanczosOptions& opt) {
  FASTQAOA_CHECK(dim >= 1, "lanczos_extremal: empty operator");
  FASTQAOA_CHECK(opt.max_iterations >= 1, "lanczos_extremal: bad iteration cap");

  LanczosResult result;
  const int m_cap = static_cast<int>(
      std::min<index_t>(static_cast<index_t>(opt.max_iterations), dim));

  // Random unit start vector.
  std::vector<cvec> basis;
  basis.reserve(static_cast<std::size_t>(m_cap));
  {
    cvec v0(dim);
    for (auto& x : v0) x = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    normalize(v0);
    basis.push_back(std::move(v0));
  }

  std::vector<double> alpha;
  std::vector<double> beta;  // beta[j] couples j and j+1
  cvec w(dim);
  double prev_min = 0.0;
  double prev_max = 0.0;
  bool have_prev = false;

  for (int j = 0; j < m_cap; ++j) {
    apply(basis[static_cast<std::size_t>(j)], w);
    const double a = dot(basis[static_cast<std::size_t>(j)], w).real();
    alpha.push_back(a);

    // w <- w - a v_j - b_{j-1} v_{j-1}, then full reorthogonalization.
    axpy(cplx{-a, 0.0}, basis[static_cast<std::size_t>(j)], w);
    if (j > 0) {
      axpy(cplx{-beta[static_cast<std::size_t>(j - 1)], 0.0},
           basis[static_cast<std::size_t>(j - 1)], w);
    }
    for (int pass = 0; pass < 2; ++pass) {
      for (const cvec& v : basis) {
        const cplx overlap = dot(v, w);
        if (std::abs(overlap) > 0.0) axpy(-overlap, v, w);
      }
    }

    const double b = norm(w);
    // Invariant subspace found: the Krylov space is exact.
    if (b < 1e-13) {
      const auto [lo, hi] = tridiag_extremes(alpha, beta);
      result.min_eigenvalue = lo;
      result.max_eigenvalue = hi;
      result.iterations = j + 1;
      result.converged = true;
      return result;
    }

    if ((j + 1) % opt.check_interval == 0 || j + 1 == m_cap) {
      const auto [lo, hi] = tridiag_extremes(alpha, beta);
      if (have_prev && std::abs(lo - prev_min) < opt.tolerance &&
          std::abs(hi - prev_max) < opt.tolerance) {
        result.min_eigenvalue = lo;
        result.max_eigenvalue = hi;
        result.iterations = j + 1;
        result.converged = true;
        return result;
      }
      prev_min = lo;
      prev_max = hi;
      have_prev = true;
    }

    if (j + 1 < m_cap) {
      beta.push_back(b);
      cvec next = w;
      scale(next, cplx{1.0 / b, 0.0});
      basis.push_back(std::move(next));
    }
  }

  const auto [lo, hi] = tridiag_extremes(alpha, beta);
  result.min_eigenvalue = lo;
  result.max_eigenvalue = hi;
  result.iterations = m_cap;
  result.converged = false;
  return result;
}

}  // namespace fastqaoa::linalg
