#pragma once
/// \file vector_ops.hpp
/// Flat SIMD-friendly kernels on complex amplitude vectors. These are the
/// inner loops of the simulator: fused diagonal-phase application, conjugated
/// dot products, rank-1 updates. All kernels are allocation-free and OpenMP
/// parallel over the vector length.

#include <cstddef>

#include "common/types.hpp"

namespace fastqaoa::linalg {

/// out <- value for every element.
void fill(cvec& v, cplx value);

/// v <- v * s (complex scale).
void scale(cvec& v, cplx s);

/// y <- y + a * x. x and y must have equal length.
void axpy(cplx a, const cvec& x, cvec& y);

/// Conjugated inner product <x|y> = sum_i conj(x_i) * y_i.
[[nodiscard]] cplx dot(const cvec& x, const cvec& y);

/// Squared 2-norm sum_i |v_i|^2.
[[nodiscard]] double norm_sq(const cvec& v);

/// 2-norm.
[[nodiscard]] double norm(const cvec& v);

/// Normalize v to unit 2-norm; returns the original norm.
double normalize(cvec& v);

/// psi_i <- exp(-i * angle * d_i) * psi_i — the phase-separator /
/// diagonal-mixer kernel. d holds real eigenvalues (cost values).
void apply_diag_phase(cvec& psi, const dvec& d, double angle);

/// psi_i <- d_i * s * psi_i (real diagonal times real scale), the Hamiltonian
/// analogue of apply_diag_phase used inside mixer apply_ham sandwiches.
void diag_mul(cvec& psi, const dvec& d, double s);

/// psi_i <- exp(-i * angle * d_i) * psi_i restricted to indices where
/// d_i > threshold applies phase -angle, else no phase: the threshold
/// phase separator of Golden et al. [18] uses an indicator cost; this
/// helper applies phase only above the threshold.
void apply_threshold_phase(cvec& psi, const dvec& d, double threshold,
                           double angle);

/// Expectation sum_i d_i * |psi_i|^2 of a diagonal observable.
[[nodiscard]] double diag_expectation(const dvec& d, const cvec& psi);

/// Derivative helper: Im( sum_i conj(lambda_i) * d_i * psi_i ), the
/// imaginary part of <lambda| diag(d) |psi>. Used by the adjoint gradient.
[[nodiscard]] double diag_bracket_imag(const cvec& lambda, const dvec& d,
                                       const cvec& psi);

/// Total probability of states whose cost equals the extremal value
/// (within tol): sum over argmax/argmin of |psi_i|^2.
[[nodiscard]] double probability_at_value(const dvec& d, const cvec& psi,
                                          double value, double tol = 1e-12);

/// Maximum |v_i - w_i| over all elements (test helper, but broadly useful).
[[nodiscard]] double max_abs_diff(const cvec& v, const cvec& w);

}  // namespace fastqaoa::linalg
