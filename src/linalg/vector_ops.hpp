#pragma once
/// \file vector_ops.hpp
/// Flat SIMD-friendly kernels on complex amplitude vectors. These are the
/// inner loops of the simulator: fused diagonal-phase application, conjugated
/// dot products, rank-1 updates. All kernels are allocation-free and OpenMP
/// parallel over the vector length.
///
/// Every entry point takes StateRef / ConstStateRef views — implicitly
/// constructible from cvec and ShardedState — so the same wrappers serve
/// plain vectors and NUMA-sharded workspace states. The kernels' static
/// chunked schedules assign contiguous ranges to threads, which coincide
/// with shard boundaries (ShardedState first-touches pages with the same
/// mapping), so elementwise sweeps and fixed-order reductions stay
/// shard-local without shard-specific code paths — and therefore stay
/// bit-identical at every shard count by construction.

#include <cstddef>

#include "common/types.hpp"
#include "linalg/sharded_state.hpp"

namespace fastqaoa::linalg {

/// out <- value for every element.
void fill(StateRef v, cplx value);

/// dst_i <- src_i, parallel with the shard-aligned static schedule. dst must
/// already be sized to src.size() (views cannot grow). Exact (bitwise) copy.
void copy_state(ConstStateRef src, StateRef dst);

/// v <- v * s (complex scale).
void scale(StateRef v, cplx s);

/// y <- y + a * x. x and y must have equal length.
void axpy(cplx a, ConstStateRef x, StateRef y);

/// Conjugated inner product <x|y> = sum_i conj(x_i) * y_i.
[[nodiscard]] cplx dot(ConstStateRef x, ConstStateRef y);

/// Squared 2-norm sum_i |v_i|^2.
[[nodiscard]] double norm_sq(ConstStateRef v);

/// 2-norm.
[[nodiscard]] double norm(ConstStateRef v);

/// Normalize v to unit 2-norm; returns the original norm.
double normalize(StateRef v);

/// psi_i <- exp(-i * angle * d_i) * psi_i — the phase-separator /
/// diagonal-mixer kernel. d holds real eigenvalues (cost values).
void apply_diag_phase(StateRef psi, const dvec& d, double angle);

/// psi_i <- d_i * s * psi_i (real diagonal times real scale), the Hamiltonian
/// analogue of apply_diag_phase used inside mixer apply_ham sandwiches.
void diag_mul(StateRef psi, const dvec& d, double s);

/// psi_i <- exp(-i * angle * d_i) * psi_i restricted to indices where
/// d_i > threshold applies phase -angle, else no phase: the threshold
/// phase separator of Golden et al. [18] uses an indicator cost; this
/// helper applies phase only above the threshold.
void apply_threshold_phase(StateRef psi, const dvec& d, double threshold,
                           double angle);

/// Expectation sum_i d_i * |psi_i|^2 of a diagonal observable.
[[nodiscard]] double diag_expectation(const dvec& d, ConstStateRef psi);

/// Derivative helper: Im( sum_i conj(lambda_i) * d_i * psi_i ), the
/// imaginary part of <lambda| diag(d) |psi>. Used by the adjoint gradient.
[[nodiscard]] double diag_bracket_imag(ConstStateRef lambda, const dvec& d,
                                       ConstStateRef psi);

/// Total probability of states whose cost equals the extremal value
/// (within tol): sum over argmax/argmin of |psi_i|^2.
[[nodiscard]] double probability_at_value(const dvec& d, ConstStateRef psi,
                                          double value, double tol = 1e-12);

/// Maximum |v_i - w_i| over all elements (test helper, but broadly useful).
[[nodiscard]] double max_abs_diff(ConstStateRef v, ConstStateRef w);

}  // namespace fastqaoa::linalg
