#pragma once
/// \file eigen_sym.hpp
/// Dense real-symmetric eigendecomposition, built from scratch:
/// Householder tridiagonalization (tred2) followed by implicit-shift QL
/// iteration with eigenvector accumulation (tql2). This is the substrate
/// behind every constrained-mixer precomputation H_M = V D V^T (paper §2.1).

#include "common/types.hpp"
#include "linalg/dense.hpp"

namespace fastqaoa::linalg {

/// Eigendecomposition of a real symmetric matrix A = V diag(w) V^T.
/// `vectors` holds eigenvector j in column j; eigenvalues are sorted
/// ascending and columns are ordered to match.
struct SymEig {
  dvec eigenvalues;
  dmat vectors;
};

/// Compute all eigenvalues and eigenvectors of a real symmetric matrix.
/// The input is copied; symmetry is enforced from the lower triangle.
/// Throws fastqaoa::Error if QL fails to converge (pathological input).
SymEig eigh(const dmat& a);

/// Eigenvalues only (same algorithm without eigenvector accumulation;
/// roughly 2-3x faster, used when the diagonal frame is not needed).
dvec eigvalsh(const dmat& a);

/// Max |(A v_j) - w_j v_j| over all j — residual used by tests and by
/// sanity checks after loading cached decompositions from disk.
double eig_residual(const dmat& a, const SymEig& eig);

}  // namespace fastqaoa::linalg
