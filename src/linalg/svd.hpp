#pragma once
/// \file svd.hpp
/// Thin singular value decomposition via one-sided Jacobi — the last piece
/// of dense linear algebra the MPS engine needs on top of the Householder/QL
/// machinery in eigen_sym.
///
/// One-sided Jacobi orthogonalizes the *columns* of a working copy W of A by
/// plane rotations: each sweep visits every column pair (p, q), p < q, in a
/// fixed cyclic order and rotates the pair so the columns become orthogonal.
/// At convergence the column norms are the singular values, the normalized
/// columns are U, and the accumulated rotations are V (A = U S V^H). The
/// method is slower than bidiagonalization-based SVD but is simple, robust,
/// and — crucially for the MPS truncation contract — *deterministic*: the
/// sweep order is fixed, ties in the final descending sort break on the
/// original column index, and no parallelism or pivoting makes the result
/// depend on thread count. Identical input bits give identical output bits
/// on every run, which is what makes MPS truncation reproducible across
/// thread and worker counts.
///
/// Shapes: for an m x n input with k = min(m, n), `u` is m x k, `v` is
/// n x k, and `singular_values` holds k non-negative values sorted
/// descending. Inputs with m < n are handled by decomposing the (conjugate)
/// transpose and swapping the factors. Rank-deficient inputs yield zero
/// singular values whose U columns are zero vectors (they multiply against
/// S = 0, so A = U S V^H still reconstructs exactly; callers that need an
/// orthonormal basis for the null directions must complete it themselves).

#include "linalg/dense.hpp"

namespace fastqaoa::linalg {

/// Real thin SVD: A = U S V^T.
struct SvdResult {
  dvec singular_values;  ///< k = min(m, n) values, descending
  dmat u;                ///< m x k
  dmat v;                ///< n x k
};

/// Complex thin SVD: A = U S V^H. Singular values are real non-negative.
struct CSvdResult {
  dvec singular_values;
  cmat u;
  cmat v;
};

/// Deterministic one-sided Jacobi SVD. Throws fastqaoa::Error on an empty
/// matrix or non-finite entries.
SvdResult svd(const dmat& a);
CSvdResult svd(const cmat& a);

/// Largest reconstruction residual ||A - U S V^H||_F (test helper).
double svd_residual(const dmat& a, const SvdResult& r);
double svd_residual(const cmat& a, const CSvdResult& r);

}  // namespace fastqaoa::linalg
