#include "linalg/sharded_state.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <new>

#include "common/alloc.hpp"
#include "common/threading.hpp"

namespace fastqaoa::linalg {

StateRef::StateRef(ShardedState& s) noexcept
    : ptr(s.data()), len(s.size()), shard_count(s.shards()) {}

ConstStateRef::ConstStateRef(const ShardedState& s) noexcept
    : ptr(s.data()), len(s.size()), shard_count(s.shards()) {}

namespace {

/// Parallel elementwise loop over contiguous 4096-element chunks with a
/// static schedule — the same thread-to-range mapping the kernels' blocked
/// `omp for schedule(static)` loops use, so first-touch page placement
/// matches the sweeps that follow. Serial below one chunk of work or when
/// already inside a parallel region.
template <typename Fn>
void parallel_ranges(index_t n, Fn&& fn) {
  constexpr index_t kChunk = 1 << 12;
  if (n <= kChunk || in_parallel()) {
    fn(index_t{0}, n);
    return;
  }
  const long long nchunks =
      static_cast<long long>((n + kChunk - 1) / kChunk);
#pragma omp parallel for schedule(static)
  for (long long c = 0; c < nchunks; ++c) {
    const index_t lo = kChunk * static_cast<index_t>(c);
    const index_t hi = std::min(n, lo + kChunk);
    fn(lo, hi);
  }
}

}  // namespace

void ShardedState::resize(index_t n) {
  if (n == size_) {
    shards_ = plan_shards(n, requested_).shards;
    return;
  }
  if (n <= capacity_) {
    size_ = n;
    shards_ = plan_shards(n, requested_).shards;
    return;
  }
  const std::size_t bytes = tracked_alloc_bytes(n * sizeof(cplx));
  auto* fresh = static_cast<cplx*>(std::aligned_alloc(kTrackedAlignment,
                                                      bytes));
  if (fresh == nullptr) throw std::bad_alloc{};
  MemoryTracker::add(bytes);
  // First touch: zero the new allocation in parallel so pages are placed on
  // the nodes whose threads will sweep them, then bring over the old prefix.
  parallel_ranges(n, [&](index_t lo, index_t hi) {
    std::memset(fresh + lo, 0, (hi - lo) * sizeof(cplx));
  });
  if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(cplx));
  release();
  data_ = fresh;
  capacity_ = bytes / sizeof(cplx);
  size_ = n;
  shards_ = plan_shards(n, requested_).shards;
}

void ShardedState::assign(index_t n, cplx value) {
  resize(n);
  cplx* dst = data_;
  parallel_ranges(n, [&](index_t lo, index_t hi) {
    std::fill(dst + lo, dst + hi, value);
  });
}

ShardedState& ShardedState::operator=(const ShardedState& other) {
  if (this == &other) return *this;
  requested_ = other.requested_;
  resize(other.size_);
  const cplx* src = other.data_;
  cplx* dst = data_;
  parallel_ranges(size_, [&](index_t lo, index_t hi) {
    std::memcpy(dst + lo, src + lo, (hi - lo) * sizeof(cplx));
  });
  return *this;
}

ShardedState& ShardedState::operator=(const cvec& v) {
  resize(v.size());
  const cplx* src = v.data();
  cplx* dst = data_;
  parallel_ranges(size_, [&](index_t lo, index_t hi) {
    std::memcpy(dst + lo, src + lo, (hi - lo) * sizeof(cplx));
  });
  return *this;
}

cvec ShardedState::to_vec() const {
  cvec out(size_);
  std::memcpy(out.data(), data_, size_ * sizeof(cplx));
  return out;
}

void ShardedState::release() noexcept {
  if (data_ == nullptr) return;
  MemoryTracker::sub(tracked_alloc_bytes(capacity_ * sizeof(cplx)));
  std::free(data_);
  data_ = nullptr;
  size_ = 0;
  capacity_ = 0;
}

}  // namespace fastqaoa::linalg
