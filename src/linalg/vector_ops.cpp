#include "linalg/vector_ops.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/kernels/kernels.hpp"

namespace fastqaoa::linalg {

namespace {
using std::ptrdiff_t;

/// Elementwise loops below this many complex elements run serially: for
/// Dicke-subspace states and small service jobs the OpenMP region launch
/// costs more than the loop. Kernel-backed ops get the same cutoff inside
/// the backend; this guard covers the loops that stay local to this TU.
constexpr ptrdiff_t kSerialElems = 8192;
}  // namespace

void fill(StateRef v, cplx value) {
  kernels::active().fill(v.data(), value.real(), value.imag(), v.size());
}

void copy_state(ConstStateRef src, StateRef dst) {
  FASTQAOA_CHECK(src.size() == dst.size(), "copy_state: size mismatch");
  // copy_scale by 1.0 is exact and reuses the kernels' parallel sweep.
  kernels::active().copy_scale(dst.data(), src.data(), 1.0, src.size());
}

void scale(StateRef v, cplx s) {
  kernels::active().scale(v.data(), s.real(), s.imag(), v.size());
}

void axpy(cplx a, ConstStateRef x, StateRef y) {
  FASTQAOA_CHECK(x.size() == y.size(), "axpy: size mismatch");
  kernels::active().axpy(a.real(), a.imag(), x.data(), y.data(), x.size());
}

cplx dot(ConstStateRef x, ConstStateRef y) {
  FASTQAOA_CHECK(x.size() == y.size(), "dot: size mismatch");
  const kernels::CplxSum s = kernels::active().dot(x.data(), y.data(),
                                                   x.size());
  return {s.re, s.im};
}

double norm_sq(ConstStateRef v) {
  return kernels::active().norm_sq(v.data(), v.size());
}

double norm(ConstStateRef v) { return std::sqrt(norm_sq(v)); }

double normalize(StateRef v) {
  const double nrm = norm(v);
  FASTQAOA_CHECK(nrm > 0.0, "normalize: zero vector");
  scale(v, cplx{1.0 / nrm, 0.0});
  return nrm;
}

void apply_diag_phase(StateRef psi, const dvec& d, double angle) {
  FASTQAOA_CHECK(psi.size() == d.size(), "apply_diag_phase: size mismatch");
  kernels::active().diag_phase(psi.data(), d.data(), angle, psi.size());
}

void diag_mul(StateRef psi, const dvec& d, double s) {
  FASTQAOA_CHECK(psi.size() == d.size(), "diag_mul: size mismatch");
  kernels::active().diag_mul(psi.data(), d.data(), s, psi.size());
}

void apply_threshold_phase(StateRef psi, const dvec& d, double threshold,
                           double angle) {
  FASTQAOA_CHECK(psi.size() == d.size(),
                 "apply_threshold_phase: size mismatch");
  const ptrdiff_t n = static_cast<ptrdiff_t>(psi.size());
  const cplx phase{std::cos(angle), -std::sin(angle)};
  if (n <= kSerialElems) {
    for (ptrdiff_t i = 0; i < n; ++i) {
      if (d[i] > threshold) psi[i] *= phase;
    }
    return;
  }
#pragma omp parallel for schedule(static)
  for (ptrdiff_t i = 0; i < n; ++i) {
    if (d[i] > threshold) psi[i] *= phase;
  }
}

double diag_expectation(const dvec& d, ConstStateRef psi) {
  FASTQAOA_CHECK(psi.size() == d.size(), "diag_expectation: size mismatch");
  return kernels::active().diag_expectation(d.data(), psi.data(), psi.size());
}

double diag_bracket_imag(ConstStateRef lambda, const dvec& d,
                         ConstStateRef psi) {
  FASTQAOA_CHECK(lambda.size() == d.size() && psi.size() == d.size(),
                 "diag_bracket_imag: size mismatch");
  return kernels::active().diag_bracket_imag(lambda.data(), d.data(),
                                             psi.data(), psi.size());
}

double probability_at_value(const dvec& d, ConstStateRef psi, double value,
                            double tol) {
  FASTQAOA_CHECK(psi.size() == d.size(), "probability_at_value: size mismatch");
  const ptrdiff_t n = static_cast<ptrdiff_t>(psi.size());
  double acc = 0.0;
  if (n <= kSerialElems) {
    for (ptrdiff_t i = 0; i < n; ++i) {
      if (std::abs(d[i] - value) <= tol) acc += std::norm(psi[i]);
    }
    return acc;
  }
#pragma omp parallel for schedule(static) reduction(+ : acc)
  for (ptrdiff_t i = 0; i < n; ++i) {
    if (std::abs(d[i] - value) <= tol) acc += std::norm(psi[i]);
  }
  return acc;
}

double max_abs_diff(ConstStateRef v, ConstStateRef w) {
  FASTQAOA_CHECK(v.size() == w.size(), "max_abs_diff: size mismatch");
  return kernels::active().max_abs_diff(v.data(), w.data(), v.size());
}

}  // namespace fastqaoa::linalg
