#include "linalg/vector_ops.hpp"

#include <cmath>

#include "common/error.hpp"

namespace fastqaoa::linalg {

namespace {
using std::ptrdiff_t;
}  // namespace

void fill(cvec& v, cplx value) {
  const ptrdiff_t n = static_cast<ptrdiff_t>(v.size());
#pragma omp parallel for schedule(static)
  for (ptrdiff_t i = 0; i < n; ++i) v[i] = value;
}

void scale(cvec& v, cplx s) {
  const ptrdiff_t n = static_cast<ptrdiff_t>(v.size());
#pragma omp parallel for schedule(static)
  for (ptrdiff_t i = 0; i < n; ++i) v[i] *= s;
}

void axpy(cplx a, const cvec& x, cvec& y) {
  FASTQAOA_CHECK(x.size() == y.size(), "axpy: size mismatch");
  const ptrdiff_t n = static_cast<ptrdiff_t>(x.size());
#pragma omp parallel for schedule(static)
  for (ptrdiff_t i = 0; i < n; ++i) y[i] += a * x[i];
}

cplx dot(const cvec& x, const cvec& y) {
  FASTQAOA_CHECK(x.size() == y.size(), "dot: size mismatch");
  const ptrdiff_t n = static_cast<ptrdiff_t>(x.size());
  double re = 0.0;
  double im = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : re, im)
  for (ptrdiff_t i = 0; i < n; ++i) {
    const cplx t = std::conj(x[i]) * y[i];
    re += t.real();
    im += t.imag();
  }
  return {re, im};
}

double norm_sq(const cvec& v) {
  const ptrdiff_t n = static_cast<ptrdiff_t>(v.size());
  double acc = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : acc)
  for (ptrdiff_t i = 0; i < n; ++i) acc += std::norm(v[i]);
  return acc;
}

double norm(const cvec& v) { return std::sqrt(norm_sq(v)); }

double normalize(cvec& v) {
  const double nrm = norm(v);
  FASTQAOA_CHECK(nrm > 0.0, "normalize: zero vector");
  scale(v, cplx{1.0 / nrm, 0.0});
  return nrm;
}

void apply_diag_phase(cvec& psi, const dvec& d, double angle) {
  FASTQAOA_CHECK(psi.size() == d.size(), "apply_diag_phase: size mismatch");
  const ptrdiff_t n = static_cast<ptrdiff_t>(psi.size());
#pragma omp parallel for schedule(static)
  for (ptrdiff_t i = 0; i < n; ++i) {
    const double phase = -angle * d[i];
    psi[i] *= cplx{std::cos(phase), std::sin(phase)};
  }
}

void apply_threshold_phase(cvec& psi, const dvec& d, double threshold,
                           double angle) {
  FASTQAOA_CHECK(psi.size() == d.size(),
                 "apply_threshold_phase: size mismatch");
  const ptrdiff_t n = static_cast<ptrdiff_t>(psi.size());
  const cplx phase{std::cos(angle), -std::sin(angle)};
#pragma omp parallel for schedule(static)
  for (ptrdiff_t i = 0; i < n; ++i) {
    if (d[i] > threshold) psi[i] *= phase;
  }
}

double diag_expectation(const dvec& d, const cvec& psi) {
  FASTQAOA_CHECK(psi.size() == d.size(), "diag_expectation: size mismatch");
  const ptrdiff_t n = static_cast<ptrdiff_t>(psi.size());
  double acc = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : acc)
  for (ptrdiff_t i = 0; i < n; ++i) acc += d[i] * std::norm(psi[i]);
  return acc;
}

double diag_bracket_imag(const cvec& lambda, const dvec& d, const cvec& psi) {
  FASTQAOA_CHECK(lambda.size() == d.size() && psi.size() == d.size(),
                 "diag_bracket_imag: size mismatch");
  const ptrdiff_t n = static_cast<ptrdiff_t>(psi.size());
  double acc = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : acc)
  for (ptrdiff_t i = 0; i < n; ++i) {
    const cplx t = std::conj(lambda[i]) * psi[i];
    acc += d[i] * t.imag();
  }
  return acc;
}

double probability_at_value(const dvec& d, const cvec& psi, double value,
                            double tol) {
  FASTQAOA_CHECK(psi.size() == d.size(), "probability_at_value: size mismatch");
  const ptrdiff_t n = static_cast<ptrdiff_t>(psi.size());
  double acc = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : acc)
  for (ptrdiff_t i = 0; i < n; ++i) {
    if (std::abs(d[i] - value) <= tol) acc += std::norm(psi[i]);
  }
  return acc;
}

double max_abs_diff(const cvec& v, const cvec& w) {
  FASTQAOA_CHECK(v.size() == w.size(), "max_abs_diff: size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    m = std::max(m, std::abs(v[i] - w[i]));
  }
  return m;
}

}  // namespace fastqaoa::linalg
