#pragma once
/// \file eigen_herm.hpp
/// Complex Hermitian eigendecomposition via the 2N real embedding.
///
/// For H = A + iB (A symmetric, B antisymmetric), the real symmetric matrix
///     M = [ A  -B ]
///         [ B   A ]
/// has each eigenvalue of H twice; a real eigenvector (x; y) of M maps to a
/// complex eigenvector z = x + iy of H. Degenerate clusters are resolved
/// with modified Gram–Schmidt in the complex eigenspace. This routes every
/// Hermitian mixer through the same battle-tested real-symmetric kernel
/// (eigen_sym.hpp) instead of a separate complex Householder path.

#include "common/types.hpp"
#include "linalg/dense.hpp"
#include "linalg/eigen_sym.hpp"

namespace fastqaoa::linalg {

/// Eigendecomposition of a complex Hermitian matrix H = V diag(w) V^H.
/// Column j of `vectors` is the (unit-norm) eigenvector for eigenvalues[j];
/// eigenvalues (all real) are sorted ascending.
struct HermEig {
  dvec eigenvalues;
  cmat vectors;
};

/// Compute all eigenvalues/eigenvectors of a complex Hermitian matrix.
/// Hermiticity is enforced by averaging H with its adjoint first.
HermEig eigh(const cmat& h);

/// Max |(H v_j) - w_j v_j| over all j.
double eig_residual(const cmat& h, const HermEig& eig);

}  // namespace fastqaoa::linalg
