#include "linalg/eigen_herm.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace fastqaoa::linalg {

namespace {

/// Orthonormalize `candidates` (columns) with two-pass modified
/// Gram–Schmidt, keeping vectors whose residual norm exceeds `tol`.
/// Returns the kept orthonormal vectors.
std::vector<cvec> gram_schmidt(std::vector<cvec> candidates, double tol) {
  std::vector<cvec> kept;
  for (auto& v : candidates) {
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto& u : kept) {
        cplx proj{0.0, 0.0};
        for (index_t i = 0; i < v.size(); ++i) proj += std::conj(u[i]) * v[i];
        for (index_t i = 0; i < v.size(); ++i) v[i] -= proj * u[i];
      }
    }
    double nrm = 0.0;
    for (const auto& c : v) nrm += std::norm(c);
    nrm = std::sqrt(nrm);
    if (nrm > tol) {
      for (auto& c : v) c /= nrm;
      kept.push_back(std::move(v));
    }
  }
  return kept;
}

}  // namespace

HermEig eigh(const cmat& h_in) {
  FASTQAOA_CHECK(h_in.rows() == h_in.cols(), "eigh: matrix must be square");
  const index_t n = h_in.rows();
  const cmat h = hermitize(h_in);

  // Real symmetric embedding M = [A -B; B A].
  dmat m(2 * n, 2 * n);
  for (index_t r = 0; r < n; ++r) {
    for (index_t c = 0; c < n; ++c) {
      const double a = h(r, c).real();
      const double b = h(r, c).imag();
      m(r, c) = a;
      m(n + r, n + c) = a;
      m(r, n + c) = -b;
      m(n + r, c) = b;
    }
  }
  SymEig embedded = eigh(m);

  // Scale for "same eigenvalue" clustering.
  double scale = 0.0;
  for (double w : embedded.eigenvalues) scale = std::max(scale, std::abs(w));
  const double cluster_tol = std::max(scale, 1.0) * 1e-9;

  HermEig result;
  result.eigenvalues = dvec();
  result.eigenvalues.reserve(n);
  result.vectors = cmat(n, n);

  index_t out = 0;
  index_t i = 0;
  while (i < 2 * n) {
    // Cluster [i, j) of (numerically) equal eigenvalues of M.
    index_t j = i + 1;
    while (j < 2 * n && embedded.eigenvalues[j] - embedded.eigenvalues[i] <=
                            cluster_tol) {
      ++j;
    }
    const index_t msize = j - i;
    FASTQAOA_CHECK(msize % 2 == 0,
                   "eigh(complex): embedding produced an odd cluster — "
                   "eigenvalue clustering tolerance too tight");
    const index_t want = msize / 2;

    // Map real eigenvectors (x; y) -> z = x + iy and orthonormalize.
    std::vector<cvec> candidates;
    candidates.reserve(msize);
    for (index_t col = i; col < j; ++col) {
      cvec z(n, cplx{0.0, 0.0});
      for (index_t r = 0; r < n; ++r) {
        z[r] = cplx{embedded.vectors(r, col), embedded.vectors(n + r, col)};
      }
      candidates.push_back(std::move(z));
    }
    std::vector<cvec> ortho = gram_schmidt(std::move(candidates), 1e-6);
    FASTQAOA_CHECK(ortho.size() >= want,
                   "eigh(complex): failed to extract a full eigenbasis from "
                   "a degenerate cluster");

    const double eigenvalue =
        std::accumulate(embedded.eigenvalues.begin() + i,
                        embedded.eigenvalues.begin() + j, 0.0) /
        static_cast<double>(msize);
    for (index_t t = 0; t < want; ++t) {
      result.eigenvalues.push_back(eigenvalue);
      for (index_t r = 0; r < n; ++r) result.vectors(r, out) = ortho[t][r];
      ++out;
    }
    i = j;
  }
  FASTQAOA_CHECK(out == n, "eigh(complex): eigenvector count mismatch");
  return result;
}

double eig_residual(const cmat& h, const HermEig& eig) {
  const index_t n = h.rows();
  double worst = 0.0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t r = 0; r < n; ++r) {
      cplx hv{0.0, 0.0};
      for (index_t c = 0; c < n; ++c) hv += h(r, c) * eig.vectors(c, j);
      worst = std::max(
          worst, std::abs(hv - eig.eigenvalues[j] * eig.vectors(r, j)));
    }
  }
  return worst;
}

}  // namespace fastqaoa::linalg
