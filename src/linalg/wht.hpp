#pragma once
/// \file wht.hpp
/// Fast Walsh–Hadamard transform.
///
/// H^{⊗n} diagonalizes every mixer built from sums of products of Pauli-X
/// (HZH = X, Eq. 2 of the paper), so applying an X-type mixer exponential is
/// WHT -> elementwise phase -> WHT. The *unnormalized* transform applied
/// twice equals 2^n * identity; callers fold the single 1/2^n scale into an
/// adjacent elementwise pass instead of paying two 1/sqrt(2^n) scalings.
///
/// All single-state entry points take a StateRef — implicitly constructible
/// from both cvec (one shard) and ShardedState — and dispatch to the
/// shard-aware kernel drivers. Results are bit-identical at any shard
/// count; with one shard the kernels take the pre-sharding blocked path.

#include "common/types.hpp"
#include "linalg/sharded_state.hpp"

namespace fastqaoa::linalg {

struct DiagDict;  // linalg/diag_dict.hpp

/// In-place unnormalized Walsh–Hadamard transform of a length-2^n vector:
/// v'_x = sum_y (-1)^{popcount(x & y)} v_y.
/// Complexity O(n 2^n); cache-blocked butterflies, OpenMP parallel.
void wht_unnormalized(StateRef v);

/// In-place orthonormal transform H^{⊗n} (unnormalized WHT scaled by
/// 2^{-n/2}). Self-inverse.
void wht_orthonormal(StateRef v);

/// Fused diag-phase -> WHT: v_i *= scale * exp(-i * angle * d_i), then the
/// unnormalized WHT, in one pass over the data. The phase (and the folded
/// 1/2^n normalization of the surrounding mixer sandwich) is applied per
/// cache block right before that block's butterflies, so the vector is
/// streamed once instead of twice.
void phase_wht(StateRef v, const dvec& d, double angle, double scale);

/// Unnormalized WHT with sum_i obj_i |v_i|^2 fused into the final butterfly
/// pass (the expectation epilogue of evaluate()).
double wht_expect(StateRef v, const dvec& obj);

/// phase_wht followed by the fused expectation: the complete final QAOA
/// round (phase, mixer half, expectation) in two passes over the vector.
double phase_wht_expect(StateRef v, const dvec& d, double angle, double scale,
                        const dvec& obj);

// --- batched variants ------------------------------------------------------
// `lanes` independent statevectors, lane l at states + l*stride (stride in
// complex elements, stride >= d.size()), each phased by its own angles[l].
// One sweep over the shared d/obj tables serves the whole batch, and a
// DiagDict view (when valid) replaces the per-element sincos sweep with a
// per-distinct-value one. Per-lane results are bit-identical to `lanes`
// sequential calls of the single-state function. `dict` may be null.
// `shards` (default 1 = monolithic) selects the shard-aware driver; lanes
// then run shard-local sweeps, still lane-for-lane bit-identical.

/// Batched phase_wht. `init`, when non-null, is a shared length-d.size()
/// input: every lane starts from init (copy fused into the first pass)
/// instead of its own slab contents — the first round of a batched
/// evaluation, where all lanes start from the same |psi0>.
void phase_wht_batch(cplx* states, index_t stride, int lanes, const cplx* init,
                     const dvec& d, const DiagDict* dict, const double* angles,
                     double scale, int shards = 1);

/// Batched plain unnormalized WHT (no phase, no scale) of length-n lanes.
void wht_batch(cplx* states, index_t stride, int lanes, index_t n,
               int shards = 1);

/// Batched wht_expect: out[l] = sum_i obj_i |states_{l,i}|^2 after the WHT.
void wht_expect_batch(cplx* states, index_t stride, int lanes, const dvec& obj,
                      double* out, int shards = 1);

/// Batched phase_wht_expect: the whole final QAOA round for every lane.
void phase_wht_expect_batch(cplx* states, index_t stride, int lanes,
                            const dvec& d, const DiagDict* dict,
                            const double* angles, double scale, const dvec& obj,
                            double* out, int shards = 1);

/// True iff sz is a power of two (and non-zero).
bool is_power_of_two(index_t sz);

/// log2 of a power-of-two size.
int log2_exact(index_t sz);

}  // namespace fastqaoa::linalg
