#pragma once
/// \file wht.hpp
/// Fast Walsh–Hadamard transform.
///
/// H^{⊗n} diagonalizes every mixer built from sums of products of Pauli-X
/// (HZH = X, Eq. 2 of the paper), so applying an X-type mixer exponential is
/// WHT -> elementwise phase -> WHT. The *unnormalized* transform applied
/// twice equals 2^n * identity; callers fold the single 1/2^n scale into an
/// adjacent elementwise pass instead of paying two 1/sqrt(2^n) scalings.

#include "common/types.hpp"

namespace fastqaoa::linalg {

/// In-place unnormalized Walsh–Hadamard transform of a length-2^n vector:
/// v'_x = sum_y (-1)^{popcount(x & y)} v_y.
/// Complexity O(n 2^n); cache-blocked butterflies, OpenMP parallel.
void wht_unnormalized(cvec& v);

/// In-place orthonormal transform H^{⊗n} (unnormalized WHT scaled by
/// 2^{-n/2}). Self-inverse.
void wht_orthonormal(cvec& v);

/// True iff sz is a power of two (and non-zero).
bool is_power_of_two(index_t sz);

/// log2 of a power-of-two size.
int log2_exact(index_t sz);

}  // namespace fastqaoa::linalg
