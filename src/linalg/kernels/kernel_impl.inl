// kernel_impl.inl — the generic kernel implementation, included by each
// backend TU inside its own namespace (FQ_KERNEL_NAMESPACE) so the compiler
// can specialize every loop for that TU's target flags.
//
// Contract for this file (the backend TUs are compiled with ISA flags the
// host may not support, so nothing here may leak linker-shared symbols):
//   * every function is file-local (static) except make_backend();
//   * no std:: templates are instantiated (no std::vector, std::min,
//     std::bit_cast, no std::complex arithmetic) — raw double loops only;
//   * cplx* arguments are immediately reinterpreted as double* (legal:
//     std::complex<double> has array layout by [complex.numbers.general]).
//
// Determinism: all reductions accumulate fixed-size blocks into a partials
// array indexed by block id and then sum the partials in block order, so
// results are invariant under the OpenMP thread count. Vectorization inside
// a block reassociates, but the codegen is fixed per backend, so the
// per-backend bit pattern is stable.
//
// The including TU must define:
//   FQ_KERNEL_NAMESPACE    — unique namespace for this backend
//   FQ_KERNEL_FAST_SINCOS  — 1 to use the vectorizable polynomial sincos,
//                            0 to call libm per element (scalar reference)

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "linalg/kernels/kernels.hpp"

namespace fastqaoa::linalg::kernels {
namespace FQ_KERNEL_NAMESPACE {

// ---------------------------------------------------------------------------
// Tuning constants (shared by all backends; chosen for ~48K L1d / 2M L2).
// ---------------------------------------------------------------------------

/// Largest transform done entirely serially (complex elements): below this,
/// launching an OpenMP region costs more than the transform.
inline constexpr index_t kWhtSerial = index_t{1} << 12;
/// Bottom-block size of the blocked WHT: all stages with stride < kBlock
/// run back-to-back on one contiguous 64 KiB block while it is cache-hot.
inline constexpr int kLog2Block = 12;
/// Contiguous chunk length (complex) for the strided top passes.
inline constexpr index_t kJChunk = index_t{1} << 12;
/// Elementwise kernels below this many complex elements skip OpenMP.
inline constexpr index_t kEwSerial = index_t{1} << 13;
/// Reductions below this many complex elements run serially; above it they
/// accumulate one partial per kRedBlock elements.
inline constexpr index_t kRedSerial = index_t{1} << 13;
inline constexpr index_t kRedBlock = index_t{1} << 13;
/// GEMVs with fewer than this many multiply-adds skip OpenMP.
inline constexpr index_t kGemvSerial = index_t{1} << 14;
/// Phase sweeps process this many elements per sincos batch (stack arrays).
inline constexpr index_t kPhaseChunk = 512;

static inline index_t min_i(index_t a, index_t b) { return a < b ? a : b; }

static inline double* dp(cplx* p) { return reinterpret_cast<double*>(p); }
static inline const double* dp(const cplx* p) {
  return reinterpret_cast<const double*>(p);
}

/// Per-thread scratch for reduction partials (plain malloc so no allocator
/// templates are instantiated in an ISA-specific TU).
static double* red_buffer(index_t n) {
  struct Buf {
    double* p = nullptr;
    index_t cap = 0;
    ~Buf() { std::free(p); }
  };
  static thread_local Buf buf;
  if (buf.cap < n) {
    std::free(buf.p);
    buf.p = static_cast<double*>(std::malloc(n * sizeof(double)));
    if (buf.p == nullptr) {
      std::fprintf(stderr, "fastqaoa kernels: out of memory\n");
      std::abort();
    }
    buf.cap = n;
  }
  return buf.p;
}

/// Second per-thread scratch, for the batched driver's per-lane phase
/// tables. Separate from red_buffer because the fused-expectation partials
/// already live there for the duration of the same call.
static double* aux_buffer(index_t n) {
  struct Buf {
    double* p = nullptr;
    index_t cap = 0;
    ~Buf() { std::free(p); }
  };
  static thread_local Buf buf;
  if (buf.cap < n) {
    std::free(buf.p);
    buf.p = static_cast<double*>(std::malloc(n * sizeof(double)));
    if (buf.p == nullptr) {
      std::fprintf(stderr, "fastqaoa kernels: out of memory\n");
      std::abort();
    }
    buf.cap = n;
  }
  return buf.p;
}

// ---------------------------------------------------------------------------
// sincos batch: fill s/c with sin/cos(-angle * d_i) * scale.
// ---------------------------------------------------------------------------

#if FQ_KERNEL_FAST_SINCOS

/// Branchless Cody–Waite reduction + Cephes minimax polynomials, accurate to
/// ~1 ulp for |x| <= 1e8 (the QAOA phase range by orders of magnitude); the
/// rare larger argument falls back to libm for the whole batch.
static void sincos_batch(const double* d, double angle, double scale,
                         double* s, double* c, index_t m) {
  double mx = 0.0;
  for (index_t i = 0; i < m; ++i) {
    const double ph = -angle * d[i];
    s[i] = ph;
    const double a = ph < 0.0 ? -ph : ph;
    if (a > mx) mx = a;
  }
  if (mx > 1e8) {
    for (index_t i = 0; i < m; ++i) {
      const double ph = s[i];
      c[i] = std::cos(ph) * scale;
      s[i] = std::sin(ph) * scale;
    }
    return;
  }
#pragma omp simd
  for (index_t i = 0; i < m; ++i) {
    const double x = s[i];
    // k = round(x * 2/pi) via the shift trick; the low mantissa bits of the
    // shifted value hold k mod 2^32 in two's complement.
    const double t = x * 0.63661977236758134308 + 6755399441055744.0;
    const double k = t - 6755399441055744.0;
    std::uint64_t tb;
    __builtin_memcpy(&tb, &t, sizeof tb);
    const std::uint64_t q = tb & 3u;
    // 3-term Cody–Waite: r = x - k * (pi/2) with 150+ bits of pi/2.
    const double r = ((x - k * 1.57079632673412561417e+00) -
                      k * 6.07710050650619224932e-11) -
                     k * 2.02226624879595063154e-21;
    const double z = r * r;
    double sp = 1.58962301576546568060e-10;
    sp = sp * z - 2.50507477628578072866e-8;
    sp = sp * z + 2.75573136213857245213e-6;
    sp = sp * z - 1.98412698295895385996e-4;
    sp = sp * z + 8.33333333332211858878e-3;
    sp = sp * z - 1.66666666666666307295e-1;
    const double sr = r + r * z * sp;
    double cp = -1.13585365213876817300e-11;
    cp = cp * z + 2.08757008419747316778e-9;
    cp = cp * z - 2.75573141792967388112e-7;
    cp = cp * z + 2.48015872888517179954e-5;
    cp = cp * z - 1.38888888888730564116e-3;
    cp = cp * z + 4.16666666666665929218e-2;
    const double cr = 1.0 - 0.5 * z + z * z * cp;
    // Quadrant selection, branch-free: q&1 swaps sin/cos, q&2 flips signs.
    const double swap = static_cast<double>(q & 1u);
    const double ssign = 1.0 - static_cast<double>(q & 2u);
    const double csign = 1.0 - static_cast<double>((q + 1u) & 2u);
    s[i] = ssign * (sr + swap * (cr - sr)) * scale;
    c[i] = csign * (cr + swap * (sr - cr)) * scale;
  }
}

/// Complex multiply q_i *= (c_i + i*s_i): the shared application loop of
/// the fast-sincos phase sweeps. Kept out-of-line so the classic (computed)
/// and the quantized (looked-up) routes run the exact same machine code on
/// the factors — the compiler's FMA-contraction choices cannot diverge
/// between the two call sites, which is what makes table lookup
/// bit-identical to direct sincos.
__attribute__((noinline)) static void cmul_range(double* q, const double* s,
                                                 const double* c, index_t m) {
  for (index_t i = 0; i < m; ++i) {
    const double re = q[2 * i];
    const double im = q[2 * i + 1];
    q[2 * i] = re * c[i] - im * s[i];
    q[2 * i + 1] = re * s[i] + im * c[i];
  }
}

#endif  // FQ_KERNEL_FAST_SINCOS

/// Serial phase(+scale) sweep over n complex elements. d may be null (pure
/// real scale).
static void phase_scale_range(double* p, const double* d, double angle,
                              double scale, index_t n) {
  if (d == nullptr) {
    const index_t n2 = 2 * n;
#pragma omp simd
    for (index_t i = 0; i < n2; ++i) p[i] *= scale;
    return;
  }
#if FQ_KERNEL_FAST_SINCOS
  double s[kPhaseChunk];
  double c[kPhaseChunk];
  for (index_t i0 = 0; i0 < n; i0 += kPhaseChunk) {
    const index_t m = min_i(kPhaseChunk, n - i0);
    sincos_batch(d + i0, angle, scale, s, c, m);
    cmul_range(p + 2 * i0, s, c, m);
  }
#else
  // Reference backend: per-element std::complex multiply, the exact loop
  // shapes of the pre-dispatch code (one with the folded normalization
  // scale, one without). Keeping the source shape keeps the compiler's
  // FMA-contraction choices — and therefore the bits — identical to the
  // historical evaluate path.
  cplx* q = reinterpret_cast<cplx*>(p);
  if (scale == 1.0) {
    for (index_t i = 0; i < n; ++i) {
      const double ph = -angle * d[i];
      q[i] *= cplx{std::cos(ph), std::sin(ph)};
    }
    return;
  }
  for (index_t i = 0; i < n; ++i) {
    const double ph = -angle * d[i];
    const double c = std::cos(ph) * scale;
    const double s = std::sin(ph) * scale;
    const double re = p[2 * i];
    const double im = p[2 * i + 1];
    p[2 * i] = std::fma(re, c, -(im * s));
    p[2 * i + 1] = std::fma(re, s, im * c);
  }
#endif
}

// ---------------------------------------------------------------------------
// Quantized phase route. When a diagonal table takes few distinct values —
// X-mixer eigenvalues take n_qubits+1, integer cost functions a few hundred
// — the batched sweeps compute one sincos per distinct value per lane and
// apply the factors by index lookup.
//
// Bit-identity with the per-element sweep, fast-sincos backends:
//   * the factors in the table are produced by the very same sincos_batch
//     as the per-element sweep, on the same inputs (-angle * value);
//   * the values array is padded to a multiple of 64 so every entry is
//     computed by the vectorized loop body, never a scalar epilogue whose
//     contraction could differ — per-element chunks are always a multiple
//     of 64 too (the route requires n >= 64, and chunk lengths divide
//     kPhaseChunk);
//   * the application multiply runs through the shared out-of-line
//     cmul_range, the same machine code the computed route uses;
//   * the route is declined — falling back to the per-element sweep, which
//     is trivially identical — whenever any lane's phase range could trip
//     the per-chunk libm fallback inside sincos_batch (|angle*value| > 1e8).
// Scalar backend: the factors are per-element libm calls (deterministic per
// input, position-independent), and the application loop reproduces the two
// classic loop shapes (operator*= when scale == 1, the fma pattern
// otherwise) on the looked-up values. Source-shape equality is not
// machine-code equality, though: the compiler contracts the operator*= shape
// per call site, and only the blocked driver's phase_scale_range clone
// matches the lookup loop. The batched drivers therefore take this route
// only above the serial-transform threshold on the scalar backend (see
// quantize_ok in batch_wht_driver), and test_batch pins both regimes.
// ---------------------------------------------------------------------------

#if FQ_KERNEL_FAST_SINCOS

/// Build per-lane factor tables: tabs + 2*nv*l holds lane l's
/// (cos, sin)(-angles[l] * vals[j]) * scale pairs. Returns null (declining
/// the route) if any lane's phase range is unsafe.
static double* build_phase_tables(const double* vals, index_t nv,
                                  const double* angles, int lanes,
                                  double scale) {
  double vmax = 0.0;
  for (index_t j = 0; j < nv; ++j) {
    const double a = vals[j] < 0.0 ? -vals[j] : vals[j];
    if (a > vmax) vmax = a;
  }
  double amax = 0.0;
  for (int l = 0; l < lanes; ++l) {
    const double a = angles[l] < 0.0 ? -angles[l] : angles[l];
    if (a > amax) amax = a;
  }
  if (!(vmax * amax <= 1e8)) return nullptr;
  const index_t m = (nv + 63) & ~index_t{63};  // pad: vector body only
  double vp[kPhaseChunk];
  double ts[kPhaseChunk];
  double tc[kPhaseChunk];
  for (index_t j = 0; j < nv; ++j) vp[j] = vals[j];
  for (index_t j = nv; j < m; ++j) vp[j] = 0.0;
  double* tabs = aux_buffer(2 * static_cast<index_t>(lanes) * nv);
  for (int l = 0; l < lanes; ++l) {
    sincos_batch(vp, angles[l], scale, ts, tc, m);
    double* t = tabs + 2 * nv * static_cast<index_t>(l);
    for (index_t j = 0; j < nv; ++j) {
      t[2 * j] = tc[j];
      t[2 * j + 1] = ts[j];
    }
  }
  return tabs;
}

/// Serial phase sweep via a prebuilt factor table: q_i *= tbl[idx[i]].
/// scale_one is unused here — the table already carries the scale, and the
/// fast path has a single application shape.
static void phase_lookup_range(double* p, const std::uint16_t* idx,
                               const double* tbl, bool scale_one, index_t n) {
  (void)scale_one;
  double s[kPhaseChunk];
  double c[kPhaseChunk];
  for (index_t i0 = 0; i0 < n; i0 += kPhaseChunk) {
    const index_t m = min_i(kPhaseChunk, n - i0);
    const std::uint16_t* ix = idx + i0;
#pragma omp simd
    for (index_t i = 0; i < m; ++i) {
      c[i] = tbl[2 * ix[i]];
      s[i] = tbl[2 * ix[i] + 1];
    }
    cmul_range(p + 2 * i0, s, c, m);
  }
}

#else  // !FQ_KERNEL_FAST_SINCOS

/// Reference-backend table build: one libm sincos per distinct value per
/// lane. Multiplying by scale == 1.0 is exact, so one build covers both
/// application shapes. Never declines (libm handles every phase range).
static double* build_phase_tables(const double* vals, index_t nv,
                                  const double* angles, int lanes,
                                  double scale) {
  double* tabs = aux_buffer(2 * static_cast<index_t>(lanes) * nv);
  for (int l = 0; l < lanes; ++l) {
    double* t = tabs + 2 * nv * static_cast<index_t>(l);
    for (index_t j = 0; j < nv; ++j) {
      const double ph = -angles[l] * vals[j];
      t[2 * j] = std::cos(ph) * scale;
      t[2 * j + 1] = std::sin(ph) * scale;
    }
  }
  return tabs;
}

/// Reference-backend lookup sweep: the exact loop shapes of
/// phase_scale_range with the sincos calls replaced by table loads.
static void phase_lookup_range(double* p, const std::uint16_t* idx,
                               const double* tbl, bool scale_one, index_t n) {
  cplx* q = reinterpret_cast<cplx*>(p);
  if (scale_one) {
    for (index_t i = 0; i < n; ++i) {
      q[i] *= cplx{tbl[2 * idx[i]], tbl[2 * idx[i] + 1]};
    }
    return;
  }
  for (index_t i = 0; i < n; ++i) {
    const double c = tbl[2 * idx[i]];
    const double s = tbl[2 * idx[i] + 1];
    const double re = p[2 * i];
    const double im = p[2 * i + 1];
    p[2 * i] = std::fma(re, c, -(im * s));
    p[2 * i + 1] = std::fma(re, s, im * c);
  }
}

#endif  // FQ_KERNEL_FAST_SINCOS

/// Serial sum_i obj_i * |a_i|^2 over n complex elements. The omp simd
/// reduction grants the vectorizer reassociation rights, exactly like the
/// omp-reduction clause of the pre-dispatch loop did — same lane layout,
/// same combine order, fixed at compile time (thread-count independent).
static double expect_range(const double* a, const double* obj, index_t n) {
  const cplx* q = reinterpret_cast<const cplx*>(a);
  const std::ptrdiff_t m = static_cast<std::ptrdiff_t>(n);
  double acc = 0.0;
#pragma omp simd reduction(+ : acc)
  for (std::ptrdiff_t i = 0; i < m; ++i) acc += obj[i] * std::norm(q[i]);
  return acc;
}

// ---------------------------------------------------------------------------
// WHT butterflies. A radix-4 sweep fuses two radix-2 stages (strides h and
// 2h) into one pass over the data: the butterfly tree is associated exactly
// as two consecutive radix-2 stages would be, so results are bit-identical
// to the classic stage-by-stage transform.
// ---------------------------------------------------------------------------

static inline void butterfly2(double* a0, double* a1, index_t len) {
#pragma omp simd
  for (index_t i = 0; i < len; ++i) {
    const double x = a0[i];
    const double y = a1[i];
    a0[i] = x + y;
    a1[i] = x - y;
  }
}

static inline void butterfly4(double* a0, double* a1, double* a2, double* a3,
                              index_t len) {
#pragma omp simd
  for (index_t i = 0; i < len; ++i) {
    const double x0 = a0[i];
    const double x1 = a1[i];
    const double x2 = a2[i];
    const double x3 = a3[i];
    const double t0 = x0 + x1;
    const double t1 = x0 - x1;
    const double t2 = x2 + x3;
    const double t3 = x2 - x3;
    a0[i] = t0 + t2;
    a1[i] = t1 + t3;
    a2[i] = t0 - t2;
    a3[i] = t1 - t3;
  }
}

/// Radix-4 sweep with the diagonal expectation fused in: the four output
/// streams are final after this pass, so their contribution to
/// sum obj_i |a_i|^2 is harvested while they are still in registers.
static inline double butterfly4_expect(double* a0, double* a1, double* a2,
                                       double* a3, const double* o0,
                                       const double* o1, const double* o2,
                                       const double* o3, index_t len) {
  double acc = 0.0;
  for (index_t i = 0; i < len; i += 2) {
    const index_t j = i >> 1;
    const double t0r = a0[i] + a1[i];
    const double t0i = a0[i + 1] + a1[i + 1];
    const double t1r = a0[i] - a1[i];
    const double t1i = a0[i + 1] - a1[i + 1];
    const double t2r = a2[i] + a3[i];
    const double t2i = a2[i + 1] + a3[i + 1];
    const double t3r = a2[i] - a3[i];
    const double t3i = a2[i + 1] - a3[i + 1];
    const double y0r = t0r + t2r, y0i = t0i + t2i;
    const double y1r = t1r + t3r, y1i = t1i + t3i;
    const double y2r = t0r - t2r, y2i = t0i - t2i;
    const double y3r = t1r - t3r, y3i = t1i - t3i;
    a0[i] = y0r;
    a0[i + 1] = y0i;
    a1[i] = y1r;
    a1[i + 1] = y1i;
    a2[i] = y2r;
    a2[i + 1] = y2i;
    a3[i] = y3r;
    a3[i + 1] = y3i;
    acc += o0[j] * (y0r * y0r + y0i * y0i) + o1[j] * (y1r * y1r + y1i * y1i) +
           o2[j] * (y2r * y2r + y2i * y2i) + o3[j] * (y3r * y3r + y3i * y3i);
  }
  return acc;
}

static inline double butterfly2_expect(double* a0, double* a1,
                                       const double* o0, const double* o1,
                                       index_t len) {
  double acc = 0.0;
  for (index_t i = 0; i < len; i += 2) {
    const index_t j = i >> 1;
    const double yr0 = a0[i] + a1[i];
    const double yi0 = a0[i + 1] + a1[i + 1];
    const double yr1 = a0[i] - a1[i];
    const double yi1 = a0[i + 1] - a1[i + 1];
    a0[i] = yr0;
    a0[i + 1] = yi0;
    a1[i] = yr1;
    a1[i + 1] = yi1;
    acc += o0[j] * (yr0 * yr0 + yi0 * yi0) + o1[j] * (yr1 * yr1 + yi1 * yi1);
  }
  return acc;
}

/// Fused first pair of stages (strides 1 and 2) over a contiguous range:
/// each group of four adjacent complex values butterflies within itself.
static inline void butterfly4_stride1(double* a, index_t n2) {
  for (index_t i = 0; i < n2; i += 8) {
    double* p = a + i;
    const double t0r = p[0] + p[2], t0i = p[1] + p[3];
    const double t1r = p[0] - p[2], t1i = p[1] - p[3];
    const double t2r = p[4] + p[6], t2i = p[5] + p[7];
    const double t3r = p[4] - p[6], t3i = p[5] - p[7];
    p[0] = t0r + t2r;
    p[1] = t0i + t2i;
    p[2] = t1r + t3r;
    p[3] = t1i + t3i;
    p[4] = t0r - t2r;
    p[5] = t0i - t2i;
    p[6] = t1r - t3r;
    p[7] = t1i - t3i;
  }
}

/// All butterfly stages of one contiguous power-of-two block, serial.
static void wht_serial_block(double* a, index_t n) {
  if (n < 2) return;
  if (n == 2) {
    butterfly2(a, a + 2, 2);
    return;
  }
  butterfly4_stride1(a, 2 * n);  // strides 1 and 2
  index_t h = 4;
  while (4 * h <= n) {
    for (index_t base = 0; base < n; base += 4 * h) {
      double* b = a + 2 * base;
      butterfly4(b, b + 2 * h, b + 4 * h, b + 6 * h, 2 * h);
    }
    h <<= 2;
  }
  if (2 * h <= n) {  // odd log2: one radix-2 stage at stride n/2 remains
    for (index_t base = 0; base < n; base += 2 * h) {
      double* b = a + 2 * base;
      butterfly2(b, b + 2 * h, 2 * h);
    }
  }
}

/// One strided radix-4 pass at stride h, executed by the enclosing OpenMP
/// team (orphaned `omp for`, implicit barrier). Work items are fixed-size
/// (group, j-chunk) tiles, so the partials layout — and with it the fused
/// expectation's summation order — is independent of the thread count.
static void top_pass_radix4(double* a, index_t n, index_t h, const double* obj,
                            double* part) {
  const index_t jchunk = min_i(h, kJChunk);
  const index_t cpg = h / jchunk;  // chunks per group
  const std::ptrdiff_t items =
      static_cast<std::ptrdiff_t>((n / (4 * h)) * cpg);
#pragma omp for schedule(static)
  for (std::ptrdiff_t it = 0; it < items; ++it) {
    const index_t g = static_cast<index_t>(it) / cpg;
    const index_t j0 = (static_cast<index_t>(it) % cpg) * jchunk;
    const index_t base = g * 4 * h + j0;
    double* a0 = a + 2 * base;
    if (obj != nullptr) {
      part[it] = butterfly4_expect(a0, a0 + 2 * h, a0 + 4 * h, a0 + 6 * h,
                                   obj + base, obj + base + h,
                                   obj + base + 2 * h, obj + base + 3 * h,
                                   2 * jchunk);
    } else {
      butterfly4(a0, a0 + 2 * h, a0 + 4 * h, a0 + 6 * h, 2 * jchunk);
    }
  }
}

static void top_pass_radix2(double* a, index_t n, index_t h, const double* obj,
                            double* part) {
  const index_t jchunk = min_i(h, kJChunk);
  const index_t cpg = h / jchunk;
  const std::ptrdiff_t items =
      static_cast<std::ptrdiff_t>((n / (2 * h)) * cpg);
#pragma omp for schedule(static)
  for (std::ptrdiff_t it = 0; it < items; ++it) {
    const index_t g = static_cast<index_t>(it) / cpg;
    const index_t j0 = (static_cast<index_t>(it) % cpg) * jchunk;
    const index_t base = g * 2 * h + j0;
    double* a0 = a + 2 * base;
    if (obj != nullptr) {
      part[it] = butterfly2_expect(a0, a0 + 2 * h, obj + base, obj + base + h,
                                   2 * jchunk);
    } else {
      butterfly2(a0, a0 + 2 * h, 2 * jchunk);
    }
  }
}

/// The blocked WHT driver behind all four dispatch entries:
///   [phase/scale] -> all butterfly stages -> [fused diag expectation].
/// Bottom stages (stride < 2^kLog2Block) run serially per contiguous block
/// inside one parallel region; top stages run as strided radix-4/2 passes
/// in the same region (one barrier per pass, no region relaunch).
static double wht_driver(cplx* av, const double* d, double angle, double scale,
                         const double* obj, index_t n) {
  double* a = dp(av);
  const bool prepass = d != nullptr || scale != 1.0;

  if (n <= kWhtSerial) {
    if (prepass) phase_scale_range(a, d, angle, scale, n);
    wht_serial_block(a, n);
    return obj != nullptr ? expect_range(a, obj, n) : 0.0;
  }

  const index_t bsize = index_t{1} << kLog2Block;
  const index_t nblocks = n >> kLog2Block;
  int top = 0;  // number of top radix-2 stages
  for (index_t m = bsize; m < n; m <<= 1) ++top;
  const int n4 = top / 2;
  const int n2 = top % 2;

  // Partials for the fused expectation live one-per-item of the final pass.
  index_t last_items = 0;
  double* part = nullptr;
  if (obj != nullptr) {
    index_t h_last;
    index_t groups;
    if (n2 != 0) {
      h_last = n >> 1;
      groups = n / (2 * h_last);
    } else {
      h_last = n >> 2;
      groups = n / (4 * h_last);
    }
    last_items = groups * (h_last / min_i(h_last, kJChunk));
    part = red_buffer(last_items);
  }

  double result = 0.0;
#pragma omp parallel
  {
    // Bottom: every stage with stride < bsize, one cache-resident block at
    // a time, with the phase/scale prepass fused in front.
#pragma omp for schedule(static)
    for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(nblocks);
         ++b) {
      const index_t off = static_cast<index_t>(b) * bsize;
      double* blk = a + 2 * off;
      if (prepass) {
        phase_scale_range(blk, d != nullptr ? d + off : nullptr, angle, scale,
                          bsize);
      }
      wht_serial_block(blk, bsize);
    }
    // Top: strided passes across the whole vector.
    index_t h = bsize;
    for (int p4 = 0; p4 < n4; ++p4) {
      const bool last = n2 == 0 && p4 == n4 - 1;
      top_pass_radix4(a, n, h, last ? obj : nullptr, part);
      h <<= 2;
    }
    if (n2 != 0) top_pass_radix2(a, n, h, obj, part);
  }
  if (obj != nullptr) {
    for (index_t i = 0; i < last_items; ++i) result += part[i];
  }
  return result;
}

static void k_wht(cplx* a, index_t n) {
  wht_driver(a, nullptr, 0.0, 1.0, nullptr, n);
}

static void k_phase_wht(cplx* a, const double* d, double angle, double scale,
                        index_t n) {
  wht_driver(a, d, angle, scale, nullptr, n);
}

static double k_wht_expect(cplx* a, const double* obj, index_t n) {
  return wht_driver(a, nullptr, 0.0, 1.0, obj, n);
}

static double k_phase_wht_expect(cplx* a, const double* d, double angle,
                                 double scale, const double* obj, index_t n) {
  return wht_driver(a, d, angle, scale, obj, n);
}

// ---------------------------------------------------------------------------
// Sharded WHT driver. The state is K contiguous shards of S = n/K elements
// (K a power of two, S a multiple of the bottom-block size). Viewing the
// state after the bottom pass as a (row, column) matrix — row = one
// 2^kLog2Block block, column = offset within a block — every top stage
// butterflies along rows with the column offset invariant, so:
//
//   * stages with row stride < S/bsize stay inside one shard. Pass B runs
//     ALL of them back-to-back on one (shard, column-chunk) tile while it is
//     cache-resident — one memory sweep instead of one per stage, and with
//     shard-major static scheduling each shard's tiles go to one contiguous
//     thread group (the per-shard team), all touching only that shard's
//     NUMA pages;
//   * the top log2(K) stages cross shards in pairs (shard s exchanges with
//     s XOR 2^t at cross stage t — the fixed hypercube schedule) and run as
//     classic full-width strided passes (Pass C);
//   * when obj is present, the LAST pass (radix-4 or radix-2, exactly as
//     the monolithic driver splits top into radix-4 pairs + optional
//     radix-2) is replayed verbatim from the monolithic code — same item
//     grid, same per-item serial accumulation, same partials layout, same
//     serial fold in item order (item order == shard order, since items are
//     laid out shard-major). Butterflies are elementwise and
//     association-fixed, so regrouping the earlier stages never changes any
//     bit; replaying the order-sensitive final reduction makes the result
//     bit-identical to the monolithic driver at ANY shard count.
//
// Degenerate geometries (shards <= 1, state at or below the serial
// threshold, n not divisible into block-aligned shards) delegate to
// wht_driver, so shards == 1 takes the exact pre-sharding code path.
// ---------------------------------------------------------------------------

/// Pass B: all shard-local top stages (radix-2 row strides 1 .. 2^(stages-1)
/// in block-row units) applied per (shard, column-chunk) tile, executed by
/// the enclosing OpenMP team. Stage pairs are fused radix-4 exactly like the
/// monolithic top passes pair them.
static void shard_local_top(double* a, index_t shard_elems, index_t shards,
                            int stages) {
  const index_t bsize = index_t{1} << kLog2Block;
  const index_t jw = min_i(bsize, index_t{256});  // column chunk (complex)
  const index_t cpb = bsize / jw;                 // chunks per block row
  const index_t rows = shard_elems >> kLog2Block;
  const std::ptrdiff_t items =
      static_cast<std::ptrdiff_t>(shards) * static_cast<std::ptrdiff_t>(cpb);
#pragma omp for schedule(static)
  for (std::ptrdiff_t it = 0; it < items; ++it) {
    const index_t s = static_cast<index_t>(it) / cpb;
    const index_t j0 = (static_cast<index_t>(it) % cpb) * jw;
    double* tile = a + 2 * (s * shard_elems + j0);
    index_t q = 1;  // row stride of the current stage
    int t = 0;
    for (; t + 2 <= stages; t += 2, q <<= 2) {
      for (index_t rb = 0; rb < rows; rb += 4 * q) {
        for (index_t rr = 0; rr < q; ++rr) {
          double* p0 = tile + 2 * (rb + rr) * bsize;
          butterfly4(p0, p0 + 2 * q * bsize, p0 + 4 * q * bsize,
                     p0 + 6 * q * bsize, 2 * jw);
        }
      }
    }
    if (t < stages) {
      for (index_t rb = 0; rb < rows; rb += 2 * q) {
        for (index_t rr = 0; rr < q; ++rr) {
          double* p0 = tile + 2 * (rb + rr) * bsize;
          butterfly2(p0, p0 + 2 * q * bsize, 2 * jw);
        }
      }
    }
  }
}

static double sharded_wht_driver(cplx* av, const double* d, double angle,
                                 double scale, const double* obj, index_t n,
                                 int shards) {
  const index_t bsize = index_t{1} << kLog2Block;
  if (shards <= 1 || n <= kWhtSerial ||
      n % static_cast<index_t>(shards) != 0 ||
      (n / static_cast<index_t>(shards)) % bsize != 0) {
    return wht_driver(av, d, angle, scale, obj, n);
  }
  double* a = dp(av);
  const bool prepass = d != nullptr || scale != 1.0;
  const index_t K = static_cast<index_t>(shards);
  const index_t S = n / K;  // elements per shard
  const index_t nblocks = n >> kLog2Block;

  int top = 0;  // number of top radix-2 stages
  for (index_t m = bsize; m < n; m <<= 1) ++top;
  const int n2 = top % 2;
  int c = 0;  // cross-shard stages (log2 K)
  for (index_t m = 1; m < K; m <<= 1) ++c;
  const int r = top - c;  // shard-local top stages
  // Stages claimed by the obj-carrying final pass (the monolithic driver
  // ends on a radix-2 pass when top is odd, a radix-4 pass when even).
  const int nf = obj != nullptr ? (n2 != 0 ? 1 : 2) : 0;
  const int local_end = r < top - nf ? r : top - nf;  // Pass B: [0, local_end)

  // Partials for the fused expectation — the monolithic layout, verbatim.
  index_t last_items = 0;
  double* part = nullptr;
  if (obj != nullptr) {
    index_t h_last;
    index_t groups;
    if (n2 != 0) {
      h_last = n >> 1;
      groups = n / (2 * h_last);
    } else {
      h_last = n >> 2;
      groups = n / (4 * h_last);
    }
    last_items = groups * (h_last / min_i(h_last, kJChunk));
    part = red_buffer(last_items);
  }

  double result = 0.0;
#pragma omp parallel
  {
    // Pass A: bottom blocks, the exact monolithic grid (shard-major static
    // schedule: each shard's blocks land on one contiguous thread group).
#pragma omp for schedule(static)
    for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(nblocks);
         ++b) {
      const index_t off = static_cast<index_t>(b) * bsize;
      double* blk = a + 2 * off;
      if (prepass) {
        phase_scale_range(blk, d != nullptr ? d + off : nullptr, angle, scale,
                          bsize);
      }
      wht_serial_block(blk, bsize);
    }
    // Pass B: every shard-local top stage not claimed by the final pass,
    // fused into one cache-resident sweep per (shard, column-chunk) tile.
    if (local_end > 0) shard_local_top(a, S, K, local_end);
    // Pass C: cross-shard exchange stages (hypercube schedule), excluding
    // the final-pass stages.
    for (int t = r; t < top - nf; ++t) {
      top_pass_radix2(a, n, bsize << t, nullptr, nullptr);
    }
    // Final pass: replay the monolithic driver's obj-carrying last pass.
    if (nf == 2) {
      top_pass_radix4(a, n, n >> 2, obj, part);
    } else if (nf == 1) {
      top_pass_radix2(a, n, n >> 1, obj, part);
    }
  }
  if (obj != nullptr) {
    for (index_t i = 0; i < last_items; ++i) result += part[i];
  }
  return result;
}

static void k_wht_sharded(cplx* a, index_t n, int shards) {
  sharded_wht_driver(a, nullptr, 0.0, 1.0, nullptr, n, shards);
}

static void k_phase_wht_sharded(cplx* a, const double* d, double angle,
                                double scale, index_t n, int shards) {
  sharded_wht_driver(a, d, angle, scale, nullptr, n, shards);
}

static double k_wht_expect_sharded(cplx* a, const double* obj, index_t n,
                                   int shards) {
  return sharded_wht_driver(a, nullptr, 0.0, 1.0, obj, n, shards);
}

static double k_phase_wht_expect_sharded(cplx* a, const double* d,
                                         double angle, double scale,
                                         const double* obj, index_t n,
                                         int shards) {
  return sharded_wht_driver(a, d, angle, scale, obj, n, shards);
}

// ---------------------------------------------------------------------------
// Batched WHT driver: `lanes` statevectors, lane l at av + l*stride, carried
// through the transform together so the d/obj tables are swept once per
// batch instead of once per lane, and so the strided top stages — separate
// full-vector passes in the single-state driver — collapse into one
// cache-resident pass.
//
// Per-lane bit-identity with `lanes` sequential wht_driver calls:
//   * the bottom pass and the butterflies are elementwise, so running them
//     block-outer/lane-inner or column-tiled reorders execution only, never
//     the association of any output element;
//   * the obj-carrying final pass keeps the single-state (group, j-chunk)
//     item layout and its serial in-item accumulation, with one partials row
//     per lane summed in item order.
// ---------------------------------------------------------------------------

/// One strided radix-4 pass over every lane (no fused expectation): the
/// classic (group, j-chunk) items of top_pass_radix4, crossed with the lane
/// index, executed by the enclosing OpenMP team. h in complex elements.
static void batch_top_pass_radix4(double* base, index_t stride, int lanes,
                                  index_t n, index_t h) {
  const index_t jchunk = min_i(h, kJChunk);
  const index_t cpg = h / jchunk;
  const index_t items = (n / (4 * h)) * cpg;
  const std::ptrdiff_t jobs =
      static_cast<std::ptrdiff_t>(items) * static_cast<std::ptrdiff_t>(lanes);
#pragma omp for schedule(static)
  for (std::ptrdiff_t jt = 0; jt < jobs; ++jt) {
    const int l = static_cast<int>(jt % lanes);
    const index_t it = static_cast<index_t>(jt) / static_cast<index_t>(lanes);
    const index_t g = it / cpg;
    const index_t j0 = (it % cpg) * jchunk;
    const index_t off = g * 4 * h + j0;
    double* a0 = base + 2 * (stride * static_cast<index_t>(l) + off);
    butterfly4(a0, a0 + 2 * h, a0 + 4 * h, a0 + 6 * h, 2 * jchunk);
  }
}

static void batch_top_pass_radix2(double* base, index_t stride, int lanes,
                                  index_t n, index_t h) {
  const index_t jchunk = min_i(h, kJChunk);
  const index_t cpg = h / jchunk;
  const index_t items = (n / (2 * h)) * cpg;
  const std::ptrdiff_t jobs =
      static_cast<std::ptrdiff_t>(items) * static_cast<std::ptrdiff_t>(lanes);
#pragma omp for schedule(static)
  for (std::ptrdiff_t jt = 0; jt < jobs; ++jt) {
    const int l = static_cast<int>(jt % lanes);
    const index_t it = static_cast<index_t>(jt) / static_cast<index_t>(lanes);
    const index_t g = it / cpg;
    const index_t j0 = (it % cpg) * jchunk;
    const index_t off = g * 2 * h + j0;
    double* a0 = base + 2 * (stride * static_cast<index_t>(l) + off);
    butterfly2(a0, a0 + 2 * h, 2 * jchunk);
  }
}

/// Copy 2*n doubles (n complex) — the fused per-block lane initialization.
static inline void copy_range(double* dst, const double* src, index_t n) {
  const index_t n2 = 2 * n;
#pragma omp simd
  for (index_t i = 0; i < n2; ++i) dst[i] = src[i];
}

static void batch_wht_driver(cplx* av, index_t stride, int lanes,
                             const cplx* initv, const double* d,
                             const QuantizedDiag* dq, const double* angles,
                             double scale, const double* obj, double* out,
                             index_t n) {
  if (lanes <= 1) {
    if (initv != nullptr) copy_range(dp(av), dp(initv), n);
    const double r =
        wht_driver(av, d, angles != nullptr ? angles[0] : 0.0, scale, obj, n);
    if (out != nullptr) out[0] = r;
    return;
  }
  double* base = dp(av);
  const double* src = initv != nullptr ? dp(initv) : nullptr;
  const bool prepass = d != nullptr || scale != 1.0;

  // Quantized phase route: one sincos per distinct d value per lane instead
  // of one per element, applied by lookup (bit-safe phase ranges only — see
  // build_phase_tables).
  // Reference backend, small transforms only: the quantized factors are the
  // same doubles the per-element sweep computes, but the serial driver's
  // application loop and phase_lookup_range are separately compiled loops
  // whose FMA contraction the compiler resolves per call site — the blocked
  // path's block-sized phase_scale_range clone matches the lookup loop, the
  // serial path's general clone does not. Below the blocking threshold the
  // lanes therefore run the exact per-element function the sequential
  // driver calls instead of the lookup.
  const bool quantize_ok = FQ_KERNEL_FAST_SINCOS != 0 || n > kWhtSerial;
  const bool scale_one = scale == 1.0;
  const double* qtab = nullptr;
  const std::uint16_t* qidx = nullptr;
  index_t qnv = 0;
  if (quantize_ok && d != nullptr && angles != nullptr && dq != nullptr &&
      dq->idx != nullptr && dq->vals != nullptr && dq->nv > 0 &&
      dq->nv <= kQuantizedDiagMax && n >= 64) {
    qtab = build_phase_tables(dq->vals, dq->nv, angles, lanes, scale);
    if (qtab != nullptr) {
      qidx = dq->idx;
      qnv = dq->nv;
    }
  }

  if (n <= kWhtSerial) {
    // Small transforms: whole lanes are independent serial work items.
#pragma omp parallel for schedule(static)
    for (int l = 0; l < lanes; ++l) {
      double* a = base + 2 * stride * static_cast<index_t>(l);
      if (src != nullptr) copy_range(a, src, n);
      if (qtab != nullptr) {
        phase_lookup_range(a, qidx, qtab + 2 * qnv * static_cast<index_t>(l),
                           scale_one, n);
      } else if (prepass) {
        phase_scale_range(a, d, angles != nullptr ? angles[l] : 0.0, scale, n);
      }
      wht_serial_block(a, n);
      if (obj != nullptr) out[l] = expect_range(a, obj, n);
    }
    return;
  }

  const index_t bsize = index_t{1} << kLog2Block;
  const index_t nblocks = n >> kLog2Block;
  int top = 0;  // number of top radix-2 stages
  for (index_t m = bsize; m < n; m <<= 1) ++top;
  const int n4 = top / 2;
  const int n2 = top % 2;

  // The obj-carrying final pass cannot be regrouped (its in-item
  // accumulation order is part of the bit contract), so the fused/strided
  // machinery below covers every top stage except that one; with no obj it
  // covers them all.
  const int tile_n4 = obj == nullptr || n2 != 0 ? n4 : n4 - 1;
  const bool tile_n2 = obj == nullptr && n2 != 0;

  // Rows (= bottom blocks) per fused group. A radix-4 top stage at row
  // stride hb only mixes rows within an aligned window of 4*hb consecutive
  // rows, so the leading top stages with 4*hb <= gr can run right after the
  // bottom stages on one contiguous gr-row slab while it is cache-resident:
  // 64 rows x 64 KiB = 4 MiB absorbs the first three radix-4 stages (row
  // strides 1, 4, 16) into one slab visit. Within the slab, 16-row windows
  // (1 MiB, L2-resident) run the bottom stages plus the first two radix-4
  // stages back-to-back, so only the stride-16 stage touches the slab at
  // last-level-cache speed.
  const index_t gr = min_i(nblocks, index_t{64});
  int m4 = 0;  // leading radix-4 stages fused into the bottom pass
  while (m4 < tile_n4 && (index_t{1} << (2 * (m4 + 1))) <= gr) ++m4;

  // Partials for the fused expectation: one row of final-pass items per lane.
  index_t last_items = 0;
  double* part = nullptr;
  if (obj != nullptr) {
    index_t h_last;
    index_t groups;
    if (n2 != 0) {
      h_last = n >> 1;
      groups = n / (2 * h_last);
    } else {
      h_last = n >> 2;
      groups = n / (4 * h_last);
    }
    last_items = groups * (h_last / min_i(h_last, kJChunk));
    part = red_buffer(static_cast<index_t>(lanes) * last_items);
  }

#pragma omp parallel
  {
    // Bottom + leading top stages: each job owns one contiguous gr-row slab
    // of one lane, runs the phase prepass, all bottom stages, and the first
    // m4 radix-4 top stages on it back-to-back. Lane is the fast axis so
    // consecutive jobs reuse the same d-table window while it is cache-hot.
    const index_t ngroups = nblocks / gr;
    const std::ptrdiff_t bjobs = static_cast<std::ptrdiff_t>(ngroups) *
                                 static_cast<std::ptrdiff_t>(lanes);
#pragma omp for schedule(static)
    for (std::ptrdiff_t jt = 0; jt < bjobs; ++jt) {
      const index_t g = static_cast<index_t>(jt) / static_cast<index_t>(lanes);
      const int l = static_cast<int>(jt % lanes);
      const index_t row0 = g * gr;
      double* slab = base + 2 * (stride * static_cast<index_t>(l) +
                                 row0 * bsize);
      const index_t wr = min_i(gr, index_t{16});  // L2-resident window rows
      int m4w = 0;  // leading radix-4 stages that fit a wr-row window
      while (m4w < m4 && (index_t{1} << (2 * (m4w + 1))) <= wr) ++m4w;
      for (index_t w = 0; w < gr; w += wr) {
        for (index_t b = 0; b < wr; ++b) {
          const index_t off = (row0 + w + b) * bsize;
          double* blk = base + 2 * (stride * static_cast<index_t>(l) + off);
          if (src != nullptr) copy_range(blk, src + 2 * off, bsize);
          if (qtab != nullptr) {
            phase_lookup_range(blk, qidx + off,
                               qtab + 2 * qnv * static_cast<index_t>(l),
                               scale_one, bsize);
          } else if (prepass) {
            phase_scale_range(blk, d != nullptr ? d + off : nullptr,
                              angles != nullptr ? angles[l] : 0.0, scale,
                              bsize);
          }
          wht_serial_block(blk, bsize);
        }
        double* wbase = slab + 2 * w * bsize;
        index_t hb = 1;
        for (int s = 0; s < m4w; ++s) {
          for (index_t gb = 0; gb < wr; gb += 4 * hb) {
            for (index_t j = 0; j < hb; ++j) {
              double* p0 = wbase + 2 * (gb + j) * bsize;
              butterfly4(p0, p0 + 2 * hb * bsize, p0 + 4 * hb * bsize,
                         p0 + 6 * hb * bsize, 2 * bsize);
            }
          }
          hb <<= 2;
        }
      }
      index_t hb = index_t{1} << (2 * m4w);
      for (int s = m4w; s < m4; ++s) {
        for (index_t gb = 0; gb < gr; gb += 4 * hb) {
          for (index_t j = 0; j < hb; ++j) {
            double* p0 = slab + 2 * (gb + j) * bsize;
            butterfly4(p0, p0 + 2 * hb * bsize, p0 + 4 * hb * bsize,
                       p0 + 6 * hb * bsize, 2 * bsize);
          }
        }
        hb <<= 2;
      }
    }
    // Remaining non-final top stages: classic strided passes across every
    // lane (one barrier per stage, no region relaunch).
    {
      index_t h = bsize << (2 * m4);
      for (int s = m4; s < tile_n4; ++s) {
        batch_top_pass_radix4(base, stride, lanes, n, h);
        h <<= 2;
      }
      if (tile_n2) batch_top_pass_radix2(base, stride, lanes, n, h);
    }
    // Final obj-carrying pass: classic item layout, item-outer/lane-inner so
    // each item's obj window is read once per batch.
    if (obj != nullptr) {
      if (n2 != 0) {
        const index_t h = n >> 1;
        const index_t jchunk = min_i(h, kJChunk);
        const index_t cpg = h / jchunk;
        const std::ptrdiff_t items =
            static_cast<std::ptrdiff_t>((n / (2 * h)) * cpg);
#pragma omp for schedule(static)
        for (std::ptrdiff_t it = 0; it < items; ++it) {
          const index_t g = static_cast<index_t>(it) / cpg;
          const index_t j0 = (static_cast<index_t>(it) % cpg) * jchunk;
          const index_t off = g * 2 * h + j0;
          for (int l = 0; l < lanes; ++l) {
            double* a0 = base + 2 * (stride * static_cast<index_t>(l) + off);
            part[static_cast<index_t>(l) * last_items +
                 static_cast<index_t>(it)] =
                butterfly2_expect(a0, a0 + 2 * h, obj + off, obj + off + h,
                                  2 * jchunk);
          }
        }
      } else {
        const index_t h = n >> 2;
        const index_t jchunk = min_i(h, kJChunk);
        const index_t cpg = h / jchunk;
        const std::ptrdiff_t items =
            static_cast<std::ptrdiff_t>((n / (4 * h)) * cpg);
#pragma omp for schedule(static)
        for (std::ptrdiff_t it = 0; it < items; ++it) {
          const index_t g = static_cast<index_t>(it) / cpg;
          const index_t j0 = (static_cast<index_t>(it) % cpg) * jchunk;
          const index_t off = g * 4 * h + j0;
          for (int l = 0; l < lanes; ++l) {
            double* a0 = base + 2 * (stride * static_cast<index_t>(l) + off);
            part[static_cast<index_t>(l) * last_items +
                 static_cast<index_t>(it)] =
                butterfly4_expect(a0, a0 + 2 * h, a0 + 4 * h, a0 + 6 * h,
                                  obj + off, obj + off + h, obj + off + 2 * h,
                                  obj + off + 3 * h, 2 * jchunk);
          }
        }
      }
    }
  }
  if (obj != nullptr) {
    for (int l = 0; l < lanes; ++l) {
      const double* pl = part + static_cast<index_t>(l) * last_items;
      double acc = 0.0;
      for (index_t i = 0; i < last_items; ++i) acc += pl[i];
      out[l] = acc;
    }
  }
}

static void k_phase_wht_batch(cplx* a, index_t stride, int lanes,
                              const cplx* init, const double* d,
                              const QuantizedDiag* dq, const double* angles,
                              double scale, index_t n) {
  batch_wht_driver(a, stride, lanes, init, d, dq, angles, scale, nullptr,
                   nullptr, n);
}

static void k_wht_expect_batch(cplx* a, index_t stride, int lanes,
                               const double* obj, double* out, index_t n) {
  batch_wht_driver(a, stride, lanes, nullptr, nullptr, nullptr, nullptr, 1.0,
                   obj, out, n);
}

static void k_phase_wht_expect_batch(cplx* a, index_t stride, int lanes,
                                     const double* d, const QuantizedDiag* dq,
                                     const double* angles, double scale,
                                     const double* obj, double* out,
                                     index_t n) {
  batch_wht_driver(a, stride, lanes, nullptr, d, dq, angles, scale, obj, out,
                   n);
}

// ---------------------------------------------------------------------------
// Sharded batched driver. With shards engaged, lanes run sequentially
// through the sharded single-state driver: the batched driver's per-lane
// contract is bit-identity with `lanes` sequential single-state calls, and
// the sharded single driver is bit-identical to the single-state driver, so
// this composition preserves the batch contract exactly while keeping each
// 2^n sweep NUMA-local. (At large n — the only regime where sharding
// engages — one statevector already saturates memory bandwidth, so
// lane-sequential costs nothing; the batched slab/lane tiling exists for
// the many-small-lanes regime, which delegates below.)
// ---------------------------------------------------------------------------

static void sharded_batch_wht_driver(cplx* av, index_t stride, int lanes,
                                     const cplx* initv, const double* d,
                                     const QuantizedDiag* dq,
                                     const double* angles, double scale,
                                     const double* obj, double* out, index_t n,
                                     int shards) {
  const index_t bsize = index_t{1} << kLog2Block;
  if (shards <= 1 || n <= kWhtSerial ||
      n % static_cast<index_t>(shards) != 0 ||
      (n / static_cast<index_t>(shards)) % bsize != 0) {
    batch_wht_driver(av, stride, lanes, initv, d, dq, angles, scale, obj, out,
                     n);
    return;
  }
  const index_t nblocks = n >> kLog2Block;
  for (int l = 0; l < lanes; ++l) {
    cplx* a = av + stride * static_cast<index_t>(l);
    if (initv != nullptr) {
      double* pa = dp(a);
      const double* ps = dp(initv);
#pragma omp parallel for schedule(static)
      for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(nblocks);
           ++b) {
        const index_t off = static_cast<index_t>(b) * bsize;
        copy_range(pa + 2 * off, ps + 2 * off, bsize);
      }
    }
    const double r = sharded_wht_driver(
        a, d, angles != nullptr ? angles[l] : 0.0, scale, obj, n, shards);
    if (out != nullptr) out[l] = r;
  }
}

static void k_phase_wht_batch_sharded(cplx* a, index_t stride, int lanes,
                                      const cplx* init, const double* d,
                                      const QuantizedDiag* dq,
                                      const double* angles, double scale,
                                      index_t n, int shards) {
  sharded_batch_wht_driver(a, stride, lanes, init, d, dq, angles, scale,
                           nullptr, nullptr, n, shards);
}

static void k_wht_expect_batch_sharded(cplx* a, index_t stride, int lanes,
                                       const double* obj, double* out,
                                       index_t n, int shards) {
  sharded_batch_wht_driver(a, stride, lanes, nullptr, nullptr, nullptr,
                           nullptr, 1.0, obj, out, n, shards);
}

static void k_phase_wht_expect_batch_sharded(
    cplx* a, index_t stride, int lanes, const double* d,
    const QuantizedDiag* dq, const double* angles, double scale,
    const double* obj, double* out, index_t n, int shards) {
  sharded_batch_wht_driver(a, stride, lanes, nullptr, d, dq, angles, scale,
                           obj, out, n, shards);
}

// ---------------------------------------------------------------------------
// Elementwise kernels: serial below kEwSerial, one parallel region above.
// ---------------------------------------------------------------------------

static void k_diag_phase(cplx* psi, const double* d, double angle,
                         index_t n) {
  double* p = dp(psi);
  if (n <= kEwSerial) {
    phase_scale_range(p, d, angle, 1.0, n);
    return;
  }
  const std::ptrdiff_t chunks = static_cast<std::ptrdiff_t>(
      (n + kPhaseChunk - 1) / kPhaseChunk);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t ch = 0; ch < chunks; ++ch) {
    const index_t i0 = static_cast<index_t>(ch) * kPhaseChunk;
    const index_t m = min_i(kPhaseChunk, n - i0);
    phase_scale_range(p + 2 * i0, d + i0, angle, 1.0, m);
  }
}

static void k_diag_mul(cplx* psi, const double* d, double s, index_t n) {
  double* p = dp(psi);
  if (n <= kEwSerial) {
    for (index_t i = 0; i < n; ++i) {
      const double f = d[i] * s;
      p[2 * i] *= f;
      p[2 * i + 1] *= f;
    }
    return;
  }
#pragma omp parallel for simd schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    const double f = d[i] * s;
    p[2 * i] *= f;
    p[2 * i + 1] *= f;
  }
}

static void k_scale(cplx* v, double sr, double si, index_t n) {
  double* p = dp(v);
  if (n <= kEwSerial) {
    for (index_t i = 0; i < n; ++i) {
      const double re = p[2 * i];
      const double im = p[2 * i + 1];
      p[2 * i] = re * sr - im * si;
      p[2 * i + 1] = re * si + im * sr;
    }
    return;
  }
#pragma omp parallel for simd schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    const double re = p[2 * i];
    const double im = p[2 * i + 1];
    p[2 * i] = re * sr - im * si;
    p[2 * i + 1] = re * si + im * sr;
  }
}

static void k_scale_real(cplx* v, double s, index_t n) {
  double* p = dp(v);
  const index_t n2 = 2 * n;
  if (n <= kEwSerial) {
#pragma omp simd
    for (index_t i = 0; i < n2; ++i) p[i] *= s;
    return;
  }
#pragma omp parallel for simd schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n2); ++i) {
    p[i] *= s;
  }
}

static void k_copy_scale(cplx* dst, const cplx* src, double s, index_t n) {
  double* q = dp(dst);
  const double* p = dp(src);
  const index_t n2 = 2 * n;
  if (n <= kEwSerial) {
#pragma omp simd
    for (index_t i = 0; i < n2; ++i) q[i] = p[i] * s;
    return;
  }
#pragma omp parallel for simd schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n2); ++i) {
    q[i] = p[i] * s;
  }
}

static void k_fill(cplx* v, double re, double im, index_t n) {
  double* p = dp(v);
  if (n <= kEwSerial) {
    for (index_t i = 0; i < n; ++i) {
      p[2 * i] = re;
      p[2 * i + 1] = im;
    }
    return;
  }
#pragma omp parallel for simd schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    p[2 * i] = re;
    p[2 * i + 1] = im;
  }
}

static void k_add_const(cplx* v, double re, double im, index_t n) {
  double* p = dp(v);
  if (n <= kEwSerial) {
    for (index_t i = 0; i < n; ++i) {
      p[2 * i] += re;
      p[2 * i + 1] += im;
    }
    return;
  }
#pragma omp parallel for simd schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    p[2 * i] += re;
    p[2 * i + 1] += im;
  }
}

static void k_axpy(double ar, double ai, const cplx* x, cplx* y, index_t n) {
  const double* px = dp(x);
  double* py = dp(y);
  if (n <= kEwSerial) {
    for (index_t i = 0; i < n; ++i) {
      const double xr = px[2 * i];
      const double xi = px[2 * i + 1];
      py[2 * i] += ar * xr - ai * xi;
      py[2 * i + 1] += ar * xi + ai * xr;
    }
    return;
  }
#pragma omp parallel for simd schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    const double xr = px[2 * i];
    const double xi = px[2 * i + 1];
    py[2 * i] += ar * xr - ai * xi;
    py[2 * i + 1] += ar * xi + ai * xr;
  }
}

static void k_cheb_recur(cplx* t_next, const cplx* t_prev, double two_inv_r,
                         index_t n) {
  double* pn = dp(t_next);
  const double* pp = dp(t_prev);
  const index_t n2 = 2 * n;
  if (n <= kEwSerial) {
#pragma omp simd
    for (index_t i = 0; i < n2; ++i) pn[i] = two_inv_r * pn[i] - pp[i];
    return;
  }
#pragma omp parallel for simd schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n2); ++i) {
    pn[i] = two_inv_r * pn[i] - pp[i];
  }
}

// ---------------------------------------------------------------------------
// Fixed-order reductions. One partial per kRedBlock elements, partials
// summed in block order: thread-count invariant per backend.
// ---------------------------------------------------------------------------

static double nsq_range(const double* p, index_t i0, index_t i1) {
  const cplx* q = reinterpret_cast<const cplx*>(p);
  double acc = 0.0;
#pragma omp simd reduction(+ : acc)
  for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(i0);
       i < static_cast<std::ptrdiff_t>(i1); ++i)
    acc += std::norm(q[i]);
  return acc;
}

static double k_norm_sq(const cplx* v, index_t n) {
  const double* p = dp(v);
  if (n <= kRedSerial) return nsq_range(p, 0, n);
  const index_t nb = (n + kRedBlock - 1) / kRedBlock;
  double* part = red_buffer(nb);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(nb); ++b) {
    const index_t i0 = static_cast<index_t>(b) * kRedBlock;
    part[b] = nsq_range(p, i0, min_i(i0 + kRedBlock, n));
  }
  double acc = 0.0;
  for (index_t b = 0; b < nb; ++b) acc += part[b];
  return acc;
}

static void dot_range(const double* px, const double* py, index_t i0,
                      index_t i1, double* out_re, double* out_im) {
  double re = 0.0;
  double im = 0.0;
  // conj(x)*y with the fused-multiply pattern of the compiled std::complex
  // product (round the xi cross terms, fuse the xr ones): keeps the serial
  // bits of the pre-dispatch reduction loop.
  for (index_t i = i0; i < i1; ++i) {
    const double xr = px[2 * i];
    const double xi = px[2 * i + 1];
    const double yr = py[2 * i];
    const double yi = py[2 * i + 1];
    re += std::fma(xr, yr, xi * yi);
    im += std::fma(xr, yi, -(xi * yr));
  }
  *out_re = re;
  *out_im = im;
}

static CplxSum k_dot(const cplx* x, const cplx* y, index_t n) {
  const double* px = dp(x);
  const double* py = dp(y);
  CplxSum out;
  if (n <= kRedSerial) {
    dot_range(px, py, 0, n, &out.re, &out.im);
    return out;
  }
  const index_t nb = (n + kRedBlock - 1) / kRedBlock;
  double* part = red_buffer(2 * nb);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(nb); ++b) {
    const index_t i0 = static_cast<index_t>(b) * kRedBlock;
    dot_range(px, py, i0, min_i(i0 + kRedBlock, n), &part[2 * b],
              &part[2 * b + 1]);
  }
  for (index_t b = 0; b < nb; ++b) {
    out.re += part[2 * b];
    out.im += part[2 * b + 1];
  }
  return out;
}

static void vsum_range(const double* p, index_t i0, index_t i1,
                       double* out_re, double* out_im) {
  double re = 0.0;
  double im = 0.0;
#pragma omp simd reduction(+ : re, im)
  for (index_t i = i0; i < i1; ++i) {
    re += p[2 * i];
    im += p[2 * i + 1];
  }
  *out_re = re;
  *out_im = im;
}

static CplxSum k_vsum(const cplx* v, index_t n) {
  const double* p = dp(v);
  CplxSum out;
  if (n <= kRedSerial) {
    vsum_range(p, 0, n, &out.re, &out.im);
    return out;
  }
  const index_t nb = (n + kRedBlock - 1) / kRedBlock;
  double* part = red_buffer(2 * nb);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(nb); ++b) {
    const index_t i0 = static_cast<index_t>(b) * kRedBlock;
    vsum_range(p, i0, min_i(i0 + kRedBlock, n), &part[2 * b],
               &part[2 * b + 1]);
  }
  for (index_t b = 0; b < nb; ++b) {
    out.re += part[2 * b];
    out.im += part[2 * b + 1];
  }
  return out;
}

static double dexp_range(const double* d, const double* p, index_t i0,
                         index_t i1) {
  const cplx* q = reinterpret_cast<const cplx*>(p);
  double acc = 0.0;
#pragma omp simd reduction(+ : acc)
  for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(i0);
       i < static_cast<std::ptrdiff_t>(i1); ++i)
    acc += d[i] * std::norm(q[i]);
  return acc;
}

static double k_diag_expectation(const double* d, const cplx* psi,
                                 index_t n) {
  const double* p = dp(psi);
  if (n <= kRedSerial) return dexp_range(d, p, 0, n);
  const index_t nb = (n + kRedBlock - 1) / kRedBlock;
  double* part = red_buffer(nb);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(nb); ++b) {
    const index_t i0 = static_cast<index_t>(b) * kRedBlock;
    part[b] = dexp_range(d, p, i0, min_i(i0 + kRedBlock, n));
  }
  double acc = 0.0;
  for (index_t b = 0; b < nb; ++b) acc += part[b];
  return acc;
}

static double dbi_range(const double* pl, const double* d, const double* pp,
                        index_t i0, index_t i1) {
  double acc = 0.0;
  // Im(conj(l)*p) with the same fused pattern as dot_range, folded into the
  // accumulator the way the pre-dispatch loop contracted it.
  for (index_t i = i0; i < i1; ++i) {
    const double lr = pl[2 * i];
    const double li = pl[2 * i + 1];
    const double pr = pp[2 * i];
    const double pi = pp[2 * i + 1];
    acc = std::fma(d[i], std::fma(lr, pi, -(li * pr)), acc);
  }
  return acc;
}

static double k_diag_bracket_imag(const cplx* lambda, const double* d,
                                  const cplx* psi, index_t n) {
  const double* pl = dp(lambda);
  const double* pp = dp(psi);
  if (n <= kRedSerial) return dbi_range(pl, d, pp, 0, n);
  const index_t nb = (n + kRedBlock - 1) / kRedBlock;
  double* part = red_buffer(nb);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(nb); ++b) {
    const index_t i0 = static_cast<index_t>(b) * kRedBlock;
    part[b] = dbi_range(pl, d, pp, i0, min_i(i0 + kRedBlock, n));
  }
  double acc = 0.0;
  for (index_t b = 0; b < nb; ++b) acc += part[b];
  return acc;
}

static double mad_range(const double* pv, const double* pw, index_t i0,
                        index_t i1) {
  double m = 0.0;
#pragma omp simd reduction(max : m)
  for (index_t i = i0; i < i1; ++i) {
    const double dr = pv[2 * i] - pw[2 * i];
    const double di = pv[2 * i + 1] - pw[2 * i + 1];
    const double nsq = dr * dr + di * di;
    if (nsq > m) m = nsq;
  }
  return m;
}

static double k_max_abs_diff(const cplx* v, const cplx* w, index_t n) {
  const double* pv = dp(v);
  const double* pw = dp(w);
  double m = 0.0;
  if (n <= kRedSerial) {
    m = mad_range(pv, pw, 0, n);
  } else {
    const index_t nb = (n + kRedBlock - 1) / kRedBlock;
    double* part = red_buffer(nb);
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t b = 0; b < static_cast<std::ptrdiff_t>(nb); ++b) {
      const index_t i0 = static_cast<index_t>(b) * kRedBlock;
      part[b] = mad_range(pv, pw, i0, min_i(i0 + kRedBlock, n));
    }
    for (index_t b = 0; b < nb; ++b) {
      if (part[b] > m) m = part[b];
    }
  }
  return std::sqrt(m);  // max of |.|^2 then one sqrt: exact, monotone
}

// ---------------------------------------------------------------------------
// Dense GEMV. Row-parallel forms reduce each row serially (deterministic at
// any thread count); transpose/adjoint forms block over columns so threads
// never share an output element, with rows streamed in order per block.
// ---------------------------------------------------------------------------

static inline void gemv_real_row(const double* arow, const double* px,
                                 index_t cols, double* py) {
  double re = 0.0;
  double im = 0.0;
#pragma omp simd reduction(+ : re, im)
  for (index_t c = 0; c < cols; ++c) {
    re += arow[c] * px[2 * c];
    im += arow[c] * px[2 * c + 1];
  }
  py[0] = re;
  py[1] = im;
}

static void k_gemv_real(const double* a, index_t rows, index_t cols,
                        const cplx* x, cplx* y) {
  const double* px = dp(x);
  double* py = dp(y);
  if (rows * cols <= kGemvSerial) {
    for (index_t r = 0; r < rows; ++r) {
      gemv_real_row(a + r * cols, px, cols, py + 2 * r);
    }
    return;
  }
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(rows); ++r) {
    gemv_real_row(a + static_cast<index_t>(r) * cols, px, cols, py + 2 * r);
  }
}

static inline void gemv_real_t_block(const double* a, index_t rows,
                                     index_t cols, const double* px,
                                     double* py, index_t c0, index_t c1) {
  for (index_t c = c0; c < c1; ++c) {
    py[2 * c] = 0.0;
    py[2 * c + 1] = 0.0;
  }
  for (index_t r = 0; r < rows; ++r) {
    const double* arow = a + r * cols;
    const double xr = px[2 * r];
    const double xi = px[2 * r + 1];
#pragma omp simd
    for (index_t c = c0; c < c1; ++c) {
      py[2 * c] += arow[c] * xr;
      py[2 * c + 1] += arow[c] * xi;
    }
  }
}

static void k_gemv_real_t(const double* a, index_t rows, index_t cols,
                          const cplx* x, cplx* y) {
  const double* px = dp(x);
  double* py = dp(y);
  const index_t block = 256;
  if (rows * cols <= kGemvSerial) {
    for (index_t c0 = 0; c0 < cols; c0 += block) {
      gemv_real_t_block(a, rows, cols, px, py, c0, min_i(c0 + block, cols));
    }
    return;
  }
  const std::ptrdiff_t nblocks =
      static_cast<std::ptrdiff_t>((cols + block - 1) / block);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t b = 0; b < nblocks; ++b) {
    const index_t c0 = static_cast<index_t>(b) * block;
    gemv_real_t_block(a, rows, cols, px, py, c0, min_i(c0 + block, cols));
  }
}

static inline void gemv_cplx_row(const double* arow, const double* px,
                                 index_t cols, double* py, bool conj_a) {
  double re = 0.0;
  double im = 0.0;
  const double sgn = conj_a ? -1.0 : 1.0;
#pragma omp simd reduction(+ : re, im)
  for (index_t c = 0; c < cols; ++c) {
    const double ar = arow[2 * c];
    const double ai = sgn * arow[2 * c + 1];
    const double xr = px[2 * c];
    const double xi = px[2 * c + 1];
    re += ar * xr - ai * xi;
    im += ar * xi + ai * xr;
  }
  py[0] = re;
  py[1] = im;
}

static void k_gemv_cplx(const cplx* a, index_t rows, index_t cols,
                        const cplx* x, cplx* y) {
  const double* pa = dp(a);
  const double* px = dp(x);
  double* py = dp(y);
  if (rows * cols <= kGemvSerial) {
    for (index_t r = 0; r < rows; ++r) {
      gemv_cplx_row(pa + 2 * r * cols, px, cols, py + 2 * r, false);
    }
    return;
  }
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t r = 0; r < static_cast<std::ptrdiff_t>(rows); ++r) {
    gemv_cplx_row(pa + 2 * static_cast<index_t>(r) * cols, px, cols,
                  py + 2 * r, false);
  }
}

static inline void gemv_cplx_adj_block(const double* pa, index_t rows,
                                       index_t cols, const double* px,
                                       double* py, index_t c0, index_t c1) {
  for (index_t c = c0; c < c1; ++c) {
    py[2 * c] = 0.0;
    py[2 * c + 1] = 0.0;
  }
  for (index_t r = 0; r < rows; ++r) {
    const double* arow = pa + 2 * r * cols;
    const double xr = px[2 * r];
    const double xi = px[2 * r + 1];
#pragma omp simd
    for (index_t c = c0; c < c1; ++c) {
      const double ar = arow[2 * c];
      const double ai = -arow[2 * c + 1];  // conj(A)
      py[2 * c] += ar * xr - ai * xi;
      py[2 * c + 1] += ar * xi + ai * xr;
    }
  }
}

static void k_gemv_cplx_adj(const cplx* a, index_t rows, index_t cols,
                            const cplx* x, cplx* y) {
  const double* pa = dp(a);
  const double* px = dp(x);
  double* py = dp(y);
  const index_t block = 256;
  if (rows * cols <= kGemvSerial) {
    for (index_t c0 = 0; c0 < cols; c0 += block) {
      gemv_cplx_adj_block(pa, rows, cols, px, py, c0, min_i(c0 + block, cols));
    }
    return;
  }
  const std::ptrdiff_t nblocks =
      static_cast<std::ptrdiff_t>((cols + block - 1) / block);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t b = 0; b < nblocks; ++b) {
    const index_t c0 = static_cast<index_t>(b) * block;
    gemv_cplx_adj_block(pa, rows, cols, px, py, c0, min_i(c0 + block, cols));
  }
}

// ---------------------------------------------------------------------------
// Registration: the one externally visible symbol of each backend TU.
// ---------------------------------------------------------------------------

inline KernelBackend make_backend(const char* name) {
  KernelBackend b{};
  b.name = name;
  b.wht = k_wht;
  b.phase_wht = k_phase_wht;
  b.wht_expect = k_wht_expect;
  b.phase_wht_expect = k_phase_wht_expect;
  b.wht_sharded = k_wht_sharded;
  b.phase_wht_sharded = k_phase_wht_sharded;
  b.wht_expect_sharded = k_wht_expect_sharded;
  b.phase_wht_expect_sharded = k_phase_wht_expect_sharded;
  b.phase_wht_batch_sharded = k_phase_wht_batch_sharded;
  b.wht_expect_batch_sharded = k_wht_expect_batch_sharded;
  b.phase_wht_expect_batch_sharded = k_phase_wht_expect_batch_sharded;
  b.phase_wht_batch = k_phase_wht_batch;
  b.wht_expect_batch = k_wht_expect_batch;
  b.phase_wht_expect_batch = k_phase_wht_expect_batch;
  b.diag_phase = k_diag_phase;
  b.diag_mul = k_diag_mul;
  b.scale = k_scale;
  b.scale_real = k_scale_real;
  b.copy_scale = k_copy_scale;
  b.fill = k_fill;
  b.add_const = k_add_const;
  b.axpy = k_axpy;
  b.cheb_recur = k_cheb_recur;
  b.dot = k_dot;
  b.norm_sq = k_norm_sq;
  b.vsum = k_vsum;
  b.diag_expectation = k_diag_expectation;
  b.diag_bracket_imag = k_diag_bracket_imag;
  b.max_abs_diff = k_max_abs_diff;
  b.gemv_real = k_gemv_real;
  b.gemv_real_t = k_gemv_real_t;
  b.gemv_cplx = k_gemv_cplx;
  b.gemv_cplx_adj = k_gemv_cplx_adj;
  return b;
}

}  // namespace FQ_KERNEL_NAMESPACE
}  // namespace fastqaoa::linalg::kernels
