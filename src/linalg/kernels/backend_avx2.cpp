// AVX2 backend. This TU is compiled with -mavx2 -mfma when the compiler
// supports them (FASTQAOA_KERNELS_COMPILE_AVX2 is then defined by CMake);
// otherwise it degrades to a null registration so the build stays portable.
// Runtime dispatch in kernels.cpp only installs the table when CPUID says
// the host has AVX2, so no AVX2 instruction ever executes on a lesser CPU.

#include "linalg/kernels/kernels.hpp"

#if defined(FASTQAOA_KERNELS_COMPILE_AVX2)

#define FQ_KERNEL_NAMESPACE avx2_impl
#define FQ_KERNEL_FAST_SINCOS 1

#include "linalg/kernels/kernel_impl.inl"

namespace fastqaoa::linalg::kernels {

bool make_avx2_backend(KernelBackend* out) {
  *out = avx2_impl::make_backend("avx2");
  return true;
}

}  // namespace fastqaoa::linalg::kernels

#else  // !FASTQAOA_KERNELS_COMPILE_AVX2

namespace fastqaoa::linalg::kernels {

bool make_avx2_backend(KernelBackend*) { return false; }

}  // namespace fastqaoa::linalg::kernels

#endif
