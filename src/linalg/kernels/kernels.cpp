#include "linalg/kernels/kernels.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hpp"

namespace fastqaoa::linalg::kernels {

// Backend factories, one per TU. The AVX factories return false when their
// TU was compiled without the ISA flags (unsupported compiler/arch).
KernelBackend make_scalar_backend();
bool make_avx2_backend(KernelBackend* out);
bool make_avx512_backend(KernelBackend* out);

namespace {

// __builtin_cpu_supports requires string literals, so each probe is spelled
// out. Non-x86 builds compile the AVX TUs to null registrations and these
// probes are never reached with a true factory.
bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0 &&
         __builtin_cpu_supports("fma") != 0;
#else
  return false;
#endif
}

bool cpu_has_avx512() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512dq") != 0 &&
         __builtin_cpu_supports("avx512vl") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0;
#else
  return false;
#endif
}

struct Registry {
  KernelBackend scalar;
  KernelBackend avx2;
  KernelBackend avx512;
  bool avx2_ok = false;    // compiled in AND supported by this CPU
  bool avx512_ok = false;
  const KernelBackend* current = nullptr;

  Registry() {
    scalar = make_scalar_backend();
    KernelBackend b;
    if (make_avx2_backend(&b) && cpu_has_avx2()) {
      avx2 = b;
      avx2_ok = true;
    }
    if (make_avx512_backend(&b) && cpu_has_avx512()) {
      avx512 = b;
      avx512_ok = true;
    }
    current = pick_auto();
    const char* env = std::getenv("FASTQAOA_KERNEL");
    if (env != nullptr && env[0] != '\0') {
      const KernelBackend* forced = find(env);
      if (forced != nullptr) {
        current = forced;
      } else {
        std::fprintf(stderr,
                     "fastqaoa: FASTQAOA_KERNEL=%s is unknown or unsupported "
                     "on this CPU; using %s\n",
                     env, current->name);
      }
    }
    publish();
  }

  const KernelBackend* pick_auto() const {
    if (avx512_ok) return &avx512;
    if (avx2_ok) return &avx2;
    return &scalar;
  }

  const KernelBackend* find(const char* name) const {
    if (std::strcmp(name, "auto") == 0) return pick_auto();
    if (std::strcmp(name, "scalar") == 0) return &scalar;
    if (std::strcmp(name, "avx2") == 0 && avx2_ok) return &avx2;
    if (std::strcmp(name, "avx512") == 0 && avx512_ok) return &avx512;
    return nullptr;
  }

  void publish() const {
    obs::set_global_label("kernel_backend", current->name);
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

const KernelBackend& active() { return *registry().current; }

const char* active_name() { return registry().current->name; }

bool select(const std::string& name) {
  Registry& r = registry();
  const KernelBackend* b = r.find(name.c_str());
  if (b == nullptr) return false;
  r.current = b;
  r.publish();
  return true;
}

std::vector<std::string> available() {
  Registry& r = registry();
  std::vector<std::string> out;
  out.emplace_back("scalar");
  if (r.avx2_ok) out.emplace_back("avx2");
  if (r.avx512_ok) out.emplace_back("avx512");
  return out;
}

}  // namespace fastqaoa::linalg::kernels
