#pragma once
/// \file kernels.hpp
/// Runtime-dispatched kernel backend layer.
///
/// Every hot loop of the engine — the Walsh–Hadamard butterflies, the
/// diagonal phase sweep, the fixed-order reductions and the subspace GEMVs
/// — lives behind one table of function pointers, a KernelBackend. Three
/// implementations of the table are compiled into the library, each in its
/// own translation unit with its own target flags:
///
///   * scalar  — reference ordering, default build flags, libm sincos
///   * avx2    — -mavx2 -mfma, vectorized polynomial sincos
///   * avx512  — -mavx512{f,dq,vl,bw} -mfma, same kernels at wider lanes
///
/// The AVX TUs are compile-time gated (they degrade to a null registration
/// on compilers/arches without the flags) and runtime-dispatched: active()
/// picks the best table the CPU supports via CPUID, once, on first use.
/// The FASTQAOA_KERNEL environment variable and the --backend flag of
/// qaoa_cli / qaoa_serve override the choice ("scalar", "avx2", "avx512",
/// "auto").
///
/// Determinism contract: every kernel uses fixed-order reductions — partial
/// sums are accumulated per fixed-size block and combined in block order —
/// so a given backend returns bit-identical results at any thread count.
/// Different backends may differ in the last ulps (different sincos
/// polynomials, different vector widths); tests pin cross-backend parity to
/// 1e-13 relative.

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace fastqaoa::linalg::kernels {

/// POD complex accumulator returned by reduction kernels. Kept a plain
/// aggregate (not std::complex) so ISA-specific TUs never instantiate
/// shared inline symbols.
struct CplxSum {
  double re = 0.0;
  double im = 0.0;
};

/// Optional quantized view of a diagonal table for the batched kernels:
/// d[i] == vals[idx[i]] with nv distinct values (bit-pattern equality, so
/// +0.0 and -0.0 are distinct entries). QAOA diagonals are usually highly
/// degenerate — X-mixer eigenvalues take n+1 values, integer-weighted cost
/// functions a few hundred — so a batched phase sweep can compute one
/// sincos per distinct value per lane and apply the factors by lookup.
/// The looked-up factors are produced by the same sincos code as the
/// per-element sweep, so the result is bit-identical to the unquantized
/// path; kernels fall back to the per-element sweep whenever the quantized
/// route could diverge (too many values, or phases beyond the fast-sincos
/// range). idx may be null to disable the quantized path.
struct QuantizedDiag {
  const std::uint16_t* idx = nullptr;
  const double* vals = nullptr;
  index_t nv = 0;
};

/// Largest nv for which the batched kernels take the quantized phase route
/// (the per-lane factor tables must stay L1-resident).
inline constexpr index_t kQuantizedDiagMax = 512;

/// The dispatch table. All pointers are non-null in a registered backend.
/// Kernels take raw pointers + element counts; the cvec-level wrappers in
/// linalg/{wht,vector_ops,dense}.hpp add size checks and instrumentation.
struct KernelBackend {
  const char* name;

  // --- Walsh–Hadamard family (lengths must be powers of two) -------------
  /// In-place unnormalized WHT, cache-blocked, one parallel region.
  void (*wht)(cplx* a, index_t n);
  /// Fused diag-phase (+ scale) -> WHT:
  ///   a_i *= scale * exp(-i * angle * d_i), then in-place WHT.
  /// d may be null (pure scale). Covers both `diag_phase -> WHT` and
  /// `WHT -> diag_phase -> normalize-scale` shapes of the X-mixer round.
  void (*phase_wht)(cplx* a, const double* d, double angle, double scale,
                    index_t n);
  /// In-place WHT with sum_i obj_i |a_i|^2 fused into the final butterfly
  /// pass (the evaluate() epilogue).
  double (*wht_expect)(cplx* a, const double* obj, index_t n);
  /// phase_wht and wht_expect combined: the whole final QAOA round.
  double (*phase_wht_expect)(cplx* a, const double* d, double angle,
                             double scale, const double* obj, index_t n);

  // --- sharded WHT family -------------------------------------------------
  // Shard-aware drivers for NUMA-sharded states (see linalg/sharded_state.hpp
  // and docs/architecture.md "Sharded statevector layer"): the state is K
  // contiguous shards, the lower n - log2(K) butterfly stages run entirely
  // shard-local (per-shard thread teams via shard-major static scheduling),
  // and the top log2(K) stages run as pairwise shard-exchange passes over
  // the fixed hypercube schedule. The obj-carrying final pass keeps the
  // exact monolithic item grid and serial partial fold, so results are
  // bit-identical to the shards == 1 path at any shard and thread count;
  // with shards <= 1 (or a state too small / not evenly divisible) these
  // delegate to the monolithic blocked driver outright.
  /// Sharded wht.
  void (*wht_sharded)(cplx* a, index_t n, int shards);
  /// Sharded phase_wht.
  void (*phase_wht_sharded)(cplx* a, const double* d, double angle,
                            double scale, index_t n, int shards);
  /// Sharded wht_expect.
  double (*wht_expect_sharded)(cplx* a, const double* obj, index_t n,
                               int shards);
  /// Sharded phase_wht_expect.
  double (*phase_wht_expect_sharded)(cplx* a, const double* d, double angle,
                                     double scale, const double* obj,
                                     index_t n, int shards);
  /// Sharded batched variants: with shards > 1 each lane runs through the
  /// sharded single-state driver (bit-identical to the batched driver by the
  /// lanes-sequential contract); with shards <= 1 they delegate to the
  /// batched driver unchanged.
  void (*phase_wht_batch_sharded)(cplx* a, index_t stride, int lanes,
                                  const cplx* init, const double* d,
                                  const QuantizedDiag* dq,
                                  const double* angles, double scale,
                                  index_t n, int shards);
  void (*wht_expect_batch_sharded)(cplx* a, index_t stride, int lanes,
                                   const double* obj, double* out, index_t n,
                                   int shards);
  void (*phase_wht_expect_batch_sharded)(cplx* a, index_t stride, int lanes,
                                         const double* d,
                                         const QuantizedDiag* dq,
                                         const double* angles, double scale,
                                         const double* obj, double* out,
                                         index_t n, int shards);

  // --- batched WHT family -------------------------------------------------
  // `lanes` independent statevectors, lane l at a + l*stride (stride in
  // complex elements, stride >= n), each phased by its own angles[l], share
  // one sweep over the d/obj tables and one cache-resident pass over the
  // strided top butterfly stages. Per-lane results are bit-identical to
  // `lanes` sequential calls of the corresponding single-state kernel: the
  // butterflies are elementwise (batching reorders execution, never
  // association) and the fused expectation keeps the classic per-item
  // serial accumulation, partials summed in item order per lane.
  /// Batched phase_wht; d may be null (pure per-lane scale), dq may be null
  /// (no quantized view of d available). init, when non-null, is a shared
  /// input vector: every lane starts from init instead of its own slab
  /// contents, with the copy fused into the first cache-resident pass — one
  /// shared read replaces a per-lane copy pass (the first round of a batched
  /// evaluation, where all lanes start from the same |psi_0>).
  void (*phase_wht_batch)(cplx* a, index_t stride, int lanes, const cplx* init,
                          const double* d, const QuantizedDiag* dq,
                          const double* angles, double scale, index_t n);
  /// Batched wht_expect: out[l] = sum_i obj_i |a_{l,i}|^2 after the WHT.
  void (*wht_expect_batch)(cplx* a, index_t stride, int lanes,
                           const double* obj, double* out, index_t n);
  /// Batched phase_wht_expect: the whole final QAOA round for all lanes.
  void (*phase_wht_expect_batch)(cplx* a, index_t stride, int lanes,
                                 const double* d, const QuantizedDiag* dq,
                                 const double* angles, double scale,
                                 const double* obj, double* out, index_t n);

  // --- elementwise --------------------------------------------------------
  /// psi_i *= exp(-i * angle * d_i).
  void (*diag_phase)(cplx* psi, const double* d, double angle, index_t n);
  /// psi_i *= d_i * s (real diagonal times real scale).
  void (*diag_mul)(cplx* psi, const double* d, double s, index_t n);
  /// v_i *= (sr + i*si).
  void (*scale)(cplx* v, double sr, double si, index_t n);
  /// v_i *= s (real).
  void (*scale_real)(cplx* v, double s, index_t n);
  /// dst_i = s * src_i.
  void (*copy_scale)(cplx* dst, const cplx* src, double s, index_t n);
  /// v_i = (re + i*im).
  void (*fill)(cplx* v, double re, double im, index_t n);
  /// v_i += (re + i*im).
  void (*add_const)(cplx* v, double re, double im, index_t n);
  /// y_i += (ar + i*ai) * x_i.
  void (*axpy)(double ar, double ai, const cplx* x, cplx* y, index_t n);
  /// t_next_i = two_inv_r * t_next_i - t_prev_i (Chebyshev recurrence).
  void (*cheb_recur)(cplx* t_next, const cplx* t_prev, double two_inv_r,
                     index_t n);

  // --- fixed-order reductions ---------------------------------------------
  /// sum_i conj(x_i) * y_i.
  CplxSum (*dot)(const cplx* x, const cplx* y, index_t n);
  /// sum_i |v_i|^2.
  double (*norm_sq)(const cplx* v, index_t n);
  /// sum_i v_i.
  CplxSum (*vsum)(const cplx* v, index_t n);
  /// sum_i d_i * |psi_i|^2.
  double (*diag_expectation)(const double* d, const cplx* psi, index_t n);
  /// Im(sum_i conj(lambda_i) * d_i * psi_i).
  double (*diag_bracket_imag)(const cplx* lambda, const double* d,
                              const cplx* psi, index_t n);
  /// max_i |v_i - w_i|.
  double (*max_abs_diff)(const cplx* v, const cplx* w, index_t n);

  // --- dense GEMV (row-major A) -------------------------------------------
  /// y = A x (A real, rows x cols).
  void (*gemv_real)(const double* a, index_t rows, index_t cols,
                    const cplx* x, cplx* y);
  /// y = A^T x.
  void (*gemv_real_t)(const double* a, index_t rows, index_t cols,
                      const cplx* x, cplx* y);
  /// y = A x (A complex).
  void (*gemv_cplx)(const cplx* a, index_t rows, index_t cols, const cplx* x,
                    cplx* y);
  /// y = A^H x.
  void (*gemv_cplx_adj)(const cplx* a, index_t rows, index_t cols,
                        const cplx* x, cplx* y);
};

/// The active backend. Initialized on first use: FASTQAOA_KERNEL if set and
/// valid (else a one-line stderr warning and auto-pick), otherwise the best
/// table this CPU supports. Never null.
[[nodiscard]] const KernelBackend& active();

/// Name of the active backend ("scalar", "avx2", "avx512").
[[nodiscard]] const char* active_name();

/// Switch backends by name ("auto" re-runs CPU detection). Returns false —
/// and leaves the active backend unchanged — if the name is unknown, the
/// backend was not compiled in, or the CPU lacks the ISA. Not intended for
/// concurrent use with in-flight evaluations (call at startup).
bool select(const std::string& name);

/// Names of every backend that is both compiled in and supported by this
/// CPU (always contains "scalar").
[[nodiscard]] std::vector<std::string> available();

}  // namespace fastqaoa::linalg::kernels
