// Scalar reference backend: default build flags, libm sincos, reference
// loop ordering. Always compiled in; the parity tolerance of every other
// backend is measured against this one.

#define FQ_KERNEL_NAMESPACE scalar_impl
#define FQ_KERNEL_FAST_SINCOS 0

#include "linalg/kernels/kernel_impl.inl"

namespace fastqaoa::linalg::kernels {

KernelBackend make_scalar_backend() {
  return scalar_impl::make_backend("scalar");
}

}  // namespace fastqaoa::linalg::kernels
