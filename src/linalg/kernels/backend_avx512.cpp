// AVX-512 backend. Compiled with -mavx512{f,dq,vl,bw} -mfma when available
// (FASTQAOA_KERNELS_COMPILE_AVX512 defined by CMake), null registration
// otherwise. Runtime dispatch gates installation on CPUID.

#include "linalg/kernels/kernels.hpp"

#if defined(FASTQAOA_KERNELS_COMPILE_AVX512)

#define FQ_KERNEL_NAMESPACE avx512_impl
#define FQ_KERNEL_FAST_SINCOS 1

#include "linalg/kernels/kernel_impl.inl"

namespace fastqaoa::linalg::kernels {

bool make_avx512_backend(KernelBackend* out) {
  *out = avx512_impl::make_backend("avx512");
  return true;
}

}  // namespace fastqaoa::linalg::kernels

#else  // !FASTQAOA_KERNELS_COMPILE_AVX512

namespace fastqaoa::linalg::kernels {

bool make_avx512_backend(KernelBackend*) { return false; }

}  // namespace fastqaoa::linalg::kernels

#endif
