#include "linalg/dense.hpp"

#include <cmath>

namespace fastqaoa::linalg {

namespace {
using std::ptrdiff_t;
}  // namespace

void gemv(const dmat& a, const cvec& x, cvec& y) {
  FASTQAOA_CHECK(a.cols() == x.size(), "gemv: dimension mismatch");
  FASTQAOA_CHECK(a.rows() == y.size(), "gemv: output dimension mismatch");
  FASTQAOA_CHECK(x.data() != y.data(), "gemv: x and y must not alias");
  const ptrdiff_t rows = static_cast<ptrdiff_t>(a.rows());
  const ptrdiff_t cols = static_cast<ptrdiff_t>(a.cols());
#pragma omp parallel for schedule(static)
  for (ptrdiff_t r = 0; r < rows; ++r) {
    const double* arow = a.row(static_cast<index_t>(r));
    double re = 0.0;
    double im = 0.0;
    for (ptrdiff_t c = 0; c < cols; ++c) {
      re += arow[c] * x[c].real();
      im += arow[c] * x[c].imag();
    }
    y[r] = {re, im};
  }
}

void gemv_transpose(const dmat& a, const cvec& x, cvec& y) {
  FASTQAOA_CHECK(a.rows() == x.size(), "gemv_transpose: dimension mismatch");
  FASTQAOA_CHECK(a.cols() == y.size(), "gemv_transpose: output mismatch");
  FASTQAOA_CHECK(x.data() != y.data(), "gemv_transpose: x and y must not alias");
  const ptrdiff_t rows = static_cast<ptrdiff_t>(a.rows());
  const ptrdiff_t cols = static_cast<ptrdiff_t>(a.cols());
  // Traverse A row-by-row (unit stride) and accumulate into y. Parallelize
  // over column blocks so threads never write the same y element.
  const ptrdiff_t block = 256;
#pragma omp parallel for schedule(static)
  for (ptrdiff_t c0 = 0; c0 < cols; c0 += block) {
    const ptrdiff_t c1 = std::min(c0 + block, cols);
    for (ptrdiff_t c = c0; c < c1; ++c) y[c] = cplx{0.0, 0.0};
    for (ptrdiff_t r = 0; r < rows; ++r) {
      const double* arow = a.row(static_cast<index_t>(r));
      const cplx xr = x[r];
      for (ptrdiff_t c = c0; c < c1; ++c) {
        y[c] += arow[c] * xr;
      }
    }
  }
}

void gemv(const cmat& a, const cvec& x, cvec& y) {
  FASTQAOA_CHECK(a.cols() == x.size(), "gemv: dimension mismatch");
  FASTQAOA_CHECK(a.rows() == y.size(), "gemv: output dimension mismatch");
  FASTQAOA_CHECK(x.data() != y.data(), "gemv: x and y must not alias");
  const ptrdiff_t rows = static_cast<ptrdiff_t>(a.rows());
  const ptrdiff_t cols = static_cast<ptrdiff_t>(a.cols());
#pragma omp parallel for schedule(static)
  for (ptrdiff_t r = 0; r < rows; ++r) {
    const cplx* arow = a.row(static_cast<index_t>(r));
    cplx acc{0.0, 0.0};
    for (ptrdiff_t c = 0; c < cols; ++c) acc += arow[c] * x[c];
    y[r] = acc;
  }
}

void gemv_adjoint(const cmat& a, const cvec& x, cvec& y) {
  FASTQAOA_CHECK(a.rows() == x.size(), "gemv_adjoint: dimension mismatch");
  FASTQAOA_CHECK(a.cols() == y.size(), "gemv_adjoint: output mismatch");
  FASTQAOA_CHECK(x.data() != y.data(), "gemv_adjoint: x and y must not alias");
  const ptrdiff_t rows = static_cast<ptrdiff_t>(a.rows());
  const ptrdiff_t cols = static_cast<ptrdiff_t>(a.cols());
  const ptrdiff_t block = 256;
#pragma omp parallel for schedule(static)
  for (ptrdiff_t c0 = 0; c0 < cols; c0 += block) {
    const ptrdiff_t c1 = std::min(c0 + block, cols);
    for (ptrdiff_t c = c0; c < c1; ++c) y[c] = cplx{0.0, 0.0};
    for (ptrdiff_t r = 0; r < rows; ++r) {
      const cplx* arow = a.row(static_cast<index_t>(r));
      const cplx xr = x[r];
      for (ptrdiff_t c = c0; c < c1; ++c) {
        y[c] += std::conj(arow[c]) * xr;
      }
    }
  }
}

namespace {

template <typename T>
Matrix<T> matmul_impl(const Matrix<T>& a, const Matrix<T>& b) {
  FASTQAOA_CHECK(a.cols() == b.rows(), "matmul: dimension mismatch");
  Matrix<T> c(a.rows(), b.cols());
  const ptrdiff_t n = static_cast<ptrdiff_t>(a.rows());
  const ptrdiff_t m = static_cast<ptrdiff_t>(b.cols());
  const ptrdiff_t k = static_cast<ptrdiff_t>(a.cols());
#pragma omp parallel for schedule(static)
  for (ptrdiff_t i = 0; i < n; ++i) {
    T* crow = c.row(static_cast<index_t>(i));
    const T* arow = a.row(static_cast<index_t>(i));
    for (ptrdiff_t l = 0; l < k; ++l) {
      const T av = arow[l];
      const T* brow = b.row(static_cast<index_t>(l));
      for (ptrdiff_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

}  // namespace

dmat matmul(const dmat& a, const dmat& b) { return matmul_impl(a, b); }
cmat matmul(const cmat& a, const cmat& b) { return matmul_impl(a, b); }

dmat transpose(const dmat& a) {
  dmat t(a.cols(), a.rows());
  for (index_t r = 0; r < a.rows(); ++r)
    for (index_t c = 0; c < a.cols(); ++c) t(c, r) = a(r, c);
  return t;
}

cmat adjoint(const cmat& a) {
  cmat t(a.cols(), a.rows());
  for (index_t r = 0; r < a.rows(); ++r)
    for (index_t c = 0; c < a.cols(); ++c) t(c, r) = std::conj(a(r, c));
  return t;
}

namespace {

template <typename T>
double frobenius_diff_impl(const Matrix<T>& a, const Matrix<T>& b) {
  FASTQAOA_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
                 "frobenius_diff: shape mismatch");
  double acc = 0.0;
  for (index_t r = 0; r < a.rows(); ++r)
    for (index_t c = 0; c < a.cols(); ++c) acc += std::norm(cplx(a(r, c)) - cplx(b(r, c)));
  return std::sqrt(acc);
}

}  // namespace

double frobenius_diff(const dmat& a, const dmat& b) {
  return frobenius_diff_impl(a, b);
}
double frobenius_diff(const cmat& a, const cmat& b) {
  return frobenius_diff_impl(a, b);
}

dmat random_matrix(index_t rows, index_t cols, Rng& rng) {
  dmat m(rows, cols);
  for (index_t r = 0; r < rows; ++r)
    for (index_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(-1.0, 1.0);
  return m;
}

cmat random_cmatrix(index_t rows, index_t cols, Rng& rng) {
  cmat m(rows, cols);
  for (index_t r = 0; r < rows; ++r)
    for (index_t c = 0; c < cols; ++c)
      m(r, c) = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return m;
}

dmat symmetrize(const dmat& a) {
  FASTQAOA_CHECK(a.rows() == a.cols(), "symmetrize: matrix must be square");
  dmat s(a.rows(), a.cols());
  for (index_t r = 0; r < a.rows(); ++r)
    for (index_t c = 0; c < a.cols(); ++c) s(r, c) = 0.5 * (a(r, c) + a(c, r));
  return s;
}

cmat hermitize(const cmat& a) {
  FASTQAOA_CHECK(a.rows() == a.cols(), "hermitize: matrix must be square");
  cmat h(a.rows(), a.cols());
  for (index_t r = 0; r < a.rows(); ++r)
    for (index_t c = 0; c < a.cols(); ++c)
      h(r, c) = 0.5 * (a(r, c) + std::conj(a(c, r)));
  return h;
}

}  // namespace fastqaoa::linalg
