#include "linalg/dense.hpp"

#include <cmath>

#include "linalg/kernels/kernels.hpp"

namespace fastqaoa::linalg {

namespace {
using std::ptrdiff_t;
}  // namespace

void gemv(const dmat& a, ConstStateRef x, StateRef y) {
  FASTQAOA_CHECK(a.cols() == x.size(), "gemv: dimension mismatch");
  FASTQAOA_CHECK(a.rows() == y.size(), "gemv: output dimension mismatch");
  FASTQAOA_CHECK(x.data() != y.data(), "gemv: x and y must not alias");
  kernels::active().gemv_real(a.data(), a.rows(), a.cols(), x.data(),
                              y.data());
}

void gemv_transpose(const dmat& a, ConstStateRef x, StateRef y) {
  FASTQAOA_CHECK(a.rows() == x.size(), "gemv_transpose: dimension mismatch");
  FASTQAOA_CHECK(a.cols() == y.size(), "gemv_transpose: output mismatch");
  FASTQAOA_CHECK(x.data() != y.data(), "gemv_transpose: x and y must not alias");
  kernels::active().gemv_real_t(a.data(), a.rows(), a.cols(), x.data(),
                                y.data());
}

void gemv(const cmat& a, ConstStateRef x, StateRef y) {
  FASTQAOA_CHECK(a.cols() == x.size(), "gemv: dimension mismatch");
  FASTQAOA_CHECK(a.rows() == y.size(), "gemv: output dimension mismatch");
  FASTQAOA_CHECK(x.data() != y.data(), "gemv: x and y must not alias");
  kernels::active().gemv_cplx(a.data(), a.rows(), a.cols(), x.data(),
                              y.data());
}

void gemv_adjoint(const cmat& a, ConstStateRef x, StateRef y) {
  FASTQAOA_CHECK(a.rows() == x.size(), "gemv_adjoint: dimension mismatch");
  FASTQAOA_CHECK(a.cols() == y.size(), "gemv_adjoint: output mismatch");
  FASTQAOA_CHECK(x.data() != y.data(), "gemv_adjoint: x and y must not alias");
  kernels::active().gemv_cplx_adj(a.data(), a.rows(), a.cols(), x.data(),
                                  y.data());
}

namespace {

template <typename T>
Matrix<T> matmul_impl(const Matrix<T>& a, const Matrix<T>& b) {
  FASTQAOA_CHECK(a.cols() == b.rows(), "matmul: dimension mismatch");
  Matrix<T> c(a.rows(), b.cols());
  const ptrdiff_t n = static_cast<ptrdiff_t>(a.rows());
  const ptrdiff_t m = static_cast<ptrdiff_t>(b.cols());
  const ptrdiff_t k = static_cast<ptrdiff_t>(a.cols());
#pragma omp parallel for schedule(static)
  for (ptrdiff_t i = 0; i < n; ++i) {
    T* crow = c.row(static_cast<index_t>(i));
    const T* arow = a.row(static_cast<index_t>(i));
    for (ptrdiff_t l = 0; l < k; ++l) {
      const T av = arow[l];
      const T* brow = b.row(static_cast<index_t>(l));
      for (ptrdiff_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

}  // namespace

dmat matmul(const dmat& a, const dmat& b) { return matmul_impl(a, b); }
cmat matmul(const cmat& a, const cmat& b) { return matmul_impl(a, b); }

namespace {

/// Square tile edge for the out-of-place transpose: 64 complex (1 KiB) rows
/// and columns both stay L1-resident, turning the strided side of the copy
/// into whole-cache-line traffic.
constexpr ptrdiff_t kTransTile = 64;
/// Matrices with fewer elements than this transpose/reduce serially.
constexpr ptrdiff_t kDenseSerial = 1 << 14;

template <typename T, typename Map>
void transpose_tiled(const Matrix<T>& a, Matrix<T>& t, Map map) {
  const ptrdiff_t rows = static_cast<ptrdiff_t>(a.rows());
  const ptrdiff_t cols = static_cast<ptrdiff_t>(a.cols());
  const ptrdiff_t rtiles = (rows + kTransTile - 1) / kTransTile;
  const ptrdiff_t ctiles = (cols + kTransTile - 1) / kTransTile;
  const ptrdiff_t tiles = rtiles * ctiles;
  const bool serial = rows * cols <= kDenseSerial;
#pragma omp parallel for schedule(static) if (!serial)
  for (ptrdiff_t tile = 0; tile < tiles; ++tile) {
    const ptrdiff_t r0 = (tile / ctiles) * kTransTile;
    const ptrdiff_t c0 = (tile % ctiles) * kTransTile;
    const ptrdiff_t r1 = std::min(r0 + kTransTile, rows);
    const ptrdiff_t c1 = std::min(c0 + kTransTile, cols);
    for (ptrdiff_t r = r0; r < r1; ++r) {
      const T* arow = a.row(static_cast<index_t>(r));
      for (ptrdiff_t c = c0; c < c1; ++c) {
        t(static_cast<index_t>(c), static_cast<index_t>(r)) = map(arow[c]);
      }
    }
  }
}

}  // namespace

dmat transpose(const dmat& a) {
  dmat t(a.cols(), a.rows());
  transpose_tiled(a, t, [](double v) { return v; });
  return t;
}

cmat adjoint(const cmat& a) {
  cmat t(a.cols(), a.rows());
  transpose_tiled(a, t, [](const cplx& v) { return std::conj(v); });
  return t;
}

namespace {

template <typename T>
double frobenius_diff_impl(const Matrix<T>& a, const Matrix<T>& b) {
  FASTQAOA_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
                 "frobenius_diff: shape mismatch");
  // Both operands are contiguous row-major, so the doubly indexed loop is
  // really a flat reduction; one partial per row keeps the combine order
  // fixed at any thread count.
  const ptrdiff_t rows = static_cast<ptrdiff_t>(a.rows());
  const ptrdiff_t cols = static_cast<ptrdiff_t>(a.cols());
  const bool serial = rows * cols <= kDenseSerial;
  std::vector<double> part(static_cast<std::size_t>(rows), 0.0);
#pragma omp parallel for schedule(static) if (!serial)
  for (ptrdiff_t r = 0; r < rows; ++r) {
    const T* arow = a.row(static_cast<index_t>(r));
    const T* brow = b.row(static_cast<index_t>(r));
    double acc = 0.0;
    for (ptrdiff_t c = 0; c < cols; ++c) {
      acc += std::norm(cplx(arow[c]) - cplx(brow[c]));
    }
    part[static_cast<std::size_t>(r)] = acc;
  }
  double acc = 0.0;
  for (const double p : part) acc += p;
  return std::sqrt(acc);
}

}  // namespace

double frobenius_diff(const dmat& a, const dmat& b) {
  return frobenius_diff_impl(a, b);
}
double frobenius_diff(const cmat& a, const cmat& b) {
  return frobenius_diff_impl(a, b);
}

dmat random_matrix(index_t rows, index_t cols, Rng& rng) {
  dmat m(rows, cols);
  for (index_t r = 0; r < rows; ++r)
    for (index_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(-1.0, 1.0);
  return m;
}

cmat random_cmatrix(index_t rows, index_t cols, Rng& rng) {
  cmat m(rows, cols);
  for (index_t r = 0; r < rows; ++r)
    for (index_t c = 0; c < cols; ++c)
      m(r, c) = cplx{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return m;
}

dmat symmetrize(const dmat& a) {
  FASTQAOA_CHECK(a.rows() == a.cols(), "symmetrize: matrix must be square");
  dmat s(a.rows(), a.cols());
  for (index_t r = 0; r < a.rows(); ++r)
    for (index_t c = 0; c < a.cols(); ++c) s(r, c) = 0.5 * (a(r, c) + a(c, r));
  return s;
}

cmat hermitize(const cmat& a) {
  FASTQAOA_CHECK(a.rows() == a.cols(), "hermitize: matrix must be square");
  cmat h(a.rows(), a.cols());
  for (index_t r = 0; r < a.rows(); ++r)
    for (index_t c = 0; c < a.cols(); ++c)
      h(r, c) = 0.5 * (a(r, c) + std::conj(a(c, r)));
  return h;
}

}  // namespace fastqaoa::linalg
