#pragma once
/// \file sharded_state.hpp
/// NUMA-aware sharded statevector storage and the lightweight views the
/// kernel / mixer layers operate on.
///
/// A ShardedState is ONE contiguous 64-byte-aligned allocation of 2^n
/// amplitudes, logically split into K contiguous shards (K a power of two,
/// chosen by fastqaoa::plan_shards from --shards / FASTQAOA_SHARDS / the
/// detected NUMA topology). Pages are first-touch-initialized in parallel,
/// shard-major with a static schedule — the same thread-to-range mapping the
/// kernels' `omp for schedule(static)` loops use — so on a multi-socket
/// machine each shard's pages land on the socket whose threads sweep it.
///
/// The shard count is a *placement and scheduling* hint: the numerical
/// results of every kernel are bit-identical at any shard count and thread
/// count (see docs/architecture.md, "Sharded statevector layer"). With
/// K == 1 the kernels take exactly the pre-sharding blocked code path.

#include <cstddef>
#include <utility>

#include "common/topology.hpp"
#include "common/types.hpp"

namespace fastqaoa::linalg {

class ShardedState;

/// Mutable view of a statevector: raw amplitudes plus the shard count the
/// kernels should schedule for. Implicitly constructible from both cvec and
/// ShardedState so existing call sites keep compiling unchanged (a plain
/// cvec is a one-shard state).
struct StateRef {
  cplx* ptr = nullptr;
  index_t len = 0;
  int shard_count = 1;

  StateRef() = default;
  StateRef(cvec& v) noexcept  // NOLINT(google-explicit-constructor)
      : ptr(v.data()), len(v.size()) {}
  StateRef(ShardedState& s) noexcept;  // NOLINT(google-explicit-constructor)
  StateRef(cplx* p, index_t n, int shards = 1) noexcept
      : ptr(p), len(n), shard_count(shards < 1 ? 1 : shards) {}

  cplx* data() const noexcept { return ptr; }
  index_t size() const noexcept { return len; }
  bool empty() const noexcept { return len == 0; }
  int shards() const noexcept { return shard_count; }
  cplx& operator[](index_t i) const noexcept { return ptr[i]; }
  cplx* begin() const noexcept { return ptr; }
  cplx* end() const noexcept { return ptr + len; }
};

/// Read-only counterpart of StateRef.
struct ConstStateRef {
  const cplx* ptr = nullptr;
  index_t len = 0;
  int shard_count = 1;

  ConstStateRef() = default;
  ConstStateRef(const cvec& v) noexcept  // NOLINT(google-explicit-constructor)
      : ptr(v.data()), len(v.size()) {}
  ConstStateRef(const ShardedState& s) noexcept;  // NOLINT
  ConstStateRef(StateRef r) noexcept  // NOLINT(google-explicit-constructor)
      : ptr(r.ptr), len(r.len), shard_count(r.shard_count) {}
  ConstStateRef(const cplx* p, index_t n, int shards = 1) noexcept
      : ptr(p), len(n), shard_count(shards < 1 ? 1 : shards) {}

  const cplx* data() const noexcept { return ptr; }
  index_t size() const noexcept { return len; }
  bool empty() const noexcept { return len == 0; }
  int shards() const noexcept { return shard_count; }
  const cplx& operator[](index_t i) const noexcept { return ptr[i]; }
  const cplx* begin() const noexcept { return ptr; }
  const cplx* end() const noexcept { return ptr + len; }
};

/// Owning sharded statevector. Deliberately NOT a cvec: std::vector's
/// resize value-initializes serially through the allocator, which would
/// first-touch every page from one thread and pin the whole state to one
/// NUMA node. ShardedState allocates raw aligned storage and zero-fills it
/// in parallel, shard-major, so pages land where the compute threads live.
///
/// Allocations are reported to MemoryTracker at their actual padded size
/// (tracked_alloc_bytes), matching the tracked-container accounting.
class ShardedState {
 public:
  ShardedState() = default;
  explicit ShardedState(index_t n, int shard_request = 0) {
    requested_ = shard_request;
    resize(n);
  }
  ShardedState(const ShardedState& other) { *this = other; }
  ShardedState(ShardedState&& other) noexcept { swap(other); }
  ShardedState& operator=(const ShardedState& other);
  ShardedState& operator=(ShardedState&& other) noexcept {
    swap(other);
    return *this;
  }
  /// Parallel sharded copy from a plain vector (used when loading a plan's
  /// initial state into a workspace).
  ShardedState& operator=(const cvec& v);
  ~ShardedState() { release(); }

  /// Set the shard request (0 = auto: FASTQAOA_SHARDS, then topology).
  /// Takes effect on the next resize that changes the element count.
  void set_shard_request(int shards) noexcept { requested_ = shards; }
  int shard_request() const noexcept { return requested_; }

  /// Size the state to n amplitudes. Newly allocated storage is
  /// zero-filled in parallel (first touch); when storage is reused, the
  /// contents are preserved up to min(old, new) like vector::resize. The
  /// shard count is re-planned for the new size.
  void resize(index_t n);
  /// resize + parallel fill.
  void assign(index_t n, cplx value);

  cplx* data() noexcept { return data_; }
  const cplx* data() const noexcept { return data_; }
  index_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  cplx& operator[](index_t i) noexcept { return data_[i]; }
  const cplx& operator[](index_t i) const noexcept { return data_[i]; }
  cplx* begin() noexcept { return data_; }
  cplx* end() noexcept { return data_ + size_; }
  const cplx* begin() const noexcept { return data_; }
  const cplx* end() const noexcept { return data_ + size_; }

  /// Shard geometry for the current size.
  int shards() const noexcept { return shards_; }
  index_t shard_elems() const noexcept {
    return shards_ > 0 ? size_ / static_cast<index_t>(shards_) : size_;
  }
  cplx* shard_data(int k) noexcept {
    return data_ + shard_elems() * static_cast<index_t>(k);
  }
  const cplx* shard_data(int k) const noexcept {
    return data_ + shard_elems() * static_cast<index_t>(k);
  }

  /// Explicit copy out to a plain vector (results, IO, checkpoints). There
  /// is intentionally no implicit conversion: binding a temporary cvec to a
  /// const reference is too easy to get wrong.
  cvec to_vec() const;

  void swap(ShardedState& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
    std::swap(capacity_, other.capacity_);
    std::swap(shards_, other.shards_);
    std::swap(requested_, other.requested_);
  }

 private:
  void release() noexcept;

  cplx* data_ = nullptr;
  index_t size_ = 0;
  index_t capacity_ = 0;
  int shards_ = 1;
  int requested_ = 0;  ///< 0 = auto
};

/// Shard-exchange schedule for the top log2(K) WHT stages: cross-shard
/// stage t (t = 0 .. log2(K)-1, executed in increasing-stride order) pairs
/// shard s with shard s XOR 2^t — the standard hypercube schedule. Fixed by
/// construction; exposed so tests and qaoa_topo can print/verify it.
inline int shard_exchange_partner(int shard, int stage) noexcept {
  return shard ^ (1 << stage);
}

}  // namespace fastqaoa::linalg
