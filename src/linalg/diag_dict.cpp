#include "linalg/diag_dict.hpp"

#include <bit>
#include <unordered_map>

namespace fastqaoa::linalg {

DiagDict build_diag_dict(const dvec& table) {
  DiagDict dict;
  if (table.size() < 64) return dict;  // kernels require n >= 64 anyway
  // Bit-pattern keys: NaN payloads and signed zeros stay distinct, matching
  // the bit-identity contract of the quantized kernel route.
  std::unordered_map<std::uint64_t, std::uint16_t> seen;
  seen.reserve(2 * static_cast<std::size_t>(kernels::kQuantizedDiagMax));
  std::vector<std::uint16_t> idx(table.size());
  dvec vals;
  vals.reserve(static_cast<std::size_t>(kernels::kQuantizedDiagMax));
  for (std::size_t i = 0; i < table.size(); ++i) {
    const std::uint64_t key = std::bit_cast<std::uint64_t>(table[i]);
    auto [it, inserted] = seen.try_emplace(
        key, static_cast<std::uint16_t>(vals.size()));
    if (inserted) {
      if (vals.size() == static_cast<std::size_t>(kernels::kQuantizedDiagMax)) {
        return dict;  // too many distinct values — leave invalid
      }
      vals.push_back(table[i]);
    }
    idx[i] = it->second;
  }
  dict.idx = std::move(idx);
  dict.vals = std::move(vals);
  return dict;
}

}  // namespace fastqaoa::linalg
