#pragma once
/// \file dense.hpp
/// Row-major dense matrices and the matrix-vector kernels that dominate
/// constrained-mixer simulation (psi <- V e^{-i beta D} V^H psi).
///
/// Two element types matter in practice:
///  * Matrix<double>  — Clique/Ring/Grover mixers are real-symmetric on the
///    feasible basis, so their eigenvector matrices are real. A real V times
///    a complex vector is two independent real GEMVs; we exploit that.
///  * Matrix<cplx>    — general Hermitian/unitary custom mixers.

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/alloc.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "linalg/sharded_state.hpp"

namespace fastqaoa::linalg {

/// Row-major dense matrix with tracked aligned storage.
template <typename T>
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(index_t rows, index_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}

  /// Construct from a row-major nested initializer list (tests, examples).
  Matrix(std::initializer_list<std::initializer_list<T>> init) {
    rows_ = init.size();
    cols_ = rows_ == 0 ? 0 : init.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
      FASTQAOA_CHECK(row.size() == cols_, "Matrix: ragged initializer list");
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  T& operator()(index_t r, index_t c) {
    FASTQAOA_ASSERT(r < rows_ && c < cols_, "Matrix: index out of range");
    return data_[r * cols_ + c];
  }
  const T& operator()(index_t r, index_t c) const {
    FASTQAOA_ASSERT(r < rows_ && c < cols_, "Matrix: index out of range");
    return data_[r * cols_ + c];
  }

  [[nodiscard]] T* row(index_t r) { return data_.data() + r * cols_; }
  [[nodiscard]] const T* row(index_t r) const { return data_.data() + r * cols_; }

  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }

  /// n x n identity.
  static Matrix identity(index_t n) {
    Matrix m(n, n);
    for (index_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  bool operator==(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

 private:
  index_t rows_;
  index_t cols_;
  std::vector<T, TrackedAlignedAllocator<T>> data_;
};

using dmat = Matrix<double>;
using cmat = Matrix<cplx>;

/// y <- A x for real A, complex x (two fused real GEMVs). y must not alias x
/// and must already be sized to a.rows().
void gemv(const dmat& a, ConstStateRef x, StateRef y);

/// y <- A^T x for real A (column traversal, cache-blocked). No aliasing.
void gemv_transpose(const dmat& a, ConstStateRef x, StateRef y);

/// y <- A x for complex A. No aliasing.
void gemv(const cmat& a, ConstStateRef x, StateRef y);

/// y <- A^H x for complex A (conjugate transpose). No aliasing.
void gemv_adjoint(const cmat& a, ConstStateRef x, StateRef y);

/// C <- A B (naive blocked product; used for tests and one-off setup work,
/// never in the simulation hot loop).
dmat matmul(const dmat& a, const dmat& b);
cmat matmul(const cmat& a, const cmat& b);

/// Transpose / conjugate transpose.
dmat transpose(const dmat& a);
cmat adjoint(const cmat& a);

/// Frobenius norm of A - B (test helper).
double frobenius_diff(const dmat& a, const dmat& b);
double frobenius_diff(const cmat& a, const cmat& b);

/// Random matrices for tests: entries uniform in [-1, 1] (real and imaginary
/// parts for the complex case).
dmat random_matrix(index_t rows, index_t cols, Rng& rng);
cmat random_cmatrix(index_t rows, index_t cols, Rng& rng);

/// Symmetrize / hermitize: (A + A^T)/2 or (A + A^H)/2.
dmat symmetrize(const dmat& a);
cmat hermitize(const cmat& a);

}  // namespace fastqaoa::linalg
