#include "linalg/eigen_sym.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace fastqaoa::linalg {

namespace {

double sign_with(double magnitude, double sign_of) {
  return sign_of >= 0.0 ? std::abs(magnitude) : -std::abs(magnitude);
}

/// Householder reduction of a real symmetric matrix to tridiagonal form
/// (classical tred2). On exit `z` holds the accumulated orthogonal
/// transform Q (A = Q T Q^T), `d` the diagonal of T and `e` the
/// subdiagonal (e[0] unused).
void tridiagonalize(dmat& z, dvec& d, dvec& e) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(z.rows());
  d.assign(n, 0.0);
  e.assign(n, 0.0);

  for (std::ptrdiff_t i = n - 1; i >= 1; --i) {
    const std::ptrdiff_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (std::ptrdiff_t k = 0; k <= l; ++k) scale += std::abs(z(i, k));
      if (scale == 0.0) {
        e[i] = z(i, l);
      } else {
        for (std::ptrdiff_t k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (std::ptrdiff_t j = 0; j <= l; ++j) {
          z(j, i) = z(i, j) / h;
          g = 0.0;
          for (std::ptrdiff_t k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (std::ptrdiff_t k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[j] = g / h;
          f += e[j] * z(i, j);
        }
        const double hh = f / (h + h);
        for (std::ptrdiff_t j = 0; j <= l; ++j) {
          f = z(i, j);
          e[j] = g = e[j] - hh * f;
          for (std::ptrdiff_t k = 0; k <= j; ++k) {
            z(j, k) -= f * e[k] + g * z(i, k);
          }
        }
      }
    } else {
      e[i] = z(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;

  // Accumulate the orthogonal transform.
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::ptrdiff_t l = i - 1;
    if (d[i] != 0.0) {
      for (std::ptrdiff_t j = 0; j <= l; ++j) {
        double g = 0.0;
        for (std::ptrdiff_t k = 0; k <= l; ++k) g += z(i, k) * z(k, j);
        for (std::ptrdiff_t k = 0; k <= l; ++k) z(k, j) -= g * z(k, i);
      }
    }
    d[i] = z(i, i);
    z(i, i) = 1.0;
    for (std::ptrdiff_t j = 0; j <= l; ++j) {
      z(j, i) = 0.0;
      z(i, j) = 0.0;
    }
  }
}

/// Eigenvalues-only variant of tridiagonalize (tred1): no transform
/// accumulation.
void tridiagonalize_novec(dmat& a, dvec& d, dvec& e) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(a.rows());
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  for (std::ptrdiff_t i = n - 1; i >= 1; --i) {
    const std::ptrdiff_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (std::ptrdiff_t k = 0; k <= l; ++k) scale += std::abs(a(i, k));
      if (scale == 0.0) {
        e[i] = a(i, l);
      } else {
        for (std::ptrdiff_t k = 0; k <= l; ++k) {
          a(i, k) /= scale;
          h += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        double g = f >= 0.0 ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        a(i, l) = f - g;
        f = 0.0;
        for (std::ptrdiff_t j = 0; j <= l; ++j) {
          g = 0.0;
          for (std::ptrdiff_t k = 0; k <= j; ++k) g += a(j, k) * a(i, k);
          for (std::ptrdiff_t k = j + 1; k <= l; ++k) g += a(k, j) * a(i, k);
          e[j] = g / h;
          f += e[j] * a(i, j);
        }
        const double hh = f / (h + h);
        for (std::ptrdiff_t j = 0; j <= l; ++j) {
          f = a(i, j);
          e[j] = g = e[j] - hh * f;
          for (std::ptrdiff_t k = 0; k <= j; ++k) {
            a(j, k) -= f * e[k] + g * a(i, k);
          }
        }
      }
    } else {
      e[i] = a(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  for (std::ptrdiff_t i = 0; i < n; ++i) d[i] = a(i, i);
}

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix (tql2).
/// If `z` is non-null, plane rotations are accumulated into its columns so
/// that on exit column j of z is the eigenvector for d[j].
void ql_implicit(dvec& d, dvec& e, dmat* z) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(d.size());
  if (n == 0) return;
  for (std::ptrdiff_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  // Deflation threshold: the classic relative test |e| <= eps(|d_m|+|d_m+1|)
  // stalls on matrices with large clusters of (near-)zero eigenvalues (e.g.
  // hypercube adjacency matrices), so we also deflate against eps*||T||,
  // which keeps the standard backward-error bound O(eps*||A||) (LAPACK
  // dsteqr does the same via matrix scaling).
  double anorm = 0.0;
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    anorm = std::max(anorm, std::abs(d[i]) + std::abs(e[i]));
  }
  const double eps = std::numeric_limits<double>::epsilon();
  const double abs_tol = eps * anorm;

  for (std::ptrdiff_t l = 0; l < n; ++l) {
    int iter = 0;
    std::ptrdiff_t m = 0;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= std::max(eps * dd, abs_tol)) {
          break;
        }
      }
      if (m != l) {
        FASTQAOA_CHECK(iter++ < 64, "eigh: QL iteration failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + sign_with(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        bool underflow = false;
        for (std::ptrdiff_t i = m - 1; i >= l; --i) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          if (z != nullptr) {
            for (std::ptrdiff_t k = 0; k < n; ++k) {
              f = (*z)(k, i + 1);
              (*z)(k, i + 1) = s * (*z)(k, i) + c * f;
              (*z)(k, i) = c * (*z)(k, i) - s * f;
            }
          }
        }
        if (underflow) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
}

/// Sort eigenvalues ascending, permuting eigenvector columns to match.
void sort_eigensystem(dvec& d, dmat* z) {
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(d.size());
  std::vector<std::ptrdiff_t> order(n);
  std::iota(order.begin(), order.end(), std::ptrdiff_t{0});
  std::sort(order.begin(), order.end(),
            [&d](std::ptrdiff_t a, std::ptrdiff_t b) { return d[a] < d[b]; });

  dvec d_sorted(n, 0.0);
  for (std::ptrdiff_t j = 0; j < n; ++j) d_sorted[j] = d[order[j]];
  d = std::move(d_sorted);

  if (z != nullptr) {
    dmat sorted(z->rows(), z->cols());
    for (std::ptrdiff_t j = 0; j < n; ++j) {
      for (std::ptrdiff_t k = 0; k < n; ++k) {
        sorted(k, j) = (*z)(k, order[j]);
      }
    }
    *z = std::move(sorted);
  }
}

}  // namespace

SymEig eigh(const dmat& a) {
  FASTQAOA_CHECK(a.rows() == a.cols(), "eigh: matrix must be square");
  SymEig result;
  result.vectors = symmetrize(a);
  dvec e;
  tridiagonalize(result.vectors, result.eigenvalues, e);
  ql_implicit(result.eigenvalues, e, &result.vectors);
  sort_eigensystem(result.eigenvalues, &result.vectors);
  return result;
}

dvec eigvalsh(const dmat& a) {
  FASTQAOA_CHECK(a.rows() == a.cols(), "eigvalsh: matrix must be square");
  dmat work = symmetrize(a);
  dvec d;
  dvec e;
  tridiagonalize_novec(work, d, e);
  ql_implicit(d, e, nullptr);
  sort_eigensystem(d, nullptr);
  return d;
}

double eig_residual(const dmat& a, const SymEig& eig) {
  const index_t n = a.rows();
  double worst = 0.0;
  for (index_t j = 0; j < n; ++j) {
    for (index_t r = 0; r < n; ++r) {
      double av = 0.0;
      for (index_t c = 0; c < n; ++c) av += a(r, c) * eig.vectors(c, j);
      worst = std::max(worst,
                       std::abs(av - eig.eigenvalues[j] * eig.vectors(r, j)));
    }
  }
  return worst;
}

}  // namespace fastqaoa::linalg
