#pragma once
/// \file lanczos.hpp
/// Lanczos iteration for extremal eigenvalues of large Hermitian operators
/// given only their action on a vector. Used to tighten the Chebyshev
/// mixer's spectral interval (Gershgorin bounds can be loose, and the
/// expansion degree scales with beta * radius), and generally useful for
/// matrix-free spectral analysis of mixer Hamiltonians.

#include <functional>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace fastqaoa::linalg {

/// Action of a Hermitian operator: out = H * in (no aliasing).
using HermitianApply = std::function<void(const cvec&, cvec&)>;

/// Result of a Lanczos extremal-eigenvalue run.
struct LanczosResult {
  double min_eigenvalue = 0.0;
  double max_eigenvalue = 0.0;
  int iterations = 0;
  bool converged = false;  ///< extremal Ritz values stabilized below tol
};

/// Options for lanczos_extremal.
struct LanczosOptions {
  int max_iterations = 300;  ///< Krylov dimension cap
  double tolerance = 1e-10;  ///< extremal Ritz-value change threshold
  int check_interval = 5;    ///< convergence test frequency
};

/// Estimate the smallest and largest eigenvalues of a Hermitian operator of
/// the given dimension. Uses full reorthogonalization (memory O(dim * m),
/// m = iterations) for robustness against ghost eigenvalues. The start
/// vector is drawn from `rng`.
LanczosResult lanczos_extremal(const HermitianApply& apply, index_t dim,
                               Rng& rng, const LanczosOptions& options = {});

}  // namespace fastqaoa::linalg
