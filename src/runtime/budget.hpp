#pragma once
/// \file budget.hpp
/// Cooperative cancellation and run budgets — the fault-tolerant execution
/// layer's first pillar.
///
/// Long-running searches (iterative find_angles out to dozens of rounds,
/// 50-instance ensembles) must stop *gracefully* when a wall-clock limit, an
/// evaluation budget, or an external stop request (SIGINT, a supervisor)
/// arrives: return the best result found so far, flagged with a structured
/// StopReason, instead of throwing or running to completion. The contract:
///
///  * A RunBudget is a plain value the caller puts in FindAnglesOptions /
///    EnsembleConfig: wall-clock seconds, max expectation-evaluations, and
///    an optional CancelToken to poll.
///  * The run entry point materializes it into one shared BudgetTracker
///    (deadline captured once, evaluation counter atomic) and threads a
///    pointer down to every worker.
///  * Workers poll at coarse granularity — each BFGS iteration, each
///    basinhopping hop, each ensemble instance — so a trip costs at most
///    one more optimizer step, never a mid-kernel abort.
///
/// Budget trips are *not* errors: results come back valid, partial, and
/// marked. Only genuine precondition violations still throw.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace fastqaoa::runtime {

/// Why a run returned before finishing its requested work.
enum class StopReason : std::uint8_t {
  None = 0,        ///< ran to completion
  Deadline,        ///< RunBudget::wall_seconds elapsed
  MaxEvaluations,  ///< RunBudget::max_evaluations spent
  Cancelled,       ///< the CancelToken was triggered (SIGINT, supervisor)
  NonFinite,       ///< optimization quarantined on a NaN/Inf it could not
                   ///< recover from
};

/// Stable human-readable tag ("deadline", "cancelled", ...).
const char* to_string(StopReason reason) noexcept;

/// Thread-safe external stop flag. request_stop() is async-signal-safe
/// (a lock-free atomic store), so a SIGINT handler may call it directly —
/// exactly what qaoa_cli does.
class CancelToken {
 public:
  void request_stop() noexcept {
    stop_.store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { stop_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> stop_{false};
};

/// Declarative budget for one run. Zero values mean "unlimited"; the
/// default-constructed budget imposes nothing and costs nothing.
struct RunBudget {
  /// Wall-clock limit in seconds for the whole run (<= 0 = unlimited).
  double wall_seconds = 0.0;
  /// Limit on objective/gradient callbacks (optimizer evaluations), summed
  /// across every chain/restart/instance of the run (0 = unlimited).
  std::size_t max_evaluations = 0;
  /// External stop flag polled alongside the limits (nullptr = none).
  /// Non-owning: keep the token alive for the duration of the run.
  const CancelToken* cancel = nullptr;

  /// True when no limit and no token is set — the tracker then short
  /// circuits every check.
  [[nodiscard]] bool unconstrained() const noexcept {
    return wall_seconds <= 0.0 && max_evaluations == 0 && cancel == nullptr;
  }
};

/// One run's live budget state, shared by every worker thread of the run.
/// The deadline is captured at construction; evaluation counts accumulate
/// in a relaxed atomic (workers report deltas at BFGS-iteration
/// granularity). check() returns the first tripped reason, with external
/// cancellation taking priority over the passive limits.
class BudgetTracker {
 public:
  BudgetTracker() = default;
  explicit BudgetTracker(const RunBudget& budget);

  /// Whether any limit is configured (false = checks are free no-ops).
  [[nodiscard]] bool active() const noexcept { return active_; }

  /// Report `n` more expectation evaluations (thread-safe). Const: workers
  /// hold a const pointer — reporting progress into the shared counter is
  /// not a mutation of the budget's configuration.
  void add_evaluations(std::size_t n) const noexcept {
    if (active_) evaluations_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t evaluations() const noexcept {
    return evaluations_.load(std::memory_order_relaxed);
  }

  /// First tripped limit, or StopReason::None. Thread-safe; sticky — once a
  /// reason trips it keeps being reported (the deadline never un-expires,
  /// counters never decrease, tokens are never auto-reset mid-run).
  [[nodiscard]] StopReason check() const noexcept;

 private:
  bool active_ = false;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  std::size_t max_evaluations_ = 0;
  const CancelToken* cancel_ = nullptr;
  mutable std::atomic<std::size_t> evaluations_{0};
};

}  // namespace fastqaoa::runtime
