#include "runtime/checkpoint.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "common/error.hpp"
#include "runtime/fault.hpp"

namespace fastqaoa::runtime {

namespace {

std::string os_error_message() {
  const int err = errno;
  return err != 0 ? std::strerror(err) : "unknown error";
}

void remove_quietly(const std::string& path) noexcept {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

}  // namespace

void atomic_write_file(const std::string& path, std::string_view contents,
                       std::string_view what) {
  const std::string tmp = path + ".tmp";
  {
    errno = 0;
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      const std::string os = os_error_message();
      remove_quietly(tmp);
      throw Error(std::string(what) + ": cannot open " + tmp + " — " + os);
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    if (FASTQAOA_FAULT_FIRE("runtime.checkpoint_write_fail", -1)) {
      out.setstate(std::ios::badbit);  // simulated mid-stream failure
    }
    out.flush();
    if (!out.good()) {
      const std::string os = os_error_message();
      out.close();
      remove_quietly(tmp);
      throw Error(std::string(what) + ": write failed for " + tmp + " — " +
                  os);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    remove_quietly(tmp);
    throw Error(std::string(what) + ": cannot rename " + tmp + " to " + path +
                " — " + ec.message());
  }
}

std::optional<std::string> read_file_if_exists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) return std::nullopt;
    throw Error("read_file_if_exists: cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  FASTQAOA_CHECK(!in.bad(), "read_file_if_exists: read failed for " + path);
  return buffer.str();
}

}  // namespace fastqaoa::runtime
