#pragma once
/// \file checkpoint.hpp
/// Crash-safe file persistence primitives shared by every checkpoint writer
/// (find_angles round checkpoints, run_ensemble instance manifests).
///
/// The invariant all writers need: a reader never observes a torn file.
/// atomic_write_file() renders the full contents into `path + ".tmp"`, then
/// renames over `path` — readers see either the complete old version or the
/// complete new one. Failure paths are first-class: a failed write removes
/// the temporary (no `.tmp` litter accumulating on a full disk) and the
/// thrown Error carries the underlying OS message, so "disk full" and
/// "directory vanished" are distinguishable from the stack trace alone.

#include <optional>
#include <string>
#include <string_view>

namespace fastqaoa::runtime {

/// Atomically replace `path` with `contents` (write tmp + rename).
/// `what` names the caller in error messages ("save_checkpoint", ...).
/// Throws fastqaoa::Error — with the OS error string — if the temporary
/// cannot be opened, written, or renamed into place; in every failure case
/// the temporary file is removed and the previous `path` (if any) is left
/// untouched. Fault point: "runtime.checkpoint_write_fail" simulates a
/// mid-stream write failure.
void atomic_write_file(const std::string& path, std::string_view contents,
                       std::string_view what);

/// Read a whole file; nullopt when it does not exist. Throws
/// fastqaoa::Error on a file that exists but cannot be read.
std::optional<std::string> read_file_if_exists(const std::string& path);

}  // namespace fastqaoa::runtime
