#include "runtime/budget.hpp"

namespace fastqaoa::runtime {

const char* to_string(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::None: return "none";
    case StopReason::Deadline: return "deadline";
    case StopReason::MaxEvaluations: return "max-evaluations";
    case StopReason::Cancelled: return "cancelled";
    case StopReason::NonFinite: return "non-finite";
  }
  return "unknown";
}

BudgetTracker::BudgetTracker(const RunBudget& budget)
    : active_(!budget.unconstrained()),
      has_deadline_(budget.wall_seconds > 0.0),
      max_evaluations_(budget.max_evaluations),
      cancel_(budget.cancel) {
  if (has_deadline_) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(budget.wall_seconds));
  }
}

StopReason BudgetTracker::check() const noexcept {
  if (!active_) return StopReason::None;
  if (cancel_ != nullptr && cancel_->stop_requested()) {
    return StopReason::Cancelled;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    return StopReason::Deadline;
  }
  if (max_evaluations_ > 0 &&
      evaluations_.load(std::memory_order_relaxed) >= max_evaluations_) {
    return StopReason::MaxEvaluations;
  }
  return StopReason::None;
}

}  // namespace fastqaoa::runtime
