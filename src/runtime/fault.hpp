#pragma once
/// \file fault.hpp
/// Deterministic fault injection for the failure-path test suite.
///
/// Production failure modes — a NaN escaping one basinhopping chain, an
/// instance factory throwing, a checkpoint write hitting a full disk, the
/// process being killed between rounds — are impossible to exercise
/// reliably from the outside. This harness lets tests (and CI) arm named
/// *fault points* that fire deterministically at instrumented sites:
///
///   fault::arm("anglefind.chain_nan", /*index=*/3);    // chain 3 only
///   fault::arm("crash.after_round", 2);                 // kill after p=2
///
/// Sites ask `FASTQAOA_FAULT_FIRE("point", index)` and act on `true` (return
/// a NaN, throw, _Exit, fail the stream). Each armed fault fires exactly
/// once, on its `after`-th matching hit, so runs are reproducible at any
/// thread count as long as the site's `index` discriminator is
/// schedule-independent (chain index, instance index, round number).
///
/// Everything is gated by the FASTQAOA_FAULT_INJECTION CMake option.
/// When OFF (the default, and all release/TSan builds) the macro is the
/// literal `false` and the arm/reset API is an inline no-op stub — zero
/// code, zero branches, exactly like FASTQAOA_PROFILING=OFF.
///
/// Known fault points:
///   anglefind.chain_nan       (index = chain)    objective returns NaN
///   study.factory_throw       (index = instance) instance factory throws
///   runtime.checkpoint_write_fail (index = -1)   checkpoint stream fails
///   crash.after_round         (index = round p)  _Exit(137) after the
///                                                round's checkpoint lands
///   study.crash_after_instance(index = instance) _Exit(137) after the
///                                                instance's file lands
///   net.accept_fail           (index = accept#)  daemon drops the freshly
///                                                accepted connection as if
///                                                accept() had failed
///   net.drop_connection       (index = accept#)  daemon abruptly closes the
///                                                connection mid-frame after
///                                                its next read
///   net.short_write           (index = accept#)  daemon writes at most one
///                                                byte on one flush pass
///   net.stall_reader          (index = accept#)  connection behaves as if
///                                                the peer never drains its
///                                                socket (writes stall until
///                                                the eviction timeout)

#include <string>
#include <string_view>

namespace fastqaoa::fault {

/// Whether this build compiled the harness in (FASTQAOA_FAULT_INJECTION=ON).
/// Tests skip the failure-path cases when false.
[[nodiscard]] bool compiled_in() noexcept;

#ifdef FASTQAOA_FAULT_INJECTION_ENABLED

/// Arm one fault: `point` fires on its `after`-th hit whose site index
/// matches `index` (-1 = any index). Thread-safe.
void arm(std::string_view point, long long index = -1, int after = 1);

/// Disarm everything and clear fired counts.
void reset() noexcept;

/// How many times `point` has fired since the last reset().
[[nodiscard]] int fired_count(std::string_view point);

/// Site-side check: consume-and-fire. Fast path (nothing armed) is one
/// relaxed atomic load. Thread-safe.
[[nodiscard]] bool fire(std::string_view point, long long index) noexcept;

/// Arm faults from the FASTQAOA_FAULTS environment variable:
/// comma-separated `point[:index[:after]]` entries, e.g.
///   FASTQAOA_FAULTS="crash.after_round:2,runtime.checkpoint_write_fail"
/// Used by qaoa_cli so CI can crash-test the binary without recompiling.
void arm_from_env();

#else  // !FASTQAOA_FAULT_INJECTION_ENABLED

inline void arm(std::string_view, long long = -1, int = 1) {}
inline void reset() noexcept {}
[[nodiscard]] inline int fired_count(std::string_view) { return 0; }
[[nodiscard]] inline bool fire(std::string_view, long long) noexcept {
  return false;
}
inline void arm_from_env() {}

#endif  // FASTQAOA_FAULT_INJECTION_ENABLED

}  // namespace fastqaoa::fault

/// Site-side macro: true when the armed fault `point` fires for `index`.
/// Compiles to the literal `false` when fault injection is off, so optimizers
/// and checkpoint writers carry no fault-path code in production builds.
#ifdef FASTQAOA_FAULT_INJECTION_ENABLED
#define FASTQAOA_FAULT_FIRE(point, index) \
  ::fastqaoa::fault::fire((point), (index))
#else
#define FASTQAOA_FAULT_FIRE(point, index) false
#endif
