#include "runtime/fault.hpp"

#ifdef FASTQAOA_FAULT_INJECTION_ENABLED

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

namespace fastqaoa::fault {

namespace {

struct ArmedFault {
  std::string point;
  long long index;  ///< -1 = match any site index
  int skips;        ///< matching hits to let pass before firing
  bool fired = false;
};

std::mutex g_mutex;
std::vector<ArmedFault> g_armed;
std::map<std::string, int, std::less<>> g_fired;
/// Count of not-yet-fired armed faults; the hot-path gate.
std::atomic<int> g_live{0};

}  // namespace

bool compiled_in() noexcept { return true; }

void arm(std::string_view point, long long index, int after) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_armed.push_back(
      {std::string(point), index, after > 1 ? after - 1 : 0, false});
  g_live.fetch_add(1, std::memory_order_relaxed);
}

void reset() noexcept {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_armed.clear();
  g_fired.clear();
  g_live.store(0, std::memory_order_relaxed);
}

int fired_count(std::string_view point) {
  std::lock_guard<std::mutex> lock(g_mutex);
  const auto it = g_fired.find(point);
  return it == g_fired.end() ? 0 : it->second;
}

bool fire(std::string_view point, long long index) noexcept {
  if (g_live.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(g_mutex);
  for (ArmedFault& f : g_armed) {
    if (f.fired || f.point != point) continue;
    if (f.index >= 0 && f.index != index) continue;
    if (f.skips > 0) {
      --f.skips;
      continue;
    }
    f.fired = true;
    g_live.fetch_sub(1, std::memory_order_relaxed);
    ++g_fired[f.point];
    return true;
  }
  return false;
}

void arm_from_env() {
  const char* env = std::getenv("FASTQAOA_FAULTS");
  if (env == nullptr || *env == '\0') return;
  std::string_view spec(env);
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    std::string_view entry = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view{}
                                           : spec.substr(comma + 1);
    if (entry.empty()) continue;
    std::string_view point = entry;
    long long index = -1;
    int after = 1;
    const std::size_t c1 = entry.find(':');
    if (c1 != std::string_view::npos) {
      point = entry.substr(0, c1);
      std::string_view rest = entry.substr(c1 + 1);
      const std::size_t c2 = rest.find(':');
      index = std::atoll(std::string(rest.substr(0, c2)).c_str());
      if (c2 != std::string_view::npos) {
        after = std::atoi(std::string(rest.substr(c2 + 1)).c_str());
      }
    }
    arm(point, index, after);
  }
}

}  // namespace fastqaoa::fault

#else  // !FASTQAOA_FAULT_INJECTION_ENABLED

namespace fastqaoa::fault {

bool compiled_in() noexcept { return false; }

}  // namespace fastqaoa::fault

#endif  // FASTQAOA_FAULT_INJECTION_ENABLED
