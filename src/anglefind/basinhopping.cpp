#include "anglefind/basinhopping.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace fastqaoa {

OptResult basinhopping(const GradObjective& fn, std::vector<double> x0,
                       Rng& rng, const BasinHoppingOptions& opt,
                       const BatchObjective* batch_values) {
  FASTQAOA_CHECK(!x0.empty(), "basinhopping: empty starting point");
  FASTQAOA_CHECK(opt.hops >= 1, "basinhopping: need at least one hop");
  FASTQAOA_CHECK(opt.proposals >= 1, "basinhopping: need proposals >= 1");
  FASTQAOA_OBS_TIMED("anglefind.basinhopping");
  FASTQAOA_TRACE_SPAN("basinhopping");
  // Batched proposals need a batch evaluator; without one the hop falls
  // back to the classic single-proposal shape.
  const int proposals =
      batch_values != nullptr && *batch_values ? opt.proposals : 1;

  // Initial local minimization from the seed point.
  OptResult best = bfgs_minimize(fn, std::move(x0), opt.local);
  std::size_t evals = best.evaluations;
  if (!std::isfinite(best.f)) {
    // Even the seed basin is poisoned — hand the non-finite result straight
    // back so the chain-level quarantine can reseed the whole chain.
    best.stop_reason = runtime::StopReason::NonFinite;
    best.converged = false;
    return best;
  }
  if (best.stopped_early() &&
      best.stop_reason != runtime::StopReason::NonFinite) {
    return best;  // budget tripped during the seed minimization
  }

  std::vector<double> current = best.x;
  double current_f = best.f;
  double step = opt.step_size;
  int accepted = 0;
  int stale = 0;

  std::vector<double> trial(current.size());
  for (int hop = 0; hop < opt.hops; ++hop) {
    if (opt.local.budget != nullptr) {
      const runtime::StopReason reason = opt.local.budget->check();
      if (reason != runtime::StopReason::None) {
        best.stop_reason = reason;
        break;
      }
    }
    FASTQAOA_OBS_COUNT("anglefind.basinhopping.hops", 1);
    FASTQAOA_TRACE_SPAN("basinhop");
    if (proposals == 1) {
      for (std::size_t i = 0; i < current.size(); ++i) {
        trial[i] = current[i] + rng.uniform(-step, step);
      }
    } else {
      // Draw all P proposals serially (fixed order, one stream), score them
      // in one batched evaluation, and spend the local minimization on the
      // most promising basin only. Argmin ties break on the draw index, so
      // the chosen trial is a pure function of the RNG stream.
      const std::size_t dims = current.size();
      std::vector<double> points(static_cast<std::size_t>(proposals) * dims);
      for (int j = 0; j < proposals; ++j) {
        for (std::size_t i = 0; i < dims; ++i) {
          points[static_cast<std::size_t>(j) * dims + i] =
              current[i] + rng.uniform(-step, step);
        }
      }
      std::vector<double> values(static_cast<std::size_t>(proposals));
      (*batch_values)(points, values);
      evals += static_cast<std::size_t>(proposals);
      int pick = 0;
      for (int j = 1; j < proposals; ++j) {
        if (values[static_cast<std::size_t>(j)] <
            values[static_cast<std::size_t>(pick)]) {
          pick = j;
        }
      }
      const double* chosen = points.data() + static_cast<std::size_t>(pick) *
                                                 dims;
      std::copy(chosen, chosen + dims, trial.begin());
    }
    OptResult local = bfgs_minimize(fn, trial, opt.local);
    evals += local.evaluations;

    if (!std::isfinite(local.f)) {
      // A hop that diverged (NaN, or a -Inf that would otherwise win the
      // basin comparison) is rejected outright; the chain keeps hopping
      // from the last finite basin.
      FASTQAOA_OBS_COUNT("runtime.nonfinite.hops", 1);
      ++stale;
      if (opt.no_improvement_limit > 0 && stale >= opt.no_improvement_limit) {
        break;
      }
      ++best.iterations;
      continue;
    }

    // Metropolis acceptance on the *basin* energies.
    bool accept = local.f <= current_f;
    if (!accept && opt.temperature > 0.0) {
      const double prob = std::exp(-(local.f - current_f) / opt.temperature);
      accept = rng.uniform() < prob;
    }
    if (accept) {
      current = local.x;
      current_f = local.f;
      ++accepted;
      FASTQAOA_OBS_COUNT("anglefind.basinhopping.accepted", 1);
    }
    if (local.f < best.f) {
      best.x = local.x;
      best.f = local.f;
      stale = 0;
    } else {
      ++stale;
      if (opt.no_improvement_limit > 0 && stale >= opt.no_improvement_limit) {
        break;
      }
    }
    if (local.stopped_early() &&
        local.stop_reason != runtime::StopReason::NonFinite) {
      // Budget tripped inside this hop's local minimization; its result is
      // already folded into best, so stop hopping here.
      best.stop_reason = local.stop_reason;
      ++best.iterations;
      break;
    }
    if (opt.adaptive_step && (hop + 1) % 10 == 0) {
      // Steer acceptance toward ~50% (scipy's default heuristic).
      const double rate =
          static_cast<double>(accepted) / static_cast<double>(hop + 1);
      step *= rate > 0.5 ? 1.1 : 0.9;
    }
    ++best.iterations;
  }

  best.evaluations = evals;
  best.converged = !best.stopped_early();
  return best;
}

}  // namespace fastqaoa
