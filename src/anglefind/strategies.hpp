#pragma once
/// \file strategies.hpp
/// The paper's angle-finding strategies (§2.3, Fig. 2/3):
///  * find_angles()        — iterative: INTERP-extrapolate the round-(p-1)
///                           optimum to seed round p, refine by basinhopping,
///                           checkpoint each round to disk, resume on crash.
///  * find_angles_random() — the random local-minima baseline of Lotshaw et
///                           al. [22]: N random starts, BFGS each, keep best.
///  * median_angles()      — the [22] median-angles heuristic across many
///                           instances.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "anglefind/basinhopping.hpp"
#include "anglefind/qaoa_objective.hpp"
#include "common/rng.hpp"
#include "core/qaoa.hpp"
#include "mixers/mixer.hpp"
#include "runtime/budget.hpp"

namespace fastqaoa {

/// Optimized angles for a p-round QAOA plus the expectation they achieve
/// and what the search spent to find them.
struct AngleSchedule {
  int p = 0;
  std::vector<double> betas;
  std::vector<double> gammas;
  double expectation = 0.0;
  /// Objective/gradient callbacks the optimizer issued producing this
  /// schedule, summed over every chain/restart (round-tripped through v2
  /// checkpoints, so resumed rounds keep their true cost).
  std::size_t optimizer_calls = 0;
  /// Underlying expectation-evaluation equivalents those callbacks cost
  /// (an adjoint gradient tallies 2, central differences 2p+1, ...),
  /// summed over every chain/restart. Thread-count invariant: the chains
  /// do identical work no matter how they are scheduled.
  std::size_t evaluations = 0;
  /// None when the round's search ran to completion; a budget/cancel
  /// reason when the run stopped during (or right after) this round and
  /// the angles are best-so-far rather than fully optimized. Stopped
  /// rounds are checkpointed for inspection but re-run on resume.
  runtime::StopReason stop_reason = runtime::StopReason::None;

  [[nodiscard]] bool stopped_early() const noexcept {
    return stop_reason != runtime::StopReason::None;
  }

  /// Packed [betas..., gammas...] layout used by Qaoa::run_packed.
  [[nodiscard]] std::vector<double> packed() const;
};

/// INTERP extrapolation (Zhou et al.): resample a length-(p) angle sequence
/// to length p+1 by piecewise-linear interpolation, preserving the smooth
/// annealing-like angle profiles the iterative strategy exploits.
std::vector<double> interp_extrapolate(const std::vector<double>& prev);

/// Trotterized-quantum-annealing initialization (Sack & Serbyn [31], one of
/// the paper's cited initialization schemes): a linear anneal discretized
/// into p steps of size dt gives
///   beta_i  = (1 - (i+0.5)/p) * dt,    gamma_i = ((i+0.5)/p) * dt,
/// returned packed [betas..., gammas...]. A strong depth-independent seed
/// for gradient refinement, complementary to INTERP.
std::vector<double> tqa_initial_angles(int p, double dt = 0.75);

/// Options for find_angles() and find_angles_random().
struct FindAnglesOptions {
  Direction direction = Direction::Maximize;
  GradientProvider gradient = GradientProvider::Adjoint;
  BasinHoppingOptions hopping;
  /// Phase-separator table if different from the objective (threshold QAOA).
  std::optional<dvec> phase_values;
  /// Round-by-round results are appended here and reloaded on restart
  /// (empty = no checkpointing).
  std::string checkpoint_file;
  std::uint64_t seed = 0x5EED5EED5EEDULL;
  /// Number of independent basinhopping chains per round in find_angles()
  /// / find_angles_at(). Chains share one immutable QaoaPlan and run in an
  /// OpenMP parallel-for with per-thread workspaces and serially forked RNG
  /// streams, so the best-of-chains result is identical at any thread
  /// count. 1 = the classic single-chain behaviour.
  int parallel_starts = 1;
  /// Statevector lanes per evaluate_batch kernel call (1 = classic
  /// single-point evaluation). With B > 1, grid search evaluates B grid
  /// points per batch, finite-difference gradients batch their whole
  /// stencil, and basinhopping scores hop proposals in batches (see
  /// BasinHoppingOptions::proposals). Batched values are bit-identical to
  /// sequential ones, so every search result is invariant in this knob —
  /// it is purely a throughput lever (qaoa_cli --batch).
  int eval_batch = 1;
  /// Called by find_angles() after each freshly optimized round (not for
  /// rounds restored from a checkpoint) with the round's schedule and its
  /// wall-clock seconds — the hook behind qaoa_cli --progress. Runs on the
  /// calling thread, outside any parallel region.
  std::function<void(const AngleSchedule&, double seconds)> on_round;
  /// Cooperative stop limits for the whole call (all rounds, all chains):
  /// wall-clock deadline, max evaluations, external CancelToken. Checked at
  /// BFGS-iteration and basinhopping-hop granularity, so a tripped budget
  /// returns best-so-far schedules flagged with the StopReason instead of
  /// throwing. Default: unconstrained (and completely free).
  runtime::RunBudget budget;
  /// Advanced: share one live BudgetTracker across several calls (how
  /// run_ensemble gives all instances a single deadline). When set, `budget`
  /// is ignored and the tracker must outlive the call. Non-owning.
  runtime::BudgetTracker* shared_tracker = nullptr;
};

/// The paper's find_angles(): learn good angles for rounds 1..max_rounds
/// iteratively. Returns one AngleSchedule per round. If a checkpoint file
/// with earlier rounds exists, resumes after the last completed round —
/// the checkpoint's fingerprint (dimension, direction, seed, mixer tag)
/// must match or the resume is refused with a fastqaoa::Error. Each round
/// draws from its own serially forked RNG stream, so a resumed run is
/// bit-identical to an uninterrupted one. A tripped options.budget stops
/// the iteration and returns the rounds finished so far (the last one
/// flagged with its StopReason) without throwing.
std::vector<AngleSchedule> find_angles(const Mixer& mixer,
                                       const dvec& obj_vals, int max_rounds,
                                       const FindAnglesOptions& options = {});

/// Basinhopping at a single fixed p from explicit initial angles (the
/// paper's `initial_angles` escape hatch that bypasses iteration).
AngleSchedule find_angles_at(const Mixer& mixer, const dvec& obj_vals, int p,
                             const std::vector<double>& initial_packed,
                             const FindAnglesOptions& options = {});

/// Random local-minima search (Listing 3's find_angles_rand): `restarts`
/// random points in [0, 2*pi)^{2p}, BFGS from each, return the best. The
/// restarts run in an OpenMP parallel-for against one shared QaoaPlan
/// (start points are drawn serially up front, so the result is identical
/// at any thread count).
AngleSchedule find_angles_random(const Mixer& mixer, const dvec& obj_vals,
                                 int p, int restarts,
                                 const FindAnglesOptions& options = {});

/// Grid search over [0, 2*pi)^{2p} — the third common strategy the paper
/// names (§2.3). `points_per_axis` grid points per angle; every grid point
/// is evaluated (OpenMP-parallel over the grid, one workspace per thread)
/// and the best is optionally polished with BFGS. Exponential in p —
/// practical for p = 1 (the regime [22] used it in).
AngleSchedule find_angles_grid(const Mixer& mixer, const dvec& obj_vals,
                               int p, int points_per_axis,
                               const FindAnglesOptions& options = {},
                               bool polish = true);

/// Coordinate-wise median of a collection of packed angle vectors (all the
/// same length) — the median-angles strategy of [22].
std::vector<double> median_angles(
    const std::vector<std::vector<double>>& packed_angle_sets);

/// Evaluate fixed packed angles on a problem (used to score median angles).
double evaluate_angles(const Mixer& mixer, const dvec& obj_vals,
                       const std::vector<double>& packed,
                       const std::optional<dvec>& phase_values = std::nullopt);

/// Identity of the run a checkpoint belongs to. Written into every v2
/// checkpoint header and validated on resume, so a checkpoint produced by
/// a different problem size, optimization direction, seed, or mixer is
/// rejected loudly instead of silently resumed into garbage.
struct CheckpointFingerprint {
  std::uint64_t dim = 0;  ///< feasible-space dimension (obj table size)
  Direction direction = Direction::Maximize;
  std::uint64_t seed = 0;
  std::string mixer;  ///< Mixer::name() tag

  bool operator==(const CheckpointFingerprint&) const = default;
};

/// Checkpoint persistence (plain text; human-inspectable). Writes are
/// atomic (tmp file + rename) and full precision, so a reader never sees a
/// torn file and loaded angles are bit-identical to the saved ones. When a
/// fingerprint is supplied to save_checkpoint it is embedded in the header;
/// when one is supplied to load_checkpoint the file must carry a matching
/// fingerprint (legacy v1 files, which predate fingerprints, are then
/// refused). Loading without an expected fingerprint skips validation —
/// the inspection-tool escape hatch.
void save_checkpoint(
    const std::string& path, const std::vector<AngleSchedule>& schedules,
    const std::optional<CheckpointFingerprint>& fingerprint = std::nullopt);
std::vector<AngleSchedule> load_checkpoint(
    const std::string& path,
    const std::optional<CheckpointFingerprint>& expected = std::nullopt);

/// Schedule-block (de)serialization shared by find_angles checkpoints and
/// run_ensemble instance files: count line, then per schedule one
/// `p expectation optimizer_calls evaluations stop_reason` line plus a
/// betas line and a gammas line, full (round-trip exact) precision.
void write_schedules(std::ostream& out,
                     const std::vector<AngleSchedule>& schedules);
std::vector<AngleSchedule> read_schedules(std::istream& in,
                                          const std::string& context);

}  // namespace fastqaoa
