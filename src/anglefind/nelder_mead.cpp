#include "anglefind/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace fastqaoa {

OptResult nelder_mead_minimize(const PlainObjective& fn,
                               std::vector<double> x0,
                               const NelderMeadOptions& opt) {
  const std::size_t n = x0.size();
  FASTQAOA_CHECK(n > 0, "nelder_mead_minimize: empty starting point");

  std::size_t evals = 0;
  auto eval = [&](const std::vector<double>& x) {
    ++evals;
    const double v = fn(x);
    if (!std::isfinite(v)) {
      // Clamp NaN/Inf to worst-possible: the vertex sorts last, so the
      // simplex contracts away from the non-finite region instead of
      // propagating NaN through centroids and comparisons.
      FASTQAOA_OBS_COUNT("runtime.nonfinite.nelder_mead", 1);
      return std::numeric_limits<double>::infinity();
    }
    return v;
  };

  // Initial simplex: x0 plus one vertex per coordinate direction.
  std::vector<std::vector<double>> simplex(n + 1, x0);
  std::vector<double> f(n + 1);
  f[0] = eval(simplex[0]);
  for (std::size_t i = 0; i < n; ++i) {
    simplex[i + 1][i] += opt.initial_step;
    f[i + 1] = eval(simplex[i + 1]);
  }

  std::vector<std::size_t> order(n + 1);
  std::vector<double> centroid(n);
  std::vector<double> xr(n);
  std::vector<double> xe(n);
  std::vector<double> xc(n);

  OptResult result;
  int iter = 0;
  for (; iter < opt.max_iterations; ++iter) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&f](std::size_t a, std::size_t b) { return f[a] < f[b]; });
    const std::size_t best = order[0];
    const std::size_t worst = order[n];
    const std::size_t second_worst = order[n - 1];

    // Convergence: value spread and simplex diameter.
    const double f_spread = std::abs(f[worst] - f[best]);
    double diameter = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      diameter = std::max(
          diameter, std::abs(simplex[worst][i] - simplex[best][i]));
    }
    if (f_spread < opt.f_tolerance && diameter < opt.x_tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::fill(centroid.begin(), centroid.end(), 0.0);
    for (std::size_t v = 0; v <= n; ++v) {
      if (v == worst) continue;
      for (std::size_t i = 0; i < n; ++i) centroid[i] += simplex[v][i];
    }
    for (std::size_t i = 0; i < n; ++i) centroid[i] /= static_cast<double>(n);

    // Reflection.
    for (std::size_t i = 0; i < n; ++i) {
      xr[i] = centroid[i] + opt.reflection * (centroid[i] - simplex[worst][i]);
    }
    const double fr = eval(xr);

    if (fr < f[best]) {
      // Expansion.
      for (std::size_t i = 0; i < n; ++i) {
        xe[i] = centroid[i] + opt.expansion * (xr[i] - centroid[i]);
      }
      const double fe = eval(xe);
      if (fe < fr) {
        simplex[worst] = xe;
        f[worst] = fe;
      } else {
        simplex[worst] = xr;
        f[worst] = fr;
      }
    } else if (fr < f[second_worst]) {
      simplex[worst] = xr;
      f[worst] = fr;
    } else {
      // Contraction (outside if the reflected point improved the worst,
      // inside otherwise).
      const bool outside = fr < f[worst];
      const std::vector<double>& toward = outside ? xr : simplex[worst];
      for (std::size_t i = 0; i < n; ++i) {
        xc[i] = centroid[i] + opt.contraction * (toward[i] - centroid[i]);
      }
      const double fc = eval(xc);
      if (fc < std::min(fr, f[worst])) {
        simplex[worst] = xc;
        f[worst] = fc;
      } else {
        // Shrink toward the best vertex.
        for (std::size_t v = 0; v <= n; ++v) {
          if (v == best) continue;
          for (std::size_t i = 0; i < n; ++i) {
            simplex[v][i] = simplex[best][i] +
                            opt.shrink * (simplex[v][i] - simplex[best][i]);
          }
          f[v] = eval(simplex[v]);
        }
      }
    }
  }

  const std::size_t best =
      static_cast<std::size_t>(std::min_element(f.begin(), f.end()) -
                               f.begin());
  result.x = simplex[best];
  result.f = f[best];
  result.iterations = iter;
  result.evaluations = evals;
  return result;
}

}  // namespace fastqaoa
