#include "anglefind/bfgs.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace fastqaoa {

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double inf_norm(const std::vector<double>& v) {
  double m = 0.0;
  for (const double x : v) m = std::max(m, std::abs(x));
  return m;
}

bool all_finite(const std::vector<double>& v) {
  for (const double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

/// One evaluation of phi(alpha) = f(x + alpha d) and phi'(alpha) = g.d.
struct LineEval {
  double phi;
  double dphi;
};

class LineSearcher {
 public:
  LineSearcher(const GradObjective& fn, const std::vector<double>& x,
               const std::vector<double>& d, std::size_t& evals)
      : fn_(fn), x_(x), d_(d), evals_(evals),
        xt_(x.size()), gt_(x.size()) {}

  LineEval eval(double alpha) {
    for (std::size_t i = 0; i < x_.size(); ++i) {
      xt_[i] = x_[i] + alpha * d_[i];
    }
    ++evals_;
    FASTQAOA_OBS_COUNT("anglefind.bfgs.linesearch_steps", 1);
    phi_ = fn_(xt_, gt_);
    return {phi_, dot(gt_, d_)};
  }

  /// Point, value and gradient from the last eval() — reused by the caller
  /// once a step is accepted so no re-evaluation is needed.
  const std::vector<double>& last_point() const { return xt_; }
  const std::vector<double>& last_gradient() const { return gt_; }
  double last_value() const { return phi_; }

 private:
  const GradObjective& fn_;
  const std::vector<double>& x_;
  const std::vector<double>& d_;
  std::size_t& evals_;
  std::vector<double> xt_;
  std::vector<double> gt_;
  double phi_ = 0.0;
};

/// Strong-Wolfe line search (Nocedal & Wright Algorithm 3.5 with a
/// bisection/interpolation zoom, Algorithm 3.6). Returns the accepted step
/// length; the searcher's last_point/last_gradient correspond to it.
double wolfe_line_search(LineSearcher& ls, double f0, double g0d,
                         const BfgsOptions& opt) {
  FASTQAOA_ASSERT(g0d < 0.0, "line search needs a descent direction");
  const double c1 = opt.wolfe_c1;
  const double c2 = opt.wolfe_c2;

  auto zoom = [&](double lo, double hi, double phi_lo, double dphi_lo,
                  double phi_hi) -> double {
    double alpha = lo;
    for (int iter = 0; iter < opt.max_line_search_steps; ++iter) {
      // Quadratic interpolation using phi_lo, dphi_lo, phi_hi; fall back to
      // bisection when the model degenerates or steps out of bounds.
      const double span = hi - lo;
      double trial = lo - 0.5 * dphi_lo * span * span /
                              (phi_hi - phi_lo - dphi_lo * span);
      if (!std::isfinite(trial) ||
          trial <= std::min(lo, hi) + 0.1 * std::abs(span) ||
          trial >= std::max(lo, hi) - 0.1 * std::abs(span)) {
        trial = 0.5 * (lo + hi);
      }
      alpha = trial;
      const LineEval e = ls.eval(alpha);
      if (e.phi > f0 + c1 * alpha * g0d || e.phi >= phi_lo) {
        hi = alpha;
        phi_hi = e.phi;
      } else {
        if (std::abs(e.dphi) <= -c2 * g0d) return alpha;
        if (e.dphi * (hi - lo) >= 0.0) {
          hi = lo;
          phi_hi = phi_lo;
        }
        lo = alpha;
        phi_lo = e.phi;
        dphi_lo = e.dphi;
      }
      if (std::abs(hi - lo) < 1e-14) break;
    }
    // Ensure the searcher's cached point matches the returned alpha.
    ls.eval(alpha);
    return alpha;
  };

  double alpha_prev = 0.0;
  double phi_prev = f0;
  double dphi_prev = g0d;
  double alpha = 1.0;
  const double alpha_max = 1e3;

  for (int iter = 0; iter < opt.max_line_search_steps; ++iter) {
    const LineEval e = ls.eval(alpha);
    if (e.phi > f0 + c1 * alpha * g0d || (iter > 0 && e.phi >= phi_prev)) {
      return zoom(alpha_prev, alpha, phi_prev, dphi_prev, e.phi);
    }
    if (std::abs(e.dphi) <= -c2 * g0d) return alpha;
    if (e.dphi >= 0.0) {
      return zoom(alpha, alpha_prev, e.phi, e.dphi, phi_prev);
    }
    alpha_prev = alpha;
    phi_prev = e.phi;
    dphi_prev = e.dphi;
    alpha = std::min(2.0 * alpha, alpha_max);
  }
  return alpha_prev > 0.0 ? alpha_prev : alpha;
}

}  // namespace

OptResult bfgs_minimize(const GradObjective& fn, std::vector<double> x0,
                        const BfgsOptions& options) {
  const std::size_t n = x0.size();
  FASTQAOA_CHECK(n > 0, "bfgs_minimize: empty starting point");
  FASTQAOA_OBS_COUNT("anglefind.bfgs.calls", 1);
  FASTQAOA_OBS_TIMED("anglefind.bfgs");
  FASTQAOA_TRACE_SPAN("bfgs_minimize");

  OptResult result;
  std::size_t evals = 0;

  std::vector<double> x = std::move(x0);
  std::vector<double> g(n);
  ++evals;
  double f = fn(x, g);

  // Inverse Hessian approximation, dense row-major.
  std::vector<double> h(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) h[i * n + i] = 1.0;

  std::vector<double> d(n);
  std::vector<double> s(n);
  std::vector<double> y(n);
  std::vector<double> hy(n);

  bool first_step = true;
  int iter = 0;
  std::size_t reported_evals = 0;
  for (; iter < options.max_iterations; ++iter) {
    if (options.budget != nullptr) {
      // Report this iteration's evaluations, then poll — so a
      // max-evaluations budget sees every chain's spend promptly and a
      // tripped budget stops the search within one iteration.
      options.budget->add_evaluations(evals - reported_evals);
      reported_evals = evals;
      const runtime::StopReason reason = options.budget->check();
      if (reason != runtime::StopReason::None) {
        result.stop_reason = reason;
        break;
      }
    }
    if (!std::isfinite(f) || !all_finite(g)) {
      // A NaN/Inf objective or gradient would poison every subsequent
      // update; stop here so the caller can quarantine the point. When the
      // very first evaluation was non-finite, result.f carries it and the
      // chain-level recovery reseeds; otherwise x/f are the last finite
      // accepted iterate.
      result.stop_reason = runtime::StopReason::NonFinite;
      FASTQAOA_OBS_COUNT("runtime.nonfinite.bfgs", 1);
      break;
    }
    if (inf_norm(g) <= options.gradient_tolerance) {
      result.converged = true;
      break;
    }
    // d = -H g
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) acc += h[i * n + j] * g[j];
      d[i] = -acc;
    }
    double g0d = dot(g, d);
    if (g0d >= 0.0) {
      // Reset to steepest descent if H lost positive-definiteness.
      for (std::size_t i = 0; i < n * n; ++i) h[i] = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        h[i * n + i] = 1.0;
        d[i] = -g[i];
      }
      g0d = dot(g, d);
      if (g0d >= 0.0) {
        result.converged = true;  // gradient numerically zero
        break;
      }
    }

    LineSearcher ls(fn, x, d, evals);
    wolfe_line_search(ls, f, g0d, options);
    const std::vector<double>& x_new = ls.last_point();
    const std::vector<double>& g_new = ls.last_gradient();
    const double f_new = ls.last_value();

    if (!std::isfinite(f_new) || !all_finite(g_new)) {
      // The line search stepped into a non-finite region: keep the last
      // finite iterate instead of accepting the poisoned step.
      result.stop_reason = runtime::StopReason::NonFinite;
      FASTQAOA_OBS_COUNT("runtime.nonfinite.bfgs", 1);
      break;
    }

    for (std::size_t i = 0; i < n; ++i) {
      s[i] = x_new[i] - x[i];
      y[i] = g_new[i] - g[i];
    }
    const double sy = dot(s, y);

    if (inf_norm(s) <= options.step_tolerance) {
      x = x_new;
      f = f_new;
      g = g_new;
      result.converged = true;
      break;
    }

    if (sy > 1e-14) {
      if (first_step) {
        // Scale the initial inverse Hessian (Nocedal & Wright eq. 6.20).
        const double yy = dot(y, y);
        if (yy > 0.0) {
          const double gamma = sy / yy;
          for (std::size_t i = 0; i < n; ++i) h[i * n + i] = gamma;
        }
        first_step = false;
      }
      // BFGS inverse update: H <- (I - r s y^T) H (I - r y s^T) + r s s^T.
      const double rho = 1.0 / sy;
      for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < n; ++j) acc += h[i * n + j] * y[j];
        hy[i] = acc;
      }
      const double yhy = dot(y, hy);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          h[i * n + j] += -rho * (hy[i] * s[j] + s[i] * hy[j]) +
                          rho * rho * yhy * s[i] * s[j] +
                          rho * s[i] * s[j];
        }
      }
    }

    x = x_new;
    f = f_new;
    g = g_new;
  }

  if (options.budget != nullptr) {
    options.budget->add_evaluations(evals - reported_evals);
  }
  FASTQAOA_OBS_COUNT("anglefind.bfgs.iterations",
                     static_cast<std::uint64_t>(iter));
  result.x = std::move(x);
  result.f = f;
  result.iterations = iter;
  result.evaluations = evals;
  return result;
}

}  // namespace fastqaoa
