#pragma once
/// \file optimizer.hpp
/// Common types for the classical angle-finding outer loop: the objective
/// callable contract, optimizer options and results.

#include <functional>
#include <span>
#include <vector>

#include "runtime/budget.hpp"

namespace fastqaoa {

/// Objective with optional gradient: returns f(x); when `grad` is non-empty
/// (same length as x) it must be filled with df/dx. Optimizers *minimize*.
using GradObjective =
    std::function<double(std::span<const double>, std::span<double>)>;

/// Gradient-free objective.
using PlainObjective = std::function<double(std::span<const double>)>;

/// Batched gradient-free objective: `points` holds out.size() lane-major
/// packed angle vectors (lane l at points[l*width ..)), out[l] receives
/// f(lane l). Contract: per-lane values are bit-identical to the plain
/// objective at the same point (the evaluate_batch guarantee), so optimizers
/// may batch or not without changing any result.
using BatchObjective =
    std::function<void(std::span<const double>, std::span<double>)>;

/// Result of a local or global minimization.
struct OptResult {
  std::vector<double> x;      ///< best point found
  double f = 0.0;             ///< objective at x
  int iterations = 0;         ///< optimizer iterations
  std::size_t evaluations = 0;  ///< objective/gradient callbacks
  bool converged = false;     ///< tolerance met (vs. iteration cap)
  /// Why the optimizer returned before converging/exhausting iterations:
  /// a tripped RunBudget, cancellation, or a non-finite objective value it
  /// backed away from. None for a normal finish. Budget trips return the
  /// best point found so far — they never throw.
  runtime::StopReason stop_reason = runtime::StopReason::None;

  [[nodiscard]] bool stopped_early() const noexcept {
    return stop_reason != runtime::StopReason::None;
  }
};

/// Wrap a gradient-free objective as a GradObjective that refuses gradient
/// requests (for optimizers that never ask, like Nelder–Mead).
GradObjective no_gradient(PlainObjective fn);

}  // namespace fastqaoa
