#pragma once
/// \file nelder_mead.hpp
/// Derivative-free Nelder–Mead simplex minimization. Provided as the
/// gradient-free alternative in the angle-finding toolbox (useful for
/// objectives where gradients are unavailable, e.g. sampled estimates).

#include "anglefind/optimizer.hpp"

namespace fastqaoa {

/// Nelder–Mead configuration (standard reflection/expansion/contraction
/// coefficients).
struct NelderMeadOptions {
  int max_iterations = 2000;
  double f_tolerance = 1e-10;      ///< stop when simplex f-spread below this
  double x_tolerance = 1e-10;      ///< stop when simplex diameter below this
  double initial_step = 0.25;      ///< initial simplex edge length
  double reflection = 1.0;
  double expansion = 2.0;
  double contraction = 0.5;
  double shrink = 0.5;
};

/// Minimize a gradient-free objective starting from x0.
OptResult nelder_mead_minimize(const PlainObjective& fn,
                               std::vector<double> x0,
                               const NelderMeadOptions& options = {});

}  // namespace fastqaoa
