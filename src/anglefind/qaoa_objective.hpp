#pragma once
/// \file qaoa_objective.hpp
/// Adapter that turns a QAOA plan + workspace (or a Qaoa engine) into the
/// minimization objective the optimizers consume: f(angles) = -<C> for
/// maximization (+<C> for minimization), with gradients supplied either by
/// the adjoint AD path or by finite differences — the exact axis Fig. 5
/// sweeps.

#include <span>

#include "anglefind/optimizer.hpp"
#include "autodiff/adjoint.hpp"
#include "autodiff/finite_diff.hpp"
#include "core/plan.hpp"
#include "core/qaoa.hpp"

namespace fastqaoa {

/// How the optimizer obtains gradients of <C>.
enum class GradientProvider {
  Adjoint,      ///< exact reverse-mode (O(1) evaluations) — the AD analogue
  CentralDiff,  ///< central finite differences (2p evaluations)
  ForwardDiff,  ///< forward finite differences (p evaluations)
};

/// Minimization objective over packed angles [betas..., gammas...].
/// Holds references to a shared (immutable) plan and a private workspace;
/// one instance per optimization thread, reused across the whole run
/// (buffers allocated once). The plan may be shared across threads — each
/// thread's QaoaObjective just needs its own EvalWorkspace.
class QaoaObjective {
 public:
  /// `eval_batch` > 1 routes finite-difference gradients and value_batch()
  /// through evaluate_batch with that many lanes per kernel call; values
  /// stay bit-identical to the sequential path, only throughput changes.
  QaoaObjective(const QaoaPlan& plan, EvalWorkspace& ws,
                Direction direction = Direction::Maximize,
                GradientProvider provider = GradientProvider::Adjoint,
                int eval_batch = 1);

  /// Convenience: bind to a Qaoa engine's plan + workspace.
  explicit QaoaObjective(Qaoa& engine,
                         Direction direction = Direction::Maximize,
                         GradientProvider provider = GradientProvider::Adjoint);

  /// Evaluate f (and the gradient when `grad` is non-empty).
  double operator()(std::span<const double> packed, std::span<double> grad);

  /// Batched value-only evaluation: out.size() lane-major packed angle
  /// vectors, out[l] = f(lane l), bit-identical to out.size() calls of
  /// operator() with an empty gradient span.
  void value_batch(std::span<const double> packed_lanes,
                   std::span<double> out);

  /// Expose as the std::function type the optimizers take. The returned
  /// callable references *this; keep the QaoaObjective alive while in use.
  [[nodiscard]] GradObjective as_grad_objective();

  /// Batched counterpart of as_grad_objective() (wraps value_batch; same
  /// lifetime caveat).
  [[nodiscard]] BatchObjective as_batch_objective();

  /// Number of underlying expectation-value evaluations so far (each
  /// adjoint gradient counts as one forward evaluation plus one reverse
  /// sweep, tallied as 2; finite differences tally every evaluation).
  [[nodiscard]] std::size_t evaluations() const noexcept { return evals_; }
  void reset_evaluations() noexcept { evals_ = 0; }

  [[nodiscard]] Direction direction() const noexcept { return direction_; }

  /// Convert an optimizer value back to an expectation: <C> = -f for
  /// maximization, +f for minimization.
  [[nodiscard]] double to_expectation(double f) const noexcept {
    return direction_ == Direction::Maximize ? -f : f;
  }

 private:
  const QaoaPlan* plan_;
  EvalWorkspace* ws_;
  Direction direction_;
  GradientProvider provider_;
  FiniteDiffDifferentiator central_;
  FiniteDiffDifferentiator forward_;
  int eval_batch_ = 1;
  std::size_t evals_ = 0;
};

}  // namespace fastqaoa
