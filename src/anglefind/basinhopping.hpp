#pragma once
/// \file basinhopping.hpp
/// Wales–Doye basinhopping [33]: alternate random perturbations with local
/// (BFGS) minimization and accept/reject hops with a Metropolis criterion.
/// This is the paper's workhorse global angle-finder (§2.3).

#include "anglefind/bfgs.hpp"
#include "anglefind/optimizer.hpp"
#include "common/rng.hpp"

namespace fastqaoa {

/// Basinhopping configuration.
struct BasinHoppingOptions {
  int hops = 30;                 ///< number of perturb+minimize cycles
  double step_size = 0.5;        ///< uniform perturbation half-width
  double temperature = 1.0;      ///< Metropolis temperature (0 = greedy)
  bool adaptive_step = true;     ///< tune step_size toward ~50% acceptance
  int no_improvement_limit = 0;  ///< early stop after this many stale hops
                                 ///< (0 = disabled)
  /// Trial points drawn per hop. 1 = the classic Wales–Doye hop (perturb,
  /// minimize, Metropolis). With P > 1 each hop draws P perturbations
  /// serially from the chain's RNG, scores them all in one batched
  /// evaluation, and runs the (expensive) local minimization only from the
  /// most promising one — the batch analogue of the hop. Needs a
  /// BatchObjective passed to basinhopping(); silently behaves as 1
  /// otherwise. Results depend on P (more exploration per hop) but, for a
  /// fixed P, are thread-count and kernel-batch-size invariant: the draws
  /// are serial and batched values are bit-identical to sequential ones.
  int proposals = 1;
  BfgsOptions local;             ///< local minimizer settings
};

/// Global minimization by basinhopping from x0. Perturbations and the
/// Metropolis coin use `rng`, so runs are reproducible per seed.
/// `batch_values`, when non-null and options.proposals > 1, scores hop
/// proposals in batches (see BasinHoppingOptions::proposals).
OptResult basinhopping(const GradObjective& fn, std::vector<double> x0,
                       Rng& rng, const BasinHoppingOptions& options = {},
                       const BatchObjective* batch_values = nullptr);

}  // namespace fastqaoa
