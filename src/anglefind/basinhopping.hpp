#pragma once
/// \file basinhopping.hpp
/// Wales–Doye basinhopping [33]: alternate random perturbations with local
/// (BFGS) minimization and accept/reject hops with a Metropolis criterion.
/// This is the paper's workhorse global angle-finder (§2.3).

#include "anglefind/bfgs.hpp"
#include "anglefind/optimizer.hpp"
#include "common/rng.hpp"

namespace fastqaoa {

/// Basinhopping configuration.
struct BasinHoppingOptions {
  int hops = 30;                 ///< number of perturb+minimize cycles
  double step_size = 0.5;        ///< uniform perturbation half-width
  double temperature = 1.0;      ///< Metropolis temperature (0 = greedy)
  bool adaptive_step = true;     ///< tune step_size toward ~50% acceptance
  int no_improvement_limit = 0;  ///< early stop after this many stale hops
                                 ///< (0 = disabled)
  BfgsOptions local;             ///< local minimizer settings
};

/// Global minimization by basinhopping from x0. Perturbations and the
/// Metropolis coin use `rng`, so runs are reproducible per seed.
OptResult basinhopping(const GradObjective& fn, std::vector<double> x0,
                       Rng& rng, const BasinHoppingOptions& options = {});

}  // namespace fastqaoa
