#include "anglefind/strategies.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "core/plan.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fastqaoa {

std::vector<double> AngleSchedule::packed() const {
  std::vector<double> out;
  out.reserve(betas.size() + gammas.size());
  out.insert(out.end(), betas.begin(), betas.end());
  out.insert(out.end(), gammas.begin(), gammas.end());
  return out;
}

std::vector<double> interp_extrapolate(const std::vector<double>& prev) {
  FASTQAOA_CHECK(!prev.empty(), "interp_extrapolate: empty angle sequence");
  const std::size_t p = prev.size();
  std::vector<double> next(p + 1);
  if (p == 1) {
    next[0] = prev[0];
    next[1] = prev[0];
    return next;
  }
  // Resample the piecewise-linear profile through prev[0..p) at p+1 evenly
  // spaced parameters (INTERP of Zhou et al.).
  for (std::size_t i = 0; i <= p; ++i) {
    const double t = static_cast<double>(i) * static_cast<double>(p - 1) /
                     static_cast<double>(p);
    const std::size_t lo = static_cast<std::size_t>(std::floor(t));
    const std::size_t hi = std::min(lo + 1, p - 1);
    const double frac = t - static_cast<double>(lo);
    next[i] = (1.0 - frac) * prev[lo] + frac * prev[hi];
  }
  return next;
}

std::vector<double> tqa_initial_angles(int p, double dt) {
  FASTQAOA_CHECK(p >= 1, "tqa_initial_angles: need p >= 1");
  FASTQAOA_CHECK(dt > 0.0, "tqa_initial_angles: need dt > 0");
  std::vector<double> packed(static_cast<std::size_t>(2 * p));
  for (int i = 0; i < p; ++i) {
    const double s = (i + 0.5) / static_cast<double>(p);
    packed[static_cast<std::size_t>(i)] = (1.0 - s) * dt;       // beta
    packed[static_cast<std::size_t>(p + i)] = s * dt;           // gamma
  }
  return packed;
}

namespace {

/// Build the shared, immutable evaluation plan every worker reads from.
QaoaPlan make_plan(const Mixer& mixer, const dvec& obj_vals, int p,
                   const FindAnglesOptions& options) {
  QaoaPlanOptions plan_options;
  if (options.phase_values) plan_options.phase_values = *options.phase_values;
  return QaoaPlan(mixer, obj_vals, p, std::move(plan_options));
}

struct ChainResult {
  AngleSchedule schedule;
  double f = std::numeric_limits<double>::infinity();  ///< minimized value
};

/// One basinhopping chain: private workspace + RNG against the shared plan.
/// The workspace's metric sink is bound for the duration of the chain and
/// merged into the global registry before returning (the join point), so
/// merged totals are identical at any thread count.
ChainResult run_basinhopping(const QaoaPlan& plan, int p,
                             const std::vector<double>& x0, Rng& rng,
                             const FindAnglesOptions& options) {
  EvalWorkspace ws;
  FASTQAOA_OBS_SCOPE(ws.metrics);
  FASTQAOA_OBS_COUNT("anglefind.chains", 1);
  FASTQAOA_TRACE_SPAN("chain");
  QaoaObjective objective(plan, ws, options.direction, options.gradient);
  GradObjective fn = objective.as_grad_objective();
  OptResult res = basinhopping(fn, x0, rng, options.hopping);

  ChainResult out;
  out.f = res.f;
  out.schedule.p = p;
  out.schedule.betas.assign(res.x.begin(), res.x.begin() + p);
  out.schedule.gammas.assign(res.x.begin() + p, res.x.end());
  out.schedule.expectation = objective.to_expectation(res.f);
  out.schedule.optimizer_calls = res.evaluations;
  out.schedule.evaluations = objective.evaluations();
  FASTQAOA_OBS_MERGE_GLOBAL(ws.metrics);
  return out;
}

/// Run options.parallel_starts independent chains from (jittered copies of)
/// x0 and keep the best. RNG streams are forked serially before the
/// parallel region, and ties break on the chain index, so the result is
/// identical at any thread count.
AngleSchedule best_of_chains(const QaoaPlan& plan, int p,
                             const std::vector<double>& x0, Rng& rng,
                             const FindAnglesOptions& options) {
  const int chains = std::max(1, options.parallel_starts);
  if (chains == 1) {
    // Single chain: consume the caller's stream directly, exactly like the
    // classic serial implementation (byte-for-byte reproducible results
    // for existing seeds).
    return run_basinhopping(plan, p, x0, rng, options).schedule;
  }

  std::vector<Rng> streams;
  streams.reserve(static_cast<std::size_t>(chains));
  for (int c = 0; c < chains; ++c) streams.push_back(rng.fork());

  // Chain 0 starts exactly at x0 (the INTERP/TQA seed); the others explore
  // jittered copies so the extra workers do not all climb the same basin.
  std::vector<std::vector<double>> starts(static_cast<std::size_t>(chains),
                                          x0);
  for (int c = 1; c < chains; ++c) {
    for (double& a : starts[static_cast<std::size_t>(c)]) {
      a += streams[static_cast<std::size_t>(c)].uniform(
          -options.hopping.step_size, options.hopping.step_size);
    }
  }

  std::vector<ChainResult> results(static_cast<std::size_t>(chains));
  std::exception_ptr error;
#pragma omp parallel for schedule(dynamic) if (chains > 1)
  for (int c = 0; c < chains; ++c) {
    try {
      results[static_cast<std::size_t>(c)] = run_basinhopping(
          plan, p, starts[static_cast<std::size_t>(c)],
          streams[static_cast<std::size_t>(c)], options);
    } catch (...) {
#pragma omp critical(fastqaoa_chain_error)
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);

  std::size_t best = 0;
  for (std::size_t c = 1; c < results.size(); ++c) {
    if (results[c].f < results[best].f) best = c;
  }
  // The schedule carries the cost of the *whole* search, not just the
  // winning chain.
  std::size_t calls = 0;
  std::size_t evals = 0;
  for (const ChainResult& r : results) {
    calls += r.schedule.optimizer_calls;
    evals += r.schedule.evaluations;
  }
  AngleSchedule winner = std::move(results[best].schedule);
  winner.optimizer_calls = calls;
  winner.evaluations = evals;
  return winner;
}

}  // namespace

std::vector<AngleSchedule> find_angles(const Mixer& mixer,
                                       const dvec& obj_vals, int max_rounds,
                                       const FindAnglesOptions& options) {
  FASTQAOA_CHECK(max_rounds >= 1, "find_angles: need max_rounds >= 1");
  Rng rng(options.seed);

  std::vector<AngleSchedule> schedules;
  if (!options.checkpoint_file.empty() &&
      std::filesystem::exists(options.checkpoint_file)) {
    schedules = load_checkpoint(options.checkpoint_file);
    if (static_cast<int>(schedules.size()) > max_rounds) {
      schedules.resize(static_cast<std::size_t>(max_rounds));
    }
  }

  for (int p = static_cast<int>(schedules.size()) + 1; p <= max_rounds; ++p) {
    FASTQAOA_TRACE_SPAN("find_angles_round");
    const auto round_start = std::chrono::steady_clock::now();
    std::vector<double> x0;
    if (schedules.empty()) {
      // Round 1: a small random start; basinhopping explores from there.
      x0 = {rng.uniform(0.0, 2.0 * kPi), rng.uniform(0.0, 2.0 * kPi)};
    } else {
      const AngleSchedule& prev = schedules.back();
      const std::vector<double> betas = interp_extrapolate(prev.betas);
      const std::vector<double> gammas = interp_extrapolate(prev.gammas);
      x0.insert(x0.end(), betas.begin(), betas.end());
      x0.insert(x0.end(), gammas.begin(), gammas.end());
    }
    const QaoaPlan plan = make_plan(mixer, obj_vals, p, options);
    schedules.push_back(best_of_chains(plan, p, x0, rng, options));
    if (!options.checkpoint_file.empty()) {
      save_checkpoint(options.checkpoint_file, schedules);
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      round_start)
            .count();
    FASTQAOA_OBS_COUNT_GLOBAL("anglefind.rounds", 1);
    FASTQAOA_OBS_TIME_GLOBAL("anglefind.round", seconds);
    if (options.on_round) options.on_round(schedules.back(), seconds);
  }
  return schedules;
}

AngleSchedule find_angles_at(const Mixer& mixer, const dvec& obj_vals, int p,
                             const std::vector<double>& initial_packed,
                             const FindAnglesOptions& options) {
  FASTQAOA_CHECK(static_cast<int>(initial_packed.size()) == 2 * p,
                 "find_angles_at: need 2p initial angles");
  Rng rng(options.seed);
  const QaoaPlan plan = make_plan(mixer, obj_vals, p, options);
  return best_of_chains(plan, p, initial_packed, rng, options);
}

AngleSchedule find_angles_random(const Mixer& mixer, const dvec& obj_vals,
                                 int p, int restarts,
                                 const FindAnglesOptions& options) {
  FASTQAOA_CHECK(p >= 1 && restarts >= 1,
                 "find_angles_random: need p >= 1 and restarts >= 1");
  Rng rng(options.seed);
  const QaoaPlan plan = make_plan(mixer, obj_vals, p, options);

  // Draw every start point serially (one stream, fixed order), then run the
  // local minimizations in parallel against the shared plan. Ties break on
  // the restart index, so the winner is thread-count independent.
  std::vector<std::vector<double>> starts(
      static_cast<std::size_t>(restarts),
      std::vector<double>(static_cast<std::size_t>(2 * p)));
  for (auto& x0 : starts) {
    for (double& a : x0) a = rng.uniform(0.0, 2.0 * kPi);
  }

  std::vector<OptResult> results(static_cast<std::size_t>(restarts));
  std::size_t total_evals = 0;
  std::exception_ptr error;
#pragma omp parallel if (restarts > 1)
  {
    EvalWorkspace ws;
    FASTQAOA_OBS_SCOPE(ws.metrics);
    QaoaObjective objective(plan, ws, options.direction, options.gradient);
    GradObjective fn = objective.as_grad_objective();
#pragma omp for schedule(dynamic)
    for (int r = 0; r < restarts; ++r) {
      try {
        results[static_cast<std::size_t>(r)] =
            bfgs_minimize(fn, starts[static_cast<std::size_t>(r)],
                          options.hopping.local);
      } catch (...) {
#pragma omp critical(fastqaoa_restart_error)
        if (!error) error = std::current_exception();
      }
    }
    const std::size_t mine = objective.evaluations();
#pragma omp atomic
    total_evals += mine;
    FASTQAOA_OBS_MERGE_GLOBAL(ws.metrics);
  }
  if (error) std::rethrow_exception(error);

  std::size_t best = 0;
  std::size_t total_calls = 0;
  for (std::size_t r = 0; r < results.size(); ++r) {
    total_calls += results[r].evaluations;
    if (r > 0 && results[r].f < results[best].f) best = r;
  }
  const OptResult& winner = results[best];

  AngleSchedule schedule;
  schedule.p = p;
  schedule.betas.assign(winner.x.begin(), winner.x.begin() + p);
  schedule.gammas.assign(winner.x.begin() + p, winner.x.end());
  schedule.expectation =
      options.direction == Direction::Maximize ? -winner.f : winner.f;
  schedule.optimizer_calls = total_calls;
  schedule.evaluations = total_evals;
  return schedule;
}

AngleSchedule find_angles_grid(const Mixer& mixer, const dvec& obj_vals,
                               int p, int points_per_axis,
                               const FindAnglesOptions& options,
                               bool polish) {
  FASTQAOA_CHECK(p >= 1, "find_angles_grid: need p >= 1");
  FASTQAOA_CHECK(points_per_axis >= 2,
                 "find_angles_grid: need at least 2 points per axis");
  const int dims = 2 * p;
  FASTQAOA_CHECK(dims * std::log(points_per_axis) < std::log(5e7),
                 "find_angles_grid: grid too large — this strategy is "
                 "exponential in p; use find_angles() instead");

  const QaoaPlan plan = make_plan(mixer, obj_vals, p, options);

  const double step = 2.0 * kPi / points_per_axis;
  long long total = 1;
  for (int d = 0; d < dims; ++d) total *= points_per_axis;

  // Flat enumeration of the grid (index -> mixed-radix digits), parallel
  // over grid points with one workspace per thread. The global winner is
  // the lexicographic min of (f, index), so any schedule gives the same
  // answer.
  double best_f = std::numeric_limits<double>::infinity();
  long long best_index = -1;
  std::size_t grid_evals = 0;
  std::exception_ptr error;
#pragma omp parallel if (total > 1)
  {
    EvalWorkspace ws;
    FASTQAOA_OBS_SCOPE(ws.metrics);
    QaoaObjective objective(plan, ws, options.direction, options.gradient);
    std::vector<double> point(static_cast<std::size_t>(dims), 0.0);
    double local_f = std::numeric_limits<double>::infinity();
    long long local_index = -1;
#pragma omp for schedule(static)
    for (long long t = 0; t < total; ++t) {
      long long rest = t;
      for (int d = 0; d < dims; ++d) {
        point[static_cast<std::size_t>(d)] =
            static_cast<double>(rest % points_per_axis) * step;
        rest /= points_per_axis;
      }
      try {
        const double f = objective(point, {});
        if (f < local_f) {
          local_f = f;
          local_index = t;
        }
      } catch (...) {
#pragma omp critical(fastqaoa_grid_error)
        if (!error) error = std::current_exception();
      }
    }
#pragma omp critical(fastqaoa_grid_best)
    if (local_f < best_f ||
        (local_f == best_f && local_index < best_index)) {
      best_f = local_f;
      best_index = local_index;
    }
    const std::size_t mine = objective.evaluations();
#pragma omp atomic
    grid_evals += mine;
    FASTQAOA_OBS_MERGE_GLOBAL(ws.metrics);
  }
  if (error) std::rethrow_exception(error);

  // Every grid point is one objective callback; the polish adds its own.
  std::size_t optimizer_calls = static_cast<std::size_t>(total);
  std::size_t evaluations = grid_evals;

  std::vector<double> best_point(static_cast<std::size_t>(dims), 0.0);
  long long rest = best_index;
  for (int d = 0; d < dims; ++d) {
    best_point[static_cast<std::size_t>(d)] =
        static_cast<double>(rest % points_per_axis) * step;
    rest /= points_per_axis;
  }

  if (polish) {
    EvalWorkspace ws;
    FASTQAOA_OBS_SCOPE(ws.metrics);
    QaoaObjective objective(plan, ws, options.direction, options.gradient);
    GradObjective fn = objective.as_grad_objective();
    OptResult res = bfgs_minimize(fn, best_point, options.hopping.local);
    optimizer_calls += res.evaluations;
    evaluations += objective.evaluations();
    FASTQAOA_OBS_MERGE_GLOBAL(ws.metrics);
    if (res.f < best_f) {
      best_f = res.f;
      best_point = res.x;
    }
  }

  AngleSchedule schedule;
  schedule.p = p;
  schedule.betas.assign(best_point.begin(), best_point.begin() + p);
  schedule.gammas.assign(best_point.begin() + p, best_point.end());
  schedule.expectation =
      options.direction == Direction::Maximize ? -best_f : best_f;
  schedule.optimizer_calls = optimizer_calls;
  schedule.evaluations = evaluations;
  return schedule;
}

std::vector<double> median_angles(
    const std::vector<std::vector<double>>& packed_angle_sets) {
  FASTQAOA_CHECK(!packed_angle_sets.empty(), "median_angles: no inputs");
  const std::size_t width = packed_angle_sets.front().size();
  for (const auto& set : packed_angle_sets) {
    FASTQAOA_CHECK(set.size() == width, "median_angles: ragged inputs");
  }
  std::vector<double> medians(width);
  std::vector<double> column(packed_angle_sets.size());
  for (std::size_t i = 0; i < width; ++i) {
    for (std::size_t s = 0; s < packed_angle_sets.size(); ++s) {
      column[s] = packed_angle_sets[s][i];
    }
    std::sort(column.begin(), column.end());
    const std::size_t mid = column.size() / 2;
    medians[i] = column.size() % 2 == 1
                     ? column[mid]
                     : 0.5 * (column[mid - 1] + column[mid]);
  }
  return medians;
}

double evaluate_angles(const Mixer& mixer, const dvec& obj_vals,
                       const std::vector<double>& packed,
                       const std::optional<dvec>& phase_values) {
  FASTQAOA_CHECK(packed.size() % 2 == 0 && !packed.empty(),
                 "evaluate_angles: need 2p angles");
  const int p = static_cast<int>(packed.size() / 2);
  QaoaPlanOptions plan_options;
  if (phase_values) plan_options.phase_values = *phase_values;
  const QaoaPlan plan(mixer, obj_vals, p, std::move(plan_options));
  EvalWorkspace ws;
  const double value = evaluate_packed(plan, ws, packed);
  FASTQAOA_OBS_MERGE_GLOBAL(ws.metrics);
  return value;
}

void save_checkpoint(const std::string& path,
                     const std::vector<AngleSchedule>& schedules) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    FASTQAOA_CHECK(out.good(), "save_checkpoint: cannot open " + tmp);
    out.precision(17);
    out << "fastqaoa-angles v1\n";
    out << schedules.size() << "\n";
    for (const AngleSchedule& s : schedules) {
      out << s.p << " " << s.expectation << "\n";
      for (std::size_t i = 0; i < s.betas.size(); ++i) {
        out << (i ? " " : "") << s.betas[i];
      }
      out << "\n";
      for (std::size_t i = 0; i < s.gammas.size(); ++i) {
        out << (i ? " " : "") << s.gammas[i];
      }
      out << "\n";
    }
    FASTQAOA_CHECK(out.good(), "save_checkpoint: write failed for " + tmp);
  }
  // Atomic-ish replace so an interrupted save never corrupts the resume
  // file (the crash-resume behaviour the paper's §3 describes).
  std::filesystem::rename(tmp, path);
}

std::vector<AngleSchedule> load_checkpoint(const std::string& path) {
  std::ifstream in(path);
  FASTQAOA_CHECK(in.good(), "load_checkpoint: cannot open " + path);
  std::string header;
  std::getline(in, header);
  FASTQAOA_CHECK(header == "fastqaoa-angles v1",
                 "load_checkpoint: unrecognized header in " + path);
  std::size_t count = 0;
  in >> count;
  std::vector<AngleSchedule> schedules(count);
  for (AngleSchedule& s : schedules) {
    in >> s.p >> s.expectation;
    FASTQAOA_CHECK(in.good() && s.p >= 1,
                   "load_checkpoint: corrupt entry in " + path);
    s.betas.resize(static_cast<std::size_t>(s.p));
    s.gammas.resize(static_cast<std::size_t>(s.p));
    for (double& b : s.betas) in >> b;
    for (double& g : s.gammas) in >> g;
    FASTQAOA_CHECK(!in.fail(), "load_checkpoint: corrupt angles in " + path);
  }
  return schedules;
}

}  // namespace fastqaoa
