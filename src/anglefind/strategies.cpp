#include "anglefind/strategies.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <fstream>
#include <limits>
#include <span>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "core/plan.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/fault.hpp"

namespace fastqaoa {

std::vector<double> AngleSchedule::packed() const {
  std::vector<double> out;
  out.reserve(betas.size() + gammas.size());
  out.insert(out.end(), betas.begin(), betas.end());
  out.insert(out.end(), gammas.begin(), gammas.end());
  return out;
}

std::vector<double> interp_extrapolate(const std::vector<double>& prev) {
  FASTQAOA_CHECK(!prev.empty(), "interp_extrapolate: empty angle sequence");
  const std::size_t p = prev.size();
  std::vector<double> next(p + 1);
  if (p == 1) {
    next[0] = prev[0];
    next[1] = prev[0];
    return next;
  }
  // Resample the piecewise-linear profile through prev[0..p) at p+1 evenly
  // spaced parameters (INTERP of Zhou et al.).
  for (std::size_t i = 0; i <= p; ++i) {
    const double t = static_cast<double>(i) * static_cast<double>(p - 1) /
                     static_cast<double>(p);
    const std::size_t lo = static_cast<std::size_t>(std::floor(t));
    const std::size_t hi = std::min(lo + 1, p - 1);
    const double frac = t - static_cast<double>(lo);
    next[i] = (1.0 - frac) * prev[lo] + frac * prev[hi];
  }
  return next;
}

std::vector<double> tqa_initial_angles(int p, double dt) {
  FASTQAOA_CHECK(p >= 1, "tqa_initial_angles: need p >= 1");
  FASTQAOA_CHECK(dt > 0.0, "tqa_initial_angles: need dt > 0");
  std::vector<double> packed(static_cast<std::size_t>(2 * p));
  for (int i = 0; i < p; ++i) {
    const double s = (i + 0.5) / static_cast<double>(p);
    packed[static_cast<std::size_t>(i)] = (1.0 - s) * dt;       // beta
    packed[static_cast<std::size_t>(p + i)] = s * dt;           // gamma
  }
  return packed;
}

namespace {

/// Build the shared, immutable evaluation plan every worker reads from.
QaoaPlan make_plan(const Mixer& mixer, const dvec& obj_vals, int p,
                   const FindAnglesOptions& options) {
  QaoaPlanOptions plan_options;
  if (options.phase_values) plan_options.phase_values = *options.phase_values;
  return QaoaPlan(mixer, obj_vals, p, std::move(plan_options));
}

struct ChainResult {
  AngleSchedule schedule;
  double f = std::numeric_limits<double>::infinity();  ///< minimized value
};

/// One basinhopping chain: private workspace + RNG against the shared plan.
/// The workspace's metric sink is bound for the duration of the chain and
/// merged into the global registry before returning (the join point), so
/// merged totals are identical at any thread count. chain_index identifies
/// the chain to the fault-injection harness (firing is keyed on the index,
/// not the thread, so injected faults are schedule-independent).
ChainResult run_basinhopping(const QaoaPlan& plan, int p,
                             const std::vector<double>& x0, Rng& rng,
                             const FindAnglesOptions& options,
                             int chain_index) {
  EvalWorkspace ws;
  FASTQAOA_OBS_SCOPE(ws.metrics);
  FASTQAOA_OBS_COUNT("anglefind.chains", 1);
  FASTQAOA_TRACE_SPAN("chain");
  QaoaObjective objective(plan, ws, options.direction, options.gradient,
                          std::max(1, options.eval_batch));
  GradObjective fn = objective.as_grad_objective();
  // Batched hop-proposal scoring (bit-identical values, so the chain is
  // still a pure function of its RNG stream and the proposal count).
  BatchObjective batch_fn;
  const BatchObjective* batch_values = nullptr;
  if (options.hopping.proposals > 1) {
    batch_fn = objective.as_batch_objective();
    batch_values = &batch_fn;
  }
#ifdef FASTQAOA_FAULT_INJECTION_ENABLED
  // Wrap the objective so an armed "anglefind.chain_nan" fault poisons this
  // chain's value stream exactly once — the divergence the quarantine
  // machinery below must contain.
  GradObjective inner = std::move(fn);
  fn = [&inner, chain_index](std::span<const double> x,
                             std::span<double> grad) {
    const double v = inner(x, grad);
    if (fault::fire("anglefind.chain_nan", chain_index)) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return v;
  };
#else
  (void)chain_index;
#endif
  OptResult res = basinhopping(fn, x0, rng, options.hopping, batch_values);

  ChainResult out;
  out.f = res.f;
  out.schedule.p = p;
  out.schedule.betas.assign(res.x.begin(), res.x.begin() + p);
  out.schedule.gammas.assign(res.x.begin() + p, res.x.end());
  out.schedule.expectation = objective.to_expectation(res.f);
  out.schedule.optimizer_calls = res.evaluations;
  out.schedule.evaluations = objective.evaluations();
  out.schedule.stop_reason = res.stop_reason;
  FASTQAOA_OBS_MERGE_GLOBAL(ws.metrics);
  return out;
}

constexpr int kQuarantineAttempts = 3;

/// run_basinhopping with quarantine-and-reseed: a chain whose best value
/// comes back non-finite (poisoned objective, diverged line search) is
/// quarantined and re-run from the same start point with a reseeded RNG
/// stream instead of poisoning the best-of-chains reduction. Attempt k uses
/// the chain's base stream forked k times — attempt 0 IS the base stream,
/// so healthy chains are bit-identical to the unguarded implementation, and
/// the reseed sequence is a pure function of the chain's stream (thread
/// count invariant). A chain that stays non-finite after every attempt
/// reports f = +inf / StopReason::NonFinite and simply loses the reduction.
ChainResult run_chain_guarded(const QaoaPlan& plan, int p,
                              const std::vector<double>& x0, const Rng& base,
                              const FindAnglesOptions& options,
                              int chain_index) {
  std::size_t calls = 0;
  std::size_t evals = 0;
  for (int attempt = 0; attempt < kQuarantineAttempts; ++attempt) {
    Rng stream = base;
    for (int k = 0; k < attempt; ++k) stream = stream.fork();
    ChainResult res =
        run_basinhopping(plan, p, x0, stream, options, chain_index);
    calls += res.schedule.optimizer_calls;
    evals += res.schedule.evaluations;
    if (std::isfinite(res.f)) {
      res.schedule.optimizer_calls = calls;
      res.schedule.evaluations = evals;
      return res;
    }
    FASTQAOA_OBS_COUNT_GLOBAL("runtime.quarantine.chains", 1);
    // Don't burn the remaining attempts when the stop was a budget trip
    // rather than a numerical divergence.
    if (res.schedule.stopped_early() &&
        res.schedule.stop_reason != runtime::StopReason::NonFinite) {
      res.schedule.optimizer_calls = calls;
      res.schedule.evaluations = evals;
      res.f = std::numeric_limits<double>::infinity();
      return res;
    }
  }
  FASTQAOA_OBS_COUNT_GLOBAL("runtime.quarantine.exhausted", 1);
  ChainResult dead;
  dead.schedule.p = p;
  dead.schedule.betas.assign(x0.begin(), x0.begin() + p);
  dead.schedule.gammas.assign(x0.begin() + p, x0.end());
  dead.schedule.expectation = std::numeric_limits<double>::quiet_NaN();
  dead.schedule.optimizer_calls = calls;
  dead.schedule.evaluations = evals;
  dead.schedule.stop_reason = runtime::StopReason::NonFinite;
  dead.f = std::numeric_limits<double>::infinity();
  return dead;
}

/// Run options.parallel_starts independent chains from (jittered copies of)
/// x0 and keep the best. RNG streams are forked serially before the
/// parallel region, and ties break on the chain index, so the result is
/// identical at any thread count. `tracker` stamps the winning schedule
/// with the budget's StopReason when the search was cut short.
AngleSchedule best_of_chains(const QaoaPlan& plan, int p,
                             const std::vector<double>& x0, Rng& rng,
                             const FindAnglesOptions& options,
                             const runtime::BudgetTracker& tracker) {
  const int chains = std::max(1, options.parallel_starts);
  AngleSchedule winner;
  if (chains == 1) {
    // Single chain: consume the caller's stream directly, exactly like the
    // classic serial implementation (byte-for-byte reproducible results
    // for existing seeds). The guarded runner's attempt 0 replays the
    // stream state we advance here.
    const Rng base = rng;
    rng.fork();  // advance the caller's stream past this chain's substream
    winner = run_chain_guarded(plan, p, x0, base, options, 0).schedule;
  } else {
    std::vector<Rng> streams;
    streams.reserve(static_cast<std::size_t>(chains));
    for (int c = 0; c < chains; ++c) streams.push_back(rng.fork());

    // Chain 0 starts exactly at x0 (the INTERP/TQA seed); the others
    // explore jittered copies so the extra workers do not all climb the
    // same basin.
    std::vector<std::vector<double>> starts(static_cast<std::size_t>(chains),
                                            x0);
    for (int c = 1; c < chains; ++c) {
      for (double& a : starts[static_cast<std::size_t>(c)]) {
        a += streams[static_cast<std::size_t>(c)].uniform(
            -options.hopping.step_size, options.hopping.step_size);
      }
    }

    std::vector<ChainResult> results(static_cast<std::size_t>(chains));
    std::exception_ptr error;
#pragma omp parallel for schedule(dynamic) if (chains > 1)
    for (int c = 0; c < chains; ++c) {
      try {
        results[static_cast<std::size_t>(c)] = run_chain_guarded(
            plan, p, starts[static_cast<std::size_t>(c)],
            streams[static_cast<std::size_t>(c)], options, c);
      } catch (...) {
#pragma omp critical(fastqaoa_chain_error)
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);

    // Quarantined chains carry f = +inf, so they lose every `<` comparison
    // and can never poison the reduction.
    std::size_t best = 0;
    for (std::size_t c = 1; c < results.size(); ++c) {
      if (results[c].f < results[best].f) best = c;
    }
    // The schedule carries the cost of the *whole* search, not just the
    // winning chain.
    std::size_t calls = 0;
    std::size_t evals = 0;
    for (const ChainResult& r : results) {
      calls += r.schedule.optimizer_calls;
      evals += r.schedule.evaluations;
    }
    winner = std::move(results[best].schedule);
    winner.optimizer_calls = calls;
    winner.evaluations = evals;
  }

  // Round-level stop annotation: the live budget state outranks whatever
  // the winning chain saw locally (a chain may have finished just before
  // the deadline another chain tripped).
  const runtime::StopReason now = tracker.check();
  if (now != runtime::StopReason::None) {
    winner.stop_reason = now;
  } else if (winner.stop_reason != runtime::StopReason::NonFinite) {
    winner.stop_reason = runtime::StopReason::None;
  }
  return winner;
}

/// Resolve which live budget state a strategy call uses: the caller's
/// shared tracker if provided, else `own` (constructed from options.budget).
runtime::BudgetTracker* resolve_tracker(const FindAnglesOptions& options,
                                        runtime::BudgetTracker& own) {
  return options.shared_tracker != nullptr ? options.shared_tracker : &own;
}

/// Copy of `options` with the optimizer-level budget pointer threaded into
/// the BFGS options (so budget checks happen at iteration granularity).
FindAnglesOptions with_budget(const FindAnglesOptions& options,
                              runtime::BudgetTracker* tracker) {
  FindAnglesOptions opts = options;
  opts.hopping.local.budget = tracker->active() ? tracker : nullptr;
  return opts;
}

}  // namespace

std::vector<AngleSchedule> find_angles(const Mixer& mixer,
                                       const dvec& obj_vals, int max_rounds,
                                       const FindAnglesOptions& options) {
  FASTQAOA_CHECK(max_rounds >= 1, "find_angles: need max_rounds >= 1");

  runtime::BudgetTracker own(options.budget);
  runtime::BudgetTracker* tracker = resolve_tracker(options, own);
  const FindAnglesOptions opts = with_budget(options, tracker);

  const CheckpointFingerprint fingerprint{
      static_cast<std::uint64_t>(obj_vals.size()), options.direction,
      options.seed, mixer.name()};

  // One serially forked RNG stream per round: round p's randomness is a
  // pure function of (seed, p), independent of how many earlier rounds ran
  // in this process. That is what makes a crash-resumed run bit-identical
  // to an uninterrupted one.
  Rng master(options.seed);
  std::vector<Rng> round_streams;
  round_streams.reserve(static_cast<std::size_t>(max_rounds));
  for (int p = 0; p < max_rounds; ++p) round_streams.push_back(master.fork());

  std::vector<AngleSchedule> schedules;
  if (!options.checkpoint_file.empty() &&
      std::filesystem::exists(options.checkpoint_file)) {
    schedules = load_checkpoint(options.checkpoint_file, fingerprint);
    // Budget-stopped rounds were checkpointed for inspection, not resume:
    // their angles are best-so-far, so re-optimize them now that the run
    // (possibly) has fresh budget.
    while (!schedules.empty() && schedules.back().stopped_early()) {
      schedules.pop_back();
    }
    if (static_cast<int>(schedules.size()) > max_rounds) {
      schedules.resize(static_cast<std::size_t>(max_rounds));
    }
    FASTQAOA_OBS_COUNT_GLOBAL("runtime.checkpoint.resumed_rounds",
                              schedules.size());
  }

  for (int p = static_cast<int>(schedules.size()) + 1; p <= max_rounds; ++p) {
    if (!schedules.empty()) {
      // Between-rounds budget check: annotate the last *completed* round in
      // the returned set (the checkpoint keeps it unflagged — it really did
      // finish, so a resume must not redo it). When no round has run yet the
      // check is skipped so even an already-expired budget yields a
      // best-so-far round 1 (its optimizer stops within one iteration).
      const runtime::StopReason reason = tracker->check();
      if (reason != runtime::StopReason::None) {
        schedules.back().stop_reason = reason;
        break;
      }
    }
    FASTQAOA_TRACE_SPAN("find_angles_round");
    const auto round_start = std::chrono::steady_clock::now();
    Rng& rng = round_streams[static_cast<std::size_t>(p - 1)];
    std::vector<double> x0;
    if (schedules.empty()) {
      // Round 1: a small random start; basinhopping explores from there.
      x0 = {rng.uniform(0.0, 2.0 * kPi), rng.uniform(0.0, 2.0 * kPi)};
    } else {
      const AngleSchedule& prev = schedules.back();
      const std::vector<double> betas = interp_extrapolate(prev.betas);
      const std::vector<double> gammas = interp_extrapolate(prev.gammas);
      x0.insert(x0.end(), betas.begin(), betas.end());
      x0.insert(x0.end(), gammas.begin(), gammas.end());
    }
    const QaoaPlan plan = make_plan(mixer, obj_vals, p, opts);
    schedules.push_back(best_of_chains(plan, p, x0, rng, opts, *tracker));
    if (!options.checkpoint_file.empty()) {
      save_checkpoint(options.checkpoint_file, schedules, fingerprint);
      if (FASTQAOA_FAULT_FIRE("crash.after_round", p)) {
        // Simulated hard kill for the fault-injection tests: the process
        // dies right after the checkpoint landed, exactly like SIGKILL.
        std::_Exit(137);
      }
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      round_start)
            .count();
    FASTQAOA_OBS_COUNT_GLOBAL("anglefind.rounds", 1);
    FASTQAOA_OBS_TIME_GLOBAL("anglefind.round", seconds);
    FASTQAOA_OBS_HIST_GLOBAL("anglefind.round_latency_seconds", seconds);
    if (options.on_round) options.on_round(schedules.back(), seconds);
    if (schedules.back().stopped_early()) break;
  }
  return schedules;
}

AngleSchedule find_angles_at(const Mixer& mixer, const dvec& obj_vals, int p,
                             const std::vector<double>& initial_packed,
                             const FindAnglesOptions& options) {
  FASTQAOA_CHECK(static_cast<int>(initial_packed.size()) == 2 * p,
                 "find_angles_at: need 2p initial angles");
  runtime::BudgetTracker own(options.budget);
  runtime::BudgetTracker* tracker = resolve_tracker(options, own);
  const FindAnglesOptions opts = with_budget(options, tracker);
  Rng rng(options.seed);
  const QaoaPlan plan = make_plan(mixer, obj_vals, p, opts);
  return best_of_chains(plan, p, initial_packed, rng, opts, *tracker);
}

AngleSchedule find_angles_random(const Mixer& mixer, const dvec& obj_vals,
                                 int p, int restarts,
                                 const FindAnglesOptions& options) {
  FASTQAOA_CHECK(p >= 1 && restarts >= 1,
                 "find_angles_random: need p >= 1 and restarts >= 1");
  runtime::BudgetTracker own(options.budget);
  runtime::BudgetTracker* tracker = resolve_tracker(options, own);
  const FindAnglesOptions opts = with_budget(options, tracker);
  Rng rng(options.seed);
  const QaoaPlan plan = make_plan(mixer, obj_vals, p, opts);

  // Draw every start point serially (one stream, fixed order), then run the
  // local minimizations in parallel against the shared plan. Ties break on
  // the restart index, so the winner is thread-count independent.
  std::vector<std::vector<double>> starts(
      static_cast<std::size_t>(restarts),
      std::vector<double>(static_cast<std::size_t>(2 * p)));
  for (auto& x0 : starts) {
    for (double& a : x0) a = rng.uniform(0.0, 2.0 * kPi);
  }

  std::vector<OptResult> results(static_cast<std::size_t>(restarts));
  std::size_t total_evals = 0;
  std::exception_ptr error;
#pragma omp parallel if (restarts > 1)
  {
    EvalWorkspace ws;
    FASTQAOA_OBS_SCOPE(ws.metrics);
    QaoaObjective objective(plan, ws, options.direction, options.gradient,
                            std::max(1, options.eval_batch));
    GradObjective fn = objective.as_grad_objective();
#pragma omp for schedule(dynamic)
    for (int r = 0; r < restarts; ++r) {
      try {
        // A tripped budget skips the remaining restarts (they report +inf
        // and lose the reduction) — except restart 0, which always runs so
        // a best-so-far answer exists even under an instant deadline.
        if (r > 0 && tracker->check() != runtime::StopReason::None) {
          results[static_cast<std::size_t>(r)].f =
              std::numeric_limits<double>::infinity();
          continue;
        }
        results[static_cast<std::size_t>(r)] =
            bfgs_minimize(fn, starts[static_cast<std::size_t>(r)],
                          opts.hopping.local);
      } catch (...) {
#pragma omp critical(fastqaoa_restart_error)
        if (!error) error = std::current_exception();
      }
    }
    const std::size_t mine = objective.evaluations();
#pragma omp atomic
    total_evals += mine;
    FASTQAOA_OBS_MERGE_GLOBAL(ws.metrics);
  }
  if (error) std::rethrow_exception(error);

  // Lowest finite f wins (index tie-break); restarts that diverged to
  // NaN/Inf or were skipped by a tripped budget never take the reduction.
  std::size_t best = 0;
  std::size_t total_calls = 0;
  for (std::size_t r = 0; r < results.size(); ++r) {
    total_calls += results[r].evaluations;
    if (r > 0 && !(std::isfinite(results[best].f)) &&
        std::isfinite(results[r].f)) {
      best = r;
    } else if (r > 0 && results[r].f < results[best].f) {
      best = r;
    }
  }
  const OptResult& winner = results[best];

  AngleSchedule schedule;
  schedule.p = p;
  schedule.betas.assign(winner.x.begin(), winner.x.begin() + p);
  schedule.gammas.assign(winner.x.begin() + p, winner.x.end());
  schedule.expectation =
      options.direction == Direction::Maximize ? -winner.f : winner.f;
  schedule.optimizer_calls = total_calls;
  schedule.evaluations = total_evals;
  schedule.stop_reason = tracker->check();
  if (schedule.stop_reason == runtime::StopReason::None &&
      !std::isfinite(winner.f)) {
    schedule.stop_reason = runtime::StopReason::NonFinite;
  }
  return schedule;
}

AngleSchedule find_angles_grid(const Mixer& mixer, const dvec& obj_vals,
                               int p, int points_per_axis,
                               const FindAnglesOptions& options,
                               bool polish) {
  FASTQAOA_CHECK(p >= 1, "find_angles_grid: need p >= 1");
  FASTQAOA_CHECK(points_per_axis >= 2,
                 "find_angles_grid: need at least 2 points per axis");
  const int dims = 2 * p;
  FASTQAOA_CHECK(dims * std::log(points_per_axis) < std::log(5e7),
                 "find_angles_grid: grid too large — this strategy is "
                 "exponential in p; use find_angles() instead");

  runtime::BudgetTracker own(options.budget);
  runtime::BudgetTracker* tracker = resolve_tracker(options, own);
  const FindAnglesOptions opts = with_budget(options, tracker);
  const QaoaPlan plan = make_plan(mixer, obj_vals, p, opts);

  const double step = 2.0 * kPi / points_per_axis;
  long long total = 1;
  for (int d = 0; d < dims; ++d) total *= points_per_axis;

  // Flat enumeration of the grid (index -> mixed-radix digits), parallel
  // over grid points with one workspace per thread. The global winner is
  // the lexicographic min of (f, index), so any schedule gives the same
  // answer.
  double best_f = std::numeric_limits<double>::infinity();
  long long best_index = -1;
  std::size_t grid_evals = 0;
  std::exception_ptr error;
  const int batch = std::max(1, options.eval_batch);
  if (batch > 1) {
    // Batched sweep: `batch` grid points per evaluate_batch call through one
    // workspace. Batched values are bit-identical to sequential ones and the
    // chunks walk the same flat enumeration, so the lexicographic (f, index)
    // winner is exactly the scalar sweep's at any batch width.
    EvalWorkspace ws;
    FASTQAOA_OBS_SCOPE(ws.metrics);
    QaoaObjective objective(plan, ws, options.direction, options.gradient,
                            batch);
    std::vector<double> points(static_cast<std::size_t>(batch) *
                               static_cast<std::size_t>(dims));
    std::vector<double> values(static_cast<std::size_t>(batch));
    for (long long t0 = 0; t0 < total;
         t0 += static_cast<long long>(batch)) {
      // Cooperative stop at chunk granularity; the partial winner is
      // flagged stopped_early below exactly like the scalar sweep.
      if (tracker->active() &&
          tracker->check() != runtime::StopReason::None) {
        break;
      }
      const int chunk = static_cast<int>(
          std::min<long long>(batch, total - t0));
      for (int j = 0; j < chunk; ++j) {
        long long rest = t0 + j;
        for (int d = 0; d < dims; ++d) {
          points[static_cast<std::size_t>(j * dims + d)] =
              static_cast<double>(rest % points_per_axis) * step;
          rest /= points_per_axis;
        }
      }
      objective.value_batch(
          std::span<const double>(points.data(),
                                  static_cast<std::size_t>(chunk * dims)),
          std::span<double>(values.data(), static_cast<std::size_t>(chunk)));
      for (int j = 0; j < chunk; ++j) {
        if (values[static_cast<std::size_t>(j)] < best_f) {
          best_f = values[static_cast<std::size_t>(j)];
          best_index = t0 + j;
        }
      }
    }
    grid_evals = objective.evaluations();
    FASTQAOA_OBS_MERGE_GLOBAL(ws.metrics);
  } else {
#pragma omp parallel if (total > 1)
  {
    EvalWorkspace ws;
    FASTQAOA_OBS_SCOPE(ws.metrics);
    QaoaObjective objective(plan, ws, options.direction, options.gradient);
    std::vector<double> point(static_cast<std::size_t>(dims), 0.0);
    double local_f = std::numeric_limits<double>::infinity();
    long long local_index = -1;
    bool tripped = false;
#pragma omp for schedule(static)
    for (long long t = 0; t < total; ++t) {
      // Cooperative stop: once the budget trips, the remaining points in
      // every thread's range are skipped (the partial winner is flagged
      // stopped_early below).
      if (tripped) continue;
      if (tracker->active() &&
          tracker->check() != runtime::StopReason::None) {
        tripped = true;
        continue;
      }
      long long rest = t;
      for (int d = 0; d < dims; ++d) {
        point[static_cast<std::size_t>(d)] =
            static_cast<double>(rest % points_per_axis) * step;
        rest /= points_per_axis;
      }
      try {
        const double f = objective(point, {});
        if (f < local_f) {
          local_f = f;
          local_index = t;
        }
      } catch (...) {
#pragma omp critical(fastqaoa_grid_error)
        if (!error) error = std::current_exception();
      }
    }
#pragma omp critical(fastqaoa_grid_best)
    if (local_f < best_f ||
        (local_f == best_f && local_index < best_index)) {
      best_f = local_f;
      best_index = local_index;
    }
    const std::size_t mine = objective.evaluations();
#pragma omp atomic
    grid_evals += mine;
    FASTQAOA_OBS_MERGE_GLOBAL(ws.metrics);
  }
  }
  if (error) std::rethrow_exception(error);
  tracker->add_evaluations(grid_evals);

  // Every grid point is one objective callback; the polish adds its own.
  std::size_t optimizer_calls = static_cast<std::size_t>(total);
  std::size_t evaluations = grid_evals;

  std::vector<double> best_point(static_cast<std::size_t>(dims), 0.0);
  long long rest = best_index;
  for (int d = 0; d < dims; ++d) {
    best_point[static_cast<std::size_t>(d)] =
        static_cast<double>(rest % points_per_axis) * step;
    rest /= points_per_axis;
  }

  if (polish && best_index >= 0) {
    EvalWorkspace ws;
    FASTQAOA_OBS_SCOPE(ws.metrics);
    QaoaObjective objective(plan, ws, options.direction, options.gradient,
                            batch);
    GradObjective fn = objective.as_grad_objective();
    OptResult res = bfgs_minimize(fn, best_point, opts.hopping.local);
    optimizer_calls += res.evaluations;
    evaluations += objective.evaluations();
    FASTQAOA_OBS_MERGE_GLOBAL(ws.metrics);
    if (res.f < best_f) {
      best_f = res.f;
      best_point = res.x;
    }
  }

  AngleSchedule schedule;
  schedule.p = p;
  schedule.betas.assign(best_point.begin(), best_point.begin() + p);
  schedule.gammas.assign(best_point.begin() + p, best_point.end());
  schedule.expectation =
      options.direction == Direction::Maximize ? -best_f : best_f;
  schedule.optimizer_calls = optimizer_calls;
  schedule.evaluations = evaluations;
  schedule.stop_reason = tracker->check();
  return schedule;
}

std::vector<double> median_angles(
    const std::vector<std::vector<double>>& packed_angle_sets) {
  FASTQAOA_CHECK(!packed_angle_sets.empty(), "median_angles: no inputs");
  const std::size_t width = packed_angle_sets.front().size();
  for (const auto& set : packed_angle_sets) {
    FASTQAOA_CHECK(set.size() == width, "median_angles: ragged inputs");
  }
  std::vector<double> medians(width);
  std::vector<double> column(packed_angle_sets.size());
  for (std::size_t i = 0; i < width; ++i) {
    for (std::size_t s = 0; s < packed_angle_sets.size(); ++s) {
      column[s] = packed_angle_sets[s][i];
    }
    std::sort(column.begin(), column.end());
    const std::size_t mid = column.size() / 2;
    medians[i] = column.size() % 2 == 1
                     ? column[mid]
                     : 0.5 * (column[mid - 1] + column[mid]);
  }
  return medians;
}

double evaluate_angles(const Mixer& mixer, const dvec& obj_vals,
                       const std::vector<double>& packed,
                       const std::optional<dvec>& phase_values) {
  FASTQAOA_CHECK(packed.size() % 2 == 0 && !packed.empty(),
                 "evaluate_angles: need 2p angles");
  const int p = static_cast<int>(packed.size() / 2);
  QaoaPlanOptions plan_options;
  if (phase_values) plan_options.phase_values = *phase_values;
  const QaoaPlan plan(mixer, obj_vals, p, std::move(plan_options));
  EvalWorkspace ws;
  const double value = evaluate_packed(plan, ws, packed);
  FASTQAOA_OBS_MERGE_GLOBAL(ws.metrics);
  return value;
}

namespace {

const char* direction_tag(Direction d) {
  return d == Direction::Maximize ? "max" : "min";
}

/// Render the optional fingerprint header line. The mixer tag goes last and
/// is parsed rest-of-line, so mixer names may contain spaces.
void write_fingerprint(std::ostream& out,
                       const std::optional<CheckpointFingerprint>& fp) {
  if (!fp) {
    out << "fingerprint none\n";
    return;
  }
  out << "fingerprint dim=" << fp->dim << " direction="
      << direction_tag(fp->direction) << " seed=" << fp->seed
      << " mixer=" << fp->mixer << "\n";
}

/// Parse the v2 fingerprint line ("fingerprint none" or key=value fields).
std::optional<CheckpointFingerprint> read_fingerprint(
    const std::string& line, const std::string& path) {
  std::istringstream in(line);
  std::string tag;
  in >> tag;
  FASTQAOA_CHECK(tag == "fingerprint",
                 "load_checkpoint: missing fingerprint line in " + path);
  std::string rest;
  std::getline(in, rest);
  if (rest == " none" || rest == "none") return std::nullopt;

  CheckpointFingerprint fp;
  std::istringstream fields(rest);
  std::string field;
  bool have_dim = false, have_dir = false, have_seed = false,
       have_mixer = false;
  while (fields >> field) {
    const std::size_t eq = field.find('=');
    FASTQAOA_CHECK(eq != std::string::npos,
                   "load_checkpoint: malformed fingerprint in " + path);
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "dim") {
      fp.dim = std::stoull(value);
      have_dim = true;
    } else if (key == "direction") {
      FASTQAOA_CHECK(value == "max" || value == "min",
                     "load_checkpoint: malformed fingerprint in " + path);
      fp.direction =
          value == "max" ? Direction::Maximize : Direction::Minimize;
      have_dir = true;
    } else if (key == "seed") {
      fp.seed = std::stoull(value);
      have_seed = true;
    } else if (key == "mixer") {
      // mixer= consumes the rest of the line (names may contain spaces).
      std::string tail;
      std::getline(fields, tail);
      fp.mixer = value + tail;
      have_mixer = true;
      break;
    } else {
      FASTQAOA_CHECK(false, "load_checkpoint: unknown fingerprint field '" +
                                key + "' in " + path);
    }
  }
  FASTQAOA_CHECK(have_dim && have_dir && have_seed && have_mixer,
                 "load_checkpoint: incomplete fingerprint in " + path);
  return fp;
}

void check_fingerprint(const std::optional<CheckpointFingerprint>& found,
                       const CheckpointFingerprint& expected,
                       const std::string& path) {
  FASTQAOA_CHECK(found.has_value(),
                 "load_checkpoint: " + path +
                     " predates fingerprinting (or was saved without one) "
                     "— refusing to resume; delete the file to start over");
  auto mismatch = [&](const std::string& field, const std::string& have,
                      const std::string& want) {
    FASTQAOA_CHECK(false, "load_checkpoint: " + path +
                              " belongs to a different run — " + field +
                              " is " + have + " but this run expects " +
                              want +
                              "; delete the file (or point checkpoint_file "
                              "elsewhere) to start over");
  };
  if (found->dim != expected.dim) {
    mismatch("problem dimension", std::to_string(found->dim),
             std::to_string(expected.dim));
  }
  if (found->direction != expected.direction) {
    mismatch("direction", direction_tag(found->direction),
             direction_tag(expected.direction));
  }
  if (found->seed != expected.seed) {
    mismatch("seed", std::to_string(found->seed),
             std::to_string(expected.seed));
  }
  if (found->mixer != expected.mixer) {
    mismatch("mixer", "'" + found->mixer + "'", "'" + expected.mixer + "'");
  }
}

}  // namespace

void write_schedules(std::ostream& out,
                     const std::vector<AngleSchedule>& schedules) {
  const auto old_precision = out.precision(17);
  out << schedules.size() << "\n";
  for (const AngleSchedule& s : schedules) {
    out << s.p << " " << s.expectation << " " << s.optimizer_calls << " "
        << s.evaluations << " " << static_cast<int>(s.stop_reason) << "\n";
    for (std::size_t i = 0; i < s.betas.size(); ++i) {
      out << (i ? " " : "") << s.betas[i];
    }
    out << "\n";
    for (std::size_t i = 0; i < s.gammas.size(); ++i) {
      out << (i ? " " : "") << s.gammas[i];
    }
    out << "\n";
  }
  out.precision(old_precision);
}

std::vector<AngleSchedule> read_schedules(std::istream& in,
                                          const std::string& context) {
  std::size_t count = 0;
  in >> count;
  FASTQAOA_CHECK(!in.fail(), context + ": corrupt schedule count");
  std::vector<AngleSchedule> schedules(count);
  for (AngleSchedule& s : schedules) {
    int stop = 0;
    in >> s.p >> s.expectation >> s.optimizer_calls >> s.evaluations >> stop;
    FASTQAOA_CHECK(!in.fail() && s.p >= 1,
                   context + ": corrupt schedule entry");
    FASTQAOA_CHECK(
        stop >= 0 && stop <= static_cast<int>(runtime::StopReason::NonFinite),
        context + ": corrupt stop reason");
    s.stop_reason = static_cast<runtime::StopReason>(stop);
    s.betas.resize(static_cast<std::size_t>(s.p));
    s.gammas.resize(static_cast<std::size_t>(s.p));
    for (double& b : s.betas) in >> b;
    for (double& g : s.gammas) in >> g;
    FASTQAOA_CHECK(!in.fail(), context + ": corrupt angles");
  }
  return schedules;
}

void save_checkpoint(const std::string& path,
                     const std::vector<AngleSchedule>& schedules,
                     const std::optional<CheckpointFingerprint>& fingerprint) {
  std::ostringstream out;
  out.precision(17);
  out << "fastqaoa-angles v2\n";
  write_fingerprint(out, fingerprint);
  write_schedules(out, schedules);
  // Atomic replace (tmp + rename) so an interrupted save never corrupts the
  // resume file (the crash-resume behaviour the paper's §3 describes).
  runtime::atomic_write_file(path, out.str(), "save_checkpoint");
}

std::vector<AngleSchedule> load_checkpoint(
    const std::string& path,
    const std::optional<CheckpointFingerprint>& expected) {
  std::ifstream in(path);
  FASTQAOA_CHECK(in.good(), "load_checkpoint: cannot open " + path);
  std::string header;
  std::getline(in, header);

  if (header == "fastqaoa-angles v1") {
    // Legacy format: no fingerprint, no search-cost columns. Only loadable
    // when the caller did not ask for fingerprint validation.
    if (expected) check_fingerprint(std::nullopt, *expected, path);
    std::size_t count = 0;
    in >> count;
    FASTQAOA_CHECK(!in.fail(),
                   "load_checkpoint: corrupt schedule count in " + path);
    std::vector<AngleSchedule> schedules(count);
    for (AngleSchedule& s : schedules) {
      in >> s.p >> s.expectation;
      FASTQAOA_CHECK(!in.fail() && s.p >= 1,
                     "load_checkpoint: corrupt entry in " + path);
      s.betas.resize(static_cast<std::size_t>(s.p));
      s.gammas.resize(static_cast<std::size_t>(s.p));
      for (double& b : s.betas) in >> b;
      for (double& g : s.gammas) in >> g;
      FASTQAOA_CHECK(!in.fail(),
                     "load_checkpoint: corrupt angles in " + path);
    }
    return schedules;
  }

  FASTQAOA_CHECK(header == "fastqaoa-angles v2",
                 "load_checkpoint: unrecognized header in " + path);
  std::string fingerprint_line;
  std::getline(in, fingerprint_line);
  const std::optional<CheckpointFingerprint> found =
      read_fingerprint(fingerprint_line, path);
  if (expected) check_fingerprint(found, *expected, path);
  return read_schedules(in, "load_checkpoint(" + path + ")");
}

}  // namespace fastqaoa
