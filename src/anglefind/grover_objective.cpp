#include "anglefind/grover_objective.hpp"

#include <chrono>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fastqaoa {

GroverObjective::GroverObjective(GroverQaoa& engine, Direction direction)
    : engine_(&engine), direction_(direction) {}

double GroverObjective::operator()(std::span<const double> packed,
                                   std::span<double> grad) {
  FASTQAOA_CHECK(packed.size() % 2 == 0 && !packed.empty(),
                 "GroverObjective: need 2p packed angles");
  const std::size_t p = packed.size() / 2;
  const double sign = direction_ == Direction::Maximize ? -1.0 : 1.0;
  if (grad.empty()) {
    return sign * engine_->run(packed.subspan(0, p), packed.subspan(p, p));
  }
  FASTQAOA_CHECK(grad.size() == packed.size(),
                 "GroverObjective: gradient span size mismatch");
  grad_betas_.resize(p);
  grad_gammas_.resize(p);
  const double value = engine_->value_and_gradient(
      packed.subspan(0, p), packed.subspan(p, p), grad_betas_, grad_gammas_);
  for (std::size_t i = 0; i < p; ++i) {
    grad[i] = sign * grad_betas_[i];
    grad[p + i] = sign * grad_gammas_[i];
  }
  return sign * value;
}

GradObjective GroverObjective::as_grad_objective() {
  return [this](std::span<const double> x, std::span<double> g) {
    return (*this)(x, g);
  };
}

std::vector<AngleSchedule> find_angles_compressed(
    GroverQaoa& engine, int max_rounds, const FindAnglesOptions& options) {
  FASTQAOA_CHECK(max_rounds >= 1, "find_angles_compressed: need rounds >= 1");
  Rng rng(options.seed);
  GroverObjective objective(engine, options.direction);
  GradObjective fn = objective.as_grad_objective();

  // The compressed engine has no EvalWorkspace; record through a local sink
  // bound for the whole (serial) search and merged once at the end.
  obs::MetricsSink sink;
  FASTQAOA_OBS_SCOPE(sink);

  std::vector<AngleSchedule> schedules;
  for (int p = 1; p <= max_rounds; ++p) {
    FASTQAOA_TRACE_SPAN("find_angles_compressed_round");
    const auto round_start = std::chrono::steady_clock::now();
    std::vector<double> x0;
    if (schedules.empty()) {
      x0 = {rng.uniform(0.0, 2.0 * kPi), rng.uniform(0.0, 2.0 * kPi)};
    } else {
      const AngleSchedule& prev = schedules.back();
      const auto betas = interp_extrapolate(prev.betas);
      const auto gammas = interp_extrapolate(prev.gammas);
      x0.insert(x0.end(), betas.begin(), betas.end());
      x0.insert(x0.end(), gammas.begin(), gammas.end());
    }
    OptResult res = basinhopping(fn, x0, rng, options.hopping);
    AngleSchedule s;
    s.p = p;
    s.betas.assign(res.x.begin(), res.x.begin() + p);
    s.gammas.assign(res.x.begin() + p, res.x.end());
    s.expectation = objective.to_expectation(res.f);
    s.optimizer_calls = res.evaluations;
    s.evaluations = res.evaluations;  // every callback is one compressed eval
    schedules.push_back(std::move(s));
    if (!options.checkpoint_file.empty()) {
      save_checkpoint(options.checkpoint_file, schedules);
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      round_start)
            .count();
    FASTQAOA_OBS_COUNT("anglefind.rounds", 1);
    FASTQAOA_OBS_TIME("anglefind.round", seconds);
    if (options.on_round) options.on_round(schedules.back(), seconds);
  }
  FASTQAOA_OBS_MERGE_GLOBAL(sink);
  return schedules;
}

}  // namespace fastqaoa
