#pragma once
/// \file bfgs.hpp
/// Broyden–Fletcher–Goldfarb–Shanno quasi-Newton minimization with a
/// strong-Wolfe line search (Nocedal & Wright algs. 3.5/3.6, Fletcher [15]).
/// This is the local minimizer inside basinhopping and inside the paper's
/// random-restart baseline (Listing 3 / Fig. 3 / Fig. 5).

#include "anglefind/optimizer.hpp"

namespace fastqaoa {

/// BFGS configuration.
struct BfgsOptions {
  int max_iterations = 200;
  double gradient_tolerance = 1e-8;  ///< stop when ||g||_inf below this
  double step_tolerance = 1e-12;     ///< stop when ||dx||_inf below this
  double wolfe_c1 = 1e-4;            ///< sufficient-decrease constant
  double wolfe_c2 = 0.9;             ///< curvature constant
  int max_line_search_steps = 40;
  /// Shared run budget, polled once per BFGS iteration (nullptr = none).
  /// On a trip the minimizer reports its evaluation delta, stops, and
  /// returns the best point so far with the tripped StopReason — so a
  /// deadline-budgeted search overruns by at most one iteration.
  /// Non-owning; the caller's run entry point keeps the tracker alive.
  const runtime::BudgetTracker* budget = nullptr;
};

/// Minimize fn starting from x0. fn must provide gradients (use the
/// autodiff adjoint or finite differences via qaoa_objective.hpp).
OptResult bfgs_minimize(const GradObjective& fn, std::vector<double> x0,
                        const BfgsOptions& options = {});

}  // namespace fastqaoa
