#include "anglefind/optimizer.hpp"

#include "common/error.hpp"

namespace fastqaoa {

GradObjective no_gradient(PlainObjective fn) {
  return [fn = std::move(fn)](std::span<const double> x,
                              std::span<double> grad) {
    FASTQAOA_CHECK(grad.empty(),
                   "no_gradient: this objective cannot supply gradients — "
                   "use a gradient-free optimizer (nelder_mead_minimize)");
    return fn(x);
  };
}

}  // namespace fastqaoa
