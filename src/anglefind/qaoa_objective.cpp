#include "anglefind/qaoa_objective.hpp"

#include "common/error.hpp"

namespace fastqaoa {

QaoaObjective::QaoaObjective(const QaoaPlan& plan, EvalWorkspace& ws,
                             Direction direction, GradientProvider provider,
                             int eval_batch)
    : plan_(&plan),
      ws_(&ws),
      direction_(direction),
      provider_(provider),
      central_(plan, ws, FdScheme::Central),
      forward_(plan, ws, FdScheme::Forward),
      eval_batch_(eval_batch) {
  FASTQAOA_CHECK(eval_batch >= 1, "QaoaObjective: need eval_batch >= 1");
  central_.set_eval_batch(eval_batch);
  forward_.set_eval_batch(eval_batch);
}

QaoaObjective::QaoaObjective(Qaoa& engine, Direction direction,
                             GradientProvider provider)
    : QaoaObjective(engine.plan(), engine.workspace(), direction, provider) {}

double QaoaObjective::operator()(std::span<const double> packed,
                                 std::span<double> grad) {
  const double sign = direction_ == Direction::Maximize ? -1.0 : 1.0;
  if (grad.empty()) {
    ++evals_;
    return sign * evaluate_packed(*plan_, *ws_, packed);
  }
  FASTQAOA_CHECK(grad.size() == packed.size(),
                 "QaoaObjective: gradient span size mismatch");
  double value = 0.0;
  switch (provider_) {
    case GradientProvider::Adjoint:
      value = adjoint_value_and_gradient_packed(*plan_, *ws_, packed, grad);
      evals_ += 2;  // forward pass + reverse sweep of comparable cost
      break;
    case GradientProvider::CentralDiff: {
      central_.reset_evaluations();
      value = central_.value_and_gradient_packed(packed, grad);
      evals_ += central_.evaluations();
      break;
    }
    case GradientProvider::ForwardDiff: {
      forward_.reset_evaluations();
      value = forward_.value_and_gradient_packed(packed, grad);
      evals_ += forward_.evaluations();
      break;
    }
  }
  for (double& g : grad) g *= sign;
  return sign * value;
}

void QaoaObjective::value_batch(std::span<const double> packed_lanes,
                                std::span<double> out) {
  FASTQAOA_CHECK(!out.empty(), "value_batch: empty output span");
  evaluate_batch_packed(*plan_, *ws_, packed_lanes, out);
  evals_ += out.size();
  if (direction_ == Direction::Maximize) {
    for (double& v : out) v = -v;
  }
}

GradObjective QaoaObjective::as_grad_objective() {
  return [this](std::span<const double> x, std::span<double> g) {
    return (*this)(x, g);
  };
}

BatchObjective QaoaObjective::as_batch_objective() {
  return [this](std::span<const double> points, std::span<double> out) {
    value_batch(points, out);
  };
}

}  // namespace fastqaoa
