#pragma once
/// \file grover_objective.hpp
/// Angle finding on the degeneracy-compressed Grover simulator: the same
/// optimizer stack (BFGS/basinhopping, INTERP iteration) driven by
/// GroverQaoa's O(p * #classes) evaluations and exact compressed
/// gradients — classical angle optimization for Grover-mixer QAOAs at
/// n ≈ 100 qubits, where no statevector exists.

#include <span>

#include "anglefind/basinhopping.hpp"
#include "anglefind/optimizer.hpp"
#include "anglefind/strategies.hpp"
#include "core/grover_fast.hpp"

namespace fastqaoa {

/// Minimization objective over packed angles for a GroverQaoa instance
/// (mirrors QaoaObjective).
class GroverObjective {
 public:
  explicit GroverObjective(GroverQaoa& engine,
                           Direction direction = Direction::Maximize);

  /// Evaluate f = ±<C> (and the exact compressed gradient when `grad` is
  /// non-empty).
  double operator()(std::span<const double> packed, std::span<double> grad);

  [[nodiscard]] GradObjective as_grad_objective();

  [[nodiscard]] double to_expectation(double f) const noexcept {
    return direction_ == Direction::Maximize ? -f : f;
  }

 private:
  GroverQaoa* engine_;
  Direction direction_;
  std::vector<double> grad_betas_;
  std::vector<double> grad_gammas_;
};

/// Iterative (INTERP + basinhopping) angle finding on the compressed
/// simulator — find_angles() for spaces of up to ~2^1000 states.
std::vector<AngleSchedule> find_angles_compressed(
    GroverQaoa& engine, int max_rounds, const FindAnglesOptions& options = {});

}  // namespace fastqaoa
