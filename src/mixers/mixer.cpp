#include "mixers/mixer.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "linalg/vector_ops.hpp"

namespace fastqaoa {

void Mixer::initial_state(cvec& psi) const {
  psi.assign(dim(), cplx{0.0, 0.0});
  const double amp = 1.0 / std::sqrt(static_cast<double>(dim()));
  linalg::fill(psi, cplx{amp, 0.0});
}

void Mixer::apply_phase_exp(StateRef psi, const dvec& phase, double gamma,
                            double beta, cvec& scratch) const {
  linalg::apply_diag_phase(psi, phase, gamma);
  apply_exp(psi, beta, scratch);
}

double Mixer::apply_phase_exp_expect(StateRef psi, const dvec& phase,
                                     double gamma, double beta,
                                     const dvec& obj, cvec& scratch) const {
  apply_phase_exp(psi, phase, gamma, beta, scratch);
  return linalg::diag_expectation(obj, psi);
}

// The batch defaults bounce every lane through the single-state virtuals via
// a temporary cvec, so any mixer is batch-correct (and bit-identical to the
// sequential path) for free; only the copies and the per-call allocation are
// fallback-grade. Mixers with a cheap diagonal frame override these.

void Mixer::apply_phase_exp_batch(const StateBatch& b, const dvec& phase,
                                  const linalg::DiagDict* /*phase_dict*/,
                                  const double* gammas, const double* betas,
                                  cvec& scratch) const {
  const index_t d = dim();
  cvec lane(static_cast<std::size_t>(d));
  for (int l = 0; l < b.lanes; ++l) {
    cplx* dst = b.states + b.stride * static_cast<index_t>(l);
    const cplx* src = b.init != nullptr ? b.init : dst;
    std::copy(src, src + d, lane.begin());
    apply_phase_exp(lane, phase, gammas[l], betas[l], scratch);
    std::copy(lane.begin(), lane.end(), dst);
  }
}

void Mixer::apply_phase_exp_expect_batch(const StateBatch& b, const dvec& phase,
                                         const linalg::DiagDict* /*phase_dict*/,
                                         const double* gammas,
                                         const double* betas, const dvec& obj,
                                         double* out, cvec& scratch) const {
  const index_t d = dim();
  cvec lane(static_cast<std::size_t>(d));
  for (int l = 0; l < b.lanes; ++l) {
    cplx* dst = b.states + b.stride * static_cast<index_t>(l);
    const cplx* src = b.init != nullptr ? b.init : dst;
    std::copy(src, src + d, lane.begin());
    out[l] = apply_phase_exp_expect(lane, phase, gammas[l], betas[l], obj,
                                    scratch);
    std::copy(lane.begin(), lane.end(), dst);
  }
}

void Mixer::apply_exp_batch(const StateBatch& b, const double* betas,
                            cvec& scratch) const {
  FASTQAOA_CHECK(b.init == nullptr,
                 "apply_exp_batch: mid-round steps are in place");
  const index_t d = dim();
  cvec lane(static_cast<std::size_t>(d));
  for (int l = 0; l < b.lanes; ++l) {
    cplx* dst = b.states + b.stride * static_cast<index_t>(l);
    std::copy(dst, dst + d, lane.begin());
    apply_exp(lane, betas[l], scratch);
    std::copy(lane.begin(), lane.end(), dst);
  }
}

}  // namespace fastqaoa
