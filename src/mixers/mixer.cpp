#include "mixers/mixer.hpp"

#include <cmath>

#include "linalg/vector_ops.hpp"

namespace fastqaoa {

void Mixer::initial_state(cvec& psi) const {
  psi.assign(dim(), cplx{0.0, 0.0});
  const double amp = 1.0 / std::sqrt(static_cast<double>(dim()));
  linalg::fill(psi, cplx{amp, 0.0});
}

}  // namespace fastqaoa
