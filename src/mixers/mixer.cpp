#include "mixers/mixer.hpp"

#include <cmath>

#include "linalg/vector_ops.hpp"

namespace fastqaoa {

void Mixer::initial_state(cvec& psi) const {
  psi.assign(dim(), cplx{0.0, 0.0});
  const double amp = 1.0 / std::sqrt(static_cast<double>(dim()));
  linalg::fill(psi, cplx{amp, 0.0});
}

void Mixer::apply_phase_exp(cvec& psi, const dvec& phase, double gamma,
                            double beta, cvec& scratch) const {
  linalg::apply_diag_phase(psi, phase, gamma);
  apply_exp(psi, beta, scratch);
}

double Mixer::apply_phase_exp_expect(cvec& psi, const dvec& phase,
                                     double gamma, double beta,
                                     const dvec& obj, cvec& scratch) const {
  apply_phase_exp(psi, phase, gamma, beta, scratch);
  return linalg::diag_expectation(obj, psi);
}

}  // namespace fastqaoa
