#include "mixers/x_mixer.hpp"

#include <cmath>

#include "bits/bitops.hpp"
#include "bits/combinatorics.hpp"
#include "common/error.hpp"
#include "linalg/vector_ops.hpp"
#include "linalg/wht.hpp"

namespace fastqaoa {

namespace {

std::string order_name(const std::vector<int>& orders) {
  std::string s = "X-mixer(orders=";
  for (std::size_t i = 0; i < orders.size(); ++i) {
    if (i > 0) s += ',';
    s += std::to_string(orders[i]);
  }
  s += ')';
  return s;
}

}  // namespace

XMixer::XMixer(int n, std::vector<PauliXTerm> terms, dvec dvals,
               std::string name)
    : n_(n),
      terms_(std::move(terms)),
      dvals_(std::move(dvals)),
      ddict_(linalg::build_diag_dict(dvals_)),
      name_(std::move(name)) {}

XMixer::XMixer(int n, std::vector<PauliXTerm> terms)
    : n_(n), terms_(std::move(terms)), name_("X-mixer") {
  FASTQAOA_CHECK(n >= 1 && n <= 30, "XMixer: need 1 <= n <= 30");
  const index_t size = index_t{1} << n;
  for (const PauliXTerm& t : terms_) {
    FASTQAOA_CHECK((t.mask >> n) == 0, "XMixer: term mask exceeds n bits");
  }
  dvals_.assign(size, 0.0);
  const std::ptrdiff_t sz = static_cast<std::ptrdiff_t>(size);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t z = 0; z < sz; ++z) {
    double d = 0.0;
    for (const PauliXTerm& t : terms_) {
      d += t.weight * z_sign(static_cast<state_t>(z), t.mask);
    }
    dvals_[static_cast<index_t>(z)] = d;
  }
  ddict_ = linalg::build_diag_dict(dvals_);
}

XMixer XMixer::transverse_field(int n) {
  std::vector<PauliXTerm> terms;
  terms.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    terms.push_back(PauliXTerm{state_t{1} << i, 1.0});
  }
  XMixer m(n, std::move(terms));
  m.name_ = "transverse-field";
  return m;
}

XMixer XMixer::from_orders(int n, const std::vector<int>& orders) {
  FASTQAOA_CHECK(n >= 1 && n <= 30, "XMixer: need 1 <= n <= 30");
  FASTQAOA_CHECK(!orders.empty(), "XMixer::from_orders: no orders given");
  // Krawtchouk evaluation: the diagonal value at z depends only on
  // m = popcount(z):  sum_{|S|=r} (-1)^{|z & S|}
  //                 = sum_j (-1)^j C(m, j) C(n-m, r-j) = K_r(m; n).
  BinomialTable binom(n);
  std::vector<double> by_weight(static_cast<std::size_t>(n) + 1, 0.0);
  for (const int r : orders) {
    FASTQAOA_CHECK(r >= 1 && r <= n, "XMixer::from_orders: order out of range");
    for (int m = 0; m <= n; ++m) {
      double k = 0.0;
      for (int j = 0; j <= r; ++j) {
        const double term = static_cast<double>(binom(m, j)) *
                            static_cast<double>(binom(n - m, r - j));
        k += (j % 2 == 0) ? term : -term;
      }
      by_weight[static_cast<std::size_t>(m)] += k;
    }
  }
  const index_t size = index_t{1} << n;
  dvec dvals(size, 0.0);
  const std::ptrdiff_t sz = static_cast<std::ptrdiff_t>(size);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t z = 0; z < sz; ++z) {
    dvals[static_cast<index_t>(z)] =
        by_weight[static_cast<std::size_t>(popcount(static_cast<state_t>(z)))];
  }
  // Materialize the term list as documentation/metadata (weight-r subsets),
  // unless the subset count is impractically large — the diagonal above is
  // all the simulation needs.
  std::vector<PauliXTerm> terms;
  std::uint64_t total_terms = 0;
  for (const int r : orders) total_terms += binom(n, r);
  if (total_terms <= 100000) {
    terms.reserve(total_terms);
    for (const int r : orders) {
      for_each_weight_k(n, r,
                        [&terms](state_t s) { terms.push_back({s, 1.0}); });
    }
  }
  return XMixer(n, std::move(terms), std::move(dvals), order_name(orders));
}

void XMixer::apply_exp(StateRef psi, double beta, cvec& scratch) const {
  (void)scratch;  // WHT is in-place; no workspace needed.
  FASTQAOA_CHECK(psi.size() == dvals_.size(), "XMixer: state size mismatch");
  linalg::wht_unnormalized(psi);
  // The second transform absorbs the mixer phase — and the single 1/2^n
  // normalization of the two unnormalized WHTs — into its pre-pass.
  const double inv = 1.0 / static_cast<double>(dvals_.size());
  linalg::phase_wht(psi, dvals_, beta, inv);
}

void XMixer::apply_phase_exp(StateRef psi, const dvec& phase, double gamma,
                             double beta, cvec& scratch) const {
  (void)scratch;
  FASTQAOA_CHECK(psi.size() == dvals_.size(), "XMixer: state size mismatch");
  // Phase separator rides the first WHT's pre-pass; mixer phase and 1/2^n
  // ride the second's. Two streams over the vector for the whole round.
  const double inv = 1.0 / static_cast<double>(dvals_.size());
  linalg::phase_wht(psi, phase, gamma, 1.0);
  linalg::phase_wht(psi, dvals_, beta, inv);
}

double XMixer::apply_phase_exp_expect(StateRef psi, const dvec& phase,
                                      double gamma, double beta,
                                      const dvec& obj, cvec& scratch) const {
  (void)scratch;
  FASTQAOA_CHECK(psi.size() == dvals_.size(), "XMixer: state size mismatch");
  FASTQAOA_CHECK(obj.size() == dvals_.size(), "XMixer: objective mismatch");
  const double inv = 1.0 / static_cast<double>(dvals_.size());
  linalg::phase_wht(psi, phase, gamma, 1.0);
  return linalg::phase_wht_expect(psi, dvals_, beta, inv, obj);
}

void XMixer::apply_phase_exp_batch(const StateBatch& b, const dvec& phase,
                                   const linalg::DiagDict* phase_dict,
                                   const double* gammas, const double* betas,
                                   cvec& scratch) const {
  (void)scratch;
  FASTQAOA_CHECK(phase.size() == dvals_.size(),
                 "XMixer: phase table size mismatch");
  const double inv = 1.0 / static_cast<double>(dvals_.size());
  linalg::phase_wht_batch(b.states, b.stride, b.lanes, b.init, phase,
                          phase_dict, gammas, 1.0, b.shards);
  linalg::phase_wht_batch(b.states, b.stride, b.lanes, nullptr, dvals_,
                          &ddict_, betas, inv, b.shards);
}

void XMixer::apply_phase_exp_expect_batch(const StateBatch& b,
                                          const dvec& phase,
                                          const linalg::DiagDict* phase_dict,
                                          const double* gammas,
                                          const double* betas, const dvec& obj,
                                          double* out, cvec& scratch) const {
  (void)scratch;
  FASTQAOA_CHECK(phase.size() == dvals_.size(),
                 "XMixer: phase table size mismatch");
  FASTQAOA_CHECK(obj.size() == dvals_.size(), "XMixer: objective mismatch");
  const double inv = 1.0 / static_cast<double>(dvals_.size());
  linalg::phase_wht_batch(b.states, b.stride, b.lanes, b.init, phase,
                          phase_dict, gammas, 1.0, b.shards);
  linalg::phase_wht_expect_batch(b.states, b.stride, b.lanes, dvals_, &ddict_,
                                 betas, inv, obj, out, b.shards);
}

void XMixer::apply_exp_batch(const StateBatch& b, const double* betas,
                             cvec& scratch) const {
  (void)scratch;
  FASTQAOA_CHECK(b.init == nullptr,
                 "apply_exp_batch: mid-round steps are in place");
  const double inv = 1.0 / static_cast<double>(dvals_.size());
  // Mirror apply_exp's two-transform shape: plain first WHT, then the mixer
  // phase + 1/2^n folded into the second's pre-pass.
  linalg::wht_batch(b.states, b.stride, b.lanes, dvals_.size(), b.shards);
  linalg::phase_wht_batch(b.states, b.stride, b.lanes, nullptr, dvals_,
                          &ddict_, betas, inv, b.shards);
}

void XMixer::apply_ham(ConstStateRef in, StateRef out, cvec& scratch) const {
  (void)scratch;
  FASTQAOA_CHECK(in.size() == dvals_.size(), "XMixer: state size mismatch");
  FASTQAOA_CHECK(out.size() == dvals_.size(),
                 "XMixer: apply_ham output must be presized");
  linalg::copy_state(in, out);
  linalg::wht_unnormalized(out);
  const double inv = 1.0 / static_cast<double>(dvals_.size());
  linalg::diag_mul(out, dvals_, inv);
  linalg::wht_unnormalized(out);
}

}  // namespace fastqaoa
