#pragma once
/// \file sparse_xy.hpp
/// Sparse matrix-free XY-hopping operator on a feasible subspace.
///
/// The dense EigenMixer pays O(dim^2) memory for V — the very limit the
/// paper hits ("the main limiting factor ... was the memory requirements in
/// finding the eigendecomposition of the Clique mixer matrix", §2.2). The
/// XY Hamiltonian itself is sparse: each feasible state couples to at most
/// k(n-k) partners. This operator stores only per-edge swap-partner index
/// tables (O(|E| * dim) integers) and applies H in O(|E| * dim) flops,
/// enabling the Chebyshev mixer (chebyshev_mixer.hpp) to evolve subspaces
/// whose dense eigendecomposition would not fit in memory.

#include <vector>

#include "graphs/graph.hpp"
#include "problems/state_space.hpp"

namespace fastqaoa {

/// H = sum_{(u,v) in E} w_uv (X_u X_v + Y_u Y_v) restricted to a feasible
/// space, applied matrix-free.
class SparseXYOperator {
 public:
  SparseXYOperator(const StateSpace& space, const Graph& pairs);

  [[nodiscard]] index_t dim() const noexcept { return dim_; }
  [[nodiscard]] const Graph& pairs() const noexcept { return pairs_; }

  /// out = H * in. in must not alias out.
  void apply(const cvec& in, cvec& out) const;

  /// Raw-pointer core of apply(): both spans must hold dim() elements and
  /// must not alias. Lets callers run the recurrence on sub-buffers of a
  /// caller-provided workspace (see ChebyshevMixer::apply_exp).
  void apply(const cplx* in, cplx* out) const;

  /// Gershgorin bound on the spectral radius: max_x sum_y |H_xy|.
  [[nodiscard]] double spectral_bound() const noexcept { return bound_; }

 private:
  index_t dim_;
  Graph pairs_;
  /// partner_[e][i]: index after swapping edge e's endpoints in state i,
  /// or i itself when the endpoint bits agree (term annihilates).
  std::vector<std::vector<index_t>> partner_;
  double bound_ = 0.0;
};

}  // namespace fastqaoa
