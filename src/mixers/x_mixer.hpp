#pragma once
/// \file x_mixer.hpp
/// Mixers that are sums of products of Pauli-X operators (paper §2.1).
/// HZH = X diagonalizes every such mixer by conjugation with H^{⊗n}:
///     e^{-i beta f(X)} = H^{⊗n} e^{-i beta f(Z)} H^{⊗n},
/// and f(Z) is diagonal with entries d[z] = sum_t w_t (-1)^{|z & S_t|}.
/// The diagonal is precomputed once; each application is two fast
/// Walsh–Hadamard transforms plus one fused elementwise phase, O(n 2^n).

#include <vector>

#include "linalg/diag_dict.hpp"
#include "mixers/mixer.hpp"

namespace fastqaoa {

/// One term w * prod_{i in mask} X_i.
struct PauliXTerm {
  state_t mask;     ///< set bits = qubits carrying an X
  double weight = 1.0;

  bool operator==(const PauliXTerm&) const = default;
};

/// Mixer H_M = sum_t w_t prod_{i in S_t} X_i on the full n-qubit space.
class XMixer final : public Mixer {
 public:
  /// Build from explicit terms. Masks must fit in n bits.
  XMixer(int n, std::vector<PauliXTerm> terms);

  /// The original transverse-field mixer sum_i X_i.
  static XMixer transverse_field(int n);

  /// The paper's mixer_X(orders, n): for each order r in `orders`, include
  /// every weight-r product of X operators (e.g. {1} -> sum X_i,
  /// {2} -> sum_{i<j} X_i X_j). The diagonal is evaluated analytically via
  /// Krawtchouk polynomials in O(n^2 + 2^n) instead of O(2^n * #terms).
  static XMixer from_orders(int n, const std::vector<int>& orders);

  [[nodiscard]] index_t dim() const override { return dvals_.size(); }
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] const std::vector<PauliXTerm>& terms() const noexcept {
    return terms_;
  }
  /// Mixer eigenvalues in the Hadamard frame (d[z] of the header comment).
  [[nodiscard]] const dvec& diagonal() const noexcept { return dvals_; }
  /// Quantized dictionary over diagonal() — always valid for pure-order
  /// mixers (n+1 popcount eigenvalues), usually valid for weighted term
  /// sums; feeds the batched kernels' per-distinct-value phase route.
  [[nodiscard]] const linalg::DiagDict& diagonal_dict() const noexcept {
    return ddict_;
  }

  void apply_exp(StateRef psi, double beta, cvec& scratch) const override;
  void apply_ham(ConstStateRef in, StateRef out,
                 cvec& scratch) const override;
  /// Overridden to fold the phase-separator sweep into the first WHT's
  /// cache-blocked pre-pass (one fewer stream over the statevector).
  void apply_phase_exp(StateRef psi, const dvec& phase, double gamma,
                       double beta, cvec& scratch) const override;
  /// Overridden to additionally fuse the expectation into the last WHT's
  /// final butterfly pass.
  double apply_phase_exp_expect(StateRef psi, const dvec& phase, double gamma,
                                double beta, const dvec& obj,
                                cvec& scratch) const override;
  /// Batched overrides: one sweep over phase/dvals_ serves every lane, the
  /// quantized dictionaries collapse the sincos work to one call per
  /// distinct value per lane, and b.init fuses the |psi0> copy into the
  /// first cache-resident pass. Bit-identical per lane to the sequential
  /// overrides above.
  void apply_phase_exp_batch(const StateBatch& b, const dvec& phase,
                             const linalg::DiagDict* phase_dict,
                             const double* gammas, const double* betas,
                             cvec& scratch) const override;
  void apply_phase_exp_expect_batch(const StateBatch& b, const dvec& phase,
                                    const linalg::DiagDict* phase_dict,
                                    const double* gammas, const double* betas,
                                    const dvec& obj, double* out,
                                    cvec& scratch) const override;
  void apply_exp_batch(const StateBatch& b, const double* betas,
                       cvec& scratch) const override;

 private:
  XMixer(int n, std::vector<PauliXTerm> terms, dvec dvals, std::string name);

  int n_;
  std::vector<PauliXTerm> terms_;
  dvec dvals_;  ///< d[z], length 2^n
  linalg::DiagDict ddict_;  ///< quantized view of dvals_ (may be invalid)
  std::string name_;
};

}  // namespace fastqaoa
