#pragma once
/// \file grover_mixer.hpp
/// The Grover mixer H_G = |psi0><psi0| (Bärtschi & Eidenbenz [8]), where
/// |psi0> is the uniform superposition over the feasible set. Because H_G
/// is a rank-1 projector,
///     e^{-i beta H_G} = I + (e^{-i beta} - 1) |psi0><psi0|,
/// each application is a single reduction plus an axpy, O(dim). The mixer
/// conserves Hamming weight, so the same implementation serves both the
/// full space and Dicke subspaces (paper §2.4).

#include "mixers/mixer.hpp"

namespace fastqaoa {

/// Rank-1 Grover mixer on a feasible space of given dimension.
class GroverMixer final : public Mixer {
 public:
  /// dim = 2^n for unconstrained problems, C(n,k) for Dicke spaces.
  explicit GroverMixer(index_t dim);

  [[nodiscard]] index_t dim() const override { return dim_; }
  [[nodiscard]] std::string name() const override { return "grover"; }

  void apply_exp(StateRef psi, double beta, cvec& scratch) const override;
  void apply_ham(ConstStateRef in, StateRef out,
                 cvec& scratch) const override;

 private:
  index_t dim_;
};

}  // namespace fastqaoa
