#pragma once
/// \file eigen_mixer.hpp
/// Mixers applied through a precomputed dense eigendecomposition
/// H_M = V D V^H, so e^{-i beta H_M} = V e^{-i beta D} V^H (paper §2.1).
/// Built once (potentially expensive), reused across every simulator call,
/// and serializable to disk (io/serialize.hpp) for reuse across runs —
/// exactly the paper's Listing 2 workflow.
///
/// The Clique and Ring mixers sum XY hopping terms X_iX_j + Y_iY_j, which
/// on the computational basis swap the (differing) bits i,j with matrix
/// element 2. They are therefore *real symmetric* on the Dicke basis, and
/// the real fast path (two real GEMVs per transform) is used. Arbitrary
/// complex Hermitian mixers take the complex path.

#include <optional>
#include <string>

#include "graphs/graph.hpp"
#include "linalg/eigen_herm.hpp"
#include "linalg/eigen_sym.hpp"
#include "mixers/mixer.hpp"
#include "problems/state_space.hpp"

namespace fastqaoa {

/// Dense-eigendecomposition mixer with a real and a complex storage path.
class EigenMixer final : public Mixer {
 public:
  /// Wrap an existing real-symmetric eigendecomposition.
  EigenMixer(linalg::SymEig eig, std::string name);

  /// Wrap an existing complex-Hermitian eigendecomposition.
  EigenMixer(linalg::HermEig eig, std::string name);

  /// Clique mixer sum_{i<j} (X_i X_j + Y_i Y_j) on the feasible space.
  static EigenMixer clique(const StateSpace& space);

  /// Ring mixer sum_i (X_i X_{i+1} + Y_i Y_{i+1}) (indices mod n).
  static EigenMixer ring(const StateSpace& space);

  /// XY hopping mixer over an arbitrary pair graph: sum_{(i,j) in E}
  /// w_ij (X_i X_j + Y_i Y_j). Clique/ring are special cases.
  static EigenMixer xy_graph(const StateSpace& space, const Graph& pairs,
                             std::string name = "xy-graph");

  /// Arbitrary real-symmetric mixer Hamiltonian given as a dense matrix on
  /// the feasible basis.
  static EigenMixer from_hamiltonian(linalg::dmat h, std::string name);

  /// Arbitrary complex Hermitian mixer Hamiltonian.
  static EigenMixer from_hamiltonian(linalg::cmat h, std::string name);

  /// Build the dense XY-hopping Hamiltonian on the feasible basis (exposed
  /// for tests and for the Trotter baseline).
  static linalg::dmat xy_hamiltonian(const StateSpace& space,
                                     const Graph& pairs);

  [[nodiscard]] index_t dim() const override {
    return real_ ? real_->eigenvalues.size() : herm_->eigenvalues.size();
  }
  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] bool is_real() const noexcept { return real_.has_value(); }

  /// Accessors for serialization (io module).
  [[nodiscard]] const linalg::SymEig& real_eig() const;
  [[nodiscard]] const linalg::HermEig& herm_eig() const;

  void apply_exp(StateRef psi, double beta, cvec& scratch) const override;
  void apply_ham(ConstStateRef in, StateRef out,
                 cvec& scratch) const override;

 private:
  std::optional<linalg::SymEig> real_;
  std::optional<linalg::HermEig> herm_;
  std::string name_;
};

}  // namespace fastqaoa
