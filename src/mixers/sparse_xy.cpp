#include "mixers/sparse_xy.hpp"

#include <cmath>

#include "bits/bitops.hpp"
#include "common/error.hpp"

namespace fastqaoa {

SparseXYOperator::SparseXYOperator(const StateSpace& space, const Graph& pairs)
    : dim_(space.dim()), pairs_(pairs) {
  FASTQAOA_CHECK(pairs.num_vertices() == space.n(),
                 "SparseXYOperator: pair graph must have n vertices");
  partner_.resize(pairs_.edges().size());
  std::vector<double> row_sum(dim_, 0.0);
  for (std::size_t e = 0; e < pairs_.edges().size(); ++e) {
    const Edge& edge = pairs_.edges()[e];
    auto& table = partner_[e];
    table.resize(dim_);
    space.for_each([&](index_t i, state_t x) {
      if (bit(x, edge.u) != bit(x, edge.v)) {
        table[i] = space.index_of(flip(flip(x, edge.u), edge.v));
        row_sum[i] += 2.0 * std::abs(edge.weight);
      } else {
        table[i] = i;
      }
    });
  }
  for (const double r : row_sum) bound_ = std::max(bound_, r);
  if (bound_ == 0.0) bound_ = 1.0;  // H == 0; any positive scale works
}

void SparseXYOperator::apply(const cvec& in, cvec& out) const {
  FASTQAOA_CHECK(in.size() == dim_, "SparseXYOperator: state size mismatch");
  FASTQAOA_CHECK(in.data() != out.data(),
                 "SparseXYOperator: in must not alias out");
  out.resize(dim_);
  apply(in.data(), out.data());
}

void SparseXYOperator::apply(const cplx* in, cplx* out) const {
  FASTQAOA_CHECK(in != out, "SparseXYOperator: in must not alias out");
  const std::ptrdiff_t sz = static_cast<std::ptrdiff_t>(dim_);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < sz; ++i) out[i] = cplx{0.0, 0.0};
  for (std::size_t e = 0; e < pairs_.edges().size(); ++e) {
    const double w = 2.0 * pairs_.edges()[e].weight;
    const auto& table = partner_[e];
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t i = 0; i < sz; ++i) {
      const index_t j = table[static_cast<index_t>(i)];
      if (j != static_cast<index_t>(i)) {
        out[i] += w * in[j];
      }
    }
  }
}

}  // namespace fastqaoa
