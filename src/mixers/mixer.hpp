#pragma once
/// \file mixer.hpp
/// The mixer abstraction. Every mixer the paper supports is represented in
/// a *diagonal frame*: e^{-i beta H_M} = T diag(e^{-i beta d}) T^{-1} for
/// some cheap transform T. Concrete implementations:
///   * XMixer      — T = H^{⊗n} via fast Walsh–Hadamard, O(n 2^n)
///   * GroverMixer — rank-1 projector, O(dim)
///   * EigenMixer  — dense precomputed eigenvectors, O(dim^2)
/// The two virtuals are everything the simulator (apply_exp) and the
/// adjoint-mode gradient (apply_ham) need.
///
/// All state arguments are StateRef / ConstStateRef views (implicitly
/// constructible from cvec and ShardedState), so the same mixer serves
/// plain vectors and NUMA-sharded workspace states; the shard count rides
/// the view into the kernel layer. Results are bit-identical at any shard
/// count.

#include <string>

#include "common/types.hpp"
#include "linalg/sharded_state.hpp"

namespace fastqaoa {

namespace linalg {
struct DiagDict;  // linalg/diag_dict.hpp
}

using linalg::ConstStateRef;
using linalg::StateRef;

/// A strided matrix of `lanes` statevectors threaded through the batched
/// mixer entry points: lane l lives at states + l*stride (stride in complex
/// elements, stride >= dim). `init`, when non-null, is a shared input vector
/// all lanes start from (the copy is fused into the first pass over the
/// data); when null, every lane transforms its own current contents.
/// `shards` is the shard count of the backing storage (1 = monolithic).
struct StateBatch {
  cplx* states = nullptr;
  index_t stride = 0;
  int lanes = 0;
  const cplx* init = nullptr;
  int shards = 1;
};

/// A mixer Hamiltonian H_M restricted to a feasible subspace of dimension
/// dim().
///
/// Thread-compatibility contract (enforced by tests/test_parallel.cpp and
/// relied on by every parallel outer loop — see docs/architecture.md):
/// const methods MUST be safe to call concurrently on one shared instance
/// as long as each call gets its own scratch vector. Concretely, apply_exp
/// and apply_ham must not write any member state; every mutable buffer the
/// recurrence needs has to live in the caller-provided `scratch` (grow it
/// with resize, then carve sub-buffers out of it — ChebyshevMixer shows the
/// pattern). Diagnostics that must survive a const call go in relaxed
/// atomics.
class Mixer {
 public:
  virtual ~Mixer() = default;

  /// Dimension of the (feasible sub)space the mixer acts on.
  [[nodiscard]] virtual index_t dim() const = 0;

  /// Human-readable name ("transverse-field", "clique", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// psi <- e^{-i beta H_M} psi. `scratch` is caller-provided workspace
  /// (resized as needed once, then reused allocation-free).
  virtual void apply_exp(StateRef psi, double beta, cvec& scratch) const = 0;

  /// out <- H_M * in (used by the adjoint gradient). `in` must not alias
  /// `out`, and `out` must already be sized to dim() — views cannot grow.
  virtual void apply_ham(ConstStateRef in, StateRef out,
                         cvec& scratch) const = 0;

  /// Fused whole-round step: psi <- e^{-i beta H_M} diag(e^{-i gamma
  /// phase}) psi. The default composes apply_diag_phase + apply_exp;
  /// mixers whose diagonal frame lets the phase ride along for free
  /// (XMixer folds it into the first WHT pre-pass) override it.
  virtual void apply_phase_exp(StateRef psi, const dvec& phase, double gamma,
                               double beta, cvec& scratch) const;

  /// apply_phase_exp followed by <psi| diag(obj) |psi> — the final QAOA
  /// round plus the expectation epilogue, fused where the mixer can.
  virtual double apply_phase_exp_expect(StateRef psi, const dvec& phase,
                                        double gamma, double beta,
                                        const dvec& obj, cvec& scratch) const;

  // --- batched whole-round steps (evaluate_batch) ------------------------
  // Per-lane results must be bit-identical to `lanes` sequential calls of
  // the corresponding single-state virtual. The base-class defaults loop
  // lanes through the single-state path via a bounce buffer (allocating —
  // fallback quality); mixers whose diagonal frame batches well override
  // them (XMixer shares one sweep over its tables across all lanes).
  // `phase_dict`/the mixer's own diagonal dictionary may be null/invalid;
  // they only unlock the quantized phase route, never change results.

  /// Batched apply_phase_exp: lane l gets gammas[l] / betas[l].
  virtual void apply_phase_exp_batch(const StateBatch& b, const dvec& phase,
                                     const linalg::DiagDict* phase_dict,
                                     const double* gammas, const double* betas,
                                     cvec& scratch) const;

  /// Batched apply_phase_exp_expect: out[l] = <lane l| diag(obj) |lane l>.
  virtual void apply_phase_exp_expect_batch(const StateBatch& b,
                                            const dvec& phase,
                                            const linalg::DiagDict* phase_dict,
                                            const double* gammas,
                                            const double* betas,
                                            const dvec& obj, double* out,
                                            cvec& scratch) const;

  /// Batched apply_exp: lane l gets betas[l]. b.init must be null (mid-round
  /// steps are always in place).
  virtual void apply_exp_batch(const StateBatch& b, const double* betas,
                               cvec& scratch) const;

  /// The uniform superposition the paper defaults |psi0> to, expressed on
  /// this mixer's space. Overridable for mixers whose natural ground state
  /// differs; the default is 1/sqrt(dim) on every feasible state. Takes an
  /// owning vector (not a view) because it sizes the state itself.
  virtual void initial_state(cvec& psi) const;
};

}  // namespace fastqaoa
