#pragma once
/// \file chebyshev_mixer.hpp
/// Matrix-free constrained mixing via Chebyshev expansion of the
/// propagator — an extension beyond the paper's eigendecomposition path.
///
/// With H rescaled to spectral radius <= 1 (H~ = H/r), the exact expansion
///     e^{-i beta H} = J_0(beta r) T_0(H~)
///                   + 2 sum_{k>=1} (-i)^k J_k(beta r) T_k(H~)
/// (J_k = Bessel functions of the first kind) converges superexponentially
/// once k exceeds |beta r|. Each term costs one sparse H-apply, so the
/// total cost is O(K * |E| * dim) time and O(dim) extra memory — no
/// O(dim^2) eigenvector matrix and no O(dim^3) setup. This trades the
/// eigendecomposition's per-application O(dim^2) GEMVs for a beta-dependent
/// number of cheap sparse sweeps, and unlike Trotterization it is exact to
/// the requested tolerance.

#include <atomic>
#include <memory>

#include "mixers/mixer.hpp"
#include "mixers/sparse_xy.hpp"

namespace fastqaoa {

/// Chebyshev-propagator mixer over a sparse XY operator.
///
/// Thread-compatible like every other mixer: the recurrence runs entirely
/// inside the caller-provided scratch vector (grown to 4*dim on first use),
/// so concurrent apply_exp calls are safe as long as each call brings its
/// own scratch — the contract mixer.hpp promises and tests/test_parallel.cpp
/// enforces. The last_degree() diagnostic is a relaxed atomic (it records
/// whichever concurrent call stored last).
class ChebyshevMixer final : public Mixer {
 public:
  /// tolerance: truncation target for the propagator (sup-norm over the
  /// spectrum); max_degree: hard cap on the expansion order.
  explicit ChebyshevMixer(std::shared_ptr<const SparseXYOperator> op,
                          double tolerance = 1e-12, int max_degree = 20000);

  /// Clique mixer on a feasible space, matrix-free.
  static ChebyshevMixer clique(const StateSpace& space,
                               double tolerance = 1e-12);
  /// Ring mixer on a feasible space, matrix-free.
  static ChebyshevMixer ring(const StateSpace& space,
                             double tolerance = 1e-12);

  [[nodiscard]] index_t dim() const override { return op_->dim(); }
  [[nodiscard]] std::string name() const override { return "chebyshev-xy"; }

  ChebyshevMixer(const ChebyshevMixer& other);
  ChebyshevMixer(ChebyshevMixer&& other) noexcept;
  ChebyshevMixer& operator=(const ChebyshevMixer& other);
  ChebyshevMixer& operator=(ChebyshevMixer&& other) noexcept;

  /// Expansion degree used by the most recent apply_exp (diagnostics).
  [[nodiscard]] int last_degree() const noexcept {
    return last_degree_.load(std::memory_order_relaxed);
  }

  /// The spectral bound currently scaling the expansion (Gershgorin by
  /// default).
  [[nodiscard]] double spectral_bound() const noexcept {
    return bound_override_ > 0.0 ? bound_override_ : op_->spectral_bound();
  }

  /// Replace the Gershgorin bound with a Lanczos estimate of the true
  /// spectral radius (times a small safety factor). The expansion degree
  /// scales with beta * bound, so a tight bound directly cuts work.
  /// Returns the new bound.
  double tighten_spectral_bound(Rng& rng);

  void apply_exp(StateRef psi, double beta, cvec& scratch) const override;
  void apply_ham(ConstStateRef in, StateRef out,
                 cvec& scratch) const override;

 private:
  std::shared_ptr<const SparseXYOperator> op_;
  double tolerance_;
  int max_degree_;
  double bound_override_ = 0.0;
  /// Diagnostic only — relaxed atomic so concurrent apply_exp calls do not
  /// race (atomics are not copyable, hence the manual copy/move members).
  mutable std::atomic<int> last_degree_{0};
};

}  // namespace fastqaoa
