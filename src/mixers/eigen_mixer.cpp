#include "mixers/eigen_mixer.hpp"

#include <cmath>
#include <utility>

#include "bits/bitops.hpp"
#include "common/error.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"

namespace fastqaoa {

EigenMixer::EigenMixer(linalg::SymEig eig, std::string name)
    : real_(std::move(eig)), name_(std::move(name)) {
  FASTQAOA_CHECK(real_->vectors.rows() == real_->eigenvalues.size() &&
                     real_->vectors.cols() == real_->eigenvalues.size(),
                 "EigenMixer: inconsistent eigendecomposition");
}

EigenMixer::EigenMixer(linalg::HermEig eig, std::string name)
    : herm_(std::move(eig)), name_(std::move(name)) {
  FASTQAOA_CHECK(herm_->vectors.rows() == herm_->eigenvalues.size() &&
                     herm_->vectors.cols() == herm_->eigenvalues.size(),
                 "EigenMixer: inconsistent eigendecomposition");
}

linalg::dmat EigenMixer::xy_hamiltonian(const StateSpace& space,
                                        const Graph& pairs) {
  FASTQAOA_CHECK(pairs.num_vertices() == space.n(),
                 "xy_hamiltonian: pair graph must have n vertices");
  const index_t dim = space.dim();
  linalg::dmat h(dim, dim);
  space.for_each([&](index_t i, state_t x) {
    for (const Edge& e : pairs.edges()) {
      if (bit(x, e.u) != bit(x, e.v)) {
        const state_t y = flip(flip(x, e.u), e.v);
        // <y| X_u X_v + Y_u Y_v |x> = 2 when the differing bits swap.
        h(space.index_of(y), i) += 2.0 * e.weight;
      }
    }
  });
  return h;
}

EigenMixer EigenMixer::xy_graph(const StateSpace& space, const Graph& pairs,
                                std::string name) {
  return EigenMixer(linalg::eigh(xy_hamiltonian(space, pairs)),
                    std::move(name));
}

EigenMixer EigenMixer::clique(const StateSpace& space) {
  return xy_graph(space, complete_graph(space.n()), "clique");
}

EigenMixer EigenMixer::ring(const StateSpace& space) {
  FASTQAOA_CHECK(space.n() >= 3, "ring mixer: need n >= 3");
  return xy_graph(space, ring_graph(space.n()), "ring");
}

EigenMixer EigenMixer::from_hamiltonian(linalg::dmat h, std::string name) {
  return EigenMixer(linalg::eigh(h), std::move(name));
}

EigenMixer EigenMixer::from_hamiltonian(linalg::cmat h, std::string name) {
  return EigenMixer(linalg::eigh(h), std::move(name));
}

const linalg::SymEig& EigenMixer::real_eig() const {
  FASTQAOA_CHECK(real_.has_value(), "EigenMixer: not a real decomposition");
  return *real_;
}

const linalg::HermEig& EigenMixer::herm_eig() const {
  FASTQAOA_CHECK(herm_.has_value(), "EigenMixer: not a complex decomposition");
  return *herm_;
}

void EigenMixer::apply_exp(StateRef psi, double beta, cvec& scratch) const {
  FASTQAOA_CHECK(psi.size() == dim(), "EigenMixer: state size mismatch");
  FASTQAOA_OBS_COUNT("mixers.eigen.exp_applies", 1);
  FASTQAOA_OBS_TIMED("mixers.eigen.exp");
  scratch.resize(dim());
  if (real_) {
    linalg::gemv_transpose(real_->vectors, psi, scratch);  // V^T psi
    linalg::apply_diag_phase(scratch, real_->eigenvalues, beta);
    linalg::gemv(real_->vectors, scratch, psi);  // V (...)
  } else {
    linalg::gemv_adjoint(herm_->vectors, psi, scratch);  // V^H psi
    linalg::apply_diag_phase(scratch, herm_->eigenvalues, beta);
    linalg::gemv(herm_->vectors, scratch, psi);
  }
}

void EigenMixer::apply_ham(ConstStateRef in, StateRef out,
                           cvec& scratch) const {
  FASTQAOA_CHECK(in.size() == dim(), "EigenMixer: state size mismatch");
  FASTQAOA_CHECK(out.size() == dim(),
                 "EigenMixer: apply_ham output must be presized");
  FASTQAOA_OBS_COUNT("mixers.eigen.ham_applies", 1);
  FASTQAOA_OBS_TIMED("mixers.eigen.ham");
  scratch.resize(dim());
  if (real_) {
    linalg::gemv_transpose(real_->vectors, in, scratch);
    linalg::diag_mul(scratch, real_->eigenvalues, 1.0);
    linalg::gemv(real_->vectors, scratch, out);
  } else {
    linalg::gemv_adjoint(herm_->vectors, in, scratch);
    linalg::diag_mul(scratch, herm_->eigenvalues, 1.0);
    linalg::gemv(herm_->vectors, scratch, out);
  }
}

}  // namespace fastqaoa
