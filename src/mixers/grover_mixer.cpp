#include "mixers/grover_mixer.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/kernels/kernels.hpp"

namespace fastqaoa {

GroverMixer::GroverMixer(index_t dim) : dim_(dim) {
  FASTQAOA_CHECK(dim >= 1, "GroverMixer: dimension must be positive");
}

void GroverMixer::apply_exp(StateRef psi, double beta, cvec& scratch) const {
  (void)scratch;
  FASTQAOA_CHECK(psi.size() == dim_, "GroverMixer: state size mismatch");
  // <psi0|psi> * sqrt(dim) = sum_i psi_i; fold the two 1/sqrt(dim) factors
  // of the projector into a single 1/dim.
  const linalg::kernels::KernelBackend& k = linalg::kernels::active();
  const linalg::kernels::CplxSum sum = k.vsum(psi.data(), dim_);
  const cplx factor = (cplx{std::cos(beta), -std::sin(beta)} - 1.0) *
                      cplx{sum.re, sum.im} /
                      static_cast<double>(dim_);
  k.add_const(psi.data(), factor.real(), factor.imag(), dim_);
}

void GroverMixer::apply_ham(ConstStateRef in, StateRef out,
                            cvec& scratch) const {
  (void)scratch;
  FASTQAOA_CHECK(in.size() == dim_, "GroverMixer: state size mismatch");
  FASTQAOA_CHECK(out.size() == dim_,
                 "GroverMixer: apply_ham output must be presized");
  const linalg::kernels::KernelBackend& k = linalg::kernels::active();
  const linalg::kernels::CplxSum sum = k.vsum(in.data(), dim_);
  const cplx amp = cplx{sum.re, sum.im} / static_cast<double>(dim_);
  k.fill(out.data(), amp.real(), amp.imag(), dim_);
}

}  // namespace fastqaoa
