#include "mixers/grover_mixer.hpp"

#include <cmath>

#include "common/error.hpp"

namespace fastqaoa {

GroverMixer::GroverMixer(index_t dim) : dim_(dim) {
  FASTQAOA_CHECK(dim >= 1, "GroverMixer: dimension must be positive");
}

void GroverMixer::apply_exp(cvec& psi, double beta, cvec& scratch) const {
  (void)scratch;
  FASTQAOA_CHECK(psi.size() == dim_, "GroverMixer: state size mismatch");
  // <psi0|psi> * sqrt(dim) = sum_i psi_i; fold the two 1/sqrt(dim) factors
  // of the projector into a single 1/dim.
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(dim_);
  double sum_re = 0.0;
  double sum_im = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : sum_re, sum_im)
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    sum_re += psi[static_cast<index_t>(i)].real();
    sum_im += psi[static_cast<index_t>(i)].imag();
  }
  const cplx factor = (cplx{std::cos(beta), -std::sin(beta)} - 1.0) *
                      cplx{sum_re, sum_im} /
                      static_cast<double>(dim_);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    psi[static_cast<index_t>(i)] += factor;
  }
}

void GroverMixer::apply_ham(const cvec& in, cvec& out, cvec& scratch) const {
  (void)scratch;
  FASTQAOA_CHECK(in.size() == dim_, "GroverMixer: state size mismatch");
  out.assign(dim_, cplx{0.0, 0.0});
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(dim_);
  double sum_re = 0.0;
  double sum_im = 0.0;
#pragma omp parallel for schedule(static) reduction(+ : sum_re, sum_im)
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    sum_re += in[static_cast<index_t>(i)].real();
    sum_im += in[static_cast<index_t>(i)].imag();
  }
  const cplx amp = cplx{sum_re, sum_im} / static_cast<double>(dim_);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    out[static_cast<index_t>(i)] = amp;
  }
}

}  // namespace fastqaoa
