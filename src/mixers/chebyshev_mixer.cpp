#include "mixers/chebyshev_mixer.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/lanczos.hpp"
#include "linalg/vector_ops.hpp"

namespace fastqaoa {

ChebyshevMixer::ChebyshevMixer(std::shared_ptr<const SparseXYOperator> op,
                               double tolerance, int max_degree)
    : op_(std::move(op)), tolerance_(tolerance), max_degree_(max_degree) {
  FASTQAOA_CHECK(op_ != nullptr, "ChebyshevMixer: null operator");
  FASTQAOA_CHECK(tolerance > 0.0, "ChebyshevMixer: tolerance must be > 0");
  FASTQAOA_CHECK(max_degree >= 1, "ChebyshevMixer: max_degree must be >= 1");
}

ChebyshevMixer ChebyshevMixer::clique(const StateSpace& space,
                                      double tolerance) {
  return ChebyshevMixer(
      std::make_shared<SparseXYOperator>(space, complete_graph(space.n())),
      tolerance);
}

ChebyshevMixer ChebyshevMixer::ring(const StateSpace& space,
                                    double tolerance) {
  FASTQAOA_CHECK(space.n() >= 3, "ChebyshevMixer::ring: need n >= 3");
  return ChebyshevMixer(
      std::make_shared<SparseXYOperator>(space, ring_graph(space.n())),
      tolerance);
}

double ChebyshevMixer::tighten_spectral_bound(Rng& rng) {
  linalg::LanczosOptions opt;
  opt.tolerance = 1e-8;
  const linalg::LanczosResult lanczos = linalg::lanczos_extremal(
      [this](const cvec& in, cvec& out) { op_->apply(in, out); }, dim(), rng,
      opt);
  const double radius = std::max(std::abs(lanczos.min_eigenvalue),
                                 std::abs(lanczos.max_eigenvalue));
  // Safety factor: Lanczos approaches the spectrum from inside; the
  // expansion needs H/r strictly within [-1, 1].
  bound_override_ = std::min(op_->spectral_bound(),
                             std::max(radius * 1.01, 1e-12));
  return bound_override_;
}

void ChebyshevMixer::apply_exp(cvec& psi, double beta, cvec& scratch) const {
  (void)scratch;
  FASTQAOA_CHECK(psi.size() == dim(), "ChebyshevMixer: state size mismatch");
  const double r = spectral_bound();
  const double z = beta * r;
  const double az = std::abs(z);

  // Bessel coefficients: e^{-i z x} = J_0(z) + 2 sum (-i)^k J_k(z) T_k(x)
  // for x in [-1, 1]; for z < 0 use J_k(-z) = (-1)^k J_k(z), i.e. flip the
  // sign of the imaginary unit.
  const cplx unit = z >= 0.0 ? cplx{0.0, -1.0} : cplx{0.0, 1.0};

  // T_0 term.
  t_cur_ = psi;                        // T_0(H~) psi = psi
  accum_.assign(dim(), cplx{0.0, 0.0});
  const double j0 = std::cyl_bessel_j(0.0, az);
  linalg::axpy(cplx{j0, 0.0}, t_cur_, accum_);

  // T_1 term: T_1(H~) psi = (H/r) psi.
  op_->apply(t_cur_, t_next_);
  linalg::scale(t_next_, cplx{1.0 / r, 0.0});
  t_prev_ = std::move(t_cur_);
  t_cur_ = std::move(t_next_);
  cplx phase = unit;  // (-i)^1
  int consecutive_small = 0;
  int k = 1;
  for (; k <= max_degree_; ++k) {
    const double jk = std::cyl_bessel_j(static_cast<double>(k), az);
    if (std::abs(2.0 * jk) > tolerance_) {
      linalg::axpy(2.0 * jk * phase, t_cur_, accum_);
      consecutive_small = 0;
    } else if (static_cast<double>(k) > az) {
      // Past the turning point k ~ |z| the Bessel tail decays
      // superexponentially; a few consecutive negligible terms certify
      // convergence.
      if (++consecutive_small >= 4) break;
    }
    // T_{k+1} = 2 H~ T_k - T_{k-1}.
    t_next_.resize(dim());
    op_->apply(t_cur_, t_next_);
    const std::ptrdiff_t sz = static_cast<std::ptrdiff_t>(dim());
    const double inv_r = 1.0 / r;
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t i = 0; i < sz; ++i) {
      t_next_[static_cast<index_t>(i)] =
          2.0 * inv_r * t_next_[static_cast<index_t>(i)] -
          t_prev_[static_cast<index_t>(i)];
    }
    std::swap(t_prev_, t_cur_);
    std::swap(t_cur_, t_next_);
    phase *= unit;
  }
  FASTQAOA_CHECK(k <= max_degree_,
                 "ChebyshevMixer: expansion did not converge within "
                 "max_degree — increase the cap or the tolerance");
  last_degree_ = k;
  psi = accum_;
}

void ChebyshevMixer::apply_ham(const cvec& in, cvec& out,
                               cvec& scratch) const {
  (void)scratch;
  op_->apply(in, out);
}

}  // namespace fastqaoa
