#include "mixers/chebyshev_mixer.hpp"

#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "linalg/kernels/kernels.hpp"
#include "linalg/lanczos.hpp"

namespace fastqaoa {

namespace {

/// All Bessel J_k(x), k = 0..nmax, by Miller's backward recurrence with the
/// J_0 + 2 J_2 + 2 J_4 + ... = 1 normalization. Pure arithmetic — unlike
/// std::cyl_bessel_j, whose libstdc++ implementation routes through
/// lgamma() and races on the global `signgam` under concurrent callers.
void bessel_j_sequence(double x, int nmax, double* out) {
  for (int k = 0; k <= nmax; ++k) out[k] = 0.0;
  if (x <= 0.0) {
    out[0] = 1.0;
    return;
  }
  // Start the downward recurrence far enough above both nmax and x that
  // the arbitrary seed has decayed to pure J_k by the time we store.
  const int base = std::max(nmax, static_cast<int>(x) + 1);
  int start = base + 16 + static_cast<int>(std::sqrt(60.0 * base));
  if (start % 2 != 0) ++start;

  double j_up = 0.0;    // J_{k+1} (seed scale)
  double j_cur = 1e-30; // J_k
  double norm = 0.0;    // J_0 + 2 sum_{even k >= 2} J_k, same scale
  for (int k = start; k >= 1; --k) {
    const double j_down = 2.0 * k / x * j_cur - j_up;
    j_up = j_cur;
    j_cur = j_down;
    if (k - 1 <= nmax) out[k - 1] = j_cur;
    if ((k - 1) % 2 == 0) norm += (k == 1) ? j_cur : 2.0 * j_cur;
    if (std::abs(j_cur) > 1e150) {  // renormalize before overflow
      j_cur *= 1e-150;
      j_up *= 1e-150;
      norm *= 1e-150;
      for (int i = std::min(k - 1, nmax); i <= nmax; ++i) out[i] *= 1e-150;
    }
  }
  const double inv = 1.0 / norm;
  for (int k = 0; k <= nmax; ++k) out[k] *= inv;
}

}  // namespace

ChebyshevMixer::ChebyshevMixer(std::shared_ptr<const SparseXYOperator> op,
                               double tolerance, int max_degree)
    : op_(std::move(op)), tolerance_(tolerance), max_degree_(max_degree) {
  FASTQAOA_CHECK(op_ != nullptr, "ChebyshevMixer: null operator");
  FASTQAOA_CHECK(tolerance > 0.0, "ChebyshevMixer: tolerance must be > 0");
  FASTQAOA_CHECK(max_degree >= 1, "ChebyshevMixer: max_degree must be >= 1");
}

ChebyshevMixer::ChebyshevMixer(const ChebyshevMixer& other)
    : op_(other.op_),
      tolerance_(other.tolerance_),
      max_degree_(other.max_degree_),
      bound_override_(other.bound_override_),
      last_degree_(other.last_degree()) {}

ChebyshevMixer::ChebyshevMixer(ChebyshevMixer&& other) noexcept
    : op_(std::move(other.op_)),
      tolerance_(other.tolerance_),
      max_degree_(other.max_degree_),
      bound_override_(other.bound_override_),
      last_degree_(other.last_degree()) {}

ChebyshevMixer& ChebyshevMixer::operator=(const ChebyshevMixer& other) {
  op_ = other.op_;
  tolerance_ = other.tolerance_;
  max_degree_ = other.max_degree_;
  bound_override_ = other.bound_override_;
  last_degree_.store(other.last_degree(), std::memory_order_relaxed);
  return *this;
}

ChebyshevMixer& ChebyshevMixer::operator=(ChebyshevMixer&& other) noexcept {
  op_ = std::move(other.op_);
  tolerance_ = other.tolerance_;
  max_degree_ = other.max_degree_;
  bound_override_ = other.bound_override_;
  last_degree_.store(other.last_degree(), std::memory_order_relaxed);
  return *this;
}

ChebyshevMixer ChebyshevMixer::clique(const StateSpace& space,
                                      double tolerance) {
  return ChebyshevMixer(
      std::make_shared<SparseXYOperator>(space, complete_graph(space.n())),
      tolerance);
}

ChebyshevMixer ChebyshevMixer::ring(const StateSpace& space,
                                    double tolerance) {
  FASTQAOA_CHECK(space.n() >= 3, "ChebyshevMixer::ring: need n >= 3");
  return ChebyshevMixer(
      std::make_shared<SparseXYOperator>(space, ring_graph(space.n())),
      tolerance);
}

double ChebyshevMixer::tighten_spectral_bound(Rng& rng) {
  linalg::LanczosOptions opt;
  opt.tolerance = 1e-8;
  const linalg::LanczosResult lanczos = linalg::lanczos_extremal(
      [this](const cvec& in, cvec& out) { op_->apply(in, out); }, dim(), rng,
      opt);
  const double radius = std::max(std::abs(lanczos.min_eigenvalue),
                                 std::abs(lanczos.max_eigenvalue));
  // Safety factor: Lanczos approaches the spectrum from inside; the
  // expansion needs H/r strictly within [-1, 1].
  bound_override_ = std::min(op_->spectral_bound(),
                             std::max(radius * 1.01, 1e-12));
  return bound_override_;
}

void ChebyshevMixer::apply_exp(StateRef psi, double beta,
                               cvec& scratch) const {
  FASTQAOA_CHECK(psi.size() == dim(), "ChebyshevMixer: state size mismatch");
  // The whole recurrence runs inside the caller's scratch (four dim-sized
  // sub-buffers), so concurrent calls on one shared mixer stay independent
  // — the thread-compatibility contract of mixer.hpp.
  const index_t d = dim();
  const double r = spectral_bound();
  const double z = beta * r;
  const double az = std::abs(z);

  // Coefficient orders actually reachable: the tail past k ~ |z| decays
  // superexponentially, so |z| plus an O(|z|^{1/3}) transition margin
  // covers any sane tolerance long before max_degree_.
  const int navail = std::min(
      max_degree_, static_cast<int>(std::ceil(az)) + 60 +
                       static_cast<int>(12.0 * std::cbrt(az)));

  // Carve everything out of the caller's scratch: four dim-sized recurrence
  // buffers plus the Bessel coefficient table (doubles packed into cplx
  // slots via the std::complex array-compatibility guarantee). The carve
  // stride rounds dim up to a multiple of 4 complex so every sub-buffer
  // keeps the 64-byte alignment of scratch.data() for the kernels below.
  const index_t da = (d + 3) & ~index_t{3};
  const index_t coeff_slots = static_cast<index_t>(navail) / 2 + 1;
  if (scratch.size() < 4 * da + coeff_slots) {
    scratch.resize(4 * da + coeff_slots);
  }
  cplx* t_prev = scratch.data();
  cplx* t_cur = scratch.data() + da;
  cplx* t_next = scratch.data() + 2 * da;
  cplx* accum = scratch.data() + 3 * da;
  double* bessel = reinterpret_cast<double*>(scratch.data() + 4 * da);
  const linalg::kernels::KernelBackend& kern = linalg::kernels::active();

  // Bessel coefficients: e^{-i z x} = J_0(z) + 2 sum (-i)^k J_k(z) T_k(x)
  // for x in [-1, 1]; for z < 0 use J_k(-z) = (-1)^k J_k(z), i.e. flip the
  // sign of the imaginary unit.
  const cplx unit = z >= 0.0 ? cplx{0.0, -1.0} : cplx{0.0, 1.0};
  bessel_j_sequence(az, navail, bessel);

  // T_0 term: T_0(H~) psi = psi.
  const double j0 = bessel[0];
  kern.copy_scale(t_cur, psi.data(), 1.0, d);
  kern.copy_scale(accum, psi.data(), j0, d);

  // T_1 term: T_1(H~) psi = (H/r) psi.
  op_->apply(t_cur, t_next);
  const double inv_r = 1.0 / r;
  kern.scale_real(t_next, inv_r, d);
  std::swap(t_prev, t_cur);
  std::swap(t_cur, t_next);
  cplx phase = unit;  // (-i)^1
  int consecutive_small = 0;
  int k = 1;
  for (; k <= navail; ++k) {
    const double jk = bessel[k];
    if (std::abs(2.0 * jk) > tolerance_) {
      const cplx coeff = 2.0 * jk * phase;
      kern.axpy(coeff.real(), coeff.imag(), t_cur, accum, d);
      consecutive_small = 0;
    } else if (static_cast<double>(k) > az) {
      // Past the turning point k ~ |z| the Bessel tail decays
      // superexponentially; a few consecutive negligible terms certify
      // convergence.
      if (++consecutive_small >= 4) break;
    }
    // T_{k+1} = 2 H~ T_k - T_{k-1}.
    op_->apply(t_cur, t_next);
    kern.cheb_recur(t_next, t_prev, 2.0 * inv_r, d);
    std::swap(t_prev, t_cur);
    std::swap(t_cur, t_next);
    phase *= unit;
  }
  FASTQAOA_CHECK(k <= navail,
                 "ChebyshevMixer: expansion did not converge within "
                 "max_degree — increase the cap or the tolerance");
  last_degree_.store(k, std::memory_order_relaxed);
  kern.copy_scale(psi.data(), accum, 1.0, d);
}

void ChebyshevMixer::apply_ham(ConstStateRef in, StateRef out,
                               cvec& scratch) const {
  (void)scratch;
  FASTQAOA_CHECK(in.size() == dim() && out.size() == dim(),
                 "ChebyshevMixer: apply_ham buffers must be presized");
  op_->apply(in.data(), out.data());
}

}  // namespace fastqaoa
